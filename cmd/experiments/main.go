// Command experiments regenerates every table and figure of the paper
// as terminal reports. With no arguments it runs all 21 experiments;
// pass -run E5 to run one, or -list to enumerate them.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	run := flag.String("run", "", "run a single experiment by ID (e.g. E5)")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %-32s %s\n", e.ID, e.Paper, e.Title)
		}
		return
	}
	if *run != "" {
		e, ok := experiments.Find(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", *run)
			os.Exit(1)
		}
		fmt.Printf("=== %s (%s): %s ===\n", e.ID, e.Paper, e.Title)
		e.Run(os.Stdout)
		return
	}
	experiments.RunAll(os.Stdout)
}
