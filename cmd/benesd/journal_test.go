package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fabric"
	"repro/internal/journal"
	"repro/internal/journal/replay"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/perm"
)

// newJournalTestServer mirrors newTestServerFull with journaling on —
// the -journal wiring main performs, compressed for tests.
func newJournalTestServer(t *testing.T) (*httptest.Server, *journal.Journal) {
	t.Helper()
	j, err := journal.New(journal.Config{CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	jw := j.Writer()
	eng, err := engine.New[int](engine.Config{
		LogN:     4,
		Recorder: netsim.NewRecorder(core.New(4), runtime.GOMAXPROCS(0)+1),
		Journal:  jw,
	})
	if err != nil {
		t.Fatal(err)
	}
	ring := obs.NewTraceRing(16, 0)
	fab, err := fabric.New[int](fabric.Config{LogN: 4, Planes: 2, VOQDepth: 2, Record: true, Journal: jw}, newTracedDeliver(ring))
	if err != nil {
		t.Fatal(err)
	}
	j.SetCheckpointSource(fab.JournalCheckpoint)
	col := collective.New[int](fab, collective.Options{})
	o := newObsState(eng, fab, col, j, ring, 8, time.Millisecond, testLogger())
	srv := httptest.NewServer(newMux(eng, fab, col, o, j))
	t.Cleanup(func() {
		srv.Close()
		o.hist.Stop()
		fab.Close()
		eng.Close()
		j.Close()
	})
	return srv, j
}

func postReplay(t *testing.T, url string, body any) (*http.Response, *replay.Report) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/debug/replay", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	rep := &replay.Report{}
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(rep); err != nil {
			t.Fatal(err)
		}
	}
	return resp, rep
}

// TestJournalEndpoints drives the full operator loop over HTTP: traffic
// through /route and /multicast, then the NDJSON dump, the chain
// verification, the replay audit, and the journal series on /metrics.
func TestJournalEndpoints(t *testing.T) {
	srv, _ := newJournalTestServer(t)

	for i := 0; i < 3; i++ {
		if resp, rr := postRoute(t, srv.URL, routeRequest{Dest: perm.BitReversal(4)}); resp.StatusCode != http.StatusOK || rr.Kind != "self-routed" {
			t.Fatalf("route %d: status %d, %+v", i, resp.StatusCode, rr)
		}
	}
	m := make([]int, 16)
	for i := range m {
		m[i] = fabric.Idle
	}
	m[2], m[9] = 5, 5
	raw, _ := json.Marshal(multicastRequest{Map: m})
	if resp, err := http.Post(srv.URL+"/multicast", "application/json", bytes.NewReader(raw)); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("multicast round: %v status %v", err, resp.StatusCode)
	}

	// NDJSON dump: one parseable line per record, sequence-ordered.
	resp, err := http.Get(srv.URL + "/debug/journal")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/journal status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var lines []journalRecord
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var jr journalRecord
		if err := json.Unmarshal(sc.Bytes(), &jr); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, jr)
	}
	if len(lines) != 4 {
		t.Fatalf("dumped %d records, want 4 (3 routes + 1 mcast round)", len(lines))
	}
	for i, l := range lines {
		if l.Seq != uint64(i+1) || l.Digest == "" {
			t.Fatalf("line %d: %+v", i, l)
		}
	}
	if lines[0].Kind != "route" || lines[3].Kind != "mcast_round" {
		t.Fatalf("kinds = %q ... %q", lines[0].Kind, lines[3].Kind)
	}

	// Chain verification.
	vresp, err := http.Get(srv.URL + "/debug/journal/verify")
	if err != nil {
		t.Fatal(err)
	}
	defer vresp.Body.Close()
	var vr journal.VerifyResult
	if err := json.NewDecoder(vresp.Body).Decode(&vr); err != nil {
		t.Fatal(err)
	}
	if vresp.StatusCode != http.StatusOK || !vr.OK || vr.Records != 4 {
		t.Fatalf("verify: status %d, %+v", vresp.StatusCode, vr)
	}

	// Replay audit: zero divergences.
	rresp, rep := postReplay(t, srv.URL, replayRequest{})
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/replay status %d", rresp.StatusCode)
	}
	if !rep.Clean() || rep.Replayed != 4 {
		t.Fatalf("replay: %+v", rep)
	}

	// The journal series are on /metrics, and a clean journal leaves
	// /readyz undegraded.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	for _, series := range []string{"benes_journal_appended_total", "benes_journal_chain_verifies_total", "benes_journal_replay_divergences_total"} {
		if !strings.Contains(string(body), series) {
			t.Errorf("/metrics missing %s", series)
		}
	}
	if resp, rd := getReadiness(t, srv.URL); resp.StatusCode != http.StatusOK || len(rd.Degraded) != 0 {
		t.Fatalf("readyz with a healthy journal: status %d, %+v", resp.StatusCode, rd)
	}
}

// TestJournalEndpointValidation is the table of requests the handlers
// must refuse with a 400 — bad ranges, inverted windows, verification
// and replay against an empty journal — in the same style as the other
// debug endpoints.
func TestJournalEndpointValidation(t *testing.T) {
	srv, _ := newJournalTestServer(t)
	empty := srv // no traffic has been journaled yet

	cases := []struct {
		name   string
		method string
		path   string
		body   string
	}{
		{"dump empty journal", http.MethodGet, "/debug/journal", ""},
		{"verify empty journal", http.MethodGet, "/debug/journal/verify", ""},
		{"replay empty journal", http.MethodPost, "/debug/replay", "{}"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := doJSON(t, empty.URL, tc.method, tc.path, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
		})
	}

	// Journal one record so range validation is reachable.
	if resp, _ := postRoute(t, srv.URL, routeRequest{Dest: perm.BitReversal(4)}); resp.StatusCode != http.StatusOK {
		t.Fatalf("route: status %d", resp.StatusCode)
	}
	rangeCases := []struct {
		name   string
		method string
		path   string
		body   string
	}{
		{"non-numeric from", http.MethodGet, "/debug/journal?from=abc", ""},
		{"zero from", http.MethodGet, "/debug/journal?from=0", ""},
		{"non-numeric to", http.MethodGet, "/debug/journal?to=xyz", ""},
		{"inverted range", http.MethodGet, "/debug/journal?from=5&to=2", ""},
		{"verify non-numeric from", http.MethodGet, "/debug/journal/verify?from=1e3", ""},
		{"verify inverted range", http.MethodGet, "/debug/journal/verify?from=9&to=3", ""},
		{"replay bad JSON", http.MethodPost, "/debug/replay", "{"},
		{"replay inverted range", http.MethodPost, "/debug/replay", `{"from":7,"to":3}`},
	}
	for _, tc := range rangeCases {
		t.Run(tc.name, func(t *testing.T) {
			resp := doJSON(t, srv.URL, tc.method, tc.path, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
		})
	}
}

func doJSON(t *testing.T, base, method, path, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, base+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestJournalEndpointsDisabled: without -journal every journal endpoint
// answers 404, pointing at the flag.
func TestJournalEndpointsDisabled(t *testing.T) {
	srv, _ := newTestServer(t) // no journal wired
	for _, tc := range []struct{ method, path, body string }{
		{http.MethodGet, "/debug/journal", ""},
		{http.MethodGet, "/debug/journal/verify", ""},
		{http.MethodPost, "/debug/replay", "{}"},
	} {
		if resp := doJSON(t, srv.URL, tc.method, tc.path, tc.body); resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s: status %d, want 404", tc.method, tc.path, resp.StatusCode)
		}
	}
}

// TestJournalDegradations pins the readiness ladder contribution: data
// loss against the spill contract degrades, a standing spill backlog
// degrades, and a healthy journal adds nothing — never a 503.
func TestJournalDegradations(t *testing.T) {
	if got := journalDegradations(0, 0); len(got) != 0 {
		t.Fatalf("healthy journal degraded: %v", got)
	}
	if got := journalDegradations(3, 0); len(got) != 1 || !strings.Contains(got[0], "dropped 3") {
		t.Fatalf("dropped records not reported: %v", got)
	}
	if got := journalDegradations(0, 2); len(got) != 1 || !strings.Contains(got[0], "backlog 2") {
		t.Fatalf("spill backlog not reported: %v", got)
	}
	if got := journalDegradations(1, 1); len(got) != 2 {
		t.Fatalf("want both reasons: %v", got)
	}
}
