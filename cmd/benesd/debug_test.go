package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/collective"
	"repro/internal/core"
)

func postDebugFaults(t *testing.T, url string, body any) (*http.Response, faultsResponse) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/debug/faults", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var fr faultsResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
			t.Fatal(err)
		}
	}
	return resp, fr
}

func postDebugDiagnose(t *testing.T, url string, body any) (*http.Response, diagnoseResponse) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/debug/diagnose", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dr diagnoseResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
			t.Fatal(err)
		}
	}
	return resp, dr
}

func getReadiness(t *testing.T, url string) (*http.Response, readiness) {
	t.Helper()
	resp, err := http.Get(url + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var r readiness
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatal(err)
	}
	return resp, r
}

// TestDebugFaultsAndDiagnose walks the whole operator loop over HTTP:
// inject a stuck switch on plane 1, watch /readyz degrade and
// /fabric/stats mark the plane unhealthy, diagnose the plane (the
// injected switch must rank first), confirm the sibling plane
// diagnoses healthy, repair, and watch everything recover.
func TestDebugFaultsAndDiagnose(t *testing.T) {
	srv, _, fab, _ := newTestServerFull(t, collective.Options{})
	injected := faultSpec{Stage: 3, Switch: 5, StuckCrossed: true}

	resp, fr := postDebugFaults(t, srv.URL, faultsRequest{Plane: 1, Faults: []faultSpec{injected}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inject status %d", resp.StatusCode)
	}
	if fr.Plane != 1 || fr.Faults != 1 || fr.Healthy {
		t.Fatalf("inject response wrong: %+v", fr)
	}
	if s := fab.Stats(); s.Planes[1].Healthy || s.Planes[1].Faults != 1 {
		t.Fatalf("plane 1 not marked damaged: %+v", s.Planes[1])
	}
	rresp, rd := getReadiness(t, srv.URL)
	if rresp.StatusCode != http.StatusOK || !rd.Ready {
		t.Fatalf("one surviving plane must stay ready: %d %+v", rresp.StatusCode, rd)
	}
	degraded := false
	for _, d := range rd.Degraded {
		degraded = degraded || strings.Contains(d, "planes healthy")
	}
	if !degraded {
		t.Fatalf("readiness must report the lost plane: %+v", rd)
	}

	// Diagnosis over the live fabric localizes the injected switch.
	dresp, dr := postDebugDiagnose(t, srv.URL, diagnoseRequest{Plane: 1, Seed: 7})
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("diagnose status %d", dresp.StatusCode)
	}
	rep := dr.Report
	if rep == nil || rep.Healthy {
		t.Fatalf("damaged plane diagnosed healthy: %+v", rep)
	}
	if len(rep.Top) == 0 || rep.Top[0].Rank != 1 {
		t.Fatalf("no rank-1 candidate: %+v", rep.Top)
	}
	want := core.Fault{Stage: injected.Stage, Switch: injected.Switch, StuckCrossed: injected.StuckCrossed}
	if fs := rep.Top[0].Candidate.Faults; len(fs) != 1 || fs[0] != want {
		t.Fatalf("top candidate %+v, want %+v", rep.Top[0].Candidate, want)
	}

	// The sibling plane is untouched and must diagnose healthy.
	dresp, dr = postDebugDiagnose(t, srv.URL, diagnoseRequest{Plane: 0, Seed: 7})
	if dresp.StatusCode != http.StatusOK || dr.Report == nil || !dr.Report.Healthy {
		t.Fatalf("healthy plane misdiagnosed: %d %+v", dresp.StatusCode, dr.Report)
	}

	// Repair: an empty fault list heals the plane and clears /readyz.
	resp, fr = postDebugFaults(t, srv.URL, faultsRequest{Plane: 1})
	if resp.StatusCode != http.StatusOK || !fr.Healthy || fr.Faults != 0 {
		t.Fatalf("repair response wrong: %d %+v", resp.StatusCode, fr)
	}
	if s := fab.Stats(); !s.Planes[1].Healthy || s.Planes[1].Faults != 0 {
		t.Fatalf("plane 1 not repaired: %+v", s.Planes[1])
	}
	if _, rd = getReadiness(t, srv.URL); len(rd.Degraded) != 0 {
		t.Fatalf("readiness still degraded after repair: %+v", rd)
	}
	dresp, dr = postDebugDiagnose(t, srv.URL, diagnoseRequest{Plane: 1, Seed: 7})
	if dresp.StatusCode != http.StatusOK || dr.Report == nil || !dr.Report.Healthy {
		t.Fatalf("repaired plane misdiagnosed: %d %+v", dresp.StatusCode, dr.Report)
	}

	// Three sessions ran; the prover metrics must be on /metrics.
	_, lines := scrapeMetrics(t, srv.URL)
	found := false
	for _, ln := range lines {
		found = found || ln == "benes_diagnose_sessions_total 3"
	}
	if !found {
		t.Fatalf("benes_diagnose_sessions_total 3 missing from /metrics")
	}
}

// TestDebugFaultsValidation sweeps the 400 surface of /debug/faults.
func TestDebugFaultsValidation(t *testing.T) {
	srv, _ := newTestServer(t)
	cases := []struct {
		name string
		req  faultsRequest
	}{
		{"negative plane", faultsRequest{Plane: -1}},
		{"plane out of range", faultsRequest{Plane: 2}},
		{"stage out of range", faultsRequest{Plane: 0,
			Faults: []faultSpec{{Stage: 7, Switch: 0}}}},
		{"negative stage", faultsRequest{Plane: 0,
			Faults: []faultSpec{{Stage: -1, Switch: 0}}}},
		{"switch out of range", faultsRequest{Plane: 0,
			Faults: []faultSpec{{Stage: 0, Switch: 8}}}},
		{"one bad fault poisons the batch", faultsRequest{Plane: 0, Faults: []faultSpec{
			{Stage: 0, Switch: 0}, {Stage: 0, Switch: 99}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, _ := postDebugFaults(t, srv.URL, tc.req)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
		})
	}

	// A rejected batch must leave the plane pristine.
	_, rd := getReadiness(t, srv.URL)
	if len(rd.Degraded) != 0 {
		t.Fatalf("rejected faults must not damage a plane: %+v", rd)
	}

	resp, err := http.Post(srv.URL+"/debug/faults", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
}

// TestDebugDiagnoseValidation sweeps the 400 surface of
// /debug/diagnose.
func TestDebugDiagnoseValidation(t *testing.T) {
	srv, _ := newTestServer(t)
	cases := []struct {
		name string
		req  diagnoseRequest
	}{
		{"negative plane", diagnoseRequest{Plane: -1}},
		{"plane out of range", diagnoseRequest{Plane: 2}},
		{"negative budget", diagnoseRequest{Plane: 0, Budget: -1}},
		{"max_faults too high", diagnoseRequest{Plane: 0, MaxFaults: 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, _ := postDebugDiagnose(t, srv.URL, tc.req)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
		})
	}

	resp, err := http.Post(srv.URL+"/debug/diagnose", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
}
