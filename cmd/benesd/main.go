// Command benesd is a demo routing server over the batched engine of
// internal/engine and the packet-mode fabric of internal/fabric: it
// accepts whole-permutation requests and individual packets over HTTP,
// serves them through the sharded worker pool / multi-plane frame
// scheduler, and exposes metrics for both layers.
//
// Endpoints:
//
//	POST /route    {"dest":[...], "data":[...]} -> routed payload
//	               ("data" optional; defaults to the identity payload
//	               0..N-1, so the response shows where each input went)
//	POST /send     {"src":3, "dst":9} or {"packets":[{"src":..,"dst":..},...]}
//	               -> per-packet accepted/rejected counts; packets ride
//	               the VOQ → frame scheduler → plane path
//	POST /multicast  {"map":[src per output, -1 idle]} or
//	               {"entries":[{"src":0,"dsts":[1,2,3]},...]} -> one
//	               whole-mapping copy-network round (classification,
//	               serving plane, cache hit); with "packet": true the
//	               entries instead ride the VOQ → frame scheduler path
//	               as fan-out packets (accepted/rejected counts)
//	POST /collective  {"op":"alltoall","data":[[...],...]} -> bulk
//	               data movement compiled into pipelined fabric rounds.
//	               Ops: alltoall, exchange (with "dests"), transpose
//	               (with "rows"/"cols"), shuffle, bitreversal,
//	               broadcast / gather / scatter (with "root"),
//	               allgather, fanout (with "dests" as subscriber lists).
//	               "deadline_ms" arms deadline-aware admission (503 on
//	               reject); "stream": true switches the response to
//	               NDJSON progress lines ending in a "done" record
//	GET  /collective/stats  collective-layer snapshot (rounds,
//	               self-route ratio, per-plane occupancy, per-op counts)
//	GET  /stats    full engine metrics snapshot (hits, misses,
//	               fallbacks, per-stage latency histograms, queue depth)
//	GET  /fabric/stats  fabric snapshot (accepted/rejected/delivered,
//	               frame fill, per-plane engines, per-VOQ counters)
//	GET  /healthz  pure liveness probe ("ok" while the process is up)
//	GET  /readyz   readiness probe: 503 with reasons when no plane is
//	               healthy, VOQs are saturated, or the engine queue is
//	               full; 200 with "degraded" reasons on partial trouble
//	GET  /metrics  Prometheus text-format exposition: counters, gauges,
//	               and per-stage latency histograms (engine wait/plan/
//	               apply, fabric VOQ wait/match/plane/verify/fault-check,
//	               collective round/end-to-end) for every layer, plus
//	               per-stage benes_switch_* flight-recorder series
//	GET  /debug/heatmap  gate-level utilization heatmap: per-switch
//	               traversal/flip/forced/fault/broadcast counters for
//	               all 2n-1 stages x N/2 switches, engine and per-plane,
//	               plus the n-stage copy-ladder sections fed by
//	               multicast traffic, with per-stage occupancy/skew
//	               summaries, JSON
//	GET  /debug/history?window=30s  rate-over-time report from the
//	               snapshot ring: counter deltas/rates and windowed
//	               histogram p50/p99 over the requested window
//	GET  /debug/traces  recent slow request traces (per-stage spans for
//	               /send packets and /collective rounds), JSON
//	POST /debug/faults  {"plane":1,"faults":[{"stage":3,"switch":5,
//	               "stuck_crossed":true}]} freezes switches of one
//	               fabric plane in their stuck states (gate-level
//	               simulation); the plane leaves rotation while still
//	               answering probes. An empty fault list repairs it
//	POST /debug/diagnose  {"plane":1,"budget":12,"max_faults":1,
//	               "seed":7} runs a fault-localization session against
//	               the plane: crafted probe permutations, contradiction-
//	               based elimination, ranked posterior over stuck-switch
//	               hypotheses, JSON report
//	GET  /debug/journal?from=&to=  the hash-chained traffic journal's
//	               retained record window as NDJSON, one record per
//	               line (requires -journal)
//	GET  /debug/journal/verify?from=&to=  walk the chain over the
//	               window and report the verdict: records verified,
//	               first broken sequence number, head digest
//	POST /debug/replay  {"from":1,"to":0} deterministically re-executes
//	               the journal window (0 = retained bound) against a
//	               fresh network and reports every divergence between
//	               the recorded deliveries and the re-execution
//	GET  /debug/pprof/  standard net/http/pprof profiles
//	GET  /debug/vars  standard expvar, with the engine and fabric
//	               published under "engine" and "fabric"
//
// benesd shuts down gracefully: SIGINT/SIGTERM stops accepting
// connections, drains in-flight requests via http.Server.Shutdown with
// a timeout, then closes the fabric (delivering everything queued) and
// the engine.
//
// Example:
//
//	benesd -n 10 -planes 4 &
//	curl -s localhost:8080/route -d '{"dest":[1,0,3,2,...]}'
//	curl -s localhost:8080/send -d '{"src":0,"dst":511}'
//	curl -s localhost:8080/fabric/stats
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"math/bits"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/diagnose"
	"repro/internal/engine"
	"repro/internal/fabric"
	"repro/internal/journal"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/perm"
)

type server struct {
	eng *engine.Engine[int]
	fab *fabric.Fabric[int]
	col *collective.Service[int]
	obs *obsState
	log *slog.Logger
	// dnet is the fabric planes' network geometry, shared by every
	// /debug/diagnose prover.
	dnet *core.Network
	// jrn is the hash-chained traffic journal behind /debug/journal and
	// /debug/replay; nil when benesd runs without -journal.
	jrn *journal.Journal
}

// obsState bundles the process-wide observability surface: the metric
// registry behind /metrics, the slow-trace ring behind /debug/traces,
// the snapshot time-series ring behind /debug/history, and the
// process's structured logger.
type obsState struct {
	reg  *obs.Registry
	ring *obs.TraceRing
	hist *obs.History
	diag *diagnose.Metrics
	log  *slog.Logger
}

// newObsState builds one registry over all three layers plus the
// bounded history ring sampling it (histCap samples every
// histInterval; Start it to begin sampling). The fabric's deliver
// callback must release packet traces into the same ring (see
// newTracedDeliver) so /send traces surface once their last packet is
// verified at its output port. A nil journal skips the benes_journal_*
// series; a nil logger logs to stderr.
func newObsState(eng *engine.Engine[int], fab *fabric.Fabric[int], col *collective.Service[int], jr *journal.Journal, ring *obs.TraceRing,
	histCap int, histInterval time.Duration, logger *slog.Logger) *obsState {
	reg := obs.NewRegistry()
	eng.Register(reg, nil)
	fab.Register(reg)
	col.Register(reg)
	if jr != nil {
		jr.Metrics().Register(reg)
	}
	diag := &diagnose.Metrics{}
	diag.Register(reg)
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	return &obsState{reg: reg, ring: ring, hist: obs.NewHistory(reg, histCap, histInterval), diag: diag, log: logger}
}

// newTracedDeliver returns the fabric deliver callback: each verified
// packet drops its trace reference, and whoever drops the last one
// hands the finished trace to the ring.
func newTracedDeliver(ring *obs.TraceRing) func(fabric.Packet[int]) {
	return func(p fabric.Packet[int]) {
		if p.Trace.Release() {
			ring.Observe(p.Trace)
		}
	}
}

// traced wraps a handler with request tracing: a fresh trace rides the
// request context, stages append spans as the request moves through
// the pipeline, and the handler's reference is dropped on return — if
// no packet is still in flight holding one, the trace lands in the
// ring right away; otherwise the fabric's deliver callback delivers it
// when the last packet does.
func (s *server) traced(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tr := obs.NewTrace(name)
		start := time.Now()
		h(w, r.WithContext(obs.With(r.Context(), tr)))
		// The trace_id here is the same ID /debug/traces serves, so a
		// log line joins to its per-stage span breakdown.
		s.log.Info("request served", "path", name, "trace_id", tr.ID(), "dur", time.Since(start))
		if tr.Release() {
			s.obs.ring.Observe(tr)
		}
	}
}

type routeRequest struct {
	Dest []int `json:"dest"`
	Data []int `json:"data,omitempty"`
}

type routeResponse struct {
	Data     []int  `json:"data"`
	Kind     string `json:"kind"`
	CacheHit bool   `json:"cache_hit"`
}

func (s *server) handleRoute(w http.ResponseWriter, r *http.Request) {
	var req routeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.httpError(w, http.StatusBadRequest, fmt.Sprintf("bad JSON: %v", err))
		return
	}
	if req.Data == nil {
		req.Data = make([]int, len(req.Dest))
		for i := range req.Data {
			req.Data[i] = i
		}
	}
	resp := s.eng.Route(perm.Perm(req.Dest), req.Data)
	if resp.Err != nil {
		s.httpError(w, http.StatusBadRequest, resp.Err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, routeResponse{Data: resp.Data, Kind: resp.Kind.String(), CacheHit: resp.CacheHit})
}

type sendPacket struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
}

type sendRequest struct {
	// Either a single packet inline...
	Src *int `json:"src,omitempty"`
	Dst *int `json:"dst,omitempty"`
	// ...or a batch.
	Packets []sendPacket `json:"packets,omitempty"`
}

type sendResponse struct {
	Accepted int    `json:"accepted"`
	Rejected int    `json:"rejected"`
	Error    string `json:"error,omitempty"`
}

// handleSend offers packets to the fabric. Backpressure rejections are
// reported per packet: a fully rejected request gets 429, a mixed or
// fully accepted one 200. Malformed packets get 400.
func (s *server) handleSend(w http.ResponseWriter, r *http.Request) {
	var req sendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.httpError(w, http.StatusBadRequest, fmt.Sprintf("bad JSON: %v", err))
		return
	}
	pkts := req.Packets
	if req.Src != nil || req.Dst != nil {
		if req.Src == nil || req.Dst == nil {
			s.httpError(w, http.StatusBadRequest, "single-packet send needs both src and dst")
			return
		}
		pkts = append(pkts, sendPacket{Src: *req.Src, Dst: *req.Dst})
	}
	if len(pkts) == 0 {
		s.httpError(w, http.StatusBadRequest, "no packets")
		return
	}
	// Each accepted packet carries the request trace and one reference
	// to it; a rejected packet returns its reference immediately (never
	// the last — the middleware still holds the handler's).
	tr := obs.FromContext(r.Context())
	admit := time.Now()
	var resp sendResponse
	for _, p := range pkts {
		tr.Ref()
		switch err := s.fab.Send(fabric.Packet[int]{Src: p.Src, Dst: p.Dst, Trace: tr}); err {
		case nil:
			resp.Accepted++
		case fabric.ErrBackpressure, fabric.ErrClosed:
			tr.Release()
			resp.Rejected++
		default:
			tr.Release()
			s.httpError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	tr.Span("admit", admit, fmt.Sprintf("%d accepted, %d rejected", resp.Accepted, resp.Rejected))
	code := http.StatusOK
	if resp.Accepted == 0 {
		code = http.StatusTooManyRequests
	}
	s.writeJSON(w, code, resp)
}

// multicastEntry is one fan-out unit: source port Src copied to every
// port in Dsts.
type multicastEntry struct {
	Src  int   `json:"src"`
	Dsts []int `json:"dsts"`
}

type multicastRequest struct {
	// Map is the output-major mapping: Map[out] names the source port
	// whose value lands at output out, -1 for outputs left idle.
	Map []int `json:"map,omitempty"`
	// Entries is the fan-out form, converted to a mapping (round mode)
	// or sent as individual fan-out packets (packet mode).
	Entries []multicastEntry `json:"entries,omitempty"`
	// Packet switches from one whole-mapping copy-network round to the
	// packet path: each entry rides the VOQ -> frame scheduler -> plane
	// pipeline as a multicast packet.
	Packet bool `json:"packet,omitempty"`
}

type multicastResponse struct {
	// Round mode: the mapping's classification and the round's books.
	Class     string `json:"class,omitempty"`
	Sources   int    `json:"sources,omitempty"`
	Assigned  int    `json:"assigned,omitempty"`
	MaxFanout int    `json:"max_fanout,omitempty"`
	Plane     int    `json:"plane,omitempty"`
	CacheHit  bool   `json:"cache_hit,omitempty"`
	// Packet mode: per-packet admission counts.
	Accepted int `json:"accepted,omitempty"`
	Rejected int `json:"rejected,omitempty"`
}

// handleMulticast serves fan-out traffic. Round mode (default) turns
// the request into one output-major mapping, classifies it, and routes
// it as a whole copy-network round with plane failover; packet mode
// offers each entry to the fabric as a multicast packet, reporting
// admission like /send. Spec errors are 400s, full backpressure 429.
func (s *server) handleMulticast(w http.ResponseWriter, r *http.Request) {
	var req multicastRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.httpError(w, http.StatusBadRequest, fmt.Sprintf("bad JSON: %v", err))
		return
	}
	if req.Map != nil && req.Entries != nil {
		s.httpError(w, http.StatusBadRequest, "give either map or entries, not both")
		return
	}
	if req.Packet {
		if req.Entries == nil {
			s.httpError(w, http.StatusBadRequest, "packet mode needs entries")
			return
		}
		tr := obs.FromContext(r.Context())
		admit := time.Now()
		var resp multicastResponse
		for _, e := range req.Entries {
			// One reference per copy: the fabric delivers (and the
			// deliver callback releases) each destination separately.
			for range e.Dsts {
				tr.Ref()
			}
			switch err := s.fab.SendMulticast(fabric.MulticastPacket[int]{Src: e.Src, Dsts: e.Dsts, Payload: e.Src, Trace: tr}); err {
			case nil:
				resp.Accepted++
			case fabric.ErrBackpressure, fabric.ErrClosed:
				for range e.Dsts {
					tr.Release()
				}
				resp.Rejected++
			default:
				for range e.Dsts {
					tr.Release()
				}
				s.httpError(w, http.StatusBadRequest, err.Error())
				return
			}
		}
		tr.Span("admit", admit, fmt.Sprintf("%d accepted, %d rejected", resp.Accepted, resp.Rejected))
		code := http.StatusOK
		if resp.Accepted == 0 {
			code = http.StatusTooManyRequests
		}
		s.writeJSON(w, code, resp)
		return
	}
	m := req.Map
	if m == nil {
		n := s.fab.N()
		m = make([]int, n)
		for i := range m {
			m[i] = fabric.Idle
		}
		for _, e := range req.Entries {
			if e.Src < 0 || e.Src >= n {
				s.httpError(w, http.StatusBadRequest, fmt.Sprintf("source %d out of range [0,%d)", e.Src, n))
				return
			}
			for _, d := range e.Dsts {
				if d < 0 || d >= n {
					s.httpError(w, http.StatusBadRequest, fmt.Sprintf("destination %d out of range [0,%d)", d, n))
					return
				}
				if m[d] != fabric.Idle {
					s.httpError(w, http.StatusBadRequest, fmt.Sprintf("output %d claimed twice", d))
					return
				}
				m[d] = e.Src
			}
		}
	}
	cls := perm.ClassifyMapping(m)
	res, err := s.fab.RouteMulticastRound(m, 0)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, fabric.ErrClosed) || errors.Is(err, fabric.ErrPlaneDown) {
			code = http.StatusServiceUnavailable
		}
		s.httpError(w, code, err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, multicastResponse{
		Class:     cls.Class.String(),
		Sources:   cls.Sources,
		Assigned:  cls.Assigned,
		MaxFanout: cls.MaxFanout,
		Plane:     res.Plane,
		CacheHit:  res.CacheHit,
	})
}

type collectiveRequest struct {
	Op   string  `json:"op"`
	Data [][]int `json:"data"`
	// Root selects the root port for broadcast, gather, and scatter.
	Root int `json:"root,omitempty"`
	// Rows and Cols tile the ports for op "transpose".
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// Dests is the per-port, per-chunk destination matrix for op
	// "exchange" (-1 = keep in place), or the per-source subscriber
	// lists for op "fanout".
	Dests [][]int `json:"dests,omitempty"`
	// DeadlineMs arms deadline-aware admission: if the compiled
	// schedule's estimated time exceeds it, the request is rejected
	// with 503 before any round is routed.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	// Stream switches the response to NDJSON progress records.
	Stream bool `json:"stream,omitempty"`
}

type collectiveResponse struct {
	Done   bool                   `json:"done"`
	Result [][]int                `json:"result"`
	Stats  collective.HandleStats `json:"stats"`
}

// handleCollective submits one bulk operation to the collective layer.
// Spec errors (unknown op, shape mismatches, bad destinations) are
// 400s, admission rejects are 503s; the response is either the final
// result or — with "stream": true — NDJSON progress lines ending in a
// "done" record.
func (s *server) handleCollective(w http.ResponseWriter, r *http.Request) {
	var req collectiveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.httpError(w, http.StatusBadRequest, fmt.Sprintf("bad JSON: %v", err))
		return
	}
	ctx := r.Context()
	if req.DeadlineMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMs)*time.Millisecond)
		defer cancel()
	}
	var h *collective.Handle[int]
	var err error
	switch req.Op {
	case "alltoall":
		h, err = s.col.AllToAll(ctx, req.Data)
	case "exchange":
		h, err = s.col.Exchange(ctx, req.Dests, req.Data)
	case "transpose":
		h, err = s.col.Transpose(ctx, req.Rows, req.Cols, req.Data)
	case "shuffle":
		h, err = s.col.Shuffle(ctx, req.Data)
	case "bitreversal":
		h, err = s.col.BitReversal(ctx, req.Data)
	case "broadcast":
		h, err = s.col.Broadcast(ctx, req.Root, req.Data)
	case "gather":
		h, err = s.col.Gather(ctx, req.Root, req.Data)
	case "scatter":
		h, err = s.col.Scatter(ctx, req.Root, req.Data)
	case "allgather":
		h, err = s.col.AllGather(ctx, req.Data)
	case "fanout":
		h, err = s.col.FanOut(ctx, req.Dests, req.Data)
	default:
		s.httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown collective op %q", req.Op))
		return
	}
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, collective.ErrDeadline) {
			code = http.StatusServiceUnavailable
		}
		s.httpError(w, code, err.Error())
		return
	}
	if req.Stream {
		s.streamCollective(w, h)
		return
	}
	result, err := h.Wait()
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, collectiveResponse{Done: true, Result: result, Stats: h.Stats()})
}

// streamCollective writes NDJSON progress records while the collective
// runs, then a final record carrying the result (or the error).
func (s *server) streamCollective(w http.ResponseWriter, h *collective.Handle[int]) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(v any) {
		if err := enc.Encode(v); err != nil {
			s.log.Warn("streaming collective progress", "err", err)
		}
		if fl != nil {
			fl.Flush()
		}
	}
	progress := func() map[string]int {
		completed, total := h.Progress()
		return map[string]int{"completed": completed, "total": total}
	}
	emit(progress())
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-h.Done():
			result, err := h.Wait()
			if err != nil {
				emit(map[string]any{"done": true, "error": err.Error()})
				return
			}
			emit(collectiveResponse{Done: true, Result: result, Stats: h.Stats()})
			return
		case <-tick.C:
			emit(progress())
		}
	}
}

func (s *server) handleCollectiveStats(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.col.Stats())
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.eng.Stats())
}

func (s *server) handleFabricStats(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.fab.Stats())
}

// readiness is the /readyz body: whether the process should receive
// traffic, plus every degradation the probe noticed (a degraded
// process can still be ready — e.g. one failed plane out of four).
type readiness struct {
	Ready    bool     `json:"ready"`
	Degraded []string `json:"degraded,omitempty"`
}

// computeReadiness derives the /readyz verdict from live signals:
// plane rotation, VOQ occupancy, and engine queue depth. Not ready
// when no plane can serve, the VOQs are full (every Send would drop or
// block), or the engine queue is at capacity; degraded-but-ready when
// any plane is out of rotation or either queue crosses half full.
func computeReadiness(h fabric.Health, queueDepth int64, queueCap int) readiness {
	r := readiness{Ready: true}
	switch {
	case h.PlanesHealthy == 0:
		r.Ready = false
		r.Degraded = append(r.Degraded, "no healthy planes")
	case h.PlanesHealthy < h.PlanesTotal:
		r.Degraded = append(r.Degraded, fmt.Sprintf("%d/%d planes healthy", h.PlanesHealthy, h.PlanesTotal))
	}
	switch {
	case h.VOQOccupied >= h.VOQCapacity:
		r.Ready = false
		r.Degraded = append(r.Degraded, "VOQs saturated")
	case 2*h.VOQOccupied >= h.VOQCapacity:
		r.Degraded = append(r.Degraded, fmt.Sprintf("VOQs %d/%d occupied", h.VOQOccupied, h.VOQCapacity))
	}
	switch {
	case queueDepth >= int64(queueCap):
		r.Ready = false
		r.Degraded = append(r.Degraded, "engine queue full")
	case 2*queueDepth >= int64(queueCap):
		r.Degraded = append(r.Degraded, fmt.Sprintf("engine queue %d/%d", queueDepth, queueCap))
	}
	return r
}

// handleReadyz is the readiness probe: 200 while the fabric and engine
// can absorb traffic, 503 once they cannot. /healthz stays a pure
// liveness check — the process is up — so an orchestrator restarts on
// /healthz failures but only sheds traffic on /readyz ones.
func (s *server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	r := computeReadiness(s.fab.Health(), s.eng.Metrics().QueueDepth(), s.eng.QueueCapacity())
	if s.jrn != nil {
		// Journal trouble degrades but never sheds traffic: the data path
		// is fine, only the audit trail has holes.
		r.Degraded = append(r.Degraded, journalDegradations(s.jrn.Dropped(), s.jrn.SpillBacklog())...)
	}
	code := http.StatusOK
	if !r.Ready {
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, r)
}

// heatmapStage is one stage row of the /debug/heatmap response: the
// per-switch counter vectors plus the stage's occupancy/skew summary.
type heatmapStage struct {
	Stage      int     `json:"stage"`
	ControlBit int     `json:"control_bit"`
	Traversed  []int64 `json:"traversed"`
	Flips      []int64 `json:"flips"`
	Forced     []int64 `json:"forced"`
	FaultHits  []int64 `json:"fault_hits"`
	// Bcast counts transitions into or out of a broadcast (fan-out)
	// switch state — always zero on the binary B(n) stages, live on
	// the copy-ladder stages.
	Bcast   []int64          `json:"bcast_flips"`
	Summary obs.StageSummary `json:"summary"`
}

type heatmapPlane struct {
	Plane  int            `json:"plane"`
	Stages []heatmapStage `json:"stages"`
	// Ladder is the plane's copy-ladder section (multicast frames
	// only); omitted when the plane has served none or recording is
	// off.
	Ladder []heatmapStage `json:"ladder,omitempty"`
}

type heatmapResponse struct {
	N                int `json:"n"`
	Stages           int `json:"stages"`
	SwitchesPerStage int `json:"switches_per_stage"`
	// LadderStages is the copy ladder's depth (log2 N): the fan-out
	// stages multicast traffic traverses between the two B(n) passes.
	LadderStages int `json:"ladder_stages"`
	// Engine is the /route path's recorder; EngineLadder the engine's
	// copy-ladder section; Planes are the fabric's, one per switching
	// plane. Each is omitted when its recorder is disabled.
	Engine       []heatmapStage `json:"engine,omitempty"`
	EngineLadder []heatmapStage `json:"engine_ladder,omitempty"`
	Planes       []heatmapPlane `json:"planes,omitempty"`
}

// heatmapStages renders one recorder snapshot as stage rows. bit maps
// a stage index to the address bit its switches decide: the B(n)
// wiring's control bit for the Benes recorders, n-1-j for ladder stage
// j (the copy ladder splits on address bits MSB-first).
func heatmapStages(rec *netsim.Recorder, bit func(int) int) []heatmapStage {
	snap := rec.Snapshot()
	out := make([]heatmapStage, snap.Stages)
	for st := 0; st < snap.Stages; st++ {
		out[st] = heatmapStage{
			Stage:      st,
			ControlBit: bit(st),
			Traversed:  snap.Counts[st].Traversed,
			Flips:      snap.Counts[st].Flips,
			Forced:     snap.Counts[st].Forced,
			FaultHits:  snap.Counts[st].FaultHits,
			Bcast:      snap.Counts[st].Bcast,
			Summary:    obs.SummarizeStage(snap.Counts[st].Traversed),
		}
	}
	return out
}

// handleHeatmap serves the full gate-level utilization view: all 2n-1
// stages by N/2 switches plus the n copy-ladder stages, for the engine
// and for every fabric plane.
func (s *server) handleHeatmap(w http.ResponseWriter, _ *http.Request) {
	net := s.eng.Network()
	logN := net.Stages()/2 + 1
	benesBit := net.ControlBit
	ladderBit := func(st int) int { return logN - 1 - st }
	resp := heatmapResponse{
		N:                net.N(),
		Stages:           net.Stages(),
		SwitchesPerStage: net.SwitchesPerStage(),
		LadderStages:     logN,
	}
	if rec := s.eng.Recorder(); rec != nil {
		resp.Engine = heatmapStages(rec, benesBit)
	}
	if rec := s.eng.LadderRecorder(); rec != nil {
		resp.EngineLadder = heatmapStages(rec, ladderBit)
	}
	for id := 0; id < s.fab.Planes(); id++ {
		rec := s.fab.PlaneRecorder(id)
		if rec == nil {
			continue
		}
		hp := heatmapPlane{Plane: id, Stages: heatmapStages(rec, benesBit)}
		if lad := s.fab.PlaneLadderRecorder(id); lad != nil {
			hp.Ladder = heatmapStages(lad, ladderBit)
		}
		resp.Planes = append(resp.Planes, hp)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// faultSpec is the wire form of one stuck switch.
type faultSpec struct {
	Stage        int  `json:"stage"`
	Switch       int  `json:"switch"`
	StuckCrossed bool `json:"stuck_crossed"`
}

type faultsRequest struct {
	Plane int `json:"plane"`
	// Faults freezes the listed switches; an empty (or omitted) list
	// repairs the plane and returns it to rotation.
	Faults []faultSpec `json:"faults,omitempty"`
}

type faultsResponse struct {
	Plane   int  `json:"plane"`
	Faults  int  `json:"faults"`
	Healthy bool `json:"healthy"`
}

// handleDebugFaults injects (or clears) stuck-switch faults on one
// fabric plane. The damaged plane leaves rotation immediately — flows
// rehash to the survivors — but keeps answering /debug/diagnose
// probes. Bad plane IDs and out-of-range switch coordinates are 400s.
func (s *server) handleDebugFaults(w http.ResponseWriter, r *http.Request) {
	var req faultsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.httpError(w, http.StatusBadRequest, fmt.Sprintf("bad JSON: %v", err))
		return
	}
	faults := make([]core.Fault, len(req.Faults))
	for i, f := range req.Faults {
		faults[i] = core.Fault{Stage: f.Stage, Switch: f.Switch, StuckCrossed: f.StuckCrossed}
	}
	if err := s.fab.InjectFaults(req.Plane, faults); err != nil {
		s.httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	h := s.fab.Health()
	s.writeJSON(w, http.StatusOK, faultsResponse{
		Plane:   req.Plane,
		Faults:  len(faults),
		Healthy: len(faults) == 0 && h.PlanesHealthy > 0,
	})
}

type diagnoseRequest struct {
	Plane int `json:"plane"`
	// Budget caps the probes the session may issue (0 = the prover's
	// default, 2*logN + 2).
	Budget int `json:"budget,omitempty"`
	// MaxFaults is the hypothesis order: 1 (default) or 2.
	MaxFaults int `json:"max_faults,omitempty"`
	// Seed drives the deterministic probe pool, so a diagnosis can be
	// replayed exactly.
	Seed int64 `json:"seed,omitempty"`
}

type diagnoseResponse struct {
	Plane  int              `json:"plane"`
	Report *diagnose.Report `json:"report"`
}

// handleDebugDiagnose runs one fault-localization session against a
// fabric plane: crafted probe permutations go through the plane (live
// engine or fault simulator — no payload moves, no VOQ is touched),
// and the posterior over stuck-switch hypotheses comes back ranked.
// Works on planes already out of rotation — that is the point.
func (s *server) handleDebugDiagnose(w http.ResponseWriter, r *http.Request) {
	var req diagnoseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.httpError(w, http.StatusBadRequest, fmt.Sprintf("bad JSON: %v", err))
		return
	}
	if req.Plane < 0 || req.Plane >= s.fab.Planes() {
		s.httpError(w, http.StatusBadRequest, fmt.Sprintf("no plane %d", req.Plane))
		return
	}
	if req.Budget < 0 {
		s.httpError(w, http.StatusBadRequest, "budget must be non-negative")
		return
	}
	prover, err := diagnose.New(diagnose.Config{
		Net:       s.dnet,
		MaxFaults: req.MaxFaults,
		Budget:    req.Budget,
		Seed:      req.Seed,
		Metrics:   s.obs.diag,
	})
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	rep, err := prover.Diagnose(diagnose.OracleFunc(func(d perm.Perm) (perm.Perm, error) {
		return s.fab.ProbePlane(req.Plane, d)
	}))
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, engine.ErrClosed) || errors.Is(err, fabric.ErrClosed) {
			code = http.StatusServiceUnavailable
		}
		s.httpError(w, code, err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, diagnoseResponse{Plane: req.Plane, Report: rep})
}

func (s *server) httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(map[string]string{"error": msg}); err != nil {
		s.log.Warn("encoding error response", "err", err)
	}
}

func (s *server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.log.Warn("encoding response", "err", err)
	}
}

// newMux wires the handlers; split from main so tests can mount the
// mux on an httptest server. o supplies the /metrics registry and the
// /debug/traces ring; /send and /collective run under the tracing
// middleware; jr (nil when journaling is off) backs /debug/journal and
// /debug/replay.
func newMux(eng *engine.Engine[int], fab *fabric.Fabric[int], col *collective.Service[int], o *obsState, jr *journal.Journal) *http.ServeMux {
	s := &server{eng: eng, fab: fab, col: col, obs: o, log: o.log,
		dnet: core.New(bits.Len(uint(fab.N())) - 1), jrn: jr}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /route", s.handleRoute)
	mux.HandleFunc("POST /send", s.traced("/send", s.handleSend))
	mux.HandleFunc("POST /multicast", s.traced("/multicast", s.handleMulticast))
	mux.HandleFunc("POST /collective", s.traced("/collective", s.handleCollective))
	mux.HandleFunc("GET /collective/stats", s.handleCollectiveStats)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /fabric/stats", s.handleFabricStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.Handle("GET /metrics", o.reg.Handler())
	mux.Handle("GET /debug/traces", o.ring.Handler())
	mux.HandleFunc("GET /debug/heatmap", s.handleHeatmap)
	mux.HandleFunc("POST /debug/faults", s.traced("/debug/faults", s.handleDebugFaults))
	mux.HandleFunc("POST /debug/diagnose", s.traced("/debug/diagnose", s.handleDebugDiagnose))
	mux.HandleFunc("GET /debug/journal", s.handleDebugJournal)
	mux.HandleFunc("GET /debug/journal/verify", s.handleDebugJournalVerify)
	mux.HandleFunc("POST /debug/replay", s.traced("/debug/replay", s.handleDebugReplay))
	mux.Handle("GET /debug/history", o.hist.Handler())
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// serve runs the HTTP server on ln until ctx is cancelled, then shuts
// down gracefully: stop accepting, drain in-flight requests within
// shutdownTimeout, close the fabric (which delivers everything already
// accepted), the engine, and last the journal (nil OK) so the final
// deliveries are recorded and the spill queue drains. Split from main
// so tests can drive the full lifecycle without signals.
func serve(ctx context.Context, ln net.Listener, eng *engine.Engine[int], fab *fabric.Fabric[int], col *collective.Service[int], o *obsState, jr *journal.Journal, shutdownTimeout time.Duration) error {
	srv := &http.Server{Handler: newMux(eng, fab, col, o, jr)}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err // listener failed before any shutdown request
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	err := srv.Shutdown(sctx)
	o.hist.Stop()
	fab.Close()
	eng.Close()
	if jr != nil {
		jr.Close()
	}
	if err != nil {
		return fmt.Errorf("benesd: shutdown: %w", err)
	}
	return nil
}

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		n       = flag.Int("n", 10, "network size exponent: B(n) routes N=2^n terminals")
		workers = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		cache   = flag.Int("cache", engine.DefaultCacheCapacity, "plan cache capacity (plans)")
		replay  = flag.Bool("replay", false, "replay cached states gate-by-gate instead of applying the mapping")
		psetup  = flag.Bool("parallel-setup", true, "route non-F(n) cache misses through the multicore cold setup")
		pswork  = flag.Int("setup-workers", 0, "goroutines per parallel cold setup (0 = GOMAXPROCS)")
		psmemo  = flag.Bool("setup-memo", true, "memoize half-network sub-plans in the plan cache")
		planes  = flag.Int("planes", 2, "parallel switching planes in the packet fabric")
		voq     = flag.Int("voq-depth", fabric.DefaultVOQDepth, "per-(input,output) virtual output queue bound")
		block   = flag.Bool("block", false, "block /send on full queues instead of tail-dropping")
		affin   = flag.String("affinity", "flow-hash", "plane affinity: flow-hash pins each (src,dst) flow to one plane, spray round-robins packets")
		drain   = flag.Duration("drain", 10*time.Second, "graceful shutdown timeout")
		tring   = flag.Int("trace-ring", 64, "recent request traces kept for /debug/traces")
		tslow   = flag.Duration("trace-slow", 0, "keep only traces at least this slow (0 keeps all)")
		record  = flag.Bool("record", true, "gate-level flight recorder (per-switch counters behind /debug/heatmap)")
		hcap    = flag.Int("history", 120, "snapshot samples kept for /debug/history")
		hival   = flag.Duration("history-interval", time.Second, "interval between /debug/history snapshot samples")
		jflag   = flag.Bool("journal", false, "hash-chained traffic journal (/debug/journal, /debug/replay)")
		jcap    = flag.Int("journal-cap", journal.DefaultCap, "journal memory ring capacity (records)")
		jspill  = flag.String("journal-spill", "", "directory receiving evicted journal segments (empty = age out in memory)")
	)
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	fatal := func(err error) {
		logger.Error("benesd: startup failed", "err", err)
		os.Exit(1)
	}

	var rec *netsim.Recorder
	if *record {
		w := *workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		rec = netsim.NewRecorder(core.New(*n), w+1)
	}
	var jr *journal.Journal
	var jw *journal.Writer
	if *jflag {
		j, err := journal.New(journal.Config{Cap: *jcap, SpillDir: *jspill})
		if err != nil {
			fatal(err)
		}
		jr, jw = j, j.Writer()
	}
	eng, err := engine.New[int](engine.Config{
		LogN:          *n,
		Workers:       *workers,
		CacheCapacity: *cache,
		ParallelSetup: *psetup,
		SetupWorkers:  *pswork,
		SetupMemo:     *psetup && *psmemo,
		ReplayStates:  *replay,
		Recorder:      rec,
		Journal:       jw,
	})
	if err != nil {
		fatal(err)
	}
	policy := fabric.DropNew
	if *block {
		policy = fabric.Block
	}
	var affinity fabric.Affinity
	switch *affin {
	case "flow-hash":
		affinity = fabric.FlowHash
	case "spray":
		affinity = fabric.Spray
	default:
		fatal(fmt.Errorf("benesd: -affinity must be flow-hash or spray, got %q", *affin))
	}
	ring := obs.NewTraceRing(*tring, *tslow)
	fab, err := fabric.New[int](fabric.Config{
		LogN:          *n,
		Planes:        *planes,
		VOQDepth:      *voq,
		Policy:        policy,
		Affinity:      affinity,
		ParallelSetup: *psetup,
		Record:        *record,
		Journal:       jw,
	}, newTracedDeliver(ring))
	if err != nil {
		fatal(err)
	}
	if jr != nil {
		// Checkpoints snapshot both layers: the fabric's packet books and
		// per-plane recorder digests, plus the engine's /route counters.
		jr.SetCheckpointSource(func() journal.Checkpoint {
			cp := fab.JournalCheckpoint()
			st := eng.Stats()
			cp.EngineRequests = uint64(st.Requests)
			cp.EngineHits = uint64(st.Hits)
			cp.EngineMisses = uint64(st.Misses)
			return cp
		})
	}
	col := collective.New[int](fab, collective.Options{})
	o := newObsState(eng, fab, col, jr, ring, *hcap, *hival, logger)
	o.hist.Start()
	expvar.Publish("engine", expvar.Func(func() any { return eng.Stats() }))
	expvar.Publish("fabric", fab.Var())
	expvar.Publish("collective", col.Var())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	logger.Info("benesd: serving", "log_n", *n, "terminals", eng.Network().N(), "planes", fab.Planes(),
		"affinity", affinity.String(), "addr", *addr, "record", *record,
		"parallel_setup", *psetup, "setup_memo", *psetup && *psmemo, "journal", *jflag)
	if err := serve(ctx, ln, eng, fab, col, o, jr, *drain); err != nil {
		fatal(err)
	}
	logger.Info("benesd: drained and stopped")
}
