// Command benesd is a demo routing server over the batched engine of
// internal/engine: it accepts permutation requests over HTTP, serves
// them through the sharded worker pool with the LRU plan cache, and
// exposes the engine's metrics.
//
// Endpoints:
//
//	POST /route    {"dest":[...], "data":[...]} -> routed payload
//	               ("data" optional; defaults to the identity payload
//	               0..N-1, so the response shows where each input went)
//	GET  /stats    full engine metrics snapshot (hits, misses,
//	               fallbacks, per-stage latency histograms, queue depth)
//	GET  /healthz  liveness probe
//	GET  /debug/vars  standard expvar, with the engine published
//	               under "engine"
//
// Example:
//
//	benesd -n 10 &
//	curl -s localhost:8080/route -d '{"dest":[1,0,3,2,...]}'
//	curl -s localhost:8080/stats
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"

	"repro/internal/engine"
	"repro/internal/perm"
)

type server struct {
	eng *engine.Engine[int]
}

type routeRequest struct {
	Dest []int `json:"dest"`
	Data []int `json:"data,omitempty"`
}

type routeResponse struct {
	Data     []int  `json:"data"`
	Kind     string `json:"kind"`
	CacheHit bool   `json:"cache_hit"`
}

func (s *server) handleRoute(w http.ResponseWriter, r *http.Request) {
	var req routeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad JSON: %v", err))
		return
	}
	if req.Data == nil {
		req.Data = make([]int, len(req.Dest))
		for i := range req.Data {
			req.Data[i] = i
		}
	}
	resp := s.eng.Route(perm.Perm(req.Dest), req.Data)
	if resp.Err != nil {
		httpError(w, http.StatusBadRequest, resp.Err.Error())
		return
	}
	writeJSON(w, routeResponse{Data: resp.Data, Kind: resp.Kind.String(), CacheHit: resp.CacheHit})
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.eng.Stats())
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(map[string]string{"error": msg}); err != nil {
		log.Printf("benesd: encoding error response: %v", err)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("benesd: encoding response: %v", err)
	}
}

// newMux wires the handlers; split from main so tests can mount the
// mux on an httptest server.
func newMux(eng *engine.Engine[int]) *http.ServeMux {
	s := &server{eng: eng}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /route", s.handleRoute)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		n       = flag.Int("n", 10, "network size exponent: B(n) routes N=2^n terminals")
		workers = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		cache   = flag.Int("cache", engine.DefaultCacheCapacity, "plan cache capacity (plans)")
		replay  = flag.Bool("replay", false, "replay cached states gate-by-gate instead of applying the mapping")
	)
	flag.Parse()

	eng, err := engine.New[int](engine.Config{
		LogN:          *n,
		Workers:       *workers,
		CacheCapacity: *cache,
		ReplayStates:  *replay,
	})
	if err != nil {
		log.Fatal(err)
	}
	expvar.Publish("engine", expvar.Func(func() any { return eng.Stats() }))

	log.Printf("benesd: serving B(%d) (N=%d) on %s", *n, eng.Network().N(), *addr)
	log.Fatal(http.ListenAndServe(*addr, newMux(eng)))
}
