// Command benesd is a demo routing server over the batched engine of
// internal/engine and the packet-mode fabric of internal/fabric: it
// accepts whole-permutation requests and individual packets over HTTP,
// serves them through the sharded worker pool / multi-plane frame
// scheduler, and exposes metrics for both layers.
//
// Endpoints:
//
//	POST /route    {"dest":[...], "data":[...]} -> routed payload
//	               ("data" optional; defaults to the identity payload
//	               0..N-1, so the response shows where each input went)
//	POST /send     {"src":3, "dst":9} or {"packets":[{"src":..,"dst":..},...]}
//	               -> per-packet accepted/rejected counts; packets ride
//	               the VOQ → frame scheduler → plane path
//	POST /collective  {"op":"alltoall","data":[[...],...]} -> bulk
//	               data movement compiled into pipelined fabric rounds.
//	               Ops: alltoall, exchange (with "dests"), transpose
//	               (with "rows"/"cols"), shuffle, bitreversal,
//	               broadcast / gather / scatter (with "root").
//	               "deadline_ms" arms deadline-aware admission (503 on
//	               reject); "stream": true switches the response to
//	               NDJSON progress lines ending in a "done" record
//	GET  /collective/stats  collective-layer snapshot (rounds,
//	               self-route ratio, per-plane occupancy, per-op counts)
//	GET  /stats    full engine metrics snapshot (hits, misses,
//	               fallbacks, per-stage latency histograms, queue depth)
//	GET  /fabric/stats  fabric snapshot (accepted/rejected/delivered,
//	               frame fill, per-plane engines, per-VOQ counters)
//	GET  /healthz  liveness probe
//	GET  /metrics  Prometheus text-format exposition: counters, gauges,
//	               and per-stage latency histograms (engine wait/plan/
//	               apply, fabric VOQ wait/match/plane/verify/fault-check,
//	               collective round/end-to-end) for every layer
//	GET  /debug/traces  recent slow request traces (per-stage spans for
//	               /send packets and /collective rounds), JSON
//	GET  /debug/pprof/  standard net/http/pprof profiles
//	GET  /debug/vars  standard expvar, with the engine and fabric
//	               published under "engine" and "fabric"
//
// benesd shuts down gracefully: SIGINT/SIGTERM stops accepting
// connections, drains in-flight requests via http.Server.Shutdown with
// a timeout, then closes the fabric (delivering everything queued) and
// the engine.
//
// Example:
//
//	benesd -n 10 -planes 4 &
//	curl -s localhost:8080/route -d '{"dest":[1,0,3,2,...]}'
//	curl -s localhost:8080/send -d '{"src":0,"dst":511}'
//	curl -s localhost:8080/fabric/stats
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/collective"
	"repro/internal/engine"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/perm"
)

type server struct {
	eng *engine.Engine[int]
	fab *fabric.Fabric[int]
	col *collective.Service[int]
	obs *obsState
}

// obsState bundles the process-wide observability surface: the metric
// registry behind /metrics and the slow-trace ring behind
// /debug/traces.
type obsState struct {
	reg  *obs.Registry
	ring *obs.TraceRing
}

// newObsState builds one registry over all three layers. The fabric's
// deliver callback must release packet traces into the same ring (see
// newTracedDeliver) so /send traces surface once their last packet is
// verified at its output port.
func newObsState(eng *engine.Engine[int], fab *fabric.Fabric[int], col *collective.Service[int], ring *obs.TraceRing) *obsState {
	reg := obs.NewRegistry()
	eng.Register(reg, nil)
	fab.Register(reg)
	col.Register(reg)
	return &obsState{reg: reg, ring: ring}
}

// newTracedDeliver returns the fabric deliver callback: each verified
// packet drops its trace reference, and whoever drops the last one
// hands the finished trace to the ring.
func newTracedDeliver(ring *obs.TraceRing) func(fabric.Packet[int]) {
	return func(p fabric.Packet[int]) {
		if p.Trace.Release() {
			ring.Observe(p.Trace)
		}
	}
}

// traced wraps a handler with request tracing: a fresh trace rides the
// request context, stages append spans as the request moves through
// the pipeline, and the handler's reference is dropped on return — if
// no packet is still in flight holding one, the trace lands in the
// ring right away; otherwise the fabric's deliver callback delivers it
// when the last packet does.
func (s *server) traced(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tr := obs.NewTrace(name)
		h(w, r.WithContext(obs.With(r.Context(), tr)))
		if tr.Release() {
			s.obs.ring.Observe(tr)
		}
	}
}

type routeRequest struct {
	Dest []int `json:"dest"`
	Data []int `json:"data,omitempty"`
}

type routeResponse struct {
	Data     []int  `json:"data"`
	Kind     string `json:"kind"`
	CacheHit bool   `json:"cache_hit"`
}

func (s *server) handleRoute(w http.ResponseWriter, r *http.Request) {
	var req routeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad JSON: %v", err))
		return
	}
	if req.Data == nil {
		req.Data = make([]int, len(req.Dest))
		for i := range req.Data {
			req.Data[i] = i
		}
	}
	resp := s.eng.Route(perm.Perm(req.Dest), req.Data)
	if resp.Err != nil {
		httpError(w, http.StatusBadRequest, resp.Err.Error())
		return
	}
	writeJSON(w, http.StatusOK, routeResponse{Data: resp.Data, Kind: resp.Kind.String(), CacheHit: resp.CacheHit})
}

type sendPacket struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
}

type sendRequest struct {
	// Either a single packet inline...
	Src *int `json:"src,omitempty"`
	Dst *int `json:"dst,omitempty"`
	// ...or a batch.
	Packets []sendPacket `json:"packets,omitempty"`
}

type sendResponse struct {
	Accepted int    `json:"accepted"`
	Rejected int    `json:"rejected"`
	Error    string `json:"error,omitempty"`
}

// handleSend offers packets to the fabric. Backpressure rejections are
// reported per packet: a fully rejected request gets 429, a mixed or
// fully accepted one 200. Malformed packets get 400.
func (s *server) handleSend(w http.ResponseWriter, r *http.Request) {
	var req sendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad JSON: %v", err))
		return
	}
	pkts := req.Packets
	if req.Src != nil || req.Dst != nil {
		if req.Src == nil || req.Dst == nil {
			httpError(w, http.StatusBadRequest, "single-packet send needs both src and dst")
			return
		}
		pkts = append(pkts, sendPacket{Src: *req.Src, Dst: *req.Dst})
	}
	if len(pkts) == 0 {
		httpError(w, http.StatusBadRequest, "no packets")
		return
	}
	// Each accepted packet carries the request trace and one reference
	// to it; a rejected packet returns its reference immediately (never
	// the last — the middleware still holds the handler's).
	tr := obs.FromContext(r.Context())
	admit := time.Now()
	var resp sendResponse
	for _, p := range pkts {
		tr.Ref()
		switch err := s.fab.Send(fabric.Packet[int]{Src: p.Src, Dst: p.Dst, Trace: tr}); err {
		case nil:
			resp.Accepted++
		case fabric.ErrBackpressure, fabric.ErrClosed:
			tr.Release()
			resp.Rejected++
		default:
			tr.Release()
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	tr.Span("admit", admit, fmt.Sprintf("%d accepted, %d rejected", resp.Accepted, resp.Rejected))
	code := http.StatusOK
	if resp.Accepted == 0 {
		code = http.StatusTooManyRequests
	}
	writeJSON(w, code, resp)
}

type collectiveRequest struct {
	Op   string  `json:"op"`
	Data [][]int `json:"data"`
	// Root selects the root port for broadcast, gather, and scatter.
	Root int `json:"root,omitempty"`
	// Rows and Cols tile the ports for op "transpose".
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// Dests is the per-port, per-chunk destination matrix for op
	// "exchange" (-1 = keep in place).
	Dests [][]int `json:"dests,omitempty"`
	// DeadlineMs arms deadline-aware admission: if the compiled
	// schedule's estimated time exceeds it, the request is rejected
	// with 503 before any round is routed.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	// Stream switches the response to NDJSON progress records.
	Stream bool `json:"stream,omitempty"`
}

type collectiveResponse struct {
	Done   bool                   `json:"done"`
	Result [][]int                `json:"result"`
	Stats  collective.HandleStats `json:"stats"`
}

// handleCollective submits one bulk operation to the collective layer.
// Spec errors (unknown op, shape mismatches, bad destinations) are
// 400s, admission rejects are 503s; the response is either the final
// result or — with "stream": true — NDJSON progress lines ending in a
// "done" record.
func (s *server) handleCollective(w http.ResponseWriter, r *http.Request) {
	var req collectiveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad JSON: %v", err))
		return
	}
	ctx := r.Context()
	if req.DeadlineMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMs)*time.Millisecond)
		defer cancel()
	}
	var h *collective.Handle[int]
	var err error
	switch req.Op {
	case "alltoall":
		h, err = s.col.AllToAll(ctx, req.Data)
	case "exchange":
		h, err = s.col.Exchange(ctx, req.Dests, req.Data)
	case "transpose":
		h, err = s.col.Transpose(ctx, req.Rows, req.Cols, req.Data)
	case "shuffle":
		h, err = s.col.Shuffle(ctx, req.Data)
	case "bitreversal":
		h, err = s.col.BitReversal(ctx, req.Data)
	case "broadcast":
		h, err = s.col.Broadcast(ctx, req.Root, req.Data)
	case "gather":
		h, err = s.col.Gather(ctx, req.Root, req.Data)
	case "scatter":
		h, err = s.col.Scatter(ctx, req.Root, req.Data)
	default:
		httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown collective op %q", req.Op))
		return
	}
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, collective.ErrDeadline) {
			code = http.StatusServiceUnavailable
		}
		httpError(w, code, err.Error())
		return
	}
	if req.Stream {
		s.streamCollective(w, h)
		return
	}
	result, err := h.Wait()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, collectiveResponse{Done: true, Result: result, Stats: h.Stats()})
}

// streamCollective writes NDJSON progress records while the collective
// runs, then a final record carrying the result (or the error).
func (s *server) streamCollective(w http.ResponseWriter, h *collective.Handle[int]) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(v any) {
		if err := enc.Encode(v); err != nil {
			log.Printf("benesd: streaming collective progress: %v", err)
		}
		if fl != nil {
			fl.Flush()
		}
	}
	progress := func() map[string]int {
		completed, total := h.Progress()
		return map[string]int{"completed": completed, "total": total}
	}
	emit(progress())
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-h.Done():
			result, err := h.Wait()
			if err != nil {
				emit(map[string]any{"done": true, "error": err.Error()})
				return
			}
			emit(collectiveResponse{Done: true, Result: result, Stats: h.Stats()})
			return
		case <-tick.C:
			emit(progress())
		}
	}
}

func (s *server) handleCollectiveStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.col.Stats())
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.eng.Stats())
}

func (s *server) handleFabricStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.fab.Stats())
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(map[string]string{"error": msg}); err != nil {
		log.Printf("benesd: encoding error response: %v", err)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("benesd: encoding response: %v", err)
	}
}

// newMux wires the handlers; split from main so tests can mount the
// mux on an httptest server. o supplies the /metrics registry and the
// /debug/traces ring; /send and /collective run under the tracing
// middleware.
func newMux(eng *engine.Engine[int], fab *fabric.Fabric[int], col *collective.Service[int], o *obsState) *http.ServeMux {
	s := &server{eng: eng, fab: fab, col: col, obs: o}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /route", s.handleRoute)
	mux.HandleFunc("POST /send", s.traced("/send", s.handleSend))
	mux.HandleFunc("POST /collective", s.traced("/collective", s.handleCollective))
	mux.HandleFunc("GET /collective/stats", s.handleCollectiveStats)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /fabric/stats", s.handleFabricStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("GET /metrics", o.reg.Handler())
	mux.Handle("GET /debug/traces", o.ring.Handler())
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// serve runs the HTTP server on ln until ctx is cancelled, then shuts
// down gracefully: stop accepting, drain in-flight requests within
// shutdownTimeout, close the fabric (which delivers everything already
// accepted) and finally the engine. Split from main so tests can drive
// the full lifecycle without signals.
func serve(ctx context.Context, ln net.Listener, eng *engine.Engine[int], fab *fabric.Fabric[int], col *collective.Service[int], o *obsState, shutdownTimeout time.Duration) error {
	srv := &http.Server{Handler: newMux(eng, fab, col, o)}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err // listener failed before any shutdown request
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	err := srv.Shutdown(sctx)
	fab.Close()
	eng.Close()
	if err != nil {
		return fmt.Errorf("benesd: shutdown: %w", err)
	}
	return nil
}

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		n       = flag.Int("n", 10, "network size exponent: B(n) routes N=2^n terminals")
		workers = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		cache   = flag.Int("cache", engine.DefaultCacheCapacity, "plan cache capacity (plans)")
		replay  = flag.Bool("replay", false, "replay cached states gate-by-gate instead of applying the mapping")
		planes  = flag.Int("planes", 2, "parallel switching planes in the packet fabric")
		voq     = flag.Int("voq-depth", fabric.DefaultVOQDepth, "per-(input,output) virtual output queue bound")
		block   = flag.Bool("block", false, "block /send on full queues instead of tail-dropping")
		drain   = flag.Duration("drain", 10*time.Second, "graceful shutdown timeout")
		tring   = flag.Int("trace-ring", 64, "recent request traces kept for /debug/traces")
		tslow   = flag.Duration("trace-slow", 0, "keep only traces at least this slow (0 keeps all)")
	)
	flag.Parse()

	eng, err := engine.New[int](engine.Config{
		LogN:          *n,
		Workers:       *workers,
		CacheCapacity: *cache,
		ReplayStates:  *replay,
	})
	if err != nil {
		log.Fatal(err)
	}
	policy := fabric.DropNew
	if *block {
		policy = fabric.Block
	}
	ring := obs.NewTraceRing(*tring, *tslow)
	fab, err := fabric.New[int](fabric.Config{
		LogN:     *n,
		Planes:   *planes,
		VOQDepth: *voq,
		Policy:   policy,
	}, newTracedDeliver(ring))
	if err != nil {
		log.Fatal(err)
	}
	col := collective.New[int](fab, collective.Options{})
	o := newObsState(eng, fab, col, ring)
	expvar.Publish("engine", expvar.Func(func() any { return eng.Stats() }))
	expvar.Publish("fabric", fab.Var())
	expvar.Publish("collective", col.Var())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("benesd: serving B(%d) (N=%d, %d planes) on %s", *n, eng.Network().N(), fab.Planes(), *addr)
	if err := serve(ctx, ln, eng, fab, col, o, *drain); err != nil {
		log.Fatal(err)
	}
	log.Printf("benesd: drained and stopped")
}
