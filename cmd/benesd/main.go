// Command benesd is a demo routing server over the batched engine of
// internal/engine and the packet-mode fabric of internal/fabric: it
// accepts whole-permutation requests and individual packets over HTTP,
// serves them through the sharded worker pool / multi-plane frame
// scheduler, and exposes metrics for both layers.
//
// Endpoints:
//
//	POST /route    {"dest":[...], "data":[...]} -> routed payload
//	               ("data" optional; defaults to the identity payload
//	               0..N-1, so the response shows where each input went)
//	POST /send     {"src":3, "dst":9} or {"packets":[{"src":..,"dst":..},...]}
//	               -> per-packet accepted/rejected counts; packets ride
//	               the VOQ → frame scheduler → plane path
//	GET  /stats    full engine metrics snapshot (hits, misses,
//	               fallbacks, per-stage latency histograms, queue depth)
//	GET  /fabric/stats  fabric snapshot (accepted/rejected/delivered,
//	               frame fill, per-plane engines, per-VOQ counters)
//	GET  /healthz  liveness probe
//	GET  /debug/vars  standard expvar, with the engine and fabric
//	               published under "engine" and "fabric"
//
// benesd shuts down gracefully: SIGINT/SIGTERM stops accepting
// connections, drains in-flight requests via http.Server.Shutdown with
// a timeout, then closes the fabric (delivering everything queued) and
// the engine.
//
// Example:
//
//	benesd -n 10 -planes 4 &
//	curl -s localhost:8080/route -d '{"dest":[1,0,3,2,...]}'
//	curl -s localhost:8080/send -d '{"src":0,"dst":511}'
//	curl -s localhost:8080/fabric/stats
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/fabric"
	"repro/internal/perm"
)

type server struct {
	eng *engine.Engine[int]
	fab *fabric.Fabric[int]
}

type routeRequest struct {
	Dest []int `json:"dest"`
	Data []int `json:"data,omitempty"`
}

type routeResponse struct {
	Data     []int  `json:"data"`
	Kind     string `json:"kind"`
	CacheHit bool   `json:"cache_hit"`
}

func (s *server) handleRoute(w http.ResponseWriter, r *http.Request) {
	var req routeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad JSON: %v", err))
		return
	}
	if req.Data == nil {
		req.Data = make([]int, len(req.Dest))
		for i := range req.Data {
			req.Data[i] = i
		}
	}
	resp := s.eng.Route(perm.Perm(req.Dest), req.Data)
	if resp.Err != nil {
		httpError(w, http.StatusBadRequest, resp.Err.Error())
		return
	}
	writeJSON(w, http.StatusOK, routeResponse{Data: resp.Data, Kind: resp.Kind.String(), CacheHit: resp.CacheHit})
}

type sendPacket struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
}

type sendRequest struct {
	// Either a single packet inline...
	Src *int `json:"src,omitempty"`
	Dst *int `json:"dst,omitempty"`
	// ...or a batch.
	Packets []sendPacket `json:"packets,omitempty"`
}

type sendResponse struct {
	Accepted int    `json:"accepted"`
	Rejected int    `json:"rejected"`
	Error    string `json:"error,omitempty"`
}

// handleSend offers packets to the fabric. Backpressure rejections are
// reported per packet: a fully rejected request gets 429, a mixed or
// fully accepted one 200. Malformed packets get 400.
func (s *server) handleSend(w http.ResponseWriter, r *http.Request) {
	var req sendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad JSON: %v", err))
		return
	}
	pkts := req.Packets
	if req.Src != nil || req.Dst != nil {
		if req.Src == nil || req.Dst == nil {
			httpError(w, http.StatusBadRequest, "single-packet send needs both src and dst")
			return
		}
		pkts = append(pkts, sendPacket{Src: *req.Src, Dst: *req.Dst})
	}
	if len(pkts) == 0 {
		httpError(w, http.StatusBadRequest, "no packets")
		return
	}
	var resp sendResponse
	for _, p := range pkts {
		switch err := s.fab.Send(fabric.Packet[int]{Src: p.Src, Dst: p.Dst}); err {
		case nil:
			resp.Accepted++
		case fabric.ErrBackpressure, fabric.ErrClosed:
			resp.Rejected++
		default:
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	code := http.StatusOK
	if resp.Accepted == 0 {
		code = http.StatusTooManyRequests
	}
	writeJSON(w, code, resp)
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.eng.Stats())
}

func (s *server) handleFabricStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.fab.Stats())
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(map[string]string{"error": msg}); err != nil {
		log.Printf("benesd: encoding error response: %v", err)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("benesd: encoding response: %v", err)
	}
}

// newMux wires the handlers; split from main so tests can mount the
// mux on an httptest server.
func newMux(eng *engine.Engine[int], fab *fabric.Fabric[int]) *http.ServeMux {
	s := &server{eng: eng, fab: fab}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /route", s.handleRoute)
	mux.HandleFunc("POST /send", s.handleSend)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /fabric/stats", s.handleFabricStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}

// serve runs the HTTP server on ln until ctx is cancelled, then shuts
// down gracefully: stop accepting, drain in-flight requests within
// shutdownTimeout, close the fabric (which delivers everything already
// accepted) and finally the engine. Split from main so tests can drive
// the full lifecycle without signals.
func serve(ctx context.Context, ln net.Listener, eng *engine.Engine[int], fab *fabric.Fabric[int], shutdownTimeout time.Duration) error {
	srv := &http.Server{Handler: newMux(eng, fab)}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err // listener failed before any shutdown request
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	err := srv.Shutdown(sctx)
	fab.Close()
	eng.Close()
	if err != nil {
		return fmt.Errorf("benesd: shutdown: %w", err)
	}
	return nil
}

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		n       = flag.Int("n", 10, "network size exponent: B(n) routes N=2^n terminals")
		workers = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		cache   = flag.Int("cache", engine.DefaultCacheCapacity, "plan cache capacity (plans)")
		replay  = flag.Bool("replay", false, "replay cached states gate-by-gate instead of applying the mapping")
		planes  = flag.Int("planes", 2, "parallel switching planes in the packet fabric")
		voq     = flag.Int("voq-depth", fabric.DefaultVOQDepth, "per-(input,output) virtual output queue bound")
		block   = flag.Bool("block", false, "block /send on full queues instead of tail-dropping")
		drain   = flag.Duration("drain", 10*time.Second, "graceful shutdown timeout")
	)
	flag.Parse()

	eng, err := engine.New[int](engine.Config{
		LogN:          *n,
		Workers:       *workers,
		CacheCapacity: *cache,
		ReplayStates:  *replay,
	})
	if err != nil {
		log.Fatal(err)
	}
	policy := fabric.DropNew
	if *block {
		policy = fabric.Block
	}
	fab, err := fabric.New[int](fabric.Config{
		LogN:     *n,
		Planes:   *planes,
		VOQDepth: *voq,
		Policy:   policy,
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	expvar.Publish("engine", expvar.Func(func() any { return eng.Stats() }))
	expvar.Publish("fabric", fab.Var())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("benesd: serving B(%d) (N=%d, %d planes) on %s", *n, eng.Network().N(), fab.Planes(), *addr)
	if err := serve(ctx, ln, eng, fab, *drain); err != nil {
		log.Fatal(err)
	}
	log.Printf("benesd: drained and stopped")
}
