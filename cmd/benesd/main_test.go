package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/engine"
	"repro/internal/perm"
)

func newTestServer(t *testing.T) (*httptest.Server, *engine.Engine[int]) {
	t.Helper()
	eng, err := engine.New[int](engine.Config{LogN: 4}) // N = 16
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newMux(eng))
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})
	return srv, eng
}

func postRoute(t *testing.T, url string, body any) (*http.Response, routeResponse) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/route", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rr routeResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatal(err)
		}
	}
	return resp, rr
}

// TestRouteEndpoint routes the Fig. 4 bit-reversal twice: the first
// call computes a self-routed plan, the second must hit the cache.
func TestRouteEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	d := perm.BitReversal(4)

	resp, rr := postRoute(t, srv.URL, routeRequest{Dest: d})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if rr.Kind != "self-routed" || rr.CacheHit {
		t.Fatalf("first call: kind=%q hit=%v, want self-routed miss", rr.Kind, rr.CacheHit)
	}
	want := perm.Apply(d, []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	for i, v := range want {
		if rr.Data[i] != v {
			t.Fatalf("routed payload wrong at %d: got %v want %v", i, rr.Data, want)
		}
	}

	_, rr = postRoute(t, srv.URL, routeRequest{Dest: d})
	if !rr.CacheHit {
		t.Fatal("second identical request must be a cache hit")
	}
}

// TestRoutePayloadAndFallback sends an explicit payload with a non-F
// permutation and expects the looping fallback.
func TestRoutePayloadAndFallback(t *testing.T) {
	srv, _ := newTestServer(t)
	// Fig. 5's non-self-routable witness embedded in the identity.
	d := perm.Identity(16)
	d[0], d[1], d[2], d[3] = 1, 3, 2, 0
	if perm.InF(d) {
		t.Fatal("test premise: d must be outside F")
	}
	data := make([]int, 16)
	for i := range data {
		data[i] = 100 + i
	}
	resp, rr := postRoute(t, srv.URL, routeRequest{Dest: d, Data: data})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if rr.Kind != "looped" {
		t.Fatalf("non-F permutation should be looped, got %q", rr.Kind)
	}
	for i, dest := range d {
		if rr.Data[dest] != 100+i {
			t.Fatalf("payload element %d misplaced: %v", i, rr.Data)
		}
	}
}

// TestRouteErrors exercises the 400 paths.
func TestRouteErrors(t *testing.T) {
	srv, _ := newTestServer(t)
	for name, body := range map[string]routeRequest{
		"wrong length": {Dest: []int{0, 1, 2}},
		"not a perm":   {Dest: []int{0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14}},
	} {
		resp, _ := postRoute(t, srv.URL, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	resp, err := http.Post(srv.URL+"/route", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
}

// TestStatsAndHealth checks /stats reflects traffic and /healthz
// responds.
func TestStatsAndHealth(t *testing.T) {
	srv, _ := newTestServer(t)
	d := perm.PerfectShuffle(4)
	postRoute(t, srv.URL, routeRequest{Dest: d})
	postRoute(t, srv.URL, routeRequest{Dest: d})

	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s engine.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Requests != 2 || s.Hits != 1 || s.Misses != 1 || s.PlansCached != 1 {
		t.Fatalf("stats don't reflect traffic: %+v", s)
	}

	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", hresp.StatusCode)
	}
}
