package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fabric"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/perm"
)

// testLogger keeps the tracing middleware's request logs out of the
// test output.
func testLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func newTestServer(t *testing.T) (*httptest.Server, *engine.Engine[int]) {
	srv, eng, _, _ := newTestServerFull(t, collective.Options{})
	return srv, eng
}

func newTestServerOpts(t *testing.T, colOpts collective.Options) (*httptest.Server, *engine.Engine[int]) {
	srv, eng, _, _ := newTestServerFull(t, colOpts)
	return srv, eng
}

func newTestServerFull(t *testing.T, colOpts collective.Options) (*httptest.Server, *engine.Engine[int], *fabric.Fabric[int], *obsState) {
	t.Helper()
	eng, err := engine.New[int](engine.Config{
		LogN:     4, // N = 16
		Recorder: netsim.NewRecorder(core.New(4), runtime.GOMAXPROCS(0)+1),
	})
	if err != nil {
		t.Fatal(err)
	}
	ring := obs.NewTraceRing(16, 0) // keep every trace: tests inspect them
	fab, err := fabric.New[int](fabric.Config{LogN: 4, Planes: 2, VOQDepth: 2, Record: true}, newTracedDeliver(ring))
	if err != nil {
		t.Fatal(err)
	}
	col := collective.New[int](fab, colOpts)
	o := newObsState(eng, fab, col, nil, ring, 8, time.Millisecond, testLogger())
	srv := httptest.NewServer(newMux(eng, fab, col, o, nil))
	t.Cleanup(func() {
		srv.Close()
		o.hist.Stop()
		fab.Close()
		eng.Close()
	})
	return srv, eng, fab, o
}

func postRoute(t *testing.T, url string, body any) (*http.Response, routeResponse) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/route", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rr routeResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatal(err)
		}
	}
	return resp, rr
}

// TestRouteEndpoint routes the Fig. 4 bit-reversal twice: the first
// call computes a self-routed plan, the second must hit the cache.
func TestRouteEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	d := perm.BitReversal(4)

	resp, rr := postRoute(t, srv.URL, routeRequest{Dest: d})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if rr.Kind != "self-routed" || rr.CacheHit {
		t.Fatalf("first call: kind=%q hit=%v, want self-routed miss", rr.Kind, rr.CacheHit)
	}
	want := perm.Apply(d, []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	for i, v := range want {
		if rr.Data[i] != v {
			t.Fatalf("routed payload wrong at %d: got %v want %v", i, rr.Data, want)
		}
	}

	_, rr = postRoute(t, srv.URL, routeRequest{Dest: d})
	if !rr.CacheHit {
		t.Fatal("second identical request must be a cache hit")
	}
}

// TestRoutePayloadAndFallback sends an explicit payload with a non-F
// permutation and expects the looping fallback.
func TestRoutePayloadAndFallback(t *testing.T) {
	srv, _ := newTestServer(t)
	// Fig. 5's non-self-routable witness embedded in the identity.
	d := perm.Identity(16)
	d[0], d[1], d[2], d[3] = 1, 3, 2, 0
	if perm.InF(d) {
		t.Fatal("test premise: d must be outside F")
	}
	data := make([]int, 16)
	for i := range data {
		data[i] = 100 + i
	}
	resp, rr := postRoute(t, srv.URL, routeRequest{Dest: d, Data: data})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if rr.Kind != "looped" {
		t.Fatalf("non-F permutation should be looped, got %q", rr.Kind)
	}
	for i, dest := range d {
		if rr.Data[dest] != 100+i {
			t.Fatalf("payload element %d misplaced: %v", i, rr.Data)
		}
	}
}

// TestRouteErrors exercises the 400 paths.
func TestRouteErrors(t *testing.T) {
	srv, _ := newTestServer(t)
	for name, body := range map[string]routeRequest{
		"wrong length": {Dest: []int{0, 1, 2}},
		"not a perm":   {Dest: []int{0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14}},
	} {
		resp, _ := postRoute(t, srv.URL, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	resp, err := http.Post(srv.URL+"/route", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
}

// TestStatsAndHealth checks /stats reflects traffic and /healthz
// responds.
func TestStatsAndHealth(t *testing.T) {
	srv, _ := newTestServer(t)
	d := perm.PerfectShuffle(4)
	postRoute(t, srv.URL, routeRequest{Dest: d})
	postRoute(t, srv.URL, routeRequest{Dest: d})

	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s engine.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Requests != 2 || s.Hits != 1 || s.Misses != 1 || s.PlansCached != 1 {
		t.Fatalf("stats don't reflect traffic: %+v", s)
	}

	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", hresp.StatusCode)
	}
}

func postSend(t *testing.T, url string, body any) (*http.Response, sendResponse) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/send", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr sendResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusTooManyRequests {
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
	}
	return resp, sr
}

// TestSendEndpoint pushes packets through the fabric path — single and
// batch forms — and checks the fabric stats reflect them.
func TestSendEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)

	resp, sr := postSend(t, srv.URL, map[string]any{"src": 3, "dst": 9})
	if resp.StatusCode != http.StatusOK || sr.Accepted != 1 || sr.Rejected != 0 {
		t.Fatalf("single send: status %d, %+v", resp.StatusCode, sr)
	}

	batch := sendRequest{Packets: []sendPacket{{Src: 0, Dst: 5}, {Src: 1, Dst: 5}, {Src: 2, Dst: 7}}}
	resp, sr = postSend(t, srv.URL, batch)
	if resp.StatusCode != http.StatusOK || sr.Accepted != 3 {
		t.Fatalf("batch send: status %d, %+v", resp.StatusCode, sr)
	}

	// Malformed packets are 400s.
	for name, body := range map[string]any{
		"out of range": map[string]any{"src": 0, "dst": 99},
		"half packet":  map[string]any{"src": 0},
		"empty":        map[string]any{},
	} {
		resp, _ := postSend(t, srv.URL, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}

	// The fabric delivers asynchronously; poll the stats endpoint.
	deadline := time.Now().Add(5 * time.Second)
	for {
		hresp, err := http.Get(srv.URL + "/fabric/stats")
		if err != nil {
			t.Fatal(err)
		}
		var fs fabric.Snapshot
		if err := json.NewDecoder(hresp.Body).Decode(&fs); err != nil {
			t.Fatal(err)
		}
		hresp.Body.Close()
		if fs.Delivered == 4 {
			if fs.Accepted != 4 || len(fs.Planes) != 2 || len(fs.VOQ.PerInput) != 16 {
				t.Fatalf("fabric stats malformed: %+v", fs)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("packets not delivered in time: %+v", fs)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func postMulticast(t *testing.T, url string, body any) (*http.Response, multicastResponse) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/multicast", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mr multicastResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusTooManyRequests {
		if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
			t.Fatal(err)
		}
	}
	return resp, mr
}

// TestMulticastEndpointRound routes one copy-network round from the
// fan-out entry form, checks the classification books, and then reads
// /debug/heatmap back: the serving plane's copy-ladder section must
// have recorded broadcast-state flips, and the binary stages none.
func TestMulticastEndpointRound(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, mr := postMulticast(t, srv.URL, multicastRequest{Entries: []multicastEntry{
		{Src: 3, Dsts: []int{0, 1, 2, 3}},
		{Src: 7, Dsts: []int{8}},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if mr.Class != "multicast" || mr.Sources != 2 || mr.Assigned != 5 || mr.MaxFanout != 4 {
		t.Fatalf("classification books wrong: %+v", mr)
	}

	hresp, err := http.Get(srv.URL + "/debug/heatmap")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var hm heatmapResponse
	if err := json.NewDecoder(hresp.Body).Decode(&hm); err != nil {
		t.Fatal(err)
	}
	if hm.LadderStages != 4 {
		t.Fatalf("ladder_stages = %d, want 4", hm.LadderStages)
	}
	if mr.Plane >= len(hm.Planes) {
		t.Fatalf("serving plane %d missing from heatmap: %+v", mr.Plane, hm.Planes)
	}
	pl := hm.Planes[mr.Plane]
	var ladderBcast int64
	for _, st := range pl.Ladder {
		for _, v := range st.Bcast {
			ladderBcast += v
		}
	}
	if ladderBcast == 0 {
		t.Fatalf("plane %d ladder recorded no broadcast flips: %+v", mr.Plane, pl.Ladder)
	}
	for _, st := range pl.Stages {
		for sw, v := range st.Bcast {
			if v != 0 {
				t.Fatalf("binary stage %d switch %d has bcast flips %d", st.Stage, sw, v)
			}
		}
	}
}

// TestMulticastEndpointMap drives round mode with an explicit
// output-major mapping, including the degenerate permutation case.
func TestMulticastEndpointMap(t *testing.T) {
	srv, _ := newTestServer(t)
	m := make([]int, 16)
	for i := range m {
		m[i] = fabric.Idle
	}
	m[0], m[1], m[15] = 5, 5, 5
	resp, mr := postMulticast(t, srv.URL, multicastRequest{Map: m})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if mr.Class != "multicast" || mr.Sources != 1 || mr.Assigned != 3 || mr.MaxFanout != 3 {
		t.Fatalf("map round books wrong: %+v", mr)
	}

	// A full permutation is a legal (fan-out 1) mapping too.
	d := perm.BitReversal(4)
	resp, mr = postMulticast(t, srv.URL, multicastRequest{Map: d})
	if resp.StatusCode != http.StatusOK || mr.Class != "permutation" || mr.MaxFanout != 1 {
		t.Fatalf("permutation map: status %d %+v", resp.StatusCode, mr)
	}
}

// TestMulticastEndpointPacket sends fan-out packets through the VOQ
// path and polls the fabric stats until every copy is delivered.
func TestMulticastEndpointPacket(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, mr := postMulticast(t, srv.URL, multicastRequest{Packet: true, Entries: []multicastEntry{
		{Src: 2, Dsts: []int{4, 5, 6}},
		{Src: 9, Dsts: []int{0}},
	}})
	if resp.StatusCode != http.StatusOK || mr.Accepted != 2 || mr.Rejected != 0 {
		t.Fatalf("packet admit: status %d, %+v", resp.StatusCode, mr)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		hresp, err := http.Get(srv.URL + "/fabric/stats")
		if err != nil {
			t.Fatal(err)
		}
		var fs fabric.Snapshot
		if err := json.NewDecoder(hresp.Body).Decode(&fs); err != nil {
			t.Fatal(err)
		}
		hresp.Body.Close()
		if fs.Mcast.Delivered == 2 {
			if fs.Mcast.Accepted != 2 || fs.Mcast.Copies != 4 {
				t.Fatalf("multicast books wrong: %+v", fs.Mcast)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("multicast packets not delivered in time: %+v", fs.Mcast)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMulticastValidation sweeps the 400 surface of /multicast.
func TestMulticastValidation(t *testing.T) {
	srv, _ := newTestServer(t)
	idle := make([]int, 16)
	for i := range idle {
		idle[i] = fabric.Idle
	}
	short := []int{0, 1}
	cases := []struct {
		name string
		req  multicastRequest
	}{
		{"map and entries", multicastRequest{Map: idle, Entries: []multicastEntry{{Src: 0, Dsts: []int{1}}}}},
		{"packet without entries", multicastRequest{Packet: true}},
		{"source out of range", multicastRequest{Entries: []multicastEntry{{Src: 16, Dsts: []int{1}}}}},
		{"destination out of range", multicastRequest{Entries: []multicastEntry{{Src: 0, Dsts: []int{16}}}}},
		{"output claimed twice", multicastRequest{Entries: []multicastEntry{
			{Src: 0, Dsts: []int{3}}, {Src: 1, Dsts: []int{3}}}}},
		{"map wrong length", multicastRequest{Map: short}},
		{"map assigns nothing", multicastRequest{Map: idle}},
		{"packet source out of range", multicastRequest{Packet: true,
			Entries: []multicastEntry{{Src: 99, Dsts: []int{1}}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, _ := postMulticast(t, srv.URL, tc.req)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
		})
	}

	resp, err := http.Post(srv.URL+"/multicast", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
}

func postCollective(t *testing.T, url string, body any) (*http.Response, collectiveResponse) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/collective", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cr collectiveResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
			t.Fatal(err)
		}
	}
	return resp, cr
}

// TestCollectiveEndpoint submits an all-to-all over HTTP and checks
// the result is the transpose of the payload matrix, every round took
// the self-routed path, and /collective/stats reflects the traffic.
func TestCollectiveEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	const n = 16
	data := make([][]int, n)
	for p := range data {
		data[p] = make([]int, n)
		for c := range data[p] {
			data[p][c] = p*100 + c
		}
	}
	resp, cr := postCollective(t, srv.URL, collectiveRequest{Op: "alltoall", Data: data})
	if resp.StatusCode != http.StatusOK || !cr.Done {
		t.Fatalf("status %d done=%v", resp.StatusCode, cr.Done)
	}
	for p := 0; p < n; p++ {
		for c := 0; c < n; c++ {
			if cr.Result[p][c] != c*100+p {
				t.Fatalf("result[%d][%d] = %d, want %d", p, c, cr.Result[p][c], c*100+p)
			}
		}
	}
	if cr.Stats.SelfRouted != int64(n) || cr.Stats.Fallbacks != 0 {
		t.Fatalf("round tally %+v, want all %d rounds self-routed", cr.Stats, n)
	}

	sresp, err := http.Get(srv.URL + "/collective/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st collective.Stats
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Completed != 1 || st.Rounds != n || st.SelfRouteRatio != 1.0 {
		t.Fatalf("collective stats: %+v", st)
	}
	if st.PerOp["alltoall"] != 1 {
		t.Fatalf("per-op counts: %v", st.PerOp)
	}
}

// TestCollectiveBroadcastAndTranspose exercises the parameterized ops
// through the HTTP layer.
func TestCollectiveBroadcastAndTranspose(t *testing.T) {
	srv, _ := newTestServer(t)
	data := make([][]int, 16)
	data[6] = []int{41, 43}
	resp, cr := postCollective(t, srv.URL, collectiveRequest{Op: "broadcast", Root: 6, Data: data})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("broadcast status %d", resp.StatusCode)
	}
	for p, row := range cr.Result {
		if row[0] != 41 || row[1] != 43 {
			t.Fatalf("port %d received %v", p, row)
		}
	}

	tdata := make([][]int, 16)
	for p := range tdata {
		tdata[p] = []int{p}
	}
	resp, cr = postCollective(t, srv.URL, collectiveRequest{Op: "transpose", Rows: 4, Cols: 4, Data: tdata})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("transpose status %d", resp.StatusCode)
	}
	for r := 0; r < 4; r++ {
		for q := 0; q < 4; q++ {
			if cr.Result[q*4+r][0] != r*4+q {
				t.Fatalf("transpose result wrong at (%d,%d): %v", r, q, cr.Result)
			}
		}
	}
}

// TestCollectiveAllGatherAndFanOut exercises the multicast-backed
// collective ops through the HTTP layer.
func TestCollectiveAllGatherAndFanOut(t *testing.T) {
	srv, _ := newTestServer(t)
	const n = 16
	data := make([][]int, n)
	for p := range data {
		data[p] = []int{p * 10}
	}
	resp, cr := postCollective(t, srv.URL, collectiveRequest{Op: "allgather", Data: data})
	if resp.StatusCode != http.StatusOK || !cr.Done {
		t.Fatalf("allgather: status %d done=%v", resp.StatusCode, cr.Done)
	}
	for p := 0; p < n; p++ {
		for j := 0; j < n; j++ {
			if cr.Result[p][j] != j*10 {
				t.Fatalf("allgather result[%d][%d] = %d, want %d", p, j, cr.Result[p][j], j*10)
			}
		}
	}

	dests := make([][]int, n)
	dests[0] = []int{4, 5}
	dests[1] = []int{4}
	fdata := make([][]int, n)
	fdata[0] = []int{100}
	fdata[1] = []int{200}
	resp, cr = postCollective(t, srv.URL, collectiveRequest{Op: "fanout", Dests: dests, Data: fdata})
	if resp.StatusCode != http.StatusOK || !cr.Done {
		t.Fatalf("fanout: status %d done=%v", resp.StatusCode, cr.Done)
	}
	want := make([][]int, n)
	want[4] = []int{100, 200}
	want[5] = []int{100}
	for p := range want {
		if len(cr.Result[p]) != len(want[p]) {
			t.Fatalf("fanout result[%d] = %v, want %v", p, cr.Result[p], want[p])
		}
		for c := range want[p] {
			if cr.Result[p][c] != want[p][c] {
				t.Fatalf("fanout result[%d] = %v, want %v", p, cr.Result[p], want[p])
			}
		}
	}
}

// TestCollectiveValidation is the table-driven 400 sweep: malformed
// specs must be rejected with a JSON error before any round is routed.
func TestCollectiveValidation(t *testing.T) {
	srv, _ := newTestServer(t)
	mk := func(ports, chunks int) [][]int {
		d := make([][]int, ports)
		for p := range d {
			d[p] = make([]int, chunks)
		}
		return d
	}
	cases := []struct {
		name string
		req  collectiveRequest
	}{
		{"unknown op", collectiveRequest{Op: "reduce", Data: mk(16, 16)}},
		{"allgather wrong chunk width", collectiveRequest{Op: "allgather", Data: mk(16, 16)}},
		{"fanout subscriber out of range", collectiveRequest{Op: "fanout",
			Dests: append([][]int{{16}}, mk(15, 0)...), Data: append([][]int{{7}}, mk(15, 0)...)}},
		{"fanout duplicate subscriber", collectiveRequest{Op: "fanout",
			Dests: append([][]int{{3, 3}}, mk(15, 0)...), Data: append([][]int{{7}}, mk(15, 0)...)}},
		{"empty op", collectiveRequest{Op: "", Data: mk(16, 16)}},
		{"non-power-of-two ports", collectiveRequest{Op: "alltoall", Data: mk(10, 10)}},
		{"wrong port count", collectiveRequest{Op: "alltoall", Data: mk(8, 8)}},
		{"wrong chunk width", collectiveRequest{Op: "alltoall", Data: mk(16, 4)}},
		{"ragged rows", collectiveRequest{Op: "shuffle", Data: append(mk(15, 2), make([]int, 3))}},
		{"transpose bad tiling", collectiveRequest{Op: "transpose", Rows: 3, Cols: 5, Data: mk(16, 1)}},
		{"transpose zero sides", collectiveRequest{Op: "transpose", Data: mk(16, 1)}},
		{"broadcast root out of range", collectiveRequest{Op: "broadcast", Root: 16, Data: mk(16, 1)}},
		{"broadcast empty root row", collectiveRequest{Op: "broadcast", Root: 0, Data: mk(16, 0)}},
		{"gather negative root", collectiveRequest{Op: "gather", Root: -1, Data: mk(16, 1)}},
		{"scatter root out of range", collectiveRequest{Op: "scatter", Root: 99, Data: mk(16, 0)}},
		{"exchange dest out of range", collectiveRequest{Op: "exchange",
			Dests: append([][]int{{16}}, mk(15, 0)...), Data: append([][]int{{7}}, mk(15, 0)...)}},
		{"exchange duplicate dest", collectiveRequest{Op: "exchange",
			Dests: append([][]int{{3, 3}}, mk(15, 0)...), Data: append([][]int{{7, 8}}, mk(15, 0)...)}},
		{"exchange wrong spec size", collectiveRequest{Op: "exchange", Dests: mk(4, 1), Data: mk(16, 1)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, _ := postCollective(t, srv.URL, tc.req)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
		})
	}

	// Malformed JSON is a 400 too.
	resp, err := http.Post(srv.URL+"/collective", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
}

// TestCollectiveDeadline arms admission with a huge seeded round
// estimate: a tight deadline_ms must be rejected with 503.
func TestCollectiveDeadline(t *testing.T) {
	srv, _ := newTestServerOpts(t, collective.Options{RoundEstimate: time.Hour})
	data := make([][]int, 16)
	for p := range data {
		data[p] = make([]int, 16)
	}
	resp, _ := postCollective(t, srv.URL, collectiveRequest{Op: "alltoall", Data: data, DeadlineMs: 50})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 admission reject", resp.StatusCode)
	}
}

// TestCollectiveStream requests NDJSON progress: at least one progress
// record, then a done record carrying the result.
func TestCollectiveStream(t *testing.T) {
	srv, _ := newTestServer(t)
	data := make([][]int, 16)
	for p := range data {
		data[p] = make([]int, 16)
		for c := range data[p] {
			data[p][c] = p ^ c
		}
	}
	raw, _ := json.Marshal(collectiveRequest{Op: "alltoall", Data: data, Stream: true})
	resp, err := http.Post(srv.URL+"/collective", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var lines []map[string]any
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, rec)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) < 2 {
		t.Fatalf("want at least one progress record plus the done record, got %d lines", len(lines))
	}
	for _, rec := range lines[:len(lines)-1] {
		if _, ok := rec["completed"]; !ok {
			t.Fatalf("progress record missing 'completed': %v", rec)
		}
	}
	last := lines[len(lines)-1]
	if last["done"] != true || last["error"] != nil {
		t.Fatalf("final record: %v", last)
	}
	result, ok := last["result"].([]any)
	if !ok || len(result) != 16 {
		t.Fatalf("final record result malformed: %v", last["result"])
	}
	row3 := result[3].([]any)
	if int(row3[5].(float64)) != 5^3 {
		t.Fatalf("streamed result wrong: result[3][5] = %v, want %d", row3[5], 5^3)
	}
}

// TestGracefulShutdown drives the real serve loop: cancelling the
// context must drain HTTP, the fabric, and the engine, and leave the
// listener closed.
func TestGracefulShutdown(t *testing.T) {
	eng, err := engine.New[int](engine.Config{LogN: 4})
	if err != nil {
		t.Fatal(err)
	}
	fab, err := fabric.New[int](fabric.Config{LogN: 4, Planes: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	col := collective.New[int](fab, collective.Options{})
	o := newObsState(eng, fab, col, nil, obs.NewTraceRing(4, 0), 4, time.Second, testLogger())
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- serve(ctx, ln, eng, fab, col, o, nil, 5*time.Second)
	}()

	url := "http://" + ln.Addr().String()
	// Traffic through both layers while the server is up.
	resp, rr := postRoute(t, url, routeRequest{Dest: perm.BitReversal(4)})
	if resp.StatusCode != http.StatusOK || rr.Kind != "self-routed" {
		t.Fatalf("route before shutdown: status %d, %+v", resp.StatusCode, rr)
	}
	if resp, sr := postSend(t, url, map[string]any{"src": 1, "dst": 14}); resp.StatusCode != http.StatusOK || sr.Accepted != 1 {
		t.Fatalf("send before shutdown: status %d, %+v", resp.StatusCode, sr)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not return after cancel")
	}

	// Everything behind the server must be stopped: the engine rejects,
	// the fabric rejects, the port no longer accepts.
	if resp := eng.Route(perm.BitReversal(4), make([]int, 16)); !errors.Is(resp.Err, engine.ErrClosed) {
		t.Fatalf("engine should be closed, got %v", resp.Err)
	}
	if err := fab.Send(fabric.Packet[int]{Src: 0, Dst: 1}); !errors.Is(err, fabric.ErrClosed) {
		t.Fatalf("fabric should be closed, got %v", err)
	}
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second); err == nil {
		t.Fatal("listener should be closed after shutdown")
	}
	// The packet accepted before shutdown must have been drained, not
	// dropped.
	if s := fab.Stats(); s.Delivered != 1 || s.Lost != 0 {
		t.Fatalf("accepted packet must survive the drain: %+v", s)
	}
}

// scrapeMetrics fetches /metrics and returns the response plus its
// lines, failing the test on transport errors.
func scrapeMetrics(t *testing.T, url string) (*http.Response, []string) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp, lines
}

// TestMetricsEndpoint drives traffic through all three layers and
// smoke-scrapes /metrics: the exposition must carry the Prometheus
// content type, parse line by line, and include a populated histogram
// for every pipeline stage the traffic exercised.
func TestMetricsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)

	// Engine traffic.
	postRoute(t, srv.URL, routeRequest{Dest: perm.BitReversal(4)})
	// Fabric traffic, delivered before we scrape.
	if _, sr := postSend(t, srv.URL, map[string]any{"src": 2, "dst": 11}); sr.Accepted != 1 {
		t.Fatal("send not accepted")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/fabric/stats")
		if err != nil {
			t.Fatal(err)
		}
		var fs fabric.Snapshot
		if err := json.NewDecoder(resp.Body).Decode(&fs); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if fs.Delivered == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("packet not delivered: %+v", fs)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Collective traffic.
	data := make([][]int, 16)
	for p := range data {
		data[p] = make([]int, 16)
	}
	if resp, _ := postCollective(t, srv.URL, collectiveRequest{Op: "alltoall", Data: data}); resp.StatusCode != http.StatusOK {
		t.Fatalf("collective status %d", resp.StatusCode)
	}

	resp, lines := scrapeMetrics(t, srv.URL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("content type %q, want %q", ct, obs.ContentType)
	}

	// Every line must be a comment or a sample "name[{labels}] value".
	counts := map[string]float64{}
	for _, ln := range lines {
		if ln == "" || strings.HasPrefix(ln, "#") {
			continue
		}
		sp := strings.LastIndexByte(ln, ' ')
		if sp < 0 {
			t.Fatalf("unparseable sample line %q", ln)
		}
		v, err := strconv.ParseFloat(ln[sp+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", ln, err)
		}
		series := ln[:sp]
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("unbalanced labels in %q", ln)
			}
			// counts aggregates by metric name across label sets.
			series = series[:i]
		}
		counts[series] += v
	}

	// One histogram per pipeline stage, each populated by the traffic
	// above (fault-check only exists; no fault was injected).
	populated := []string{
		"benes_engine_wait_seconds", "benes_engine_plan_seconds", "benes_engine_apply_seconds",
		"benes_fabric_voq_wait_seconds", "benes_fabric_match_seconds",
		"benes_fabric_plane_seconds", "benes_fabric_verify_seconds",
		"benes_collective_round_seconds", "benes_collective_op_seconds",
	}
	for _, h := range populated {
		if counts[h+"_count"] < 1 {
			t.Errorf("histogram %s not populated: count %v", h, counts[h+"_count"])
		}
		if counts[h+"_bucket"] < 1 {
			t.Errorf("histogram %s has no bucket samples", h)
		}
	}
	if _, ok := counts["benes_fabric_faultcheck_seconds_count"]; !ok {
		t.Error("fault-check histogram missing from exposition")
	}
	if got := counts["benes_fabric_delivered_total"]; got != 1 {
		t.Errorf("benes_fabric_delivered_total = %v, want 1", got)
	}
	if got := counts["benes_collective_completed_total"]; got != 1 {
		t.Errorf("benes_collective_completed_total = %v, want 1", got)
	}
	if got := counts["benes_fabric_healthy_planes"]; got != 2 {
		t.Errorf("benes_fabric_healthy_planes = %v, want 2", got)
	}
}

// getTraces fetches and decodes /debug/traces.
func getTraces(t *testing.T, url string) obs.RingSnapshot {
	t.Helper()
	resp, err := http.Get(url + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rs obs.RingSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&rs); err != nil {
		t.Fatal(err)
	}
	return rs
}

// spanStages tallies a trace's spans by stage name.
func spanStages(tr obs.TraceSnapshot) map[string]int {
	m := map[string]int{}
	for _, sp := range tr.Spans {
		m[sp.Stage]++
	}
	return m
}

// TestTracesEndpoint reconstructs requests stage by stage from
// /debug/traces: a /collective request must surface with one span per
// round plus the end-to-end span, and a /send request with VOQ-wait
// and plane-transit spans once its packet is delivered.
func TestTracesEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	const n = 16
	data := make([][]int, n)
	for p := range data {
		data[p] = make([]int, n)
	}
	if resp, _ := postCollective(t, srv.URL, collectiveRequest{Op: "alltoall", Data: data}); resp.StatusCode != http.StatusOK {
		t.Fatalf("collective status %d", resp.StatusCode)
	}
	if _, sr := postSend(t, srv.URL, map[string]any{"src": 7, "dst": 2}); sr.Accepted != 1 {
		t.Fatal("send not accepted")
	}

	// Both traces land asynchronously: the collective's when the
	// middleware drops the last reference, the send's when the fabric
	// delivers the packet. Poll until both are visible.
	deadline := time.Now().Add(5 * time.Second)
	for {
		rs := getTraces(t, srv.URL)
		var col, send *obs.TraceSnapshot
		for i := range rs.Traces {
			switch rs.Traces[i].Name {
			case "/collective":
				col = &rs.Traces[i]
			case "/send":
				send = &rs.Traces[i]
			}
		}
		if col != nil && send != nil {
			st := spanStages(*col)
			if st["round"] != n {
				t.Fatalf("/collective trace has %d round spans, want %d: %+v", st["round"], n, col.Spans)
			}
			if st["collective_alltoall"] != 1 {
				t.Fatalf("/collective trace missing end-to-end span: %+v", col.Spans)
			}
			if col.DurNs <= 0 {
				t.Fatal("/collective trace has no pinned duration")
			}
			st = spanStages(*send)
			for _, stage := range []string{"admit", "voq_wait", "plane_transit"} {
				if st[stage] != 1 {
					t.Fatalf("/send trace missing %q span: %+v", stage, send.Spans)
				}
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("traces not observed in time: %+v", rs)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestComputeReadiness covers the pure readiness rules: hard outages
// flip ready off, partial trouble only adds degraded reasons.
func TestComputeReadiness(t *testing.T) {
	healthy := fabric.Health{PlanesTotal: 2, PlanesHealthy: 2, VOQOccupied: 0, VOQCapacity: 64}
	cases := []struct {
		name      string
		h         fabric.Health
		depth     int64
		cap_      int
		ready     bool
		nDegraded int
	}{
		{"all clear", healthy, 0, 16, true, 0},
		{"one plane down", fabric.Health{PlanesTotal: 2, PlanesHealthy: 1, VOQCapacity: 64}, 0, 16, true, 1},
		{"no planes", fabric.Health{PlanesTotal: 2, PlanesHealthy: 0, VOQCapacity: 64}, 0, 16, false, 1},
		{"voq half", fabric.Health{PlanesTotal: 2, PlanesHealthy: 2, VOQOccupied: 32, VOQCapacity: 64}, 0, 16, true, 1},
		{"voq full", fabric.Health{PlanesTotal: 2, PlanesHealthy: 2, VOQOccupied: 64, VOQCapacity: 64}, 0, 16, false, 1},
		{"queue half", healthy, 8, 16, true, 1},
		{"queue full", healthy, 16, 16, false, 1},
		{"everything wrong", fabric.Health{PlanesTotal: 2, PlanesHealthy: 0, VOQOccupied: 64, VOQCapacity: 64}, 16, 16, false, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := computeReadiness(tc.h, tc.depth, tc.cap_)
			if r.Ready != tc.ready || len(r.Degraded) != tc.nDegraded {
				t.Fatalf("computeReadiness = %+v, want ready=%v with %d reasons", r, tc.ready, tc.nDegraded)
			}
		})
	}
}

// TestReadyzEndpoint walks /readyz through the plane-failure ladder:
// fully healthy, degraded-but-ready, and 503 with no plane in rotation.
func TestReadyzEndpoint(t *testing.T) {
	srv, _, fab, _ := newTestServerFull(t, collective.Options{})
	get := func() (int, readiness) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var r readiness
		if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, r
	}

	if code, r := get(); code != http.StatusOK || !r.Ready || len(r.Degraded) != 0 {
		t.Fatalf("fresh server: code %d, %+v", code, r)
	}
	if err := fab.FailPlane(0); err != nil {
		t.Fatal(err)
	}
	if code, r := get(); code != http.StatusOK || !r.Ready || len(r.Degraded) != 1 {
		t.Fatalf("one plane down: code %d, %+v, want ready with one degraded reason", code, r)
	}
	if err := fab.FailPlane(1); err != nil {
		t.Fatal(err)
	}
	if code, r := get(); code != http.StatusServiceUnavailable || r.Ready {
		t.Fatalf("all planes down: code %d, %+v, want 503 not-ready", code, r)
	}
	if err := fab.RestorePlane(0); err != nil {
		t.Fatal(err)
	}
	if code, r := get(); code != http.StatusOK || !r.Ready {
		t.Fatalf("after restore: code %d, %+v", code, r)
	}
}

// TestHeatmapEndpointExact pins the full /debug/heatmap body, byte for
// byte, for a fully deterministic B(2) server: one worker, one plane,
// exactly one bit-reversal routed. The self-routed setting for
// (0,2,1,3) is switch 1 crossed in all three stages, so against the
// all-straight power-on state the recorder must show one flip at
// switch 1 per stage, two traversals per switch from the single full
// vector, and an untouched plane recorder.
func TestHeatmapEndpointExact(t *testing.T) {
	eng, err := engine.New[int](engine.Config{
		LogN:     2,
		Workers:  1,
		Recorder: netsim.NewRecorder(core.New(2), 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	ring := obs.NewTraceRing(4, 0)
	fab, err := fabric.New[int](fabric.Config{LogN: 2, Planes: 1, Record: true}, newTracedDeliver(ring))
	if err != nil {
		t.Fatal(err)
	}
	col := collective.New[int](fab, collective.Options{})
	o := newObsState(eng, fab, col, nil, ring, 4, time.Hour, testLogger())
	srv := httptest.NewServer(newMux(eng, fab, col, o, nil))
	t.Cleanup(func() {
		srv.Close()
		fab.Close()
		eng.Close()
	})

	if resp, rr := postRoute(t, srv.URL, routeRequest{Dest: perm.BitReversal(2)}); resp.StatusCode != http.StatusOK || rr.Kind != "self-routed" {
		t.Fatalf("route: status %d, %+v", resp.StatusCode, rr)
	}

	resp, err := http.Get(srv.URL + "/debug/heatmap")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	engStage := func(s, cb int) string {
		return `{"stage":` + strconv.Itoa(s) + `,"control_bit":` + strconv.Itoa(cb) +
			`,"traversed":[2,2],"flips":[0,1],"forced":[0,0],"fault_hits":[0,0],"bcast_flips":[0,0],` +
			`"summary":{"max":2,"mean":2,"total":4,"skew":1,"gini":0}}`
	}
	idleStage := func(s, cb int) string {
		return `{"stage":` + strconv.Itoa(s) + `,"control_bit":` + strconv.Itoa(cb) +
			`,"traversed":[0,0],"flips":[0,0],"forced":[0,0],"fault_hits":[0,0],"bcast_flips":[0,0],` +
			`"summary":{"max":0,"mean":0,"total":0,"skew":0,"gini":0}}`
	}
	// Ladder stage j decides address bit logN-1-j (MSB first): control
	// bits 1, 0 for the two B(2) ladder stages. No multicast was routed,
	// so every ladder section is all zeros but still present.
	want := `{"n":4,"stages":3,"switches_per_stage":2,"ladder_stages":2,` +
		`"engine":[` + engStage(0, 0) + `,` + engStage(1, 1) + `,` + engStage(2, 0) + `],` +
		`"engine_ladder":[` + idleStage(0, 1) + `,` + idleStage(1, 0) + `],` +
		`"planes":[{"plane":0,"stages":[` + idleStage(0, 0) + `,` + idleStage(1, 1) + `,` + idleStage(2, 0) + `],` +
		`"ladder":[` + idleStage(0, 1) + `,` + idleStage(1, 0) + `]}]}` + "\n"
	if string(body) != want {
		t.Fatalf("heatmap body mismatch:\n got: %s\nwant: %s", body, want)
	}
}

// TestHeatmapEndpointShape checks the standard test server reports the
// full geometry: all 2n-1 stages x N/2 switches for the engine and for
// every plane.
func TestHeatmapEndpointShape(t *testing.T) {
	srv, _ := newTestServer(t)
	postRoute(t, srv.URL, routeRequest{Dest: perm.BitReversal(4)})

	resp, err := http.Get(srv.URL + "/debug/heatmap")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hm heatmapResponse
	if err := json.NewDecoder(resp.Body).Decode(&hm); err != nil {
		t.Fatal(err)
	}
	if hm.N != 16 || hm.Stages != 7 || hm.SwitchesPerStage != 8 {
		t.Fatalf("geometry: %+v, want N=16 stages=7 switches=8", hm)
	}
	if len(hm.Engine) != 7 {
		t.Fatalf("engine rows = %d, want all 2n-1 = 7 stages", len(hm.Engine))
	}
	for _, st := range hm.Engine {
		if len(st.Traversed) != 8 || len(st.Flips) != 8 || len(st.Forced) != 8 || len(st.FaultHits) != 8 {
			t.Fatalf("stage %d rows must span all N/2 = 8 switches: %+v", st.Stage, st)
		}
		// One full vector traversed: two tags per switch, eight switches.
		if st.Summary.Total != 16 {
			t.Fatalf("stage %d total = %d, want 2 traversals x 8 switches = 16", st.Stage, st.Summary.Total)
		}
	}
	if len(hm.Planes) != 2 {
		t.Fatalf("planes = %d, want 2", len(hm.Planes))
	}
	for _, pl := range hm.Planes {
		if len(pl.Stages) != 7 {
			t.Fatalf("plane %d rows = %d, want 7", pl.Plane, len(pl.Stages))
		}
	}
}

// TestObservabilityScrapeStress hammers routing and /send concurrently
// with /debug/heatmap, /debug/history, and /metrics scrapes while the
// history sampler runs — the -race exercise for the whole flight
// recorder read path against live writers.
func TestObservabilityScrapeStress(t *testing.T) {
	srv, eng, _, o := newTestServerFull(t, collective.Options{})
	o.hist.Start()
	t.Cleanup(o.hist.Stop)

	const iters = 60
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				if resp := eng.Route(perm.Random(16, rng), make([]int, 16)); resp.Err != nil {
					t.Error(resp.Err)
					return
				}
			}
		}(int64(w))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			postSend(t, srv.URL, map[string]any{"src": i % 16, "dst": (i * 7) % 16})
		}
	}()
	for _, path := range []string{"/debug/heatmap", "/debug/history", "/metrics", "/readyz"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				resp, err := http.Get(srv.URL + path)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("%s: status %d", path, resp.StatusCode)
					return
				}
			}
		}(path)
	}
	wg.Wait()

	// The history ring sampled throughout; a windowed report must decode
	// and carry series once at least two samples landed.
	resp, err := http.Get(srv.URL + "/debug/history")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var wr obs.WindowReport
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		t.Fatal(err)
	}
	if wr.Samples < 2 || len(wr.Series) == 0 {
		t.Fatalf("history report after stress: %d samples, %d series", wr.Samples, len(wr.Series))
	}
	if resp, err := http.Get(srv.URL + "/debug/history?window=banana"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad window: status %d, want 400", resp.StatusCode)
		}
	}
}
