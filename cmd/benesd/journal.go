package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/journal/replay"
)

// This file is benesd's window onto the hash-chained traffic journal
// (internal/journal): an NDJSON dump of any retained record window, an
// on-demand chain verification, and a full deterministic replay audit.
// All three 404 when the server runs without -journal.

// journalRecord is the NDJSON wire form of one journal record: kind as
// a string, digests as hex, empty payload fields omitted.
type journalRecord struct {
	Seq        uint64              `json:"seq"`
	Kind       string              `json:"kind"`
	Plane      int                 `json:"plane"`
	TimeNs     int64               `json:"time_ns"`
	Dest       []int               `json:"dest,omitempty"`
	Srcs       []int               `json:"srcs,omitempty"`
	Faults     []core.Fault        `json:"faults,omitempty"`
	Delivered  string              `json:"delivered,omitempty"`
	Checkpoint *journal.Checkpoint `json:"checkpoint,omitempty"`
	Digest     string              `json:"digest"`
}

// journalWindow parses the optional from/to query parameters against
// the journal's retained bounds. A missing parameter defaults to the
// matching bound; 0 is not a valid sequence number.
func (s *server) journalWindow(r *http.Request) (from, to uint64, err error) {
	oldest, newest, ok := s.jrn.Bounds()
	if !ok {
		return 0, 0, fmt.Errorf("journal is empty")
	}
	from, to = oldest, newest
	if v := r.URL.Query().Get("from"); v != "" {
		if from, err = strconv.ParseUint(v, 10, 64); err != nil || from == 0 {
			return 0, 0, fmt.Errorf("bad from %q: want a sequence number >= 1", v)
		}
	}
	if v := r.URL.Query().Get("to"); v != "" {
		if to, err = strconv.ParseUint(v, 10, 64); err != nil || to == 0 {
			return 0, 0, fmt.Errorf("bad to %q: want a sequence number >= 1", v)
		}
	}
	if from > to {
		return 0, 0, fmt.Errorf("from %d > to %d", from, to)
	}
	return from, to, nil
}

// handleDebugJournal streams the requested record window as NDJSON, one
// record per line in sequence order. The window is clamped to what the
// journal still retains (memory ring plus spill files).
func (s *server) handleDebugJournal(w http.ResponseWriter, r *http.Request) {
	if s.jrn == nil {
		s.httpError(w, http.StatusNotFound, "journaling disabled; start benesd with -journal")
		return
	}
	from, to, err := s.journalWindow(r)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	recs, err := s.jrn.Read(from, to)
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	for _, rec := range recs {
		jr := journalRecord{
			Seq:        rec.Seq,
			Kind:       rec.Kind.String(),
			Plane:      rec.Plane,
			TimeNs:     rec.TimeNs,
			Dest:       rec.Dest,
			Srcs:       rec.Srcs,
			Faults:     rec.Faults,
			Checkpoint: rec.Checkpoint,
			Digest:     fmt.Sprintf("%x", rec.Digest),
		}
		if rec.Delivered != 0 {
			jr.Delivered = fmt.Sprintf("%016x", rec.Delivered)
		}
		if err := enc.Encode(jr); err != nil {
			s.log.Warn("streaming journal records", "err", err)
			return
		}
	}
}

// handleDebugJournalVerify walks the chain over the requested window
// (default: everything retained) and reports the verdict. An intact
// chain answers 200; a broken one still answers 200 — the verdict is
// the payload, not the status — but an empty journal or a bad range is
// a 400.
func (s *server) handleDebugJournalVerify(w http.ResponseWriter, r *http.Request) {
	if s.jrn == nil {
		s.httpError(w, http.StatusNotFound, "journaling disabled; start benesd with -journal")
		return
	}
	from, to, err := s.journalWindow(r)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, s.jrn.Verify(from, to))
}

type replayRequest struct {
	// From and To bound the replayed window; 0 means the matching
	// retained bound.
	From uint64 `json:"from,omitempty"`
	To   uint64 `json:"to,omitempty"`
}

// handleDebugReplay re-executes the requested journal window against a
// fresh network and reports every divergence (see internal/journal/
// replay). The report is the payload either way; only an unusable
// request (empty journal, inverted range) is a 400.
func (s *server) handleDebugReplay(w http.ResponseWriter, r *http.Request) {
	if s.jrn == nil {
		s.httpError(w, http.StatusNotFound, "journaling disabled; start benesd with -journal")
		return
	}
	var req replayRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.httpError(w, http.StatusBadRequest, fmt.Sprintf("bad JSON: %v", err))
		return
	}
	oldest, newest, ok := s.jrn.Bounds()
	if !ok {
		s.httpError(w, http.StatusBadRequest, "journal is empty")
		return
	}
	from, to := req.From, req.To
	if from == 0 {
		from = oldest
	}
	if to == 0 {
		to = newest
	}
	if from > to {
		s.httpError(w, http.StatusBadRequest, fmt.Sprintf("from %d > to %d", from, to))
		return
	}
	logN := 0
	for n := s.fab.N(); n > 1; n >>= 1 {
		logN++
	}
	rep, err := replay.Window(replay.Config{LogN: logN, Planes: s.fab.Planes()}, s.jrn, from, to)
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, rep)
}

// journalDegradations maps journal health onto /readyz degraded
// reasons. Losing journal records never sheds traffic — the data path
// is intact — but dropped records or a standing spill backlog mean the
// audit trail has holes, which an operator should see before trusting a
// replay window.
func journalDegradations(dropped, backlog int64) []string {
	var out []string
	if dropped > 0 {
		out = append(out, fmt.Sprintf("journal dropped %d records", dropped))
	}
	if backlog > 0 {
		out = append(out, fmt.Sprintf("journal spill backlog %d segments", backlog))
	}
	return out
}
