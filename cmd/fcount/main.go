// Command fcount measures the permutation-class landscape around F(n):
// exhaustive cardinalities for small n and Monte-Carlo membership
// fractions for larger n, quantifying the paper's richness claims
// (|F| >> |Omega|, yet |F| << N! so external setup still matters).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/perm"
	"repro/internal/report"
)

func main() {
	maxExhaustive := flag.Int("exhaustive", 3, "largest n for exhaustive enumeration (N! grows fast; 3 means 8! = 40320)")
	samples := flag.Int("samples", 20000, "Monte-Carlo samples per size")
	maxMC := flag.Int("mc", 8, "largest n for Monte-Carlo estimation")
	seed := flag.Int64("seed", 1, "random seed")
	f4 := flag.Bool("f4", false, "also compute |F(4)| exactly via the Theorem-1 bijection (~10s; 16! is unenumerable)")
	flag.Parse()

	if *maxExhaustive > 3 {
		fmt.Fprintln(os.Stderr, "fcount: -exhaustive > 3 enumerates more than 16! permutations; refusing")
		os.Exit(1)
	}

	t := report.NewTable("exhaustive class cardinalities",
		"n", "N", "N!", "|F|", "|BPC| (2^n n!)", "|Omega| (2^(nN/2))", "|Omega^-1|", "|Omega ∩ F|")
	for n := 1; n <= *maxExhaustive; n++ {
		N := 1 << uint(n)
		var f, bpc, om, iom, omF int
		perm.ForEach(N, func(p perm.Perm) bool {
			inF := perm.InF(p)
			if inF {
				f++
			}
			if _, ok := perm.RecognizeBPC(p); ok {
				bpc++
			}
			if perm.IsOmega(p) {
				om++
				if inF {
					omF++
				}
			}
			if perm.IsInverseOmega(p) {
				iom++
			}
			return true
		})
		t.Add(n, N, perm.Factorial(N), f, bpc, om, iom, omF)
	}
	fmt.Print(t)

	// Structural counting: |F(n)| from the Theorem-1 bijection, no
	// enumeration of S_N needed. Cross-checks the exhaustive table.
	ct := report.NewTable("|F(n)| via the Theorem-1 transfer-matrix recurrence",
		"n", "N", "|F(n)| (structural)", "matches exhaustive?")
	for n := 1; n <= 3; n++ {
		structural := perm.CountF(n)
		exhaustive := int64(perm.Count(1<<uint(n), perm.InF))
		ct.Add(n, 1<<uint(n), structural, structural == exhaustive)
	}
	if *f4 {
		v := perm.CountF(4)
		ct.Add(4, 16, v, "unenumerable (16! = 20922789888000)")
		ct.Note("|F(4)|/16! = %.5f — cross-validated by Monte-Carlo below", float64(v)/20922789888000.0)
	} else {
		ct.Note("run with -f4 to compute |F(4)| exactly (known value: 133488540928)")
	}
	fmt.Print(ct)

	rng := rand.New(rand.NewSource(*seed))
	mc := report.NewTable(fmt.Sprintf("Monte-Carlo membership (%d samples per n)", *samples),
		"n", "N", "P[in F]", "P[in Omega]", "P[in Omega^-1]")
	for n := 4; n <= *maxMC; n++ {
		N := 1 << uint(n)
		var f, om, iom int
		for s := 0; s < *samples; s++ {
			p := perm.Random(N, rng)
			if perm.InF(p) {
				f++
			}
			if perm.IsOmega(p) {
				om++
			}
			if perm.IsInverseOmega(p) {
				iom++
			}
		}
		frac := func(c int) string { return fmt.Sprintf("%.5f", float64(c)/float64(*samples)) }
		mc.Add(n, N, frac(f), frac(om), frac(iom))
	}
	mc.Note("known closed forms: |BPC| = 2^n n!, |Omega| = 2^(n N/2); F sits strictly between Omega and N!")
	fmt.Print(mc)
}
