// Command figures regenerates the paper's figure-style data series as
// CSV files, one per series, for plotting: network structure growth
// (Fig. 1 counts), the Section I design-space comparison, the
// Section III unit-route laws, and the class-cardinality landscape.
//
// Usage: figures [-dir out]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/batcher"
	"repro/internal/core"
	"repro/internal/crossbar"
	"repro/internal/omega"
	"repro/internal/perm"
	"repro/internal/recirc"
	"repro/internal/report"
	"repro/internal/simd"
)

func main() {
	dir := flag.String("dir", "figures_out", "output directory for the CSV files")
	flag.Parse()
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}

	emit := func(name string, t *report.Table) {
		path := filepath.Join(*dir, name+".csv")
		if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d rows)\n", path, len(t.Rows))
	}

	// Series 1: B(n) structure (Fig. 1 / Section I counts).
	st := report.NewTable("", "n", "N", "stages", "switches", "gate_delay")
	for n := 1; n <= 16; n++ {
		b := core.New(n)
		st.Add(n, b.N(), b.Stages(), b.SwitchCount(), b.GateDelay())
	}
	emit("benes_structure", st)

	// Series 2: switch counts across the design space.
	sw := report.NewTable("", "n", "N", "benes", "omega", "bitonic", "odd_even", "recirc", "crossbar")
	for n := 2; n <= 14; n++ {
		N := 1 << uint(n)
		sw.Add(n, N,
			core.New(n).SwitchCount(),
			omega.New(n).SwitchCount(),
			batcher.New(n).SwitchCount(),
			batcher.NewOddEven(n).SwitchCount(),
			recirc.New(n).SwitchCount(),
			crossbar.New(N).SwitchCount())
	}
	emit("switch_counts", sw)

	// Series 3: delays across the design space.
	dl := report.NewTable("", "n", "N", "benes", "omega", "bitonic", "recirc_passes_F", "crossbar")
	for n := 2; n <= 14; n++ {
		dl.Add(n, 1<<uint(n),
			core.New(n).GateDelay(),
			omega.New(n).GateDelay(),
			batcher.New(n).GateDelay(),
			recirc.New(n).PassesF(),
			1)
	}
	emit("gate_delays", dl)

	// Series 4: Section III unit-route laws.
	rt := report.NewTable("", "n", "N", "ccc_1word", "ccc_2route", "psc", "psc_omega", "mcc", "ccc_bitonic")
	for n := 2; n <= 14; n++ {
		row := []any{n, 1 << uint(n), 2*n - 1, 4*n - 2, 4*n - 3, 2 * n}
		if n%2 == 0 {
			row = append(row, simd.FullLoopCost(n))
		} else {
			row = append(row, "")
		}
		row = append(row, simd.SortRoutesCCC(n, 1))
		rt.Add(row...)
	}
	emit("simd_unit_routes", rt)

	// Series 5: exhaustive class cardinalities.
	cc := report.NewTable("", "n", "N", "factorial", "F", "BPC", "omega", "inverse_omega")
	for n := 1; n <= 3; n++ {
		N := 1 << uint(n)
		var f, bpc, om, iom int
		perm.ForEach(N, func(p perm.Perm) bool {
			if perm.InF(p) {
				f++
			}
			if _, ok := perm.RecognizeBPC(p); ok {
				bpc++
			}
			if perm.IsOmega(p) {
				om++
			}
			if perm.IsInverseOmega(p) {
				iom++
			}
			return true
		})
		cc.Add(n, N, perm.Factorial(N), f, bpc, om, iom)
	}
	cc.Add(4, 16, 20922789888000, int64(133488540928), (1<<4)*perm.Factorial(4), int64(1)<<32, int64(1)<<32)
	emit("class_cardinalities", cc)
}
