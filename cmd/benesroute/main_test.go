package main

import (
	"strings"
	"testing"

	"repro/internal/perm"
)

func TestBuildPermNamed(t *testing.T) {
	cases := []struct {
		name string
		n    int
		want perm.Perm
	}{
		{"identity", 3, perm.Identity(8)},
		{"bitreversal", 3, perm.BitReversal(3)},
		{"vectorreversal", 3, perm.VectorReversal(3)},
		{"shuffle", 3, perm.PerfectShuffle(3)},
		{"unshuffle", 3, perm.Unshuffle(3)},
		{"transpose", 4, perm.MatrixTranspose(4)},
		{"shuffledrowmajor", 4, perm.ShuffledRowMajor(4)},
		{"bitshuffle", 4, perm.BitShuffle(4)},
		{"shift:3", 3, perm.CyclicShift(3, 3)},
		{"pord:5", 4, perm.POrdering(4, 5)},
		{"pordshift:5:2", 4, perm.POrderingShift(4, 5, 2)},
	}
	for _, c := range cases {
		got, err := buildPerm(c.n, c.name, "")
		if err != nil {
			t.Errorf("buildPerm(%q): %v", c.name, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("buildPerm(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestBuildPermExplicit(t *testing.T) {
	got, err := buildPerm(0, "", "1,3,2,0")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(perm.Perm{1, 3, 2, 0}) {
		t.Fatalf("got %v", got)
	}
}

func TestClassifyReport(t *testing.T) {
	cases := []struct {
		perm perm.Perm
		want []string
	}{
		{perm.BitReversal(3), []string{"class: BPC", "bpc spec:", "self-routable: yes"}},
		{perm.CyclicShift(3, 3), []string{"class: inverse-omega", "self-routable: yes"}},
		{perm.Perm{1, 0, 3, 2, 5, 4, 7, 6}, []string{"class: BPC"}},
		{perm.Perm{5, 0, 1, 2, 3, 4, 7, 6}, []string{"class: looping-only", "self-routable: no"}},
	}
	for _, c := range cases {
		got := classifyReport(c.perm)
		for _, want := range c.want {
			if !strings.Contains(got, want) {
				t.Errorf("classifyReport(%v) missing %q:\n%s", c.perm, want, got)
			}
		}
	}
}

func TestBuildPermErrors(t *testing.T) {
	cases := []struct {
		n           int
		name, dflag string
	}{
		{3, "nosuchperm", ""},
		{3, "shift", ""},       // missing parameter
		{3, "shift:x", ""},     // bad parameter
		{0, "identity", ""},    // bad n
		{3, "", "1,1,2,0"},     // not a permutation
		{3, "", "0,1,2"},       // not a power of two
		{3, "", "0,1,2,x"},     // parse failure
		{3, "pordshift:5", ""}, // missing second parameter
	}
	for _, c := range cases {
		if _, err := buildPerm(c.n, c.name, c.dflag); err == nil {
			t.Errorf("buildPerm(%d, %q, %q) accepted bad input", c.n, c.name, c.dflag)
		}
	}
}
