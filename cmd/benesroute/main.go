// Command benesroute routes a permutation through the self-routing
// Benes network and prints the Fig.-4-style diagram: per-stage switch
// states and the destination tag on every line at every stage boundary.
//
// Usage:
//
//	benesroute -n 3 -perm bitreversal
//	benesroute -d "1,3,2,0"                  # explicit destination tags
//	benesroute -d "1,3,2,0" -mode external   # looping-algorithm setup
//	benesroute -n 4 -perm "shift:3" -mode omega
//	benesroute -n 3 -perm bitreversal -engine concurrent
//	benesroute -n 4 -perm transpose -classify
//	benesroute -map "0,0,2,x"                # classify + compile a multicast mapping
//
// Named permutations: identity, bitreversal, vectorreversal, shuffle,
// unshuffle, transpose, shuffledrowmajor, bitshuffle, shift:K, pord:P,
// pordshift:P:K. Modes: self (default), omega, external.
//
// -map takes an output-major mapping ("x" or "-1" marks an unassigned
// output), classifies it (permutation / broadcast-free / multicast),
// and for multicast mappings compiles and gate-verifies the
// distribute-copy-permute plan.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/mcast"
	"repro/internal/netsim"
	"repro/internal/perm"
)

func main() {
	n := flag.Int("n", 3, "log2 of the network size (used with -perm)")
	name := flag.String("perm", "bitreversal", "named permutation (see doc) or use -d")
	dflag := flag.String("d", "", "explicit destination tags, e.g. \"1,3,2,0\"")
	mode := flag.String("mode", "self", "routing mode: self | omega | external | twopass")
	engine := flag.String("engine", "sync", "evaluation engine: sync | concurrent")
	dump := flag.Bool("dump", false, "with -mode external: print the computed switch states")
	dot := flag.Bool("dot", false, "print the network as a Graphviz digraph instead of the diagram")
	classify := flag.Bool("classify", false, "classify the permutation (BPC / inverse-omega / F(n) / looping-only) and exit")
	mapFlag := flag.String("map", "", "output-major multicast mapping, e.g. \"0,0,2,x\" (x = unassigned); classifies and compiles it")
	flag.Parse()

	if *mapFlag != "" {
		if err := runMapping(*mapFlag); err != nil {
			fmt.Fprintln(os.Stderr, "benesroute:", err)
			os.Exit(1)
		}
		return
	}

	d, err := buildPerm(*n, *name, *dflag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benesroute:", err)
		os.Exit(1)
	}
	if *classify {
		fmt.Print(classifyReport(d))
		if !perm.Classify(d).Class.SelfRoutable() {
			os.Exit(2)
		}
		return
	}
	net := core.New(perm.Perm(d).LogN())

	if *engine == "concurrent" {
		if *mode != "self" {
			fmt.Fprintln(os.Stderr, "benesroute: the concurrent engine supports -mode self only")
			os.Exit(1)
		}
		res, _ := netsim.New(net).RouteOne(d)
		fmt.Printf("concurrent engine: N=%d, %d switch goroutines\n", net.N(), net.SwitchCount())
		fmt.Printf("requested: %v\nrealized:  %v\nok: %v", d, res.Realized, res.OK())
		if !res.OK() {
			fmt.Printf(" (misrouted inputs: %v)", res.Misrouted)
		}
		fmt.Println()
		return
	}

	if *mode == "twopass" {
		r := net.TwoPassRoute(d)
		fmt.Printf("requested permutation: %v\n", d)
		fmt.Printf("pass 1 (plain tags, inverse-omega factor): %v\n", r.F1)
		fmt.Print(net.Diagram(r.Pass1))
		fmt.Printf("pass 2 (omega bit, omega factor): %v\n", r.F2)
		fmt.Print(net.Diagram(r.Pass2))
		fmt.Printf("composed ok=%v realized=%v\n", r.OK(), r.Realized)
		if !r.OK() {
			os.Exit(2)
		}
		return
	}

	var res *core.Result
	switch *mode {
	case "self":
		res = net.SelfRoute(d)
	case "omega":
		res = net.OmegaRoute(d)
	case "external":
		st := net.Setup(d)
		if *dump {
			fmt.Printf("switch states (one stage per line):\n%s\n", st)
		}
		res = net.ExternalRoute(d, st)
	default:
		fmt.Fprintf(os.Stderr, "benesroute: unknown mode %q\n", *mode)
		os.Exit(1)
	}
	if *dot {
		fmt.Print(net.Dot(res))
		if !res.OK() {
			os.Exit(2)
		}
		return
	}
	fmt.Printf("requested permutation: %v\n", d)
	fmt.Print(net.Diagram(res))
	if !res.OK() {
		fmt.Printf("NOT realized (misrouted inputs %v)", res.Misrouted)
		if *mode == "self" {
			if _, detail := perm.FWitness(d); detail != "" {
				fmt.Printf(" — %s", detail)
			}
			fmt.Print("\nhint: try -mode omega (for Omega permutations) or -mode external (any permutation)")
		}
		fmt.Println()
		os.Exit(2)
	}
}

// runMapping parses, classifies, and — when the mapping actually fans
// out — compiles and gate-verifies an output-major multicast mapping.
func runMapping(spec string) error {
	fields := strings.Split(spec, ",")
	m := make(mcast.Mapping, len(fields))
	for i, f := range fields {
		f = strings.TrimSpace(f)
		if f == "x" || f == "X" || f == "-1" {
			m[i] = -1
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil {
			return fmt.Errorf("mapping entry %d: %v", i, err)
		}
		m[i] = v
	}
	if len(m) == 0 || len(m)&(len(m)-1) != 0 {
		return fmt.Errorf("mapping length %d is not a power of two", len(m))
	}
	cls := perm.ClassifyMapping(m)
	fmt.Printf("mapping: %v\n", []int(m))
	fmt.Printf("class: %s\n", cls.Class)
	fmt.Printf("sources: %d  assigned outputs: %d  max fan-out: %d  fanning sources: %d\n",
		cls.Sources, cls.Assigned, cls.MaxFanout, cls.BcastCount)
	switch cls.Class {
	case perm.MappingInvalid:
		return fmt.Errorf("mapping entries out of range for %d ports", len(m))
	case perm.MappingPermutation:
		fmt.Printf("permutation sub-class: %s (self-routable: %v)\n",
			cls.Perm.Class, cls.Perm.Class.SelfRoutable())
		fmt.Print("one Benes pass suffices — no copy network needed\n")
	case perm.MappingBroadcastFree:
		fmt.Print("injective but partial — one Benes pass after spare-output completion\n")
	case perm.MappingMulticast:
		b := core.New(intLog2(len(m)))
		p, err := mcast.Compile(b, m)
		if err != nil {
			return err
		}
		res := p.Route(b)
		fmt.Printf("copy network: distribute B(%d) -> %d-stage ladder -> permute B(%d)\n",
			b.LogN(), b.LogN(), b.LogN())
		fmt.Printf("ladder broadcast switches: %d  copies carried: %d\n", p.BcastSwitches, p.Copies)
		fmt.Printf("gate-level verification: ok=%v\n", res.OK())
		if !res.OK() {
			return fmt.Errorf("plan misroutes sources %v", res.Misrouted)
		}
	}
	return nil
}

func intLog2(v int) int {
	n := 0
	for 1<<uint(n) < v {
		n++
	}
	return n
}

// classifyReport renders the -classify output: the cheapest routing
// class the permutation admits, the predicate breakdown, and — for
// BPC members — the compact A-vector spec.
func classifyReport(d perm.Perm) string {
	cls := perm.Classify(d)
	var b strings.Builder
	fmt.Fprintf(&b, "permutation: %v\n", d)
	fmt.Fprintf(&b, "class: %s\n", cls.Class)
	if cls.Class == perm.ClassBPC {
		fmt.Fprintf(&b, "bpc spec: %s\n", cls.Spec)
	}
	yn := func(v bool) string {
		if v {
			return "yes"
		}
		return "no"
	}
	fmt.Fprintf(&b, "bpc: %s  omega: %s  inverse-omega: %s  F(n): %s\n",
		yn(cls.Class == perm.ClassBPC), yn(cls.Omega), yn(cls.InverseOmega), yn(cls.InF))
	if cls.Class.SelfRoutable() {
		b.WriteString("self-routable: yes — destination tags alone set every switch\n")
	} else {
		b.WriteString("self-routable: no — needs the looping algorithm (-mode external)\n")
	}
	return b.String()
}

func buildPerm(n int, name, dflag string) (perm.Perm, error) {
	if dflag != "" {
		d, err := perm.Parse(dflag)
		if err != nil {
			return nil, err
		}
		if len(d) == 0 || len(d)&(len(d)-1) != 0 {
			return nil, fmt.Errorf("destination vector length %d is not a power of two", len(d))
		}
		return d, nil
	}
	if n < 1 {
		return nil, fmt.Errorf("-n must be >= 1")
	}
	parts := strings.Split(name, ":")
	arg := func(i int) (int, error) {
		if i >= len(parts) {
			return 0, fmt.Errorf("permutation %q needs parameter %d", name, i)
		}
		return strconv.Atoi(parts[i])
	}
	switch parts[0] {
	case "identity":
		return perm.Identity(1 << uint(n)), nil
	case "bitreversal":
		return perm.BitReversal(n), nil
	case "vectorreversal":
		return perm.VectorReversal(n), nil
	case "shuffle":
		return perm.PerfectShuffle(n), nil
	case "unshuffle":
		return perm.Unshuffle(n), nil
	case "transpose":
		return perm.MatrixTranspose(n), nil
	case "shuffledrowmajor":
		return perm.ShuffledRowMajor(n), nil
	case "bitshuffle":
		return perm.BitShuffle(n), nil
	case "shift":
		k, err := arg(1)
		if err != nil {
			return nil, err
		}
		return perm.CyclicShift(n, k), nil
	case "pord":
		p, err := arg(1)
		if err != nil {
			return nil, err
		}
		return perm.POrdering(n, p), nil
	case "pordshift":
		p, err := arg(1)
		if err != nil {
			return nil, err
		}
		k, err := arg(2)
		if err != nil {
			return nil, err
		}
		return perm.POrderingShift(n, p, k), nil
	}
	return nil, fmt.Errorf("unknown permutation %q", name)
}
