package gcn

import (
	"math/rand"
	"testing"

	"repro/internal/perm"
)

func carryInts(t *testing.T, n int, req Request) []int {
	t.Helper()
	g := New(n)
	plan, err := g.Connect(req)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	data := make([]int, g.N())
	for i := range data {
		data[i] = 1000 + i
	}
	return Carry(plan, data)
}

// TestBroadcastOne: every output requests input 3.
func TestBroadcastOne(t *testing.T) {
	n := 4
	req := make(Request, 1<<uint(n))
	for out := range req {
		req[out] = 3
	}
	out := carryInts(t, n, req)
	for _, v := range out {
		if v != 1003 {
			t.Fatalf("broadcast failed: %v", out)
		}
	}
}

// TestPermutationRequests: a bijective request reduces to an ordinary
// permutation.
func TestPermutationRequests(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(7)
		p := perm.Random(1<<uint(n), rng)
		// Output out wants input p.Inverse()[out] so that data moves by p.
		req := Request(p.Inverse())
		out := carryInts(t, n, req)
		for o, in := range req {
			if out[o] != 1000+in {
				t.Fatalf("n=%d: output %d got %d, want input %d", n, o, out[o], in)
			}
		}
	}
}

// TestRandomMappings: arbitrary many-to-one requests.
func TestRandomMappings(t *testing.T) {
	rng := rand.New(rand.NewSource(212))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(8)
		N := 1 << uint(n)
		req := make(Request, N)
		for o := range req {
			req[o] = rng.Intn(N)
		}
		out := carryInts(t, n, req)
		for o, in := range req {
			if out[o] != 1000+in {
				t.Fatalf("n=%d trial=%d: output %d got %d, want %d", n, trial, o, out[o], 1000+in)
			}
		}
	}
}

// TestConstantRequest: all outputs want input 0 — the extreme fan-out.
func TestConstantRequest(t *testing.T) {
	for n := 1; n <= 8; n++ {
		req := make(Request, 1<<uint(n))
		out := carryInts(t, n, req)
		for _, v := range out {
			if v != 1000 {
				t.Fatalf("n=%d: constant broadcast failed", n)
			}
		}
		if req.MaxFanout() != 1<<uint(n) || req.LadderStagesNeeded() != n {
			t.Fatalf("n=%d: fanout bookkeeping wrong", n)
		}
	}
}

// TestSkewedFanout: half the outputs want one input, the rest spread.
func TestSkewedFanout(t *testing.T) {
	n := 5
	N := 32
	req := make(Request, N)
	for o := 0; o < N/2; o++ {
		req[o] = 7
	}
	for o := N / 2; o < N; o++ {
		req[o] = o - N/2
	}
	out := carryInts(t, n, req)
	for o, in := range req {
		if out[o] != 1000+in {
			t.Fatalf("output %d got %d", o, out[o])
		}
	}
}

func TestCounts(t *testing.T) {
	g := New(4)
	if g.N() != 16 {
		t.Fatal("N wrong")
	}
	// Two Benes networks (56 switches each) + 4*16 copy selectors.
	if g.SwitchCount() != 2*56+64 {
		t.Errorf("switches = %d", g.SwitchCount())
	}
	if g.GateDelay() != 2*7+4 {
		t.Errorf("delay = %d", g.GateDelay())
	}
}

func TestValidate(t *testing.T) {
	g := New(2)
	if _, err := g.Connect(Request{0, 1, 2}); err == nil {
		t.Error("short request accepted")
	}
	if _, err := g.Connect(Request{0, 1, 2, 9}); err == nil {
		t.Error("out-of-range request accepted")
	}
}

func TestCarryPanicsOnBadData(t *testing.T) {
	g := New(2)
	plan, err := g.Connect(Request{0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Carry(plan, []int{1, 2})
}
