// Package gcn implements a generalized connection network — the
// application the paper's introduction cites for the Benes network
// ("finds application as a subnetwork of a generalized connection
// network [9]", Thompson). A generalized connection realizes an
// arbitrary *mapping* request: every output names the input it wants to
// hear from, inputs may be requested by many outputs (broadcast), and
// some inputs by none.
//
// The construction follows the classic sandwich, with the Benes network
// of package core as both permutation subnetworks:
//
//	distribute (Benes, external setup)
//	   -> each requested input moves to the first slot of a contiguous
//	      block sized to its fan-out (blocks ordered by input index);
//	copy ladder (log N stages of segmented doubling)
//	   -> stage k copies slot p to slot p+2^k when the whole span lies
//	      inside the block, filling every block with copies;
//	permute (Benes, external setup)
//	   -> the i-th copy of each block moves to the i-th output
//	      requesting that input.
//
// Total cost: 2 Benes networks plus log N copy stages — O(N log N)
// switches and O(log N) gate delay, matching the generalized-connector
// constructions of the literature.
package gcn

import (
	"fmt"
	"sort"

	"repro/internal/bits"
	"repro/internal/core"
	"repro/internal/perm"
)

// Network is an N-input/N-output generalized connection network.
type Network struct {
	n    int
	size int
	dist *core.Network // distribution Benes
	perm *core.Network // final permutation Benes
}

// New builds a generalized connector for 2^n terminals.
func New(n int) *Network {
	return &Network{n: n, size: 1 << uint(n), dist: core.New(n), perm: core.New(n)}
}

// N returns the terminal count.
func (g *Network) N() int { return g.size }

// SwitchCount returns the binary-switch budget: two Benes networks plus
// N selectors per copy stage.
func (g *Network) SwitchCount() int {
	return 2*g.dist.SwitchCount() + g.n*g.size
}

// GateDelay returns the end-to-end delay in stage traversals.
func (g *Network) GateDelay() int {
	return 2*g.dist.GateDelay() + g.n
}

// Request is a generalized connection: Request[out] = the input whose
// datum output `out` wants. Any total map on [0, N) is allowed.
type Request []int

// Validate checks every requested input is in range.
func (r Request) Validate(size int) error {
	if len(r) != size {
		return fmt.Errorf("gcn: request length %d != N %d", len(r), size)
	}
	for out, in := range r {
		if in < 0 || in >= size {
			return fmt.Errorf("gcn: output %d requests out-of-range input %d", out, in)
		}
	}
	return nil
}

// Plan is a fully set-up connection ready to carry data.
type Plan struct {
	g          *Network
	req        Request
	distStates core.States
	permStates core.States
	distPerm   perm.Perm
	permPerm   perm.Perm
	copyFrom   [][]int // copyFrom[k][p] = source slot at ladder stage k (or -1)
}

// Connect computes the three-phase setup for a request.
func (g *Network) Connect(req Request) (*Plan, error) {
	if err := req.Validate(g.size); err != nil {
		return nil, err
	}
	// Fan-out per input and block start offsets, ordered by input index.
	fan := make([]int, g.size)
	for _, in := range req {
		fan[in]++
	}
	start := make([]int, g.size)
	acc := 0
	for in, f := range fan {
		start[in] = acc
		acc += f
	}
	// Distribution permutation: requested input -> its block start.
	// Unrequested inputs fill the remaining slots in index order.
	distP := make(perm.Perm, g.size)
	var free []int
	used := make([]bool, g.size)
	for in, f := range fan {
		if f > 0 {
			distP[in] = start[in]
			used[start[in]] = true
		}
	}
	for slot := 0; slot < g.size; slot++ {
		if !used[slot] {
			free = append(free, slot)
		}
	}
	fi := 0
	for in, f := range fan {
		if f == 0 {
			distP[in] = free[fi]
			fi++
		}
	}
	if err := distP.Validate(); err != nil {
		return nil, fmt.Errorf("gcn: internal distribution error: %v", err)
	}

	// Copy ladder: blockOf[slot] = input owning the slot (or -1).
	blockOf := make([]int, g.size)
	for i := range blockOf {
		blockOf[i] = -1
	}
	for in, f := range fan {
		for c := 0; c < f; c++ {
			blockOf[start[in]+c] = in
		}
	}
	// filled[slot] tracks which slots hold a copy as the ladder runs.
	filled := make([]bool, g.size)
	for in, f := range fan {
		if f > 0 {
			filled[start[in]] = true
		}
	}
	copyFrom := make([][]int, g.n)
	for k := 0; k < g.n; k++ {
		step := 1 << uint(k)
		cf := make([]int, g.size)
		for i := range cf {
			cf[i] = -1
		}
		// Copy from p to p+step when both lie in the same block, the
		// source is filled and the target is not yet.
		for p := 0; p+step < g.size; p++ {
			q := p + step
			if filled[p] && !filled[q] && blockOf[p] >= 0 && blockOf[p] == blockOf[q] {
				cf[q] = p
			}
		}
		for q, p := range cf {
			if p >= 0 {
				filled[q] = true
			}
		}
		copyFrom[k] = cf
	}
	for slot, in := range blockOf {
		if in >= 0 && !filled[slot] {
			return nil, fmt.Errorf("gcn: internal copy-ladder gap at slot %d", slot)
		}
	}

	// Final permutation: the c-th copy of input `in` goes to the c-th
	// output (in output order) requesting `in`.
	outsByInput := make([][]int, g.size)
	for out, in := range req {
		outsByInput[in] = append(outsByInput[in], out)
	}
	for _, outs := range outsByInput {
		sort.Ints(outs)
	}
	permP := make(perm.Perm, g.size)
	assigned := make([]bool, g.size)
	for in, outs := range outsByInput {
		for c, out := range outs {
			permP[start[in]+c] = out
			assigned[out] = true
		}
	}
	var spare []int
	for out := 0; out < g.size; out++ {
		if !assigned[out] {
			spare = append(spare, out)
		}
	}
	si := 0
	for slot := 0; slot < g.size; slot++ {
		if blockOf[slot] == -1 {
			permP[slot] = spare[si]
			si++
		}
	}
	if err := permP.Validate(); err != nil {
		return nil, fmt.Errorf("gcn: internal permutation error: %v", err)
	}

	return &Plan{
		g:          g,
		req:        append(Request(nil), req...),
		distStates: g.dist.Setup(distP),
		permStates: g.perm.Setup(permP),
		distPerm:   distP,
		permPerm:   permP,
		copyFrom:   copyFrom,
	}, nil
}

// Carry moves data through the planned connection:
// result[out] = data[req[out]] for every output.
func Carry[T any](p *Plan, data []T) []T {
	g := p.g
	if len(data) != g.size {
		panic("gcn: data length mismatch")
	}
	// Phase 1: distribute through the first Benes.
	res := g.dist.ExternalRoute(p.distPerm, p.distStates)
	if !res.OK() {
		panic("gcn: distribution phase misrouted")
	}
	cur := perm.Apply(p.distPerm, data)
	// Phase 2: the copy ladder.
	for k := 0; k < g.n; k++ {
		next := append([]T(nil), cur...)
		for q, from := range p.copyFrom[k] {
			if from >= 0 {
				next[q] = cur[from]
			}
		}
		cur = next
	}
	// Phase 3: final permutation.
	res = g.perm.ExternalRoute(p.permPerm, p.permStates)
	if !res.OK() {
		panic("gcn: permutation phase misrouted")
	}
	return perm.Apply(p.permPerm, cur)
}

// MaxFanout returns the largest replication factor in the request.
func (r Request) MaxFanout() int {
	fan := map[int]int{}
	max := 0
	for _, in := range r {
		fan[in]++
		if fan[in] > max {
			max = fan[in]
		}
	}
	return max
}

// LadderStagesNeeded returns how many copy stages a request actually
// exercises: ceil(log2 of the largest fan-out).
func (r Request) LadderStagesNeeded() int {
	return bits.CeilLog2(r.MaxFanout())
}
