package costmodel

import (
	"math"
	"testing"
)

func TestBenesAlwaysBeatsSimulationOnF(t *testing.T) {
	// Section IV's point: same step counts, cheaper steps — B(n)
	// dominates every E(n) simulation for F permutations whenever a
	// gate is cheaper than a broadcast+route step.
	p := Typical1980()
	for n := 1; n <= 20; n++ {
		bt := Time(BenesSelfRoute, n, p)
		for _, s := range []Strategy{CCCSim, PSCSim, MCCSim, CCCSort} {
			if Time(s, n, p) <= bt {
				t.Errorf("n=%d: %s not slower than B(n)", n, s)
			}
		}
	}
}

func TestTwoPassBeatsExternalSetup(t *testing.T) {
	// Factorization costs ~half the looping setup and saves nothing on
	// the wire? It costs one extra pass but half the host work; the
	// model must show two-pass at least as fast for all n >= 2.
	p := Typical1980()
	for n := 2; n <= 20; n++ {
		if Time(BenesTwoPass, n, p) > Time(BenesExternal, n, p) {
			t.Errorf("n=%d: two-pass slower than external setup", n)
		}
	}
}

func TestSortVsSimulationCrossover(t *testing.T) {
	// The bitonic sorter pays log^2; the F simulation pays log. The
	// sorter can win only at tiny n, and must lose from some crossover
	// on.
	p := Typical1980()
	cross := CrossoverN(CCCSim, CCCSort, 1, 30, p)
	if cross == -1 {
		t.Fatal("F simulation never overtakes sorting")
	}
	for n := cross; n <= 30; n++ {
		if Time(CCCSim, n, p) > Time(CCCSort, n, p) {
			t.Errorf("n=%d: ordering flips after crossover", n)
		}
	}
}

func TestMCCGrowsAsSqrtN(t *testing.T) {
	p := Typical1980()
	// Doubling n (so N -> N^2) should multiply MCC route time roughly
	// by sqrt(N): ratio of times at n=20 vs n=10 close to 2^5 within
	// broadcast slack.
	t10 := Time(MCCSim, 10, p)
	t20 := Time(MCCSim, 20, p)
	ratio := t20 / t10
	if ratio < 20 || ratio > 40 {
		t.Errorf("MCC scaling ratio %.1f outside sqrt-N envelope", ratio)
	}
}

func TestUniversalFlags(t *testing.T) {
	want := map[Strategy]bool{
		BenesSelfRoute: false, BenesOmegaBit: false,
		BenesTwoPass: true, BenesExternal: true,
		CCCSim: false, PSCSim: false, MCCSim: false, CCCSort: true,
	}
	for s, w := range want {
		if s.Universal() != w {
			t.Errorf("%s universal=%v, want %v", s, s.Universal(), w)
		}
	}
	if len(Strategies()) != len(want) {
		t.Error("Strategies() incomplete")
	}
}

func TestSpeedupReciprocal(t *testing.T) {
	p := Typical1980()
	a, b := BenesSelfRoute, CCCSim
	if math.Abs(Speedup(a, b, 10, p)*Speedup(b, a, 10, p)-1) > 1e-12 {
		t.Error("speedup not reciprocal")
	}
}

func TestTimePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Time(Strategy("nope"), 4, Typical1980())
}

func TestBitSerialDelayClosedForm(t *testing.T) {
	// f = sum over stages 1..2n-2 of (1 + cb(s)) plus n drain cycles:
	// closed form (n-1)^2 + 3n - 2 (for n >= 1).
	for n := 1; n <= 16; n++ {
		want := (n-1)*(n-1) + 3*n - 2
		if got := BitSerialDelay(n); got != want {
			t.Errorf("n=%d: BitSerialDelay=%d, want %d", n, got, want)
		}
	}
}

func TestBitSerialQuadraticVsParallelLinear(t *testing.T) {
	// The ratio must grow ~ n/2: parallel tags are what keep the
	// network O(log N).
	for n := 4; n <= 16; n++ {
		serial := float64(BitSerialDelay(n))
		parallel := float64(ParallelTagDelay(n))
		ratio := serial / parallel
		if ratio < float64(n)/4 || ratio > float64(n) {
			t.Errorf("n=%d: serial/parallel ratio %.2f outside the n/2 envelope", n, ratio)
		}
	}
}

func TestBroadcastFreeRegime(t *testing.T) {
	// If broadcasts were free and routes as cheap as gates, the CCC
	// simulation would tie B(n) — the model must reflect that the
	// advantage comes entirely from the step cost.
	p := Params{Gate: 1, Route: 1, Broadcast: 0, HostOp: 1}
	for n := 1; n <= 10; n++ {
		if Time(CCCSim, n, p) != Time(BenesSelfRoute, n, p) {
			t.Errorf("n=%d: equal-step-cost regime should tie", n)
		}
	}
}
