// Package costmodel implements the timing argument of the paper's
// Section IV and conclusion: an SIMD machine should carry a direct
// interconnection E(n) *and* the self-routing Benes network B(n),
// because a pass through B(n) costs pure gate delays while every
// routing step of an E(n) simulation costs an instruction broadcast
// plus register gating. The model assigns a time to each strategy as a
// function of four technology parameters and exposes the crossovers.
//
// All step counts are the exact ones measured elsewhere in this
// repository (2 log N - 1 Benes stages and CCC routes, 4 log N - 3 PSC
// routes, 7 sqrt N - 8 MCC routes, n(n+1)/2 bitonic stages, ~2 N log N
// looping-setup operations, ~N log N factorization operations).
package costmodel

import (
	"math"
)

// Params are the technology constants, in arbitrary consistent time
// units (think nanoseconds per event).
type Params struct {
	Gate      float64 // delay through one network switch stage
	Route     float64 // register-to-register gating of one unit route
	Broadcast float64 // instruction broadcast to all PEs, per SIMD step
	HostOp    float64 // one word of host/control-unit arithmetic
}

// Typical1980 returns constants in the spirit of the paper's era:
// switch stages are fast combinational logic, unit routes cost a full
// register transfer, and every SIMD step pays a broadcast.
func Typical1980() Params {
	return Params{Gate: 1, Route: 10, Broadcast: 20, HostOp: 5}
}

// Strategy names a way to perform a permutation.
type Strategy string

const (
	BenesSelfRoute Strategy = "B(n) self-route (F only)"
	BenesOmegaBit  Strategy = "B(n) omega bit (Omega only)"
	BenesTwoPass   Strategy = "B(n) two passes (any perm)"
	BenesExternal  Strategy = "B(n) external setup (any perm)"
	CCCSim         Strategy = "CCC simulation (F only)"
	PSCSim         Strategy = "PSC simulation (F only)"
	MCCSim         Strategy = "MCC simulation (F only)"
	CCCSort        Strategy = "CCC bitonic sort (any perm)"
)

// Universal reports whether the strategy handles arbitrary permutations
// (true) or only the tag-routable classes (false).
func (s Strategy) Universal() bool {
	switch s {
	case BenesTwoPass, BenesExternal, CCCSort:
		return true
	}
	return false
}

// Time returns the modelled time to perform one N = 2^n permutation
// with the strategy under params p.
func Time(s Strategy, n int, p Params) float64 {
	N := float64(int64(1) << uint(n))
	nn := float64(n)
	stages := 2*nn - 1
	switch s {
	case BenesSelfRoute, BenesOmegaBit:
		return stages * p.Gate
	case BenesTwoPass:
		// Host-side factorization (~N log N word ops) + two passes.
		return N*nn*p.HostOp + 2*stages*p.Gate
	case BenesExternal:
		// Looping setup (~2 N log N word ops) + one pass.
		return 2*N*nn*p.HostOp + stages*p.Gate
	case CCCSim:
		return stages * (p.Broadcast + p.Route)
	case PSCSim:
		return (4*nn - 3) * (p.Broadcast + p.Route)
	case MCCSim:
		// 2 log N - 1 broadcast steps; 7 sqrt N - 8 unit routes.
		return stages*p.Broadcast + (7*math.Sqrt(N)-8)*p.Route
	case CCCSort:
		return nn * (nn + 1) / 2 * (p.Broadcast + 2*p.Route)
	}
	panic("costmodel: unknown strategy " + string(s))
}

// Strategies lists every modelled strategy.
func Strategies() []Strategy {
	return []Strategy{
		BenesSelfRoute, BenesOmegaBit, BenesTwoPass, BenesExternal,
		CCCSim, PSCSim, MCCSim, CCCSort,
	}
}

// BitSerialDelay models the self-routing delay if destination tags were
// streamed BIT-SERIALLY (LSB first, one bit per cycle over single-wire
// links) instead of in parallel. A switch at stage s cannot decide
// before bit ControlBit(s) of its upper tag arrives, and cannot forward
// anything before deciding, so with f_s = decision time of stage s:
//
//	f_0 = cb(0),   f_s = f_{s-1} + 1 + cb(s),
//
// and the vector completes ~log N cycles after the last decision while
// the tag drains. Summing the paper's control schedule gives
// (n-1)^2 + 3n - 2 cycles — Theta(log^2 N), versus 2 log N - 1 with
// parallel tag wires. The paper's "destination tag (log N bits) is
// passed through the network along with each input" therefore carries a
// real architectural requirement: the tag must travel on parallel
// wires (or be pipelined per Section IV) for the O(log N) claim.
func BitSerialDelay(n int) int {
	f := 0 // f_0 = cb(0) = 0
	for s := 1; s <= 2*n-2; s++ {
		cb := s
		if m := 2*n - 2 - s; m < cb {
			cb = m
		}
		f += 1 + cb
	}
	return f + n // drain the remaining tag/data bits
}

// ParallelTagDelay is the paper's figure: 2 log N - 1 stage traversals
// with the whole tag on parallel wires.
func ParallelTagDelay(n int) int { return 2*n - 1 }

// Speedup returns Time(b)/Time(a): how much faster strategy a is.
func Speedup(a, b Strategy, n int, p Params) float64 {
	return Time(b, n, p) / Time(a, n, p)
}

// CrossoverN finds the smallest n in [lo, hi] at which strategy a
// becomes no slower than strategy b, or -1 if it never does in range.
func CrossoverN(a, b Strategy, lo, hi int, p Params) int {
	for n := lo; n <= hi; n++ {
		if Time(a, n, p) <= Time(b, n, p) {
			return n
		}
	}
	return -1
}
