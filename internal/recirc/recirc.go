// Package recirc implements a recirculating shuffle-exchange network:
// a SINGLE column of N/2 two-state switches whose outputs feed back to
// its inputs through shuffle (and unshuffle) wiring. This is the
// cheap-hardware design point the paper contrasts with in Section I
// (networks in the Lang & Stone tradition): only N/2 switches — a
// 2 log N - 1 factor less than the Benes network — at the price of one
// column traversal per pass.
//
// Modes:
//   - RouteF: the Section III PSC schedule executed in hardware,
//     4 log N - 3 passes, realizing exactly the class F(n);
//   - RouteOmega: n passes of shuffle+exchange, realizing exactly
//     Omega(n) (a recirculating omega network);
//   - RouteInverseOmega: n passes of exchange+unshuffle, realizing
//     exactly the inverse-omega class.
//
// Every mode self-routes from destination tags with the paper's rule:
// a switch crosses iff the control bit of its UPPER input's tag is 1.
package recirc

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/perm"
)

// Network is the single-column recirculating fabric.
type Network struct {
	n    int
	size int
}

// New builds the fabric for 2^n lines.
func New(n int) *Network {
	if n < 1 {
		panic("recirc: New requires n >= 1")
	}
	return &Network{n: n, size: 1 << uint(n)}
}

// N returns the line count.
func (r *Network) N() int { return r.size }

// LogN returns n.
func (r *Network) LogN() int { return r.n }

// SwitchCount returns the physical switches: one column, N/2.
func (r *Network) SwitchCount() int { return r.size / 2 }

// PassesF returns the sequential steps (column traversals plus
// recirculation wire trips) for an F permutation: 2 log N - 1 exchanges
// and 2 log N - 2 wire trips, 4 log N - 3 in all — the same count as
// the PSC unit routes, now reread as hardware delay.
func (r *Network) PassesF() int { return 4*r.n - 3 }

// PassesOmega returns the steps for an Omega (or inverse-omega)
// permutation: log N exchanges plus log N wire trips.
func (r *Network) PassesOmega() int { return 2 * r.n }

// Result reports one recirculating routing.
type Result struct {
	Realized  perm.Perm
	Misrouted []int
	Exchanges int // switch-column traversals
	WireTrips int // shuffle/unshuffle recirculations
}

// Passes returns the total sequential steps: the column is a shared
// resource, so exchanges and wire trips serialize.
func (res *Result) Passes() int { return res.Exchanges + res.WireTrips }

// OK reports whether the permutation was realized.
func (res *Result) OK() bool { return len(res.Misrouted) == 0 }

// state is the recirculating register contents.
type state struct {
	tags []int
	src  []int
	n    int
}

func newState(d perm.Perm, n int) *state {
	s := &state{tags: append([]int(nil), d...), src: make([]int, len(d)), n: n}
	for i := range s.src {
		s.src[i] = i
	}
	return s
}

// exchange runs the switch column once, deciding each switch from bit
// cb of its upper input's tag.
func (s *state) exchange(cb int) {
	for i := 0; i < len(s.tags); i += 2 {
		if bits.Bit(s.tags[i], cb) == 1 {
			s.tags[i], s.tags[i+1] = s.tags[i+1], s.tags[i]
			s.src[i], s.src[i+1] = s.src[i+1], s.src[i]
		}
	}
}

// shuffle recirculates through the shuffle wiring.
func (s *state) shuffle() {
	nt := make([]int, len(s.tags))
	ns := make([]int, len(s.src))
	for i := range s.tags {
		to := bits.RotLeft(i, s.n)
		nt[to], ns[to] = s.tags[i], s.src[i]
	}
	s.tags, s.src = nt, ns
}

// unshuffle recirculates through the reverse wiring.
func (s *state) unshuffle() {
	nt := make([]int, len(s.tags))
	ns := make([]int, len(s.src))
	for i := range s.tags {
		to := bits.RotRight(i, s.n)
		nt[to], ns[to] = s.tags[i], s.src[i]
	}
	s.tags, s.src = nt, ns
}

func (s *state) result(d perm.Perm, exchanges, wireTrips int) *Result {
	res := &Result{Realized: make(perm.Perm, len(d)), Exchanges: exchanges, WireTrips: wireTrips}
	for line, src := range s.src {
		res.Realized[src] = line
	}
	for i, dest := range d {
		if res.Realized[i] != dest {
			res.Misrouted = append(res.Misrouted, i)
		}
	}
	return res
}

func (r *Network) check(d perm.Perm) {
	if len(d) != r.size {
		panic(fmt.Sprintf("recirc: permutation length %d != N %d", len(d), r.size))
	}
}

// RouteF runs the full F schedule: exchange(bit b)+unshuffle for
// b = 0..n-2, exchange(bit n-1), then shuffle+exchange(bit b) for
// b = n-2..0. It realizes exactly F(n) in 4 log N - 3 passes.
func (r *Network) RouteF(d perm.Perm) *Result {
	r.check(d)
	s := newState(d, r.n)
	ex, wt := 0, 0
	for b := 0; b <= r.n-2; b++ {
		s.exchange(b)
		s.unshuffle()
		ex, wt = ex+1, wt+1
	}
	s.exchange(r.n - 1)
	ex++
	for b := r.n - 2; b >= 0; b-- {
		s.shuffle()
		s.exchange(b)
		ex, wt = ex+1, wt+1
	}
	return s.result(d, ex, wt)
}

// RouteOmega runs n passes of shuffle+exchange(bit n-1-k): the
// recirculating omega network. Realizes exactly Omega(n).
func (r *Network) RouteOmega(d perm.Perm) *Result {
	r.check(d)
	s := newState(d, r.n)
	for k := 0; k < r.n; k++ {
		s.shuffle()
		s.exchange(r.n - 1 - k)
	}
	return s.result(d, r.n, r.n)
}

// RouteInverseOmega runs n passes of exchange(bit k)+unshuffle: the
// omega network backwards. Realizes exactly the inverse-omega class.
func (r *Network) RouteInverseOmega(d perm.Perm) *Result {
	r.check(d)
	s := newState(d, r.n)
	for k := 0; k < r.n; k++ {
		s.exchange(k)
		s.unshuffle()
	}
	return s.result(d, r.n, r.n)
}
