package recirc_test

import (
	"fmt"

	"repro/internal/perm"
	"repro/internal/recirc"
)

// One switch column plus shuffle wiring realizes all of F in
// 4 log N - 3 recirculating passes.
func ExampleNetwork_RouteF() {
	r := recirc.New(3)
	res := r.RouteF(perm.BitReversal(3))
	fmt.Println("ok:", res.OK(), "switches:", r.SwitchCount(),
		"exchanges:", res.Exchanges, "wire trips:", res.WireTrips)
	// Output:
	// ok: true switches: 4 exchanges: 5 wire trips: 4
}

// Omega permutations need only log N passes.
func ExampleNetwork_RouteOmega() {
	r := recirc.New(4)
	res := r.RouteOmega(perm.CyclicShift(4, 3))
	fmt.Println("ok:", res.OK(), "passes:", res.Passes())
	// Output:
	// ok: true passes: 8
}
