package recirc

import (
	"math/rand"
	"testing"

	"repro/internal/perm"
)

func TestCounts(t *testing.T) {
	r := New(6)
	if r.N() != 64 || r.SwitchCount() != 32 {
		t.Fatalf("structure: N=%d switches=%d", r.N(), r.SwitchCount())
	}
	if r.PassesF() != 21 || r.PassesOmega() != 12 {
		t.Fatalf("passes: F=%d omega=%d", r.PassesF(), r.PassesOmega())
	}
}

// TestRouteFRealizesExactlyF: the recirculating schedule must equal F —
// exhaustive at N=4, N=8.
func TestRouteFRealizesExactlyF(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		r := New(n)
		perm.ForEach(1<<uint(n), func(p perm.Perm) bool {
			res := r.RouteF(p)
			if res.OK() != perm.InF(p) {
				t.Fatalf("n=%d: recirc and Theorem 1 disagree on %v", n, p.Clone())
			}
			if res.OK() && !res.Realized.Equal(p) {
				t.Fatalf("n=%d: realized %v, want %v", n, res.Realized, p.Clone())
			}
			return true
		})
	}
	rng := rand.New(rand.NewSource(181))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(8)
		r := New(n)
		p := perm.Random(1<<uint(n), rng)
		if r.RouteF(p).OK() != perm.InF(p) {
			t.Fatalf("n=%d: recirc disagrees with F on %v", n, p)
		}
	}
}

// TestRouteFPassCounts: 2logN-1 exchanges, 2logN-2 wire trips.
func TestRouteFPassCounts(t *testing.T) {
	for n := 1; n <= 10; n++ {
		r := New(n)
		res := r.RouteF(perm.Identity(1 << uint(n)))
		if res.Exchanges != 2*n-1 {
			t.Errorf("n=%d: exchanges=%d, want %d", n, res.Exchanges, 2*n-1)
		}
		if res.WireTrips != 2*n-2 {
			t.Errorf("n=%d: wire trips=%d, want %d", n, res.WireTrips, 2*n-2)
		}
		if res.Passes() != r.PassesF() {
			t.Errorf("n=%d: passes=%d, want %d", n, res.Passes(), r.PassesF())
		}
	}
}

// TestRouteOmegaRealizesExactlyOmega.
func TestRouteOmegaRealizesExactlyOmega(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		r := New(n)
		perm.ForEach(1<<uint(n), func(p perm.Perm) bool {
			if r.RouteOmega(p).OK() != perm.IsOmega(p) {
				t.Fatalf("n=%d: recirc omega disagrees with IsOmega on %v", n, p.Clone())
			}
			return true
		})
	}
}

// TestRouteInverseOmegaRealizesExactlyInverseOmega.
func TestRouteInverseOmegaRealizesExactlyInverseOmega(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		r := New(n)
		perm.ForEach(1<<uint(n), func(p perm.Perm) bool {
			if r.RouteInverseOmega(p).OK() != perm.IsInverseOmega(p) {
				t.Fatalf("n=%d: recirc inverse-omega disagrees on %v", n, p.Clone())
			}
			return true
		})
	}
	// Larger spot checks with known members.
	for n := 4; n <= 9; n++ {
		r := New(n)
		if !r.RouteInverseOmega(perm.POrderingShift(n, 5, 3)).OK() {
			t.Errorf("n=%d: p-ordering+shift failed", n)
		}
		if !r.RouteOmega(perm.CyclicShift(n, 3)).OK() {
			t.Errorf("n=%d: cyclic shift failed on omega mode", n)
		}
	}
}

// TestRealizedAlwaysBijection: misroutes still land somewhere distinct.
func TestRealizedAlwaysBijection(t *testing.T) {
	rng := rand.New(rand.NewSource(182))
	r := New(5)
	for trial := 0; trial < 50; trial++ {
		res := r.RouteF(perm.Random(32, rng))
		if !res.Realized.Valid() {
			t.Fatal("realized mapping not a bijection")
		}
	}
}

func TestCheckPanics(t *testing.T) {
	r := New(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on size mismatch")
		}
	}()
	r.RouteF(perm.Identity(4))
}
