// Package parsetup implements a data-parallel setup algorithm for the
// Benes network, the comparison point the paper cites from Nassimi &
// Sahni's parallel-setup work [7]: even with a parallel algorithm,
// computing switch states for an arbitrary permutation costs
// polylogarithmic *rounds* (O(log^2 N) on an idealized PRAM; more on a
// real CCC/PSC where each round itself routes), which is why the
// zero-setup self-routing scheme wins whenever the permutation is in F.
//
// The algorithm parallelizes the classic looping 2-coloring. At each
// recursion level all blocks are processed simultaneously:
//
//  1. every input position k computes its loop successor
//     next(k) = partner(sibling-destination(k)) locally;
//  2. every next-cycle elects its minimum position as leader by
//     pointer-jumping (min-doubling, ceil(log cycle-length) rounds);
//  3. a cycle routes its members through the upper subnetwork iff its
//     leader is smaller than the leader of its partner cycle (the cycle
//     holding the switch-partners k XOR 1) — a local comparison that
//     reproduces the sequential algorithm's choices exactly, so the
//     resulting switch states are bit-identical to core.Network.Setup.
//
// Rounds are counted per pointer-jumping iteration plus a constant per
// level for the local steps, summed over the log N levels.
package parsetup

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/perm"
)

// Stats reports the parallel cost of one setup.
type Stats struct {
	Levels        int   // recursion levels processed (log N - 1 plus the base)
	JumpRounds    int   // pointer-jumping rounds across all levels
	LocalRounds   int   // constant-time parallel steps (successor/compare/scatter)
	RoundsByLevel []int // jump rounds spent at each level, outermost first
}

// TotalRounds returns the total synchronous parallel rounds.
func (s Stats) TotalRounds() int { return s.JumpRounds + s.LocalRounds }

// Setup computes switch states realizing d on b, in parallel-rounds
// accounting. The states are identical to b.Setup(d). Invalid input —
// a vector that is not a permutation, or one whose length does not
// match the network — is reported as an error, never a panic: round
// modeling runs against arbitrary externally supplied permutations.
func Setup(b *core.Network, d perm.Perm) (core.States, Stats, error) {
	if len(d) != b.N() {
		return nil, Stats{}, fmt.Errorf("parsetup: permutation length %d != N %d", len(d), b.N())
	}
	if err := d.Validate(); err != nil {
		return nil, Stats{}, fmt.Errorf("parsetup: %w", err)
	}
	n := b.LogN()
	st := b.NewStates()
	stats := Stats{}

	// dests[k] is the block-local destination of the element at global
	// position k; blocks at level l (block size 2^(n-l)) are contiguous.
	dests := append([]int(nil), d...)
	N := len(d)

	for level := 0; level <= n-2; level++ {
		m := n - level       // current block size is 2^m
		size := 1 << uint(m) // block size
		mask := size - 1     //
		s0 := level          // first stage this level owns
		lastStage := 2*n - 2 - level

		stats.Levels++

		// --- local steps (each O(1) parallel time) ---
		// invDest within each block.
		invDest := make([]int, N)
		for k, v := range dests {
			base := k &^ mask
			invDest[base+v] = k & mask
		}
		// Loop successor.
		next := make([]int, N)
		for k, v := range dests {
			base := k &^ mask
			sibIn := base + invDest[base+(v^1)]
			next[k] = sibIn ^ 1
		}
		stats.LocalRounds += 2

		// --- leader election by min-doubling ---
		leader := make([]int, N)
		ptr := make([]int, N)
		for k := range leader {
			leader[k] = k & mask
			ptr[k] = next[k]
		}
		rounds := 0
		newLeader := make([]int, N)
		newPtr := make([]int, N)
		for {
			changed := false
			for k := range ptr {
				l := leader[k]
				if other := leader[ptr[k]]; other < l {
					l = other
					changed = true
				}
				newLeader[k] = l
				newPtr[k] = ptr[ptr[k]]
			}
			leader, newLeader = newLeader, leader
			ptr, newPtr = newPtr, ptr
			rounds++
			// One quiet round means every node already knows its cycle
			// minimum (min-doubling converges in ceil(log L)+1 rounds).
			if !changed {
				break
			}
		}
		stats.JumpRounds += rounds
		stats.RoundsByLevel = append(stats.RoundsByLevel, rounds)

		// --- primary-cycle rule: up iff my leader < partner's leader ---
		up := make([]bool, N)
		for k := range up {
			up[k] = leader[k] < leader[k^1]
		}
		stats.LocalRounds++

		// --- emit switch states and scatter sub-destinations ---
		newDests := make([]int, N)
		for k, v := range dests {
			base := k &^ mask
			blockSwitchBase := base / 2
			if k&1 == 0 {
				// First-stage switch for pair (k, k+1): straight when
				// the upper input goes up.
				st[s0][blockSwitchBase+(k&mask)/2] = !up[k]
			}
			// Last-stage switch for destination pair (v, v XOR 1) is
			// written by the element routed up.
			if up[k] {
				st[lastStage][blockSwitchBase+v/2] = v%2 == 1
			}
			// Sub-destination: position within the half-size block.
			half := size / 2
			sub := v / 2
			if up[k] {
				newDests[base+(k&mask)/2] = sub
			} else {
				newDests[base+half+(k&mask)/2] = sub
			}
		}
		stats.LocalRounds++
		dests = newDests
	}

	// Base level: blocks of size 2 are single switches at the middle
	// stage n-1.
	mid := n - 1
	for k := 0; k < N; k += 2 {
		st[mid][k/2] = dests[k] == 1
	}
	stats.LocalRounds++
	return st, stats, nil
}
