package parsetup

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/perm"
)

// TestMatchesSequentialSetup: the parallel algorithm must emit
// bit-identical states to the sequential looping algorithm — exhaustive
// at N=4 and N=8, random beyond.
func TestMatchesSequentialSetup(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		b := core.New(n)
		perm.ForEach(1<<uint(n), func(p perm.Perm) bool {
			seq := b.Setup(p)
			par, _, err := Setup(b, p)
			if err != nil {
				t.Fatal(err)
			}
			for s := range seq {
				for i := range seq[s] {
					if seq[s][i] != par[s][i] {
						t.Fatalf("n=%d %v: states differ at stage %d switch %d", n, p.Clone(), s, i)
					}
				}
			}
			return true
		})
	}
	rng := rand.New(rand.NewSource(191))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(9)
		b := core.New(n)
		p := perm.Random(1<<uint(n), rng)
		seq := b.Setup(p)
		par, _, err := Setup(b, p)
		if err != nil {
			t.Fatal(err)
		}
		for s := range seq {
			for i := range seq[s] {
				if seq[s][i] != par[s][i] {
					t.Fatalf("n=%d: random permutation state mismatch at stage %d", n, s)
				}
			}
		}
	}
}

// TestRealizesEverything: parallel setup states must route every
// permutation.
func TestRealizesEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(192))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(10)
		b := core.New(n)
		p := perm.Random(1<<uint(n), rng)
		st, _, err := Setup(b, p)
		if err != nil {
			t.Fatal(err)
		}
		if !b.ExternalRoute(p, st).OK() {
			t.Fatalf("n=%d: parallel setup failed to realize %v", n, p)
		}
	}
}

// TestRoundsGrowth: total rounds must grow as O(log^2 N) — roughly
// quadratic in n, and certainly far below N.
func TestRoundsGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(193))
	prev := 0
	for n := 2; n <= 12; n++ {
		b := core.New(n)
		worst := 0
		for trial := 0; trial < 10; trial++ {
			_, stats, err := Setup(b, perm.Random(1<<uint(n), rng))
			if err != nil {
				t.Fatal(err)
			}
			if r := stats.TotalRounds(); r > worst {
				worst = r
			}
		}
		// Upper bound: levels * (max jump rounds + constants). Each
		// level runs at most m+2 jump rounds, so total <= sum (m+2)+4
		// which is < 2n^2 for the sizes tested.
		if worst > 2*n*n+8*n {
			t.Errorf("n=%d: %d rounds exceeds O(log^2 N) envelope", n, worst)
		}
		if worst < prev/4 {
			t.Errorf("n=%d: rounds %d suspiciously collapsed from %d", n, worst, prev)
		}
		prev = worst
	}
}

// TestStatsShape: levels and per-level rounds are recorded coherently.
func TestStatsShape(t *testing.T) {
	b := core.New(6)
	rng := rand.New(rand.NewSource(194))
	_, stats, err := Setup(b, perm.Random(64, rng))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Levels != 5 {
		t.Errorf("levels = %d, want 5", stats.Levels)
	}
	if len(stats.RoundsByLevel) != 5 {
		t.Errorf("per-level rounds has %d entries", len(stats.RoundsByLevel))
	}
	sum := 0
	for _, r := range stats.RoundsByLevel {
		if r < 1 {
			t.Errorf("level with %d rounds", r)
		}
		sum += r
	}
	if sum != stats.JumpRounds {
		t.Errorf("jump rounds %d != sum of levels %d", stats.JumpRounds, sum)
	}
	if stats.TotalRounds() != stats.JumpRounds+stats.LocalRounds {
		t.Error("TotalRounds inconsistent")
	}
}

// TestIdentityIsFast: the identity's loops are all 2-cycles, so leader
// election converges in a couple of rounds per level.
func TestIdentityIsFast(t *testing.T) {
	b := core.New(10)
	_, stats, err := Setup(b, perm.Identity(1024))
	if err != nil {
		t.Fatal(err)
	}
	for lvl, r := range stats.RoundsByLevel {
		if r > 3 {
			t.Errorf("identity level %d used %d jump rounds", lvl, r)
		}
	}
}

// TestWorstCaseSingleLoop: a cyclic shift by 1 creates long loops;
// rounds per level must stay logarithmic in the block size.
func TestWorstCaseSingleLoop(t *testing.T) {
	n := 10
	b := core.New(n)
	_, stats, err := Setup(b, perm.CyclicShift(n, 1))
	if err != nil {
		t.Fatal(err)
	}
	for lvl, r := range stats.RoundsByLevel {
		m := n - lvl
		if r > m+2 {
			t.Errorf("level %d (block 2^%d): %d rounds exceeds log-bound %d", lvl, m, r, m+2)
		}
	}
}

func TestValidation(t *testing.T) {
	b := core.New(3)
	for _, bad := range []perm.Perm{
		{0, 0, 1, 1, 2, 2, 3, 3}, // not a permutation
		perm.Identity(4),         // wrong length
		{-1, 1, 2, 3, 4, 5, 6, 7},
	} {
		st, _, err := Setup(b, bad)
		if err == nil {
			t.Errorf("Setup(%v) accepted invalid input", bad)
		}
		if st != nil {
			t.Errorf("Setup(%v) returned states alongside an error", bad)
		}
	}
}
