// Package fabric is a packet-switched serving layer over the batched
// routing engine of internal/engine. The paper's network moves one full
// permutation per pass, but production traffic arrives as independent
// packets; following Huang & Walrand's observation that Benes networks
// run well in packet mode, the fabric bridges the two models:
//
//   - arriving packets land in bounded per-input virtual output queues
//     (VOQs), one FIFO per (input, output) pair, so a hot output cannot
//     head-of-line block unrelated traffic;
//   - a frame scheduler repeatedly extracts a conflict-free partial
//     matching (at most one packet per input and per output, rotating
//     iSLIP-style pointers for fairness) and completes it to a full
//     permutation over the idle ports, which is exactly what the
//     self-routing/plan-cache path of internal/engine serves;
//   - each frame is dispatched to one of K switching planes — sharded
//     engine instances with independent worker pools and plan caches —
//     so K frames traverse the fabric concurrently;
//   - full queues exert backpressure with a configurable policy (tail
//     drop or blocking), and a plane that fails — marked down by an
//     operator or misrouting because of injected stuck-switch faults —
//     is taken out of rotation while its frames fail over to the
//     surviving planes.
//
// Accepted packets are delivered exactly once: a frame is only
// delivered after the serving plane verifies every packet at its output
// port, and a failed frame is re-dispatched in full to another plane.
package fabric

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/perm"
)

// Errors returned by Send.
var (
	// ErrBackpressure reports a tail drop: the packet's VOQ is full and
	// the fabric runs the DropNew policy.
	ErrBackpressure = errors.New("fabric: VOQ full")
	// ErrClosed reports a send to a closed fabric.
	ErrClosed = errors.New("fabric: closed")
)

// Packet is one unit of traffic: deliver Payload from input port Src to
// output port Dst. Trace, when non-nil, accumulates per-stage spans
// (VOQ wait, plane transit) as the packet moves through the fabric;
// the fabric never releases the trace's reference — whoever attached
// it (e.g. benesd's request middleware) owns its lifecycle.
type Packet[T any] struct {
	Src     int
	Dst     int
	Payload T
	Trace   *obs.Trace
}

// frame is one scheduled unit of switching work: a full permutation
// dest carrying len(pkts) real packets (pkts[k] travels srcs[k] →
// dsts[k]); the remaining ports carry filler assignments from Complete.
type frame[T any] struct {
	dest       perm.Perm
	pkts       []Packet[T]
	srcs, dsts []int
}

// Config parameterizes New. The zero value of every field except LogN
// selects a sensible default.
type Config struct {
	// LogN is n = log2(N), the size of each plane's Benes network B(n).
	LogN int
	// Planes is K, the number of parallel switching planes. Defaults
	// to 1.
	Planes int
	// VOQDepth bounds each (input, output) queue. Defaults to
	// DefaultVOQDepth.
	VOQDepth int
	// FrameQueue is the buffered depth of the scheduler → dispatcher
	// channel. Defaults to 2*Planes.
	FrameQueue int
	// Policy selects what Send does when a VOQ is full.
	Policy DropPolicy
	// PlaneWorkers is the engine worker count per plane. Defaults to 1,
	// so K planes give K-way frame parallelism.
	PlaneWorkers int
	// PlaneCache is the plan-cache capacity per plane. Defaults to the
	// engine's DefaultCacheCapacity.
	PlaneCache int
	// Record attaches a gate-level flight recorder to every plane:
	// per-switch traversal, flip, and fault-hit counters, served by
	// PlaneRecorder and exported per stage by Register. Frames count
	// traversals for their real packets only (filler assignments pin
	// switches but move nothing), and a damaged plane's per-frame
	// fault-check simulation contributes fault hits without double
	// counting traversals.
	Record bool
}

// DefaultVOQDepth bounds each virtual output queue unless Config says
// otherwise.
const DefaultVOQDepth = 64

func (c Config) withDefaults() Config {
	if c.Planes <= 0 {
		c.Planes = 1
	}
	if c.VOQDepth <= 0 {
		c.VOQDepth = DefaultVOQDepth
	}
	if c.FrameQueue <= 0 {
		c.FrameQueue = 2 * c.Planes
	}
	if c.PlaneWorkers <= 0 {
		c.PlaneWorkers = 1
	}
	return c
}

// Fabric is a multi-plane packet switch. All methods are safe for
// concurrent use.
type Fabric[T any] struct {
	cfg     Config
	n       int
	voq     *voqSet[T]
	planes  []*plane
	frames  chan *frame[T]
	met     metrics
	deliver func(Packet[T])

	closing   chan struct{}
	closed    atomic.Bool
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// New builds and starts a fabric of cfg.Planes planes over B(cfg.LogN).
// deliver, if non-nil, is invoked once per packet after the packet is
// verified at its output port; it may be called concurrently from
// several dispatcher goroutines and must be safe for that.
func New[T any](cfg Config, deliver func(Packet[T])) (*Fabric[T], error) {
	if cfg.LogN < 1 {
		return nil, fmt.Errorf("fabric: Config.LogN must be >= 1, got %d", cfg.LogN)
	}
	cfg = cfg.withDefaults()
	f := &Fabric[T]{
		cfg:     cfg,
		n:       1 << cfg.LogN,
		voq:     newVOQSet[T](1<<cfg.LogN, cfg.VOQDepth),
		planes:  make([]*plane, cfg.Planes),
		frames:  make(chan *frame[T], cfg.FrameQueue),
		deliver: deliver,
		closing: make(chan struct{}),
	}
	f.voq.met = &f.met
	// One geometry network shared by every plane's recorder; the planes'
	// engines still wire their own.
	var geo *core.Network
	if cfg.Record {
		geo = core.New(cfg.LogN)
	}
	for i := range f.planes {
		var rec *netsim.Recorder
		if cfg.Record {
			rec = netsim.NewRecorder(geo, cfg.PlaneWorkers+1)
		}
		p, err := newPlane(i, engine.Config{
			LogN:          cfg.LogN,
			Workers:       cfg.PlaneWorkers,
			CacheCapacity: cfg.PlaneCache,
			Recorder:      rec,
		}, &f.met)
		if err != nil {
			for _, q := range f.planes[:i] {
				q.close()
			}
			return nil, err
		}
		f.planes[i] = p
	}
	f.wg.Add(1)
	go f.scheduler()
	for i := range f.planes {
		f.wg.Add(1)
		go f.dispatcher(i)
	}
	return f, nil
}

// N returns the number of ports per plane.
func (f *Fabric[T]) N() int { return f.n }

// Planes returns K.
func (f *Fabric[T]) Planes() int { return len(f.planes) }

// PlaneRecorder returns plane id's gate-level flight recorder, nil when
// Config.Record was off or id is out of range.
func (f *Fabric[T]) PlaneRecorder(id int) *netsim.Recorder {
	if id < 0 || id >= len(f.planes) {
		return nil
	}
	return f.planes[id].eng.Recorder()
}

// Health is the fabric's readiness view: how much of the redundant
// capacity is actually in rotation and how full the ingress queues run.
// Readiness probes compare these against their thresholds.
type Health struct {
	PlanesTotal   int   `json:"planes_total"`
	PlanesHealthy int   `json:"planes_healthy"`
	VOQOccupied   int64 `json:"voq_occupied"`
	VOQCapacity   int64 `json:"voq_capacity"`
}

// Health reads the fabric's live readiness signals. It is cheap — one
// atomic read per plane plus the VOQ occupancy sum — and safe to call
// from a probe handler on every scrape.
func (f *Fabric[T]) Health() Health {
	h := Health{
		PlanesTotal: len(f.planes),
		VOQOccupied: f.voq.occupancy(),
		VOQCapacity: int64(f.n) * int64(f.n) * int64(f.cfg.VOQDepth),
	}
	for _, p := range f.planes {
		if p.healthy.Load() {
			h.PlanesHealthy++
		}
	}
	return h
}

// Send offers one packet to the fabric. It returns nil when the packet
// is accepted — from then on the fabric delivers it exactly once — or
// ErrBackpressure / ErrClosed when it is not. With Policy == Block a
// full queue makes Send wait instead of dropping.
func (f *Fabric[T]) Send(p Packet[T]) error {
	if p.Src < 0 || p.Src >= f.n || p.Dst < 0 || p.Dst >= f.n {
		return fmt.Errorf("fabric: packet (%d -> %d) out of range [0,%d)", p.Src, p.Dst, f.n)
	}
	if f.closed.Load() {
		f.met.rejected.Add(1)
		return ErrClosed
	}
	if err := f.voq.enqueue(p, f.cfg.Policy); err != nil {
		f.met.rejected.Add(1)
		return err
	}
	f.met.accepted.Add(1)
	return nil
}

// InjectFaults freezes switches of plane id in their stuck states,
// simulated through the gate-level concurrent fabric of
// internal/netsim. The plane stays in rotation until a frame actually
// misroutes — a stuck switch only damages permutations that need it in
// the other state — at which point it is marked unhealthy and drained:
// it holds no queued frames (dispatch is pull-based), and every
// subsequent frame fails over to the surviving planes. Injecting an
// empty fault set repairs and restores the plane.
func (f *Fabric[T]) InjectFaults(id int, faults []core.Fault) error {
	if id < 0 || id >= len(f.planes) {
		return fmt.Errorf("fabric: no plane %d", id)
	}
	f.planes[id].inject(faults)
	return nil
}

// FailPlane administratively marks plane id unhealthy; frames fail over
// to the surviving planes until RestorePlane.
func (f *Fabric[T]) FailPlane(id int) error {
	if id < 0 || id >= len(f.planes) {
		return fmt.Errorf("fabric: no plane %d", id)
	}
	f.planes[id].healthy.Store(false)
	return nil
}

// RestorePlane clears plane id's faults and returns it to rotation.
func (f *Fabric[T]) RestorePlane(id int) error {
	if id < 0 || id >= len(f.planes) {
		return fmt.Errorf("fabric: no plane %d", id)
	}
	f.planes[id].inject(nil)
	return nil
}

// Close stops accepting packets, schedules everything still queued,
// waits for the dispatchers to drain, and shuts the planes down. Close
// is idempotent. Packets accepted before Close are still delivered,
// unless no healthy plane remains, in which case they are counted as
// lost in the snapshot.
func (f *Fabric[T]) Close() {
	f.closeOnce.Do(func() {
		f.closed.Store(true)
		f.voq.close()
		close(f.closing)
		f.wg.Wait()
		for _, p := range f.planes {
			p.close()
		}
	})
}

// scheduler is the fabric's single matchmaking loop: each iteration
// ("tick") extracts one frame from the VOQs and hands it to the
// dispatchers, blocking — and thereby letting the VOQs fill and exert
// backpressure — when all planes are busy. On close it drains the VOQs
// before exiting.
func (f *Fabric[T]) scheduler() {
	defer f.wg.Done()
	defer close(f.frames)
	for {
		fr := f.voq.buildFrame()
		if fr == nil {
			select {
			case <-f.voq.notify:
				continue
			case <-f.closing:
				for {
					fr := f.voq.buildFrame()
					if fr == nil {
						return
					}
					f.met.frames.Add(1)
					f.frames <- fr
				}
			}
		}
		f.met.frames.Add(1)
		f.frames <- fr
	}
}

// dispatcher pulls frames and serves them, preferring its home plane so
// K dispatchers keep K planes busy; when the home plane is down or
// misroutes, the frame fails over to the next healthy plane.
func (f *Fabric[T]) dispatcher(home int) {
	defer f.wg.Done()
	for fr := range f.frames {
		f.dispatch(home, fr)
	}
}

func (f *Fabric[T]) dispatch(home int, fr *frame[T]) {
	failed := false
	for attempt := 0; attempt < len(f.planes); attempt++ {
		p := f.planes[(home+attempt)%len(f.planes)]
		start := time.Now()
		if err := p.route(fr.dest, fr.srcs, fr.dsts); err != nil {
			failed = true
			continue
		}
		if failed {
			f.met.failovers.Add(1)
		}
		f.met.delivered.Add(int64(len(fr.pkts)))
		transit := time.Since(start)
		note := "plane " + strconv.Itoa(p.id)
		for _, pkt := range fr.pkts {
			pkt.Trace.SpanDur("plane_transit", start, transit, note)
		}
		if f.deliver != nil {
			for _, pkt := range fr.pkts {
				f.deliver(pkt)
			}
		}
		return
	}
	// Every plane refused the frame: the packets are accepted but
	// undeliverable. Account for them so the books still balance.
	f.met.lost.Add(int64(len(fr.pkts)))
	for _, pkt := range fr.pkts {
		pkt.Trace.SpanDur("lost", time.Now(), 0, "no healthy plane")
	}
}
