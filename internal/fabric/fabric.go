// Package fabric is a packet-switched serving layer over the routing
// engine of internal/engine. The paper's network moves one full
// permutation per pass, but production traffic arrives as independent
// packets; following Huang & Walrand's observation that Benes networks
// run well in packet mode, the fabric bridges the two models:
//
//   - arriving packets land in bounded lock-free virtual output queues
//     (VOQs), one ring per (input, output) pair, so a hot output cannot
//     head-of-line block unrelated traffic and senders never contend on
//     a lock;
//   - every (src, dst) flow is pinned to one switching plane by a
//     rendezvous hash over the healthy planes, so the ingress is sharded
//     per plane with no cross-plane contention and a flow's packets stay
//     in order on one plane;
//   - each plane owns a scheduler goroutine that repeatedly extracts a
//     conflict-free partial matching from its shard (at most one packet
//     per input and per output, rotating iSLIP-style pointers for
//     fairness), completes it to a full permutation, and hands the whole
//     frame to its router in one channel exchange;
//   - each plane's router serves frames synchronously through the
//     engine's FrameServer — no worker handoff, no plan-cache churn, no
//     steady-state allocations — and fails frames over to the next
//     healthy plane when its own plane is down or misroutes;
//   - full queues exert backpressure with a configurable policy (tail
//     drop or blocking), and delivery callbacks are coalesced per frame
//     (see NewBatched) instead of paid per packet.
//
// Accepted packets are delivered exactly once: a frame is only
// delivered after the serving plane verifies every packet at its output
// port, and a failed frame is re-dispatched in full to another plane.
package fabric

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/journal"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/perm"
)

// Errors returned by Send.
var (
	// ErrBackpressure reports a tail drop: the packet's VOQ is full and
	// the fabric runs the DropNew policy.
	ErrBackpressure = errors.New("fabric: VOQ full")
	// ErrClosed reports a send to a closed fabric.
	ErrClosed = errors.New("fabric: closed")
)

// Packet is one unit of traffic: deliver Payload from input port Src to
// output port Dst. Trace, when non-nil, accumulates per-stage spans
// (VOQ wait, plane transit) as the packet moves through the fabric;
// the fabric never releases the trace's reference — whoever attached
// it (e.g. benesd's request middleware) owns its lifecycle.
type Packet[T any] struct {
	Src     int
	Dst     int
	Payload T
	Trace   *obs.Trace
}

// frame is one scheduled unit of switching work: a full permutation
// dest carrying len(pkts) real packets (pkts[k] travels srcs[k] →
// dsts[k]); the remaining ports carry filler assignments. Frames are
// pooled per plane and reused, so the slices alias caller-invisible
// memory that is recycled after delivery.
//
// A frame that claimed at least one multicast head-of-line packet has
// mcast set; its port assignment is then the output-major mapping
// outSrc (an input may feed several outputs, so no permutation can
// express it) and pkts holds one entry per copy. mpkts counts the
// logical multicast packets folded in and mcopies their total copies.
type frame[T any] struct {
	dest       perm.Perm
	pkts       []Packet[T]
	srcs, dsts []int

	outSrc []int
	mcast  bool
	mpkts  int
	mcopies int
}

func newFrame[T any](n int) *frame[T] {
	return &frame[T]{
		dest:   make(perm.Perm, n),
		pkts:   make([]Packet[T], 0, n),
		srcs:   make([]int, 0, n),
		dsts:   make([]int, 0, n),
		outSrc: make([]int, n),
	}
}

func (fr *frame[T]) reset() {
	var zero Packet[T]
	for i := range fr.pkts {
		fr.pkts[i] = zero // release payload and trace references
	}
	fr.pkts = fr.pkts[:0]
	fr.srcs = fr.srcs[:0]
	fr.dsts = fr.dsts[:0]
	fr.mcast = false
	fr.mpkts = 0
	fr.mcopies = 0
}

// Affinity selects how Send assigns a packet's flow to a plane shard.
type Affinity int

const (
	// FlowHash (the default) pins each (src, dst) flow to one healthy
	// plane by rendezvous hashing: minimal reshuffling when a plane
	// leaves or rejoins the rotation, per-flow FIFO order within a
	// stable healthy set, and zero cross-plane contention per flow.
	FlowHash Affinity = iota
	// Spray round-robins packets across planes regardless of flow — the
	// pre-sharding behaviour, kept for comparison benchmarks. Spray
	// preserves no per-flow ordering.
	Spray
)

func (a Affinity) String() string {
	switch a {
	case FlowHash:
		return "flow-hash"
	case Spray:
		return "spray"
	}
	return "unknown"
}

// Config parameterizes New. The zero value of every field except LogN
// selects a sensible default.
type Config struct {
	// LogN is n = log2(N), the size of each plane's Benes network B(n).
	LogN int
	// Planes is K, the number of parallel switching planes. Defaults
	// to 1.
	Planes int
	// VOQDepth bounds each (input, output) queue, rounded up to a power
	// of two. Defaults to DefaultVOQDepth.
	VOQDepth int
	// FrameQueue is the buffered depth of each plane's scheduler →
	// router channel. Defaults to 2.
	FrameQueue int
	// Policy selects what Send does when a VOQ is full.
	Policy DropPolicy
	// Affinity selects flow-hash plane pinning (default) or spray.
	Affinity Affinity
	// PlaneWorkers is the engine worker count per plane, serving the
	// collective-round path; frames bypass the workers entirely.
	// Defaults to 1.
	PlaneWorkers int
	// PlaneCache is the plan-cache capacity per plane. Defaults to the
	// engine's DefaultCacheCapacity.
	PlaneCache int
	// ParallelSetup routes each plane engine's non-F(n) cache misses
	// (collective rounds and RouteRound permutations outside F(n))
	// through the multicore cold setup of internal/psetup, with
	// half-network sub-plans memoized in the plane's LRU. Frames are
	// unaffected — the FrameServer path keeps its scratch-reusing
	// serial setup, which per-frame beats any fan-out at frame sizes.
	ParallelSetup bool
	// Record attaches a gate-level flight recorder to every plane:
	// per-switch traversal, flip, and fault-hit counters, served by
	// PlaneRecorder and exported per stage by Register. Frames count
	// traversals for their real packets only (filler assignments pin
	// switches but move nothing), and a damaged plane's per-frame
	// fault-check simulation contributes fault hits without double
	// counting traversals.
	Record bool
	// Journal, when enabled, receives one hash-chained record per
	// verified frame (unicast and multicast), collective round, fault
	// injection, and plane fail/restore, making the fabric's traffic
	// window replayable by internal/journal. Nil disables journaling at
	// the cost of one pointer test per event.
	Journal *journal.Writer
}

// DefaultVOQDepth bounds each virtual output queue unless Config says
// otherwise.
const DefaultVOQDepth = 64

func (c Config) withDefaults() Config {
	if c.Planes <= 0 {
		c.Planes = 1
	}
	if c.VOQDepth <= 0 {
		c.VOQDepth = DefaultVOQDepth
	}
	if c.FrameQueue <= 0 {
		c.FrameQueue = 2
	}
	if c.PlaneWorkers <= 0 {
		c.PlaneWorkers = 1
	}
	return c
}

// Fabric is a multi-plane packet switch. All methods are safe for
// concurrent use.
type Fabric[T any] struct {
	cfg       Config
	n         int
	shards    []*voqShard[T] // one ingress shard per plane
	planes    []*plane
	planeSeed []uint64 // rendezvous-hash seed per plane
	spray     atomic.Uint64
	frames    []chan *frame[T] // per-plane scheduler → router handoff
	freelist  []chan *frame[T] // per-plane frame recycling
	met       metrics
	jrn       *journal.Writer

	deliver      func(Packet[T])
	deliverBatch func(plane int, pkts []Packet[T])

	closing   chan struct{}
	closed    atomic.Bool
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// New builds and starts a fabric of cfg.Planes planes over B(cfg.LogN).
// deliver, if non-nil, is invoked once per packet after the packet is
// verified at its output port; it may be called concurrently from
// several router goroutines and must be safe for that.
func New[T any](cfg Config, deliver func(Packet[T])) (*Fabric[T], error) {
	return newFabric(cfg, deliver, nil)
}

// NewBatched is New with a coalesced delivery callback: after a frame
// is verified, deliverBatch is invoked once with the serving plane and
// every packet the frame carried, instead of once per packet. pkts is
// only valid for the duration of the call — the fabric recycles the
// backing array — so callers that retain packets must copy them out.
// deliverBatch may be called concurrently from several router
// goroutines and must be safe for that.
func NewBatched[T any](cfg Config, deliverBatch func(plane int, pkts []Packet[T])) (*Fabric[T], error) {
	return newFabric(cfg, nil, deliverBatch)
}

func newFabric[T any](cfg Config, deliver func(Packet[T]), deliverBatch func(int, []Packet[T])) (*Fabric[T], error) {
	if cfg.LogN < 1 {
		return nil, fmt.Errorf("fabric: Config.LogN must be >= 1, got %d", cfg.LogN)
	}
	cfg = cfg.withDefaults()
	n := 1 << cfg.LogN
	f := &Fabric[T]{
		cfg:          cfg,
		n:            n,
		shards:       make([]*voqShard[T], cfg.Planes),
		planes:       make([]*plane, cfg.Planes),
		planeSeed:    make([]uint64, cfg.Planes),
		frames:       make([]chan *frame[T], cfg.Planes),
		freelist:     make([]chan *frame[T], cfg.Planes),
		deliver:      deliver,
		deliverBatch: deliverBatch,
		jrn:          cfg.Journal,
		closing:      make(chan struct{}),
	}
	// One geometry network shared by every plane's recorder; the planes'
	// engines still wire their own.
	var geo *core.Network
	if cfg.Record {
		geo = core.New(cfg.LogN)
	}
	for i := range f.planes {
		var rec *netsim.Recorder
		if cfg.Record {
			// Workers plus the frame routers that may fail over here.
			rec = netsim.NewRecorder(geo, cfg.PlaneWorkers+cfg.Planes)
		}
		p, err := newPlane(i, engine.Config{
			LogN:          cfg.LogN,
			Workers:       cfg.PlaneWorkers,
			CacheCapacity: cfg.PlaneCache,
			ParallelSetup: cfg.ParallelSetup,
			SetupMemo:     cfg.ParallelSetup,
			Recorder:      rec,
		}, &f.met)
		if err != nil {
			for _, q := range f.planes[:i] {
				q.close()
			}
			return nil, err
		}
		f.planes[i] = p
		f.shards[i] = newVOQShard[T](n, cfg.VOQDepth, &f.met)
		f.planeSeed[i] = mix64(uint64(i) + 0x9e3779b97f4a7c15)
		f.frames[i] = make(chan *frame[T], cfg.FrameQueue)
		f.freelist[i] = make(chan *frame[T], cfg.FrameQueue+2)
	}
	for i := range f.planes {
		f.wg.Add(2)
		go f.scheduler(i)
		go f.router(i)
	}
	return f, nil
}

// N returns the number of ports per plane.
func (f *Fabric[T]) N() int { return f.n }

// Planes returns K.
func (f *Fabric[T]) Planes() int { return len(f.planes) }

// PlaneRecorder returns plane id's gate-level flight recorder, nil when
// Config.Record was off or id is out of range.
func (f *Fabric[T]) PlaneRecorder(id int) *netsim.Recorder {
	if id < 0 || id >= len(f.planes) {
		return nil
	}
	return f.planes[id].eng.Recorder()
}

// PlaneLadderRecorder returns plane id's copy-ladder flight recorder
// (log N stages of fan-out switch counters), nil when Config.Record
// was off or id is out of range.
func (f *Fabric[T]) PlaneLadderRecorder(id int) *netsim.Recorder {
	if id < 0 || id >= len(f.planes) {
		return nil
	}
	return f.planes[id].eng.LadderRecorder()
}

// mix64 is the SplitMix64 finalizer: a cheap, well-distributed 64-bit
// mixer for the flow hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// planeFor picks the (src, dst) flow's home plane by rendezvous
// hashing over the currently healthy planes: the healthy plane whose
// seeded hash of the flow key is highest wins, so a plane leaving the
// rotation moves only the flows it was serving and a rejoining plane
// reclaims exactly its old flows. With every plane down the hash runs
// over all planes instead, keeping the choice deterministic (the frames
// will be counted lost at dispatch, preserving the books).
func (f *Fabric[T]) planeFor(src, dst int) int {
	key := mix64(uint64(src)<<32 | uint64(dst))
	best, bestW := -1, uint64(0)
	for i, p := range f.planes {
		if !p.healthy.Load() {
			continue
		}
		if w := mix64(key ^ f.planeSeed[i]); best == -1 || w > bestW {
			best, bestW = i, w
		}
	}
	if best >= 0 {
		return best
	}
	for i := range f.planes {
		if w := mix64(key ^ f.planeSeed[i]); best == -1 || w > bestW {
			best, bestW = i, w
		}
	}
	return best
}

// PlaneFor reports which plane the (src, dst) flow is currently pinned
// to under flow-hash affinity: the plane a Send of that flow would
// enqueue toward given the present healthy set. Exported so tests and
// operators can predict and verify flow placement.
func (f *Fabric[T]) PlaneFor(src, dst int) (int, error) {
	if src < 0 || src >= f.n || dst < 0 || dst >= f.n {
		return 0, fmt.Errorf("fabric: flow (%d -> %d) out of range [0,%d)", src, dst, f.n)
	}
	return f.planeFor(src, dst), nil
}

// shardFor routes a packet to its ingress shard per the configured
// affinity.
func (f *Fabric[T]) shardFor(src, dst int) int {
	if f.cfg.Affinity == Spray {
		return int(f.spray.Add(1) % uint64(len(f.shards)))
	}
	return f.planeFor(src, dst)
}

// Health is the fabric's readiness view: how much of the redundant
// capacity is actually in rotation and how full the ingress queues run.
// Readiness probes compare these against their thresholds.
type Health struct {
	PlanesTotal   int   `json:"planes_total"`
	PlanesHealthy int   `json:"planes_healthy"`
	VOQOccupied   int64 `json:"voq_occupied"`
	VOQCapacity   int64 `json:"voq_capacity"`
}

// Health reads the fabric's live readiness signals. It is cheap — one
// atomic read per plane plus the VOQ occupancy sums — and safe to call
// from a probe handler on every scrape. VOQCapacity is the logical
// bound N²·depth: under flow-hash affinity each (src, dst) flow owns
// exactly one ring across all shards.
func (f *Fabric[T]) Health() Health {
	h := Health{
		PlanesTotal: len(f.planes),
		VOQCapacity: int64(f.n) * int64(f.n) * int64(ringDepth(f.cfg.VOQDepth)),
	}
	for i, p := range f.planes {
		if p.healthy.Load() {
			h.PlanesHealthy++
		}
		h.VOQOccupied += f.shards[i].occupancy()
	}
	return h
}

// Send offers one packet to the fabric. It returns nil when the packet
// is accepted — from then on the fabric delivers it exactly once — or
// ErrBackpressure / ErrClosed when it is not. With Policy == Block a
// full queue makes Send wait instead of dropping.
func (f *Fabric[T]) Send(p Packet[T]) error {
	if p.Src < 0 || p.Src >= f.n || p.Dst < 0 || p.Dst >= f.n {
		return fmt.Errorf("fabric: packet (%d -> %d) out of range [0,%d)", p.Src, p.Dst, f.n)
	}
	if f.closed.Load() {
		f.met.rejected.Add(1)
		return ErrClosed
	}
	sh := f.shards[f.shardFor(p.Src, p.Dst)]
	if err := sh.enqueue(p, f.cfg.Policy); err != nil {
		f.met.rejected.Add(1)
		return err
	}
	f.met.accepted.Add(1)
	return nil
}

// InjectFaults freezes switches of plane id in their stuck states,
// simulated through the gate-level concurrent fabric of
// internal/netsim, and takes the plane out of rotation immediately:
// it holds no queued frames beyond its channel window, its shard's
// frames fail over at dispatch, and new flows rehash to the surviving
// planes. (Frames racing the injection are caught by the per-frame
// fault-check pass.) The damaged plane still answers ProbePlane — that
// is how a diagnosis session localizes the stuck switch while traffic
// routes around it. Injecting an empty fault set repairs and restores
// the plane.
func (f *Fabric[T]) InjectFaults(id int, faults []core.Fault) error {
	if id < 0 || id >= len(f.planes) {
		return fmt.Errorf("fabric: no plane %d", id)
	}
	for _, flt := range faults {
		// Operator input: reject out-of-range coordinates here rather than
		// panic in the gate-level simulator rebuild.
		if err := f.planes[id].eng.Network().CheckFault(flt); err != nil {
			return err
		}
	}
	f.planes[id].inject(faults)
	f.jrn.Inject(id, faults)
	return nil
}

// ProbePlane runs one diagnosis probe through plane id and returns the
// realized permutation — the fabric's Oracle hook for package diagnose
// (wrap it in a diagnose.OracleFunc). The pass moves no payload and
// touches no VOQ: a damaged plane answers from its gate-level fault
// simulator, a healthy one from its engine's ProbeRoute, and both
// bypass the plan cache and the looping fallback so the observation
// reflects the self-setting switch logic alone. Probing works on
// planes that are out of rotation — that is the point: diagnosis
// localizes the stuck switch while production traffic routes around
// the plane.
func (f *Fabric[T]) ProbePlane(id int, d perm.Perm) (perm.Perm, error) {
	if id < 0 || id >= len(f.planes) {
		return nil, fmt.Errorf("fabric: no plane %d", id)
	}
	return f.planes[id].probe(d)
}

// FailPlane administratively marks plane id unhealthy; its flows rehash
// to the surviving planes and in-flight frames fail over until
// RestorePlane.
func (f *Fabric[T]) FailPlane(id int) error {
	if id < 0 || id >= len(f.planes) {
		return fmt.Errorf("fabric: no plane %d", id)
	}
	f.planes[id].healthy.Store(false)
	f.jrn.Fail(id)
	return nil
}

// RestorePlane clears plane id's faults and returns it to rotation.
func (f *Fabric[T]) RestorePlane(id int) error {
	if id < 0 || id >= len(f.planes) {
		return fmt.Errorf("fabric: no plane %d", id)
	}
	f.planes[id].inject(nil)
	f.jrn.Restore(id)
	return nil
}

// Close stops accepting packets, schedules everything still queued,
// waits for the routers to drain, and shuts the planes down. Close is
// idempotent. Packets accepted before Close are still delivered,
// unless no healthy plane remains, in which case they are counted as
// lost in the snapshot.
func (f *Fabric[T]) Close() {
	f.closeOnce.Do(func() {
		f.closed.Store(true)
		close(f.closing)
		f.wg.Wait()
		for _, p := range f.planes {
			p.close()
		}
	})
}

// takeFrame recycles a frame from plane i's freelist, allocating only
// when the pool is dry (startup, or a deliverBatch callback still
// holding the previous frame's slices longer than the window).
func (f *Fabric[T]) takeFrame(i int) *frame[T] {
	select {
	case fr := <-f.freelist[i]:
		return fr
	default:
		return newFrame[T](f.n)
	}
}

func (f *Fabric[T]) putFrame(i int, fr *frame[T]) {
	fr.reset()
	select {
	case f.freelist[i] <- fr:
	default:
	}
}

// scheduler is plane i's matchmaking loop: each iteration extracts one
// frame from the plane's ingress shard and hands the whole matching to
// the router in one channel exchange, blocking — and thereby letting
// the VOQs fill and exert backpressure — when the router is behind. On
// close it seals the shard and drains it before exiting.
func (f *Fabric[T]) scheduler(i int) {
	defer f.wg.Done()
	defer close(f.frames[i])
	sh := f.shards[i]
	for {
		select {
		case <-f.closing:
			f.drainShard(i)
			return
		default:
		}
		fr := f.takeFrame(i)
		if !sh.buildFrame(fr) {
			f.putFrame(i, fr)
			select {
			case <-sh.notify:
			case <-f.closing:
				f.drainShard(i)
				return
			}
			continue
		}
		f.met.frames.Add(1)
		if fr.mcast {
			f.met.mcastFrames.Add(1)
		}
		f.met.HandoffBatch.ObserveValue(int64(len(fr.pkts)))
		f.frames[i] <- fr
	}
}

// drainShard seals plane i's shard — after which every accepted packet
// is observable in its rings — and schedules the remainder.
func (f *Fabric[T]) drainShard(i int) {
	sh := f.shards[i]
	sh.seal()
	for {
		fr := f.takeFrame(i)
		if !sh.buildFrame(fr) {
			f.putFrame(i, fr)
			return
		}
		f.met.frames.Add(1)
		if fr.mcast {
			f.met.mcastFrames.Add(1)
		}
		f.met.HandoffBatch.ObserveValue(int64(len(fr.pkts)))
		f.frames[i] <- fr
	}
}

// router serves plane i's frames synchronously through per-plane
// FrameServers (its own, plus one per failover target), so the frame
// hot path never crosses a goroutine boundary after the scheduler
// handoff.
func (f *Fabric[T]) router(i int) {
	defer f.wg.Done()
	servers := make([]*engine.FrameServer[int], len(f.planes))
	mservers := make([]*engine.McastFrameServer[int], len(f.planes))
	for j, p := range f.planes {
		servers[j] = p.eng.NewFrameServer()
		mservers[j] = p.eng.NewMcastFrameServer()
	}
	for fr := range f.frames[i] {
		if fr.mcast {
			f.dispatchMcast(i, mservers, fr)
		} else {
			f.dispatch(i, servers, fr)
		}
		f.putFrame(i, fr)
	}
}

// dispatch serves one frame, preferring the home plane and failing over
// to the next healthy plane when it is down or misroutes. Delivery is
// coalesced: one deliverBatch call (or a tight deliver loop) per frame.
func (f *Fabric[T]) dispatch(home int, servers []*engine.FrameServer[int], fr *frame[T]) {
	failed := false
	for attempt := 0; attempt < len(f.planes); attempt++ {
		id := (home + attempt) % len(f.planes)
		p := f.planes[id]
		start := time.Now()
		if err := p.routeFrame(servers[id], fr.dest, fr.srcs); err != nil {
			failed = true
			continue
		}
		if failed {
			f.met.failovers.Add(1)
		}
		f.met.delivered.Add(int64(len(fr.pkts)))
		if f.jrn.Enabled() {
			f.jrn.Frame(p.id, fr.dest, fr.srcs, journal.DigestPairs(fr.srcs, fr.dsts))
		}
		transit := time.Since(start)
		note := "plane " + strconv.Itoa(p.id)
		for _, pkt := range fr.pkts {
			pkt.Trace.SpanDur("plane_transit", start, transit, note)
		}
		f.met.Coalesce.ObserveValue(int64(len(fr.pkts)))
		switch {
		case f.deliverBatch != nil:
			f.deliverBatch(p.id, fr.pkts)
		case f.deliver != nil:
			for _, pkt := range fr.pkts {
				f.deliver(pkt)
			}
		}
		return
	}
	// Every plane refused the frame: the packets are accepted but
	// undeliverable. Account for them so the books still balance.
	f.met.lost.Add(int64(len(fr.pkts)))
	for _, pkt := range fr.pkts {
		pkt.Trace.SpanDur("lost", time.Now(), 0, "no healthy plane")
	}
}
