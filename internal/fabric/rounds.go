package fabric

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/journal"
	"repro/internal/perm"
)

// This file is the fabric's round-scheduling hook for the collective
// operations layer (internal/collective). A collective is compiled
// into a sequence of whole-permutation rounds; unlike packets, rounds
// bypass the VOQ/frame scheduler entirely — the permutation is already
// decided — and go straight to a switching plane. The collective
// executor round-robins its rounds across planes (the `prefer` hint)
// so K rounds traverse the fabric concurrently, and prewarms round
// r+1's plan on its plane while round r is still in flight.

// RoundResult reports one collective round served by RouteRound.
type RoundResult struct {
	// Plane is the plane that served the round (after any failover).
	Plane int
	// Kind records the setup path: PlanSelfRouted rounds paid no
	// looping setup, PlanLooped rounds fell back to it.
	Kind engine.PlanKind
	// CacheHit is true when the plan was already resolved — by an
	// earlier round or a PrewarmRound overlap.
	CacheHit bool
}

// RouteRound serves one whole-permutation round synchronously on a
// healthy plane. prefer selects the plane to try first; an unhealthy
// or misrouting plane fails the round over to the next healthy one,
// exactly like frame dispatch. Every output port of the round is
// verified before RouteRound returns nil.
func (f *Fabric[T]) RouteRound(dest perm.Perm, prefer int) (RoundResult, error) {
	if f.closed.Load() {
		return RoundResult{}, ErrClosed
	}
	if len(dest) != f.n {
		return RoundResult{}, fmt.Errorf("fabric: round size %d does not match N=%d", len(dest), f.n)
	}
	k := len(f.planes)
	prefer = ((prefer % k) + k) % k
	failed := false
	for attempt := 0; attempt < k; attempt++ {
		p := f.planes[(prefer+attempt)%k]
		kind, hit, err := p.routeRound(dest)
		if err != nil {
			failed = true
			continue
		}
		if failed {
			f.met.roundFailovers.Add(1)
		}
		f.met.rounds.Add(1)
		if f.jrn.Enabled() {
			f.jrn.Round(p.id, dest, journal.DigestPerm(dest))
		}
		return RoundResult{Plane: p.id, Kind: kind, CacheHit: hit}, nil
	}
	return RoundResult{}, fmt.Errorf("fabric: no healthy plane for round: %w", errPlaneDown)
}

// RouteRounds serves a sequence of whole-permutation rounds with
// submissions pipelined through one plane's engine queue — the deep
// version of RouteRound's one-at-a-time handoff, and the execution
// half of Section IV's pipelining: while round r is traversing the
// plane, rounds r+1..r+w are already queued behind it with their plan
// setup underway. prefer selects the plane; if it fails mid-sequence,
// the unserved tail fails over to the next healthy plane, exactly like
// RouteRound. Results are in round order and every output port of
// every round is verified before RouteRounds returns nil.
func (f *Fabric[T]) RouteRounds(dests []perm.Perm, prefer int) ([]RoundResult, error) {
	if f.closed.Load() {
		return nil, ErrClosed
	}
	for _, d := range dests {
		if len(d) != f.n {
			return nil, fmt.Errorf("fabric: round size %d does not match N=%d", len(d), f.n)
		}
	}
	out := make([]RoundResult, len(dests))
	k := len(f.planes)
	prefer = ((prefer % k) + k) % k
	start, failed := 0, false
	for attempt := 0; attempt < k && start < len(dests); attempt++ {
		p := f.planes[(prefer+attempt)%k]
		n, err := p.routeRoundBatch(dests[start:], out[start:])
		if f.jrn.Enabled() {
			for i := start; i < start+n; i++ {
				f.jrn.Round(out[i].Plane, dests[i], journal.DigestPerm(dests[i]))
			}
		}
		start += n
		if err != nil {
			failed = true
		}
	}
	if start < len(dests) {
		return nil, fmt.Errorf("fabric: no healthy plane for round: %w", errPlaneDown)
	}
	if failed {
		f.met.roundFailovers.Add(1)
	}
	f.met.rounds.Add(int64(len(dests)))
	return out, nil
}

// PrewarmRound resolves and caches dest's routing plan on the plane a
// subsequent RouteRound with the same prefer would pick, so that round
// starts as a cache hit. This is the collective layer's double buffer:
// round r+1's setup runs here while round r's payload is still
// traversing the fabric. Best effort — if the preferred plane goes
// down in between, the round simply pays its own setup after failover.
func (f *Fabric[T]) PrewarmRound(dest perm.Perm, prefer int) {
	if f.closed.Load() || len(dest) != f.n {
		return
	}
	k := len(f.planes)
	prefer = ((prefer % k) + k) % k
	for attempt := 0; attempt < k; attempt++ {
		p := f.planes[(prefer+attempt)%k]
		if !p.healthy.Load() {
			continue
		}
		p.prewarm(dest)
		return
	}
}
