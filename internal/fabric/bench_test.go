package fabric

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// BenchmarkFabricThroughput measures end-to-end packets/sec through the
// full path — Send → VOQ → frame scheduler → plane engine → delivery —
// at N=256 with K=1 versus K=GOMAXPROCS planes, demonstrating
// multi-plane scaling. The Block policy keeps every offered packet in
// play so each iteration counts a delivered packet.
func BenchmarkFabricThroughput(b *testing.B) {
	multi := runtime.GOMAXPROCS(0)
	if multi < 2 {
		multi = 2 // still exercise the multi-plane path on one core
	}
	ks := []int{1, multi}
	for _, k := range ks {
		b.Run(fmt.Sprintf("planes=%d", k), func(b *testing.B) {
			done := make(chan struct{})
			var delivered atomic.Int64
			target := int64(b.N)
			f, err := New[int](Config{
				LogN:     8, // N = 256
				Planes:   k,
				VOQDepth: 16,
				Policy:   Block,
			}, func(Packet[int]) {
				if delivered.Add(1) == target {
					close(done)
				}
			})
			if err != nil {
				b.Fatal(err)
			}
			senders := runtime.GOMAXPROCS(0)
			b.ResetTimer()
			var wg sync.WaitGroup
			for s := 0; s < senders; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(s)))
					n := f.N()
					for i := s; i < b.N; i += senders {
						if err := f.Send(Packet[int]{Src: rng.Intn(n), Dst: rng.Intn(n)}); err != nil {
							b.Error(err)
							return
						}
					}
				}(s)
			}
			wg.Wait()
			<-done
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkts/sec")
			f.Close()
		})
	}
}

// BenchmarkFrameScheduler isolates the matchmaking hot path: enqueue
// and extract under full uniform load, no engine behind it.
func BenchmarkFrameScheduler(b *testing.B) {
	const logN = 8
	n := 1 << logN
	v := newVOQShard[int](n, 4, nil)
	fr := newFrame[int](n)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v.enqueue(Packet[int]{Src: rng.Intn(n), Dst: rng.Intn(n)}, DropNew) == nil {
		}
		if !v.buildFrame(fr) {
			b.Fatal("queues loaded but no frame extracted")
		}
	}
}
