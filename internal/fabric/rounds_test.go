package fabric

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/perm"
)

func newRoundFabric(t *testing.T, logN, planes int) *Fabric[int] {
	t.Helper()
	f, err := New[int](Config{LogN: logN, Planes: planes}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f
}

// TestRouteRound routes a named permutation round and checks the
// result plumbing: self-routed kind, miss then hit, counters.
func TestRouteRound(t *testing.T) {
	f := newRoundFabric(t, 4, 2)
	d := perm.BitReversal(4)

	res, err := f.RouteRound(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plane != 0 || res.Kind != engine.PlanSelfRouted || res.CacheHit {
		t.Fatalf("first round: %+v, want plane 0 self-routed miss", res)
	}
	res, err = f.RouteRound(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Fatalf("second identical round on the same plane must hit the cache: %+v", res)
	}
	s := f.Stats()
	if s.Rounds != 2 || s.RoundFailovers != 0 {
		t.Fatalf("stats rounds=%d failovers=%d, want 2/0", s.Rounds, s.RoundFailovers)
	}
	if s.Planes[0].Rounds != 2 || s.Planes[1].Rounds != 0 {
		t.Fatalf("plane round counters %d/%d, want 2/0", s.Planes[0].Rounds, s.Planes[1].Rounds)
	}
}

// TestRouteRoundPrefer checks the prefer hint spreads rounds across
// planes, including negative and out-of-range hints.
func TestRouteRoundPrefer(t *testing.T) {
	f := newRoundFabric(t, 3, 3)
	d := perm.PerfectShuffle(3)
	for prefer, want := range map[int]int{0: 0, 1: 1, 5: 2, -1: 2} {
		res, err := f.RouteRound(d, prefer)
		if err != nil {
			t.Fatal(err)
		}
		if res.Plane != want {
			t.Fatalf("prefer %d served by plane %d, want %d", prefer, res.Plane, want)
		}
	}
}

// TestPrewarmRound warms a plan on plane 1 and checks the next round
// there is a cache hit while plane 0 still misses.
func TestPrewarmRound(t *testing.T) {
	f := newRoundFabric(t, 4, 2)
	d := perm.MatrixTranspose(4)
	f.PrewarmRound(d, 1)

	res, err := f.RouteRound(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Fatal("round after PrewarmRound on the same plane must be a cache hit")
	}
	res, err = f.RouteRound(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Fatal("plane 0 was never warmed; its round must miss")
	}
	if pw := f.Stats().Planes[1].Engine.Prewarms; pw != 1 {
		t.Fatalf("plane 1 prewarms = %d, want 1", pw)
	}
}

// TestRouteRoundFailover fails plane 0 administratively and checks a
// prefer-0 round fails over to plane 1 and is counted.
func TestRouteRoundFailover(t *testing.T) {
	f := newRoundFabric(t, 3, 2)
	if err := f.FailPlane(0); err != nil {
		t.Fatal(err)
	}
	res, err := f.RouteRound(perm.BitReversal(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plane != 1 {
		t.Fatalf("round served by plane %d, want failover to 1", res.Plane)
	}
	if s := f.Stats(); s.RoundFailovers != 1 {
		t.Fatalf("round failovers = %d, want 1", s.RoundFailovers)
	}
}

// TestRouteRoundFaultyPlane injects a stuck switch that damages the
// requested permutation: the round must fail over and the plane must
// drop out of rotation.
func TestRouteRoundFaultyPlane(t *testing.T) {
	f := newRoundFabric(t, 3, 2)
	d := perm.BitReversal(3)
	// Find a fault that breaks bit reversal on plane 0: stuck-through
	// on a switch the self-route needs crossed, scanning until one
	// actually misroutes.
	damaged := false
	for stage := 0; stage < 5 && !damaged; stage++ {
		for sw := 0; sw < 4 && !damaged; sw++ {
			for _, crossed := range []bool{false, true} {
				if err := f.InjectFaults(0, []core.Fault{{Stage: stage, Switch: sw, StuckCrossed: crossed}}); err != nil {
					t.Fatal(err)
				}
				res, err := f.RouteRound(d, 0)
				if err != nil {
					t.Fatal(err)
				}
				if res.Plane == 1 {
					damaged = true
					break
				}
				if err := f.RestorePlane(0); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if !damaged {
		t.Fatal("no injected fault damaged bit reversal; fault check never fired")
	}
}

// TestRouteRoundErrors covers the reject paths: wrong size, no healthy
// plane, closed fabric.
func TestRouteRoundErrors(t *testing.T) {
	f := newRoundFabric(t, 3, 1)
	if _, err := f.RouteRound(perm.Identity(4), 0); err == nil {
		t.Fatal("size-4 round on an N=8 fabric must be rejected")
	}
	if err := f.FailPlane(0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.RouteRound(perm.Identity(8), 0); err == nil {
		t.Fatal("round with no healthy plane must fail")
	}
	if err := f.RestorePlane(0); err != nil {
		t.Fatal(err)
	}

	g := newRoundFabric(t, 3, 1)
	g.Close()
	if _, err := g.RouteRound(perm.Identity(8), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("round on closed fabric: %v, want ErrClosed", err)
	}
	g.PrewarmRound(perm.Identity(8), 0) // must not panic
}

// TestRouteRounds pipelines a run of rounds through one plane's queue
// and checks ordering, verification, cache hits on repeats, and the
// counters — the batch analogue of TestRouteRound.
func TestRouteRounds(t *testing.T) {
	f := newRoundFabric(t, 4, 2)
	n := 1 << 4
	dests := make([]perm.Perm, 0, n+2)
	for k := 0; k < n; k++ {
		dests = append(dests, perm.CyclicShift(4, k))
	}
	// Two repeats of the first shift: served from the plan cache.
	dests = append(dests, perm.CyclicShift(4, 0), perm.CyclicShift(4, 1))

	out, err := f.RouteRounds(dests, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(dests) {
		t.Fatalf("got %d results, want %d", len(out), len(dests))
	}
	for i, res := range out {
		if res.Plane != 1 {
			t.Fatalf("round %d served by plane %d, want 1", i, res.Plane)
		}
		if res.Kind != engine.PlanSelfRouted {
			t.Fatalf("round %d kind %v, want self-routed (cyclic shifts are inverse-omega)", i, res.Kind)
		}
	}
	if !out[n].CacheHit || !out[n+1].CacheHit {
		t.Fatalf("repeated shifts must hit the plan cache: %+v %+v", out[n], out[n+1])
	}
	s := f.Stats()
	if s.Rounds != int64(len(dests)) || s.RoundFailovers != 0 {
		t.Fatalf("stats rounds=%d failovers=%d, want %d/0", s.Rounds, s.RoundFailovers, len(dests))
	}
	if s.Planes[1].Rounds != int64(len(dests)) {
		t.Fatalf("plane 1 rounds = %d, want %d", s.Planes[1].Rounds, len(dests))
	}
}

// TestRouteRoundsFailover fails the preferred plane and checks the
// whole run lands on the survivor, in order.
func TestRouteRoundsFailover(t *testing.T) {
	f := newRoundFabric(t, 3, 2)
	if err := f.FailPlane(0); err != nil {
		t.Fatal(err)
	}
	dests := []perm.Perm{perm.BitReversal(3), perm.PerfectShuffle(3), perm.CyclicShift(3, 5)}
	out, err := f.RouteRounds(dests, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range out {
		if res.Plane != 1 {
			t.Fatalf("round %d served by plane %d, want failover to 1", i, res.Plane)
		}
	}
	if s := f.Stats(); s.RoundFailovers != 1 {
		t.Fatalf("round failovers = %d, want 1 (one batched handoff)", s.RoundFailovers)
	}
}

// TestRouteRoundsErrors covers the reject paths: wrong size anywhere in
// the run, no healthy plane, closed fabric, empty run.
func TestRouteRoundsErrors(t *testing.T) {
	f := newRoundFabric(t, 3, 1)
	if _, err := f.RouteRounds([]perm.Perm{perm.Identity(8), perm.Identity(4)}, 0); err == nil {
		t.Fatal("a size-4 round anywhere in the run must be rejected")
	}
	if out, err := f.RouteRounds(nil, 0); err != nil || len(out) != 0 {
		t.Fatalf("empty run: %v (%d results), want clean no-op", err, len(out))
	}
	if err := f.FailPlane(0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.RouteRounds([]perm.Perm{perm.Identity(8)}, 0); err == nil {
		t.Fatal("run with no healthy plane must fail")
	}

	g := newRoundFabric(t, 3, 1)
	g.Close()
	if _, err := g.RouteRounds([]perm.Perm{perm.Identity(8)}, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("run on closed fabric: %v, want ErrClosed", err)
	}
}
