package fabric

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

// tracker records deliveries by packet id and checks each packet lands
// on the destination it asked for.
type tracker struct {
	t         *testing.T
	delivered []atomic.Int64
	wantDst   []atomic.Int64 // Dst+1 recorded at send time (0 = unsent)
}

func newTracker(t *testing.T, capacity int) *tracker {
	return &tracker{
		t:         t,
		delivered: make([]atomic.Int64, capacity),
		wantDst:   make([]atomic.Int64, capacity),
	}
}

func (tr *tracker) deliver(p Packet[int]) {
	if want := tr.wantDst[p.Payload].Load(); want != int64(p.Dst)+1 {
		tr.t.Errorf("packet %d delivered to %d, want %d", p.Payload, p.Dst, want-1)
	}
	tr.delivered[p.Payload].Add(1)
}

// checkExactlyOnce asserts every accepted packet was delivered exactly
// once and every rejected packet not at all.
func (tr *tracker) checkExactlyOnce(accepted []bool) {
	for id, acc := range accepted {
		got := tr.delivered[id].Load()
		want := int64(0)
		if acc {
			want = 1
		}
		if got != want {
			tr.t.Fatalf("packet %d: delivered %d times, want %d (accepted=%v)", id, got, want, acc)
		}
	}
}

// TestFabricDeliveryExactlyOnce is the headline correctness test: at
// N=256 with K=4 planes, concurrent senders offer random traffic under
// the tail-drop policy; every accepted packet must be delivered to its
// destination exactly once and every tail-dropped packet must be
// counted as rejected.
func TestFabricDeliveryExactlyOnce(t *testing.T) {
	const (
		logN    = 8 // N = 256
		senders = 8
		perSend = 3000
		total   = senders * perSend
	)
	tr := newTracker(t, total)
	f, err := New[int](Config{LogN: logN, Planes: 4, VOQDepth: 16}, tr.deliver)
	if err != nil {
		t.Fatal(err)
	}

	accepted := make([]bool, total)
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(s)))
			n := f.N()
			for k := 0; k < perSend; k++ {
				id := s*perSend + k
				p := Packet[int]{Src: rng.Intn(n), Dst: rng.Intn(n), Payload: id}
				tr.wantDst[id].Store(int64(p.Dst) + 1)
				switch err := f.Send(p); {
				case err == nil:
					accepted[id] = true
				case errors.Is(err, ErrBackpressure):
				default:
					t.Errorf("send %d: %v", id, err)
				}
			}
		}(s)
	}
	wg.Wait()
	f.Close() // drains the VOQs before returning

	tr.checkExactlyOnce(accepted)
	s := f.Stats()
	nAccepted := int64(0)
	for _, a := range accepted {
		if a {
			nAccepted++
		}
	}
	if s.Accepted != nAccepted || s.Accepted+s.Rejected != total {
		t.Fatalf("accounting broken: accepted=%d rejected=%d of %d", s.Accepted, s.Rejected, total)
	}
	if s.Delivered != nAccepted || s.Lost != 0 {
		t.Fatalf("delivered=%d lost=%d, want %d lost 0", s.Delivered, s.Lost, nAccepted)
	}
	planeFrames := int64(0)
	for _, ps := range s.Planes {
		planeFrames += ps.Frames
	}
	if planeFrames != s.Frames {
		t.Fatalf("plane frame counters (%d) disagree with fabric (%d)", planeFrames, s.Frames)
	}
	// Per-VOQ books: enqueued - occupied must equal delivered.
	enq, occ := int64(0), int64(0)
	for _, c := range s.VOQ.PerInput {
		enq += c.Enqueued
		occ += c.Occupied
	}
	if enq != s.Accepted || occ != 0 {
		t.Fatalf("VOQ books wrong: enqueued=%d occupied=%d", enq, occ)
	}
}

// TestFabricPlaneFailover injects a stuck switch into one of two planes
// mid-load: the damaged plane must detect the first misrouting frame,
// go unhealthy, and hand everything over to the survivor with no
// accepted packet lost or duplicated.
func TestFabricPlaneFailover(t *testing.T) {
	const (
		logN  = 8 // N = 256
		total = 4000
	)
	tr := newTracker(t, total)
	f, err := New[int](Config{LogN: logN, Planes: 2, VOQDepth: 32, Policy: Block}, tr.deliver)
	if err != nil {
		t.Fatal(err)
	}

	accepted := make([]bool, total)
	rng := rand.New(rand.NewSource(99))
	send := func(id int) {
		p := Packet[int]{Src: rng.Intn(f.N()), Dst: rng.Intn(f.N()), Payload: id}
		tr.wantDst[id].Store(int64(p.Dst) + 1)
		if err := f.Send(p); err != nil {
			t.Errorf("send %d: %v", id, err)
			return
		}
		accepted[id] = true
	}
	for id := 0; id < total/4; id++ {
		send(id)
	}
	// Freeze a first-stage switch of plane 0 crossed. Roughly half of
	// all frames need it straight, so detection is near-immediate under
	// the remaining load.
	if err := f.InjectFaults(0, []core.Fault{{Stage: 0, Switch: 3, StuckCrossed: true}}); err != nil {
		t.Fatal(err)
	}
	for id := total / 4; id < total; id++ {
		send(id)
	}
	f.Close()

	tr.checkExactlyOnce(accepted)
	s := f.Stats()
	if s.Delivered != s.Accepted || s.Lost != 0 {
		t.Fatalf("failover lost packets: %+v", s)
	}
	if s.Planes[0].Healthy {
		t.Fatalf("damaged plane should have been detected unhealthy: %+v", s.Planes[0])
	}
	if !s.Planes[1].Healthy || s.Planes[1].Frames == 0 {
		t.Fatalf("surviving plane should carry the load: %+v", s.Planes[1])
	}
	if s.Failovers == 0 && s.Planes[0].Failovers == 0 {
		t.Fatal("failover counters should show the rerouted frames")
	}
}

// TestFabricRepairRestoresPlane heals an injected fault and checks the
// plane rejoins the rotation.
func TestFabricRepairRestoresPlane(t *testing.T) {
	f, err := New[int](Config{LogN: 4, Planes: 2, Policy: Block}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.FailPlane(0); err != nil {
		t.Fatal(err)
	}
	if f.Stats().Planes[0].Healthy {
		t.Fatal("FailPlane must mark the plane down")
	}
	if err := f.RestorePlane(0); err != nil {
		t.Fatal(err)
	}
	if !f.Stats().Planes[0].Healthy {
		t.Fatal("RestorePlane must bring the plane back")
	}
	if err := f.InjectFaults(5, nil); err == nil {
		t.Fatal("faults on a nonexistent plane must error")
	}
}

// TestFabricAllPlanesDown checks the books still balance when no plane
// can serve: accepted packets are counted lost, never silently vanish.
func TestFabricAllPlanesDown(t *testing.T) {
	var delivered atomic.Int64
	f, err := New[int](Config{LogN: 3, Planes: 1}, func(Packet[int]) { delivered.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	if err := f.FailPlane(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := f.Send(Packet[int]{Src: i % 8, Dst: (i + 3) % 8}); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	s := f.Stats()
	if delivered.Load() != 0 || s.Delivered != 0 {
		t.Fatal("nothing should be delivered with every plane down")
	}
	if s.Lost != s.Accepted || s.Accepted != 20 {
		t.Fatalf("lost packets must be accounted: %+v", s)
	}
}

// TestFabricBlockPolicy checks Block makes Send wait out a full VOQ
// instead of dropping.
func TestFabricBlockPolicy(t *testing.T) {
	var delivered atomic.Int64
	f, err := New[int](Config{LogN: 2, Planes: 1, VOQDepth: 1, Policy: Block},
		func(Packet[int]) { delivered.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	// 50 packets through a depth-1 queue: every Send must eventually
	// succeed, so rejected stays 0.
	for i := 0; i < 50; i++ {
		if err := f.Send(Packet[int]{Src: 1, Dst: 2, Payload: i}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	f.Close()
	s := f.Stats()
	if s.Rejected != 0 || s.Delivered != 50 || delivered.Load() != 50 {
		t.Fatalf("block policy must deliver everything: %+v", s)
	}
}

// TestFabricSendValidation covers the rejection paths.
func TestFabricSendValidation(t *testing.T) {
	f, err := New[int](Config{LogN: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Send(Packet[int]{Src: -1, Dst: 0}); err == nil {
		t.Fatal("negative source must be rejected")
	}
	if err := f.Send(Packet[int]{Src: 0, Dst: 8}); err == nil {
		t.Fatal("out-of-range destination must be rejected")
	}
	f.Close()
	if err := f.Send(Packet[int]{Src: 0, Dst: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v, want ErrClosed", err)
	}
	f.Close() // idempotent
	if _, err := New[int](Config{LogN: 0}, nil); err == nil {
		t.Fatal("LogN=0 must be rejected")
	}
}

// TestFabricBlockedSenderUnblocksOnClose makes sure a sender parked on
// a full queue under Block is released with ErrClosed when the fabric
// shuts down.
func TestFabricBlockedSenderUnblocksOnClose(t *testing.T) {
	f, err := New[int](Config{LogN: 2, Planes: 1, VOQDepth: 1, Policy: Block}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.FailPlane(0); err != nil { // nothing drains
		t.Fatal(err)
	}
	// Fill the (0,1) VOQ, then park a second sender on it.
	if err := f.Send(Packet[int]{Src: 0, Dst: 1}); err != nil {
		t.Fatal(err)
	}
	res := make(chan error, 1)
	go func() { res <- f.Send(Packet[int]{Src: 0, Dst: 1}) }()
	f.Close()
	if err := <-res; err != nil && !errors.Is(err, ErrClosed) {
		t.Fatalf("blocked sender should see nil (raced the drain) or ErrClosed, got %v", err)
	}
}
