package fabric

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gcn"
)

// mcastCollector records every delivered copy keyed by payload, so a
// test can compare the delivered destination multiset per packet.
type mcastCollector struct {
	mu   sync.Mutex
	dsts map[int][]int
}

func newMcastCollector() *mcastCollector {
	return &mcastCollector{dsts: make(map[int][]int)}
}

func (c *mcastCollector) deliver(p Packet[int]) {
	c.mu.Lock()
	c.dsts[p.Payload] = append(c.dsts[p.Payload], p.Dst)
	c.mu.Unlock()
}

func (c *mcastCollector) got(payload int) []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dsts[payload]
}

func sameSet(t *testing.T, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("delivered %v, want set %v", got, want)
	}
	seen := make(map[int]int)
	for _, d := range got {
		seen[d]++
	}
	for _, d := range want {
		if seen[d] != 1 {
			t.Fatalf("delivered %v, want each of %v exactly once", got, want)
		}
	}
}

func TestSendMulticastDelivery(t *testing.T) {
	col := newMcastCollector()
	f, err := New(Config{LogN: 3, Planes: 1, Policy: Block}, col.deliver)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	pkts := map[int][]int{
		1: {0, 3, 5, 7},
		2: {1, 2},
		3: {4},
	}
	for payload, dsts := range pkts {
		if err := f.SendMulticast(MulticastPacket[int]{Src: payload, Dsts: dsts, Payload: payload}); err != nil {
			t.Fatalf("SendMulticast(%d): %v", payload, err)
		}
	}
	f.Close()
	for payload, want := range pkts {
		sameSet(t, col.got(payload), want)
	}
	s := f.Stats()
	if s.Mcast.Accepted != 3 || s.Mcast.Delivered != 3 {
		t.Fatalf("mcast accepted/delivered = %d/%d, want 3/3", s.Mcast.Accepted, s.Mcast.Delivered)
	}
	if s.Mcast.Copies != 7 {
		t.Fatalf("mcast copies = %d, want 7", s.Mcast.Copies)
	}
	if s.Lost != 0 {
		t.Fatalf("lost = %d, want 0", s.Lost)
	}
	if amp := s.Mcast.FanoutAmplification; amp < 2.3 || amp > 2.4 {
		t.Fatalf("fanout amplification = %v, want 7/3", amp)
	}
}

func TestSendMulticastRejections(t *testing.T) {
	f, err := New[int](Config{LogN: 3}, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer f.Close()
	cases := []MulticastPacket[int]{
		{Src: -1, Dsts: []int{0}},
		{Src: 8, Dsts: []int{0}},
		{Src: 0, Dsts: nil},
		{Src: 0, Dsts: []int{8}},
		{Src: 0, Dsts: []int{3, 3}},
	}
	for i, p := range cases {
		if err := f.SendMulticast(p); err == nil {
			t.Fatalf("case %d accepted: %+v", i, p)
		}
	}
}

// TestFabricMulticastExhaustiveGCN pushes every (source, destination
// set) pair at N=8 through the packet fabric and checks the delivered
// copies against the gate-level generalized-connection network: for
// each packet the fabric must deliver to exactly the requested set,
// and each copy must carry what gcn.Carry places on that output under
// the equivalent total request.
func TestFabricMulticastExhaustiveGCN(t *testing.T) {
	const logN = 3
	n := 1 << logN
	col := newMcastCollector()
	f, err := New(Config{LogN: logN, Planes: 1, Policy: Block, VOQDepth: 8}, col.deliver)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	g := gcn.New(logN)
	ident := make([]int, n)
	for i := range ident {
		ident[i] = i
	}

	type want struct {
		src  int
		dsts []int
	}
	wants := map[int]want{}
	id := 0
	for src := 0; src < n; src++ {
		for set := 1; set < 1<<n; set++ {
			var dsts []int
			for d := 0; d < n; d++ {
				if set&(1<<d) != 0 {
					dsts = append(dsts, d)
				}
			}
			if err := f.SendMulticast(MulticastPacket[int]{Src: src, Dsts: dsts, Payload: id}); err != nil {
				t.Fatalf("send src %d set %b: %v", src, set, err)
			}
			wants[id] = want{src: src, dsts: dsts}
			id++
		}
	}
	f.Close()

	for payload, w := range wants {
		got := col.got(payload)
		sameSet(t, got, w.dsts)
		// Gate-level reference: the same fan-out as a total gcn request
		// (unrequested outputs ask for themselves).
		req := make(gcn.Request, n)
		for out := range req {
			req[out] = out
		}
		for _, d := range w.dsts {
			req[d] = w.src
		}
		plan, err := g.Connect(req)
		if err != nil {
			t.Fatalf("gcn.Connect: %v", err)
		}
		ref := gcn.Carry(plan, ident)
		for _, d := range w.dsts {
			if ref[d] != w.src {
				t.Fatalf("gcn delivers %d to output %d, fabric promised %d", ref[d], d, w.src)
			}
		}
	}
	s := f.Stats()
	if s.Mcast.Delivered != int64(len(wants)) {
		t.Fatalf("mcast delivered = %d, want %d", s.Mcast.Delivered, len(wants))
	}
	if s.Lost != 0 {
		t.Fatalf("lost = %d, want 0", s.Lost)
	}
}

// TestMulticastMixedTraffic interleaves unicast and multicast packets
// and checks both kinds arrive exactly once, multicast once per
// destination.
func TestMulticastMixedTraffic(t *testing.T) {
	const logN = 3
	n := 1 << logN
	col := newMcastCollector()
	f, err := New(Config{LogN: logN, Planes: 2, Policy: Block}, col.deliver)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rng := rand.New(rand.NewSource(42))
	wants := map[int][]int{}
	id := 0
	for round := 0; round < 200; round++ {
		src := rng.Intn(n)
		if rng.Intn(2) == 0 {
			dst := rng.Intn(n)
			if err := f.Send(Packet[int]{Src: src, Dst: dst, Payload: id}); err != nil {
				t.Fatalf("Send: %v", err)
			}
			wants[id] = []int{dst}
		} else {
			var dsts []int
			for d := 0; d < n; d++ {
				if rng.Intn(3) == 0 {
					dsts = append(dsts, d)
				}
			}
			if len(dsts) == 0 {
				dsts = []int{rng.Intn(n)}
			}
			if err := f.SendMulticast(MulticastPacket[int]{Src: src, Dsts: dsts, Payload: id}); err != nil {
				t.Fatalf("SendMulticast: %v", err)
			}
			wants[id] = dsts
		}
		id++
	}
	f.Close()
	for payload, want := range wants {
		sameSet(t, col.got(payload), want)
	}
	if s := f.Stats(); s.Lost != 0 {
		t.Fatalf("lost = %d, want 0", s.Lost)
	}
}

// TestMulticastFailover injects a stuck switch into plane 0 of a
// two-plane fabric and checks multicast traffic still arrives intact:
// frames that would misroute on the damaged plane fail over, and no
// accepted packet is lost.
func TestMulticastFailover(t *testing.T) {
	const logN = 3
	n := 1 << logN
	col := newMcastCollector()
	f, err := New(Config{LogN: logN, Planes: 2, Policy: Block}, col.deliver)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := f.InjectFaults(0, []core.Fault{{Stage: 0, Switch: 0, StuckCrossed: true}}); err != nil {
		t.Fatalf("InjectFaults: %v", err)
	}
	rng := rand.New(rand.NewSource(9))
	wants := map[int][]int{}
	for id := 0; id < 300; id++ {
		src := rng.Intn(n)
		var dsts []int
		for d := 0; d < n; d++ {
			if rng.Intn(2) == 0 {
				dsts = append(dsts, d)
			}
		}
		if len(dsts) == 0 {
			dsts = []int{rng.Intn(n)}
		}
		if err := f.SendMulticast(MulticastPacket[int]{Src: src, Dsts: dsts, Payload: id}); err != nil {
			t.Fatalf("SendMulticast: %v", err)
		}
		wants[id] = dsts
	}
	f.Close()
	for payload, want := range wants {
		sameSet(t, col.got(payload), want)
	}
	s := f.Stats()
	if s.Lost != 0 {
		t.Fatalf("lost = %d, want 0", s.Lost)
	}
	if s.Mcast.Delivered != 300 {
		t.Fatalf("mcast delivered = %d, want 300", s.Mcast.Delivered)
	}
}

func TestRouteMulticastRound(t *testing.T) {
	f, err := New[int](Config{LogN: 3, Planes: 2}, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer f.Close()
	n := f.N()

	m := make([]int, n)
	for out := range m {
		m[out] = 6 // full broadcast from port 6
	}
	res, err := f.RouteMulticastRound(m, 0)
	if err != nil {
		t.Fatalf("RouteMulticastRound: %v", err)
	}
	if res.Kind != engine.PlanMulticast {
		t.Fatalf("kind = %v, want multicast", res.Kind)
	}
	if res.CacheHit {
		t.Fatal("first round reported a cache hit")
	}
	res, err = f.RouteMulticastRound(m, res.Plane)
	if err != nil {
		t.Fatalf("repeat round: %v", err)
	}
	if !res.CacheHit {
		t.Fatal("repeat round on the same plane missed the plan cache")
	}

	// Rejections never touch a plane.
	if _, err := f.RouteMulticastRound(make([]int, n-1), 0); err == nil {
		t.Fatal("short mapping accepted")
	}
	idle := make([]int, n)
	for i := range idle {
		idle[i] = -1
	}
	if _, err := f.RouteMulticastRound(idle, 0); err == nil {
		t.Fatal("all-idle mapping accepted")
	}
	for _, p := range f.planes {
		if !p.healthy.Load() {
			t.Fatal("a rejected round took a plane out of rotation")
		}
	}

	// Failover: kill the preferred plane, the round lands on the other.
	if err := f.FailPlane(0); err != nil {
		t.Fatalf("FailPlane: %v", err)
	}
	res, err = f.RouteMulticastRound(m, 0)
	if err != nil {
		t.Fatalf("failover round: %v", err)
	}
	if res.Plane != 1 {
		t.Fatalf("failover served by plane %d, want 1", res.Plane)
	}
	if s := f.Stats(); s.RoundFailovers == 0 {
		t.Fatal("failover not counted")
	}
}

func TestRouteMulticastRoundFaulted(t *testing.T) {
	f, err := New[int](Config{LogN: 3, Planes: 2}, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer f.Close()
	n := f.N()
	if err := f.InjectFaults(0, []core.Fault{{Stage: 0, Switch: 0, StuckCrossed: true}}); err != nil {
		t.Fatalf("InjectFaults: %v", err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		m := make([]int, n)
		for out := range m {
			m[out] = rng.Intn(n / 2)
		}
		if _, err := f.RouteMulticastRound(m, 0); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestCompleteMapping(t *testing.T) {
	got, err := CompleteMapping([]int{2, 2, Idle, Idle})
	if err != nil {
		t.Fatalf("CompleteMapping: %v", err)
	}
	// Sources 0, 1, 3 are unused; outputs 2, 3 are idle.
	want := []int{2, 2, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CompleteMapping = %v, want %v", got, want)
		}
	}
	if _, err := CompleteMapping([]int{Idle, Idle}); err == nil {
		t.Fatal("all-idle mapping accepted")
	}
	if _, err := CompleteMapping([]int{4, Idle, Idle, Idle}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	// A full broadcast leaves no idle outputs to fill.
	got, err = CompleteMapping([]int{1, 1, 1, 1})
	if err != nil {
		t.Fatalf("full broadcast: %v", err)
	}
	for i, src := range got {
		if src != 1 {
			t.Fatalf("full broadcast[%d] = %d, want 1", i, src)
		}
	}
}

func TestMulticastStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const logN = 4
	n := 1 << logN
	var delivered sync.Map
	f, err := NewBatched(Config{LogN: logN, Planes: 3, Policy: Block, Record: true},
		func(plane int, pkts []Packet[int]) {
			for _, p := range pkts {
				key := fmt.Sprintf("%d/%d", p.Payload, p.Dst)
				if _, loaded := delivered.LoadOrStore(key, true); loaded {
					t.Errorf("copy %s delivered twice", key)
				}
			}
		})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var wg sync.WaitGroup
	const senders = 4
	const perSender = 250
	for w := 0; w < senders; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perSender; i++ {
				src := rng.Intn(n)
				var dsts []int
				for d := 0; d < n; d++ {
					if rng.Intn(4) == 0 {
						dsts = append(dsts, d)
					}
				}
				if len(dsts) == 0 {
					dsts = []int{rng.Intn(n)}
				}
				if err := f.SendMulticast(MulticastPacket[int]{Src: src, Dsts: dsts, Payload: w*perSender + i}); err != nil {
					t.Errorf("SendMulticast: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	f.Close()
	s := f.Stats()
	if s.Lost != 0 {
		t.Fatalf("lost = %d, want 0", s.Lost)
	}
	if s.Mcast.Delivered != senders*perSender {
		t.Fatalf("mcast delivered = %d, want %d", s.Mcast.Delivered, senders*perSender)
	}
	count := 0
	delivered.Range(func(any, any) bool { count++; return true })
	if int64(count) != s.Mcast.Copies {
		t.Fatalf("distinct copies = %d, stats copies = %d", count, s.Mcast.Copies)
	}
}
