package fabric

import (
	"expvar"
	"strconv"
	"sync/atomic"

	"repro/internal/obs"
)

// metrics aggregates the fabric-level counters and per-stage latency
// histograms. Per-plane counters live on the planes themselves; per-VOQ
// counters live under the voqSet mutex. Snapshot stitches all three
// views together; Register exports every series — including the
// per-plane engines — into one obs.Registry.
type metrics struct {
	accepted  atomic.Int64 // packets admitted into a VOQ
	rejected  atomic.Int64 // packets refused by tail drop or close
	delivered atomic.Int64 // packets verified at their output port
	lost      atomic.Int64 // accepted packets abandoned (no healthy plane at close)
	frames    atomic.Int64 // frames scheduled
	failovers atomic.Int64 // frames re-dispatched after a plane failure

	rounds         atomic.Int64 // collective rounds served via RouteRound
	roundFailovers atomic.Int64 // rounds served only after a plane failover

	// Multicast traffic. Accepted/delivered count logical fan-out
	// packets; copies count per-output deliveries, so copies/delivered
	// is the fabric's fan-out amplification.
	mcastAccepted  atomic.Int64 // multicast packets admitted
	mcastDelivered atomic.Int64 // multicast packets with every copy verified
	mcastCopies    atomic.Int64 // verified copies (frames and rounds)
	mcastFrames    atomic.Int64 // frames carrying at least one multicast packet
	mcastRounds    atomic.Int64 // multicast collective rounds served

	// Per-stage latency histograms, mapping the paper's delay split
	// onto the packet path: queueing (VOQWait, plus EnqueueWait for the
	// backpressured slow path), scheduling (Match), transmission
	// (PlaneRTT), and the exactly-once check (Verify, populated by the
	// round path; frames verify inside the plane serve, timed by the
	// engine's Apply histogram). FaultCheck times the gate-level
	// simulator pass a damaged plane runs per frame, fed by netsim's
	// timing hook.
	VOQWait     obs.Histogram // packet enqueue -> extraction into a frame
	EnqueueWait obs.Histogram // time a Block-policy sender spent parked on a full ring
	Match       obs.Histogram // one matching extraction (buildFrame)
	PlaneRTT    obs.Histogram // plane round-trip: engine route of a frame or round
	Verify      obs.Histogram // output-port verification of a round
	FaultCheck  obs.Histogram // gate-level fault-check simulation per frame

	// Size histograms (fed by ObserveValue, not durations): how many
	// real packets each scheduler→router handoff carried, and how many
	// delivery callbacks each frame completion coalesced.
	HandoffBatch obs.Histogram // real packets per frame handed to a router
	Coalesce     obs.Histogram // packets delivered per coalesced frame drain
}

// McastSnapshot is the multicast slice of a fabric Snapshot.
// FanoutAmplification is Copies / Delivered — how many verified
// output copies each served multicast packet produced on average.
// All three packet counters cover frame traffic only; Rounds counts
// whole-mapping collective rounds, which carry no packets.
type McastSnapshot struct {
	Accepted            int64   `json:"accepted"`
	Delivered           int64   `json:"delivered"`
	Copies              int64   `json:"copies"`
	Frames              int64   `json:"frames"`
	Rounds              int64   `json:"rounds"`
	FanoutAmplification float64 `json:"fanout_amplification"`
}

// VOQInputCounters is one input port's ingress accounting.
type VOQInputCounters struct {
	Enqueued int64 `json:"enqueued"`
	Dropped  int64 `json:"dropped"`
	Occupied int64 `json:"occupied"`
	MaxDepth int64 `json:"max_depth"`
}

// VOQSnapshot summarizes the virtual output queues: the aggregate
// occupancy plus one counter block per input port.
type VOQSnapshot struct {
	Occupied int64              `json:"occupied"`
	PerInput []VOQInputCounters `json:"per_input"`
}

// StageSnapshot is the per-stage latency view of a fabric snapshot,
// plus the unitless batch-size distributions of the sharded hot path
// (HandoffBatch and Coalesce report raw sizes in the *Ns fields).
type StageSnapshot struct {
	VOQWait     obs.HistogramSnapshot `json:"voq_wait"`
	EnqueueWait obs.HistogramSnapshot `json:"enqueue_wait"`
	Match       obs.HistogramSnapshot `json:"match"`
	PlaneRTT    obs.HistogramSnapshot `json:"plane_rtt"`
	Verify      obs.HistogramSnapshot `json:"verify"`
	FaultCheck  obs.HistogramSnapshot `json:"fault_check"`

	HandoffBatch obs.HistogramSnapshot `json:"handoff_batch"`
	Coalesce     obs.HistogramSnapshot `json:"coalesce"`
}

// Snapshot is a point-in-time, JSON-friendly view of a running fabric,
// in the same expvar style as engine.Snapshot. Counters are read
// atomically but independently: a snapshot taken mid-flight may be a
// few packets out of phase between fields (e.g. Accepted vs Delivered),
// which is inherent to lock-free stitching and harmless for
// monitoring; each individual field is never torn.
type Snapshot struct {
	Accepted  int64 `json:"accepted"`
	Rejected  int64 `json:"rejected"`
	Delivered int64 `json:"delivered"`
	Lost      int64 `json:"lost"`
	Frames    int64 `json:"frames"`
	Failovers int64 `json:"failovers"`

	// Collective round traffic (RouteRound), which bypasses the
	// VOQ/frame path.
	Rounds         int64 `json:"rounds"`
	RoundFailovers int64 `json:"round_failovers"`

	// Multicast traffic: copy-network frames and rounds.
	Mcast McastSnapshot `json:"mcast"`

	// FrameFill is delivered packets per scheduled frame divided by N:
	// 1.0 means every frame was a full permutation of real packets,
	// small values mean the scheduler is padding mostly-idle frames.
	FrameFill float64 `json:"frame_fill"`

	Stages StageSnapshot   `json:"stages"`
	Planes []PlaneSnapshot `json:"planes"`
	VOQ    VOQSnapshot     `json:"voq"`
}

// Stats captures the full fabric snapshot: fabric counters, per-stage
// latency, per-plane engine snapshots, and per-VOQ counters.
func (f *Fabric[T]) Stats() Snapshot {
	s := Snapshot{
		Accepted:  f.met.accepted.Load(),
		Rejected:  f.met.rejected.Load(),
		Delivered: f.met.delivered.Load(),
		Lost:      f.met.lost.Load(),
		Frames:    f.met.frames.Load(),
		Failovers: f.met.failovers.Load(),

		Rounds:         f.met.rounds.Load(),
		RoundFailovers: f.met.roundFailovers.Load(),

		Mcast: McastSnapshot{
			Accepted:  f.met.mcastAccepted.Load(),
			Delivered: f.met.mcastDelivered.Load(),
			Copies:    f.met.mcastCopies.Load(),
			Frames:    f.met.mcastFrames.Load(),
			Rounds:    f.met.mcastRounds.Load(),
		},

		Stages: StageSnapshot{
			VOQWait:     f.met.VOQWait.Snapshot(),
			EnqueueWait: f.met.EnqueueWait.Snapshot(),
			Match:       f.met.Match.Snapshot(),
			PlaneRTT:    f.met.PlaneRTT.Snapshot(),
			Verify:      f.met.Verify.Snapshot(),
			FaultCheck:  f.met.FaultCheck.Snapshot(),

			HandoffBatch: f.met.HandoffBatch.Snapshot(),
			Coalesce:     f.met.Coalesce.Snapshot(),
		},
	}
	if s.Frames > 0 {
		s.FrameFill = float64(s.Delivered) / float64(s.Frames) / float64(f.n)
	}
	if s.Mcast.Delivered > 0 {
		s.Mcast.FanoutAmplification = float64(s.Mcast.Copies) / float64(s.Mcast.Delivered)
	}
	s.Planes = make([]PlaneSnapshot, len(f.planes))
	for i, p := range f.planes {
		s.Planes[i] = p.snapshot()
	}
	// Per-input VOQ books, summed across the per-plane shards. MaxDepth
	// is the highest per-shard high-water mark, a conservative view of
	// the input's worst backlog.
	s.VOQ.PerInput = make([]VOQInputCounters, f.n)
	for _, sh := range f.shards {
		for i, c := range sh.snapshot() {
			p := &s.VOQ.PerInput[i]
			p.Enqueued += c.Enqueued
			p.Dropped += c.Dropped
			p.Occupied += c.Occupied
			if c.MaxDepth > p.MaxDepth {
				p.MaxDepth = c.MaxDepth
			}
		}
	}
	for _, c := range s.VOQ.PerInput {
		s.VOQ.Occupied += c.Occupied
	}
	return s
}

// Var adapts the fabric to an expvar.Var for /debug/vars publishing.
func (f *Fabric[T]) Var() expvar.Var {
	return expvar.Func(func() any { return f.Stats() })
}

// Register exports the fabric into reg: fabric counters, queue and
// plane-health gauges, the per-stage latency histograms, and — labeled
// by plane — each plane's counters and its engine's full series.
// Values are read at scrape time from the same atomics the data path
// maintains, so registration adds nothing to the packet path.
func (f *Fabric[T]) Register(reg *obs.Registry) {
	m := &f.met
	reg.CounterFunc("benes_fabric_accepted_total", "Packets admitted into a VOQ.", nil, m.accepted.Load)
	reg.CounterFunc("benes_fabric_rejected_total", "Packets refused by tail drop or close.", nil, m.rejected.Load)
	reg.CounterFunc("benes_fabric_delivered_total", "Packets verified at their output port.", nil, m.delivered.Load)
	reg.CounterFunc("benes_fabric_lost_total", "Accepted packets abandoned (no healthy plane at close).", nil, m.lost.Load)
	reg.CounterFunc("benes_fabric_frames_total", "Frames scheduled.", nil, m.frames.Load)
	reg.CounterFunc("benes_fabric_failovers_total", "Frames re-dispatched after a plane failure.", nil, m.failovers.Load)
	reg.CounterFunc("benes_fabric_rounds_total", "Collective rounds served.", nil, m.rounds.Load)
	reg.CounterFunc("benes_fabric_round_failovers_total", "Rounds served only after a plane failover.", nil, m.roundFailovers.Load)
	reg.CounterFunc("benes_fabric_mcast_accepted_total", "Multicast packets admitted.", nil, m.mcastAccepted.Load)
	reg.CounterFunc("benes_fabric_mcast_delivered_total", "Multicast packets with every copy verified.", nil, m.mcastDelivered.Load)
	reg.CounterFunc("benes_fabric_mcast_copies_total", "Verified multicast copies.", nil, m.mcastCopies.Load)
	reg.CounterFunc("benes_fabric_mcast_frames_total", "Frames carrying at least one multicast packet.", nil, m.mcastFrames.Load)
	reg.CounterFunc("benes_fabric_mcast_rounds_total", "Multicast collective rounds served.", nil, m.mcastRounds.Load)
	reg.GaugeFunc("benes_fabric_voq_occupied", "Packets currently queued across all VOQs.", nil,
		func() float64 {
			total := int64(0)
			for _, sh := range f.shards {
				total += sh.occupancy()
			}
			return float64(total)
		})
	reg.GaugeFunc("benes_fabric_healthy_planes", "Planes currently in rotation.", nil, func() float64 {
		healthy := 0
		for _, p := range f.planes {
			if p.healthy.Load() {
				healthy++
			}
		}
		return float64(healthy)
	})
	reg.RegisterHistogram("benes_fabric_voq_wait_seconds", "Packet wait from VOQ enqueue to frame extraction.", nil, &m.VOQWait)
	reg.RegisterHistogram("benes_fabric_enqueue_wait_seconds", "Time Block-policy senders spent parked on a full VOQ ring.", nil, &m.EnqueueWait)
	reg.RegisterHistogram("benes_fabric_match_seconds", "Matching extraction (one scheduler tick).", nil, &m.Match)
	reg.RegisterHistogram("benes_fabric_plane_seconds", "Plane round-trip for one frame or round.", nil, &m.PlaneRTT)
	reg.RegisterHistogram("benes_fabric_verify_seconds", "Output-port verification of a round.", nil, &m.Verify)
	reg.RegisterHistogram("benes_fabric_faultcheck_seconds", "Gate-level fault-check simulation per frame on a damaged plane.", nil, &m.FaultCheck)
	reg.RegisterSizeHistogram("benes_fabric_handoff_batch_size", "Real packets per frame handed from a scheduler to its router.", nil, &m.HandoffBatch)
	reg.RegisterSizeHistogram("benes_fabric_coalesce_size", "Packets delivered per coalesced frame drain.", nil, &m.Coalesce)
	for _, p := range f.planes {
		p := p
		labels := obs.Labels{{"plane", strconv.Itoa(p.id)}}
		reg.GaugeFunc("benes_fabric_plane_healthy", "1 when the plane is in rotation.", labels, func() float64 {
			if p.healthy.Load() {
				return 1
			}
			return 0
		})
		reg.CounterFunc("benes_fabric_plane_frames_total", "Frames this plane routed.", labels, p.frames.Load)
		reg.CounterFunc("benes_fabric_plane_packets_total", "Payload packets inside routed frames.", labels, p.packets.Load)
		reg.CounterFunc("benes_fabric_plane_rounds_total", "Collective rounds this plane routed.", labels, p.rounds.Load)
		reg.CounterFunc("benes_fabric_plane_failovers_total", "Frames or rounds this plane rejected or misrouted.", labels, p.failovers.Load)
		p.eng.Register(reg, labels)
	}
}
