package fabric

import (
	"expvar"
	"sync/atomic"
)

// metrics aggregates the fabric-level counters. Per-plane counters live
// on the planes themselves; per-VOQ counters live under the voqSet
// mutex. Snapshot stitches all three views together.
type metrics struct {
	accepted  atomic.Int64 // packets admitted into a VOQ
	rejected  atomic.Int64 // packets refused by tail drop or close
	delivered atomic.Int64 // packets verified at their output port
	lost      atomic.Int64 // accepted packets abandoned (no healthy plane at close)
	frames    atomic.Int64 // frames scheduled
	failovers atomic.Int64 // frames re-dispatched after a plane failure

	rounds         atomic.Int64 // collective rounds served via RouteRound
	roundFailovers atomic.Int64 // rounds served only after a plane failover
}

// VOQInputCounters is one input port's ingress accounting.
type VOQInputCounters struct {
	Enqueued int64 `json:"enqueued"`
	Dropped  int64 `json:"dropped"`
	Occupied int64 `json:"occupied"`
	MaxDepth int64 `json:"max_depth"`
}

// VOQSnapshot summarizes the virtual output queues: the aggregate
// occupancy plus one counter block per input port.
type VOQSnapshot struct {
	Occupied int64              `json:"occupied"`
	PerInput []VOQInputCounters `json:"per_input"`
}

// Snapshot is a point-in-time, JSON-friendly view of a running fabric,
// in the same expvar style as engine.Snapshot.
type Snapshot struct {
	Accepted  int64 `json:"accepted"`
	Rejected  int64 `json:"rejected"`
	Delivered int64 `json:"delivered"`
	Lost      int64 `json:"lost"`
	Frames    int64 `json:"frames"`
	Failovers int64 `json:"failovers"`

	// Collective round traffic (RouteRound), which bypasses the
	// VOQ/frame path.
	Rounds         int64 `json:"rounds"`
	RoundFailovers int64 `json:"round_failovers"`

	// FrameFill is delivered packets per scheduled frame divided by N:
	// 1.0 means every frame was a full permutation of real packets,
	// small values mean the scheduler is padding mostly-idle frames.
	FrameFill float64 `json:"frame_fill"`

	Planes []PlaneSnapshot `json:"planes"`
	VOQ    VOQSnapshot     `json:"voq"`
}

// Stats captures the full fabric snapshot: fabric counters, per-plane
// engine snapshots, and per-VOQ counters.
func (f *Fabric[T]) Stats() Snapshot {
	s := Snapshot{
		Accepted:  f.met.accepted.Load(),
		Rejected:  f.met.rejected.Load(),
		Delivered: f.met.delivered.Load(),
		Lost:      f.met.lost.Load(),
		Frames:    f.met.frames.Load(),
		Failovers: f.met.failovers.Load(),

		Rounds:         f.met.rounds.Load(),
		RoundFailovers: f.met.roundFailovers.Load(),
	}
	if s.Frames > 0 {
		s.FrameFill = float64(s.Delivered) / float64(s.Frames) / float64(f.n)
	}
	s.Planes = make([]PlaneSnapshot, len(f.planes))
	for i, p := range f.planes {
		s.Planes[i] = p.snapshot()
	}
	s.VOQ.PerInput = f.voq.snapshot()
	for _, c := range s.VOQ.PerInput {
		s.VOQ.Occupied += c.Occupied
	}
	return s
}

// Var adapts the fabric to an expvar.Var for /debug/vars publishing.
func (f *Fabric[T]) Var() expvar.Var {
	return expvar.Func(func() any { return f.Stats() })
}
