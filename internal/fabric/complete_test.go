package fabric

import (
	"math/rand"
	"testing"
)

// TestCompleteExtendsPartial is the property test for the partial→full
// completion helper: for random partial matchings of many sizes and
// densities, the result must be a valid permutation that agrees with
// every matched input.
func TestCompleteExtendsPartial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		n := 1 << (1 + rng.Intn(6)) // N in {2..64}
		matched := rng.Intn(n + 1)
		// Build a random partial matching with `matched` pairs.
		outs := rng.Perm(n)
		ins := rng.Perm(n)
		partial := make([]int, n)
		for i := range partial {
			partial[i] = Idle
		}
		for k := 0; k < matched; k++ {
			partial[ins[k]] = outs[k]
		}
		full, err := Complete(partial)
		if err != nil {
			t.Fatalf("n=%d matched=%d: %v", n, matched, err)
		}
		if err := full.Validate(); err != nil {
			t.Fatalf("n=%d matched=%d: completion is not a permutation: %v", n, matched, err)
		}
		for i, out := range partial {
			if out != Idle && full[i] != out {
				t.Fatalf("n=%d: completion moved matched input %d: %d -> %d", n, i, out, full[i])
			}
		}
	}
}

// TestCompleteEdgeCases pins the empty, full, and single-slot shapes.
func TestCompleteEdgeCases(t *testing.T) {
	if full, err := Complete([]int{Idle, Idle, Idle, Idle}); err != nil || !full.Valid() {
		t.Fatalf("all-idle must complete to a permutation, got %v, %v", full, err)
	}
	if full, err := Complete([]int{3, 2, 1, 0}); err != nil || !full.Equal([]int{3, 2, 1, 0}) {
		t.Fatalf("a full matching must come back unchanged, got %v, %v", full, err)
	}
	if full, err := Complete([]int{1, Idle}); err != nil || !full.Equal([]int{1, 0}) {
		t.Fatalf("single idle input must take the single free output, got %v, %v", full, err)
	}
}

// TestCompleteRejectsNonMatchings covers the error paths.
func TestCompleteRejectsNonMatchings(t *testing.T) {
	if _, err := Complete([]int{0, 0, Idle, Idle}); err == nil {
		t.Fatal("duplicate output must be rejected")
	}
	if _, err := Complete([]int{4, Idle, Idle, Idle}); err == nil {
		t.Fatal("out-of-range output must be rejected")
	}
	if _, err := Complete([]int{-2, Idle, Idle, Idle}); err == nil {
		t.Fatal("negative non-Idle output must be rejected")
	}
}
