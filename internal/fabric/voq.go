package fabric

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// DropPolicy selects what Send does when a packet's virtual output
// queue is full.
type DropPolicy int

const (
	// DropNew rejects the incoming packet immediately (tail drop). The
	// caller sees ErrBackpressure and the packet is never accepted, so
	// the fabric's exactly-once delivery guarantee is unaffected.
	DropNew DropPolicy = iota
	// Block makes Send wait until the queue has room (or the fabric
	// closes), pushing backpressure into the caller.
	Block
)

func (p DropPolicy) String() string {
	switch p {
	case DropNew:
		return "drop-new"
	case Block:
		return "block"
	}
	return "unknown"
}

// voqSlot is one ring slot. turn is the slot's lap word: ticket pos
// (lap = pos >> shift) may push when turn == 2·lap, the packet is
// published to the consumer by storing 2·lap+1, and the consumer frees
// the slot for the next lap by storing 2·lap+2. The encoding starts at
// zero — "free for lap 0" — so a freshly allocated ring needs no
// initialization pass beyond Go's zeroing, which keeps the lazy
// per-flow allocation in ring() cheap. enq is the enqueue wall clock in
// UnixNano (an int64, not a time.Time, to keep slots small: rings exist
// per (input, output) flow and their footprint is the fabric's memory
// bill).
type voqSlot[T any] struct {
	turn atomic.Uint64
	pkt  Packet[T]
	enq  int64
}

// voqRing is one (input, output) virtual output queue: a bounded
// lock-free ring in the style of Vyukov's bounded MPMC queue, used here
// with many producers (senders) and a single consumer (the owning
// shard's scheduler goroutine). Producers claim a ticket with one CAS
// on tail and publish with one store to the slot's turn word; the
// consumer needs no CAS at all. Capacity is rounded up to a power of
// two so slot indexing is a mask.
type voqRing[T any] struct {
	mask  uint64
	shift uint
	slots []voqSlot[T]
	_     [32]byte // keep head off the producers' tail line
	head  atomic.Uint64
	_     [56]byte
	tail  atomic.Uint64
}

// ringDepth rounds depth up to the power of two the ring actually
// allocates, minimum 2: with a single slot the sequence value that
// marks "free for ticket t" equals the one that marks "published by
// ticket t-1", so the ring cannot tell a full slot from an empty one.
func ringDepth(depth int) int {
	size := 2
	for size < depth {
		size <<= 1
	}
	return size
}

func newVOQRing[T any](depth int) *voqRing[T] {
	size := ringDepth(depth)
	return &voqRing[T]{
		mask:  uint64(size - 1),
		shift: uint(bits.TrailingZeros(uint(size))),
		slots: make([]voqSlot[T], size),
	}
}

// push publishes one packet; false means the ring is full.
func (r *voqRing[T]) push(p Packet[T], enq int64) bool {
	for {
		pos := r.tail.Load()
		s := &r.slots[pos&r.mask]
		switch d := int64(s.turn.Load()) - int64(pos>>r.shift<<1); {
		case d == 0:
			if r.tail.CompareAndSwap(pos, pos+1) {
				s.pkt, s.enq = p, enq
				s.turn.Store((pos>>r.shift)<<1 + 1)
				return true
			}
		case d < 0:
			// The slot still holds the previous lap's packet: full.
			return false
		}
		// d > 0 or a lost CAS: another producer advanced tail; retry.
	}
}

// pop takes the oldest packet; enq is its enqueue UnixNano. Single
// consumer only.
func (r *voqRing[T]) pop() (Packet[T], int64, bool) {
	pos := r.head.Load()
	s := &r.slots[pos&r.mask]
	lap := pos >> r.shift << 1
	if s.turn.Load() != lap+1 {
		var zero Packet[T]
		return zero, 0, false
	}
	p, enq := s.pkt, s.enq
	var zero Packet[T]
	s.pkt = zero // release payload and trace references
	s.turn.Store(lap + 2)
	r.head.Store(pos + 1)
	return p, enq, true
}

// size is the approximate occupancy; exact when producers are quiescent.
func (r *voqRing[T]) size() int64 {
	t, h := r.tail.Load(), r.head.Load()
	if t < h {
		return 0
	}
	return int64(t - h)
}

// voqInputCounters is the per-input slice of VOQ accounting, exported
// through VOQSnapshot. All fields are atomics: producers bump them
// outside any lock.
type voqInputCounters struct {
	enqueued atomic.Int64 // packets accepted into this input's queues
	dropped  atomic.Int64 // packets rejected by tail drop
	occupied atomic.Int64 // packets currently queued
	maxDepth atomic.Int64 // high-water mark of occupied
}

// voqShard is one switching plane's slice of the fabric ingress: a
// lazily allocated N² grid of lock-free rings, a per-input nonempty
// bitmap, and the iSLIP-style rotating pointers of its scheduler. Flow
// hashing assigns every (src, dst) flow to exactly one shard, so across
// shards only N² rings are ever in use; rings materialize on a flow's
// first packet (a CAS on the grid pointer), which keeps an idle shard's
// footprint at one pointer per pair instead of a full ring.
//
// Producers (Send) touch only lock-free state: ring push, counter adds,
// bitmap set. The single consumer — the shard's scheduler goroutine —
// owns pop, bitmap clearing, and the rotating pointers. The only lock
// is the Block-policy parking lot, paid exclusively by senders that
// found their ring full.
type voqShard[T any] struct {
	n     int
	depth int // per-ring bound (power of two)
	words int // bitmap words per input
	met   *metrics

	rings    []atomic.Pointer[voqRing[T]] // rings[in*n+out], lazily allocated
	nonempty []atomic.Uint64              // nonempty[in*words+out/64]
	counts   []voqInputCounters           // per input

	// Multicast ingress: one lazily allocated ring per input (a fan-out
	// packet targets many outputs, so the per-(input, output) grid does
	// not apply; one ring per input preserves per-input FIFO order among
	// its multicast packets). mcastQueued counts packets across them.
	mrings      []atomic.Pointer[voqRing[mpayload[T]]]
	mcastQueued atomic.Int64

	// Close protocol: inflight counts senders between admission check
	// and ring publish; seal flips sealed, then waits for inflight to
	// reach zero, after which a final drain observes every accepted
	// packet.
	sealed   atomic.Bool
	inflight atomic.Int64

	// notify wakes the scheduler when work arrives; capacity 1 so
	// enqueues never block on it.
	notify chan struct{}

	// Block-policy parking lot. waiters is read lock-free by the
	// consumer to skip the lock when nobody is parked.
	blockMu sync.Mutex
	space   *sync.Cond
	waiters atomic.Int64

	// Consumer-private scheduler state: the iSLIP rotating pointers and
	// matching scratch. Owned by the scheduler goroutine; no
	// synchronization.
	rrIn    int
	rrOut   []int
	partial []int
	taken   []bool
}

func newVOQShard[T any](n, depth int, met *metrics) *voqShard[T] {
	v := &voqShard[T]{
		n:       n,
		depth:   ringDepth(depth),
		words:   (n + 63) / 64,
		met:     met,
		counts:  make([]voqInputCounters, n),
		notify:  make(chan struct{}, 1),
		rrOut:   make([]int, n),
		partial: make([]int, n),
		taken:   make([]bool, n),
	}
	v.rings = make([]atomic.Pointer[voqRing[T]], n*n)
	v.mrings = make([]atomic.Pointer[voqRing[mpayload[T]]], n)
	v.nonempty = make([]atomic.Uint64, n*v.words)
	v.space = sync.NewCond(&v.blockMu)
	return v
}

// ring returns the (src, dst) ring, allocating it on first use. CAS
// losers discard their allocation, so every index settles on one ring.
func (v *voqShard[T]) ring(idx int) *voqRing[T] {
	if r := v.rings[idx].Load(); r != nil {
		return r
	}
	fresh := newVOQRing[T](v.depth)
	if v.rings[idx].CompareAndSwap(nil, fresh) {
		return fresh
	}
	return v.rings[idx].Load()
}

// setBit / clearBit are CAS loops because the go.mod language version
// predates the atomic Or/And methods.
func orBit(w *atomic.Uint64, bit uint64) {
	for {
		old := w.Load()
		if old&bit != 0 || w.CompareAndSwap(old, old|bit) {
			return
		}
	}
}

func andNotBit(w *atomic.Uint64, bit uint64) {
	for {
		old := w.Load()
		if old&bit == 0 || w.CompareAndSwap(old, old&^bit) {
			return
		}
	}
}

// enqueue publishes p into its VOQ, honouring the drop policy.
func (v *voqShard[T]) enqueue(p Packet[T], policy DropPolicy) error {
	v.inflight.Add(1)
	defer v.inflight.Add(-1)
	if v.sealed.Load() {
		return ErrClosed
	}
	r := v.ring(p.Src*v.n + p.Dst)
	if !r.push(p, time.Now().UnixNano()) {
		if policy == DropNew {
			v.counts[p.Src].dropped.Add(1)
			return ErrBackpressure
		}
		if err := v.pushBlocking(r, p); err != nil {
			return err
		}
	}
	c := &v.counts[p.Src]
	c.enqueued.Add(1)
	occ := c.occupied.Add(1)
	for {
		m := c.maxDepth.Load()
		if occ <= m || c.maxDepth.CompareAndSwap(m, occ) {
			break
		}
	}
	orBit(&v.nonempty[p.Src*v.words+p.Dst>>6], 1<<uint(p.Dst&63))
	select {
	case v.notify <- struct{}{}:
	default:
	}
	return nil
}

// pushBlocking parks the sender until the ring has room or the shard
// seals. The waiter count is raised before each retry so the consumer's
// post-pop check cannot miss a sender that observed the ring full just
// before the pop freed a slot.
func (v *voqShard[T]) pushBlocking(r *voqRing[T], p Packet[T]) error {
	t0 := time.Now()
	v.blockMu.Lock()
	defer v.blockMu.Unlock()
	for {
		if v.sealed.Load() {
			return ErrClosed
		}
		v.waiters.Add(1)
		if r.push(p, time.Now().UnixNano()) {
			v.waiters.Add(-1)
			break
		}
		v.space.Wait()
		v.waiters.Add(-1)
	}
	if v.met != nil {
		v.met.EnqueueWait.ObserveSince(t0)
	}
	return nil
}

// signalSpace wakes parked senders after the scheduler freed ring
// slots. The lock is taken only when somebody is actually parked.
func (v *voqShard[T]) signalSpace() {
	if v.waiters.Load() == 0 {
		return
	}
	v.blockMu.Lock()
	v.space.Broadcast()
	v.blockMu.Unlock()
}

// seal stops admissions: senders racing the seal either complete their
// publish (and are observed by the final drain) or see ErrClosed, and
// parked senders are woken to see it too. On return every accepted
// packet is in its ring.
func (v *voqShard[T]) seal() {
	v.blockMu.Lock()
	v.sealed.Store(true)
	v.space.Broadcast()
	v.blockMu.Unlock()
	for v.inflight.Load() != 0 {
		runtime.Gosched()
	}
}

// nextSet returns the smallest bit index in [from, hi) set in the
// input's bitmap slice bm, or -1.
func nextSet(bm []atomic.Uint64, from, hi int) int {
	if from >= hi {
		return -1
	}
	w := from >> 6
	word := bm[w].Load() & (^uint64(0) << uint(from&63))
	for {
		if word != 0 {
			i := w<<6 + bits.TrailingZeros64(word)
			if i >= hi {
				return -1
			}
			return i
		}
		w++
		if w >= len(bm) || w<<6 >= hi {
			return -1
		}
		word = bm[w].Load()
	}
}

// clearIfEmpty drops the (in, out) nonempty bit when the ring has
// drained, then re-checks: a producer that published between the
// emptiness check and the clear re-raises its bit after the push, but a
// producer that published *before* the clear would be lost without the
// re-check.
func (v *voqShard[T]) clearIfEmpty(in, out int, r *voqRing[T]) {
	w := &v.nonempty[in*v.words+out>>6]
	bit := uint64(1) << uint(out&63)
	andNotBit(w, bit)
	if r.size() > 0 {
		orBit(w, bit)
	}
}

// buildFrame extracts a conflict-free partial matching — at most one
// packet per input and per output — into fr and completes it to a full
// permutation. It reports false when every ring is empty. Inputs are
// scanned from a rotating start, and each input scans its outputs from
// its own rotating pointer, so repeated frames cycle through contending
// pairs instead of always favouring low indices. Consumer only.
func (v *voqShard[T]) buildFrame(fr *frame[T]) bool {
	tick := time.Now()
	tickNano := tick.UnixNano()
	n := v.n
	partial, taken := v.partial, v.taken
	for i := range partial {
		partial[i] = Idle
	}
	for i := range taken {
		taken[i] = false
	}
	fr.reset()
	// Multicast heads first: a fan-out packet needs its input and every
	// one of its destinations free, so it gets first pick of the outputs
	// before the unicast matching fragments them.
	if v.mcastQueued.Load() > 0 {
		v.claimMulticast(fr, partial, taken, tickNano)
	}
	for k := 0; k < n; k++ {
		in := (v.rrIn + k) % n
		if partial[in] != Idle {
			continue // input claimed by a multicast head
		}
		if v.counts[in].occupied.Load() == 0 {
			continue
		}
		bm := v.nonempty[in*v.words : (in+1)*v.words]
		// Scan candidate outputs from the rotating pointer, wrapping
		// once: non-empty per the bitmap and not yet claimed.
		start := v.rrOut[in]
		matched := false
		for pass := 0; pass < 2 && !matched; pass++ {
			lo, hi := start, n
			if pass == 1 {
				lo, hi = 0, start
			}
			for j := nextSet(bm, lo, hi); j != -1; j = nextSet(bm, j+1, hi) {
				if taken[j] {
					continue
				}
				r := v.rings[in*n+j].Load()
				if r == nil {
					// A bit with no ring cannot happen (the bit is set
					// after the push); clear defensively.
					andNotBit(&bm[j>>6], 1<<uint(j&63))
					continue
				}
				pkt, enq, ok := r.pop()
				if !ok {
					v.clearIfEmpty(in, j, r)
					continue
				}
				if r.size() == 0 {
					v.clearIfEmpty(in, j, r)
				}
				v.counts[in].occupied.Add(-1)
				wait := time.Duration(tickNano - enq)
				if v.met != nil {
					v.met.VOQWait.Observe(wait)
				}
				pkt.Trace.SpanDur("voq_wait", time.Unix(0, enq), wait, "")
				partial[in] = j
				taken[j] = true
				fr.pkts = append(fr.pkts, pkt)
				fr.srcs = append(fr.srcs, in)
				fr.dsts = append(fr.dsts, j)
				v.rrOut[in] = (j + 1) % n
				matched = true
				break
			}
		}
	}
	if len(fr.pkts) == 0 {
		return false
	}
	v.rrIn = (v.rrIn + 1) % n
	v.signalSpace()
	if v.met != nil {
		v.met.Match.ObserveSince(tick)
	}
	if fr.mcast {
		// A frame with fan-out is a mapping, not a permutation: rebuild
		// the output-major view from the claimed pairs. Unassigned
		// outputs stay Idle — the copy-network compiler parks them.
		for i := range fr.outSrc {
			fr.outSrc[i] = Idle
		}
		for k, d := range fr.dsts {
			fr.outSrc[d] = fr.srcs[k]
		}
		return true
	}
	completeInto(partial, fr.dest, taken)
	return true
}

// occupancy returns the shard's total queued packets, multicast
// included.
func (v *voqShard[T]) occupancy() int64 {
	total := v.mcastQueued.Load()
	for i := range v.counts {
		total += v.counts[i].occupied.Load()
	}
	return total
}

// snapshot copies the per-input counters.
func (v *voqShard[T]) snapshot() []VOQInputCounters {
	out := make([]VOQInputCounters, v.n)
	for i := range v.counts {
		c := &v.counts[i]
		out[i] = VOQInputCounters{
			Enqueued: c.enqueued.Load(),
			Dropped:  c.dropped.Load(),
			Occupied: c.occupied.Load(),
			MaxDepth: c.maxDepth.Load(),
		}
	}
	return out
}
