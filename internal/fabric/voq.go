package fabric

import (
	"math/bits"
	"sync"
	"time"
)

// DropPolicy selects what Send does when a packet's virtual output
// queue is full.
type DropPolicy int

const (
	// DropNew rejects the incoming packet immediately (tail drop). The
	// caller sees ErrBackpressure and the packet is never accepted, so
	// the fabric's exactly-once delivery guarantee is unaffected.
	DropNew DropPolicy = iota
	// Block makes Send wait until the queue has room (or the fabric
	// closes), pushing backpressure into the caller.
	Block
)

func (p DropPolicy) String() string {
	switch p {
	case DropNew:
		return "drop-new"
	case Block:
		return "block"
	}
	return "unknown"
}

// voqInputCounters is the per-input slice of VOQ accounting, exported
// through VOQSnapshot.
type voqInputCounters struct {
	enqueued int64 // packets accepted into this input's queues
	dropped  int64 // packets rejected by tail drop
	occupied int64 // packets currently queued
	maxDepth int64 // high-water mark of occupied
}

// queued is one packet sitting in a VOQ, stamped with its enqueue time
// so extraction can histogram the sojourn (the paper's queueing delay,
// as opposed to the setup and transmission delays the planes measure).
type queued[T any] struct {
	pkt Packet[T]
	enq time.Time
}

// voqSet is the fabric's ingress stage: one bounded FIFO per
// (input, output) pair — N² virtual output queues — so a burst to one
// hot output cannot head-of-line block traffic from the same input to
// other outputs. All state is guarded by one mutex; the scheduler and
// senders interleave short critical sections (enqueue one packet,
// extract one matching).
type voqSet[T any] struct {
	n     int
	depth int // per-queue bound

	// met, when non-nil, receives VOQ-wait and matching latency; the
	// fabric points it at its own metrics after construction so unit
	// tests can build bare voqSets.
	met *metrics

	mu     sync.Mutex
	space  *sync.Cond    // signalled when a queue drains (Block policy)
	queues [][]queued[T] // queues[in*n+out]
	counts []voqInputCounters
	closed bool

	// nonempty[in] is a bitmap of outputs with a queued packet from
	// `in`, so the scheduler finds candidates with find-next-set-bit
	// scans instead of walking all N queues per input.
	nonempty [][]uint64

	// Round-robin pointers in the style of iSLIP: rrIn rotates which
	// input gets first pick each frame, rrOut[i] rotates which output
	// input i scans first, so no (input, output) pair is starved.
	rrIn  int
	rrOut []int

	// notify wakes the scheduler when work arrives; capacity 1 so
	// enqueues never block on it.
	notify chan struct{}
}

func newVOQSet[T any](n, depth int) *voqSet[T] {
	v := &voqSet[T]{
		n:        n,
		depth:    depth,
		queues:   make([][]queued[T], n*n),
		counts:   make([]voqInputCounters, n),
		nonempty: make([][]uint64, n),
		rrOut:    make([]int, n),
		notify:   make(chan struct{}, 1),
	}
	words := (n + 63) / 64
	for i := range v.nonempty {
		v.nonempty[i] = make([]uint64, words)
	}
	v.space = sync.NewCond(&v.mu)
	return v
}

// nextSet returns the smallest bit index in [from, hi) set in bm, or -1.
func nextSet(bm []uint64, from, hi int) int {
	if from >= hi {
		return -1
	}
	w := from >> 6
	word := bm[w] & (^uint64(0) << uint(from&63))
	for {
		if word != 0 {
			i := w<<6 + bits.TrailingZeros64(word)
			if i >= hi {
				return -1
			}
			return i
		}
		w++
		if w >= len(bm) || w<<6 >= hi {
			return -1
		}
		word = bm[w]
	}
}

// enqueue appends p to its VOQ, honouring the drop policy. It reports
// whether the packet was accepted; a false return with a nil error
// never happens.
func (v *voqSet[T]) enqueue(p Packet[T], policy DropPolicy) error {
	idx := p.Src*v.n + p.Dst
	v.mu.Lock()
	defer v.mu.Unlock()
	for len(v.queues[idx]) >= v.depth {
		if policy == DropNew {
			v.counts[p.Src].dropped++
			return ErrBackpressure
		}
		v.space.Wait()
		if v.closed {
			return ErrClosed
		}
	}
	if v.closed {
		return ErrClosed
	}
	v.queues[idx] = append(v.queues[idx], queued[T]{pkt: p, enq: time.Now()})
	v.nonempty[p.Src][p.Dst>>6] |= 1 << uint(p.Dst&63)
	c := &v.counts[p.Src]
	c.enqueued++
	c.occupied++
	if c.occupied > c.maxDepth {
		c.maxDepth = c.occupied
	}
	select {
	case v.notify <- struct{}{}:
	default:
	}
	return nil
}

// buildFrame extracts a conflict-free partial matching — at most one
// packet per input and per output — and completes it to a full
// permutation. It returns nil when every queue is empty. Inputs are
// scanned from a rotating start, and each input scans its outputs from
// its own rotating pointer, so repeated frames cycle through contending
// pairs instead of always favouring low indices.
func (v *voqSet[T]) buildFrame() *frame[T] {
	tick := time.Now()
	v.mu.Lock()
	defer v.mu.Unlock()

	partial := make([]int, v.n)
	for i := range partial {
		partial[i] = Idle
	}
	var pkts []Packet[T]
	var srcs, dsts []int
	taken := make([]bool, v.n)
	for k := 0; k < v.n; k++ {
		in := (v.rrIn + k) % v.n
		if v.counts[in].occupied == 0 {
			continue
		}
		// Scan candidate outputs from the rotating pointer, wrapping
		// once: non-empty per the bitmap and not yet claimed.
		out := -1
		start := v.rrOut[in]
		for pass := 0; pass < 2 && out == -1; pass++ {
			lo, hi := start, v.n
			if pass == 1 {
				lo, hi = 0, start
			}
			for j := nextSet(v.nonempty[in], lo, hi); j != -1; j = nextSet(v.nonempty[in], j+1, hi) {
				if !taken[j] {
					out = j
					break
				}
			}
		}
		if out == -1 {
			continue
		}
		q := v.queues[in*v.n+out]
		qd := q[0]
		// Shift rather than reslice so the backing array does not pin
		// every packet ever queued.
		copy(q, q[1:])
		v.queues[in*v.n+out] = q[:len(q)-1]
		if len(q) == 1 {
			v.nonempty[in][out>>6] &^= 1 << uint(out&63)
		}
		v.counts[in].occupied--
		partial[in] = out
		taken[out] = true
		wait := tick.Sub(qd.enq)
		if v.met != nil {
			v.met.VOQWait.Observe(wait)
		}
		qd.pkt.Trace.SpanDur("voq_wait", qd.enq, wait, "")
		pkts = append(pkts, qd.pkt)
		srcs = append(srcs, in)
		dsts = append(dsts, out)
		v.rrOut[in] = (out + 1) % v.n
	}
	if len(pkts) == 0 {
		return nil
	}
	v.rrIn = (v.rrIn + 1) % v.n
	v.space.Broadcast()
	if v.met != nil {
		v.met.Match.ObserveSince(tick)
	}

	dest, err := Complete(partial)
	if err != nil {
		// Unreachable by construction: taken[] guarantees a matching.
		panic("fabric: buildFrame produced a non-matching: " + err.Error())
	}
	return &frame[T]{dest: dest, pkts: pkts, srcs: srcs, dsts: dsts}
}

// occupancy returns the total number of queued packets.
func (v *voqSet[T]) occupancy() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	total := int64(0)
	for i := range v.counts {
		total += v.counts[i].occupied
	}
	return total
}

// close wakes blocked senders so they observe the closed state.
func (v *voqSet[T]) close() {
	v.mu.Lock()
	v.closed = true
	v.space.Broadcast()
	v.mu.Unlock()
}

// snapshot copies the per-input counters.
func (v *voqSet[T]) snapshot() []VOQInputCounters {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]VOQInputCounters, v.n)
	for i, c := range v.counts {
		out[i] = VOQInputCounters{
			Enqueued: c.enqueued,
			Dropped:  c.dropped,
			Occupied: c.occupied,
			MaxDepth: c.maxDepth,
		}
	}
	return out
}
