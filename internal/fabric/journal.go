package fabric

import (
	"repro/internal/journal"
	"repro/internal/netsim"
)

// JournalCheckpoint builds the fabric's slice of a journal checkpoint
// record: aggregate packet books, per-plane serving counters, and a
// digest of each plane's gate-level recorder state. It is the function
// to install (possibly wrapped to add engine counters) via
// journal.Journal.SetCheckpointSource. Counters are read atomically but
// independently, exactly like Stats: a checkpoint taken mid-flight may
// be a few packets out of phase between fields, which is why replay
// audits the journal-assigned per-kind record counts and treats these
// as chain-protected context.
func (f *Fabric[T]) JournalCheckpoint() journal.Checkpoint {
	cp := journal.Checkpoint{
		Accepted:  uint64(f.met.accepted.Load()),
		Delivered: uint64(f.met.delivered.Load()),
		Lost:      uint64(f.met.lost.Load()),
		Frames:    uint64(f.met.frames.Load()),
	}
	for _, p := range f.planes {
		cp.Planes = append(cp.Planes, journal.PlaneCheckpoint{
			Frames:         uint64(p.frames.Load()),
			Packets:        uint64(p.packets.Load()),
			Rounds:         uint64(p.rounds.Load()),
			Failovers:      uint64(p.failovers.Load()),
			RecorderDigest: recorderDigest(p.eng.Recorder()),
		})
	}
	return cp
}

// recorderDigest folds a flight recorder's per-stage totals into one
// FNV-1a word (0 when accounting is off) — a compact, chain-protected
// fingerprint of the plane's cumulative gate activity.
func recorderDigest(rec *netsim.Recorder) uint64 {
	if rec == nil {
		return 0
	}
	h := journal.NewHash64()
	for s := 0; s < rec.Stages(); s++ {
		t := rec.StageTotals(s)
		h.Int(t.Traversed)
		h.Int(t.Flips)
		h.Int(t.Forced)
		h.Int(t.FaultHits)
		h.Int(t.Bcast)
	}
	return h.Sum()
}
