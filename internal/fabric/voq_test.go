package fabric

import (
	"math/rand"
	"testing"
)

// TestBuildFrameConflictFree fills the VOQs with random traffic and
// checks every extracted frame is a conflict-free matching: at most one
// packet per input and per output, dest consistent with the packets.
func TestBuildFrameConflictFree(t *testing.T) {
	const n = 16
	v := newVOQSet[int](n, 8)
	rng := rand.New(rand.NewSource(2))
	queued := 0
	for i := 0; i < 300; i++ {
		p := Packet[int]{Src: rng.Intn(n), Dst: rng.Intn(n), Payload: i}
		if v.enqueue(p, DropNew) == nil {
			queued++
		}
	}
	drained := 0
	for {
		fr := v.buildFrame()
		if fr == nil {
			break
		}
		if err := fr.dest.Validate(); err != nil {
			t.Fatalf("frame dest is not a permutation: %v", err)
		}
		seenIn := make(map[int]bool)
		seenOut := make(map[int]bool)
		for k, pkt := range fr.pkts {
			if seenIn[pkt.Src] || seenOut[pkt.Dst] {
				t.Fatalf("frame reuses input %d or output %d", pkt.Src, pkt.Dst)
			}
			seenIn[pkt.Src] = true
			seenOut[pkt.Dst] = true
			if fr.srcs[k] != pkt.Src || fr.dsts[k] != pkt.Dst {
				t.Fatal("frame coordinate slices disagree with the packets")
			}
			if fr.dest[pkt.Src] != pkt.Dst {
				t.Fatalf("dest[%d]=%d but packet wants %d", pkt.Src, fr.dest[pkt.Src], pkt.Dst)
			}
		}
		drained += len(fr.pkts)
	}
	if drained != queued {
		t.Fatalf("drained %d of %d queued packets", drained, queued)
	}
	if occ := v.occupancy(); occ != 0 {
		t.Fatalf("VOQs should be empty, occupancy %d", occ)
	}
}

// TestVOQTailDrop fills one queue to its bound and checks the drop
// accounting.
func TestVOQTailDrop(t *testing.T) {
	v := newVOQSet[int](4, 2)
	p := Packet[int]{Src: 1, Dst: 3}
	for i := 0; i < 2; i++ {
		if err := v.enqueue(p, DropNew); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	if err := v.enqueue(p, DropNew); err != ErrBackpressure {
		t.Fatalf("third enqueue should tail-drop, got %v", err)
	}
	// A different output from the same input still has room.
	if err := v.enqueue(Packet[int]{Src: 1, Dst: 0}, DropNew); err != nil {
		t.Fatalf("other VOQ of the same input must be independent: %v", err)
	}
	s := v.snapshot()
	if s[1].Enqueued != 3 || s[1].Dropped != 1 || s[1].Occupied != 3 || s[1].MaxDepth != 3 {
		t.Fatalf("input 1 counters wrong: %+v", s[1])
	}
}

// TestVOQRoundRobinRotates checks the schedulers' pointers rotate: two
// inputs contending for one output must alternate wins across frames.
func TestVOQRoundRobinRotates(t *testing.T) {
	const n = 4
	v := newVOQSet[int](n, 8)
	for i := 0; i < 4; i++ {
		v.enqueue(Packet[int]{Src: 0, Dst: 2, Payload: 100 + i}, DropNew)
		v.enqueue(Packet[int]{Src: 1, Dst: 2, Payload: 200 + i}, DropNew)
	}
	winners := make(map[int]int)
	for {
		fr := v.buildFrame()
		if fr == nil {
			break
		}
		if len(fr.pkts) != 1 {
			t.Fatalf("one contended output admits one packet per frame, got %d", len(fr.pkts))
		}
		winners[fr.pkts[0].Src]++
	}
	if winners[0] != 4 || winners[1] != 4 {
		t.Fatalf("rotating pointer should split wins 4/4, got %v", winners)
	}
}
