package fabric

import (
	"math/rand"
	"testing"
	"time"
)

// drainOne extracts one frame from the shard, or nil when it is empty.
func drainOne(t *testing.T, v *voqShard[int]) *frame[int] {
	t.Helper()
	fr := newFrame[int](v.n)
	if !v.buildFrame(fr) {
		return nil
	}
	return fr
}

// TestVOQRingWraps pushes and pops through several times the ring's
// capacity, checking FIFO order and the full/empty edges across the
// sequence-number wraparound of slot reuse.
func TestVOQRingWraps(t *testing.T) {
	r := newVOQRing[int](4)
	next := 0
	for round := 0; round < 10; round++ {
		for i := 0; i < 4; i++ {
			if !r.push(Packet[int]{Payload: next + i}, time.Now().UnixNano()) {
				t.Fatalf("round %d: push %d refused below capacity", round, i)
			}
		}
		if r.push(Packet[int]{Payload: -1}, time.Now().UnixNano()) {
			t.Fatalf("round %d: push beyond capacity accepted", round)
		}
		for i := 0; i < 4; i++ {
			p, _, ok := r.pop()
			if !ok {
				t.Fatalf("round %d: pop %d found ring empty", round, i)
			}
			if p.Payload != next+i {
				t.Fatalf("round %d: popped %d, want %d (FIFO broken)", round, p.Payload, next+i)
			}
		}
		if _, _, ok := r.pop(); ok {
			t.Fatalf("round %d: pop from empty ring succeeded", round)
		}
		next += 4
	}
}

// TestBuildFrameConflictFree fills a shard with random traffic and
// checks every extracted frame is a conflict-free matching: at most one
// packet per input and per output, dest consistent with the packets.
func TestBuildFrameConflictFree(t *testing.T) {
	const n = 16
	v := newVOQShard[int](n, 8, nil)
	rng := rand.New(rand.NewSource(2))
	queued := 0
	for i := 0; i < 300; i++ {
		p := Packet[int]{Src: rng.Intn(n), Dst: rng.Intn(n), Payload: i}
		if v.enqueue(p, DropNew) == nil {
			queued++
		}
	}
	drained := 0
	for {
		fr := drainOne(t, v)
		if fr == nil {
			break
		}
		if err := fr.dest.Validate(); err != nil {
			t.Fatalf("frame dest is not a permutation: %v", err)
		}
		seenIn := make(map[int]bool)
		seenOut := make(map[int]bool)
		for k, pkt := range fr.pkts {
			if seenIn[pkt.Src] || seenOut[pkt.Dst] {
				t.Fatalf("frame reuses input %d or output %d", pkt.Src, pkt.Dst)
			}
			seenIn[pkt.Src] = true
			seenOut[pkt.Dst] = true
			if fr.srcs[k] != pkt.Src || fr.dsts[k] != pkt.Dst {
				t.Fatal("frame coordinate slices disagree with the packets")
			}
			if fr.dest[pkt.Src] != pkt.Dst {
				t.Fatalf("dest[%d]=%d but packet wants %d", pkt.Src, fr.dest[pkt.Src], pkt.Dst)
			}
		}
		drained += len(fr.pkts)
	}
	if drained != queued {
		t.Fatalf("drained %d of %d queued packets", drained, queued)
	}
	if occ := v.occupancy(); occ != 0 {
		t.Fatalf("VOQs should be empty, occupancy %d", occ)
	}
}

// TestVOQTailDrop fills one ring to its bound and checks the drop
// accounting.
func TestVOQTailDrop(t *testing.T) {
	v := newVOQShard[int](4, 2, nil)
	p := Packet[int]{Src: 1, Dst: 3}
	for i := 0; i < 2; i++ {
		if err := v.enqueue(p, DropNew); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	if err := v.enqueue(p, DropNew); err != ErrBackpressure {
		t.Fatalf("third enqueue should tail-drop, got %v", err)
	}
	// A different output from the same input still has room.
	if err := v.enqueue(Packet[int]{Src: 1, Dst: 0}, DropNew); err != nil {
		t.Fatalf("other VOQ of the same input must be independent: %v", err)
	}
	s := v.snapshot()
	if s[1].Enqueued != 3 || s[1].Dropped != 1 || s[1].Occupied != 3 || s[1].MaxDepth != 3 {
		t.Fatalf("input 1 counters wrong: %+v", s[1])
	}
}

// TestVOQRoundRobinRotates checks the scheduler's pointers rotate: two
// inputs contending for one output must split wins evenly across
// frames.
func TestVOQRoundRobinRotates(t *testing.T) {
	const n = 4
	v := newVOQShard[int](n, 8, nil)
	for i := 0; i < 4; i++ {
		v.enqueue(Packet[int]{Src: 0, Dst: 2, Payload: 100 + i}, DropNew)
		v.enqueue(Packet[int]{Src: 1, Dst: 2, Payload: 200 + i}, DropNew)
	}
	winners := make(map[int]int)
	for {
		fr := drainOne(t, v)
		if fr == nil {
			break
		}
		if len(fr.pkts) != 1 {
			t.Fatalf("one contended output admits one packet per frame, got %d", len(fr.pkts))
		}
		winners[fr.pkts[0].Src]++
	}
	if winners[0] != 4 || winners[1] != 4 {
		t.Fatalf("rotating pointer should split wins 4/4, got %v", winners)
	}
}

// TestVOQSealRefusesSenders checks the close protocol's admission gate:
// after seal, enqueue returns ErrClosed and the shard still drains what
// it had accepted.
func TestVOQSealRefusesSenders(t *testing.T) {
	v := newVOQShard[int](4, 8, nil)
	if err := v.enqueue(Packet[int]{Src: 0, Dst: 1}, DropNew); err != nil {
		t.Fatalf("enqueue before seal: %v", err)
	}
	v.seal()
	if err := v.enqueue(Packet[int]{Src: 2, Dst: 3}, DropNew); err != ErrClosed {
		t.Fatalf("enqueue after seal should return ErrClosed, got %v", err)
	}
	fr := drainOne(t, v)
	if fr == nil || len(fr.pkts) != 1 || fr.pkts[0].Src != 0 || fr.pkts[0].Dst != 1 {
		t.Fatalf("sealed shard must still drain its accepted packet, got %+v", fr)
	}
	if drainOne(t, v) != nil {
		t.Fatal("shard should be empty after the drain")
	}
}
