package fabric

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/netsim"
	"repro/internal/perm"
)

// ErrPlaneDown reports a route attempt on an unhealthy plane; the
// dispatcher fails the frame over to a surviving plane, so callers see
// it (wrapped) only when every plane is out of rotation.
var ErrPlaneDown = errors.New("fabric: plane unhealthy")

// errPlaneDown is the internal alias the plane paths return.
var errPlaneDown = ErrPlaneDown

// plane is one switching plane: an independent engine instance (its own
// worker pool and plan cache) over its own copy of B(n). Planes share
// nothing, so K planes route K frames concurrently — the packet-switch
// analogue of a multi-plane fabric card.
type plane struct {
	id      int
	eng     *engine.Engine[int]
	ident   []int    // read-only identity payload, reused by every frame
	met     *metrics // fabric-level stage histograms; nil in bare unit tests
	healthy atomic.Bool

	frames    atomic.Int64 // frames this plane routed successfully
	packets   atomic.Int64 // payload packets inside those frames
	rounds    atomic.Int64 // collective rounds this plane routed successfully
	failovers atomic.Int64 // frames or rounds this plane rejected or misrouted

	// Injected damage: stuck switches simulated through the concurrent
	// gate-level fabric of internal/netsim. Guarded by mu; sim is
	// rebuilt whenever the fault set changes.
	mu     sync.Mutex
	faults []core.Fault
	sim    *netsim.Engine
}

func newPlane(id int, cfg engine.Config, met *metrics) (*plane, error) {
	eng, err := engine.New[int](cfg)
	if err != nil {
		return nil, fmt.Errorf("fabric: plane %d: %w", id, err)
	}
	p := &plane{id: id, eng: eng, ident: make([]int, eng.Network().N()), met: met}
	for i := range p.ident {
		p.ident[i] = i
	}
	p.healthy.Store(true)
	return p, nil
}

// inject sets the plane's stuck-switch faults. An empty set heals the
// plane and brings it back into rotation.
func (p *plane) inject(faults []core.Fault) {
	p.mu.Lock()
	p.faults = append([]core.Fault(nil), faults...)
	if len(faults) == 0 {
		p.sim = nil
	} else {
		p.sim = netsim.NewWithFaults(p.eng.Network(), faults)
		if p.met != nil {
			p.sim.SetTimingHook(p.met.FaultCheck.Observe)
		}
		// The fault-check pass contributes only fault-hit coordinates:
		// the serving engine already accounts traversals and flips, and
		// a check pass moves no payload.
		p.sim.SetFaultRecorder(p.eng.Recorder())
	}
	p.mu.Unlock()
	p.healthy.Store(len(faults) == 0)
}

// checkFaults runs a frame's destination vector through the damaged
// gate-level simulator and reports whether it still self-routes
// cleanly. A misroute means the plane's hardware would deliver at least
// one tag to the wrong port — the output-port tag check every frame
// carries — so the frame must be re-routed elsewhere.
func (p *plane) checkFaults(dest perm.Perm) bool {
	p.mu.Lock()
	sim := p.sim
	p.mu.Unlock()
	if sim == nil {
		return true
	}
	res, _ := sim.RouteOne(dest)
	return res.OK()
}

// routeFrame serves one frame synchronously in the caller's goroutine:
// the full permutation dest, carrying real packets from the inputs in
// srcs. fs must be a FrameServer of this plane's engine owned by the
// calling goroutine. On success every real packet has been verified at
// its output port — FrameServer.Serve walks each packet's path gate by
// gate through the computed setting — and any error means nothing was
// delivered, so the caller must fail the frame over to another plane.
func (p *plane) routeFrame(fs *engine.FrameServer[int], dest perm.Perm, srcs []int) error {
	if !p.healthy.Load() {
		p.failovers.Add(1)
		return errPlaneDown
	}
	if !p.checkFaults(dest) {
		// First misroute detected: take the plane out of rotation. Its
		// engine keeps running so a later inject(nil) can restore it.
		p.healthy.Store(false)
		p.failovers.Add(1)
		return fmt.Errorf("fabric: plane %d misroutes frame: %w", p.id, errPlaneDown)
	}
	rtt := time.Now()
	err := fs.Serve(dest, srcs)
	if p.met != nil {
		p.met.PlaneRTT.ObserveSince(rtt)
	}
	if err != nil {
		p.healthy.Store(false)
		p.failovers.Add(1)
		return fmt.Errorf("fabric: plane %d: %w", p.id, err)
	}
	p.frames.Add(1)
	p.packets.Add(int64(len(srcs)))
	return nil
}

// routeRound serves one whole-permutation collective round: every port
// carries a real chunk, so every output is verified. The returned plan
// kind and cache-hit flag feed the collective layer's self-routed /
// fallback accounting. As with route, any error means nothing moved
// and the caller fails the round over to another plane.
func (p *plane) routeRound(dest perm.Perm) (engine.PlanKind, bool, error) {
	if !p.healthy.Load() {
		p.failovers.Add(1)
		return 0, false, errPlaneDown
	}
	if !p.checkFaults(dest) {
		p.healthy.Store(false)
		p.failovers.Add(1)
		return 0, false, fmt.Errorf("fabric: plane %d misroutes round: %w", p.id, errPlaneDown)
	}
	rtt := time.Now()
	resp := p.eng.Route(dest, p.ident)
	if p.met != nil {
		p.met.PlaneRTT.ObserveSince(rtt)
	}
	if resp.Err != nil {
		p.healthy.Store(false)
		p.failovers.Add(1)
		return 0, false, fmt.Errorf("fabric: plane %d: %w", p.id, resp.Err)
	}
	verify := time.Now()
	for i, d := range dest {
		if resp.Data[d] != i {
			p.healthy.Store(false)
			p.failovers.Add(1)
			return 0, false, fmt.Errorf("fabric: plane %d delivered port %d to the wrong source: %w",
				p.id, d, errPlaneDown)
		}
	}
	if p.met != nil {
		p.met.Verify.ObserveSince(verify)
	}
	p.rounds.Add(1)
	return resp.Kind, resp.CacheHit, nil
}

// roundWindow is how many pipelined round submissions a plane keeps in
// flight in its engine queue during routeRoundBatch.
const roundWindow = 32

// routeRoundBatch serves a run of collective rounds with submissions
// pipelined through the engine's request queue: up to roundWindow
// rounds are in flight at once, so the engine worker drains them in
// batches and consecutive rounds amortize the sleep/wake handoff a
// synchronous routeRound pays per round. out[i] receives dests[i]'s
// verified result. On the first failure the plane is taken out of
// rotation and the number of rounds verified so far is returned; the
// caller re-routes the rest on another plane (rounds carry only the
// identity payload, so a round abandoned in flight moves nothing a
// retry could duplicate).
func (p *plane) routeRoundBatch(dests []perm.Perm, out []RoundResult) (int, error) {
	if !p.healthy.Load() {
		p.failovers.Add(1)
		return 0, errPlaneDown
	}
	fail := func(done int, err error) (int, error) {
		p.healthy.Store(false)
		p.failovers.Add(1)
		p.rounds.Add(int64(done))
		return done, err
	}
	var ring [roundWindow]<-chan engine.Response[int]
	// subAt[k] is when round k's submission entered the engine queue;
	// the receive side turns it into the round's pipelined sojourn.
	var subAt [roundWindow]time.Time
	next := 0
	for done := 0; done < len(dests); done++ {
		for next < len(dests) && next-done < roundWindow {
			if !p.checkFaults(dests[next]) {
				// Stop feeding the pipeline; submitted-but-uncollected
				// rounds are abandoned (their buffered responses are
				// simply dropped) and retried elsewhere.
				return fail(done, fmt.Errorf("fabric: plane %d misroutes round: %w", p.id, errPlaneDown))
			}
			subAt[next%roundWindow] = time.Now()
			ring[next%roundWindow] = p.eng.Submit(engine.Request[int]{Dest: dests[next], Data: p.ident})
			next++
		}
		resp := <-ring[done%roundWindow]
		if p.met != nil {
			p.met.PlaneRTT.ObserveSince(subAt[done%roundWindow])
		}
		if resp.Err != nil {
			return fail(done, fmt.Errorf("fabric: plane %d: %w", p.id, resp.Err))
		}
		verify := time.Now()
		for i, d := range dests[done] {
			if resp.Data[d] != i {
				return fail(done, fmt.Errorf("fabric: plane %d delivered port %d to the wrong source: %w",
					p.id, d, errPlaneDown))
			}
		}
		if p.met != nil {
			p.met.Verify.ObserveSince(verify)
		}
		out[done] = RoundResult{Plane: p.id, Kind: resp.Kind, CacheHit: resp.CacheHit}
	}
	p.rounds.Add(int64(len(dests)))
	return len(dests), nil
}

// probe answers one diagnosis probe on this plane: load d's tags, let
// the switches set themselves, report where every tag landed. On a
// damaged plane the pass runs through the gate-level simulator carrying
// the injected faults — the realized permutation then bears the fault's
// misroute fingerprint; on a healthy plane it is the engine's
// gate-faithful ProbeRoute. Either way the serving path's plan cache
// and looping fallback are bypassed: a probe reports what the
// self-setting hardware does, not what a corrected setup would do.
func (p *plane) probe(d perm.Perm) (perm.Perm, error) {
	p.mu.Lock()
	sim := p.sim
	p.mu.Unlock()
	if sim == nil {
		return p.eng.ProbeRoute(d)
	}
	if len(d) != p.eng.Network().N() {
		return nil, fmt.Errorf("fabric: probe size %d does not match N=%d", len(d), p.eng.Network().N())
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	res, _ := sim.RouteOne(d)
	return res.Realized, nil
}

// prewarm resolves and caches dest's plan on this plane's engine so
// the round that follows is a cache hit; errors are ignored — a failed
// prewarm only costs the round its overlap, not its correctness.
func (p *plane) prewarm(dest perm.Perm) {
	_, _, _ = p.eng.Prewarm(dest)
}

func (p *plane) close() { p.eng.Close() }

// PlaneSnapshot is the per-plane slice of a fabric Snapshot.
type PlaneSnapshot struct {
	ID        int             `json:"id"`
	Healthy   bool            `json:"healthy"`
	Faults    int             `json:"faults"`
	Frames    int64           `json:"frames"`
	Packets   int64           `json:"packets"`
	Rounds    int64           `json:"rounds"`
	Failovers int64           `json:"failovers"`
	Engine    engine.Snapshot `json:"engine"`
}

func (p *plane) snapshot() PlaneSnapshot {
	p.mu.Lock()
	nf := len(p.faults)
	p.mu.Unlock()
	return PlaneSnapshot{
		ID:        p.id,
		Healthy:   p.healthy.Load(),
		Faults:    nf,
		Frames:    p.frames.Load(),
		Packets:   p.packets.Load(),
		Rounds:    p.rounds.Load(),
		Failovers: p.failovers.Load(),
		Engine:    p.eng.Stats(),
	}
}
