package fabric

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/netsim"
	"repro/internal/perm"
)

// errPlaneDown reports a route attempt on an unhealthy plane; the
// dispatcher fails the frame over to a surviving plane.
var errPlaneDown = errors.New("fabric: plane unhealthy")

// plane is one switching plane: an independent engine instance (its own
// worker pool and plan cache) over its own copy of B(n). Planes share
// nothing, so K planes route K frames concurrently — the packet-switch
// analogue of a multi-plane fabric card.
type plane struct {
	id      int
	eng     *engine.Engine[int]
	ident   []int // read-only identity payload, reused by every frame
	healthy atomic.Bool

	frames    atomic.Int64 // frames this plane routed successfully
	packets   atomic.Int64 // payload packets inside those frames
	failovers atomic.Int64 // frames this plane rejected or misrouted

	// Injected damage: stuck switches simulated through the concurrent
	// gate-level fabric of internal/netsim. Guarded by mu; sim is
	// rebuilt whenever the fault set changes.
	mu     sync.Mutex
	faults []core.Fault
	sim    *netsim.Engine
}

func newPlane(id int, cfg engine.Config) (*plane, error) {
	eng, err := engine.New[int](cfg)
	if err != nil {
		return nil, fmt.Errorf("fabric: plane %d: %w", id, err)
	}
	p := &plane{id: id, eng: eng, ident: make([]int, eng.Network().N())}
	for i := range p.ident {
		p.ident[i] = i
	}
	p.healthy.Store(true)
	return p, nil
}

// inject sets the plane's stuck-switch faults. An empty set heals the
// plane and brings it back into rotation.
func (p *plane) inject(faults []core.Fault) {
	p.mu.Lock()
	p.faults = append([]core.Fault(nil), faults...)
	if len(faults) == 0 {
		p.sim = nil
	} else {
		p.sim = netsim.NewWithFaults(p.eng.Network(), faults)
	}
	p.mu.Unlock()
	p.healthy.Store(len(faults) == 0)
}

// checkFaults runs a frame's destination vector through the damaged
// gate-level simulator and reports whether it still self-routes
// cleanly. A misroute means the plane's hardware would deliver at least
// one tag to the wrong port — the output-port tag check every frame
// carries — so the frame must be re-routed elsewhere.
func (p *plane) checkFaults(dest perm.Perm) bool {
	p.mu.Lock()
	sim := p.sim
	p.mu.Unlock()
	if sim == nil {
		return true
	}
	res, _ := sim.RouteOne(dest)
	return res.OK()
}

// route serves one frame: the full permutation dest, carrying real
// packets from srcs[k] to dsts[k]. On success every packet has been
// verified at its output port; any error means nothing was delivered
// and the caller must fail the frame over to another plane.
func (p *plane) route(dest perm.Perm, srcs, dsts []int) error {
	if !p.healthy.Load() {
		p.failovers.Add(1)
		return errPlaneDown
	}
	if !p.checkFaults(dest) {
		// First misroute detected: take the plane out of rotation. Its
		// engine keeps running so a later inject(nil) can restore it.
		p.healthy.Store(false)
		p.failovers.Add(1)
		return fmt.Errorf("fabric: plane %d misroutes frame: %w", p.id, errPlaneDown)
	}
	resp := p.eng.Route(dest, p.ident)
	if resp.Err != nil {
		p.healthy.Store(false)
		p.failovers.Add(1)
		return fmt.Errorf("fabric: plane %d: %w", p.id, resp.Err)
	}
	// Output-port tag check: input i's payload must sit at port
	// dest[i]. With data[i] = i, the routed vector holds each packet's
	// source at its destination port.
	for k, dst := range dsts {
		if resp.Data[dst] != srcs[k] {
			p.healthy.Store(false)
			p.failovers.Add(1)
			return fmt.Errorf("fabric: plane %d delivered port %d to the wrong source: %w",
				p.id, dst, errPlaneDown)
		}
	}
	p.frames.Add(1)
	p.packets.Add(int64(len(dsts)))
	return nil
}

func (p *plane) close() { p.eng.Close() }

// PlaneSnapshot is the per-plane slice of a fabric Snapshot.
type PlaneSnapshot struct {
	ID        int             `json:"id"`
	Healthy   bool            `json:"healthy"`
	Faults    int             `json:"faults"`
	Frames    int64           `json:"frames"`
	Packets   int64           `json:"packets"`
	Failovers int64           `json:"failovers"`
	Engine    engine.Snapshot `json:"engine"`
}

func (p *plane) snapshot() PlaneSnapshot {
	p.mu.Lock()
	nf := len(p.faults)
	p.mu.Unlock()
	return PlaneSnapshot{
		ID:        p.id,
		Healthy:   p.healthy.Load(),
		Faults:    nf,
		Frames:    p.frames.Load(),
		Packets:   p.packets.Load(),
		Failovers: p.failovers.Load(),
		Engine:    p.eng.Stats(),
	}
}
