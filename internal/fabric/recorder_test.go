package fabric

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/perm"
)

// TestFabricRecorderFrames sends a full permutation's worth of packets
// through a recording fabric and checks the per-plane flight recorder:
// frame traffic counts traversals along real packets' paths only — one
// switch per stage per delivered packet, never the filler ports — and
// no frame is accounted as a full-vector pass.
func TestFabricRecorderFrames(t *testing.T) {
	const logN = 3
	n := 1 << logN
	var mu sync.Mutex
	delivered := 0
	done := make(chan struct{})
	f, err := New[int](Config{LogN: logN, Planes: 1, Record: true}, func(p Packet[int]) {
		mu.Lock()
		if delivered++; delivered == n {
			close(done)
		}
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	d := perm.BitReversal(logN)
	for src, dst := range d {
		if err := f.Send(Packet[int]{Src: src, Dst: dst, Payload: src}); err != nil {
			t.Fatal(err)
		}
	}
	<-done

	rec := f.PlaneRecorder(0)
	if rec == nil {
		t.Fatal("Record: true must attach a plane recorder")
	}
	snap := rec.Snapshot()
	if snap.FullVectors != 0 {
		t.Fatalf("frame traffic recorded %d full vectors, want 0", snap.FullVectors)
	}
	for s := 0; s < snap.Stages; s++ {
		var sum int64
		for _, c := range snap.Counts[s].Traversed {
			sum += c
		}
		if sum != int64(n) {
			t.Fatalf("stage %d traversals = %d, want one per delivered packet = %d", s, sum, n)
		}
	}
	if f.PlaneRecorder(-1) != nil || f.PlaneRecorder(1) != nil {
		t.Fatal("out-of-range PlaneRecorder must be nil")
	}

	off, err := New[int](Config{LogN: logN, Planes: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	if off.PlaneRecorder(0) != nil {
		t.Fatal("recorder must be nil when Config.Record is off")
	}
}

// TestFabricRecorderFaultHits injects a stuck switch and checks the
// per-frame fault-check pass lands fault hits at exactly the damaged
// coordinate, without contributing traversals the serving engine would
// then double count.
func TestFabricRecorderFaultHits(t *testing.T) {
	const logN = 2
	f, err := New[int](Config{LogN: logN, Planes: 2, Record: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	fault := core.Fault{Stage: 0, Switch: 0, StuckCrossed: true}
	if err := f.InjectFaults(0, []core.Fault{fault}); err != nil {
		t.Fatal(err)
	}
	// Identity demands switch (0,0) straight: a fault-check pass over it
	// must record the hit at exactly the damaged coordinate. (Injection
	// takes the plane out of rotation immediately, so the check pass is
	// normally reached only by frames racing the injection — drive it
	// directly here.)
	f.planes[0].checkFaults(perm.Identity(1 << logN))
	// Rounds offered to the damaged plane fail over to plane 1.
	res, err := f.RouteRound(perm.Identity(1<<logN), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plane != 1 {
		t.Fatalf("round served by plane %d, want failover to 1", res.Plane)
	}

	rec0 := f.PlaneRecorder(0)
	if got := rec0.StageTotals(fault.Stage).FaultHits; got < 1 {
		t.Fatalf("fault hits at stage %d = %d, want >= 1", fault.Stage, got)
	}
	snap := rec0.Snapshot()
	for s := 0; s < snap.Stages; s++ {
		for i, c := range snap.Counts[s].FaultHits {
			if c != 0 && (s != fault.Stage || i != fault.Switch) {
				t.Fatalf("fault hit recorded at (%d,%d), only (%d,%d) is damaged", s, i, fault.Stage, fault.Switch)
			}
		}
		// Plane 0 served nothing: the check pass must not add traversals.
		if tot := rec0.StageTotals(s); tot.Traversed != 0 {
			t.Fatalf("fault-check pass added %d traversals at stage %d", tot.Traversed, s)
		}
	}
	rec1 := f.PlaneRecorder(1)
	if rec1.Snapshot().FullVectors != 1 {
		t.Fatalf("plane 1 should have recorded the round as one full vector")
	}
}

// TestFabricHealth checks the readiness view tracks plane rotation.
func TestFabricHealth(t *testing.T) {
	const logN = 2
	f, err := New[int](Config{LogN: logN, Planes: 3, VOQDepth: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	h := f.Health()
	if h.PlanesTotal != 3 || h.PlanesHealthy != 3 {
		t.Fatalf("fresh fabric health = %+v", h)
	}
	if want := int64(4 * 4 * 4); h.VOQCapacity != want {
		t.Fatalf("VOQ capacity = %d, want n*n*depth = %d", h.VOQCapacity, want)
	}
	if err := f.FailPlane(1); err != nil {
		t.Fatal(err)
	}
	if h := f.Health(); h.PlanesHealthy != 2 {
		t.Fatalf("after FailPlane health = %+v", h)
	}
	if err := f.RestorePlane(1); err != nil {
		t.Fatal(err)
	}
	if h := f.Health(); h.PlanesHealthy != 3 {
		t.Fatalf("after RestorePlane health = %+v", h)
	}
}
