package fabric

import (
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/journal"
	"repro/internal/mcast"
	"repro/internal/obs"
)

// MulticastPacket is one fan-out unit of traffic: deliver Payload from
// input port Src to every output port in Dsts, in one frame, through
// the copy network. Dsts is copied on Send, so the caller may reuse
// the slice. Trace follows the same ownership rules as Packet.Trace.
type MulticastPacket[T any] struct {
	Src     int
	Dsts    []int
	Payload T
	Trace   *obs.Trace
}

// mpayload is the ring payload a multicast packet travels as: the
// destination set rides inside a regular Packet (Dst holds the first
// destination, which doubles as the flow-hash key), so the multicast
// ingress reuses the same lock-free ring as the unicast VOQs.
type mpayload[T any] struct {
	dsts []int
	data T
}

// SendMulticast offers one fan-out packet to the fabric. It returns
// nil when the packet is accepted — the fabric then delivers exactly
// one verified copy to every destination, all within a single frame —
// or ErrBackpressure / ErrClosed when it is not. The (Src, Dsts[0])
// flow is pinned to a plane exactly like a unicast flow, so a
// multicast stream keeps FIFO order with the unicast traffic sharing
// its head destination.
func (f *Fabric[T]) SendMulticast(p MulticastPacket[T]) error {
	if p.Src < 0 || p.Src >= f.n {
		return fmt.Errorf("fabric: multicast source %d out of range [0,%d)", p.Src, f.n)
	}
	if len(p.Dsts) == 0 {
		return fmt.Errorf("fabric: multicast packet from %d has no destinations", p.Src)
	}
	if len(p.Dsts) > f.n {
		return fmt.Errorf("fabric: multicast packet from %d targets %d ports, max %d", p.Src, len(p.Dsts), f.n)
	}
	seen := make([]bool, f.n)
	dsts := make([]int, len(p.Dsts))
	for i, d := range p.Dsts {
		if d < 0 || d >= f.n {
			return fmt.Errorf("fabric: multicast destination %d out of range [0,%d)", d, f.n)
		}
		if seen[d] {
			return fmt.Errorf("fabric: multicast destination %d listed twice", d)
		}
		seen[d] = true
		dsts[i] = d
	}
	if f.closed.Load() {
		f.met.rejected.Add(1)
		return ErrClosed
	}
	sh := f.shards[f.shardFor(p.Src, dsts[0])]
	wrapped := Packet[mpayload[T]]{
		Src:     p.Src,
		Dst:     dsts[0],
		Payload: mpayload[T]{dsts: dsts, data: p.Payload},
		Trace:   p.Trace,
	}
	if err := sh.enqueueMcast(wrapped, f.cfg.Policy); err != nil {
		f.met.rejected.Add(1)
		return err
	}
	f.met.accepted.Add(1)
	f.met.mcastAccepted.Add(1)
	return nil
}

// mring returns input in's multicast ring, allocating it on first use.
func (v *voqShard[T]) mring(in int) *voqRing[mpayload[T]] {
	if r := v.mrings[in].Load(); r != nil {
		return r
	}
	fresh := newVOQRing[mpayload[T]](v.depth)
	if v.mrings[in].CompareAndSwap(nil, fresh) {
		return fresh
	}
	return v.mrings[in].Load()
}

// enqueueMcast publishes a wrapped multicast packet into its input's
// ring, honouring the drop policy — the multicast twin of enqueue,
// sharing the seal protocol, the Block parking lot, and the scheduler
// wakeup.
func (v *voqShard[T]) enqueueMcast(p Packet[mpayload[T]], policy DropPolicy) error {
	v.inflight.Add(1)
	defer v.inflight.Add(-1)
	if v.sealed.Load() {
		return ErrClosed
	}
	r := v.mring(p.Src)
	if !r.push(p, time.Now().UnixNano()) {
		if policy == DropNew {
			v.counts[p.Src].dropped.Add(1)
			return ErrBackpressure
		}
		t0 := time.Now()
		v.blockMu.Lock()
		parked := true
		for parked {
			if v.sealed.Load() {
				v.blockMu.Unlock()
				return ErrClosed
			}
			v.waiters.Add(1)
			if r.push(p, time.Now().UnixNano()) {
				v.waiters.Add(-1)
				parked = false
				break
			}
			v.space.Wait()
			v.waiters.Add(-1)
		}
		v.blockMu.Unlock()
		if v.met != nil {
			v.met.EnqueueWait.ObserveSince(t0)
		}
	}
	v.mcastQueued.Add(1)
	select {
	case v.notify <- struct{}{}:
	default:
	}
	return nil
}

// peek exposes the oldest published packet without consuming it.
// Single consumer only; the returned pointer is valid until the next
// pop.
func (r *voqRing[T]) peek() (*Packet[T], bool) {
	pos := r.head.Load()
	s := &r.slots[pos&r.mask]
	if s.turn.Load() != pos>>r.shift<<1+1 {
		return nil, false
	}
	return &s.pkt, true
}

// claimMulticast folds claimable multicast heads into the frame under
// construction: a head is claimed only when its input and every one of
// its destinations are still free, taking the whole fan-out in one
// matching decision (the scheduler analogue of the copy network moving
// all copies in one pass). A blocked head stays queued and retries
// next frame — the rotating input pointer keeps it from being starved
// by always-later scanning. Consumer only.
func (v *voqShard[T]) claimMulticast(fr *frame[T], partial []int, taken []bool, tickNano int64) {
	n := v.n
	for k := 0; k < n; k++ {
		in := (v.rrIn + k) % n
		if partial[in] != Idle {
			continue
		}
		r := v.mrings[in].Load()
		if r == nil {
			continue
		}
		head, ok := r.peek()
		if !ok {
			continue
		}
		blocked := false
		for _, d := range head.Payload.dsts {
			if taken[d] {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		pkt, enq, _ := r.pop()
		v.mcastQueued.Add(-1)
		wait := time.Duration(tickNano - enq)
		if v.met != nil {
			v.met.VOQWait.Observe(wait)
		}
		pkt.Trace.SpanDur("voq_wait", time.Unix(0, enq), wait, "")
		partial[in] = pkt.Payload.dsts[0]
		fr.mcast = true
		fr.mpkts++
		for _, d := range pkt.Payload.dsts {
			taken[d] = true
			fr.pkts = append(fr.pkts, Packet[T]{Src: in, Dst: d, Payload: pkt.Payload.data, Trace: pkt.Trace})
			fr.srcs = append(fr.srcs, in)
			fr.dsts = append(fr.dsts, d)
			fr.mcopies++
		}
	}
}

// routeMcastFrame serves one mapping frame synchronously: compile the
// copy-network plan, fault-check its two B(n) phases against the
// plane's injected damage (the ladder section is not part of the
// plane's binary gate model), then commit the accounting and verify
// every listed output. As with routeFrame, any error means nothing was
// delivered and the caller fails the frame over.
func (p *plane) routeMcastFrame(fs *engine.McastFrameServer[int], m mcast.Mapping, outs []int) error {
	if !p.healthy.Load() {
		p.failovers.Add(1)
		return errPlaneDown
	}
	if err := fs.Prepare(m); err != nil {
		// A compile rejection is a property of the mapping, not the
		// plane: count the refusal but leave the plane in rotation.
		p.failovers.Add(1)
		return fmt.Errorf("fabric: plane %d: %w", p.id, err)
	}
	if !p.checkFaults(fs.DistPerm()) || !p.checkFaults(fs.PermPerm()) {
		p.healthy.Store(false)
		p.failovers.Add(1)
		return fmt.Errorf("fabric: plane %d misroutes mapping frame: %w", p.id, errPlaneDown)
	}
	rtt := time.Now()
	err := fs.ServePrepared(outs)
	if p.met != nil {
		p.met.PlaneRTT.ObserveSince(rtt)
	}
	if err != nil {
		p.healthy.Store(false)
		p.failovers.Add(1)
		return fmt.Errorf("fabric: plane %d: %w", p.id, err)
	}
	p.frames.Add(1)
	p.packets.Add(int64(len(outs)))
	return nil
}

// dispatchMcast is dispatch for mapping frames: same failover walk,
// same coalesced delivery, but the plane serves the frame through its
// McastFrameServer and the books additionally track fan-out copies.
func (f *Fabric[T]) dispatchMcast(home int, servers []*engine.McastFrameServer[int], fr *frame[T]) {
	m := mcast.Mapping(fr.outSrc)
	failed := false
	for attempt := 0; attempt < len(f.planes); attempt++ {
		id := (home + attempt) % len(f.planes)
		p := f.planes[id]
		start := time.Now()
		if err := p.routeMcastFrame(servers[id], m, fr.dsts); err != nil {
			failed = true
			continue
		}
		if failed {
			f.met.failovers.Add(1)
		}
		f.met.delivered.Add(int64(len(fr.pkts)))
		f.met.mcastDelivered.Add(int64(fr.mpkts))
		f.met.mcastCopies.Add(int64(fr.mcopies))
		if f.jrn.Enabled() {
			f.jrn.McastFrame(p.id, fr.outSrc, fr.dsts, journal.DigestPairs(fr.srcs, fr.dsts))
		}
		transit := time.Since(start)
		note := "plane " + fmt.Sprint(p.id)
		for _, pkt := range fr.pkts {
			pkt.Trace.SpanDur("plane_transit", start, transit, note)
		}
		f.met.Coalesce.ObserveValue(int64(len(fr.pkts)))
		switch {
		case f.deliverBatch != nil:
			f.deliverBatch(p.id, fr.pkts)
		case f.deliver != nil:
			for _, pkt := range fr.pkts {
				f.deliver(pkt)
			}
		}
		return
	}
	f.met.lost.Add(int64(len(fr.pkts)))
	for _, pkt := range fr.pkts {
		pkt.Trace.SpanDur("lost", time.Now(), 0, "no healthy plane")
	}
}

// routeMcastRound serves one whole-mapping collective round on this
// plane: the engine resolves (or reuses) the cached copy-network plan,
// fans the identity payload out, and verifies every assigned output by
// its backward walk; the plane then fault-checks the plan's two B(n)
// phases and re-verifies the delivered payload port by port.
func (p *plane) routeMcastRound(m mcast.Mapping) (bool, error) {
	if !p.healthy.Load() {
		p.failovers.Add(1)
		return false, errPlaneDown
	}
	rtt := time.Now()
	resp := p.eng.RouteMulticast(m, p.ident)
	if p.met != nil {
		p.met.PlaneRTT.ObserveSince(rtt)
	}
	if resp.Err != nil {
		p.healthy.Store(false)
		p.failovers.Add(1)
		return false, fmt.Errorf("fabric: plane %d: %w", p.id, resp.Err)
	}
	if !p.checkFaults(resp.Plan.Mcast.Dist) || !p.checkFaults(resp.Plan.Mcast.Perm) {
		// Rounds move only the identity payload, so a post-route fault
		// check loses nothing: the round simply retries elsewhere.
		p.healthy.Store(false)
		p.failovers.Add(1)
		return false, fmt.Errorf("fabric: plane %d misroutes multicast round: %w", p.id, errPlaneDown)
	}
	verify := time.Now()
	for out, src := range m {
		if src >= 0 && resp.Data[out] != src {
			p.healthy.Store(false)
			p.failovers.Add(1)
			return false, fmt.Errorf("fabric: plane %d delivered port %d to the wrong source: %w",
				p.id, out, errPlaneDown)
		}
	}
	if p.met != nil {
		p.met.Verify.ObserveSince(verify)
	}
	p.rounds.Add(1)
	return resp.CacheHit, nil
}

// RouteMulticastRound serves one whole-mapping collective round
// synchronously on a healthy plane: m[out] names the source whose
// chunk output out must receive, -1 leaves the output idle. prefer
// selects the plane to try first, with the same failover walk as
// RouteRound. The mapping is validated before any plane is touched, so
// a bad round can never take a plane out of rotation. Repeated rounds
// hit the plane's plan cache — the collective layer's pipelined
// schedules rely on that.
func (f *Fabric[T]) RouteMulticastRound(m []int, prefer int) (RoundResult, error) {
	if f.closed.Load() {
		return RoundResult{}, ErrClosed
	}
	mm := mcast.Mapping(m)
	if err := mm.Validate(f.n); err != nil {
		return RoundResult{}, fmt.Errorf("fabric: multicast round: %w", err)
	}
	assigned := mm.Assigned()
	if assigned == 0 {
		return RoundResult{}, fmt.Errorf("fabric: multicast round assigns no outputs")
	}
	k := len(f.planes)
	prefer = ((prefer % k) + k) % k
	failed := false
	for attempt := 0; attempt < k; attempt++ {
		p := f.planes[(prefer+attempt)%k]
		hit, err := p.routeMcastRound(mm)
		if err != nil {
			failed = true
			continue
		}
		if failed {
			f.met.roundFailovers.Add(1)
		}
		f.met.rounds.Add(1)
		f.met.mcastRounds.Add(1)
		if f.jrn.Enabled() {
			f.jrn.McastRound(p.id, mm, journal.DigestMapping(mm))
		}
		return RoundResult{Plane: p.id, Kind: engine.PlanMulticast, CacheHit: hit}, nil
	}
	return RoundResult{}, fmt.Errorf("fabric: no healthy plane for multicast round: %w", errPlaneDown)
}
