package fabric

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/diagnose"
	"repro/internal/perm"
)

// TestProbePlaneHealthy: on an undamaged plane a probe must realize
// exactly what the gate model's self-routing pass realizes — for F(n)
// members and misrouting non-members alike — and count into the
// plane engine's probes counter without touching its plan cache.
func TestProbePlaneHealthy(t *testing.T) {
	f, err := New[int](Config{LogN: 3, Planes: 2}, func(Packet[int]) {})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	net := core.New(3)
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		d := perm.Random(net.N(), rng)
		got, err := f.ProbePlane(0, d)
		if err != nil {
			t.Fatal(err)
		}
		if want := net.SelfRoute(d).Realized; !got.Equal(want) {
			t.Fatalf("probe %v realized %v, gate model says %v", d, got, want)
		}
	}
	s := f.Stats()
	if s.Planes[0].Engine.Probes != 20 {
		t.Fatalf("plane 0 probes = %d, want 20", s.Planes[0].Engine.Probes)
	}
	if s.Planes[0].Engine.PlansCached != 0 {
		t.Fatalf("probes populated plane 0's plan cache: %d plans", s.Planes[0].Engine.PlansCached)
	}
}

// TestProbePlaneFaulty: with injected damage, probes must answer from
// the gate-level fault simulator — realized permutations carrying the
// fault's misroute fingerprint, matching core.RouteWithFaults exactly.
func TestProbePlaneFaulty(t *testing.T) {
	f, err := New[int](Config{LogN: 3, Planes: 2}, func(Packet[int]) {})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	faults := []core.Fault{{Stage: 2, Switch: 1, StuckCrossed: true}}
	if err := f.InjectFaults(1, faults); err != nil {
		t.Fatal(err)
	}
	net := core.New(3)
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 20; trial++ {
		d := perm.Random(net.N(), rng)
		got, err := f.ProbePlane(1, d)
		if err != nil {
			t.Fatal(err)
		}
		if want := net.RouteWithFaults(d, faults).Realized; !got.Equal(want) {
			t.Fatalf("probe %v realized %v, fault model says %v", d, got, want)
		}
	}
	// The undamaged sibling keeps answering healthily.
	d := perm.Random(net.N(), rng)
	got, err := f.ProbePlane(0, d)
	if err != nil {
		t.Fatal(err)
	}
	if want := net.SelfRoute(d).Realized; !got.Equal(want) {
		t.Fatalf("healthy plane 0 contaminated: %v vs %v", got, want)
	}
}

// TestProbePlaneErrors: plane range and probe validity are rejected.
func TestProbePlaneErrors(t *testing.T) {
	f, err := New[int](Config{LogN: 3, Planes: 1}, func(Packet[int]) {})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.ProbePlane(1, perm.Identity(8)); err == nil {
		t.Fatal("want error for unknown plane")
	}
	if _, err := f.ProbePlane(0, perm.Identity(4)); err == nil {
		t.Fatal("want size error")
	}
	if err := f.InjectFaults(0, []core.Fault{{Stage: 0, Switch: 0}}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ProbePlane(0, perm.Identity(4)); err == nil {
		t.Fatal("want size error on damaged plane")
	}
	if _, err := f.ProbePlane(0, perm.Perm{0, 0, 1, 2, 3, 4, 5, 6}); err == nil {
		t.Fatal("want validation error on damaged plane")
	}
}

// TestInjectFaultsValidates: out-of-range fault coordinates are
// operator input and must come back as errors, not reach the
// gate-level simulator's constructor panic; a rejected injection must
// leave the plane healthy and undamaged.
func TestInjectFaultsValidates(t *testing.T) {
	f, err := New[int](Config{LogN: 3, Planes: 1}, func(Packet[int]) {})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, bad := range []core.Fault{
		{Stage: -1, Switch: 0},
		{Stage: 5, Switch: 0},
		{Stage: 0, Switch: -1},
		{Stage: 0, Switch: 4},
	} {
		if err := f.InjectFaults(0, []core.Fault{bad}); err == nil {
			t.Fatalf("fault %+v accepted", bad)
		}
	}
	if h := f.Health(); h.PlanesHealthy != 1 {
		t.Fatalf("rejected injections damaged the plane: %+v", h)
	}
	if got, err := f.ProbePlane(0, perm.Identity(8)); err != nil || !got.Equal(perm.Identity(8)) {
		t.Fatalf("plane not pristine after rejected injections: %v, %v", got, err)
	}
}

// TestDiagnoseOverFabricProbe closes the loop the subsystem exists
// for: inject a fault into a live fabric plane, run a diagnosis
// session whose oracle is ProbePlane, and localize the stuck switch —
// while the plane is out of rotation and production traffic is
// unaffected.
func TestDiagnoseOverFabricProbe(t *testing.T) {
	var mu sync.Mutex
	delivered := 0
	f, err := New[int](Config{LogN: 3, Planes: 2, Policy: Block}, func(Packet[int]) {
		mu.Lock()
		delivered++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	fault := core.Fault{Stage: 3, Switch: 2, StuckCrossed: false}
	if err := f.InjectFaults(1, []core.Fault{fault}); err != nil {
		t.Fatal(err)
	}
	p, err := diagnose.New(diagnose.Config{Net: core.New(3), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Diagnose(diagnose.OracleFunc(func(d perm.Perm) (perm.Perm, error) {
		return f.ProbePlane(1, d)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if rank, found := rep.RankOf([]core.Fault{fault}); !found || rank != 1 {
		t.Fatalf("injected fault ranked %d (found %v), want 1; report %+v", rank, found, rep)
	}
	if rep.Healthy {
		t.Fatal("healthy hypothesis survived against a damaged plane")
	}
	// Production traffic kept flowing around the damaged plane while the
	// probes ran.
	rng := rand.New(rand.NewSource(9))
	const pkts = 64
	for i := 0; i < pkts; i++ {
		if err := f.Send(Packet[int]{Src: rng.Intn(8), Dst: rng.Intn(8)}); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	if delivered != pkts {
		t.Fatalf("delivered %d of %d packets", delivered, pkts)
	}
	if s := f.Stats(); s.Lost != 0 {
		t.Fatalf("lost %d packets", s.Lost)
	}
}

// TestMulticastWithInjectedFault drives fan-out traffic at a fabric
// whose plane 0 carries a stuck switch: injection takes the plane out
// of rotation immediately, so every mapping frame homed there must
// fail over through the four-state copy-network path of the surviving
// plane and every multicast copy must still arrive exactly once — the
// stuck-fault interaction with multicast switching. (The recorder-
// level fault-hit/bcast_flips interplay is pinned by netsim's
// TestFaultHitsCoexistWithMcastCounters.)
func TestMulticastWithInjectedFault(t *testing.T) {
	col := newMcastCollector()
	f, err := New(Config{LogN: 3, Planes: 2, Policy: Block, Record: true}, col.deliver)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.InjectFaults(0, []core.Fault{{Stage: 2, Switch: 0, StuckCrossed: true}}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	const pkts = 60
	want := make(map[int][]int, pkts)
	for i := 0; i < pkts; i++ {
		k := 1 + rng.Intn(4)
		var dsts []int
		seen := make(map[int]bool)
		for len(dsts) < k {
			if d := rng.Intn(8); !seen[d] {
				seen[d] = true
				dsts = append(dsts, d)
			}
		}
		want[i] = dsts
		if err := f.SendMulticast(MulticastPacket[int]{Src: rng.Intn(8), Dsts: dsts, Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	for payload, dsts := range want {
		sameSet(t, col.got(payload), dsts)
	}
	s := f.Stats()
	if s.Lost != 0 {
		t.Fatalf("lost %d packets", s.Lost)
	}
	if s.Mcast.Delivered != pkts {
		t.Fatalf("mcast delivered %d of %d", s.Mcast.Delivered, pkts)
	}
	// The damaged plane is out of rotation from injection, so its
	// engine served nothing; the sibling carried the whole load.
	if h := f.Health(); h.PlanesHealthy != 1 {
		t.Fatalf("planes healthy = %d, want 1", h.PlanesHealthy)
	}
	if s.Planes[1].Frames == 0 {
		t.Fatal("surviving plane served no frames")
	}
}
