package fabric

import (
	"errors"
	"math/rand"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/perm"
)

// TestFabricConcurrentStress is the data-race audit for the stats and
// control plane: while senders offer packet traffic and round clients
// drive RouteRound, other goroutines concurrently snapshot Stats,
// scrape the metrics registry, inject faults, and fail/restore planes.
// The test asserts no operation errors unexpectedly and, under
// `go test -race`, that every counter, histogram, and health bit on
// those paths is accessed atomically.
func TestFabricConcurrentStress(t *testing.T) {
	const (
		logN    = 4 // N = 16
		planes  = 3
		senders = 4
		perSend = 400
		rounds  = 120
	)
	var delivered atomic.Int64
	f, err := New[int](Config{LogN: logN, Planes: planes, VOQDepth: 8},
		func(Packet[int]) { delivered.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	f.Register(reg)

	// traffic holds the finite workloads (senders, round clients);
	// background holds the unbounded ones (snapshots, chaos), which run
	// until the traffic drains and stop closes.
	var traffic, background sync.WaitGroup
	stop := make(chan struct{})

	// Packet traffic.
	var accepted atomic.Int64
	for s := 0; s < senders; s++ {
		traffic.Add(1)
		go func(s int) {
			defer traffic.Done()
			rng := rand.New(rand.NewSource(int64(s)))
			n := f.N()
			for k := 0; k < perSend; k++ {
				p := Packet[int]{Src: rng.Intn(n), Dst: rng.Intn(n), Payload: k}
				switch err := f.Send(p); {
				case err == nil:
					accepted.Add(1)
				case errors.Is(err, ErrBackpressure):
				default:
					t.Errorf("send: %v", err)
				}
			}
		}(s)
	}

	// Round traffic, spread across preferred planes. A round may hit a
	// plane the chaos goroutine just failed; only no-healthy-plane is
	// an acceptable error.
	for w := 0; w < 2; w++ {
		traffic.Add(1)
		go func(w int) {
			defer traffic.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for k := 0; k < rounds; k++ {
				d := perm.Random(1<<logN, rng)
				if _, err := f.RouteRound(d, k%planes); err != nil &&
					!errors.Is(err, errPlaneDown) {
					t.Errorf("round: %v", err)
				}
			}
		}(w)
	}

	// Stats snapshots and registry scrapes racing the writers.
	background.Add(1)
	go func() {
		defer background.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := f.Stats()
			if s.Accepted < 0 || s.Stages.VOQWait.Count < 0 {
				t.Error("negative snapshot")
			}
			rec := httptest.NewRecorder()
			reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
			if rec.Code != 200 {
				t.Errorf("scrape: %d", rec.Code)
			}
		}
	}()

	// Chaos: fault injection and plane failover churn. Plane 0 is left
	// alone so at least one plane stays healthy throughout.
	background.Add(1)
	go func() {
		defer background.Done()
		rng := rand.New(rand.NewSource(7))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := 1 + rng.Intn(planes-1)
			switch i % 3 {
			case 0:
				fault := core.Fault{Stage: rng.Intn(2*logN - 1), Switch: rng.Intn(1 << (logN - 1))}
				if err := f.InjectFaults(id, []core.Fault{fault}); err != nil {
					t.Errorf("inject: %v", err)
				}
			case 1:
				if err := f.FailPlane(id); err != nil {
					t.Errorf("fail: %v", err)
				}
			case 2:
				if err := f.RestorePlane(id); err != nil {
					t.Errorf("restore: %v", err)
				}
			}
		}
	}()

	traffic.Wait()
	close(stop)
	background.Wait()
	f.Close()

	s := f.Stats()
	if s.Delivered+s.Lost != accepted.Load() {
		t.Fatalf("accepted %d but delivered %d + lost %d", accepted.Load(), s.Delivered, s.Lost)
	}
	if delivered.Load() != s.Delivered {
		t.Fatalf("deliver callback saw %d, counter says %d", delivered.Load(), s.Delivered)
	}
}

// TestVOQShardConcurrentStress hammers one ingress shard directly —
// the lock-free rings, nonempty bitmap, parking lot, and seal protocol
// — with concurrent producers (both policies), a consumer running
// buildFrame, and a snapshot reader, so `go test -race` audits the
// whole producer/consumer protocol without the planes in the way. The
// invariant: after seal and final drain, every accepted packet was
// extracted exactly once.
func TestVOQShardConcurrentStress(t *testing.T) {
	const (
		n         = 8
		depth     = 4
		producers = 4
		perProd   = 3000
	)
	v := newVOQShard[int](n, depth, nil)

	var accepted, consumed atomic.Int64
	stop := make(chan struct{})
	consumerDone := make(chan struct{})
	go func() {
		defer close(consumerDone)
		fr := newFrame[int](n)
		drain := func() {
			for v.buildFrame(fr) {
				consumed.Add(int64(len(fr.pkts)))
			}
		}
		for {
			if v.buildFrame(fr) {
				consumed.Add(int64(len(fr.pkts)))
				continue
			}
			select {
			case <-v.notify:
			case <-stop:
				drain()
				return
			}
		}
	}()

	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if occ := v.occupancy(); occ < 0 {
				t.Errorf("negative occupancy %d", occ)
			}
			for _, c := range v.snapshot() {
				if c.Occupied < 0 || c.Enqueued < c.Occupied {
					t.Errorf("inconsistent counters: %+v", c)
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for s := 0; s < producers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(40 + s)))
			policy := DropNew
			if s%2 == 1 {
				policy = Block
			}
			for k := 0; k < perProd; k++ {
				p := Packet[int]{Src: rng.Intn(n), Dst: rng.Intn(n), Payload: k}
				switch err := v.enqueue(p, policy); {
				case err == nil:
					accepted.Add(1)
				case errors.Is(err, ErrBackpressure) && policy == DropNew:
				default:
					t.Errorf("enqueue: %v", err)
				}
			}
		}(s)
	}
	wg.Wait()
	v.seal()
	close(stop)
	<-consumerDone
	<-readerDone

	if consumed.Load() != accepted.Load() {
		t.Fatalf("accepted %d packets but consumed %d", accepted.Load(), consumed.Load())
	}
	if occ := v.occupancy(); occ != 0 {
		t.Fatalf("shard should be empty after drain, occupancy %d", occ)
	}
	if err := v.enqueue(Packet[int]{Src: 0, Dst: 0}, DropNew); err != ErrClosed {
		t.Fatalf("sealed shard must refuse senders, got %v", err)
	}
}
