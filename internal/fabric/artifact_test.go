package fabric

import (
	"encoding/json"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestBenchFabricArtifact is the CI bench-snapshot hook: when
// BENCH_FABRIC_JSON names a file, it measures end-to-end packet
// throughput (Send → VOQ → scheduler → plane → delivery) with the
// gate-level flight recorder on, for one plane versus GOMAXPROCS
// planes, and writes a small JSON artifact there. Without the env var
// the test is skipped, so normal runs stay fast and deterministic.
func TestBenchFabricArtifact(t *testing.T) {
	path := os.Getenv("BENCH_FABRIC_JSON")
	if path == "" {
		t.Skip("BENCH_FABRIC_JSON not set")
	}
	multi := runtime.GOMAXPROCS(0)
	if multi < 2 {
		multi = 2
	}
	run := func(planes int) (pktsPerSec, frameFill float64) {
		res := testing.Benchmark(func(b *testing.B) {
			done := make(chan struct{})
			var delivered atomic.Int64
			target := int64(b.N)
			f, err := New[int](Config{
				LogN:     8,
				Planes:   planes,
				VOQDepth: 64,
				Policy:   Block,
				Record:   true,
			}, func(Packet[int]) {
				if delivered.Add(1) == target {
					close(done)
				}
			})
			if err != nil {
				b.Fatal(err)
			}
			senders := runtime.GOMAXPROCS(0)
			b.ResetTimer()
			var wg sync.WaitGroup
			for s := 0; s < senders; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(s)))
					n := f.N()
					for i := s; i < b.N; i += senders {
						if err := f.Send(Packet[int]{Src: rng.Intn(n), Dst: rng.Intn(n)}); err != nil {
							b.Error(err)
							return
						}
					}
				}(s)
			}
			wg.Wait()
			<-done
			b.StopTimer()
			frameFill = f.Stats().FrameFill
			f.Close()
		})
		return float64(res.N) / res.T.Seconds(), frameFill
	}

	onePlane, fillOne := run(1)
	multiPlane, fillMulti := run(multi)
	artifact := map[string]any{
		"log_n":                 8,
		"planes_multi":          multi,
		"pkts_per_sec_1plane":   onePlane,
		"pkts_per_sec_multi":    multiPlane,
		"frame_fill_1plane":     fillOne,
		"frame_fill_multi":      fillMulti,
		"plane_scaling_speedup": multiPlane / onePlane,
	}
	out, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %s", path, out)
}
