package fabric

import (
	"encoding/json"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// artifactEnvInt reads a positive integer knob for the bench artifact,
// falling back to def when the variable is unset.
func artifactEnvInt(t *testing.T, name string, def int) int {
	s := os.Getenv(name)
	if s == "" {
		return def
	}
	v, err := strconv.Atoi(s)
	if err != nil || v <= 0 {
		t.Fatalf("%s must be a positive integer, got %q", name, s)
	}
	return v
}

// TestBenchFabricArtifact is the CI bench-snapshot hook: when
// BENCH_FABRIC_JSON names a file, it measures end-to-end packet
// throughput (Send → VOQ → scheduler → plane → delivery) with the
// gate-level flight recorder on, for one plane versus BENCH_PLANES
// planes (default 2), and writes a small JSON artifact there. Without
// the env var the test is skipped, so normal runs stay fast and
// deterministic.
//
// The workload is pinned, not calibrated: exactly BENCH_ITERS packets
// per configuration (default 200000) after a short warmup, so two runs
// on the same machine do identical work and the artifact diff in
// ci/bench_diff.sh compares like with like. ci/bench_snapshot.sh pins
// GOMAXPROCS as well.
func TestBenchFabricArtifact(t *testing.T) {
	path := os.Getenv("BENCH_FABRIC_JSON")
	if path == "" {
		t.Skip("BENCH_FABRIC_JSON not set")
	}
	iters := artifactEnvInt(t, "BENCH_ITERS", 200000)
	multi := artifactEnvInt(t, "BENCH_PLANES", 2)
	if multi < 2 {
		multi = 2
	}
	run := func(planes, count int) (pktsPerSec, frameFill float64) {
		done := make(chan struct{})
		var delivered atomic.Int64
		target := int64(count)
		// VOQDepth 16: uniform random traffic touches all N² flows, and
		// each flow's ring preallocates its full bound on first use —
		// deep rings just buy memory and GC scan time here.
		f, err := New[int](Config{
			LogN:     8,
			Planes:   planes,
			VOQDepth: 16,
			Policy:   Block,
			Record:   true,
		}, func(Packet[int]) {
			if delivered.Add(1) == target {
				close(done)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		senders := runtime.GOMAXPROCS(0)
		start := time.Now()
		var wg sync.WaitGroup
		for s := 0; s < senders; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(s)))
				n := f.N()
				for i := s; i < count; i += senders {
					if err := f.Send(Packet[int]{Src: rng.Intn(n), Dst: rng.Intn(n)}); err != nil {
						t.Error(err)
						return
					}
				}
			}(s)
		}
		wg.Wait()
		<-done
		elapsed := time.Since(start)
		frameFill = f.Stats().FrameFill
		f.Close()
		return float64(count) / elapsed.Seconds(), frameFill
	}

	// Warmup primes the goroutine pools and frame freelists of both
	// configurations before anything is timed.
	run(1, iters/10+1)
	run(multi, iters/10+1)

	onePlane, fillOne := run(1, iters)
	multiPlane, fillMulti := run(multi, iters)
	artifact := map[string]any{
		"log_n":                 8,
		"iters":                 iters,
		"gomaxprocs":            runtime.GOMAXPROCS(0),
		"planes_multi":          multi,
		"pkts_per_sec_1plane":   onePlane,
		"pkts_per_sec_multi":    multiPlane,
		"frame_fill_1plane":     fillOne,
		"frame_fill_multi":      fillMulti,
		"plane_scaling_speedup": multiPlane / onePlane,
	}
	out, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %s", path, out)
}
