package fabric

import (
	"encoding/json"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// artifactEnvInt reads a positive integer knob for the bench artifact,
// falling back to def when the variable is unset.
func artifactEnvInt(t *testing.T, name string, def int) int {
	s := os.Getenv(name)
	if s == "" {
		return def
	}
	v, err := strconv.Atoi(s)
	if err != nil || v <= 0 {
		t.Fatalf("%s must be a positive integer, got %q", name, s)
	}
	return v
}

// TestBenchFabricArtifact is the CI bench-snapshot hook: when
// BENCH_FABRIC_JSON names a file, it measures end-to-end packet
// throughput (Send → VOQ → scheduler → plane → delivery) with the
// gate-level flight recorder on, for one plane versus BENCH_PLANES
// planes (default 2), and writes a small JSON artifact there. Without
// the env var the test is skipped, so normal runs stay fast and
// deterministic.
//
// The workload is pinned, not calibrated: exactly BENCH_ITERS packets
// per configuration (default 200000) after a short warmup, so two runs
// on the same machine do identical work and the artifact diff in
// ci/bench_diff.sh compares like with like. ci/bench_snapshot.sh pins
// GOMAXPROCS as well.
func TestBenchFabricArtifact(t *testing.T) {
	path := os.Getenv("BENCH_FABRIC_JSON")
	if path == "" {
		t.Skip("BENCH_FABRIC_JSON not set")
	}
	iters := artifactEnvInt(t, "BENCH_ITERS", 200000)
	multi := artifactEnvInt(t, "BENCH_PLANES", 2)
	if multi < 2 {
		multi = 2
	}
	run := func(planes, count int) (pktsPerSec, frameFill float64) {
		done := make(chan struct{})
		var delivered atomic.Int64
		target := int64(count)
		// VOQDepth 16: uniform random traffic touches all N² flows, and
		// each flow's ring preallocates its full bound on first use —
		// deep rings just buy memory and GC scan time here.
		f, err := New[int](Config{
			LogN:     8,
			Planes:   planes,
			VOQDepth: 16,
			Policy:   Block,
			Record:   true,
		}, func(Packet[int]) {
			if delivered.Add(1) == target {
				close(done)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		senders := runtime.GOMAXPROCS(0)
		start := time.Now()
		var wg sync.WaitGroup
		for s := 0; s < senders; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(s)))
				n := f.N()
				for i := s; i < count; i += senders {
					if err := f.Send(Packet[int]{Src: rng.Intn(n), Dst: rng.Intn(n)}); err != nil {
						t.Error(err)
						return
					}
				}
			}(s)
		}
		wg.Wait()
		<-done
		elapsed := time.Since(start)
		frameFill = f.Stats().FrameFill
		f.Close()
		return float64(count) / elapsed.Seconds(), frameFill
	}

	// Warmup primes the goroutine pools and frame freelists of both
	// configurations before anything is timed.
	run(1, iters/10+1)
	run(multi, iters/10+1)

	onePlane, fillOne := run(1, iters)
	multiPlane, fillMulti := run(multi, iters)
	artifact := map[string]any{
		"log_n":                 8,
		"iters":                 iters,
		"gomaxprocs":            runtime.GOMAXPROCS(0),
		"planes_multi":          multi,
		"pkts_per_sec_1plane":   onePlane,
		"pkts_per_sec_multi":    multiPlane,
		"frame_fill_1plane":     fillOne,
		"frame_fill_multi":      fillMulti,
		"plane_scaling_speedup": multiPlane / onePlane,
	}
	out, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %s", path, out)
}

// TestBenchMcastArtifact is the multicast slice of the bench
// trajectory: when BENCH_MCAST_JSON names a file it pushes a pinned,
// seeded fan-out workload (fan-out 1..4, uniform destinations over
// N=256) through the packet path — SendMulticast → per-flow VOQ →
// frame scheduler → copy-network plane — and writes packet throughput
// plus the fabric's measured fanout amplification. The workload is
// pregenerated from a fixed seed, so every run sends the identical
// multiset of copies and fanout_amplification is bit-for-bit
// reproducible: ci/bench_diff.sh holds it exact while ratcheting
// pkts_per_sec_mcast.
func TestBenchMcastArtifact(t *testing.T) {
	path := os.Getenv("BENCH_MCAST_JSON")
	if path == "" {
		t.Skip("BENCH_MCAST_JSON not set")
	}
	iters := artifactEnvInt(t, "BENCH_ITERS", 200000)
	planes := artifactEnvInt(t, "BENCH_PLANES", 2)

	const n = 256 // LogN 8, matching the unicast artifact
	type job struct {
		src  int
		dsts []int
	}
	// gen pregenerates the whole workload so the send loop measures the
	// fabric, not the rng, and the copy count is known up front.
	gen := func(count int) ([]job, int64) {
		rng := rand.New(rand.NewSource(42))
		jobs := make([]job, count)
		copies := int64(0)
		var seen [n]bool
		for i := range jobs {
			k := 1 + rng.Intn(4)
			dsts := make([]int, 0, k)
			for len(dsts) < k {
				if d := rng.Intn(n); !seen[d] {
					seen[d] = true
					dsts = append(dsts, d)
				}
			}
			for _, d := range dsts {
				seen[d] = false
			}
			jobs[i] = job{src: rng.Intn(n), dsts: dsts}
			copies += int64(len(dsts))
		}
		return jobs, copies
	}

	run := func(count int) (pktsPerSec, amp float64) {
		jobs, copies := gen(count)
		done := make(chan struct{})
		var delivered atomic.Int64
		f, err := New[int](Config{
			LogN:     8,
			Planes:   planes,
			VOQDepth: 16,
			Policy:   Block,
			Record:   true,
		}, func(Packet[int]) {
			if delivered.Add(1) == copies {
				close(done)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		senders := runtime.GOMAXPROCS(0)
		start := time.Now()
		var wg sync.WaitGroup
		for s := 0; s < senders; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				for i := s; i < count; i += senders {
					err := f.SendMulticast(MulticastPacket[int]{
						Src: jobs[i].src, Dsts: jobs[i].dsts, Payload: jobs[i].src,
					})
					if err != nil {
						t.Error(err)
						return
					}
				}
			}(s)
		}
		wg.Wait()
		<-done
		elapsed := time.Since(start)
		amp = f.Stats().Mcast.FanoutAmplification
		f.Close()
		return float64(count) / elapsed.Seconds(), amp
	}

	run(iters/10 + 1)
	pps, amp := run(iters)
	artifact := map[string]any{
		"log_n":                8,
		"iters":                iters,
		"gomaxprocs":           runtime.GOMAXPROCS(0),
		"planes":               planes,
		"pkts_per_sec_mcast":   pps,
		"copies_per_sec":       pps * amp,
		"fanout_amplification": amp,
	}
	out, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %s", path, out)
}
