package fabric

import (
	"fmt"

	"repro/internal/perm"
)

// Idle marks an unmatched input in a partial matching passed to
// Complete.
const Idle = -1

// Complete extends a partial input→output matching to a full
// permutation: every input i with partial[i] == Idle is assigned one of
// the outputs no matched input claimed, in ascending order. The Benes
// engine routes whole permutations only — the paper's model moves one
// full vector per pass — so a frame carrying fewer than N packets must
// still present N destination tags; the filler assignments carry no
// payload and exist purely to make the frame self-routable.
//
// Complete returns an error when partial is not a matching: an entry
// out of range, or two inputs claiming the same output.
func Complete(partial []int) (perm.Perm, error) {
	n := len(partial)
	full := make(perm.Perm, n)
	taken := make([]bool, n)
	for i, out := range partial {
		if out == Idle {
			continue
		}
		if out < 0 || out >= n {
			return nil, fmt.Errorf("fabric: partial[%d] = %d out of range [0,%d)", i, out, n)
		}
		if taken[out] {
			return nil, fmt.Errorf("fabric: output %d claimed twice", out)
		}
		taken[out] = true
		full[i] = out
	}
	free := 0
	for i, out := range partial {
		if out != Idle {
			continue
		}
		for taken[free] {
			free++
		}
		taken[free] = true
		full[i] = free
	}
	return full, nil
}

// completeInto is Complete for the scheduler hot path: it writes into
// caller-owned memory and performs no validation, because partial comes
// from buildFrame's matching loop, which is conflict-free by
// construction. taken must already mark exactly the outputs claimed in
// partial; it is consumed (filler outputs get marked too).
func completeInto(partial []int, full perm.Perm, taken []bool) {
	free := 0
	for i, out := range partial {
		if out != Idle {
			full[i] = out
			continue
		}
		for taken[free] {
			free++
		}
		taken[free] = true
		full[i] = free
	}
}
