package fabric

import (
	"fmt"

	"repro/internal/perm"
)

// Idle marks an unmatched input in a partial matching passed to
// Complete.
const Idle = -1

// Complete extends a partial input→output matching to a full
// permutation: every input i with partial[i] == Idle is assigned one of
// the outputs no matched input claimed, in ascending order. The Benes
// engine routes whole permutations only — the paper's model moves one
// full vector per pass — so a frame carrying fewer than N packets must
// still present N destination tags; the filler assignments carry no
// payload and exist purely to make the frame self-routable.
//
// Complete returns an error when partial is not a matching: an entry
// out of range, or two inputs claiming the same output.
func Complete(partial []int) (perm.Perm, error) {
	n := len(partial)
	full := make(perm.Perm, n)
	taken := make([]bool, n)
	for i, out := range partial {
		if out == Idle {
			continue
		}
		if out < 0 || out >= n {
			return nil, fmt.Errorf("fabric: partial[%d] = %d out of range [0,%d)", i, out, n)
		}
		if taken[out] {
			return nil, fmt.Errorf("fabric: output %d claimed twice", out)
		}
		taken[out] = true
		full[i] = out
	}
	free := 0
	for i, out := range partial {
		if out != Idle {
			continue
		}
		for taken[free] {
			free++
		}
		taken[free] = true
		full[i] = free
	}
	return full, nil
}

// CompleteMapping extends a partial output→source mapping (output-
// major, Idle for unassigned outputs) by assigning each source that
// appears nowhere in the mapping to one of the idle outputs, in
// ascending order. Fan-out guarantees enough unused sources: every
// extra copy a source claims frees up exactly one other source, so
// the result is always a total mapping. Collectives and the HTTP layer
// use this to turn a sparse fan-out request into a full frame whose
// idle ports carry unicast filler; the copy-network compiler accepts
// partial mappings too, so completion is optional.
func CompleteMapping(partial []int) ([]int, error) {
	n := len(partial)
	full := make([]int, n)
	used := make([]bool, n)
	idle := 0
	for out, src := range partial {
		if src == Idle {
			idle++
			full[out] = Idle
			continue
		}
		if src < 0 || src >= n {
			return nil, fmt.Errorf("fabric: partial[%d] = %d out of range [0,%d)", out, src, n)
		}
		used[src] = true
		full[out] = src
	}
	if idle == n {
		return nil, fmt.Errorf("fabric: mapping assigns no outputs")
	}
	free := 0
	for out, src := range full {
		if src != Idle {
			continue
		}
		for free < n && used[free] {
			free++
		}
		if free == n {
			break // more idle outputs than unused sources cannot happen
		}
		used[free] = true
		full[out] = free
	}
	return full, nil
}

// completeInto is Complete for the scheduler hot path: it writes into
// caller-owned memory and performs no validation, because partial comes
// from buildFrame's matching loop, which is conflict-free by
// construction. taken must already mark exactly the outputs claimed in
// partial; it is consumed (filler outputs get marked too).
func completeInto(partial []int, full perm.Perm, taken []bool) {
	free := 0
	for i, out := range partial {
		if out != Idle {
			full[i] = out
			continue
		}
		for taken[free] {
			free++
		}
		taken[free] = true
		full[i] = free
	}
}
