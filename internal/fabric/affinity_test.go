package fabric

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// flowKey identifies one (src, dst) flow.
type flowKey struct{ src, dst int }

// planeLog records, per flow, the set of planes that delivered its
// packets, via a NewBatched callback.
type planeLog struct {
	mu        sync.Mutex
	seen      map[flowKey]map[int]bool
	delivered atomic.Int64
}

func newPlaneLog() *planeLog { return &planeLog{seen: make(map[flowKey]map[int]bool)} }

func (l *planeLog) batch(plane int, pkts []Packet[int]) {
	l.mu.Lock()
	for _, p := range pkts {
		k := flowKey{p.Src, p.Dst}
		if l.seen[k] == nil {
			l.seen[k] = make(map[int]bool)
		}
		l.seen[k][plane] = true
	}
	l.mu.Unlock()
	l.delivered.Add(int64(len(pkts)))
}

func (l *planeLog) reset() {
	l.mu.Lock()
	l.seen = make(map[flowKey]map[int]bool)
	l.mu.Unlock()
}

// soleDeliverer returns the one plane that delivered flow k, failing the
// test when the flow was split across planes or never delivered.
func (l *planeLog) soleDeliverer(t *testing.T, k flowKey) int {
	t.Helper()
	l.mu.Lock()
	defer l.mu.Unlock()
	planes := l.seen[k]
	if len(planes) != 1 {
		t.Fatalf("flow (%d -> %d) delivered by planes %v, want exactly one", k.src, k.dst, planes)
	}
	for id := range planes {
		return id
	}
	return -1
}

func (l *planeLog) awaitDrain(t *testing.T, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for l.delivered.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("drain stalled: delivered %d of %d", l.delivered.Load(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFlowAffinityAcrossFailover is the property test for flow-hash
// plane pinning: every packet of a (src, dst) flow is delivered by the
// plane PlaneFor predicts; failing a plane moves only the flows it was
// serving (rendezvous hashing keeps every other flow in place); and
// restoring the plane returns exactly its old flows to it.
func TestFlowAffinityAcrossFailover(t *testing.T) {
	const (
		logN    = 4 // N = 16
		planes  = 3
		perFlow = 3
		victim  = 1
	)
	n := 1 << logN
	log := newPlaneLog()
	f, err := NewBatched[int](Config{LogN: logN, Planes: planes, VOQDepth: 8, Policy: Block}, log.batch)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	flows := make([]flowKey, 0, n*n)
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			flows = append(flows, flowKey{src, dst})
		}
	}
	home := make(map[flowKey]int, len(flows))
	for _, k := range flows {
		id, err := f.PlaneFor(k.src, k.dst)
		if err != nil {
			t.Fatal(err)
		}
		home[k] = id
	}

	sendAll := func() int64 {
		sent := int64(0)
		for _, k := range flows {
			for i := 0; i < perFlow; i++ {
				if err := f.Send(Packet[int]{Src: k.src, Dst: k.dst, Payload: i}); err != nil {
					t.Fatalf("send (%d -> %d): %v", k.src, k.dst, err)
				}
				sent++
			}
		}
		return sent
	}

	// Phase 1: healthy fabric. Every flow lands wholly on its home plane.
	total := sendAll()
	log.awaitDrain(t, total)
	spread := make(map[int]int)
	for _, k := range flows {
		id := log.soleDeliverer(t, k)
		if id != home[k] {
			t.Fatalf("flow (%d -> %d) delivered by plane %d, PlaneFor says %d", k.src, k.dst, id, home[k])
		}
		spread[id]++
	}
	for id := 0; id < planes; id++ {
		if spread[id] == 0 {
			t.Fatalf("rendezvous hash left plane %d with no flows: %v", id, spread)
		}
	}

	// Phase 2: fail one plane. Flows homed elsewhere must not move;
	// the victim's flows rehash to survivors and stay whole there.
	if err := f.FailPlane(victim); err != nil {
		t.Fatal(err)
	}
	rehomed := make(map[flowKey]int, len(flows))
	for _, k := range flows {
		id, err := f.PlaneFor(k.src, k.dst)
		if err != nil {
			t.Fatal(err)
		}
		rehomed[k] = id
		if id == victim {
			t.Fatalf("flow (%d -> %d) still pinned to failed plane %d", k.src, k.dst, victim)
		}
		if home[k] != victim && id != home[k] {
			t.Fatalf("failing plane %d moved unrelated flow (%d -> %d): %d -> %d",
				victim, k.src, k.dst, home[k], id)
		}
	}
	log.reset()
	total += sendAll()
	log.awaitDrain(t, total)
	for _, k := range flows {
		if id := log.soleDeliverer(t, k); id != rehomed[k] {
			t.Fatalf("after failover, flow (%d -> %d) delivered by plane %d, want %d", k.src, k.dst, id, rehomed[k])
		}
	}

	// Phase 3: restore. Rendezvous hashing hands the plane back exactly
	// the flows it served before, and traffic follows.
	if err := f.RestorePlane(victim); err != nil {
		t.Fatal(err)
	}
	for _, k := range flows {
		id, err := f.PlaneFor(k.src, k.dst)
		if err != nil {
			t.Fatal(err)
		}
		if id != home[k] {
			t.Fatalf("after restore, flow (%d -> %d) pinned to plane %d, want original %d", k.src, k.dst, id, home[k])
		}
	}
	log.reset()
	total += sendAll()
	log.awaitDrain(t, total)
	for _, k := range flows {
		if id := log.soleDeliverer(t, k); id != home[k] {
			t.Fatalf("after restore, flow (%d -> %d) delivered by plane %d, want %d", k.src, k.dst, id, home[k])
		}
	}
}

// TestSprayAffinityUsesAllPlanes pins the Spray escape hatch: with
// enough packets of one flow, round-robin spraying must exercise every
// plane — the opposite of flow pinning.
func TestSprayAffinityUsesAllPlanes(t *testing.T) {
	const planes = 3
	log := newPlaneLog()
	f, err := NewBatched[int](Config{LogN: 3, Planes: planes, VOQDepth: 8, Policy: Block, Affinity: Spray}, log.batch)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	const sent = 60
	for i := 0; i < sent; i++ {
		if err := f.Send(Packet[int]{Src: 2, Dst: 5, Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	log.awaitDrain(t, sent)
	log.mu.Lock()
	got := len(log.seen[flowKey{2, 5}])
	log.mu.Unlock()
	if got != planes {
		t.Fatalf("spray delivered one flow via %d of %d planes", got, planes)
	}
}
