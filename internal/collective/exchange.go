package collective

import (
	"fmt"

	"repro/internal/fabric"
)

// This file decomposes an arbitrary all-to-all — each port naming a
// destination per chunk — into whole-permutation rounds. The transfer
// set is a bipartite multigraph (senders x receivers); König's
// edge-coloring theorem says a bipartite graph of maximum degree Δ
// splits into Δ matchings, and the constructive proof (alternating
// αβ-path recoloring) is implemented here directly. Each color class
// is one round: a partial matching completed to a full permutation
// with fabric.Complete, then classified like any other round. A port
// sending or receiving at most k chunks therefore costs at most k
// rounds — the "≤ k self-routable rounds" decomposition the collective
// layer promises, with any round that falls outside F(n) paying the
// looping fallback and being counted as such.

// edge is one transfer: chunk Chunk of port Src goes to port Dst.
type edge struct {
	src, dst, chunk int
	color           int
}

// CompileExchange compiles an arbitrary all-to-all on N = 2^logN
// ports. dests[p][c] names the destination port of chunk c held by
// port p, or Keep (-1) to leave it in place. A port may send at most
// one chunk to any given destination (the received chunk lands in the
// slot named by its source: state[d][src]), so per-port fan-out is at
// most N. The number of rounds equals the maximum transfer degree:
// max over ports of chunks sent or received.
func CompileExchange(logN int, dests [][]int) (*Program, error) {
	if logN < 1 {
		return nil, fmt.Errorf("collective: logN must be >= 1, got %d", logN)
	}
	N := 1 << uint(logN)
	if len(dests) != N {
		return nil, fmt.Errorf("collective: exchange spec for %d ports, want N=%d", len(dests), N)
	}
	in := make([]int, N)
	state := make([]int, N)
	var edges []edge
	outdeg := make([]int, N)
	indeg := make([]int, N)
	sends := make(map[[2]int]bool) // (src, dst) pairs already used
	for p, row := range dests {
		in[p] = len(row)
		if state[p] = len(row); state[p] < N {
			state[p] = N
		}
		for c, d := range row {
			if d == Keep {
				continue
			}
			if d < 0 || d >= N {
				return nil, fmt.Errorf("collective: port %d chunk %d destination %d out of range [0,%d)", p, c, d, N)
			}
			if sends[[2]int{p, d}] {
				return nil, fmt.Errorf("collective: port %d sends two chunks to port %d (received slots are keyed by source)", p, d)
			}
			sends[[2]int{p, d}] = true
			edges = append(edges, edge{src: p, dst: d, chunk: c, color: -1})
			outdeg[p]++
			indeg[d]++
		}
	}
	maxDeg := 0
	for p := 0; p < N; p++ {
		if outdeg[p] > maxDeg {
			maxDeg = outdeg[p]
		}
		if indeg[p] > maxDeg {
			maxDeg = indeg[p]
		}
	}

	prog := &Program{
		Op:          OpExchange,
		LogN:        logN,
		N:           N,
		InChunks:    in,
		StateChunks: state,
	}
	if maxDeg == 0 {
		return prog.finish(), nil
	}
	colorEdges(edges, N, maxDeg)

	for color := 0; color < maxDeg; color++ {
		partial := make([]int, N)
		for i := range partial {
			partial[i] = fabric.Idle
		}
		var moves []Move
		for i := range edges {
			if edges[i].color != color {
				continue
			}
			e := &edges[i]
			partial[e.src] = e.dst
			moves = append(moves, Move{SrcPort: e.src, SrcChunk: e.chunk, DstPort: e.dst, DstChunk: e.src})
		}
		dest, err := fabric.Complete(partial)
		if err != nil {
			// Unreachable: a color class is a matching by construction.
			return nil, fmt.Errorf("collective: color %d is not a matching: %w", color, err)
		}
		prog.Rounds = append(prog.Rounds, newRound(dest, moves))
	}
	return prog.finish(), nil
}

// Keep marks a chunk that stays at its port in an exchange spec.
const Keep = -1

// colorEdges assigns each edge a color in [0, maxDeg) such that no two
// edges sharing a sender or receiver share a color — König's theorem,
// by alternating-path recoloring. usedS[p][c] / usedR[p][c] hold the
// index of the edge colored c at sender/receiver p, or -1.
func colorEdges(edges []edge, n, maxDeg int) {
	usedS := make([][]int, n)
	usedR := make([][]int, n)
	for p := 0; p < n; p++ {
		usedS[p] = uniform(maxDeg, -1)
		usedR[p] = uniform(maxDeg, -1)
	}
	free := func(used []int) int {
		for c, e := range used {
			if e == -1 {
				return c
			}
		}
		return -1
	}
	for i := range edges {
		e := &edges[i]
		alpha := free(usedS[e.src]) // missing at the sender
		beta := free(usedR[e.dst])  // missing at the receiver
		if alpha != beta && usedR[e.dst][alpha] != -1 {
			// alpha is busy at the receiver: flip the maximal
			// alpha/beta alternating path starting at the receiver.
			// The path cannot reach e.src (parity: it would have to
			// arrive on an alpha edge, and e.src has none), so after
			// the flip alpha is free at both endpoints.
			flipPath(edges, usedS, usedR, e.dst, alpha, beta)
		}
		e.color = alpha
		usedS[e.src][alpha] = i
		usedR[e.dst][alpha] = i
	}
}

// flipPath swaps colors alpha and beta along the maximal alternating
// path that starts at receiver r with an alpha-colored edge.
func flipPath(edges []edge, usedS, usedR [][]int, r, alpha, beta int) {
	// Collect the path first, then recolor, so the traversal is not
	// confused by its own updates. The path alternates
	// receiver -(alpha)-> sender -(beta)-> receiver -> ...
	var path []int
	atReceiver, node, color := true, r, alpha
	for {
		var ei int
		if atReceiver {
			ei = usedR[node][color]
		} else {
			ei = usedS[node][color]
		}
		if ei == -1 {
			break
		}
		path = append(path, ei)
		if atReceiver {
			node = edges[ei].src
		} else {
			node = edges[ei].dst
		}
		atReceiver = !atReceiver
		if color == alpha {
			color = beta
		} else {
			color = alpha
		}
	}
	for _, ei := range path {
		e := &edges[ei]
		old := e.color
		nw := alpha
		if old == alpha {
			nw = beta
		}
		usedS[e.src][old] = -1
		usedR[e.dst][old] = -1
		e.color = nw
	}
	for _, ei := range path {
		e := &edges[ei]
		usedS[e.src][e.color] = ei
		usedR[e.dst][e.color] = ei
	}
}
