package collective

import (
	"math/rand"
	"testing"
)

// randomEdges draws a random bipartite transfer set on n senders and n
// receivers with at most one edge per (src, dst) pair — the multigraph
// CompileExchange hands to the coloring (parallel chunks from one port
// to one destination are rejected upstream because received slots are
// keyed by source). Returns the edges and the maximum degree.
func randomEdges(rng *rand.Rand, n, tries int) ([]edge, int) {
	var edges []edge
	outdeg := make([]int, n)
	indeg := make([]int, n)
	seen := map[[2]int]bool{}
	for i := 0; i < tries; i++ {
		s, d := rng.Intn(n), rng.Intn(n)
		if seen[[2]int{s, d}] {
			continue
		}
		seen[[2]int{s, d}] = true
		edges = append(edges, edge{src: s, dst: d, chunk: outdeg[s], color: -1})
		outdeg[s]++
		indeg[d]++
	}
	maxDeg := 0
	for p := 0; p < n; p++ {
		if outdeg[p] > maxDeg {
			maxDeg = outdeg[p]
		}
		if indeg[p] > maxDeg {
			maxDeg = indeg[p]
		}
	}
	return edges, maxDeg
}

// checkColoring asserts the König invariants on a colored edge set:
// every edge carries exactly one color in [0, maxDeg), and no two
// edges sharing a sender or a receiver share a color — i.e. every
// color class is a matching and the classes partition the edges.
func checkColoring(t *testing.T, edges []edge, n, maxDeg int) {
	t.Helper()
	bySrc := make([]map[int]bool, n)
	byDst := make([]map[int]bool, n)
	for p := 0; p < n; p++ {
		bySrc[p] = map[int]bool{}
		byDst[p] = map[int]bool{}
	}
	colored := 0
	for i, e := range edges {
		if e.color < 0 || e.color >= maxDeg {
			t.Fatalf("edge %d (%d->%d) colored %d, want [0,%d)", i, e.src, e.dst, e.color, maxDeg)
		}
		if bySrc[e.src][e.color] {
			t.Fatalf("sender %d has two edges colored %d", e.src, e.color)
		}
		if byDst[e.dst][e.color] {
			t.Fatalf("receiver %d has two edges colored %d", e.dst, e.color)
		}
		bySrc[e.src][e.color] = true
		byDst[e.dst][e.color] = true
		colored++
	}
	if colored != len(edges) {
		t.Fatalf("%d of %d edges colored", colored, len(edges))
	}
}

// TestKonigColoringProperty is the property test for the constructive
// König edge coloring: over random bipartite transfer sets of varied
// size and density, the alternating-path recoloring must always
// decompose the edges into at most max-degree matchings with every
// edge covered exactly once.
func TestKonigColoringProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(63)            // 2..64 ports
		tries := rng.Intn(3*n*n/2+1) + 1 // sparse through denser-than-complete
		edges, maxDeg := randomEdges(rng, n, tries)
		if maxDeg == 0 {
			continue
		}
		colorEdges(edges, n, maxDeg)
		checkColoring(t, edges, n, maxDeg)
	}
}

// TestKonigColoringRegular colors the complete bipartite graph K(n,n):
// the graph is n-regular, so König forces exactly n colors and every
// color class must be a perfect matching.
func TestKonigColoringRegular(t *testing.T) {
	const n = 16
	var edges []edge
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			edges = append(edges, edge{src: s, dst: d, chunk: d, color: -1})
		}
	}
	colorEdges(edges, n, n)
	checkColoring(t, edges, n, n)
	perColor := make([]int, n)
	for _, e := range edges {
		perColor[e.color]++
	}
	for c, size := range perColor {
		if size != n {
			t.Fatalf("color %d covers %d edges, want a perfect matching of %d", c, size, n)
		}
	}
}

// TestExchangeRoundsCoverEdges checks the compiled view of the same
// invariant: every non-Keep transfer of a random exchange spec appears
// as a move in exactly one of the at-most-max-degree rounds, and each
// round's permutation actually routes each of its moves.
func TestExchangeRoundsCoverEdges(t *testing.T) {
	const logN, n = 4, 16
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		dests := make([][]int, n)
		want := map[[3]int]int{} // (src, chunk, dst) -> times seen in rounds
		for p := range dests {
			k := rng.Intn(n)
			seen := map[int]bool{}
			for c := 0; c < k; c++ {
				d := rng.Intn(n)
				if seen[d] {
					d = Keep
				} else {
					seen[d] = true
					want[[3]int{p, c, d}] = 0
				}
				dests[p] = append(dests[p], d)
			}
		}
		prog, err := CompileExchange(logN, dests)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for ri, r := range prog.Rounds {
			for _, m := range r.Moves {
				key := [3]int{m.SrcPort, m.SrcChunk, m.DstPort}
				if _, ok := want[key]; !ok {
					t.Fatalf("trial %d round %d: move %+v not in the spec", trial, ri, m)
				}
				want[key]++
				if r.Dest[m.SrcPort] != m.DstPort {
					t.Fatalf("trial %d round %d: permutation sends %d to %d, move wants %d",
						trial, ri, m.SrcPort, r.Dest[m.SrcPort], m.DstPort)
				}
				if m.DstChunk != m.SrcPort {
					t.Fatalf("trial %d round %d: received slot %d, want source-keyed %d", trial, ri, m.DstChunk, m.SrcPort)
				}
			}
		}
		for key, count := range want {
			if count != 1 {
				t.Fatalf("trial %d: transfer %v served %d times, want exactly once", trial, key, count)
			}
		}
	}
}
