package collective

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/perm"
)

// Op names a collective operation.
type Op int

const (
	// OpAllToAll is the personalized all-to-all: chunk j of port i
	// lands at port j (as that port's chunk i). N rounds, every one a
	// cyclic shift — Table II's inverse-omega family — so no round
	// pays looping setup.
	OpAllToAll Op = iota
	// OpExchange is the arbitrary all-to-all: each port names a
	// destination per chunk and the compiler decomposes the transfer
	// into at most max-degree matchings (König edge coloring).
	OpExchange
	// OpTranspose moves chunk columns through the matrix-transpose
	// permutation of Table I (rows x cols, row-major ports).
	OpTranspose
	// OpShuffle moves chunk columns through the perfect shuffle of
	// Table I.
	OpShuffle
	// OpBitReversal moves chunk columns through the bit-reversal
	// permutation of Table I (Fig. 4).
	OpBitReversal
	// OpBroadcast copies the root's chunks to every port by
	// recursive doubling: log2(N) rounds, each a single-bit
	// complement — a BPC permutation — with copy-on-deliver.
	OpBroadcast
	// OpGather collects one chunk from every port at the root.
	OpGather
	// OpScatter distributes the root's N chunks, one per port.
	OpScatter

	numOps = int(OpScatter) + 1
)

func (o Op) String() string {
	switch o {
	case OpAllToAll:
		return "alltoall"
	case OpExchange:
		return "exchange"
	case OpTranspose:
		return "transpose"
	case OpShuffle:
		return "shuffle"
	case OpBitReversal:
		return "bitreversal"
	case OpBroadcast:
		return "broadcast"
	case OpGather:
		return "gather"
	case OpScatter:
		return "scatter"
	}
	return "unknown"
}

// Move is one chunk relocation within a round: the chunk at
// (SrcPort, SrcChunk) lands at (DstPort, DstChunk). The network
// realizes the port-level motion; the move records which payload cell
// rides it.
type Move struct {
	SrcPort, SrcChunk int
	DstPort, DstChunk int
}

// Round is one network pass of a compiled collective: a full N-port
// permutation plus the payload moves that ride it.
type Round struct {
	// Dest is the full permutation this round presents to the fabric.
	Dest perm.Perm
	// Class is the compiler's classification of Dest — the predicted
	// routing cost. Self-routable classes pay no looping setup.
	Class perm.Class
	// Moves are the payload relocations this round performs.
	Moves []Move
}

// Program is a compiled collective: the round schedule plus the
// payload shape it operates on.
type Program struct {
	Op   Op
	LogN int
	N    int
	// InChunks[p] is how many chunks port p must supply.
	InChunks []int
	// StateChunks[p] is the width of port p's result buffer. The
	// executor initializes state[p][c] = in[p][c] for the cells both
	// shapes cover, then applies the rounds' moves.
	StateChunks []int
	// Rounds is the schedule. When Serial is false the rounds touch
	// pairwise-disjoint cells — every move reads the immutable input
	// and every state cell is written at most once — so the executor
	// runs them concurrently across the fabric's planes. When Serial
	// is true (broadcast) later rounds read earlier rounds' writes and
	// the executor runs them in order, overlapping only round r+1's
	// plan setup with round r's transmission.
	Rounds []Round
	Serial bool
	// SelfRoutable counts the rounds whose classification needs no
	// looping setup.
	SelfRoutable int
	// covered is true when the rounds write every state cell exactly
	// once, so the executor can skip initializing state from the
	// input (all-to-all, transpose, scatter, ...).
	covered bool
}

// TotalMoves returns the number of payload chunks the program moves.
func (p *Program) TotalMoves() int {
	total := 0
	for i := range p.Rounds {
		total += len(p.Rounds[i].Moves)
	}
	return total
}

// finish computes the derived classification tally and the coverage
// flag.
func (p *Program) finish() *Program {
	p.SelfRoutable = 0
	for i := range p.Rounds {
		if p.Rounds[i].Class.SelfRoutable() {
			p.SelfRoutable++
		}
	}
	// Non-serial programs write each state cell at most once
	// (Validate's invariant), so move count == state size means full
	// coverage.
	if !p.Serial {
		cells := 0
		for _, w := range p.StateChunks {
			cells += w
		}
		p.covered = p.TotalMoves() == cells
	}
	return p
}

// uniform returns a length-n slice filled with v.
func uniform(n, v int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = v
	}
	return s
}

// newRound classifies dest and wraps it with its moves.
func newRound(dest perm.Perm, moves []Move) Round {
	return Round{Dest: dest, Class: perm.Classify(dest).Class, Moves: moves}
}

// newRoundClass wraps a round whose class is known a priori from the
// pattern itself — every cyclic shift is a Table II inverse-omega
// member, every single-bit complement a Table I BPC member — skipping
// the O(N log N) classifier per round. The claims are cross-checked
// against perm.Classify in the compiler tests.
func newRoundClass(dest perm.Perm, class perm.Class, moves []Move) Round {
	return Round{Dest: dest, Class: class, Moves: moves}
}

// columnRounds builds the k-round schedule shared by the Table I
// collectives: chunk column c rides permutation dest (the same every
// round), port i's chunk landing at port dest[i] in the same column.
func columnRounds(dest perm.Perm, chunks int) []Round {
	class := perm.Classify(dest).Class
	rounds := make([]Round, chunks)
	for c := 0; c < chunks; c++ {
		moves := make([]Move, len(dest))
		for i, d := range dest {
			moves[i] = Move{SrcPort: i, SrcChunk: c, DstPort: d, DstChunk: c}
		}
		rounds[c] = Round{Dest: dest, Class: class, Moves: moves}
	}
	return rounds
}

// CompileAllToAll compiles the personalized all-to-all on N = 2^logN
// ports, each holding N chunks: in[i][j] lands at state[j][i]. The
// schedule is the ring decomposition — round r is the cyclic shift by
// r, moving in[i][(i+r) mod N] to port (i+r) mod N — so all N rounds
// are Table II inverse-omega members and self-route.
func CompileAllToAll(logN int) (*Program, error) {
	if logN < 1 {
		return nil, fmt.Errorf("collective: logN must be >= 1, got %d", logN)
	}
	N := 1 << uint(logN)
	p := &Program{
		Op:          OpAllToAll,
		LogN:        logN,
		N:           N,
		InChunks:    uniform(N, N),
		StateChunks: uniform(N, N),
		Rounds:      make([]Round, N),
	}
	for r := 0; r < N; r++ {
		moves := make([]Move, N)
		for i := 0; i < N; i++ {
			d := (i + r) % N
			moves[i] = Move{SrcPort: i, SrcChunk: d, DstPort: d, DstChunk: i}
		}
		p.Rounds[r] = newRoundClass(perm.CyclicShift(logN, r), perm.ClassInverseOmega, moves)
	}
	return p.finish(), nil
}

// CompileTranspose compiles the rows x cols matrix transpose over
// k-chunk payloads: ports are row-major matrix cells, and chunk column
// c of port r*cols+q lands at port q*rows+r. rows*cols must equal N
// and both must be powers of two; the port permutation is then the
// field-exchange BPC member of Table I (Lenfant's alpha), identical in
// every round — one plan serves all k columns.
func CompileTranspose(logN, rows, cols, chunks int) (*Program, error) {
	if logN < 1 {
		return nil, fmt.Errorf("collective: logN must be >= 1, got %d", logN)
	}
	N := 1 << uint(logN)
	if rows < 1 || cols < 1 || rows*cols != N {
		return nil, fmt.Errorf("collective: transpose %dx%d does not tile N=%d ports", rows, cols, N)
	}
	if !bits.IsPow2(rows) || !bits.IsPow2(cols) {
		return nil, fmt.Errorf("collective: transpose %dx%d needs power-of-two sides", rows, cols)
	}
	if chunks < 1 {
		return nil, fmt.Errorf("collective: chunks must be >= 1, got %d", chunks)
	}
	dest := make(perm.Perm, N)
	for r := 0; r < rows; r++ {
		for q := 0; q < cols; q++ {
			dest[r*cols+q] = q*rows + r
		}
	}
	p := &Program{
		Op:          OpTranspose,
		LogN:        logN,
		N:           N,
		InChunks:    uniform(N, chunks),
		StateChunks: uniform(N, chunks),
		Rounds:      columnRounds(dest, chunks),
	}
	return p.finish(), nil
}

// CompileShuffle compiles the perfect shuffle (Table I) over k-chunk
// payloads: every chunk column rides the same BPC permutation.
func CompileShuffle(logN, chunks int) (*Program, error) {
	return compileColumns(OpShuffle, logN, chunks, perm.PerfectShuffle)
}

// CompileBitReversal compiles the bit-reversal permutation (Table I,
// Fig. 4) over k-chunk payloads.
func CompileBitReversal(logN, chunks int) (*Program, error) {
	return compileColumns(OpBitReversal, logN, chunks, perm.BitReversal)
}

func compileColumns(op Op, logN, chunks int, gen func(int) perm.Perm) (*Program, error) {
	if logN < 1 {
		return nil, fmt.Errorf("collective: logN must be >= 1, got %d", logN)
	}
	if chunks < 1 {
		return nil, fmt.Errorf("collective: chunks must be >= 1, got %d", chunks)
	}
	N := 1 << uint(logN)
	p := &Program{
		Op:          op,
		LogN:        logN,
		N:           N,
		InChunks:    uniform(N, chunks),
		StateChunks: uniform(N, chunks),
		Rounds:      columnRounds(gen(logN), chunks),
	}
	return p.finish(), nil
}

// CompileBroadcast compiles a copy-broadcast of the root's k chunks to
// every port by recursive doubling: after round r the holder set is
// root XOR {0, ..., 2^(r+1)-1}. Each round's port permutation
// complements one index bit in place — a BPC member — and the holders'
// chunks ride it while every other port carries filler. The rounds are
// serial: round r reads what round r-1 delivered.
func CompileBroadcast(logN, root, chunks int) (*Program, error) {
	if logN < 1 {
		return nil, fmt.Errorf("collective: logN must be >= 1, got %d", logN)
	}
	N := 1 << uint(logN)
	if root < 0 || root >= N {
		return nil, fmt.Errorf("collective: root %d out of range [0,%d)", root, N)
	}
	if chunks < 1 {
		return nil, fmt.Errorf("collective: chunks must be >= 1, got %d", chunks)
	}
	in := uniform(N, 0)
	in[root] = chunks
	p := &Program{
		Op:          OpBroadcast,
		LogN:        logN,
		N:           N,
		InChunks:    in,
		StateChunks: uniform(N, chunks),
		Rounds:      make([]Round, logN),
		Serial:      true,
	}
	for r := 0; r < logN; r++ {
		bit := 1 << uint(r)
		dest := make(perm.Perm, N)
		for i := range dest {
			dest[i] = i ^ bit
		}
		var moves []Move
		for m := 0; m < bit; m++ {
			h := root ^ m
			for c := 0; c < chunks; c++ {
				moves = append(moves, Move{SrcPort: h, SrcChunk: c, DstPort: h ^ bit, DstChunk: c})
			}
		}
		p.Rounds[r] = newRoundClass(dest, perm.ClassBPC, moves)
	}
	return p.finish(), nil
}

// CompileGather compiles the collection of one chunk per port at the
// root: in[s][0] lands at state[root][s]. The root can absorb only one
// chunk per pass, so the schedule is N rounds — the root's own chunk
// rides the identity and every other source s rides the cyclic shift
// that carries s to root — all self-routable.
func CompileGather(logN, root int) (*Program, error) {
	if logN < 1 {
		return nil, fmt.Errorf("collective: logN must be >= 1, got %d", logN)
	}
	N := 1 << uint(logN)
	if root < 0 || root >= N {
		return nil, fmt.Errorf("collective: root %d out of range [0,%d)", root, N)
	}
	state := uniform(N, 1)
	state[root] = N
	p := &Program{
		Op:          OpGather,
		LogN:        logN,
		N:           N,
		InChunks:    uniform(N, 1),
		StateChunks: state,
		Rounds:      make([]Round, 0, N),
	}
	p.Rounds = append(p.Rounds, newRoundClass(perm.Identity(N), perm.ClassInverseOmega,
		[]Move{{SrcPort: root, SrcChunk: 0, DstPort: root, DstChunk: root}}))
	for s := 0; s < N; s++ {
		if s == root {
			continue
		}
		shift := ((root-s)%N + N) % N
		p.Rounds = append(p.Rounds, newRoundClass(perm.CyclicShift(logN, shift), perm.ClassInverseOmega,
			[]Move{{SrcPort: s, SrcChunk: 0, DstPort: root, DstChunk: s}}))
	}
	return p.finish(), nil
}

// CompileScatter compiles the distribution of the root's N chunks, one
// per port: in[root][j] lands at state[j][0]. Mirror of gather: N
// rounds, chunk j riding the cyclic shift that carries root to j.
func CompileScatter(logN, root int) (*Program, error) {
	if logN < 1 {
		return nil, fmt.Errorf("collective: logN must be >= 1, got %d", logN)
	}
	N := 1 << uint(logN)
	if root < 0 || root >= N {
		return nil, fmt.Errorf("collective: root %d out of range [0,%d)", root, N)
	}
	in := uniform(N, 0)
	in[root] = N
	p := &Program{
		Op:          OpScatter,
		LogN:        logN,
		N:           N,
		InChunks:    in,
		StateChunks: uniform(N, 1),
		Rounds:      make([]Round, 0, N),
	}
	p.Rounds = append(p.Rounds, newRoundClass(perm.Identity(N), perm.ClassInverseOmega,
		[]Move{{SrcPort: root, SrcChunk: root, DstPort: root, DstChunk: 0}}))
	for j := 0; j < N; j++ {
		if j == root {
			continue
		}
		shift := ((j-root)%N + N) % N
		p.Rounds = append(p.Rounds, newRoundClass(perm.CyclicShift(logN, shift), perm.ClassInverseOmega,
			[]Move{{SrcPort: root, SrcChunk: j, DstPort: j, DstChunk: 0}}))
	}
	return p.finish(), nil
}

// Validate checks the compiled program's structural invariants: every
// move's ports agree with its round's permutation, every read is in
// shape, and — for concurrent (non-serial) programs — no state cell is
// written twice. The compilers are tested to emit only valid programs;
// Validate exists so tests (and the fuzzer) can prove it.
func (p *Program) Validate() error {
	if len(p.InChunks) != p.N || len(p.StateChunks) != p.N {
		return fmt.Errorf("collective: shape arrays sized %d/%d, want N=%d",
			len(p.InChunks), len(p.StateChunks), p.N)
	}
	written := make(map[[2]int]bool)
	for ri := range p.Rounds {
		r := &p.Rounds[ri]
		if len(r.Dest) != p.N {
			return fmt.Errorf("collective: round %d permutation sized %d, want %d", ri, len(r.Dest), p.N)
		}
		if err := r.Dest.Validate(); err != nil {
			return fmt.Errorf("collective: round %d: %w", ri, err)
		}
		for _, m := range r.Moves {
			if m.SrcPort < 0 || m.SrcPort >= p.N || m.DstPort < 0 || m.DstPort >= p.N {
				return fmt.Errorf("collective: round %d move ports (%d->%d) out of range", ri, m.SrcPort, m.DstPort)
			}
			if r.Dest[m.SrcPort] != m.DstPort {
				return fmt.Errorf("collective: round %d moves %d->%d but routes %d->%d",
					ri, m.SrcPort, m.DstPort, m.SrcPort, r.Dest[m.SrcPort])
			}
			readBound := p.InChunks[m.SrcPort]
			if p.Serial {
				readBound = p.StateChunks[m.SrcPort]
			}
			if m.SrcChunk < 0 || m.SrcChunk >= readBound {
				return fmt.Errorf("collective: round %d reads chunk %d of port %d (width %d)",
					ri, m.SrcChunk, m.SrcPort, readBound)
			}
			if m.DstChunk < 0 || m.DstChunk >= p.StateChunks[m.DstPort] {
				return fmt.Errorf("collective: round %d writes chunk %d of port %d (width %d)",
					ri, m.DstChunk, m.DstPort, p.StateChunks[m.DstPort])
			}
			if !p.Serial {
				cell := [2]int{m.DstPort, m.DstChunk}
				if written[cell] {
					return fmt.Errorf("collective: concurrent program writes cell (%d,%d) twice",
						m.DstPort, m.DstChunk)
				}
				written[cell] = true
			}
		}
	}
	return nil
}
