package collective

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/fabric"
	"repro/internal/perm"
)

// Op names a collective operation.
type Op int

const (
	// OpAllToAll is the personalized all-to-all: chunk j of port i
	// lands at port j (as that port's chunk i). N rounds, every one a
	// cyclic shift — Table II's inverse-omega family — so no round
	// pays looping setup.
	OpAllToAll Op = iota
	// OpExchange is the arbitrary all-to-all: each port names a
	// destination per chunk and the compiler decomposes the transfer
	// into at most max-degree matchings (König edge coloring).
	OpExchange
	// OpTranspose moves chunk columns through the matrix-transpose
	// permutation of Table I (rows x cols, row-major ports).
	OpTranspose
	// OpShuffle moves chunk columns through the perfect shuffle of
	// Table I.
	OpShuffle
	// OpBitReversal moves chunk columns through the bit-reversal
	// permutation of Table I (Fig. 4).
	OpBitReversal
	// OpBroadcast copies the root's chunks to every port. The default
	// compiler emits one copy-network fan-out round per chunk; the
	// legacy compiler (behind Options.LegacyBroadcast) uses recursive
	// doubling — log2(N) serial single-bit-complement BPC rounds.
	OpBroadcast
	// OpGather collects one chunk from every port at the root.
	OpGather
	// OpScatter distributes the root's N chunks, one per port.
	OpScatter
	// OpAllGather gives every port a copy of every port's chunk: N
	// copy-network rounds, round j a full fan-out of port j's chunk.
	OpAllGather
	// OpFanOut is pub/sub fan-out: each source names its subscriber
	// set and the compiler packs sources with disjoint subscriber
	// sets into shared copy-network rounds.
	OpFanOut

	numOps = int(OpFanOut) + 1
)

func (o Op) String() string {
	switch o {
	case OpAllToAll:
		return "alltoall"
	case OpExchange:
		return "exchange"
	case OpTranspose:
		return "transpose"
	case OpShuffle:
		return "shuffle"
	case OpBitReversal:
		return "bitreversal"
	case OpBroadcast:
		return "broadcast"
	case OpGather:
		return "gather"
	case OpScatter:
		return "scatter"
	case OpAllGather:
		return "allgather"
	case OpFanOut:
		return "fanout"
	}
	return "unknown"
}

// Move is one chunk relocation within a round: the chunk at
// (SrcPort, SrcChunk) lands at (DstPort, DstChunk). The network
// realizes the port-level motion; the move records which payload cell
// rides it.
type Move struct {
	SrcPort, SrcChunk int
	DstPort, DstChunk int
}

// Round is one network pass of a compiled collective: a full N-port
// permutation plus the payload moves that ride it.
type Round struct {
	// Dest is the full permutation this round presents to the fabric.
	// Nil for copy-network rounds, which present Map instead.
	Dest perm.Perm
	// Map, when non-nil, makes this a copy-network round: Map[out]
	// names the source whose chunk lands at output out (fabric.Idle
	// for outputs the round leaves untouched). Fan-out — one source
	// feeding many outputs — is the point; the executor serves these
	// through Rounder.RouteMulticastRound instead of RouteRound.
	Map []int
	// Class is the compiler's classification of Dest — the predicted
	// routing cost. Self-routable classes pay no looping setup. Map
	// rounds are ClassSelfRoutable by construction: every copy-network
	// phase routes from local tag comparisons.
	Class perm.Class
	// Moves are the payload relocations this round performs.
	Moves []Move
}

// Program is a compiled collective: the round schedule plus the
// payload shape it operates on.
type Program struct {
	Op   Op
	LogN int
	N    int
	// InChunks[p] is how many chunks port p must supply.
	InChunks []int
	// StateChunks[p] is the width of port p's result buffer. The
	// executor initializes state[p][c] = in[p][c] for the cells both
	// shapes cover, then applies the rounds' moves.
	StateChunks []int
	// Rounds is the schedule. When Serial is false the rounds touch
	// pairwise-disjoint cells — every move reads the immutable input
	// and every state cell is written at most once — so the executor
	// runs them concurrently across the fabric's planes. When Serial
	// is true (broadcast) later rounds read earlier rounds' writes and
	// the executor runs them in order, overlapping only round r+1's
	// plan setup with round r's transmission.
	Rounds []Round
	Serial bool
	// Multicast is true when the schedule contains copy-network (map)
	// rounds. The executor then serves rounds individually through
	// RouteMulticastRound — map rounds cannot ride the pipelined
	// permutation batches — relying on the engine's plan cache to keep
	// repeated mappings cheap.
	Multicast bool
	// SelfRoutable counts the rounds whose classification needs no
	// looping setup.
	SelfRoutable int
	// covered is true when the rounds write every state cell exactly
	// once, so the executor can skip initializing state from the
	// input (all-to-all, transpose, scatter, ...).
	covered bool
}

// TotalMoves returns the number of payload chunks the program moves.
func (p *Program) TotalMoves() int {
	total := 0
	for i := range p.Rounds {
		total += len(p.Rounds[i].Moves)
	}
	return total
}

// finish computes the derived classification tally and the coverage
// flag.
func (p *Program) finish() *Program {
	p.SelfRoutable = 0
	for i := range p.Rounds {
		if p.Rounds[i].Class.SelfRoutable() {
			p.SelfRoutable++
		}
	}
	// Non-serial programs write each state cell at most once
	// (Validate's invariant), so move count == state size means full
	// coverage.
	if !p.Serial {
		cells := 0
		for _, w := range p.StateChunks {
			cells += w
		}
		p.covered = p.TotalMoves() == cells
	}
	return p
}

// uniform returns a length-n slice filled with v.
func uniform(n, v int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = v
	}
	return s
}

// newRound classifies dest and wraps it with its moves.
func newRound(dest perm.Perm, moves []Move) Round {
	return Round{Dest: dest, Class: perm.Classify(dest).Class, Moves: moves}
}

// newRoundClass wraps a round whose class is known a priori from the
// pattern itself — every cyclic shift is a Table II inverse-omega
// member, every single-bit complement a Table I BPC member — skipping
// the O(N log N) classifier per round. The claims are cross-checked
// against perm.Classify in the compiler tests.
func newRoundClass(dest perm.Perm, class perm.Class, moves []Move) Round {
	return Round{Dest: dest, Class: class, Moves: moves}
}

// newMapRound wraps a copy-network round. No classifier runs: the
// copy network self-routes by construction — the distribute and
// permute B(n) phases route from destination tags and the omega copy
// ladder from boolean interval splitting — so no map round ever pays
// looping setup.
func newMapRound(m []int, moves []Move) Round {
	return Round{Map: m, Class: perm.ClassSelfRoutable, Moves: moves}
}

// columnRounds builds the k-round schedule shared by the Table I
// collectives: chunk column c rides permutation dest (the same every
// round), port i's chunk landing at port dest[i] in the same column.
func columnRounds(dest perm.Perm, chunks int) []Round {
	class := perm.Classify(dest).Class
	rounds := make([]Round, chunks)
	for c := 0; c < chunks; c++ {
		moves := make([]Move, len(dest))
		for i, d := range dest {
			moves[i] = Move{SrcPort: i, SrcChunk: c, DstPort: d, DstChunk: c}
		}
		rounds[c] = Round{Dest: dest, Class: class, Moves: moves}
	}
	return rounds
}

// CompileAllToAll compiles the personalized all-to-all on N = 2^logN
// ports, each holding N chunks: in[i][j] lands at state[j][i]. The
// schedule is the ring decomposition — round r is the cyclic shift by
// r, moving in[i][(i+r) mod N] to port (i+r) mod N — so all N rounds
// are Table II inverse-omega members and self-route.
func CompileAllToAll(logN int) (*Program, error) {
	if logN < 1 {
		return nil, fmt.Errorf("collective: logN must be >= 1, got %d", logN)
	}
	N := 1 << uint(logN)
	p := &Program{
		Op:          OpAllToAll,
		LogN:        logN,
		N:           N,
		InChunks:    uniform(N, N),
		StateChunks: uniform(N, N),
		Rounds:      make([]Round, N),
	}
	for r := 0; r < N; r++ {
		moves := make([]Move, N)
		for i := 0; i < N; i++ {
			d := (i + r) % N
			moves[i] = Move{SrcPort: i, SrcChunk: d, DstPort: d, DstChunk: i}
		}
		p.Rounds[r] = newRoundClass(perm.CyclicShift(logN, r), perm.ClassInverseOmega, moves)
	}
	return p.finish(), nil
}

// CompileTranspose compiles the rows x cols matrix transpose over
// k-chunk payloads: ports are row-major matrix cells, and chunk column
// c of port r*cols+q lands at port q*rows+r. rows*cols must equal N
// and both must be powers of two; the port permutation is then the
// field-exchange BPC member of Table I (Lenfant's alpha), identical in
// every round — one plan serves all k columns.
func CompileTranspose(logN, rows, cols, chunks int) (*Program, error) {
	if logN < 1 {
		return nil, fmt.Errorf("collective: logN must be >= 1, got %d", logN)
	}
	N := 1 << uint(logN)
	if rows < 1 || cols < 1 || rows*cols != N {
		return nil, fmt.Errorf("collective: transpose %dx%d does not tile N=%d ports", rows, cols, N)
	}
	if !bits.IsPow2(rows) || !bits.IsPow2(cols) {
		return nil, fmt.Errorf("collective: transpose %dx%d needs power-of-two sides", rows, cols)
	}
	if chunks < 1 {
		return nil, fmt.Errorf("collective: chunks must be >= 1, got %d", chunks)
	}
	dest := make(perm.Perm, N)
	for r := 0; r < rows; r++ {
		for q := 0; q < cols; q++ {
			dest[r*cols+q] = q*rows + r
		}
	}
	p := &Program{
		Op:          OpTranspose,
		LogN:        logN,
		N:           N,
		InChunks:    uniform(N, chunks),
		StateChunks: uniform(N, chunks),
		Rounds:      columnRounds(dest, chunks),
	}
	return p.finish(), nil
}

// CompileShuffle compiles the perfect shuffle (Table I) over k-chunk
// payloads: every chunk column rides the same BPC permutation.
func CompileShuffle(logN, chunks int) (*Program, error) {
	return compileColumns(OpShuffle, logN, chunks, perm.PerfectShuffle)
}

// CompileBitReversal compiles the bit-reversal permutation (Table I,
// Fig. 4) over k-chunk payloads.
func CompileBitReversal(logN, chunks int) (*Program, error) {
	return compileColumns(OpBitReversal, logN, chunks, perm.BitReversal)
}

func compileColumns(op Op, logN, chunks int, gen func(int) perm.Perm) (*Program, error) {
	if logN < 1 {
		return nil, fmt.Errorf("collective: logN must be >= 1, got %d", logN)
	}
	if chunks < 1 {
		return nil, fmt.Errorf("collective: chunks must be >= 1, got %d", chunks)
	}
	N := 1 << uint(logN)
	p := &Program{
		Op:          op,
		LogN:        logN,
		N:           N,
		InChunks:    uniform(N, chunks),
		StateChunks: uniform(N, chunks),
		Rounds:      columnRounds(gen(logN), chunks),
	}
	return p.finish(), nil
}

// CompileBroadcast compiles a copy-broadcast of the root's k chunks
// through the copy network: chunk c rides one full-fan-out round
// (Map[out] = root for every out), so the schedule is k data-parallel
// rounds instead of the legacy compiler's log2(N) serial
// recursive-doubling rounds — and because every round reads only the
// immutable input, the rounds pipeline across planes instead of each
// waiting on the previous round's delivery.
func CompileBroadcast(logN, root, chunks int) (*Program, error) {
	if logN < 1 {
		return nil, fmt.Errorf("collective: logN must be >= 1, got %d", logN)
	}
	N := 1 << uint(logN)
	if root < 0 || root >= N {
		return nil, fmt.Errorf("collective: root %d out of range [0,%d)", root, N)
	}
	if chunks < 1 {
		return nil, fmt.Errorf("collective: chunks must be >= 1, got %d", chunks)
	}
	in := uniform(N, 0)
	in[root] = chunks
	p := &Program{
		Op:          OpBroadcast,
		LogN:        logN,
		N:           N,
		InChunks:    in,
		StateChunks: uniform(N, chunks),
		Rounds:      make([]Round, chunks),
		Multicast:   true,
	}
	for c := 0; c < chunks; c++ {
		moves := make([]Move, N)
		for o := 0; o < N; o++ {
			moves[o] = Move{SrcPort: root, SrcChunk: c, DstPort: o, DstChunk: c}
		}
		p.Rounds[c] = newMapRound(uniform(N, root), moves)
	}
	return p.finish(), nil
}

// CompileBroadcastLegacy compiles the permutation-only copy-broadcast
// by recursive doubling: after round r the holder set is root XOR
// {0, ..., 2^(r+1)-1}. Each round's port permutation complements one
// index bit in place — a BPC member — and the holders' chunks ride it
// while every other port carries filler. The rounds are serial: round
// r reads what round r-1 delivered. Kept behind Options.LegacyBroadcast
// for fabrics without a copy network and for A/B measurement against
// CompileBroadcast.
func CompileBroadcastLegacy(logN, root, chunks int) (*Program, error) {
	if logN < 1 {
		return nil, fmt.Errorf("collective: logN must be >= 1, got %d", logN)
	}
	N := 1 << uint(logN)
	if root < 0 || root >= N {
		return nil, fmt.Errorf("collective: root %d out of range [0,%d)", root, N)
	}
	if chunks < 1 {
		return nil, fmt.Errorf("collective: chunks must be >= 1, got %d", chunks)
	}
	in := uniform(N, 0)
	in[root] = chunks
	p := &Program{
		Op:          OpBroadcast,
		LogN:        logN,
		N:           N,
		InChunks:    in,
		StateChunks: uniform(N, chunks),
		Rounds:      make([]Round, logN),
		Serial:      true,
	}
	for r := 0; r < logN; r++ {
		bit := 1 << uint(r)
		dest := make(perm.Perm, N)
		for i := range dest {
			dest[i] = i ^ bit
		}
		var moves []Move
		for m := 0; m < bit; m++ {
			h := root ^ m
			for c := 0; c < chunks; c++ {
				moves = append(moves, Move{SrcPort: h, SrcChunk: c, DstPort: h ^ bit, DstChunk: c})
			}
		}
		p.Rounds[r] = newRoundClass(dest, perm.ClassBPC, moves)
	}
	return p.finish(), nil
}

// CompileGather compiles the collection of one chunk per port at the
// root: in[s][0] lands at state[root][s]. The root can absorb only one
// chunk per pass, so the schedule is N rounds — the root's own chunk
// rides the identity and every other source s rides the cyclic shift
// that carries s to root — all self-routable.
func CompileGather(logN, root int) (*Program, error) {
	if logN < 1 {
		return nil, fmt.Errorf("collective: logN must be >= 1, got %d", logN)
	}
	N := 1 << uint(logN)
	if root < 0 || root >= N {
		return nil, fmt.Errorf("collective: root %d out of range [0,%d)", root, N)
	}
	state := uniform(N, 1)
	state[root] = N
	p := &Program{
		Op:          OpGather,
		LogN:        logN,
		N:           N,
		InChunks:    uniform(N, 1),
		StateChunks: state,
		Rounds:      make([]Round, 0, N),
	}
	p.Rounds = append(p.Rounds, newRoundClass(perm.Identity(N), perm.ClassInverseOmega,
		[]Move{{SrcPort: root, SrcChunk: 0, DstPort: root, DstChunk: root}}))
	for s := 0; s < N; s++ {
		if s == root {
			continue
		}
		shift := ((root-s)%N + N) % N
		p.Rounds = append(p.Rounds, newRoundClass(perm.CyclicShift(logN, shift), perm.ClassInverseOmega,
			[]Move{{SrcPort: s, SrcChunk: 0, DstPort: root, DstChunk: s}}))
	}
	return p.finish(), nil
}

// CompileScatter compiles the distribution of the root's N chunks, one
// per port: in[root][j] lands at state[j][0]. Mirror of gather: N
// rounds, chunk j riding the cyclic shift that carries root to j.
func CompileScatter(logN, root int) (*Program, error) {
	if logN < 1 {
		return nil, fmt.Errorf("collective: logN must be >= 1, got %d", logN)
	}
	N := 1 << uint(logN)
	if root < 0 || root >= N {
		return nil, fmt.Errorf("collective: root %d out of range [0,%d)", root, N)
	}
	in := uniform(N, 0)
	in[root] = N
	p := &Program{
		Op:          OpScatter,
		LogN:        logN,
		N:           N,
		InChunks:    in,
		StateChunks: uniform(N, 1),
		Rounds:      make([]Round, 0, N),
	}
	p.Rounds = append(p.Rounds, newRoundClass(perm.Identity(N), perm.ClassInverseOmega,
		[]Move{{SrcPort: root, SrcChunk: root, DstPort: root, DstChunk: 0}}))
	for j := 0; j < N; j++ {
		if j == root {
			continue
		}
		shift := ((j-root)%N + N) % N
		p.Rounds = append(p.Rounds, newRoundClass(perm.CyclicShift(logN, shift), perm.ClassInverseOmega,
			[]Move{{SrcPort: root, SrcChunk: j, DstPort: j, DstChunk: 0}}))
	}
	return p.finish(), nil
}

// CompileAllGather compiles the all-gather: every port contributes one
// chunk and ends holding all N, in port order — state[p][j] = in[j][0].
// One copy-network round per contributor: round j broadcasts port j's
// chunk to all N ports at slot j. On the permutation path the same
// data motion costs N gather rounds plus a broadcast per slot; here it
// is N data-parallel fan-out rounds that read only the immutable
// input, so they pipeline across the fabric's planes.
func CompileAllGather(logN int) (*Program, error) {
	if logN < 1 {
		return nil, fmt.Errorf("collective: logN must be >= 1, got %d", logN)
	}
	N := 1 << uint(logN)
	p := &Program{
		Op:          OpAllGather,
		LogN:        logN,
		N:           N,
		InChunks:    uniform(N, 1),
		StateChunks: uniform(N, N),
		Rounds:      make([]Round, N),
		Multicast:   true,
	}
	for j := 0; j < N; j++ {
		moves := make([]Move, N)
		for o := 0; o < N; o++ {
			moves[o] = Move{SrcPort: j, SrcChunk: 0, DstPort: o, DstChunk: j}
		}
		p.Rounds[j] = newMapRound(uniform(N, j), moves)
	}
	return p.finish(), nil
}

// CompileFanOut compiles a pub/sub fan-out: dests[s] lists the
// subscriber ports of source s's single chunk (an empty list means s
// publishes nothing). Subscriber sets may overlap arbitrarily; the
// compiler greedily packs sources with pairwise-disjoint subscriber
// sets into shared copy-network rounds (first-fit in ascending source
// order), so independent publications share passes and the round count
// is bounded by the number of publishers, typically far fewer. Each
// subscriber p receives its publishers' chunks in ascending source
// order: the chunk from source s lands at state[p][rank of s among
// p's publishers].
func CompileFanOut(logN int, dests [][]int) (*Program, error) {
	if logN < 1 {
		return nil, fmt.Errorf("collective: logN must be >= 1, got %d", logN)
	}
	N := 1 << uint(logN)
	if len(dests) != N {
		return nil, fmt.Errorf("collective: fan-out spec for %d ports, want N=%d", len(dests), N)
	}
	in := make([]int, N)
	indeg := make([]int, N)
	slot := make(map[[2]int]int) // (src, dst) -> landing chunk at dst
	for s, row := range dests {
		if len(row) > 0 {
			in[s] = 1
		}
		seen := make(map[int]bool, len(row))
		for _, d := range row {
			if d < 0 || d >= N {
				return nil, fmt.Errorf("collective: source %d subscriber %d out of range [0,%d)", s, d, N)
			}
			if seen[d] {
				return nil, fmt.Errorf("collective: source %d lists subscriber %d twice", s, d)
			}
			seen[d] = true
			slot[[2]int{s, d}] = indeg[d]
			indeg[d]++
		}
	}
	p := &Program{
		Op:          OpFanOut,
		LogN:        logN,
		N:           N,
		InChunks:    in,
		StateChunks: indeg,
		Multicast:   true,
	}
	for s := 0; s < N; s++ {
		row := dests[s]
		if len(row) == 0 {
			continue
		}
		fit := -1
		for r := range p.Rounds {
			ok := true
			for _, d := range row {
				if p.Rounds[r].Map[d] != fabric.Idle {
					ok = false
					break
				}
			}
			if ok {
				fit = r
				break
			}
		}
		if fit == -1 {
			fit = len(p.Rounds)
			p.Rounds = append(p.Rounds, newMapRound(uniform(N, fabric.Idle), nil))
		}
		r := &p.Rounds[fit]
		for _, d := range row {
			r.Map[d] = s
			r.Moves = append(r.Moves, Move{SrcPort: s, SrcChunk: 0, DstPort: d, DstChunk: slot[[2]int{s, d}]})
		}
	}
	return p.finish(), nil
}

// Validate checks the compiled program's structural invariants: every
// move's ports agree with its round's permutation or mapping, every
// read is in shape, and — for concurrent (non-serial) programs — no
// state cell is written twice. The compilers are tested to emit only
// valid programs; Validate exists so tests (and the fuzzer) can prove
// it.
func (p *Program) Validate() error {
	if len(p.InChunks) != p.N || len(p.StateChunks) != p.N {
		return fmt.Errorf("collective: shape arrays sized %d/%d, want N=%d",
			len(p.InChunks), len(p.StateChunks), p.N)
	}
	written := make(map[[2]int]bool)
	for ri := range p.Rounds {
		r := &p.Rounds[ri]
		if r.Map != nil {
			if r.Dest != nil {
				return fmt.Errorf("collective: round %d has both a permutation and a map", ri)
			}
			if !p.Multicast {
				return fmt.Errorf("collective: round %d is a map round but the program is not marked multicast", ri)
			}
			if len(r.Map) != p.N {
				return fmt.Errorf("collective: round %d map sized %d, want %d", ri, len(r.Map), p.N)
			}
			assigned := 0
			for out, src := range r.Map {
				if src == fabric.Idle {
					continue
				}
				if src < 0 || src >= p.N {
					return fmt.Errorf("collective: round %d maps output %d to source %d, out of range [0,%d)",
						ri, out, src, p.N)
				}
				assigned++
			}
			if assigned == 0 {
				return fmt.Errorf("collective: round %d map assigns no outputs", ri)
			}
		} else {
			if len(r.Dest) != p.N {
				return fmt.Errorf("collective: round %d permutation sized %d, want %d", ri, len(r.Dest), p.N)
			}
			if err := r.Dest.Validate(); err != nil {
				return fmt.Errorf("collective: round %d: %w", ri, err)
			}
		}
		for _, m := range r.Moves {
			if m.SrcPort < 0 || m.SrcPort >= p.N || m.DstPort < 0 || m.DstPort >= p.N {
				return fmt.Errorf("collective: round %d move ports (%d->%d) out of range", ri, m.SrcPort, m.DstPort)
			}
			if r.Map != nil {
				if r.Map[m.DstPort] != m.SrcPort {
					return fmt.Errorf("collective: round %d moves %d->%d but maps output %d to source %d",
						ri, m.SrcPort, m.DstPort, m.DstPort, r.Map[m.DstPort])
				}
			} else if r.Dest[m.SrcPort] != m.DstPort {
				return fmt.Errorf("collective: round %d moves %d->%d but routes %d->%d",
					ri, m.SrcPort, m.DstPort, m.SrcPort, r.Dest[m.SrcPort])
			}
			readBound := p.InChunks[m.SrcPort]
			if p.Serial {
				readBound = p.StateChunks[m.SrcPort]
			}
			if m.SrcChunk < 0 || m.SrcChunk >= readBound {
				return fmt.Errorf("collective: round %d reads chunk %d of port %d (width %d)",
					ri, m.SrcChunk, m.SrcPort, readBound)
			}
			if m.DstChunk < 0 || m.DstChunk >= p.StateChunks[m.DstPort] {
				return fmt.Errorf("collective: round %d writes chunk %d of port %d (width %d)",
					ri, m.DstChunk, m.DstPort, p.StateChunks[m.DstPort])
			}
			if !p.Serial {
				cell := [2]int{m.DstPort, m.DstChunk}
				if written[cell] {
					return fmt.Errorf("collective: concurrent program writes cell (%d,%d) twice",
						m.DstPort, m.DstChunk)
				}
				written[cell] = true
			}
		}
	}
	return nil
}
