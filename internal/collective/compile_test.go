package collective

import (
	"math/rand"
	"testing"

	"repro/internal/perm"
)

// samePerm reports element-wise equality of two permutations.
func samePerm(a, b perm.Perm) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCompileAllToAllProgram pins the schedule shape: N rounds, every
// one a cyclic shift classified self-routable, N^2 moves total.
func TestCompileAllToAllProgram(t *testing.T) {
	for _, logN := range []int{1, 2, 3, 4} {
		n := 1 << uint(logN)
		p, err := CompileAllToAll(logN)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		if len(p.Rounds) != n || p.Serial {
			t.Fatalf("logN=%d: %d rounds serial=%v, want %d concurrent", logN, len(p.Rounds), p.Serial, n)
		}
		if p.SelfRoutable != n {
			t.Fatalf("logN=%d: %d/%d rounds self-routable, want all (Table II)", logN, p.SelfRoutable, n)
		}
		if p.TotalMoves() != n*n {
			t.Fatalf("logN=%d: %d moves, want N^2=%d", logN, p.TotalMoves(), n*n)
		}
		for r := range p.Rounds {
			want := perm.CyclicShift(logN, r)
			if !samePerm(p.Rounds[r].Dest, want) {
				t.Fatalf("round %d is not the cyclic shift by %d", r, r)
			}
		}
	}
}

// TestCompileColumnPrograms pins the Table I collectives: k identical
// self-routable rounds (one plan serves every column).
func TestCompileColumnPrograms(t *testing.T) {
	const logN, chunks = 4, 3
	cases := []struct {
		name    string
		compile func() (*Program, error)
	}{
		{"transpose", func() (*Program, error) { return CompileTranspose(logN, 4, 4, chunks) }},
		{"wide-transpose", func() (*Program, error) { return CompileTranspose(logN, 2, 8, chunks) }},
		{"shuffle", func() (*Program, error) { return CompileShuffle(logN, chunks) }},
		{"bitreversal", func() (*Program, error) { return CompileBitReversal(logN, chunks) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := tc.compile()
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Validate(); err != nil {
				t.Fatal(err)
			}
			if len(p.Rounds) != chunks || p.SelfRoutable != chunks {
				t.Fatalf("%d rounds, %d self-routable, want %d/%d", len(p.Rounds), p.SelfRoutable, chunks, chunks)
			}
			for r := 1; r < chunks; r++ {
				if !samePerm(p.Rounds[r].Dest, p.Rounds[0].Dest) {
					t.Fatalf("round %d permutation differs from round 0", r)
				}
			}
			if p.Rounds[0].Class != perm.ClassBPC {
				t.Fatalf("Table I member classified %v, want BPC", p.Rounds[0].Class)
			}
		})
	}
}

// TestCompileBroadcastProgram pins the copy-network schedule: one
// data-parallel full-fan-out map round per chunk, every output mapped
// to the root.
func TestCompileBroadcastProgram(t *testing.T) {
	const logN, n, root, chunks = 3, 8, 5, 2
	p, err := CompileBroadcast(logN, root, chunks)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Serial || !p.Multicast || len(p.Rounds) != chunks || p.SelfRoutable != chunks {
		t.Fatalf("serial=%v multicast=%v rounds=%d selfRoutable=%d, want false/true/%d/%d",
			p.Serial, p.Multicast, len(p.Rounds), p.SelfRoutable, chunks, chunks)
	}
	for r := range p.Rounds {
		rd := &p.Rounds[r]
		if rd.Map == nil || rd.Dest != nil {
			t.Fatalf("round %d is not a map round", r)
		}
		for out, src := range rd.Map {
			if src != root {
				t.Fatalf("round %d maps output %d to %d, want root %d", r, out, src, root)
			}
		}
		if len(rd.Moves) != n {
			t.Fatalf("round %d moves %d chunks, want one per port", r, len(rd.Moves))
		}
	}
}

// TestCompileBroadcastLegacyProgram pins the recursive-doubling
// fallback: log2(N) serial BPC rounds whose holder set doubles every
// round.
func TestCompileBroadcastLegacyProgram(t *testing.T) {
	const logN, root, chunks = 3, 5, 2
	p, err := CompileBroadcastLegacy(logN, root, chunks)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !p.Serial || p.Multicast || len(p.Rounds) != logN || p.SelfRoutable != logN {
		t.Fatalf("serial=%v multicast=%v rounds=%d selfRoutable=%d, want true/false/%d/%d",
			p.Serial, p.Multicast, len(p.Rounds), p.SelfRoutable, logN, logN)
	}
	for r := range p.Rounds {
		if p.Rounds[r].Class != perm.ClassBPC {
			t.Fatalf("round %d classified %v, want BPC (bit complement)", r, p.Rounds[r].Class)
		}
		if got, want := len(p.Rounds[r].Moves), (1<<uint(r))*chunks; got != want {
			t.Fatalf("round %d moves %d chunks, want %d (holder set doubles)", r, got, want)
		}
	}
}

// TestCompileAllGatherProgram pins the all-gather schedule: N
// data-parallel map rounds, round j a full fan-out of port j landing
// in column j, covering every state cell exactly once.
func TestCompileAllGatherProgram(t *testing.T) {
	const logN, n = 3, 8
	p, err := CompileAllGather(logN)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Serial || !p.Multicast || len(p.Rounds) != n || p.SelfRoutable != n {
		t.Fatalf("serial=%v multicast=%v rounds=%d selfRoutable=%d, want false/true/%d/%d",
			p.Serial, p.Multicast, len(p.Rounds), p.SelfRoutable, n, n)
	}
	if p.TotalMoves() != n*n {
		t.Fatalf("%d moves, want N^2=%d", p.TotalMoves(), n*n)
	}
	for j := range p.Rounds {
		for out, src := range p.Rounds[j].Map {
			if src != j {
				t.Fatalf("round %d maps output %d to %d, want %d", j, out, src, j)
			}
		}
	}
	out := simulate(p, fill(n, 1))
	for pt := 0; pt < n; pt++ {
		for j := 0; j < n; j++ {
			if want := j * 1000; out[pt][j] != want {
				t.Fatalf("out[%d][%d] = %d, want %d", pt, j, out[pt][j], want)
			}
		}
	}
}

// TestCompileFanOutProgram checks the pub/sub packer: overlapping
// subscriber sets are split across rounds, disjoint ones share a
// round, and each subscriber's slots are keyed by ascending source.
func TestCompileFanOutProgram(t *testing.T) {
	const logN, n = 3, 8
	// Sources 0 and 1 overlap on port 4; sources 2 and 3 are disjoint
	// from each other and from source 0.
	dests := [][]int{
		{4, 5, 6},
		{4, 7},
		{0, 1},
		{2, 3},
		nil, nil, nil, nil,
	}
	p, err := CompileFanOut(logN, dests)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Serial || !p.Multicast {
		t.Fatalf("serial=%v multicast=%v, want false/true", p.Serial, p.Multicast)
	}
	// First-fit: sources 0, 2, 3 pack into round 0; source 1 conflicts
	// on port 4 and opens round 1.
	if len(p.Rounds) != 2 {
		t.Fatalf("%d rounds, want 2 (disjoint sets share a pass)", len(p.Rounds))
	}
	if p.TotalMoves() != 9 {
		t.Fatalf("%d moves, want one per subscription edge (9)", p.TotalMoves())
	}
	in := [][]int{{100}, {200}, {300}, {400}, {}, {}, {}, {}}
	out := simulate(p, in)
	want := [][]int{{300}, {300}, {400}, {400}, {100, 200}, {100}, {100}, {200}}
	for pt := range want {
		if len(out[pt]) != len(want[pt]) {
			t.Fatalf("port %d received %v, want %v", pt, out[pt], want[pt])
		}
		for c := range want[pt] {
			if out[pt][c] != want[pt][c] {
				t.Fatalf("port %d received %v, want %v", pt, out[pt], want[pt])
			}
		}
	}
}

// TestCompileFanOutErrors covers the subscription-spec rejects.
func TestCompileFanOutErrors(t *testing.T) {
	if _, err := CompileFanOut(2, [][]int{{0}, {1}}); err == nil {
		t.Fatal("wrong port count must be rejected")
	}
	if _, err := CompileFanOut(1, [][]int{{0, 0}, nil}); err == nil {
		t.Fatal("duplicate subscriber must be rejected")
	}
	if _, err := CompileFanOut(1, [][]int{{2}, nil}); err == nil {
		t.Fatal("out-of-range subscriber must be rejected")
	}
	p, err := CompileFanOut(1, [][]int{nil, nil})
	if err != nil || len(p.Rounds) != 0 {
		t.Fatalf("empty fan-out: %v rounds=%d, want trivial program", err, len(p.Rounds))
	}
}

// TestCompileGatherScatterPrograms pins both: N self-routable rounds,
// one real transfer each.
func TestCompileGatherScatterPrograms(t *testing.T) {
	const logN, n, root = 3, 8, 3
	for _, tc := range []struct {
		name    string
		compile func() (*Program, error)
	}{
		{"gather", func() (*Program, error) { return CompileGather(logN, root) }},
		{"scatter", func() (*Program, error) { return CompileScatter(logN, root) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p, err := tc.compile()
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Validate(); err != nil {
				t.Fatal(err)
			}
			if len(p.Rounds) != n || p.SelfRoutable != n {
				t.Fatalf("%d rounds %d self-routable, want %d/%d", len(p.Rounds), p.SelfRoutable, n, n)
			}
			if p.TotalMoves() != n {
				t.Fatalf("%d moves, want one per port", p.TotalMoves())
			}
		})
	}
}

// simulate applies a program's moves to an integer payload without a
// fabric, mirroring the executor's buffer discipline.
func simulate(p *Program, in [][]int) [][]int {
	state := make([][]int, p.N)
	for i := range state {
		state[i] = make([]int, p.StateChunks[i])
		copy(state[i], in[i])
	}
	for ri := range p.Rounds {
		moves := p.Rounds[ri].Moves
		vals := make([]int, len(moves))
		for j, m := range moves {
			if p.Serial {
				vals[j] = state[m.SrcPort][m.SrcChunk]
			} else {
				vals[j] = in[m.SrcPort][m.SrcChunk]
			}
		}
		for j, m := range moves {
			state[m.DstPort][m.DstChunk] = vals[j]
		}
	}
	return state
}

// TestCompileExchangeRandom fuzzes random exchange specs: the program
// must validate, use at most max-degree rounds, and deliver every
// chunk to its destination's source-keyed slot.
func TestCompileExchangeRandom(t *testing.T) {
	const logN, n = 4, 16
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		dests := make([][]int, n)
		in := make([][]int, n)
		outdeg := make([]int, n)
		indeg := make([]int, n)
		for p := range dests {
			k := rng.Intn(5)
			seen := map[int]bool{}
			for c := 0; c < k; c++ {
				d := rng.Intn(n + 2) // n+1 values; > n-1 means Keep
				if d >= n || seen[d] {
					d = Keep
				} else {
					seen[d] = true
					outdeg[p]++
					indeg[d]++
				}
				dests[p] = append(dests[p], d)
				in[p] = append(in[p], p*1000+c)
			}
		}
		maxDeg := 0
		for p := 0; p < n; p++ {
			if outdeg[p] > maxDeg {
				maxDeg = outdeg[p]
			}
			if indeg[p] > maxDeg {
				maxDeg = indeg[p]
			}
		}

		prog, err := CompileExchange(logN, dests)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := prog.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(prog.Rounds) != maxDeg {
			t.Fatalf("trial %d: %d rounds, want max degree %d (König)", trial, len(prog.Rounds), maxDeg)
		}
		out := simulate(prog, in)
		for p := range dests {
			for c, d := range dests[p] {
				if d == Keep {
					continue
				}
				if out[d][p] != in[p][c] {
					t.Fatalf("trial %d: out[%d][%d] = %d, want chunk %d of port %d", trial, d, p, out[d][p], c, p)
				}
			}
		}
	}
}

// TestCompileExchangeErrors covers the spec rejects.
func TestCompileExchangeErrors(t *testing.T) {
	if _, err := CompileExchange(2, [][]int{{0}, {1}}); err == nil {
		t.Fatal("wrong port count must be rejected")
	}
	if _, err := CompileExchange(1, [][]int{{0, 0}, {}}); err == nil {
		t.Fatal("duplicate (src,dst) must be rejected")
	}
	if _, err := CompileExchange(1, [][]int{{2}, {}}); err == nil {
		t.Fatal("out-of-range destination must be rejected")
	}
	if _, err := CompileExchange(1, [][]int{{-7}, {}}); err == nil {
		t.Fatal("negative non-Keep destination must be rejected")
	}
	p, err := CompileExchange(1, [][]int{{}, {}})
	if err != nil || len(p.Rounds) != 0 {
		t.Fatalf("empty exchange: %v rounds=%d, want trivial program", err, len(p.Rounds))
	}
}

// TestCompileErrors covers the shared compiler rejects.
func TestCompileErrors(t *testing.T) {
	if _, err := CompileAllToAll(0); err == nil {
		t.Fatal("logN=0 must be rejected")
	}
	if _, err := CompileTranspose(3, 2, 2, 1); err == nil {
		t.Fatal("rows*cols != N must be rejected")
	}
	if _, err := CompileShuffle(3, 0); err == nil {
		t.Fatal("zero chunks must be rejected")
	}
	if _, err := CompileBroadcast(3, 8, 1); err == nil {
		t.Fatal("root out of range must be rejected")
	}
	if _, err := CompileGather(3, -1); err == nil {
		t.Fatal("negative gather root must be rejected")
	}
}

// TestCompiledRoundClassesHonest audits the classes the fast compilers
// assign a priori (via newRoundClass, skipping perm.Classify per
// round): every claimed class must satisfy its own predicate, and the
// claimed self-routability must agree with the full classifier. The
// claimed class may differ from Classify's precedence-minimal pick
// (e.g. the identity is both BPC and inverse-omega), so the test
// checks truth, not equality.
func TestCompiledRoundClassesHonest(t *testing.T) {
	const logN = 4
	must := func(p *Program, err error) *Program {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	progs := []*Program{
		must(CompileAllToAll(logN)),
		must(CompileTranspose(logN, 4, 4, 2)),
		must(CompileShuffle(logN, 3)),
		must(CompileBitReversal(logN, 1)),
		must(CompileBroadcast(logN, 3, 2)),
		must(CompileBroadcastLegacy(logN, 3, 2)),
		must(CompileGather(logN, 5)),
		must(CompileScatter(logN, 5)),
		must(CompileAllGather(logN)),
	}
	for _, p := range progs {
		for i := range p.Rounds {
			r := &p.Rounds[i]
			if r.Map != nil {
				// Map rounds claim self-routable by construction; the
				// honest check is that the mapping classifier agrees the
				// map is well-formed (multicast or degenerate-injective),
				// never invalid.
				if !r.Class.SelfRoutable() {
					t.Errorf("%s round %d: map round claims %v, want self-routable", p.Op, i, r.Class)
				}
				if cls := perm.ClassifyMapping(r.Map); cls.Class == perm.MappingInvalid {
					t.Errorf("%s round %d: map classified invalid", p.Op, i)
				}
				continue
			}
			switch r.Class {
			case perm.ClassBPC:
				if _, ok := perm.RecognizeBPC(r.Dest); !ok {
					t.Errorf("%s round %d: claimed BPC but RecognizeBPC rejects %v", p.Op, i, r.Dest)
				}
			case perm.ClassInverseOmega:
				if !perm.IsInverseOmega(r.Dest) {
					t.Errorf("%s round %d: claimed inverse-omega but IsInverseOmega rejects %v", p.Op, i, r.Dest)
				}
			}
			if got := perm.Classify(r.Dest).Class.SelfRoutable(); got != r.Class.SelfRoutable() {
				t.Errorf("%s round %d: claimed self-routable=%v, classifier says %v for %v",
					p.Op, i, r.Class.SelfRoutable(), got, r.Dest)
			}
		}
	}
}
