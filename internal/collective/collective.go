// Package collective is the bulk data-movement layer over the packet
// fabric: the named operations a SIMD-style workload actually issues —
// all-to-all, transpose, shuffle, bit reversal, broadcast, gather,
// scatter — compiled into schedules of whole-permutation rounds and
// pipelined across the fabric's switching planes.
//
// The second half of Nassimi & Sahni is exactly this layer: Tables I
// and II list the data-movement permutations (the BPC and inverse-
// omega families) that SIMD algorithms use, and the paper's point is
// that every one of them self-routes — O(log N) gate delays, no
// looping setup. Per-packet scheduling (internal/fabric's VOQ/frame
// path) throws that structure away: it rediscovers a permutation every
// frame and fills it with whatever traffic is queued. The collective
// layer keeps the structure:
//
//   - a pattern compiler (compile.go, exchange.go) turns each named
//     operation into rounds and classifies every round's permutation
//     with perm.Classify — Table I members compile to BPC rounds,
//     all-to-all compiles to the cyclic-shift ring (Table II), and
//     arbitrary exchanges are decomposed by König edge coloring into
//     at most max-degree rounds;
//   - the executor (handle.go) pipelines the rounds across the
//     fabric's K planes and through each plane's request queue:
//     data-parallel programs keep K rounds in flight across planes
//     and a window of rounds queued behind each one, so successor
//     plans are being set up while the current round is still
//     transmitting (Section IV's pipelining); serial programs fall
//     back to a one-round double buffer, prewarming round r+1's plan
//     while round r is in flight;
//   - admission is deadline-aware: a collective whose estimated
//     rounds x round-time exceeds the caller's context deadline is
//     rejected up front instead of timing out halfway;
//   - every collective carries a context-cancellable Handle with
//     per-round progress, and the service aggregates rounds,
//     self-routed vs fallback counts, bytes moved, and per-plane
//     occupancy into an expvar-style snapshot.
package collective

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/perm"
)

// Errors returned by the submission paths.
var (
	// ErrDeadline reports a deadline-aware admission reject: the
	// compiled schedule cannot finish before the context deadline.
	ErrDeadline = errors.New("collective: deadline cannot be met")
)

// Rounder is the slice of the packet fabric the collective layer
// drives: whole-permutation rounds dispatched to a preferred plane —
// one at a time with plan prewarm for the serial double buffer, or as
// a pipelined run through the plane's request queue. *fabric.Fabric
// implements it.
type Rounder interface {
	N() int
	Planes() int
	RouteRound(dest perm.Perm, prefer int) (fabric.RoundResult, error)
	RouteRounds(dests []perm.Perm, prefer int) ([]fabric.RoundResult, error)
	PrewarmRound(dest perm.Perm, prefer int)
	// RouteMulticastRound serves one copy-network round: m[out] names
	// the source whose value lands at output out (fabric.Idle for
	// unassigned outputs), and fan-out — one source feeding many
	// outputs — rides a single pass.
	RouteMulticastRound(m []int, prefer int) (fabric.RoundResult, error)
}

// Options parameterizes New. The zero value is usable.
type Options struct {
	// BytesPerChunk scales the bytes-moved counter: every chunk a
	// round moves accounts for this many bytes. Zero disables byte
	// accounting.
	BytesPerChunk int64
	// RoundEstimate seeds the admission controller's per-round service
	// time before any round has been measured. Zero means "no
	// estimate": until the first rounds complete, every deadline is
	// admitted.
	RoundEstimate time.Duration
	// LegacyBroadcast compiles Broadcast with the permutation-only
	// recursive-doubling schedule (log2 N serial BPC rounds) instead
	// of the copy network's one fan-out round per chunk. Kept for
	// fabrics without multicast support and for A/B measurement.
	LegacyBroadcast bool
}

// Service compiles and executes collectives over one fabric. All
// methods are safe for concurrent use; any number of collectives may
// be in flight at once (they share the fabric's planes).
type Service[T any] struct {
	fab  Rounder
	opts Options
	n    int
	logN int

	submitted        atomic.Int64
	completed        atomic.Int64
	failed           atomic.Int64
	cancelled        atomic.Int64
	deadlineRejected atomic.Int64
	active           atomic.Int64

	rounds      atomic.Int64
	selfRouted  atomic.Int64
	fallbacks   atomic.Int64
	mcastRounds atomic.Int64
	cacheHits   atomic.Int64
	chunksMoved atomic.Int64

	perOp       [numOps]atomic.Int64
	planeRounds []atomic.Int64

	// roundHist is the per-round service time (route + move
	// application); pipelined batches contribute their amortized
	// per-round time, the same sample the admission EWMA consumes.
	// opHist is the end-to-end collective latency, submit to settle.
	roundHist obs.Histogram
	opHist    obs.Histogram

	// ewmaRoundNs is the exponentially weighted moving average of
	// per-round service time, feeding deadline admission.
	ewmaRoundNs atomic.Int64

	// progCache memoizes compiled programs by shape. Programs are
	// immutable once compiled, so concurrent handles share them
	// freely. Exchange is the one uncached operation: its schedule
	// depends on the full destination matrix, not a few integers.
	progCache sync.Map // progKey -> *Program
}

// progKey identifies a compiled program's shape. Fields unused by an
// operation stay zero.
type progKey struct {
	op           Op
	rows, cols   int
	chunks, root int
}

// cachedProgram returns the memoized program for key, compiling on
// miss. Compile errors are not cached (they are cheap to re-derive and
// callers should see them every time).
func (s *Service[T]) cachedProgram(key progKey, compile func() (*Program, error)) (*Program, error) {
	if v, ok := s.progCache.Load(key); ok {
		return v.(*Program), nil
	}
	prog, err := compile()
	if err != nil {
		return nil, err
	}
	s.progCache.Store(key, prog)
	return prog, nil
}

// New builds a collective service over fab. The fabric's port count
// must be a power of two (it always is — planes are B(n) networks).
func New[T any](fab Rounder, opts Options) *Service[T] {
	n := fab.N()
	logN := 0
	for 1<<uint(logN) < n {
		logN++
	}
	s := &Service[T]{
		fab:         fab,
		opts:        opts,
		n:           n,
		logN:        logN,
		planeRounds: make([]atomic.Int64, fab.Planes()),
	}
	if opts.RoundEstimate > 0 {
		s.ewmaRoundNs.Store(opts.RoundEstimate.Nanoseconds())
	}
	return s
}

// N returns the number of fabric ports a collective spans.
func (s *Service[T]) N() int { return s.n }

// AllToAll starts the personalized all-to-all: chunk j of data[i]
// lands at port j as its chunk i (the result is the transpose of the
// port x chunk matrix). data must be N rows of N chunks.
func (s *Service[T]) AllToAll(ctx context.Context, data [][]T) (*Handle[T], error) {
	prog, err := s.cachedProgram(progKey{op: OpAllToAll}, func() (*Program, error) {
		return CompileAllToAll(s.logN)
	})
	if err != nil {
		return nil, err
	}
	return s.submit(ctx, prog, data)
}

// Exchange starts an arbitrary all-to-all: dests[p][c] names the
// destination of chunk c of port p (Keep leaves it in place). The
// chunk from port p lands at its destination's slot p.
func (s *Service[T]) Exchange(ctx context.Context, dests [][]int, data [][]T) (*Handle[T], error) {
	prog, err := CompileExchange(s.logN, dests)
	if err != nil {
		return nil, err
	}
	return s.submit(ctx, prog, data)
}

// Transpose starts the rows x cols matrix transpose of Table I over
// every chunk column of data (N rows of equal width >= 1).
func (s *Service[T]) Transpose(ctx context.Context, rows, cols int, data [][]T) (*Handle[T], error) {
	w := width(data)
	prog, err := s.cachedProgram(progKey{op: OpTranspose, rows: rows, cols: cols, chunks: w}, func() (*Program, error) {
		return CompileTranspose(s.logN, rows, cols, w)
	})
	if err != nil {
		return nil, err
	}
	return s.submit(ctx, prog, data)
}

// Shuffle starts the perfect shuffle of Table I over every chunk
// column of data.
func (s *Service[T]) Shuffle(ctx context.Context, data [][]T) (*Handle[T], error) {
	w := width(data)
	prog, err := s.cachedProgram(progKey{op: OpShuffle, chunks: w}, func() (*Program, error) {
		return CompileShuffle(s.logN, w)
	})
	if err != nil {
		return nil, err
	}
	return s.submit(ctx, prog, data)
}

// BitReversal starts the bit-reversal permutation of Table I (Fig. 4)
// over every chunk column of data.
func (s *Service[T]) BitReversal(ctx context.Context, data [][]T) (*Handle[T], error) {
	w := width(data)
	prog, err := s.cachedProgram(progKey{op: OpBitReversal, chunks: w}, func() (*Program, error) {
		return CompileBitReversal(s.logN, w)
	})
	if err != nil {
		return nil, err
	}
	return s.submit(ctx, prog, data)
}

// Broadcast starts a copy-broadcast of the root's chunks to every
// port. data[root] supplies the chunks; every other row must be empty.
// By default each chunk rides one copy-network fan-out round; with
// Options.LegacyBroadcast the schedule is the recursive-doubling
// permutation ladder instead.
func (s *Service[T]) Broadcast(ctx context.Context, root int, data [][]T) (*Handle[T], error) {
	chunks := 0
	if root >= 0 && root < len(data) {
		chunks = len(data[root])
	}
	prog, err := s.cachedProgram(progKey{op: OpBroadcast, root: root, chunks: chunks}, func() (*Program, error) {
		if s.opts.LegacyBroadcast {
			return CompileBroadcastLegacy(s.logN, root, chunks)
		}
		return CompileBroadcast(s.logN, root, chunks)
	})
	if err != nil {
		return nil, err
	}
	return s.submit(ctx, prog, data)
}

// AllGather starts the all-gather: every port contributes exactly one
// chunk and ends holding all N in port order — out[p][j] = data[j][0].
// Each contribution rides one copy-network fan-out round.
func (s *Service[T]) AllGather(ctx context.Context, data [][]T) (*Handle[T], error) {
	prog, err := s.cachedProgram(progKey{op: OpAllGather}, func() (*Program, error) {
		return CompileAllGather(s.logN)
	})
	if err != nil {
		return nil, err
	}
	return s.submit(ctx, prog, data)
}

// FanOut starts a pub/sub fan-out: dests[s] lists the subscribers of
// source s's single chunk, and each subscriber receives its
// publishers' chunks in ascending source order. Like Exchange it is
// uncached: the schedule depends on the whole subscription matrix.
func (s *Service[T]) FanOut(ctx context.Context, dests [][]int, data [][]T) (*Handle[T], error) {
	prog, err := CompileFanOut(s.logN, dests)
	if err != nil {
		return nil, err
	}
	return s.submit(ctx, prog, data)
}

// Gather starts the collection of one chunk per port at the root:
// data[p] must hold exactly one chunk, and the result's root row holds
// chunk p at slot p.
func (s *Service[T]) Gather(ctx context.Context, root int, data [][]T) (*Handle[T], error) {
	prog, err := s.cachedProgram(progKey{op: OpGather, root: root}, func() (*Program, error) {
		return CompileGather(s.logN, root)
	})
	if err != nil {
		return nil, err
	}
	return s.submit(ctx, prog, data)
}

// Scatter starts the distribution of the root's N chunks: chunk j of
// data[root] lands at port j as its only chunk. Every non-root row
// must be empty.
func (s *Service[T]) Scatter(ctx context.Context, root int, data [][]T) (*Handle[T], error) {
	prog, err := s.cachedProgram(progKey{op: OpScatter, root: root}, func() (*Program, error) {
		return CompileScatter(s.logN, root)
	})
	if err != nil {
		return nil, err
	}
	return s.submit(ctx, prog, data)
}

// width returns the chunk width the compiler should target for a
// column-uniform payload: the first row's length (ragged rows are then
// rejected by submit's shape check).
func width[T any](data [][]T) int {
	if len(data) == 0 {
		return 0
	}
	return len(data[0])
}

// submit validates the payload shape against the compiled program,
// runs deadline admission, and starts the executor.
func (s *Service[T]) submit(ctx context.Context, prog *Program, data [][]T) (*Handle[T], error) {
	if len(data) != prog.N {
		return nil, fmt.Errorf("collective: %s payload has %d ports, want N=%d", prog.Op, len(data), prog.N)
	}
	for p := range data {
		if len(data[p]) != prog.InChunks[p] {
			return nil, fmt.Errorf("collective: %s payload port %d has %d chunks, want %d",
				prog.Op, p, len(data[p]), prog.InChunks[p])
		}
	}
	if deadline, ok := ctx.Deadline(); ok {
		if est := s.ewmaRoundNs.Load(); est > 0 {
			need := time.Duration(est) * time.Duration(len(prog.Rounds))
			if remaining := time.Until(deadline); need > remaining {
				s.deadlineRejected.Add(1)
				return nil, fmt.Errorf("%w: %d rounds x %v estimated round time = %v exceeds the %v remaining",
					ErrDeadline, len(prog.Rounds), time.Duration(est), need, remaining.Round(time.Microsecond))
			}
		}
	}
	h := newHandle(s, prog, ctx, data)
	s.submitted.Add(1)
	s.perOp[prog.Op].Add(1)
	s.active.Add(1)
	go h.run()
	return h, nil
}

// observeRounds folds one worker's batched round tally into the
// service counters and feeds the admission estimate the worker's mean
// per-round wall time.
func (s *Service[T]) observeRounds(t *roundTally, meanRound time.Duration) {
	s.rounds.Add(int64(t.rounds))
	s.selfRouted.Add(int64(t.selfRouted))
	s.fallbacks.Add(int64(t.fallbacks))
	s.mcastRounds.Add(int64(t.mcastRounds))
	s.cacheHits.Add(int64(t.cacheHits))
	s.chunksMoved.Add(int64(t.moves))
	for p, c := range t.planeRounds {
		if c > 0 {
			s.planeRounds[p].Add(int64(c))
		}
	}
	// EWMA with weight 1/8; a racy update loses at most one sample.
	sample := meanRound.Nanoseconds()
	old := s.ewmaRoundNs.Load()
	if old == 0 {
		s.ewmaRoundNs.Store(sample)
	} else {
		s.ewmaRoundNs.Store(old + (sample-old)/8)
	}
}

// Stats is the expvar-style snapshot of a collective service.
type Stats struct {
	Submitted        int64 `json:"submitted"`
	Completed        int64 `json:"completed"`
	Failed           int64 `json:"failed"`
	Cancelled        int64 `json:"cancelled"`
	DeadlineRejected int64 `json:"deadline_rejected"`
	Active           int64 `json:"active"`

	Rounds     int64 `json:"rounds"`
	SelfRouted int64 `json:"self_routed_rounds"`
	Fallbacks  int64 `json:"fallback_rounds"`
	// McastRounds counts the copy-network rounds within SelfRouted:
	// they self-route by construction but take the multicast path, so
	// they are tallied separately too.
	McastRounds    int64 `json:"mcast_rounds"`
	RoundCacheHits int64 `json:"round_cache_hits"`
	ChunksMoved    int64 `json:"chunks_moved"`
	BytesMoved     int64 `json:"bytes_moved"`

	// Round is the per-round service-time histogram; EndToEnd the
	// submit-to-settle latency of whole collectives.
	Round    obs.HistogramSnapshot `json:"round"`
	EndToEnd obs.HistogramSnapshot `json:"end_to_end"`

	// SelfRouteRatio is SelfRouted / Rounds: 1.0 means no round paid
	// looping setup.
	SelfRouteRatio float64 `json:"self_route_ratio"`
	// EstRoundNs is the admission controller's current per-round
	// service-time estimate.
	EstRoundNs int64 `json:"est_round_ns"`
	// PlaneRounds[i] counts the rounds plane i served — the plane
	// occupancy of collective traffic.
	PlaneRounds []int64 `json:"plane_rounds"`
	// PerOp counts submissions by operation name.
	PerOp map[string]int64 `json:"per_op"`
}

// Stats captures the current counters.
func (s *Service[T]) Stats() Stats {
	st := Stats{
		Submitted:        s.submitted.Load(),
		Completed:        s.completed.Load(),
		Failed:           s.failed.Load(),
		Cancelled:        s.cancelled.Load(),
		DeadlineRejected: s.deadlineRejected.Load(),
		Active:           s.active.Load(),
		Rounds:           s.rounds.Load(),
		SelfRouted:       s.selfRouted.Load(),
		Fallbacks:        s.fallbacks.Load(),
		McastRounds:      s.mcastRounds.Load(),
		RoundCacheHits:   s.cacheHits.Load(),
		ChunksMoved:      s.chunksMoved.Load(),
		Round:            s.roundHist.Snapshot(),
		EndToEnd:         s.opHist.Snapshot(),
		EstRoundNs:       s.ewmaRoundNs.Load(),
		PlaneRounds:      make([]int64, len(s.planeRounds)),
		PerOp:            make(map[string]int64, numOps),
	}
	st.BytesMoved = st.ChunksMoved * s.opts.BytesPerChunk
	if st.Rounds > 0 {
		st.SelfRouteRatio = float64(st.SelfRouted) / float64(st.Rounds)
	}
	for i := range s.planeRounds {
		st.PlaneRounds[i] = s.planeRounds[i].Load()
	}
	for op := 0; op < numOps; op++ {
		if c := s.perOp[op].Load(); c > 0 {
			st.PerOp[Op(op).String()] = c
		}
	}
	return st
}

// Var adapts the service to an expvar.Var for /debug/vars publishing.
func (s *Service[T]) Var() expvar.Var {
	return expvar.Func(func() any { return s.Stats() })
}

// Register exports the service's counters and latency histograms into
// reg under the benes_collective_* names. Like the engine and fabric
// registrations, every value is read at scrape time from the counters
// the executors already maintain.
func (s *Service[T]) Register(reg *obs.Registry) {
	reg.CounterFunc("benes_collective_submitted_total", "Collectives admitted.", nil, s.submitted.Load)
	reg.CounterFunc("benes_collective_completed_total", "Collectives finished successfully.", nil, s.completed.Load)
	reg.CounterFunc("benes_collective_failed_total", "Collectives settled with a routing error.", nil, s.failed.Load)
	reg.CounterFunc("benes_collective_cancelled_total", "Collectives aborted by context cancellation.", nil, s.cancelled.Load)
	reg.CounterFunc("benes_collective_deadline_rejected_total", "Collectives rejected at admission: schedule cannot meet the deadline.", nil, s.deadlineRejected.Load)
	reg.CounterFunc("benes_collective_rounds_total", "Whole-permutation rounds executed.", nil, s.rounds.Load)
	reg.CounterFunc("benes_collective_self_routed_rounds_total", "Rounds served without looping setup.", nil, s.selfRouted.Load)
	reg.CounterFunc("benes_collective_fallback_rounds_total", "Rounds that fell back to the looping algorithm.", nil, s.fallbacks.Load)
	reg.CounterFunc("benes_collective_mcast_rounds_total", "Copy-network (multicast) rounds executed.", nil, s.mcastRounds.Load)
	reg.CounterFunc("benes_collective_round_cache_hits_total", "Rounds whose plan was already resolved on arrival.", nil, s.cacheHits.Load)
	reg.CounterFunc("benes_collective_chunks_moved_total", "Payload chunks moved by completed rounds.", nil, s.chunksMoved.Load)
	reg.GaugeFunc("benes_collective_active", "Collectives currently in flight.", nil,
		func() float64 { return float64(s.active.Load()) })
	reg.GaugeFunc("benes_collective_est_round_seconds", "Admission controller's per-round service-time estimate.", nil,
		func() float64 { return float64(s.ewmaRoundNs.Load()) / 1e9 })
	for op := 0; op < numOps; op++ {
		op := op
		reg.CounterFunc("benes_collective_ops_total", "Collectives submitted, by operation.",
			obs.Labels{{"op", Op(op).String()}}, s.perOp[op].Load)
	}
	reg.RegisterHistogram("benes_collective_round_seconds", "Per-round service time (route plus move application).", nil, &s.roundHist)
	reg.RegisterHistogram("benes_collective_op_seconds", "End-to-end collective latency, submit to settle.", nil, &s.opHist)
}
