package collective

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/perm"
)

// TestBenchCollectiveArtifact is the CI bench-smoke hook: when
// BENCH_COLLECTIVE_JSON names a file, it times the compiled collective
// path against the naive serial path and writes a small JSON artifact
// (pkts/s, rounds/s, self-route ratio, speedup) there. Without the
// env var the test is skipped, so normal test runs stay fast and
// deterministic.
func TestBenchCollectiveArtifact(t *testing.T) {
	path := os.Getenv("BENCH_COLLECTIVE_JSON")
	if path == "" {
		t.Skip("BENCH_COLLECTIVE_JSON not set")
	}
	const logN, n, reps = 6, 64, 10
	planes := runtime.GOMAXPROCS(0)
	data := benchPayload(n)

	// Each path gets its own fabric (its own plan caches) and one
	// untimed warmup pass, so both are measured at steady state — the
	// same regime the Benchmark pair reports.
	f, err := fabric.New[int](fabric.Config{LogN: logN, Planes: planes}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s := New[int](f, Options{})

	runCompiled := func() {
		h, err := s.AllToAll(context.Background(), data)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	runCompiled()
	start := time.Now()
	for i := 0; i < reps; i++ {
		runCompiled()
	}
	compiled := time.Since(start)

	// Naive baseline: k independent per-permutation submissions, each
	// building its own shift and move list (the same shape as
	// BenchmarkNaiveAllToAll).
	nf, err := fabric.New[int](fabric.Config{LogN: logN, Planes: planes}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer nf.Close()
	runNaive := func() {
		state := make([][]int, n)
		for p := range state {
			state[p] = make([]int, n)
		}
		for r := 0; r < n; r++ {
			dest := perm.CyclicShift(logN, r)
			moves := make([]Move, 0, n)
			for p := 0; p < n; p++ {
				moves = append(moves, Move{SrcPort: p, SrcChunk: dest[p], DstPort: dest[p], DstChunk: p})
			}
			if _, err := nf.RouteRound(dest, 0); err != nil {
				t.Fatal(err)
			}
			for _, m := range moves {
				state[m.DstPort][m.DstChunk] = data[m.SrcPort][m.SrcChunk]
			}
		}
	}
	runNaive()
	start = time.Now()
	for i := 0; i < reps; i++ {
		runNaive()
	}
	naive := time.Since(start)

	st := s.Stats()
	rounds := reps * n // timed rounds (the warmup pass is excluded)
	artifact := map[string]any{
		"n":                n,
		"planes":           planes,
		"reps":             reps,
		"rounds":           rounds,
		"pkts_per_sec":     float64(rounds*n) / compiled.Seconds(),
		"rounds_per_sec":   float64(rounds) / compiled.Seconds(),
		"self_route_ratio": st.SelfRouteRatio,
		"compiled_ns":      compiled.Nanoseconds(),
		"naive_ns":         naive.Nanoseconds(),
		"speedup":          float64(naive.Nanoseconds()) / float64(compiled.Nanoseconds()),
	}
	out, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %s", path, out)
	if st.SelfRouteRatio != 1.0 {
		t.Fatalf("all-to-all self-route ratio = %v, want 1.0", st.SelfRouteRatio)
	}
}
