package collective

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/fabric"
	"repro/internal/perm"
)

// The acceptance benchmark pair: the compiled/pipelined collective
// path versus the naive alternative — the same N permutations
// submitted to the fabric one at a time, no plane parallelism, no
// prewarmed double buffer. Run with
//
//	go test ./internal/collective/ -bench AllToAll -benchtime 2x
//
// and compare ns/op; the collective path should win by roughly the
// plane count.

func benchFabric(b *testing.B, logN, planes int) *fabric.Fabric[int] {
	b.Helper()
	f, err := fabric.New[int](fabric.Config{LogN: logN, Planes: planes}, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(f.Close)
	return f
}

func benchPayload(n int) [][]int {
	data := make([][]int, n)
	for p := range data {
		data[p] = make([]int, n)
		for c := range data[p] {
			data[p][c] = p*n + c
		}
	}
	return data
}

// BenchmarkCollectiveAllToAll measures the compiled path at N=256
// with one plane per available CPU.
func BenchmarkCollectiveAllToAll(b *testing.B) {
	const logN, n = 8, 256
	planes := runtime.GOMAXPROCS(0)
	s := New[int](benchFabric(b, logN, planes), Options{})
	data := benchPayload(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := s.AllToAll(context.Background(), data)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := h.Wait(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := s.Stats()
	b.ReportMetric(float64(st.Rounds)/b.Elapsed().Seconds(), "rounds/s")
	b.ReportMetric(float64(st.ChunksMoved)/b.Elapsed().Seconds(), "chunks/s")
	b.ReportMetric(st.SelfRouteRatio, "self-route-ratio")
}

// BenchmarkNaiveAllToAll measures the baseline the collective layer
// replaces: k independent per-permutation fabric submissions. Each
// round builds its own shift permutation and move list (nothing is
// amortized across submissions), routes it on one plane, and applies
// the deliveries serially.
func BenchmarkNaiveAllToAll(b *testing.B) {
	const logN, n = 8, 256
	f := benchFabric(b, logN, runtime.GOMAXPROCS(0))
	in := benchPayload(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		state := make([][]int, n)
		for p := range state {
			state[p] = make([]int, n)
		}
		for r := 0; r < n; r++ {
			dest := perm.CyclicShift(logN, r)
			moves := make([]Move, 0, n)
			for p := 0; p < n; p++ {
				d := dest[p]
				moves = append(moves, Move{SrcPort: p, SrcChunk: d, DstPort: d, DstChunk: p})
			}
			if _, err := f.RouteRound(dest, 0); err != nil {
				b.Fatal(err)
			}
			for _, m := range moves {
				state[m.DstPort][m.DstChunk] = in[m.SrcPort][m.SrcChunk]
			}
		}
	}
}

// benchBroadcast drives root-0 broadcasts at N=256; the legacy flag
// selects the serial recursive-doubling compiler so the pair measures
// the copy-network rewrite head to head. The copy network pays one
// (3-pass) round per chunk while recursive doubling always pays log N
// serial (1-pass) rounds, so the crossover sits near chunks = log N/3.
func benchBroadcast(b *testing.B, legacy bool, chunks int) {
	const logN, n = 8, 256
	planes := runtime.GOMAXPROCS(0)
	s := New[int](benchFabric(b, logN, planes), Options{LegacyBroadcast: legacy})
	data := make([][]int, n)
	data[0] = make([]int, chunks)
	for c := range data[0] {
		data[0][c] = c
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := s.Broadcast(context.Background(), 0, data)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := h.Wait(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(s.Stats().Rounds)/float64(b.N), "rounds/op")
}

// BenchmarkCollectiveBroadcast measures the multicast-backed broadcast
// of one chunk: a single copy-network round instead of log N.
func BenchmarkCollectiveBroadcast(b *testing.B) { benchBroadcast(b, false, 1) }

// BenchmarkCollectiveBroadcastLegacy measures the recursive-doubling
// compiler it replaced on the same one-chunk payload: log N serial
// whole-permutation rounds.
func BenchmarkCollectiveBroadcastLegacy(b *testing.B) { benchBroadcast(b, true, 1) }

// BenchmarkCollectiveBroadcastWide repeats the pair at 8 chunks —
// past the crossover, where the per-chunk copy rounds outnumber the
// payload-oblivious log N of recursive doubling.
func BenchmarkCollectiveBroadcastWide(b *testing.B)       { benchBroadcast(b, false, 8) }
func BenchmarkCollectiveBroadcastWideLegacy(b *testing.B) { benchBroadcast(b, true, 8) }

// BenchmarkCollectiveTranspose measures the column-collective path —
// one plan, k rounds — at N=256 with 8 chunk columns.
func BenchmarkCollectiveTranspose(b *testing.B) {
	const logN, n, chunks = 8, 256, 8
	planes := runtime.GOMAXPROCS(0)
	s := New[int](benchFabric(b, logN, planes), Options{})
	data := make([][]int, n)
	for p := range data {
		data[p] = make([]int, chunks)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := s.Transpose(context.Background(), 16, 16, data)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := h.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}
