package collective

import (
	"context"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/perm"
)

// overlapPrewarm reports whether the double-buffered prewarm can
// actually overlap a round in flight: it needs a second execution
// resource. On a single-CPU process the prewarm goroutine would just
// time-slice against the round it is meant to hide behind, turning the
// double buffer into pure per-round overhead.
func overlapPrewarm() bool { return runtime.GOMAXPROCS(0) > 1 }

// Handle tracks one in-flight collective. It is returned immediately
// by the Service entry points; the schedule executes in the background
// and Wait delivers the result. Cancelling the submission context
// aborts the remaining rounds.
type Handle[T any] struct {
	svc  *Service[T]
	prog *Program
	ctx  context.Context

	// tr is the request trace carried by the submission context (nil
	// when untraced); begin anchors the end-to-end latency sample.
	tr    *obs.Trace
	begin time.Time

	// in aliases the caller's payload (MPI-style ownership: the
	// caller must not modify the buffers until the handle is done).
	// Non-serial rounds read only from it; serial programs read state
	// instead (later rounds consume earlier rounds' deliveries).
	in [][]T
	// state is the result: row p sized prog.StateChunks[p],
	// initialized from the input where the shapes overlap, then
	// overwritten by the rounds' moves.
	state [][]T

	completed  atomic.Int64
	selfRouted atomic.Int64
	fallbacks  atomic.Int64
	cacheHits  atomic.Int64

	done    chan struct{}
	errOnce sync.Once
	err     error
}

// HandleStats is a per-collective round tally.
type HandleStats struct {
	Op        string `json:"op"`
	Rounds    int    `json:"rounds"`
	Completed int64  `json:"completed"`
	// SelfRouted counts completed rounds the fabric served without
	// looping setup; Fallbacks counts the rest.
	SelfRouted int64 `json:"self_routed"`
	Fallbacks  int64 `json:"fallbacks"`
	// CacheHits counts rounds whose plan was already resolved when
	// they arrived — the prewarm double buffer working.
	CacheHits int64 `json:"cache_hits"`
}

func newHandle[T any](svc *Service[T], prog *Program, ctx context.Context, data [][]T) *Handle[T] {
	h := &Handle[T]{
		svc:   svc,
		prog:  prog,
		ctx:   ctx,
		tr:    obs.FromContext(ctx),
		begin: time.Now(),
		in:    data,
		state: make([][]T, prog.N),
		done:  make(chan struct{}),
	}
	for p := 0; p < prog.N; p++ {
		h.state[p] = make([]T, prog.StateChunks[p])
		// Covered programs overwrite every state cell, so seeding
		// state from the input would be N*k wasted copies. The rest
		// (gather, exchange with Keep, serial broadcast) need the
		// untouched cells to carry the input through.
		if !prog.covered {
			copy(h.state[p], data[p])
		}
	}
	return h
}

// Done returns a channel closed when the collective finishes (result
// ready, failed, or cancelled).
func (h *Handle[T]) Done() <-chan struct{} { return h.done }

// Wait blocks until the collective finishes and returns the result
// buffers (row p sized by the program's output shape) or the first
// error. The buffers are owned by the caller once Wait returns.
func (h *Handle[T]) Wait() ([][]T, error) {
	<-h.done
	if h.err != nil {
		return nil, h.err
	}
	return h.state, nil
}

// Progress reports completed and total rounds.
func (h *Handle[T]) Progress() (completed, total int) {
	return int(h.completed.Load()), len(h.prog.Rounds)
}

// Stats returns the per-collective round tally so far.
func (h *Handle[T]) Stats() HandleStats {
	return HandleStats{
		Op:         h.prog.Op.String(),
		Rounds:     len(h.prog.Rounds),
		Completed:  h.completed.Load(),
		SelfRouted: h.selfRouted.Load(),
		Fallbacks:  h.fallbacks.Load(),
		CacheHits:  h.cacheHits.Load(),
	}
}

// fail records the first error; later calls are no-ops.
func (h *Handle[T]) fail(err error) {
	h.errOnce.Do(func() { h.err = err })
}

// run executes the schedule and settles the handle.
func (h *Handle[T]) run() {
	switch {
	case h.prog.Serial:
		h.runSerial()
	case h.prog.Multicast:
		h.runMulticast()
	default:
		h.runParallel()
	}
	s := h.svc
	s.opHist.ObserveSince(h.begin)
	h.tr.Span("collective_"+h.prog.Op.String(), h.begin,
		strconv.Itoa(len(h.prog.Rounds))+" rounds")
	s.active.Add(-1)
	switch {
	case h.err == nil:
		s.completed.Add(1)
	case h.ctx.Err() != nil:
		s.cancelled.Add(1)
	default:
		s.failed.Add(1)
	}
	close(h.done)
}

// roundTally batches one worker's round observations so the hot loop
// pays a single atomic add per round (the live progress counter)
// instead of a dozen; everything else is flushed when the worker
// finishes its slice of the schedule.
type roundTally struct {
	rounds      int
	selfRouted  int
	fallbacks   int
	mcastRounds int
	cacheHits   int
	moves       int
	planeRounds []int
	start       time.Time
}

func newRoundTally(planes int) *roundTally {
	return &roundTally{planeRounds: make([]int, planes), start: time.Now()}
}

func (t *roundTally) add(res fabric.RoundResult, moves int) {
	t.rounds++
	switch res.Kind {
	case engine.PlanSelfRouted:
		t.selfRouted++
	case engine.PlanMulticast:
		// Copy-network rounds self-route by construction (every phase
		// routes from local tag comparisons), so they count toward the
		// self-route ratio — and separately, as multicast rounds.
		t.selfRouted++
		t.mcastRounds++
	default:
		t.fallbacks++
	}
	if res.CacheHit {
		t.cacheHits++
	}
	if res.Plane >= 0 && res.Plane < len(t.planeRounds) {
		t.planeRounds[res.Plane]++
	}
	t.moves += moves
}

// flush folds the tally into the handle and service counters and feeds
// the admission EWMA one sample: the worker's mean per-round wall
// time (route + move application — the real service time the next
// deadline check should assume).
func (h *Handle[T]) flush(t *roundTally) {
	if t.rounds == 0 {
		return
	}
	h.selfRouted.Add(int64(t.selfRouted))
	h.fallbacks.Add(int64(t.fallbacks))
	h.cacheHits.Add(int64(t.cacheHits))
	h.svc.observeRounds(t, time.Since(t.start)/time.Duration(t.rounds))
}

// serveRound routes one round on the preferred plane and applies its
// moves into state from the pre-read snapshot vals (serial programs
// permute state in place, so reads must precede writes). Map rounds go
// through the copy network; the rest present their permutation. idx is
// the round's position in the schedule, for the trace span.
func (h *Handle[T]) serveRound(r *Round, idx, prefer int, vals []T, t *roundTally) error {
	start := time.Now()
	var res fabric.RoundResult
	var err error
	if r.Map != nil {
		res, err = h.svc.fab.RouteMulticastRound(r.Map, prefer)
	} else {
		res, err = h.svc.fab.RouteRound(r.Dest, prefer)
	}
	if err != nil {
		return err
	}
	for j, m := range r.Moves {
		h.state[m.DstPort][m.DstChunk] = vals[j]
	}
	h.svc.roundHist.ObserveSince(start)
	h.tr.Span("round", start, "round "+strconv.Itoa(idx)+" plane "+strconv.Itoa(res.Plane))
	h.completed.Add(1)
	t.add(res, len(r.Moves))
	return nil
}

// batchRounds is how many of a worker's rounds one RouteRounds call
// pipelines through its plane's queue. It bounds how stale the
// progress counter and the cancellation check can get, not throughput.
const batchRounds = 64

// runParallel pipelines a data-parallel schedule across the fabric's K
// planes and through each plane's request queue: worker w serves
// rounds w, w+K, w+2K, ... on plane w, submitting them in pipelined
// batches (Rounder.RouteRounds) so the next rounds' plan setup is
// already queued while the current round is traversing the plane —
// Section IV's pipelining, one level deeper than the serial path's
// one-round double buffer. Safe because non-serial programs read only
// the immutable input and write pairwise-disjoint state cells
// (Program.Validate's invariant).
func (h *Handle[T]) runParallel() {
	rounds := h.prog.Rounds
	workers := h.svc.fab.Planes()
	if workers > len(rounds) {
		workers = len(rounds)
	}
	var abort atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			t := newRoundTally(len(h.svc.planeRounds))
			defer h.flush(t)
			mine := make([]int, 0, (len(rounds)+workers-1)/workers)
			for idx := w; idx < len(rounds); idx += workers {
				mine = append(mine, idx)
			}
			if h.tr != nil {
				// Traced requests forgo batching so every round gets a
				// real start/duration span instead of an amortized share
				// of a pipelined batch — the point of a trace is seeing
				// where the time went, round by round.
				for _, idx := range mine {
					if abort.Load() {
						return
					}
					if err := h.ctx.Err(); err != nil {
						h.fail(err)
						abort.Store(true)
						return
					}
					r := &rounds[idx]
					vals := make([]T, len(r.Moves))
					for j, m := range r.Moves {
						vals[j] = h.in[m.SrcPort][m.SrcChunk]
					}
					if err := h.serveRound(r, idx, w, vals, t); err != nil {
						h.fail(err)
						abort.Store(true)
						return
					}
				}
				return
			}
			dests := make([]perm.Perm, 0, batchRounds)
			for base := 0; base < len(mine); base += batchRounds {
				if abort.Load() {
					return
				}
				if err := h.ctx.Err(); err != nil {
					h.fail(err)
					abort.Store(true)
					return
				}
				end := base + batchRounds
				if end > len(mine) {
					end = len(mine)
				}
				dests = dests[:0]
				for _, idx := range mine[base:end] {
					dests = append(dests, rounds[idx].Dest)
				}
				batchStart := time.Now()
				results, err := h.svc.fab.RouteRounds(dests, w)
				if err != nil {
					h.fail(err)
					abort.Store(true)
					return
				}
				// Each pipelined round contributes its amortized share of
				// the batch's wall time — the same per-round service time
				// the admission EWMA consumes.
				perRound := time.Since(batchStart) / time.Duration(end-base)
				for i, idx := range mine[base:end] {
					r := &rounds[idx]
					for _, m := range r.Moves {
						h.state[m.DstPort][m.DstChunk] = h.in[m.SrcPort][m.SrcChunk]
					}
					h.svc.roundHist.Observe(perRound)
					h.completed.Add(1)
					t.add(results[i], len(r.Moves))
				}
			}
		}(w)
	}
	wg.Wait()
}

// runMulticast pipelines a data-parallel multicast schedule across the
// fabric's K planes: worker w serves rounds w, w+K, w+2K, ... on plane
// w, one at a time. Map rounds cannot ride RouteRounds' pipelined
// permutation batches — each presents a mapping, not a permutation —
// so the workers serve them individually through RouteMulticastRound;
// the engine's plan cache keeps repeated mappings (a broadcast's
// identical per-chunk rounds, re-run all-gathers) at cache-hit cost.
// Safe for the same reason runParallel is: multicast programs are
// non-serial, reading only the immutable input and writing
// pairwise-disjoint state cells.
func (h *Handle[T]) runMulticast() {
	rounds := h.prog.Rounds
	workers := h.svc.fab.Planes()
	if workers > len(rounds) {
		workers = len(rounds)
	}
	var abort atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			t := newRoundTally(len(h.svc.planeRounds))
			defer h.flush(t)
			for idx := w; idx < len(rounds); idx += workers {
				if abort.Load() {
					return
				}
				if err := h.ctx.Err(); err != nil {
					h.fail(err)
					abort.Store(true)
					return
				}
				r := &rounds[idx]
				vals := make([]T, len(r.Moves))
				for j, m := range r.Moves {
					vals[j] = h.in[m.SrcPort][m.SrcChunk]
				}
				if err := h.serveRound(r, idx, w, vals, t); err != nil {
					h.fail(err)
					abort.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// runSerial executes a dependent schedule (broadcast) in order: round
// r reads the state round r-1 left behind, so only the plan setup of
// round r+1 — prewarmed on the plane it will use — overlaps round r's
// transmission. Reads are snapshotted before writes so a round may
// safely permute in place.
func (h *Handle[T]) runSerial() {
	rounds := h.prog.Rounds
	k := h.svc.fab.Planes()
	overlap := overlapPrewarm()
	t := newRoundTally(len(h.svc.planeRounds))
	defer h.flush(t)
	for idx := range rounds {
		if err := h.ctx.Err(); err != nil {
			h.fail(err)
			return
		}
		r := &rounds[idx]
		var warmed chan struct{}
		if next := idx + 1; overlap && next < len(rounds) {
			warmed = make(chan struct{})
			go func(d perm.Perm, prefer int) {
				h.svc.fab.PrewarmRound(d, prefer)
				close(warmed)
			}(rounds[next].Dest, next%k)
		}
		vals := make([]T, len(r.Moves))
		for j, m := range r.Moves {
			vals[j] = h.state[m.SrcPort][m.SrcChunk]
		}
		err := h.serveRound(r, idx, idx%k, vals, t)
		if warmed != nil {
			<-warmed
		}
		if err != nil {
			h.fail(err)
			return
		}
	}
}
