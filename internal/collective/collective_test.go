package collective

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/perm"
)

// newService builds a collective service over a real fabric.
func newService(t *testing.T, logN, planes int, opts Options) *Service[int] {
	t.Helper()
	f, err := fabric.New[int](fabric.Config{LogN: logN, Planes: planes}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return New[int](f, opts)
}

// fill builds an N x chunks payload with cell (p, c) = p*1000 + c.
func fill(n, chunks int) [][]int {
	data := make([][]int, n)
	for p := range data {
		data[p] = make([]int, chunks)
		for c := range data[p] {
			data[p][c] = p*1000 + c
		}
	}
	return data
}

func wait(t *testing.T, h *Handle[int]) [][]int {
	t.Helper()
	out, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// requireAllSelfRouted asserts the acceptance criterion: every round
// the fabric served for this collective took the self-routed path.
func requireAllSelfRouted(t *testing.T, h *Handle[int]) {
	t.Helper()
	st := h.Stats()
	if st.Completed != int64(st.Rounds) {
		t.Fatalf("%s: completed %d of %d rounds", st.Op, st.Completed, st.Rounds)
	}
	if st.SelfRouted != int64(st.Rounds) || st.Fallbacks != 0 {
		t.Fatalf("%s: %d/%d rounds self-routed (%d fallbacks), want 100%%",
			st.Op, st.SelfRouted, st.Rounds, st.Fallbacks)
	}
}

// TestAllToAll checks the personalized all-to-all delivers in[i][j] to
// state[j][i] and that every round self-routes (the ring decomposition
// is all Table II cyclic shifts).
func TestAllToAll(t *testing.T) {
	const logN, n = 3, 8
	s := newService(t, logN, 2, Options{})
	in := fill(n, n)
	h, err := s.AllToAll(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	out := wait(t, h)
	for p := 0; p < n; p++ {
		for c := 0; c < n; c++ {
			if want := c*1000 + p; out[p][c] != want {
				t.Fatalf("out[%d][%d] = %d, want in[%d][%d] = %d", p, c, out[p][c], c, p, want)
			}
		}
	}
	requireAllSelfRouted(t, h)
	if done, total := h.Progress(); done != n || total != n {
		t.Fatalf("progress %d/%d, want %d/%d", done, total, n, n)
	}

	st := s.Stats()
	if st.Submitted != 1 || st.Completed != 1 || st.Active != 0 {
		t.Fatalf("service counters: %+v", st)
	}
	if st.Rounds != n || st.SelfRouteRatio != 1.0 {
		t.Fatalf("rounds=%d ratio=%v, want %d and 1.0", st.Rounds, st.SelfRouteRatio, n)
	}
	if st.PerOp["alltoall"] != 1 {
		t.Fatalf("per-op map: %v", st.PerOp)
	}
	var planeTotal int64
	for _, r := range st.PlaneRounds {
		planeTotal += r
	}
	if planeTotal != int64(n) {
		t.Fatalf("plane occupancy sums to %d, want %d", planeTotal, n)
	}
}

// TestTranspose checks the Table I matrix transpose across chunk
// columns: in[r*cols+q][c] lands at out[q*rows+r][c], all self-routed.
func TestTranspose(t *testing.T) {
	const logN, n, rows, cols, chunks = 4, 16, 4, 4, 3
	s := newService(t, logN, 2, Options{})
	in := fill(n, chunks)
	h, err := s.Transpose(context.Background(), rows, cols, in)
	if err != nil {
		t.Fatal(err)
	}
	out := wait(t, h)
	for r := 0; r < rows; r++ {
		for q := 0; q < cols; q++ {
			for c := 0; c < chunks; c++ {
				if got, want := out[q*rows+r][c], in[r*cols+q][c]; got != want {
					t.Fatalf("out[%d][%d] = %d, want %d", q*rows+r, c, got, want)
				}
			}
		}
	}
	requireAllSelfRouted(t, h)
}

// TestShuffleAndBitReversal checks the remaining Table I column
// collectives against their perm generators.
func TestShuffleAndBitReversal(t *testing.T) {
	const logN, n, chunks = 4, 16, 2
	cases := []struct {
		name  string
		dest  perm.Perm
		start func(s *Service[int], data [][]int) (*Handle[int], error)
	}{
		{"shuffle", perm.PerfectShuffle(logN), func(s *Service[int], data [][]int) (*Handle[int], error) {
			return s.Shuffle(context.Background(), data)
		}},
		{"bitreversal", perm.BitReversal(logN), func(s *Service[int], data [][]int) (*Handle[int], error) {
			return s.BitReversal(context.Background(), data)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := newService(t, logN, 2, Options{})
			in := fill(n, chunks)
			h, err := tc.start(s, in)
			if err != nil {
				t.Fatal(err)
			}
			out := wait(t, h)
			for i := 0; i < n; i++ {
				for c := 0; c < chunks; c++ {
					if got, want := out[tc.dest[i]][c], in[i][c]; got != want {
						t.Fatalf("out[%d][%d] = %d, want %d", tc.dest[i], c, got, want)
					}
				}
			}
			requireAllSelfRouted(t, h)
		})
	}
}

// TestBroadcast checks the default copy-network broadcast: every port
// ends with the root's chunks, in one fan-out round per chunk instead
// of the legacy path's log2(N) serial rounds.
func TestBroadcast(t *testing.T) {
	const logN, n, root, chunks = 3, 8, 5, 2
	s := newService(t, logN, 2, Options{})
	in := make([][]int, n)
	for p := range in {
		in[p] = nil
	}
	in[root] = []int{42, 77}
	h, err := s.Broadcast(context.Background(), root, in)
	if err != nil {
		t.Fatal(err)
	}
	out := wait(t, h)
	for p := 0; p < n; p++ {
		if out[p][0] != 42 || out[p][1] != 77 {
			t.Fatalf("port %d received %v, want [42 77]", p, out[p])
		}
	}
	requireAllSelfRouted(t, h)
	if st := h.Stats(); st.Rounds != chunks {
		t.Fatalf("broadcast rounds = %d, want one per chunk = %d", st.Rounds, chunks)
	}
	if st := s.Stats(); st.McastRounds != chunks {
		t.Fatalf("mcast rounds = %d, want %d", st.McastRounds, chunks)
	}
}

// TestBroadcastLegacy flips Options.LegacyBroadcast: same delivery
// through the recursive-doubling permutation ladder, log2(N) rounds,
// no multicast rounds.
func TestBroadcastLegacy(t *testing.T) {
	const logN, n, root = 3, 8, 5
	s := newService(t, logN, 2, Options{LegacyBroadcast: true})
	in := make([][]int, n)
	in[root] = []int{42, 77}
	h, err := s.Broadcast(context.Background(), root, in)
	if err != nil {
		t.Fatal(err)
	}
	out := wait(t, h)
	for p := 0; p < n; p++ {
		if out[p][0] != 42 || out[p][1] != 77 {
			t.Fatalf("port %d received %v, want [42 77]", p, out[p])
		}
	}
	requireAllSelfRouted(t, h)
	if st := h.Stats(); st.Rounds != logN {
		t.Fatalf("legacy broadcast rounds = %d, want log2(N) = %d", st.Rounds, logN)
	}
	if st := s.Stats(); st.McastRounds != 0 {
		t.Fatalf("legacy broadcast took %d multicast rounds, want 0", st.McastRounds)
	}
}

// TestAllGather checks the all-gather end to end: every port
// contributes one chunk and ends holding all N in port order, one
// self-routed copy-network round per contributor.
func TestAllGather(t *testing.T) {
	const logN, n = 3, 8
	s := newService(t, logN, 2, Options{})
	in := make([][]int, n)
	for p := range in {
		in[p] = []int{p * 10}
	}
	h, err := s.AllGather(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	out := wait(t, h)
	for p := 0; p < n; p++ {
		for j := 0; j < n; j++ {
			if out[p][j] != j*10 {
				t.Fatalf("out[%d][%d] = %d, want %d", p, j, out[p][j], j*10)
			}
		}
	}
	requireAllSelfRouted(t, h)
	st := s.Stats()
	if st.McastRounds != n || st.PerOp["allgather"] != 1 {
		t.Fatalf("mcast rounds = %d per-op = %v, want %d and allgather=1", st.McastRounds, st.PerOp, n)
	}
}

// TestFanOut checks pub/sub delivery end to end: overlapping
// subscriber sets, slots keyed by ascending source.
func TestFanOut(t *testing.T) {
	const logN, n = 3, 8
	s := newService(t, logN, 2, Options{})
	dests := [][]int{
		{4, 5, 6},
		{4, 7},
		{0, 1},
		{2, 3},
		nil, nil, nil, nil,
	}
	in := [][]int{{100}, {200}, {300}, {400}, {}, {}, {}, {}}
	h, err := s.FanOut(context.Background(), dests, in)
	if err != nil {
		t.Fatal(err)
	}
	out := wait(t, h)
	want := [][]int{{300}, {300}, {400}, {400}, {100, 200}, {100}, {100}, {200}}
	for p := range want {
		if len(out[p]) != len(want[p]) {
			t.Fatalf("port %d received %v, want %v", p, out[p], want[p])
		}
		for c := range want[p] {
			if out[p][c] != want[p][c] {
				t.Fatalf("port %d received %v, want %v", p, out[p], want[p])
			}
		}
	}
	requireAllSelfRouted(t, h)
	if _, err := s.FanOut(context.Background(), dests, [][]int{{1}, {2}}); err == nil {
		t.Fatal("wrong payload shape must be rejected")
	}
}

// TestGatherScatter round-trips one chunk per port through the root.
func TestGatherScatter(t *testing.T) {
	const logN, n, root = 3, 8, 2
	s := newService(t, logN, 2, Options{})

	in := make([][]int, n)
	for p := range in {
		in[p] = []int{p * 10}
	}
	h, err := s.Gather(context.Background(), root, in)
	if err != nil {
		t.Fatal(err)
	}
	gathered := wait(t, h)
	for p := 0; p < n; p++ {
		if gathered[root][p] != p*10 {
			t.Fatalf("gathered[%d] = %d, want %d", p, gathered[root][p], p*10)
		}
	}
	requireAllSelfRouted(t, h)

	sc := make([][]int, n)
	for p := range sc {
		sc[p] = nil
	}
	sc[root] = gathered[root]
	h, err = s.Scatter(context.Background(), root, sc)
	if err != nil {
		t.Fatal(err)
	}
	scattered := wait(t, h)
	for p := 0; p < n; p++ {
		if len(scattered[p]) != 1 || scattered[p][0] != p*10 {
			t.Fatalf("scattered[%d] = %v, want [%d]", p, scattered[p], p*10)
		}
	}
	requireAllSelfRouted(t, h)
}

// TestExchange runs an arbitrary all-to-all with uneven fan-out and a
// Keep chunk, checking receive slots are keyed by source and kept
// chunks stay put.
func TestExchange(t *testing.T) {
	const logN, n = 3, 8
	s := newService(t, logN, 2, Options{})
	// Port 0 sends three chunks, port 1 keeps one and sends one, the
	// rest send their single chunk to port 0.
	dests := [][]int{
		{3, 5, 6},
		{Keep, 2},
		{0}, {0}, {0}, {0}, {0}, {0},
	}
	in := [][]int{
		{100, 101, 102},
		{110, 111},
		{120}, {130}, {140}, {150}, {160}, {170},
	}
	h, err := s.Exchange(context.Background(), dests, in)
	if err != nil {
		t.Fatal(err)
	}
	out := wait(t, h)
	// Receives land at out[dst][src].
	for _, want := range []struct{ dst, src, val int }{
		{3, 0, 100}, {5, 0, 101}, {6, 0, 102}, {2, 1, 111},
		{0, 2, 120}, {0, 3, 130}, {0, 4, 140}, {0, 5, 150}, {0, 6, 160}, {0, 7, 170},
	} {
		if got := out[want.dst][want.src]; got != want.val {
			t.Fatalf("out[%d][%d] = %d, want %d", want.dst, want.src, got, want.val)
		}
	}
	if out[1][0] != 110 {
		t.Fatalf("kept chunk moved: out[1][0] = %d, want 110", out[1][0])
	}
	// Max degree is 6 (port 0 receives six chunks): at most 6 rounds.
	if st := h.Stats(); st.Rounds > 6 {
		t.Fatalf("exchange used %d rounds, want <= max degree 6", st.Rounds)
	}
}

// TestCancellation submits with a cancelled context: the executor must
// abort before routing and report the cancellation.
func TestCancellation(t *testing.T) {
	s := newService(t, 3, 2, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h, err := s.AllToAll(ctx, fill(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait() = %v, want context.Canceled", err)
	}
	if st := s.Stats(); st.Cancelled != 1 || st.Completed != 0 || st.Active != 0 {
		t.Fatalf("service counters after cancel: %+v", st)
	}
}

// TestDeadlineAdmission seeds a deliberately huge round estimate: a
// short-deadline submission must be rejected up front with
// ErrDeadline, and the reject must be counted.
func TestDeadlineAdmission(t *testing.T) {
	s := newService(t, 3, 2, Options{RoundEstimate: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := s.AllToAll(ctx, fill(8, 8)); !errors.Is(err, ErrDeadline) {
		t.Fatalf("admission: %v, want ErrDeadline", err)
	}
	if st := s.Stats(); st.DeadlineRejected != 1 || st.Submitted != 0 {
		t.Fatalf("counters after reject: %+v", st)
	}

	// Without an estimate the same deadline is admitted (and the
	// rounds then feed the estimator).
	s2 := newService(t, 3, 2, Options{})
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	h, err := s2.AllToAll(ctx2, fill(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	wait(t, h)
	if est := s2.Stats().EstRoundNs; est <= 0 {
		t.Fatalf("round estimate not learned: %d", est)
	}
}

// TestSubmitShapeErrors covers the payload shape rejects.
func TestSubmitShapeErrors(t *testing.T) {
	s := newService(t, 3, 1, Options{})
	ctx := context.Background()
	if _, err := s.AllToAll(ctx, fill(4, 8)); err == nil {
		t.Fatal("wrong port count must be rejected")
	}
	if _, err := s.AllToAll(ctx, fill(8, 4)); err == nil {
		t.Fatal("wrong chunk width must be rejected")
	}
	if _, err := s.Transpose(ctx, 3, 5, fill(8, 1)); err == nil {
		t.Fatal("non-power-of-two transpose tiling must be rejected")
	}
	if _, err := s.Broadcast(ctx, 99, fill(8, 1)); err == nil {
		t.Fatal("out-of-range broadcast root must be rejected")
	}
	if _, err := s.Scatter(ctx, -1, fill(8, 0)); err == nil {
		t.Fatal("negative scatter root must be rejected")
	}
}

// TestPipelineCacheReuse checks the double buffer pays off where it
// should: a column collective presents one permutation k times, so at
// most one round per plane can miss the plan cache.
func TestPipelineCacheReuse(t *testing.T) {
	const logN, chunks, planes = 4, 8, 2
	s := newService(t, logN, planes, Options{})
	h, err := s.Shuffle(context.Background(), fill(16, chunks))
	if err != nil {
		t.Fatal(err)
	}
	wait(t, h)
	if st := h.Stats(); st.CacheHits < int64(chunks-planes) {
		t.Fatalf("cache hits = %d of %d rounds, want >= %d (one miss per plane)",
			st.CacheHits, st.Rounds, chunks-planes)
	}
}
