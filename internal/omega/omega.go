// Package omega implements Lawrie's omega network, the self-routing
// baseline the paper compares against in Sections I and II. An omega
// network on N = 2^n lines has n stages of N/2 two-state switches, each
// stage preceded by a perfect-shuffle interconnection. It self-routes by
// destination tags — at stage s a switch sends an input to its upper
// (lower) output when bit n-1-s of the input's tag is 0 (1) — but it is
// blocking: two inputs at the same switch may demand the same output,
// in which case the permutation is not realizable. The set of
// conflict-free permutations is exactly perm.IsOmega; the inverse
// network (the same hardware driven backwards) realizes perm.IsInverseOmega.
//
// Compared with the self-routing Benes network of package core, the
// omega network has about half the switches (N/2 * log N) and half the
// delay, but realizes far fewer permutations (the paper's cardinality
// argument of Section I).
package omega

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/perm"
)

// Network is an N = 2^n omega network.
type Network struct {
	n    int
	size int
}

// New constructs an omega network with 2^n inputs and outputs.
func New(n int) *Network {
	if n < 1 {
		panic("omega: New requires n >= 1")
	}
	return &Network{n: n, size: 1 << uint(n)}
}

// N returns the number of inputs/outputs.
func (o *Network) N() int { return o.size }

// LogN returns n.
func (o *Network) LogN() int { return o.n }

// Stages returns the number of switch stages, log N.
func (o *Network) Stages() int { return o.n }

// SwitchCount returns the total number of binary switches, N/2 * log N.
func (o *Network) SwitchCount() int { return o.size / 2 * o.n }

// GateDelay returns the transmission delay in switch traversals, log N.
func (o *Network) GateDelay() int { return o.n }

// Result describes one self-routing attempt.
type Result struct {
	// Realized[i] is the output reached by input i, or -1 if the input
	// was dropped at a conflicting switch.
	Realized []int
	// Conflicts counts switches at which both inputs demanded the same
	// output port; zero conflicts means the permutation was realized.
	Conflicts int
	// ConflictAt records (stage, switch) pairs where blocking occurred.
	ConflictAt [][2]int
	// TagTrace[s][y] is the tag on line y at the input of stage s
	// (after the preceding shuffle); TagTrace[n] is the output.
	TagTrace [][]int
}

// OK reports whether the routing was conflict-free.
func (r *Result) OK() bool { return r.Conflicts == 0 }

// Route self-routes the permutation d through the network. On a port
// conflict the lower-priority signal (the one from the lower input) is
// dropped, the conflict is recorded, and routing continues — mirroring
// how a real blocking network would misbehave.
func (o *Network) Route(d perm.Perm) *Result {
	if len(d) != o.size {
		panic(fmt.Sprintf("omega: permutation length %d != N %d", len(d), o.size))
	}
	res := &Result{
		Realized: make([]int, o.size),
		TagTrace: make([][]int, o.n+1),
	}
	cur := make([]signal, o.size)
	for i, dest := range d {
		cur[i] = signal{tag: dest, src: i, live: true}
	}
	next := make([]signal, o.size)
	for s := 0; s < o.n; s++ {
		// Perfect shuffle wiring precedes every switch stage.
		for y := 0; y < o.size; y++ {
			next[bits.RotLeft(y, o.n)] = cur[y]
		}
		cur, next = next, cur
		res.TagTrace[s] = tagsOf(cur)
		// Switch stage: switch i has lines 2i (upper) and 2i+1 (lower);
		// the control bit at stage s is n-1-s of each signal's own tag.
		cb := o.n - 1 - s
		for i := 0; i < o.size/2; i++ {
			u, l := cur[2*i], cur[2*i+1]
			var outU, outL signal
			uWant := -1
			if u.live {
				uWant = bits.Bit(u.tag, cb)
			}
			lWant := -1
			if l.live {
				lWant = bits.Bit(l.tag, cb)
			}
			if u.live && l.live && uWant == lWant {
				// Port conflict: upper input wins, lower is dropped.
				res.Conflicts++
				res.ConflictAt = append(res.ConflictAt, [2]int{s, i})
				l.live = false
				lWant = -1
			}
			switch {
			case uWant == 0:
				outU = u
				if lWant == 1 {
					outL = l
				}
			case uWant == 1:
				outL = u
				if lWant == 0 {
					outU = l
				}
			default: // upper dead
				if lWant == 0 {
					outU = l
				} else if lWant == 1 {
					outL = l
				}
			}
			cur[2*i], cur[2*i+1] = outU, outL
		}
	}
	res.TagTrace[o.n] = tagsOf(cur)
	for i := range res.Realized {
		res.Realized[i] = -1
	}
	for y, sig := range cur {
		if sig.live {
			res.Realized[sig.src] = y
		}
	}
	return res
}

// signal is one tagged datum moving through the network.
type signal struct {
	tag, src int
	live     bool
}

func tagsOf(sigs []signal) []int {
	out := make([]int, len(sigs))
	for i, s := range sigs {
		if s.live {
			out[i] = s.tag
		} else {
			out[i] = -1
		}
	}
	return out
}

// Realizes reports whether the omega network self-routes d without
// conflicts. Tests confirm this coincides with perm.IsOmega.
func (o *Network) Realizes(d perm.Perm) bool {
	return o.Route(d).OK()
}

// RouteInverse self-routes d through the network run backwards: data
// enters at the output side and leaves at the input side. Input i
// reaching terminal d[i] through the reversed network is equivalent to
// the forward network routing d's inverse, which is how the paper
// defines the inverse-omega class.
func (o *Network) RouteInverse(d perm.Perm) *Result {
	if err := d.Validate(); err != nil {
		panic("omega: RouteInverse: " + err.Error())
	}
	inv := d.Inverse()
	res := o.Route(inv)
	// Re-express in terms of the original d: input i of the reversed
	// network reaches output d[i] iff inv routed d[i] -> i.
	out := &Result{
		Realized:   make([]int, o.size),
		Conflicts:  res.Conflicts,
		ConflictAt: res.ConflictAt,
		TagTrace:   res.TagTrace,
	}
	for i := range out.Realized {
		out.Realized[i] = -1
	}
	for j, reached := range res.Realized {
		if reached >= 0 {
			out.Realized[reached] = j
		}
	}
	return out
}

// RealizesInverse reports whether the network run backwards realizes d;
// tests confirm this coincides with perm.IsInverseOmega.
func (o *Network) RealizesInverse(d perm.Perm) bool {
	return o.RouteInverse(d).OK()
}
