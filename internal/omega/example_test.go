package omega_test

import (
	"fmt"

	"repro/internal/omega"
	"repro/internal/perm"
)

// The omega network self-routes its class but blocks outside it.
func ExampleNetwork_Route() {
	o := omega.New(3)
	fmt.Println("cyclic shift:", o.Route(perm.CyclicShift(3, 1)).OK())
	res := o.Route(perm.BitReversal(3))
	fmt.Println("bit reversal:", res.OK(), "conflicts:", res.Conflicts > 0)
	// Output:
	// cyclic shift: true
	// bit reversal: false conflicts: true
}

// Driven backwards, the same hardware realizes the inverse-omega class.
func ExampleNetwork_RouteInverse() {
	o := omega.New(3)
	d := perm.POrderingShift(3, 3, 2)
	res := o.RouteInverse(d)
	fmt.Println("ok:", res.OK())
	// Output:
	// ok: true
}
