package omega

import (
	"math/rand"
	"testing"

	"repro/internal/perm"
)

func TestCounts(t *testing.T) {
	for n := 1; n <= 8; n++ {
		o := New(n)
		N := 1 << uint(n)
		if o.N() != N || o.Stages() != n || o.GateDelay() != n {
			t.Fatalf("n=%d: bad structure", n)
		}
		if o.SwitchCount() != N/2*n {
			t.Errorf("n=%d: switches=%d, want %d", n, o.SwitchCount(), N/2*n)
		}
	}
}

// TestRouteMatchesPredicate is the cross-validation with the window
// condition in package perm: the gate-level omega simulation realizes d
// exactly when IsOmega(d) holds. Exhaustive for N=4 and N=8.
func TestRouteMatchesPredicate(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		o := New(n)
		perm.ForEach(1<<uint(n), func(p perm.Perm) bool {
			if o.Realizes(p) != perm.IsOmega(p) {
				t.Fatalf("n=%d: network and IsOmega disagree on %v", n, p.Clone())
			}
			return true
		})
	}
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(8)
		o := New(n)
		var p perm.Perm
		if trial%2 == 0 {
			p = perm.Random(1<<uint(n), rng)
		} else {
			N := 1 << uint(n)
			p = perm.POrderingShift(n, 2*rng.Intn(N/2)+1, rng.Intn(N))
		}
		if o.Realizes(p) != perm.IsOmega(p) {
			t.Fatalf("n=%d: network and IsOmega disagree on %v", n, p)
		}
	}
}

// TestInverseMatchesPredicate: the backwards network realizes exactly
// the inverse-omega permutations.
func TestInverseMatchesPredicate(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		o := New(n)
		perm.ForEach(1<<uint(n), func(p perm.Perm) bool {
			if o.RealizesInverse(p) != perm.IsInverseOmega(p) {
				t.Fatalf("n=%d: network and IsInverseOmega disagree on %v", n, p.Clone())
			}
			return true
		})
	}
}

// TestRealizedCorrectWhenOK: a conflict-free routing delivers every
// input to its destination.
func TestRealizedCorrectWhenOK(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(7)
		N := 1 << uint(n)
		o := New(n)
		d := perm.CyclicShift(n, rng.Intn(N))
		res := o.Route(d)
		if !res.OK() {
			t.Fatalf("cyclic shift blocked on omega network at n=%d", n)
		}
		for i := range d {
			if res.Realized[i] != d[i] {
				t.Fatalf("input %d reached %d, want %d", i, res.Realized[i], d[i])
			}
		}
	}
}

// TestInverseRealizedCorrect: conflict-free backwards routing delivers
// input i to terminal d[i].
func TestInverseRealizedCorrect(t *testing.T) {
	n := 4
	o := New(n)
	d := perm.SegmentCyclicShift(n, 2, 1)
	res := o.RouteInverse(d)
	if !res.OK() {
		t.Fatal("segment shift blocked on inverse omega")
	}
	for i := range d {
		if res.Realized[i] != d[i] {
			t.Fatalf("input %d reached %d, want %d", i, res.Realized[i], d[i])
		}
	}
}

// TestConflictAccounting: a blocked permutation reports at least one
// conflict with a valid (stage, switch) location, and the dropped
// signals show up as -1 in Realized.
func TestConflictAccounting(t *testing.T) {
	n := 3
	o := New(n)
	d := perm.BitReversal(n) // not in Omega for n >= 2
	res := o.Route(d)
	if res.OK() {
		t.Fatal("bit reversal should conflict on the omega network")
	}
	if len(res.ConflictAt) != res.Conflicts {
		t.Fatal("conflict locations out of sync with count")
	}
	for _, loc := range res.ConflictAt {
		if loc[0] < 0 || loc[0] >= n || loc[1] < 0 || loc[1] >= o.N()/2 {
			t.Fatalf("conflict location %v out of range", loc)
		}
	}
	dropped := 0
	for _, r := range res.Realized {
		if r == -1 {
			dropped++
		}
	}
	if dropped == 0 {
		t.Fatal("conflicting route should drop signals")
	}
	if dropped != res.Conflicts {
		t.Fatalf("dropped %d signals but recorded %d conflicts", dropped, res.Conflicts)
	}
}

// TestSurvivorsDistinct: even with conflicts, surviving signals occupy
// distinct outputs.
func TestSurvivorsDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	o := New(5)
	for trial := 0; trial < 100; trial++ {
		res := o.Route(perm.Random(32, rng))
		seen := make(map[int]bool)
		for _, r := range res.Realized {
			if r == -1 {
				continue
			}
			if seen[r] {
				t.Fatal("two survivors at one output")
			}
			seen[r] = true
		}
	}
}

// TestSurvivorsReachTheirTags: every surviving signal lands exactly at
// its destination tag (unique-path property: a signal is either dropped
// or delivered correctly).
func TestSurvivorsReachTheirTags(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	o := New(4)
	for trial := 0; trial < 100; trial++ {
		d := perm.Random(16, rng)
		res := o.Route(d)
		for i, r := range res.Realized {
			if r != -1 && r != d[i] {
				t.Fatalf("survivor %d reached %d, want %d", i, r, d[i])
			}
		}
	}
}

// TestOmegaFractionSmall: the omega network realizes 2^(n*N/2) of the N!
// permutations; at N=4 that is 16/24. The Benes network must strictly
// dominate (checked in the experiment driver); here pin the omega count.
func TestOmegaFractionSmall(t *testing.T) {
	o := New(2)
	count := 0
	perm.ForEach(4, func(p perm.Perm) bool {
		if o.Realizes(p) {
			count++
		}
		return true
	})
	if count != 16 {
		t.Fatalf("omega N=4 realizes %d permutations, want 16", count)
	}
}
