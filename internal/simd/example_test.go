package simd_test

import (
	"fmt"

	"repro/internal/perm"
	"repro/internal/simd"
)

// The Section III cube algorithm: 2 log N - 1 masked interchanges.
func ExampleCCC_Permute() {
	c := simd.NewCCC(perm.BitReversal(3), 1)
	c.Permute()
	fmt.Println("ok:", c.OK(), "unit routes:", c.Routes())
	// Output:
	// ok: true unit routes: 5
}

// BPC shortcut: dimensions with A_j = +j never route.
func ExampleCCC_PermuteBPC() {
	spec := perm.MatrixTransposeBPC(4) // no fixed axes
	c := simd.NewCCC(spec.Perm(), 1)
	c.PermuteBPC(spec)
	fmt.Println("ok:", c.OK(), "routes:", c.Routes(), "skipped:", c.Skipped())

	id := perm.IdentityBPC(4) // every axis fixed
	c2 := simd.NewCCC(id.Perm(), 1)
	c2.PermuteBPC(id)
	fmt.Println("identity routes:", c2.Routes())
	// Output:
	// ok: true routes: 7 skipped: 0
	// identity routes: 0
}

// The perfect-shuffle computer uses 4 log N - 3 unit routes.
func ExamplePSC_Permute() {
	p := simd.NewPSC(perm.BitReversal(4))
	p.Permute()
	fmt.Println("ok:", p.OK(), "unit routes:", p.Routes())
	// Output:
	// ok: true unit routes: 13
}

// The mesh pays distance: 7 sqrt(N) - 8 in all.
func ExampleMCC_Permute() {
	m := simd.NewMCC(perm.MatrixTranspose(6)) // an 8x8 mesh
	m.Permute()
	fmt.Println("ok:", m.OK(), "unit routes:", m.Routes())
	// Output:
	// ok: true unit routes: 48
}

// Destination tags are computed locally from compact representations.
func ExampleTagsFromAffine() {
	res := simd.TagsFromAffine(3, 3, 1) // D(i) = (3i + 1) mod 8
	fmt.Println(res.Tags, "local steps:", res.LocalSteps, "routes:", res.UnitRoutes)
	// Output:
	// (1,4,7,2,5,0,3,6) local steps: 3 routes: 0
}

// Bitonic sorting handles permutations outside F, at log^2 N cost.
func ExampleSortCCC() {
	notInF := perm.Perm{1, 3, 2, 0}
	realized, routes := simd.SortCCC(notInF, 1)
	fmt.Println("realized:", realized.Equal(notInF), "routes:", routes)
	// Output:
	// realized: true routes: 3
}
