package simd

import (
	"math/rand"
	"testing"

	"repro/internal/perm"
)

// TestDetailedMatchesAggregate: hop-level and aggregate mesh machines
// must agree on outcome and on total unit routes.
func TestDetailedMatchesAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(311))
	for trial := 0; trial < 60; trial++ {
		n := 2 * (1 + rng.Intn(4))
		var d perm.Perm
		if trial%2 == 0 {
			d = perm.Random(1<<uint(n), rng)
		} else {
			d = perm.RandomBPC(n, rng).Perm()
		}
		agg := NewMCC(d)
		agg.Permute()
		det := NewMCCDetailed(d)
		det.Permute()
		if agg.OK() != det.OK() {
			t.Fatalf("n=%d: success flags differ", n)
		}
		if !agg.Realized().Equal(det.Realized()) {
			t.Fatalf("n=%d: realized mappings differ", n)
		}
		if agg.Routes() != det.Routes() {
			t.Fatalf("n=%d: routes %d (aggregate) vs %d (detailed)", n, agg.Routes(), det.Routes())
		}
	}
}

// TestDetailedMovesAreNeighbourOnly: every observed transfer crosses
// exactly one mesh edge — one column or one row, never more, never
// diagonal, never off the mesh.
func TestDetailedMovesAreNeighbourOnly(t *testing.T) {
	n := 6
	d := perm.MatrixTranspose(n)
	mc := NewMCCDetailed(d)
	side := mc.side
	moves := 0
	mc.OnMove(func(from, to int) {
		moves++
		if from < 0 || from >= mc.size || to < 0 || to >= mc.size {
			t.Fatalf("transfer off the mesh: %d -> %d", from, to)
		}
		fr, fc := from/side, from%side
		tr, tc := to/side, to%side
		rowStep, colStep := tr-fr, tc-fc
		if rowStep < 0 {
			rowStep = -rowStep
		}
		if colStep < 0 {
			colStep = -colStep
		}
		if rowStep+colStep != 1 {
			t.Fatalf("non-neighbour transfer: (%d,%d) -> (%d,%d)", fr, fc, tr, tc)
		}
	})
	mc.Permute()
	if !mc.OK() {
		t.Fatal("transpose failed on detailed mesh")
	}
	if moves == 0 {
		t.Fatal("no transfers observed")
	}
}

// TestDetailedRouteBound: the full loop costs exactly 7 sqrt(N) - 8.
func TestDetailedRouteBound(t *testing.T) {
	for n := 2; n <= 10; n += 2 {
		mc := NewMCCDetailed(perm.Identity(1 << uint(n)))
		mc.Permute()
		if mc.Routes() != FullLoopCost(n) {
			t.Errorf("n=%d: routes=%d, want %d", n, mc.Routes(), FullLoopCost(n))
		}
	}
}

func TestDetailedRejectsOddLog(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMCCDetailed(perm.Identity(8))
}
