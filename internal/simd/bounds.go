package simd

import (
	"repro/internal/bits"
	"repro/internal/perm"
)

// Lower bounds on routing cost, used by the optimality experiments: the
// paper states its CCC algorithm is within a factor of two of optimal
// for BPC permutations and the MCC algorithm within a factor of four
// (citing the optimal algorithms of Nassimi & Sahni [6], [12]).
//
// The bound below is the elementary "dimension-crossing" argument: if
// any record must change bit b of its PE index, at least one unit route
// across dimension b (or, on a mesh, across the corresponding distance)
// is unavoidable.

// RequiredDimensions returns the set of cube dimensions b (as a bitmask
// and a count) such that some record's destination differs from its
// source in bit b. Any CCC algorithm must spend at least one unit route
// per required dimension.
func RequiredDimensions(d perm.Perm) (mask, count int) {
	n := bits.Log2(len(d))
	for i, dest := range d {
		mask |= i ^ dest
	}
	mask &= (1 << uint(n)) - 1
	return mask, bits.OnesCount(mask)
}

// CCCLowerBound returns the dimension-crossing lower bound on unit
// routes for performing d on a cube-connected computer (one-word
// model).
func CCCLowerBound(d perm.Perm) int {
	_, count := RequiredDimensions(d)
	return count
}

// MCCLowerBound returns the mesh analogue: for every required dimension
// b, some record must travel the mesh distance 2^(b mod log sqrt N), and
// those moves cannot be shared across dimensions, so the distances sum.
func MCCLowerBound(d perm.Perm) int {
	n := bits.Log2(len(d))
	if n%2 != 0 {
		panic("simd: MCCLowerBound requires a square mesh")
	}
	m := n / 2
	mask, _ := RequiredDimensions(d)
	sum := 0
	for b := 0; b < n; b++ {
		if mask>>uint(b)&1 == 1 {
			sum += 1 << uint(b%m)
		}
	}
	return sum
}

// BPCSkipRoutes returns the unit routes the skipping CCC algorithm
// spends on the BPC permutation given by spec (one-word model): the
// full 2n-1 minus 2 per interior fixed axis and 1 for a fixed top axis.
func BPCSkipRoutes(spec perm.BPC) int {
	n := len(spec)
	routes := 2*n - 1
	for j, ax := range spec {
		if ax.Pos == j && !ax.Comp {
			if j == n-1 {
				routes--
			} else {
				routes -= 2
			}
		}
	}
	return routes
}
