package simd

import (
	"repro/internal/bits"
	"repro/internal/perm"
)

// This file implements the arbitrary-permutation baseline of
// Section III: sorting the records (R(i), D(i)) on the key D with
// Batcher's bitonic sort. On a CCC or PSC this takes O(log^2 N) routing
// steps; on an MCC, O(sqrt(N)) with a larger constant than the
// F-routing algorithm. The self-routing simulation beats it by a
// log N factor on the cube whenever the permutation is in F.

// SortCCC permutes dest's records on a cube-connected computer by
// bitonic sort. Each compare-exchange stage moves records across one
// cube dimension and back, costing exchangeCost unit routes (2 when a
// record must make a round trip, 1 in the optimistic one-word model).
// It returns the total unit routes used: n(n+1)/2 * exchangeCost.
func SortCCC(dest perm.Perm, exchangeCost int) (realized perm.Perm, routes int) {
	if err := dest.Validate(); err != nil {
		panic("simd: SortCCC: " + err.Error())
	}
	size := len(dest)
	n := bits.Log2(size)
	r := make([]int, size)
	d := append([]int(nil), dest...)
	for i := range r {
		r[i] = i
	}
	// Bitonic sort on the hypercube: merge size k doubling, comparison
	// distance j halving; PE pairs differ in bit log2(j), so every
	// compare-exchange is a single-dimension route.
	for k := 2; k <= size; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			for i := 0; i < size; i++ {
				l := i ^ j
				if l <= i {
					continue
				}
				ascending := i&k == 0
				if (d[i] > d[l]) == ascending {
					d[i], d[l] = d[l], d[i]
					r[i], r[l] = r[l], r[i]
				}
			}
			routes += exchangeCost
		}
	}
	realized = make(perm.Perm, size)
	for pe, rec := range r {
		realized[rec] = pe
	}
	for pe, want := range d {
		if want != pe {
			panic("simd: SortCCC failed to sort")
		}
	}
	_ = n
	return realized, routes
}

// SortRoutesCCC returns the closed-form unit-route count of SortCCC:
// n(n+1)/2 compare-exchange stages at exchangeCost routes each.
func SortRoutesCCC(n, exchangeCost int) int {
	return n * (n + 1) / 2 * exchangeCost
}

// SortMCC permutes dest's records on a square mesh by the same bitonic
// schedule, charging mesh distance for every stage: a stage with
// comparison distance 2^b costs 2*2^(b mod log sqrt(N)) unit routes.
func SortMCC(dest perm.Perm) (realized perm.Perm, routes int) {
	size := len(dest)
	n := bits.Log2(size)
	if n%2 != 0 {
		panic("simd: SortMCC requires a square mesh")
	}
	m := n / 2
	r := make([]int, size)
	d := append([]int(nil), dest...)
	for i := range r {
		r[i] = i
	}
	for k := 2; k <= size; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			for i := 0; i < size; i++ {
				l := i ^ j
				if l <= i {
					continue
				}
				ascending := i&k == 0
				if (d[i] > d[l]) == ascending {
					d[i], d[l] = d[l], d[i]
					r[i], r[l] = r[l], r[i]
				}
			}
			b := bits.Log2(j)
			routes += 2 * (1 << uint(b%m))
		}
	}
	realized = make(perm.Perm, size)
	for pe, rec := range r {
		realized[rec] = pe
	}
	return realized, routes
}
