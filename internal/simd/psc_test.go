package simd

import (
	"math/rand"
	"testing"

	"repro/internal/perm"
)

// TestPSCMatchesCCC: the PSC algorithm simulates the same network with
// shuffles standing in for the missing cube dimensions, so it must
// succeed on exactly the same permutations and deliver identical
// results.
func TestPSCMatchesCCC(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		perm.ForEach(1<<uint(n), func(p perm.Perm) bool {
			psc := NewPSC(p)
			psc.Permute()
			if psc.OK() != perm.InF(p) {
				t.Fatalf("n=%d: PSC and Theorem 1 disagree on %v", n, p.Clone())
			}
			if psc.OK() && !psc.Realized().Equal(p) {
				t.Fatalf("n=%d: PSC realized %v, want %v", n, psc.Realized(), p.Clone())
			}
			return true
		})
	}
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(8)
		p := perm.Random(1<<uint(n), rng)
		ccc := NewCCC(p, 1)
		ccc.Permute()
		psc := NewPSC(p)
		psc.Permute()
		if ccc.OK() != psc.OK() {
			t.Fatalf("n=%d: CCC and PSC disagree on %v", n, p)
		}
	}
}

// TestPSCRouteCount: 4 log N - 3 unit routes for the full algorithm.
func TestPSCRouteCount(t *testing.T) {
	for n := 1; n <= 10; n++ {
		p := NewPSC(perm.Identity(1 << uint(n)))
		p.Permute()
		if p.Routes() != 4*n-3 {
			t.Errorf("n=%d: routes=%d, want %d", n, p.Routes(), 4*n-3)
		}
	}
}

// TestPSCOmegaShortcut: the first loop collapses to one shuffle,
// 2 log N unit routes, still correct for every Omega permutation.
func TestPSCOmegaShortcut(t *testing.T) {
	for _, n := range []int{2, 3} {
		perm.ForEach(1<<uint(n), func(p perm.Perm) bool {
			if !perm.IsOmega(p) {
				return true
			}
			psc := NewPSC(p)
			psc.PermuteOmega()
			if !psc.OK() {
				t.Fatalf("n=%d: PSC omega shortcut failed on %v", n, p.Clone())
			}
			if psc.Routes() != 2*n {
				t.Fatalf("n=%d: omega shortcut routes=%d, want %d", n, psc.Routes(), 2*n)
			}
			return true
		})
	}
	for n := 4; n <= 9; n++ {
		d := perm.CyclicShift(n, 7)
		psc := NewPSC(d)
		psc.PermuteOmega()
		if !psc.OK() {
			t.Fatalf("n=%d: omega shortcut failed on cyclic shift", n)
		}
	}
}

// TestPSCInverseOmegaShortcut: the trailing loop collapses to one
// unshuffle.
func TestPSCInverseOmegaShortcut(t *testing.T) {
	for _, n := range []int{2, 3} {
		perm.ForEach(1<<uint(n), func(p perm.Perm) bool {
			if !perm.IsInverseOmega(p) {
				return true
			}
			psc := NewPSC(p)
			psc.PermuteInverseOmega()
			if !psc.OK() {
				t.Fatalf("n=%d: PSC inverse-omega shortcut failed on %v", n, p.Clone())
			}
			if psc.Routes() != 2*n {
				t.Fatalf("n=%d: shortcut routes=%d, want %d", n, psc.Routes(), 2*n)
			}
			return true
		})
	}
}

// TestPSCLargeF: big F permutations through the PSC.
func TestPSCLargeF(t *testing.T) {
	n := 10
	for _, d := range []perm.Perm{
		perm.BitReversal(n),
		perm.MatrixTranspose(n),
		perm.POrderingShift(n, 77, 13),
		perm.ShuffledRowMajor(n),
	} {
		psc := NewPSC(d)
		psc.Permute()
		if !psc.OK() {
			t.Errorf("PSC failed on an F permutation at n=%d", n)
		}
	}
}

func TestPSCRotationsReturnHome(t *testing.T) {
	// Shuffles and unshuffles must net to zero rotation over a full run
	// so PE indices mean what they meant at the start.
	p := NewPSC(perm.Identity(64))
	p.Permute()
	if p.rot != 0 {
		t.Fatalf("net rotation %d after full run", p.rot)
	}
	q := NewPSC(perm.CyclicShift(6, 1))
	q.PermuteOmega()
	if q.rot != 0 {
		t.Fatalf("net rotation %d after omega run", q.rot)
	}
	r := NewPSC(perm.CyclicShift(6, 1))
	r.PermuteInverseOmega()
	if r.rot != 0 {
		t.Fatalf("net rotation %d after inverse-omega run", r.rot)
	}
}
