package simd

import (
	"repro/internal/bits"
	"repro/internal/perm"
)

// MCC simulates a sqrt(N) x sqrt(N) mesh-connected computer holding PEs
// in row-major order. The permutation algorithm is the CCC loop with
// each cube interchange implemented by mesh moves: PEs differing in bit
// b of their row-major index are 2^b columns apart when b < log sqrt(N)
// and 2^(b - log sqrt(N)) rows apart otherwise; an interchange between
// PEs 2^k apart costs 2*2^k unit routes (each record travels the
// distance, in opposite directions). The full loop therefore costs
// exactly 7 sqrt(N) - 8 unit routes (Section III).
type MCC struct {
	n    int // log2 N; must be even
	m    int // log2 sqrt(N)
	size int
	r    []int
	d    []int

	routes  int
	skipped int
}

// NewMCC prepares an MCC holding destination tags dest; the tag count
// must be an even power of two (a square mesh).
func NewMCC(dest perm.Perm) *MCC {
	if err := dest.Validate(); err != nil {
		panic("simd: NewMCC: " + err.Error())
	}
	size := len(dest)
	n := bits.Log2(size)
	if n%2 != 0 {
		panic("simd: NewMCC requires a square mesh (even log N)")
	}
	mc := &MCC{
		n:    n,
		m:    n / 2,
		size: size,
		r:    make([]int, size),
		d:    append([]int(nil), dest...),
	}
	for i := range mc.r {
		mc.r[i] = i
	}
	return mc
}

// N returns the number of PEs.
func (mc *MCC) N() int { return mc.size }

// Side returns sqrt(N), the mesh dimension.
func (mc *MCC) Side() int { return 1 << uint(mc.m) }

// Routes returns the unit routes consumed so far.
func (mc *MCC) Routes() int { return mc.routes }

// Skipped returns the iterations skipped by shortcuts.
func (mc *MCC) Skipped() int { return mc.skipped }

// StepCost returns the unit-route cost of the dimension-b interchange:
// twice the mesh distance 2^(b mod log sqrt(N)).
func (mc *MCC) StepCost(b int) int {
	return 2 * (1 << uint(b%mc.m))
}

// Step performs the dimension-b masked interchange, charged at mesh
// distance.
func (mc *MCC) Step(b int) {
	for i := 0; i < mc.size; i++ {
		if bits.Bit(i, b) == 0 && bits.Bit(mc.d[i], b) == 1 {
			j := bits.Flip(i, b)
			mc.r[i], mc.r[j] = mc.r[j], mc.r[i]
			mc.d[i], mc.d[j] = mc.d[j], mc.d[i]
		}
	}
	mc.routes += mc.StepCost(b)
}

// Permute runs the full loop: 7 sqrt(N) - 8 unit routes.
func (mc *MCC) Permute() {
	for _, b := range BitSequence(mc.n) {
		mc.Step(b)
	}
}

// PermuteSkipping runs the loop skipping marked dimensions (the BPC
// A_j = +j shortcut; skipped iterations are free).
func (mc *MCC) PermuteSkipping(skip func(b int) bool) {
	for _, b := range BitSequence(mc.n) {
		if skip(b) {
			mc.skipped++
			continue
		}
		mc.Step(b)
	}
}

// PermuteBPC skips every dimension fixed by the spec.
func (mc *MCC) PermuteBPC(spec perm.BPC) {
	if len(spec) != mc.n {
		panic("simd: BPC spec size mismatch")
	}
	mc.PermuteSkipping(func(b int) bool {
		return spec[b].Pos == b && !spec[b].Comp
	})
}

// Realized reads back the performed permutation.
func (mc *MCC) Realized() perm.Perm {
	out := make(perm.Perm, mc.size)
	for pe, rec := range mc.r {
		out[rec] = pe
	}
	return out
}

// OK reports whether every record reached its destination.
func (mc *MCC) OK() bool {
	for pe, want := range mc.d {
		if want != pe {
			return false
		}
	}
	return true
}

// FullLoopCost returns the closed-form route count of Permute for a
// mesh of 2^n PEs: 7 sqrt(N) - 8.
func FullLoopCost(n int) int {
	return 7*(1<<uint(n/2)) - 8
}
