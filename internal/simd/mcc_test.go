package simd

import (
	"math/rand"
	"testing"

	"repro/internal/perm"
)

// TestMCCRealizesExactlyF: the mesh simulation is the CCC loop with a
// different cost model, so it succeeds on exactly F.
func TestMCCRealizesExactlyF(t *testing.T) {
	perm.ForEach(4, func(p perm.Perm) bool {
		mc := NewMCC(p)
		mc.Permute()
		if mc.OK() != perm.InF(p) {
			t.Fatalf("MCC and Theorem 1 disagree on %v", p.Clone())
		}
		return true
	})
	rng := rand.New(rand.NewSource(141))
	for trial := 0; trial < 100; trial++ {
		n := 2 * (1 + rng.Intn(4)) // even n: 2,4,6,8
		p := perm.Random(1<<uint(n), rng)
		mc := NewMCC(p)
		mc.Permute()
		if mc.OK() != perm.InF(p) {
			t.Fatalf("n=%d: MCC and Theorem 1 disagree on %v", n, p)
		}
		if mc.OK() && !mc.Realized().Equal(p) {
			t.Fatalf("n=%d: MCC realized wrong mapping", n)
		}
	}
}

// TestMCCRouteCount is the paper's 7 sqrt(N) - 8 headline.
func TestMCCRouteCount(t *testing.T) {
	for n := 2; n <= 12; n += 2 {
		mc := NewMCC(perm.Identity(1 << uint(n)))
		mc.Permute()
		side := 1 << uint(n/2)
		if mc.Routes() != 7*side-8 {
			t.Errorf("n=%d: routes=%d, want 7*%d-8=%d", n, mc.Routes(), side, 7*side-8)
		}
		if mc.Routes() != FullLoopCost(n) {
			t.Errorf("n=%d: FullLoopCost inconsistent", n)
		}
		if mc.Side() != side {
			t.Errorf("n=%d: side=%d", n, mc.Side())
		}
	}
}

// TestMCCStepCost: horizontal dimensions cost 2*2^b, vertical
// dimensions repeat the pattern.
func TestMCCStepCost(t *testing.T) {
	mc := NewMCC(perm.Identity(1 << 6)) // 8x8 mesh, m=3
	want := map[int]int{0: 2, 1: 4, 2: 8, 3: 2, 4: 4, 5: 8}
	for b, w := range want {
		if got := mc.StepCost(b); got != w {
			t.Errorf("StepCost(%d) = %d, want %d", b, got, w)
		}
	}
}

// TestMCCBPCShortcut: fixed dimensions are skipped with their full mesh
// cost saved.
func TestMCCBPCShortcut(t *testing.T) {
	rng := rand.New(rand.NewSource(142))
	for trial := 0; trial < 100; trial++ {
		n := 2 * (1 + rng.Intn(4))
		spec := perm.RandomBPC(n, rng)
		mc := NewMCC(spec.Perm())
		mc.PermuteBPC(spec)
		if !mc.OK() {
			t.Fatalf("MCC BPC shortcut failed for %v", spec)
		}
		saved := 0
		for j, ax := range spec {
			if ax.Pos == j && !ax.Comp {
				cost := mc.StepCost(j)
				if j == n-1 {
					saved += cost
				} else {
					saved += 2 * cost
				}
			}
		}
		if mc.Routes() != FullLoopCost(n)-saved {
			t.Fatalf("n=%d: routes=%d, want %d (spec %v)", n, mc.Routes(), FullLoopCost(n)-saved, spec)
		}
	}
}

func TestMCCRejectsOddLog(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMCC should reject non-square meshes")
		}
	}()
	NewMCC(perm.Identity(8))
}

// TestSortCCCArbitrary: the bitonic baseline realizes every permutation
// (including non-F ones) at n(n+1)/2 * cost routes.
func TestSortCCCArbitrary(t *testing.T) {
	perm.ForEach(8, func(p perm.Perm) bool {
		realized, routes := SortCCC(p, 2)
		if !realized.Equal(p) {
			t.Fatalf("SortCCC realized %v, want %v", realized, p.Clone())
		}
		if routes != SortRoutesCCC(3, 2) {
			t.Fatalf("SortCCC routes=%d, want %d", routes, SortRoutesCCC(3, 2))
		}
		return true
	})
	rng := rand.New(rand.NewSource(143))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(9)
		p := perm.Random(1<<uint(n), rng)
		realized, routes := SortCCC(p, 2)
		if !realized.Equal(p) {
			t.Fatalf("SortCCC failed at n=%d", n)
		}
		if routes != n*(n+1) {
			t.Fatalf("SortCCC routes=%d, want %d", routes, n*(n+1))
		}
	}
}

// TestSortMCCArbitrary: the mesh bitonic baseline realizes everything.
func TestSortMCCArbitrary(t *testing.T) {
	rng := rand.New(rand.NewSource(144))
	for trial := 0; trial < 30; trial++ {
		n := 2 * (1 + rng.Intn(4))
		p := perm.Random(1<<uint(n), rng)
		realized, routes := SortMCC(p)
		if !realized.Equal(p) {
			t.Fatalf("SortMCC failed at n=%d", n)
		}
		if routes <= 0 {
			t.Fatal("SortMCC counted no routes")
		}
		// The F-routing algorithm must be cheaper (smaller constant)
		// for every mesh larger than 2x2; the trivial 2x2 mesh ties.
		if n == 2 && FullLoopCost(n) != routes {
			t.Fatalf("n=2: expected tie, F=%d bitonic=%d", FullLoopCost(n), routes)
		}
		if n > 2 && FullLoopCost(n) >= routes {
			t.Fatalf("n=%d: F-routing (%d) not cheaper than mesh bitonic (%d)",
				n, FullLoopCost(n), routes)
		}
	}
}

// TestSortBeatenByFactorLogN: on the cube, F-routing uses 2n-1 routes
// vs the sorter's n(n+1)/2 (same one-word cost model): the ratio grows
// as (n+1)/4.
func TestSortBeatenByFactorLogN(t *testing.T) {
	for n := 3; n <= 16; n++ {
		fRoutes := 2*n - 1
		sortRoutes := SortRoutesCCC(n, 1)
		if sortRoutes <= fRoutes {
			t.Errorf("n=%d: sorting (%d) should cost more than F-routing (%d)", n, sortRoutes, fRoutes)
		}
	}
}

// TestTagsFromBPC: every PE's locally computed tag matches the spec
// expansion, with log N local steps and zero routes.
func TestTagsFromBPC(t *testing.T) {
	rng := rand.New(rand.NewSource(145))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(9)
		spec := perm.RandomBPC(n, rng)
		res := TagsFromBPC(spec)
		if !res.Tags.Equal(spec.Perm()) {
			t.Fatalf("TagsFromBPC mismatch for %v", spec)
		}
		if res.LocalSteps != n || res.UnitRoutes != 0 {
			t.Fatalf("TagsFromBPC cost: steps=%d routes=%d", res.LocalSteps, res.UnitRoutes)
		}
	}
}

// TestTagsFromAffine: constant local steps, matching POrderingShift.
func TestTagsFromAffine(t *testing.T) {
	rng := rand.New(rand.NewSource(146))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(10)
		N := 1 << uint(n)
		p := 2*rng.Intn(N/2) + 1
		k := rng.Intn(N)
		res := TagsFromAffine(n, p, k)
		if !res.Tags.Equal(perm.POrderingShift(n, p, k)) {
			t.Fatalf("TagsFromAffine mismatch n=%d p=%d k=%d", n, p, k)
		}
		if res.LocalSteps != 3 || res.UnitRoutes != 0 {
			t.Fatalf("TagsFromAffine cost: steps=%d", res.LocalSteps)
		}
	}
}

// TestTagToRouteEndToEnd: compute tags locally from the compact form,
// then route on the CCC — the complete Section III workflow.
func TestTagToRouteEndToEnd(t *testing.T) {
	n := 8
	spec := perm.BitReversalBPC(n)
	tags := TagsFromBPC(spec).Tags
	c := NewCCC(tags, 1)
	c.PermuteBPC(spec)
	if !c.OK() {
		t.Fatal("end-to-end BPC routing failed")
	}
	aff := TagsFromAffine(n, 5, 3)
	c2 := NewCCC(aff.Tags, 1)
	c2.PermuteInverseOmega()
	if !c2.OK() {
		t.Fatal("end-to-end affine routing failed")
	}
}
