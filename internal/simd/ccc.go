// Package simd implements the Section III parallel permutation
// algorithms: simulating the self-routing Benes network on SIMD machines
// with fixed interconnections — the cube-connected computer (CCC), the
// perfect-shuffle computer (PSC), and the mesh-connected computer (MCC).
// Every machine counts unit routes, the paper's cost measure, so the
// headline counts (2 log N - 1 for CCC, 4 log N - 3 for PSC,
// 7 sqrt(N) - 8 for MCC) are reproduced exactly. A bitonic-sort-based
// permutation (the best known arbitrary-permutation method, O(log^2 N)
// routes) is provided as the baseline.
package simd

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/perm"
)

// CCC simulates an N-PE cube-connected computer. PE(i) holds a record
// (R(i), D(i)): R is the datum (initialized to the PE index so the
// realized permutation can be read back) and D its destination address.
// PE(i) is connected to PE(i^(b)) for every bit b.
type CCC struct {
	n    int
	size int
	r    []int
	d    []int

	routes       int
	exchangeCost int // unit routes per masked interchange (1 or 2)
	skipped      int // iterations skipped by shortcuts
}

// NewCCC prepares a CCC holding destination tags dest. exchangeCost is
// the unit-route cost of one masked interchange: 1 when record and tag
// fit one word (the paper's 2 log N - 1 total), 2 otherwise
// (4 log N - 2).
func NewCCC(dest perm.Perm, exchangeCost int) *CCC {
	if err := dest.Validate(); err != nil {
		panic("simd: NewCCC: " + err.Error())
	}
	if exchangeCost != 1 && exchangeCost != 2 {
		panic("simd: exchangeCost must be 1 or 2")
	}
	size := len(dest)
	c := &CCC{
		n:            bits.Log2(size),
		size:         size,
		r:            make([]int, size),
		d:            append([]int(nil), dest...),
		exchangeCost: exchangeCost,
	}
	for i := range c.r {
		c.r[i] = i
	}
	return c
}

// N returns the number of PEs.
func (c *CCC) N() int { return c.size }

// Routes returns the unit routes consumed so far.
func (c *CCC) Routes() int { return c.routes }

// Skipped returns the number of loop iterations skipped by shortcuts.
func (c *CCC) Skipped() int { return c.skipped }

// Step performs one iteration of the paper's loop across cube dimension
// b: the masked interchange
//
//	(R(i^(b)), D(i^(b))) <-> (R(i), D(i)),  (i)_b = 0 and (D(i))_b = 1.
func (c *CCC) Step(b int) {
	for i := 0; i < c.size; i++ {
		if bits.Bit(i, b) == 0 && bits.Bit(c.d[i], b) == 1 {
			j := bits.Flip(i, b)
			c.r[i], c.r[j] = c.r[j], c.r[i]
			c.d[i], c.d[j] = c.d[j], c.d[i]
		}
	}
	c.routes += c.exchangeCost
}

// BitSequence returns the paper's iteration order for B(n) simulation:
// b = 0, 1, ..., n-2, n-1, n-2, ..., 0 (2n-1 iterations, mirroring the
// Benes control-bit sequence).
func BitSequence(n int) []int {
	seq := make([]int, 0, 2*n-1)
	for b := 0; b < n; b++ {
		seq = append(seq, b)
	}
	for b := n - 2; b >= 0; b-- {
		seq = append(seq, b)
	}
	return seq
}

// Permute runs the full 2 log N - 1 iteration loop.
func (c *CCC) Permute() {
	for _, b := range BitSequence(c.n) {
		c.Step(b)
	}
}

// PermuteSkipping runs the loop but skips iterations whose bit is marked
// in skip; skipped iterations cost no routes.
func (c *CCC) PermuteSkipping(skip func(b int) bool) {
	for _, b := range BitSequence(c.n) {
		if skip(b) {
			c.skipped++
			continue
		}
		c.Step(b)
	}
}

// PermuteOmega exploits the Section III shortcut for Omega permutations:
// the first n-1 iterations (the Benes stages forced straight by the
// omega bit) are skipped entirely.
func (c *CCC) PermuteOmega() {
	seq := BitSequence(c.n)
	for _, b := range seq[c.n-1:] {
		c.Step(b)
	}
	c.skipped += c.n - 1
}

// PermuteInverseOmega skips the *last* n-1 iterations, the shortcut for
// inverse-omega permutations.
func (c *CCC) PermuteInverseOmega() {
	seq := BitSequence(c.n)
	for _, b := range seq[:c.n] {
		c.Step(b)
	}
	c.skipped += c.n - 1
}

// PermuteBPC runs the loop skipping every iteration b = j with
// A_j = +j: such a bit never needs routing across dimension j
// (Section III). spec must describe the same permutation as the
// destination tags.
func (c *CCC) PermuteBPC(spec perm.BPC) {
	if len(spec) != c.n {
		panic("simd: BPC spec size mismatch")
	}
	c.PermuteSkipping(func(b int) bool {
		return spec[b].Pos == b && !spec[b].Comp
	})
}

// Realized reads back the permutation actually performed:
// Realized()[i] is the PE where the record starting at PE i now sits.
func (c *CCC) Realized() perm.Perm {
	out := make(perm.Perm, c.size)
	for pe, rec := range c.r {
		out[rec] = pe
	}
	return out
}

// Dest returns the current destination tags (diagnostics and the Fig. 6
// trace).
func (c *CCC) Dest() []int { return append([]int(nil), c.d...) }

// OK reports whether every record reached its destination.
func (c *CCC) OK() bool {
	for pe, want := range c.d {
		if want != pe {
			return false
		}
	}
	return true
}

// Fig6Trace reruns the algorithm for dest recording the D(i) column
// after every iteration — the table shown in the paper's Fig. 6. Row k
// of the result holds (b_k, D-vector after iteration k); row 0 is the
// initial state with b = -1.
func Fig6Trace(dest perm.Perm) ([][]int, []int) {
	c := NewCCC(dest, 1)
	seq := BitSequence(c.n)
	trace := [][]int{c.Dest()}
	for _, b := range seq {
		c.Step(b)
		trace = append(trace, c.Dest())
	}
	if !c.OK() {
		panic(fmt.Sprintf("simd: Fig6Trace: %v is not in F", dest))
	}
	return trace, seq
}
