package simd

import (
	"math/rand"
	"testing"

	"repro/internal/perm"
)

func TestBitSequence(t *testing.T) {
	got := BitSequence(3)
	want := []int{0, 1, 2, 1, 0}
	if len(got) != len(want) {
		t.Fatalf("BitSequence(3) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BitSequence(3) = %v, want %v", got, want)
		}
	}
	if len(BitSequence(10)) != 19 {
		t.Fatal("BitSequence(10) length wrong")
	}
}

// TestCCCRealizesExactlyF: the CCC simulation succeeds exactly on F —
// the paper's core claim that the algorithm simulates the self-routing
// Benes network. Exhaustive at N=4 and N=8.
func TestCCCRealizesExactlyF(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		perm.ForEach(1<<uint(n), func(p perm.Perm) bool {
			c := NewCCC(p, 1)
			c.Permute()
			if c.OK() != perm.InF(p) {
				t.Fatalf("n=%d: CCC and Theorem 1 disagree on %v", n, p.Clone())
			}
			if c.OK() && !c.Realized().Equal(p) {
				t.Fatalf("n=%d: CCC realized %v, want %v", n, c.Realized(), p.Clone())
			}
			return true
		})
	}
	rng := rand.New(rand.NewSource(121))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(9)
		p := perm.Random(1<<uint(n), rng)
		c := NewCCC(p, 1)
		c.Permute()
		if c.OK() != perm.InF(p) {
			t.Fatalf("n=%d: CCC and Theorem 1 disagree on %v", n, p)
		}
	}
}

// TestCCCRouteCounts: 2 log N - 1 unit routes in the one-word model,
// 4 log N - 2 in the two-route model.
func TestCCCRouteCounts(t *testing.T) {
	for n := 1; n <= 10; n++ {
		d := perm.Identity(1 << uint(n))
		c1 := NewCCC(d, 1)
		c1.Permute()
		if c1.Routes() != 2*n-1 {
			t.Errorf("n=%d: cost-1 routes=%d, want %d", n, c1.Routes(), 2*n-1)
		}
		c2 := NewCCC(d, 2)
		c2.Permute()
		if c2.Routes() != 4*n-2 {
			t.Errorf("n=%d: cost-2 routes=%d, want %d", n, c2.Routes(), 4*n-2)
		}
	}
}

// TestCCCOmegaShortcut: Omega permutations route with the first n-1
// iterations skipped, in n unit routes.
func TestCCCOmegaShortcut(t *testing.T) {
	for _, n := range []int{2, 3} {
		perm.ForEach(1<<uint(n), func(p perm.Perm) bool {
			if !perm.IsOmega(p) {
				return true
			}
			c := NewCCC(p, 1)
			c.PermuteOmega()
			if !c.OK() {
				t.Fatalf("n=%d: omega shortcut failed on %v", n, p.Clone())
			}
			if c.Routes() != n {
				t.Fatalf("n=%d: omega shortcut used %d routes, want %d", n, c.Routes(), n)
			}
			if c.Skipped() != n-1 {
				t.Fatalf("n=%d: skipped %d, want %d", n, c.Skipped(), n-1)
			}
			return true
		})
	}
	// Larger spot checks.
	for n := 4; n <= 9; n++ {
		N := 1 << uint(n)
		for _, p := range []perm.Perm{perm.CyclicShift(n, 3), perm.POrdering(n, N-1)} {
			if !perm.IsOmega(p) {
				t.Fatalf("test perm not omega at n=%d", n)
			}
			c := NewCCC(p, 1)
			c.PermuteOmega()
			if !c.OK() {
				t.Fatalf("n=%d: omega shortcut failed", n)
			}
		}
	}
}

// TestCCCInverseOmegaShortcut: inverse-omega permutations route with
// the last n-1 iterations skipped.
func TestCCCInverseOmegaShortcut(t *testing.T) {
	for _, n := range []int{2, 3} {
		perm.ForEach(1<<uint(n), func(p perm.Perm) bool {
			if !perm.IsInverseOmega(p) {
				return true
			}
			c := NewCCC(p, 1)
			c.PermuteInverseOmega()
			if !c.OK() {
				t.Fatalf("n=%d: inverse-omega shortcut failed on %v", n, p.Clone())
			}
			if c.Routes() != n {
				t.Fatalf("n=%d: shortcut used %d routes, want %d", n, c.Routes(), n)
			}
			return true
		})
	}
}

// TestCCCBPCShortcut: for a BPC permutation, iterations with A_j = +j
// are skipped and routing still succeeds. The route count drops by
// 2 per interior fixed bit (1 for bit n-1) — within a factor of two of
// optimal, as the paper notes.
func TestCCCBPCShortcut(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(8)
		spec := perm.RandomBPC(n, rng)
		d := spec.Perm()
		c := NewCCC(d, 1)
		c.PermuteBPC(spec)
		if !c.OK() {
			t.Fatalf("BPC shortcut failed for %v", spec)
		}
		saved := 0
		for j, ax := range spec {
			if ax.Pos == j && !ax.Comp {
				if j == n-1 {
					saved++
				} else {
					saved += 2
				}
			}
		}
		if c.Routes() != 2*n-1-saved {
			t.Fatalf("BPC shortcut used %d routes, want %d (spec %v)", c.Routes(), 2*n-1-saved, spec)
		}
		if c.Skipped() != saved {
			t.Fatalf("skipped %d, want %d", c.Skipped(), saved)
		}
	}
}

// TestCCCIdentityBPCFree: the identity BPC spec skips every iteration —
// zero routes.
func TestCCCIdentityBPCFree(t *testing.T) {
	n := 6
	c := NewCCC(perm.Identity(1<<uint(n)), 1)
	c.PermuteBPC(perm.IdentityBPC(n))
	if !c.OK() || c.Routes() != 0 {
		t.Fatalf("identity BPC should cost nothing, used %d routes", c.Routes())
	}
}

// TestFig6Trace reproduces the paper's Fig. 6: the per-iteration D(i)
// columns for bit reversal on 8 PEs.
func TestFig6Trace(t *testing.T) {
	trace, seq := Fig6Trace(perm.BitReversal(3))
	if len(trace) != 6 || len(seq) != 5 {
		t.Fatalf("trace has %d rows, want 6", len(trace))
	}
	check := func(row int, want []int) {
		for i, w := range want {
			if trace[row][i] != w {
				t.Fatalf("trace row %d = %v, want %v", row, trace[row], want)
			}
		}
	}
	// Initial tags: bit reversal of 0..7.
	check(0, []int{0, 4, 2, 6, 1, 5, 3, 7})
	// After b=0: PE4<->PE5 and PE6<->PE7 exchange (the two examples the
	// paper calls out).
	check(1, []int{0, 4, 2, 6, 5, 1, 7, 3})
	// After b=2 (iteration 3): PE1<->PE5 and PE3<->PE7 exchange, PE0/PE4
	// do not — the other two examples in the text.
	check(3, []int{0, 1, 2, 3, 5, 4, 7, 6})
	// Final: every tag home.
	check(5, []int{0, 1, 2, 3, 4, 5, 6, 7})
}

func TestFig6TracePanicsOnNonF(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Fig6Trace should panic on non-F permutation")
		}
	}()
	Fig6Trace(perm.Perm{1, 3, 2, 0})
}

func TestNewCCCValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { NewCCC(perm.Perm{0, 0, 1, 1}, 1) },
		func() { NewCCC(perm.Identity(4), 3) },
		func() { NewCCC(perm.Identity(3), 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			bad()
		}()
	}
}
