package simd

import (
	"math/rand"
	"testing"

	"repro/internal/perm"
)

func TestRequiredDimensions(t *testing.T) {
	// Identity needs nothing.
	if _, c := RequiredDimensions(perm.Identity(16)); c != 0 {
		t.Errorf("identity requires %d dimensions", c)
	}
	// Vector reversal flips every bit.
	if mask, c := RequiredDimensions(perm.VectorReversal(4)); c != 4 || mask != 0b1111 {
		t.Errorf("vector reversal: mask=%b count=%d", mask, c)
	}
	// Conditional exchange touches only bit 0.
	if mask, c := RequiredDimensions(perm.ConditionalExchange(4, 2)); c != 1 || mask != 1 {
		t.Errorf("conditional exchange: mask=%b count=%d", mask, c)
	}
}

// TestCCCWithinFactorTwoOfOptimal is the paper's optimality remark: the
// skipping algorithm spends at most twice the dimension-crossing lower
// bound on any BPC permutation.
func TestCCCWithinFactorTwoOfOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(9)
		spec := perm.RandomBPC(n, rng)
		d := spec.Perm()
		c := NewCCC(d, 1)
		c.PermuteBPC(spec)
		if !c.OK() {
			t.Fatal("BPC routing failed")
		}
		lb := CCCLowerBound(d)
		if lb == 0 {
			if c.Routes() != 0 {
				t.Fatalf("identity-like BPC used %d routes", c.Routes())
			}
			continue
		}
		if c.Routes() > 2*lb {
			t.Fatalf("n=%d spec=%v: %d routes vs lower bound %d — beyond factor 2",
				n, spec, c.Routes(), lb)
		}
		if c.Routes() != BPCSkipRoutes(spec) {
			t.Fatalf("BPCSkipRoutes mismatch: %d vs %d", c.Routes(), BPCSkipRoutes(spec))
		}
	}
}

// TestMCCWithinFactorFourOfOptimal mirrors the mesh remark.
func TestMCCWithinFactorFourOfOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(172))
	for trial := 0; trial < 200; trial++ {
		n := 2 * (1 + rng.Intn(4))
		spec := perm.RandomBPC(n, rng)
		d := spec.Perm()
		mc := NewMCC(d)
		mc.PermuteBPC(spec)
		if !mc.OK() {
			t.Fatal("BPC mesh routing failed")
		}
		lb := MCCLowerBound(d)
		if lb == 0 {
			continue
		}
		if mc.Routes() > 4*lb {
			t.Fatalf("n=%d: %d routes vs lower bound %d — beyond factor 4", n, mc.Routes(), lb)
		}
	}
}

// TestLowerBoundIsABound: no algorithm variant may beat the lower
// bound.
func TestLowerBoundIsABound(t *testing.T) {
	rng := rand.New(rand.NewSource(173))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(7)
		spec := perm.RandomBPC(n, rng)
		d := spec.Perm()
		c := NewCCC(d, 1)
		c.PermuteBPC(spec)
		if c.Routes() < CCCLowerBound(d) {
			t.Fatalf("algorithm used %d routes, below lower bound %d", c.Routes(), CCCLowerBound(d))
		}
	}
}

func TestMCCLowerBoundPanicsOnOddLog(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MCCLowerBound(perm.Identity(8))
}
