package simd

import (
	"repro/internal/bits"
	"repro/internal/perm"
)

// MCCDetailed is the hop-faithful mesh machine: where MCC charges
// 2*2^(b mod m) unit routes per interchange as an aggregate, this
// implementation physically moves the records PE-to-PE — every unit
// route is a transfer between mesh NEIGHBOURS (distance one column or
// one row), exactly like the 1980 hardware would. Tests assert it
// reaches the same final state with the same route count as MCC, and a
// movement hook lets tests verify no record ever teleports.
type MCCDetailed struct {
	n    int
	m    int // log2 sqrt(N)
	size int
	side int
	r    []int
	d    []int

	routes int
	// onMove, when set, observes every physical transfer (from, to).
	onMove func(from, to int)
}

// NewMCCDetailed prepares the machine; requires a square mesh.
func NewMCCDetailed(dest perm.Perm) *MCCDetailed {
	if err := dest.Validate(); err != nil {
		panic("simd: NewMCCDetailed: " + err.Error())
	}
	n := bits.Log2(len(dest))
	if n%2 != 0 {
		panic("simd: NewMCCDetailed requires a square mesh")
	}
	mc := &MCCDetailed{
		n:    n,
		m:    n / 2,
		size: len(dest),
		side: 1 << uint(n/2),
		r:    make([]int, len(dest)),
		d:    append([]int(nil), dest...),
	}
	for i := range mc.r {
		mc.r[i] = i
	}
	return mc
}

// OnMove installs a hook observing every neighbour transfer.
func (mc *MCCDetailed) OnMove(f func(from, to int)) { mc.onMove = f }

// Routes returns unit routes consumed (one per neighbour transfer
// phase, SIMD-lockstep across all transiting records).
func (mc *MCCDetailed) Routes() int { return mc.routes }

// Step performs the dimension-b masked interchange by physical
// store-and-forward: the masked records travel +unit for 2^(b mod m)
// steps, then their partners travel -unit for the same distance. Every
// step is one unit route.
func (mc *MCCDetailed) Step(b int) {
	unit := 1 // neighbouring column
	if b >= mc.m {
		unit = mc.side // neighbouring row
	}
	dist := 1 << uint(b%mc.m)
	delta := unit * dist // displacement between partners, = 2^b in index terms

	type rec struct{ r, d int }
	// Collect the travelling records.
	var sources []int
	for i := 0; i < mc.size; i++ {
		if bits.Bit(i, b) == 0 && bits.Bit(mc.d[i], b) == 1 {
			sources = append(sources, i)
		}
	}
	// Phase one: masked records ride +unit lanes for dist steps.
	transit := make(map[int]rec, len(sources))
	for _, i := range sources {
		transit[i] = rec{mc.r[i], mc.d[i]}
	}
	for step := 0; step < dist; step++ {
		next := make(map[int]rec, len(transit))
		for pos, rv := range transit {
			if mc.onMove != nil {
				mc.onMove(pos, pos+unit)
			}
			next[pos+unit] = rv
		}
		transit = next
		mc.routes++
	}
	arrivedFwd := transit

	// Phase two: the partners ride -unit lanes back.
	transit = make(map[int]rec, len(sources))
	for _, i := range sources {
		j := i + delta
		transit[j] = rec{mc.r[j], mc.d[j]}
	}
	for step := 0; step < dist; step++ {
		next := make(map[int]rec, len(transit))
		for pos, rv := range transit {
			if mc.onMove != nil {
				mc.onMove(pos, pos-unit)
			}
			next[pos-unit] = rv
		}
		transit = next
		mc.routes++
	}
	// Deposit both directions.
	for pos, rv := range arrivedFwd {
		mc.r[pos], mc.d[pos] = rv.r, rv.d
	}
	for pos, rv := range transit {
		mc.r[pos], mc.d[pos] = rv.r, rv.d
	}
}

// Permute runs the full Benes bit sequence: 7 sqrt(N) - 8 unit routes.
func (mc *MCCDetailed) Permute() {
	for _, b := range BitSequence(mc.n) {
		mc.Step(b)
	}
}

// Realized reads back the performed permutation.
func (mc *MCCDetailed) Realized() perm.Perm {
	out := make(perm.Perm, mc.size)
	for pe, rec := range mc.r {
		out[rec] = pe
	}
	return out
}

// OK reports whether every record reached its destination.
func (mc *MCCDetailed) OK() bool {
	for pe, want := range mc.d {
		if want != pe {
			return false
		}
	}
	return true
}
