package simd

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/perm"
)

func TestProgramLengths(t *testing.T) {
	for n := 1; n <= 10; n++ {
		if got := CCCProgram(n).UnitRoutes(); got != 2*n-1 {
			t.Errorf("n=%d: CCC program %d instrs, want %d", n, got, 2*n-1)
		}
		if got := PSCProgram(n).UnitRoutes(); got != 4*n-3 {
			t.Errorf("n=%d: PSC program %d instrs, want %d", n, got, 4*n-3)
		}
		if got := PSCOmegaProgram(n).UnitRoutes(); got != 2*n {
			t.Errorf("n=%d: PSC omega program %d instrs, want %d", n, got, 2*n)
		}
	}
}

// TestProgramsMatchDirectImplementations: interpreting the programs
// must reproduce the direct CCC/PSC code exactly — same success flag,
// same realized mapping, same route count.
func TestProgramsMatchDirectImplementations(t *testing.T) {
	rng := rand.New(rand.NewSource(291))
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.Intn(8)
		d := perm.Random(1<<uint(n), rng)

		m := NewMachine(d)
		m.Run(CCCProgram(n))
		c := NewCCC(d, 1)
		c.Permute()
		if m.OK() != c.OK() || !m.Realized().Equal(c.Realized()) || m.Routes() != c.Routes() {
			t.Fatalf("n=%d: CCC program diverges from direct implementation", n)
		}

		m2 := NewMachine(d)
		m2.Run(PSCProgram(n))
		p := NewPSC(d)
		p.Permute()
		if m2.OK() != p.OK() || !m2.Realized().Equal(p.Realized()) || m2.Routes() != p.Routes() {
			t.Fatalf("n=%d: PSC program diverges from direct implementation", n)
		}
	}
}

// TestOmegaProgramMatches: the shortcut program equals PermuteOmega.
func TestOmegaProgramMatches(t *testing.T) {
	for n := 2; n <= 8; n++ {
		d := perm.CyclicShift(n, 3)
		m := NewMachine(d)
		m.Run(PSCOmegaProgram(n))
		p := NewPSC(d)
		p.PermuteOmega()
		if m.OK() != p.OK() || m.Routes() != p.Routes() {
			t.Fatalf("n=%d: omega program diverges", n)
		}
		if !m.OK() {
			t.Fatalf("n=%d: omega program failed on cyclic shift", n)
		}
	}
}

func TestProgramListing(t *testing.T) {
	prog := PSCProgram(2)
	listing := prog.String()
	want := "XCHG.tag 0\nUNSHUF\nXCHG.tag 1\nSHUF\nXCHG.tag 0"
	if listing != want {
		t.Fatalf("listing:\n%s\nwant:\n%s", listing, want)
	}
	if !strings.Contains(CCCProgram(3).String(), "XCHG.dim 2") {
		t.Error("CCC listing missing middle dimension")
	}
}

func TestMachineValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { NewMachine(perm.Perm{0, 0, 1, 1}) },
		func() {
			m := NewMachine(perm.Identity(4))
			m.Exec(Instr{Op: Op(99)})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			bad()
		}()
	}
}
