package simd

import (
	"repro/internal/perm"
)

// This file implements the end of Section III: destination tags can be
// computed locally by each PE from a compact permutation representation,
// without any PE-to-PE communication. From a BPC A-vector (log N words
// broadcast in the instruction stream) each PE derives its own tag in
// O(log N) local steps; from the constants (p, k) of a
// "p-ordering and cyclic shift" each PE needs only O(1) steps.

// TagResult carries the computed tags together with the cost model: the
// maximum number of local operations executed by any single PE (all PEs
// work in lockstep, so this is the SIMD step count) and the unit routes
// used (always zero — the computation is purely local).
type TagResult struct {
	Tags       perm.Perm
	LocalSteps int
	UnitRoutes int
}

// TagsFromBPC has every PE compute D(i) from the broadcast A-vector.
// Each PE performs one extract-complement-deposit step per bit:
// O(log N) local steps.
func TagsFromBPC(spec perm.BPC) TagResult {
	n := len(spec)
	size := 1 << uint(n)
	tags := make(perm.Perm, size)
	for i := range tags {
		d := 0
		for j, ax := range spec {
			b := (i >> uint(j)) & 1
			if ax.Comp {
				b = 1 - b
			}
			d |= b << uint(ax.Pos)
		}
		tags[i] = d
	}
	return TagResult{Tags: tags, LocalSteps: n}
}

// TagsFromAffine has every PE compute D(i) = (p*i + k) mod N from the
// broadcast constants: one multiply, one add, one mask — O(1) local
// steps regardless of N.
func TagsFromAffine(n, p, k int) TagResult {
	if p%2 == 0 {
		panic("simd: TagsFromAffine requires odd p")
	}
	size := 1 << uint(n)
	tags := make(perm.Perm, size)
	mask := size - 1
	pp := ((p % size) + size) % size
	kk := ((k % size) + size) % size
	for i := range tags {
		tags[i] = (pp*i + kk) & mask
	}
	return TagResult{Tags: tags, LocalSteps: 3}
}
