package simd

import (
	"fmt"
	"strings"

	"repro/internal/bits"
	"repro/internal/perm"
)

// This file expresses the Section III algorithms as explicit SIMD
// *programs* — ordered instruction streams the control unit would
// broadcast — and provides an interpreter with unit-route accounting.
// The direct implementations (CCC.Permute etc.) stay the fast path; the
// programs exist so the algorithms can be printed, inspected, costed
// per-instruction, and cross-checked instruction-for-instruction
// against the direct code (see tests).

// Op is an SIMD instruction opcode.
type Op int

const (
	// OpExchangeDim is the CCC masked interchange across cube dimension
	// Arg: records move between PE(i) and PE(i^(Arg)) when (i)_Arg = 0
	// and bit Arg of D(i) is 1.
	OpExchangeDim Op = iota
	// OpExchangeTag is the PSC masked exchange: PE pairs (2i, 2i+1)
	// swap when bit Arg of D(2i) is 1.
	OpExchangeTag
	// OpShuffle routes every record along the perfect-shuffle wire.
	OpShuffle
	// OpUnshuffle routes every record along the unshuffle wire.
	OpUnshuffle
)

// Instr is one broadcast instruction.
type Instr struct {
	Op  Op
	Arg int // tag bit / dimension for the exchange ops
}

func (in Instr) String() string {
	switch in.Op {
	case OpExchangeDim:
		return fmt.Sprintf("XCHG.dim %d", in.Arg)
	case OpExchangeTag:
		return fmt.Sprintf("XCHG.tag %d", in.Arg)
	case OpShuffle:
		return "SHUF"
	case OpUnshuffle:
		return "UNSHUF"
	}
	return fmt.Sprintf("Instr(%d,%d)", int(in.Op), in.Arg)
}

// Program is an instruction stream with a listing.
type Program []Instr

// String renders the stream one instruction per line.
func (p Program) String() string {
	var sb strings.Builder
	for i, in := range p {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(in.String())
	}
	return sb.String()
}

// UnitRoutes returns the program's cost in unit routes under the
// one-word model: every instruction is one route.
func (p Program) UnitRoutes() int { return len(p) }

// CCCProgram returns the Section III cube program for 2^n PEs:
// XCHG.dim over the Benes bit sequence, 2n-1 instructions.
func CCCProgram(n int) Program {
	var prog Program
	for _, b := range BitSequence(n) {
		prog = append(prog, Instr{Op: OpExchangeDim, Arg: b})
	}
	return prog
}

// PSCProgram returns the Section III shuffle program: 4n-3
// instructions.
func PSCProgram(n int) Program {
	var prog Program
	for b := 0; b <= n-2; b++ {
		prog = append(prog, Instr{Op: OpExchangeTag, Arg: b}, Instr{Op: OpUnshuffle})
	}
	prog = append(prog, Instr{Op: OpExchangeTag, Arg: n - 1})
	for b := n - 2; b >= 0; b-- {
		prog = append(prog, Instr{Op: OpShuffle}, Instr{Op: OpExchangeTag, Arg: b})
	}
	return prog
}

// PSCOmegaProgram is the omega shortcut: 2n instructions.
func PSCOmegaProgram(n int) Program {
	prog := Program{{Op: OpShuffle}, {Op: OpExchangeTag, Arg: n - 1}}
	for b := n - 2; b >= 0; b-- {
		prog = append(prog, Instr{Op: OpShuffle}, Instr{Op: OpExchangeTag, Arg: b})
	}
	return prog
}

// Machine is the interpreter state: per-PE records (R, D).
type Machine struct {
	n      int
	size   int
	r, d   []int
	routes int
}

// NewMachine loads destination tags; R(i) = i.
func NewMachine(dest perm.Perm) *Machine {
	if err := dest.Validate(); err != nil {
		panic("simd: NewMachine: " + err.Error())
	}
	m := &Machine{
		n:    bits.Log2(len(dest)),
		size: len(dest),
		r:    make([]int, len(dest)),
		d:    append([]int(nil), dest...),
	}
	for i := range m.r {
		m.r[i] = i
	}
	return m
}

// Exec runs one instruction.
func (m *Machine) Exec(in Instr) {
	switch in.Op {
	case OpExchangeDim:
		for i := 0; i < m.size; i++ {
			if bits.Bit(i, in.Arg) == 0 && bits.Bit(m.d[i], in.Arg) == 1 {
				j := bits.Flip(i, in.Arg)
				m.r[i], m.r[j] = m.r[j], m.r[i]
				m.d[i], m.d[j] = m.d[j], m.d[i]
			}
		}
	case OpExchangeTag:
		for i := 0; i < m.size; i += 2 {
			if bits.Bit(m.d[i], in.Arg) == 1 {
				m.r[i], m.r[i+1] = m.r[i+1], m.r[i]
				m.d[i], m.d[i+1] = m.d[i+1], m.d[i]
			}
		}
	case OpShuffle:
		nr, nd := make([]int, m.size), make([]int, m.size)
		for i := 0; i < m.size; i++ {
			to := bits.RotLeft(i, m.n)
			nr[to], nd[to] = m.r[i], m.d[i]
		}
		m.r, m.d = nr, nd
	case OpUnshuffle:
		nr, nd := make([]int, m.size), make([]int, m.size)
		for i := 0; i < m.size; i++ {
			to := bits.RotRight(i, m.n)
			nr[to], nd[to] = m.r[i], m.d[i]
		}
		m.r, m.d = nr, nd
	default:
		panic("simd: unknown instruction")
	}
	m.routes++
}

// Run executes a whole program.
func (m *Machine) Run(p Program) {
	for _, in := range p {
		m.Exec(in)
	}
}

// Routes returns the unit routes consumed.
func (m *Machine) Routes() int { return m.routes }

// OK reports whether every tag is home.
func (m *Machine) OK() bool {
	for pe, want := range m.d {
		if want != pe {
			return false
		}
	}
	return true
}

// Realized reads back the performed permutation.
func (m *Machine) Realized() perm.Perm {
	out := make(perm.Perm, m.size)
	for pe, rec := range m.r {
		out[rec] = pe
	}
	return out
}
