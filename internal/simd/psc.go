package simd

import (
	"repro/internal/bits"
	"repro/internal/perm"
)

// PSC simulates an N-PE perfect-shuffle computer. PE(i) is connected to
// PE(i^(0)) (exchange), PE(shuffle(i)) and PE(unshuffle(i)). The
// Section III algorithm simulates the Benes network using only those
// three connections, in 4 log N - 3 unit routes.
type PSC struct {
	n    int
	size int
	r    []int
	d    []int

	routes int
	// rot tracks the net left-rotation applied to PE indices by
	// shuffles so far; used only for internal assertions.
	rot int
}

// NewPSC prepares a PSC holding destination tags dest; R(i) is
// initialized to i.
func NewPSC(dest perm.Perm) *PSC {
	if err := dest.Validate(); err != nil {
		panic("simd: NewPSC: " + err.Error())
	}
	size := len(dest)
	p := &PSC{
		n:    bits.Log2(size),
		size: size,
		r:    make([]int, size),
		d:    append([]int(nil), dest...),
	}
	for i := range p.r {
		p.r[i] = i
	}
	return p
}

// N returns the number of PEs.
func (p *PSC) N() int { return p.size }

// Routes returns the unit routes consumed so far.
func (p *PSC) Routes() int { return p.routes }

// Exchange performs the masked exchange: records move between PE(i) and
// PE(i^(0)) when (i)_0 = 0 and bit `tagBit` of D(i) is 1. One unit
// route.
func (p *PSC) Exchange(tagBit int) {
	for i := 0; i < p.size; i += 2 {
		if bits.Bit(p.d[i], tagBit) == 1 {
			p.r[i], p.r[i+1] = p.r[i+1], p.r[i]
			p.d[i], p.d[i+1] = p.d[i+1], p.d[i]
		}
	}
	p.routes++
}

// Shuffle routes every record along the shuffle connection:
// (R, D) of PE(i) moves to PE(shuffle(i)). One unit route.
func (p *PSC) Shuffle() {
	nr := make([]int, p.size)
	nd := make([]int, p.size)
	for i := 0; i < p.size; i++ {
		to := bits.RotLeft(i, p.n)
		nr[to], nd[to] = p.r[i], p.d[i]
	}
	p.r, p.d = nr, nd
	p.rot = (p.rot + 1) % p.n
	p.routes++
}

// Unshuffle routes every record along the unshuffle connection. One
// unit route.
func (p *PSC) Unshuffle() {
	nr := make([]int, p.size)
	nd := make([]int, p.size)
	for i := 0; i < p.size; i++ {
		to := bits.RotRight(i, p.n)
		nr[to], nd[to] = p.r[i], p.d[i]
	}
	p.r, p.d = nr, nd
	p.rot = (p.rot + p.n - 1) % p.n
	p.routes++
}

// Permute runs the Section III PSC algorithm:
//
//	for b := 0 to n-2 { EXCHANGE(bit b); UNSHUFFLE }
//	EXCHANGE(bit n-1)
//	for b := n-2 down to 0 { SHUFFLE; EXCHANGE(bit b) }
//
// for a total of 4 log N - 3 unit routes.
func (p *PSC) Permute() {
	for b := 0; b <= p.n-2; b++ {
		p.Exchange(b)
		p.Unshuffle()
	}
	p.Exchange(p.n - 1)
	for b := p.n - 2; b >= 0; b-- {
		p.Shuffle()
		p.Exchange(b)
	}
}

// PermuteOmega is the Section III shortcut for Omega permutations: the
// first loop's n-1 exchanges would all be disabled (Benes stages forced
// straight) and its n-1 unshuffles collapse to a single shuffle, giving
// 2 log N unit routes in total.
func (p *PSC) PermuteOmega() {
	p.Shuffle() // equivalent to n-1 unshuffles
	p.Exchange(p.n - 1)
	for b := p.n - 2; b >= 0; b-- {
		p.Shuffle()
		p.Exchange(b)
	}
}

// PermuteInverseOmega is the mirror shortcut for inverse-omega
// permutations: the trailing loop collapses to a single unshuffle,
// 2 log N unit routes in total.
func (p *PSC) PermuteInverseOmega() {
	for b := 0; b <= p.n-2; b++ {
		p.Exchange(b)
		p.Unshuffle()
	}
	p.Exchange(p.n - 1)
	p.Unshuffle() // equivalent to n-1 shuffles
}

// Realized reads back the performed permutation: Realized()[i] is the
// PE where the record starting at PE i now sits.
func (p *PSC) Realized() perm.Perm {
	out := make(perm.Perm, p.size)
	for pe, rec := range p.r {
		out[rec] = pe
	}
	return out
}

// OK reports whether every record reached its destination tag's PE.
func (p *PSC) OK() bool {
	for pe, want := range p.d {
		if want != pe {
			return false
		}
	}
	return true
}
