package machine

import (
	"math/rand"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/perm"
)

func newTest(n int) *Machine {
	return New(n, costmodel.Typical1980())
}

// TestDispatchClasses: each request lands on the cheapest capable
// fabric.
func TestDispatchClasses(t *testing.T) {
	n := 5
	m := newTest(n)
	cases := []struct {
		d    perm.Perm
		want Fabric
	}{
		{perm.Identity(32), FabricNone},
		{perm.PerfectShuffle(n), FabricDirect},
		{perm.Unshuffle(n), FabricDirect},
		{perm.ConditionalExchange(n, n-1), FabricBenes}, // exchange-like but in F via tags
		{perm.BitReversal(n), FabricBenes},
		{perm.CyclicShift(n, 3), FabricBenes}, // inverse-omega, hence F
	}
	for _, c := range cases {
		got := m.Apply(c.d)
		if got.Fabric != c.want && !(c.want == FabricBenes && got.Fabric == FabricDirect) {
			t.Errorf("dispatch(%v) = %s, want %s", c.d[:4], got.Fabric, c.want)
		}
	}
}

// TestConditionalExchangeIsDirect: the pairwise exchange is E(n)'s
// wire.
func TestConditionalExchangeIsDirect(t *testing.T) {
	n := 4
	m := newTest(n)
	allSwap := make(perm.Perm, 16)
	for i := range allSwap {
		allSwap[i] = i ^ 1
	}
	if got := m.Apply(allSwap); got.Fabric != FabricDirect {
		t.Errorf("pairwise exchange dispatched to %s", got.Fabric)
	}
}

// TestNonFGoesTwoPass: a random permutation (outside F) uses two
// passes and still lands correctly.
func TestNonFGoesTwoPass(t *testing.T) {
	rng := rand.New(rand.NewSource(331))
	n := 6
	m := newTest(n)
	d := perm.Random(64, rng)
	for perm.InF(d) {
		d = perm.Random(64, rng)
	}
	before := m.Data()
	disp := m.Apply(d)
	if disp.Fabric != FabricTwoPass {
		t.Fatalf("dispatched to %s", disp.Fabric)
	}
	after := m.Data()
	for i := range before {
		if after[d[i]] != before[i] {
			t.Fatal("two-pass request moved data incorrectly")
		}
	}
}

// TestDataTracksComposition: a sequence of mixed requests must compose
// exactly.
func TestDataTracksComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(332))
	n := 5
	N := 32
	m := newTest(n)
	want := make([]int, N)
	for i := range want {
		want[i] = i
	}
	reqs := []perm.Perm{
		perm.PerfectShuffle(n),
		perm.BitReversal(n),
		perm.Random(N, rng),
		perm.CyclicShift(n, 7),
		perm.Random(N, rng),
		perm.Identity(N),
	}
	for _, d := range reqs {
		m.Apply(d)
		want = perm.Apply(d, want)
	}
	got := m.Data()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("machine state diverged at PE %d", i)
		}
	}
	served := m.Served()
	total := 0
	for _, c := range served {
		total += c
	}
	if total != len(reqs) {
		t.Fatalf("served %d of %d requests", total, len(reqs))
	}
	if len(m.History()) != len(reqs) {
		t.Fatal("history incomplete")
	}
}

// TestCostAccounting: time is the sum of dispatch costs and fabric
// ordering is respected (direct < benes < twopass).
func TestCostAccounting(t *testing.T) {
	n := 6
	m := newTest(n)
	d1 := m.Apply(perm.PerfectShuffle(n))
	d2 := m.Apply(perm.BitReversal(n))
	rng := rand.New(rand.NewSource(333))
	d := perm.Random(64, rng)
	for perm.InF(d) {
		d = perm.Random(64, rng)
	}
	d3 := m.Apply(d)
	if !(d1.Cost < d2.Cost && d2.Cost < d3.Cost) {
		t.Fatalf("cost ordering violated: %v %v %v", d1.Cost, d2.Cost, d3.Cost)
	}
	if m.Time() != d1.Cost+d2.Cost+d3.Cost {
		t.Fatal("total time != sum of costs")
	}
}

// TestStreamPipelined: a batch of independent vectors moves in
// fill + k - 1 cycles and every vector is permuted correctly.
func TestStreamPipelined(t *testing.T) {
	rng := rand.New(rand.NewSource(334))
	n := 5
	N := 32
	m := newTest(n)
	const k = 20
	ds := make([]perm.Perm, k)
	vecs := make([][]int, k)
	for i := range ds {
		ds[i] = perm.RandomBPC(n, rng).Perm()
		vecs[i] = make([]int, N)
		for j := range vecs[i] {
			vecs[i][j] = i*N + j
		}
	}
	out, cycles := m.StreamPipelined(ds, vecs)
	wantCycles := (2*n - 1) + 1 + (k - 1) // fill (stages+1), then one per extra vector
	if cycles != wantCycles {
		t.Fatalf("cycles = %d, want %d", cycles, wantCycles)
	}
	for i := range out {
		for j := range vecs[i] {
			if out[i][ds[i][j]] != vecs[i][j] {
				t.Fatalf("vector %d permuted incorrectly", i)
			}
		}
	}
	// Pipelining must beat k sequential passes.
	if cycles >= k*(2*n-1) {
		t.Fatal("pipelining saved nothing")
	}
}

func TestStreamRejectsNonF(t *testing.T) {
	m := newTest(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.StreamPipelined([]perm.Perm{{1, 3, 2, 0}}, [][]int{{0, 1, 2, 3}})
}

func TestApplyValidation(t *testing.T) {
	m := newTest(3)
	for _, bad := range []func(){
		func() { m.Apply(perm.Identity(4)) },
		func() { m.Apply(perm.Perm{0, 0, 1, 1, 2, 2, 3, 3}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			bad()
		}()
	}
}
