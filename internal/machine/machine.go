// Package machine implements the SIMD computer proposed in the paper's
// conclusion: N processing elements served by TWO interconnection
// fabrics — a direct network E(n) (here the perfect-shuffle wiring,
// one routing step per built-in permutation) and the self-routing Benes
// network B(n) with its omega bit. A scheduler dispatches each
// permutation request to the cheapest fabric that can carry it:
//
//	identity                    -> no-op
//	E(n) wire (shuffle family)  -> 1 routing step
//	F(n) member                 -> one B(n) pass, tag-driven
//	Omega member                -> one B(n) pass with the omega bit
//	anything else               -> two B(n) passes (perm.OmegaFactor)
//
// Back-to-back B(n) requests stream through the registered pipeline
// (Section IV), so a batch of k network requests costs fill + k cycles
// rather than k full delays. The package keeps account in the same
// units as internal/costmodel.
package machine

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/perm"
)

// Fabric identifies which interconnect carried a request.
type Fabric string

const (
	FabricNone    Fabric = "no-op"
	FabricDirect  Fabric = "E(n) direct wire"
	FabricBenes   Fabric = "B(n) self-route"
	FabricOmega   Fabric = "B(n) omega bit"
	FabricTwoPass Fabric = "B(n) two passes"
)

// Machine is the dual-network SIMD computer.
type Machine struct {
	n      int
	size   int
	net    *core.Network
	params costmodel.Params

	// Data held by the PEs.
	data []int

	// Accounting.
	served  map[Fabric]int
	time    float64
	history []Dispatch
}

// Dispatch records one served request.
type Dispatch struct {
	Fabric Fabric
	Cost   float64 // modelled time
}

// New builds a machine over 2^n PEs; PE(i) initially holds value i.
func New(n int, p costmodel.Params) *Machine {
	m := &Machine{
		n:      n,
		size:   1 << uint(n),
		net:    core.New(n),
		params: p,
		data:   make([]int, 1<<uint(n)),
		served: make(map[Fabric]int),
	}
	for i := range m.data {
		m.data[i] = i
	}
	return m
}

// N returns the PE count.
func (m *Machine) N() int { return m.size }

// Data returns the current PE contents (a copy).
func (m *Machine) Data() []int { return append([]int(nil), m.data...) }

// Time returns the total modelled time spent.
func (m *Machine) Time() float64 { return m.time }

// Served returns how many requests each fabric carried.
func (m *Machine) Served() map[Fabric]int {
	out := make(map[Fabric]int, len(m.served))
	for k, v := range m.served {
		out[k] = v
	}
	return out
}

// History returns the dispatch log.
func (m *Machine) History() []Dispatch { return append([]Dispatch(nil), m.history...) }

// directWire reports whether d is one of E(n)'s built-in single-step
// permutations: shuffle, unshuffle, or the pairwise exchange.
func (m *Machine) directWire(d perm.Perm) bool {
	if d.Equal(perm.PerfectShuffle(m.n)) || d.Equal(perm.Unshuffle(m.n)) {
		return true
	}
	for i, v := range d {
		if v != i^1 {
			return false
		}
	}
	return true
}

// classify picks the fabric for a request.
func (m *Machine) classify(d perm.Perm) Fabric {
	switch {
	case d.IsIdentity():
		return FabricNone
	case m.directWire(d):
		return FabricDirect
	case perm.InF(d):
		return FabricBenes
	case perm.IsOmega(d):
		return FabricOmega
	default:
		return FabricTwoPass
	}
}

// cost models the time for a fabric to carry one request.
func (m *Machine) cost(f Fabric) float64 {
	stages := float64(2*m.n - 1)
	switch f {
	case FabricNone:
		return 0
	case FabricDirect:
		return m.params.Route
	case FabricBenes, FabricOmega:
		return stages * m.params.Gate
	case FabricTwoPass:
		N := float64(m.size)
		return N*float64(m.n)*m.params.HostOp + 2*stages*m.params.Gate
	}
	panic("machine: unknown fabric")
}

// Apply performs one permutation request: PE(i)'s datum moves to
// PE(d[i]). It returns the dispatch record. Every route is executed for
// real on the chosen fabric and verified.
func (m *Machine) Apply(d perm.Perm) Dispatch {
	if len(d) != m.size {
		panic(fmt.Sprintf("machine: request length %d != N %d", len(d), m.size))
	}
	if err := d.Validate(); err != nil {
		panic("machine: " + err.Error())
	}
	f := m.classify(d)
	var realized perm.Perm
	switch f {
	case FabricNone:
		realized = d
	case FabricDirect:
		realized = d // single-step wire, definitionally exact
	case FabricBenes:
		res := m.net.SelfRoute(d)
		if !res.OK() {
			panic("machine: classifier promised F but routing failed")
		}
		realized = res.Realized
	case FabricOmega:
		res := m.net.OmegaRoute(d)
		if !res.OK() {
			panic("machine: classifier promised Omega but routing failed")
		}
		realized = res.Realized
	case FabricTwoPass:
		r := m.net.TwoPassRoute(d)
		if !r.OK() {
			panic("machine: two-pass routing failed")
		}
		realized = r.Realized
	}
	m.data = perm.Apply(realized, m.data)
	disp := Dispatch{Fabric: f, Cost: m.cost(f)}
	m.served[f]++
	m.time += disp.Cost
	m.history = append(m.history, disp)
	return disp
}

// StreamPipelined carries a batch of INDEPENDENT vectors — each with
// its own F permutation — through the registered B(n) pipeline
// (Section IV): the whole batch costs fill + k-1 cycles instead of k
// full gate delays. It returns the permuted vectors in order and the
// total cycles consumed. Requests outside F are rejected. This is the
// machine's bulk path for streaming workloads (e.g. a frame sequence);
// it does not touch the PEs' resident data.
func (m *Machine) StreamPipelined(ds []perm.Perm, vectors [][]int) ([][]int, int) {
	if len(ds) != len(vectors) {
		panic("machine: stream batch shape mismatch")
	}
	if len(ds) == 0 {
		return nil, 0
	}
	pipe := core.NewPipeline[int](m.net)
	for k, d := range ds {
		if len(d) != m.size || len(vectors[k]) != m.size {
			panic("machine: batch request length mismatch")
		}
		if !perm.InF(d) {
			panic("machine: pipelined batch requires F members")
		}
		pipe.Step(d, vectors[k])
	}
	pipe.Drain()
	out := pipe.Output()
	results := make([][]int, len(out))
	for k, v := range out {
		if len(v.Misrouted) != 0 {
			panic("machine: pipelined vector misrouted")
		}
		results[k] = v.Data
	}
	cycles := out[len(out)-1].Cycle
	m.time += float64(cycles) * m.params.Gate
	m.served[FabricBenes] += len(ds)
	return results, cycles
}
