package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := NewTable("Title", "a", "bbbb", "c")
	tab.Add(1, "x", 3.5)
	tab.Add("long-cell", 22, "z")
	tab.Note("footnote %d", 7)
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Title" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "a") || !strings.Contains(lines[1], "bbbb") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.Contains(out, "long-cell") || !strings.Contains(out, "22") {
		t.Errorf("missing cells:\n%s", out)
	}
	if !strings.Contains(out, "note: footnote 7") {
		t.Errorf("missing note:\n%s", out)
	}
	// Columns align: "bbbb" column starts at the same offset in header
	// and data rows.
	col := strings.Index(lines[1], "bbbb")
	if lines[3][col:col+1] != "x" && lines[4][col:col+2] != "22" {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tab := NewTable("", "h")
	tab.Add("v")
	if strings.HasPrefix(tab.String(), "\n") {
		t.Error("empty title should not emit a blank line")
	}
}

func TestBars(t *testing.T) {
	out := Bars("fig", []string{"a", "bb"}, []float64{2, 4}, 10)
	if !strings.Contains(out, "fig") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines", len(lines))
	}
	aHashes := strings.Count(lines[1], "#")
	bHashes := strings.Count(lines[2], "#")
	if bHashes != 10 || aHashes != 5 {
		t.Errorf("bar scaling wrong: a=%d b=%d\n%s", aHashes, bHashes, out)
	}
}

func TestBarsZeroAndTiny(t *testing.T) {
	out := Bars("", []string{"zero", "tiny", "big"}, []float64{0, 0.01, 100}, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if strings.Count(lines[0], "#") != 0 {
		t.Error("zero value should have no bar")
	}
	if strings.Count(lines[1], "#") != 1 {
		t.Error("tiny nonzero value should show one mark")
	}
}

func TestBarsPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Bars("", []string{"a"}, []float64{1, 2}, 10)
}

func TestCSV(t *testing.T) {
	tab := NewTable("ignored title", "a", "b")
	tab.Add(1, "plain")
	tab.Add(2, `with,comma and "quote"`)
	tab.Note("notes are not emitted")
	got := tab.CSV()
	want := "a,b\n1,plain\n2,\"with,comma and \"\"quote\"\"\"\n"
	if got != want {
		t.Fatalf("CSV:\n%q\nwant:\n%q", got, want)
	}
	if strings.Contains(got, "ignored title") || strings.Contains(got, "notes") {
		t.Fatal("CSV leaked title or notes")
	}
}
