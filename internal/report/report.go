// Package report renders aligned ASCII tables and simple bar series for
// the experiment driver, so every table and figure of the paper
// regenerates as readable terminal output.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid with a header row.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; cells are rendered with fmt.Sprint.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a footnote line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		width[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", width[i]-len(cell)))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range width {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total-2))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		sb.WriteString("  note: ")
		sb.WriteString(n)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (header row first),
// for plotting the figure series outside the terminal. Cells containing
// commas or quotes are quoted per RFC 4180; the title and notes are not
// emitted.
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				sb.WriteByte('"')
				sb.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				sb.WriteByte('"')
			} else {
				sb.WriteString(cell)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// Bars renders a labelled horizontal bar series scaled to maxWidth
// characters — a terminal-friendly stand-in for the paper's figures.
func Bars(title string, labels []string, values []float64, maxWidth int) string {
	if len(labels) != len(values) {
		panic("report: Bars label/value mismatch")
	}
	maxVal := 0.0
	labelWidth := 0
	for i, v := range values {
		if v > maxVal {
			maxVal = v
		}
		if len(labels[i]) > labelWidth {
			labelWidth = len(labels[i])
		}
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	for i, v := range values {
		n := 0
		if maxVal > 0 {
			n = int(v / maxVal * float64(maxWidth))
		}
		if v > 0 && n == 0 {
			n = 1
		}
		fmt.Fprintf(&sb, "%-*s |%s %g\n", labelWidth, labels[i], strings.Repeat("#", n), v)
	}
	return sb.String()
}
