package obs

import (
	"math"
	"testing"
)

func near(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeStage(t *testing.T) {
	cases := []struct {
		name  string
		loads []int64
		want  StageSummary
	}{
		{"empty", nil, StageSummary{}},
		{"idle", []int64{0, 0, 0, 0}, StageSummary{}},
		{"uniform", []int64{5, 5, 5, 5}, StageSummary{Max: 5, Mean: 5, Total: 20, Skew: 1, Gini: 0}},
		{"one-hot", []int64{8, 0, 0, 0}, StageSummary{Max: 8, Mean: 2, Total: 8, Skew: 4, Gini: 0.75}},
		{"mixed", []int64{1, 3}, StageSummary{Max: 3, Mean: 2, Total: 4, Skew: 1.5, Gini: 0.25}},
	}
	for _, c := range cases {
		got := SummarizeStage(c.loads)
		if got.Max != c.want.Max || got.Total != c.want.Total ||
			!near(got.Mean, c.want.Mean) || !near(got.Skew, c.want.Skew) || !near(got.Gini, c.want.Gini) {
			t.Errorf("%s: SummarizeStage(%v) = %+v, want %+v", c.name, c.loads, got, c.want)
		}
	}
}

func TestGini(t *testing.T) {
	if g := Gini(nil); g != 0 {
		t.Fatalf("Gini(nil) = %v, want 0", g)
	}
	if g := Gini([]int64{7, 7, 7}); !near(g, 0) {
		t.Fatalf("uniform Gini = %v, want 0", g)
	}
	// All load on one of n switches: G = (n-1)/n.
	if g := Gini([]int64{0, 0, 0, 12}); !near(g, 0.75) {
		t.Fatalf("one-hot Gini = %v, want 0.75", g)
	}
	// Order must not matter.
	if a, b := Gini([]int64{1, 2, 3, 4}), Gini([]int64{4, 2, 1, 3}); !near(a, b) {
		t.Fatalf("Gini order-sensitive: %v vs %v", a, b)
	}
	// 1,2,3,4: G = 2*(1+4+9+16)/(4*10) - 5/4 = 60/40 - 1.25 = 0.25.
	if g := Gini([]int64{1, 2, 3, 4}); !near(g, 0.25) {
		t.Fatalf("Gini(1..4) = %v, want 0.25", g)
	}
}
