package obs

import (
	"fmt"
	"io"
	"sync"
	"testing"
	"time"
)

// TestHistogramConcurrent hammers one histogram from many goroutines
// while snapshots and Prometheus scrapes are taken concurrently, then
// checks no observation was lost and every mid-flight snapshot was
// internally consistent. Run with -race.
func TestHistogramConcurrent(t *testing.T) {
	const (
		goroutines = 16
		perG       = 5000
	)
	reg := NewRegistry()
	h := reg.Histogram("conc_seconds", "c", nil)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Scrapers run for the duration of the writers: snapshots must see
	// monotone counts and bucket sums equal to the count field.
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastCount int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := h.Snapshot()
				if snap.Count < lastCount {
					t.Errorf("snapshot count went backwards: %d -> %d", lastCount, snap.Count)
					return
				}
				lastCount = snap.Count
				var sum int64
				for _, b := range snap.Buckets {
					sum += b.Count
				}
				if sum != snap.Count {
					t.Errorf("bucket sum %d != count %d", sum, snap.Count)
					return
				}
				if err := reg.WritePrometheus(io.Discard); err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
			}
		}()
	}
	var writers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(g*perG+i) * time.Nanosecond)
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	wg.Wait()

	snap := h.Snapshot()
	if want := int64(goroutines * perG); snap.Count != want {
		t.Fatalf("lost observations: count = %d, want %d", snap.Count, want)
	}
}

// TestTraceRingConcurrent records traces (with spans being added from
// multiple goroutines) while the ring is concurrently observed and
// snapshotted: the ring must stay bounded, every observed trace must
// be counted exactly once, and snapshots must never tear. Run with
// -race.
func TestTraceRingConcurrent(t *testing.T) {
	const (
		goroutines = 8
		perG       = 200
		capacity   = 32
	)
	ring := NewTraceRing(capacity, 0)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := ring.Snapshot()
			if len(snap.Traces) > capacity {
				t.Errorf("ring over capacity: %d > %d", len(snap.Traces), capacity)
				return
			}
			if snap.Kept > snap.Seen {
				t.Errorf("kept %d > seen %d", snap.Kept, snap.Seen)
				return
			}
		}
	}()
	var writers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < perG; i++ {
				tr := NewTrace(fmt.Sprintf("g%d-%d", g, i))
				t0 := time.Now()
				tr.Ref()
				// A second goroutine adds spans and drops the packet
				// reference, racing the request-side release below.
				done := make(chan struct{})
				go func() {
					tr.Span("deliver", t0, "")
					if tr.Release() {
						ring.Observe(tr)
					}
					close(done)
				}()
				tr.Span("admit", t0, "")
				if tr.Release() {
					ring.Observe(tr)
				}
				<-done
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	wg.Wait()

	snap := ring.Snapshot()
	if want := int64(goroutines * perG); snap.Seen != want {
		t.Fatalf("seen = %d, want %d (each trace observed exactly once)", snap.Seen, want)
	}
	if len(snap.Traces) != capacity {
		t.Fatalf("ring should be full at %d, got %d", capacity, len(snap.Traces))
	}
	for _, tr := range snap.Traces {
		if len(tr.Spans) != 2 {
			t.Fatalf("trace %s has %d spans, want 2", tr.Name, len(tr.Spans))
		}
	}
}
