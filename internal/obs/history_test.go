package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRegistrySample(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_requests_total", "requests", nil)
	c.Add(3)
	reg.GaugeFunc("test_depth", "depth", Labels{{"q", "a"}}, func() float64 { return 1.5 })
	h := reg.Histogram("test_latency_ns", "latency", nil)
	h.Observe(100 * time.Nanosecond)
	h.Observe(100 * time.Nanosecond)

	pts := reg.Sample()
	byName := map[string]SeriesPoint{}
	for _, p := range pts {
		byName[p.Name+p.Labels] = p
	}
	if p := byName["test_requests_total"]; p.Kind != "counter" || p.Value != 3 {
		t.Fatalf("counter point = %+v", p)
	}
	if p := byName[`test_depth{q="a"}`]; p.Kind != "gauge" || p.Value != 1.5 {
		t.Fatalf("gauge point = %+v", p)
	}
	p := byName["test_latency_ns"]
	if p.Kind != "histogram" || p.Count != 2 || len(p.Buckets) != histBuckets {
		t.Fatalf("histogram point = %+v", p)
	}

	// Sample order must be deterministic.
	again := reg.Sample()
	for i := range pts {
		if pts[i].Name != again[i].Name || pts[i].Labels != again[i].Labels {
			t.Fatalf("sample order unstable at %d: %s vs %s", i, pts[i].Name, again[i].Name)
		}
	}
}

func TestHistoryWindow(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total", "t", nil)
	h := reg.Histogram("test_ns", "t", nil)

	hist := NewHistory(reg, 8, time.Second)
	t0 := time.Unix(1000, 0)

	c.Add(10)
	h.Observe(100 * time.Nanosecond)
	hist.Record(t0)

	c.Add(40)
	for i := 0; i < 9; i++ {
		h.Observe(1000 * time.Nanosecond)
	}
	hist.Record(t0.Add(10 * time.Second))

	rep := hist.Window(0)
	if rep.Samples != 2 || rep.Seconds != 10 {
		t.Fatalf("report span: %+v", rep)
	}
	var cw, hw *SeriesWindow
	for i := range rep.Series {
		switch rep.Series[i].Name {
		case "test_total":
			cw = &rep.Series[i]
		case "test_ns":
			hw = &rep.Series[i]
		}
	}
	if cw == nil || hw == nil {
		t.Fatalf("missing series in %+v", rep.Series)
	}
	if cw.Delta != 40 || cw.Rate != 4 || cw.First != 10 || cw.Last != 50 {
		t.Fatalf("counter window = %+v", cw)
	}
	// Window holds 9 of the 10 observations; all 9 are ~1000ns, so both
	// windowed percentiles land in the same power-of-two bucket.
	if hw.Count != 9 || hw.P50Ns != hw.P99Ns || hw.P50Ns < 1000 {
		t.Fatalf("histogram window = %+v", hw)
	}

	// A narrow window sees only the newest sample: no deltas.
	if narrow := hist.Window(time.Second); narrow.Samples != 1 || narrow.Series != nil {
		t.Fatalf("narrow window = %+v", narrow)
	}
}

func TestHistoryRingWraps(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total", "t", nil)
	hist := NewHistory(reg, 3, time.Second)
	t0 := time.Unix(2000, 0)
	for i := 0; i < 7; i++ {
		c.Add(1)
		hist.Record(t0.Add(time.Duration(i) * time.Second))
	}
	rep := hist.Window(0)
	if rep.Samples != 3 {
		t.Fatalf("ring should cap at 3 samples, got %d", rep.Samples)
	}
	// Oldest retained sample saw counter=5, newest saw 7.
	if rep.Series[0].Delta != 2 || rep.Seconds != 2 {
		t.Fatalf("wrapped window = %+v (seconds %v)", rep.Series[0], rep.Seconds)
	}
}

func TestHistoryHandler(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total", "t", nil)
	hist := NewHistory(reg, 4, time.Second)
	t0 := time.Unix(3000, 0)
	c.Add(1)
	hist.Record(t0)
	c.Add(2)
	hist.Record(t0.Add(5 * time.Second))

	srv := httptest.NewServer(hist.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/?window=30s")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 || !strings.HasPrefix(resp.Header.Get("Content-Type"), "application/json") {
		t.Fatalf("status %d, type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	var rep WindowReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Samples != 2 || len(rep.Series) != 1 || rep.Series[0].Delta != 2 {
		t.Fatalf("decoded report = %+v", rep)
	}

	bad, err := srv.Client().Get(srv.URL + "/?window=banana")
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != 400 {
		t.Fatalf("bad window status %d, want 400", bad.StatusCode)
	}
}

func TestHistoryStartStop(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_total", "t", nil)
	hist := NewHistory(reg, 4, time.Millisecond)
	hist.Start()
	deadline := time.Now().Add(2 * time.Second)
	for hist.Window(0).Samples < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	hist.Stop()
	if hist.Window(0).Samples < 2 {
		t.Fatal("sampler never recorded")
	}
	hist.Stop() // idempotent

	// Stop without Start must not hang.
	idle := NewHistory(reg, 2, time.Second)
	idle.Stop()
}
