package obs

import "sort"

// StageSummary rolls one stage's per-switch load vector up into the
// occupancy and skew figures the heatmap endpoints serve: how hot the
// hottest switch runs against the stage mean, and how unevenly the
// load spreads (a Gini coefficient, 0 = perfectly balanced, →1 = all
// load on one switch). Per-switch load balance is the determinant of
// packet-mode Benes performance (Huang & Walrand), so these are the
// first numbers a perf investigation should read.
type StageSummary struct {
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	Total int64   `json:"total"`
	// Skew is max/mean — 1.0 when every switch carries the same load, 0
	// when the stage is idle.
	Skew float64 `json:"skew"`
	// Gini is the Gini coefficient of the load distribution.
	Gini float64 `json:"gini"`
}

// SummarizeStage computes a StageSummary over one stage's per-switch
// loads. An empty or all-zero stage summarizes to the zero value.
func SummarizeStage(loads []int64) StageSummary {
	var s StageSummary
	if len(loads) == 0 {
		return s
	}
	for _, v := range loads {
		s.Total += v
		if v > s.Max {
			s.Max = v
		}
	}
	if s.Total == 0 {
		return s
	}
	s.Mean = float64(s.Total) / float64(len(loads))
	s.Skew = float64(s.Max) / s.Mean
	s.Gini = Gini(loads)
	return s
}

// Gini returns the Gini coefficient of a non-negative load vector
// using the sorted-rank formula: G = (2·Σ i·x_i)/(n·Σ x) − (n+1)/n
// with 1-based ranks over ascending x. Zero for empty, all-zero, or
// perfectly uniform input.
func Gini(loads []int64) float64 {
	n := len(loads)
	if n == 0 {
		return 0
	}
	sorted := append([]int64(nil), loads...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total, weighted float64
	for i, v := range sorted {
		total += float64(v)
		weighted += float64(i+1) * float64(v)
	}
	if total == 0 {
		return 0
	}
	return 2*weighted/(float64(n)*total) - float64(n+1)/float64(n)
}
