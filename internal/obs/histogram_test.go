package obs

import (
	"testing"
	"time"
)

// TestHistogram checks bucketing, quantile monotonicity, and the mean.
func TestHistogram(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Nanosecond) // bucket [64,128)
	}
	for i := 0; i < 9; i++ {
		h.Observe(10 * time.Microsecond)
	}
	h.Observe(5 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if s.P50Ns > s.P90Ns || s.P90Ns > s.P99Ns || s.P99Ns > s.P999Ns {
		t.Fatalf("quantiles must be monotone: %d %d %d %d", s.P50Ns, s.P90Ns, s.P99Ns, s.P999Ns)
	}
	if s.P50Ns != 128 {
		t.Fatalf("p50 should be the 100ns bucket's upper bound 128, got %d", s.P50Ns)
	}
	if s.P99Ns < 5_000_000 {
		t.Fatalf("p99 should reach the 5ms observation, got %d", s.P99Ns)
	}
	wantMean := (90*100 + 9*10_000 + 5_000_000) / 100
	if s.MeanNs != int64(wantMean) {
		t.Fatalf("mean = %d, want %d", s.MeanNs, wantMean)
	}
	if len(s.Buckets) != 3 {
		t.Fatalf("want 3 non-empty buckets, got %v", s.Buckets)
	}
}

// TestHistogramEdges covers zero, negative, and overflowing durations.
func TestHistogramEdges(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-time.Second) // clamped to 0
	h.Observe(1 << 62)      // beyond the last bucket bound
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
	if s.Buckets[0].UpToNs != 0 || s.Buckets[0].Count != 2 {
		t.Fatalf("zero bucket wrong: %+v", s.Buckets)
	}
}

// TestHistogramP999 separates p99 from p999: with 2 slow samples in
// 1001, the slow tail is ~0.2% of traffic — past the 99.9th percentile
// but invisible to the 99th.
func TestHistogramP999(t *testing.T) {
	var h Histogram
	for i := 0; i < 999; i++ {
		h.Observe(200 * time.Nanosecond)
	}
	h.Observe(80 * time.Millisecond)
	h.Observe(80 * time.Millisecond)
	s := h.Snapshot()
	if s.P99Ns >= 1_000_000 {
		t.Fatalf("p99 should stay in the fast bucket, got %d", s.P99Ns)
	}
	if s.P999Ns < 80_000_000 {
		t.Fatalf("p999 should reach the 80ms outlier, got %d", s.P999Ns)
	}
}

// TestObserveAllocFree pins the acceptance criterion that the record
// path performs no allocations: it is what lets every pipeline stage
// observe on its hot path.
func TestObserveAllocFree(t *testing.T) {
	var h Histogram
	if n := testing.AllocsPerRun(1000, func() { h.Observe(137 * time.Nanosecond) }); n != 0 {
		t.Fatalf("Observe allocates %.1f objects per call, want 0", n)
	}
	t0 := time.Now()
	if n := testing.AllocsPerRun(1000, func() { h.ObserveSince(t0) }); n != 0 {
		t.Fatalf("ObserveSince allocates %.1f objects per call, want 0", n)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i))
	}
}
