package obs

import (
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestWritePrometheusExact locks the exposition format down to exact
// lines: HELP/TYPE headers, counter and gauge rendering, label
// escaping, and a histogram's cumulative buckets, sum, and count.
func TestWritePrometheusExact(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("demo_requests_total", "Requests accepted.", nil)
	c.Add(3)
	reg.CounterFunc("demo_requests_total", "Requests accepted.", Labels{{"plane", "0"}}, func() int64 { return 41 })
	reg.GaugeFunc("demo_queue_depth", "Queued requests.", nil, func() float64 { return 2.5 })
	reg.GaugeFunc("demo_weird_label", "Escaping.", Labels{{"q", "a\"b\\c\nd"}}, func() float64 { return 1 })
	h := reg.Histogram("demo_stage_seconds", "Stage latency.", Labels{{"stage", "plan"}})
	h.Observe(100 * time.Nanosecond) // bucket exp 7 -> first non-zero at le=2^8-1
	h.Observe(10 * time.Microsecond) // 10_000 ns -> exp 14 -> le=2^14-1
	h.Observe(5 * time.Millisecond)  // 5e6 ns -> exp 23 -> le=2^24-1
	h.Observe(200 * time.Second)     // beyond the largest exported bound -> +Inf only
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	want := strings.Join([]string{
		`# HELP demo_queue_depth Queued requests.`,
		`# TYPE demo_queue_depth gauge`,
		`demo_queue_depth 2.5`,
		`# HELP demo_requests_total Requests accepted.`,
		`# TYPE demo_requests_total counter`,
		`demo_requests_total 3`,
		`demo_requests_total{plane="0"} 41`,
		`# HELP demo_stage_seconds Stage latency.`,
		`# TYPE demo_stage_seconds histogram`,
		`demo_stage_seconds_bucket{stage="plan",le="6.3e-08"} 0`,
		`demo_stage_seconds_bucket{stage="plan",le="2.55e-07"} 1`,
		`demo_stage_seconds_bucket{stage="plan",le="1.023e-06"} 1`,
		`demo_stage_seconds_bucket{stage="plan",le="4.095e-06"} 1`,
		`demo_stage_seconds_bucket{stage="plan",le="1.6383e-05"} 2`,
		`demo_stage_seconds_bucket{stage="plan",le="6.5535e-05"} 2`,
		`demo_stage_seconds_bucket{stage="plan",le="0.000262143"} 2`,
		`demo_stage_seconds_bucket{stage="plan",le="0.001048575"} 2`,
		`demo_stage_seconds_bucket{stage="plan",le="0.004194303"} 2`,
		`demo_stage_seconds_bucket{stage="plan",le="0.016777215"} 3`,
		`demo_stage_seconds_bucket{stage="plan",le="0.067108863"} 3`,
		`demo_stage_seconds_bucket{stage="plan",le="0.268435455"} 3`,
		`demo_stage_seconds_bucket{stage="plan",le="1.073741823"} 3`,
		`demo_stage_seconds_bucket{stage="plan",le="4.294967295"} 3`,
		`demo_stage_seconds_bucket{stage="plan",le="17.179869183"} 3`,
		`demo_stage_seconds_bucket{stage="plan",le="68.719476735"} 3`,
		`demo_stage_seconds_bucket{stage="plan",le="+Inf"} 4`,
		`demo_stage_seconds_sum{stage="plan"} 200.0050101`,
		`demo_stage_seconds_count{stage="plan"} 4`,
		`# HELP demo_weird_label Escaping.`,
		`# TYPE demo_weird_label gauge`,
		`demo_weird_label{q="a\"b\\c\nd"} 1`,
		``,
	}, "\n")
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestHistogramBucketsMonotone feeds a spread of durations and checks
// every exported cumulative bucket sequence is non-decreasing and ends
// at the series count — the property Prometheus requires of histogram
// exposition.
func TestHistogramBucketsMonotone(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("mono_seconds", "m", nil)
	d := time.Nanosecond
	for i := 0; i < 60; i++ {
		h.Observe(d)
		d = d*3 + 1
		if d > time.Minute {
			d = time.Nanosecond
		}
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	prev := int64(-1)
	buckets := 0
	var last int64
	for _, line := range strings.Split(b.String(), "\n") {
		if !strings.HasPrefix(line, "mono_seconds_bucket") {
			continue
		}
		buckets++
		v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("cumulative buckets must be monotone: %d after %d in %q", v, prev, line)
		}
		prev, last = v, v
	}
	if buckets != len(promBucketExps)+1 {
		t.Fatalf("want %d bucket lines (+Inf included), got %d", len(promBucketExps)+1, buckets)
	}
	if last != 60 {
		t.Fatalf("+Inf bucket must equal the count: got %d, want 60", last)
	}
}

// TestHandlerContentType checks the /metrics handler serves the
// version 0.0.4 text exposition content type.
func TestHandlerContentType(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "x", nil).Inc()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if got := rec.Header().Get("Content-Type"); got != ContentType {
		t.Fatalf("Content-Type = %q, want %q", got, ContentType)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1\n") {
		t.Fatalf("body missing counter line:\n%s", rec.Body.String())
	}
}

// TestRegistryMisusePanics locks in the fail-fast registration
// contract: duplicate series and type-conflicting names are wiring
// bugs, caught at startup.
func TestRegistryMisusePanics(t *testing.T) {
	for name, f := range map[string]func(r *Registry){
		"duplicate series": func(r *Registry) {
			r.Counter("a_total", "a", nil)
			r.Counter("a_total", "a", nil)
		},
		"type conflict": func(r *Registry) {
			r.Counter("a_total", "a", nil)
			r.GaugeFunc("a_total", "a", Labels{{"x", "y"}}, func() float64 { return 0 })
		},
		"empty name": func(r *Registry) {
			r.Counter("", "a", nil)
		},
		"nil func": func(r *Registry) {
			r.CounterFunc("b_total", "b", nil, nil)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: want panic", name)
				}
			}()
			f(NewRegistry())
		}()
	}
}

// TestCounterMonotone checks negative deltas are ignored.
func TestCounterMonotone(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	c.Inc()
	if c.Value() != 6 {
		t.Fatalf("counter = %d, want 6", c.Value())
	}
}
