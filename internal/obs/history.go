package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"
)

// SeriesPoint is one series' value at one sampling instant. Counters
// and gauges carry Value; histograms carry the raw bucket counts so a
// later window query can subtract two points and get the latency
// distribution of just that window.
type SeriesPoint struct {
	Name    string
	Labels  string
	Kind    string // "counter", "gauge", "histogram"
	Value   float64
	Count   int64
	SumNs   int64
	Buckets []int64 // len histBuckets, histograms only
}

// Sample reads every registered series at one instant, in the same
// deterministic order WritePrometheus renders (families sorted by
// name, series in registration order).
func (r *Registry) Sample() []SeriesPoint {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	type entry struct {
		f *family
		s []*series
	}
	entries := make([]entry, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		entries = append(entries, entry{f, append([]*series(nil), f.series...)})
	}
	r.mu.Unlock()

	var points []SeriesPoint
	for _, e := range entries {
		for _, s := range e.s {
			p := SeriesPoint{Name: e.f.name, Labels: s.labels, Kind: e.f.typ}
			switch {
			case s.counter != nil:
				p.Value = float64(s.counter())
			case s.gauge != nil:
				p.Value = s.gauge()
			case s.hist != nil:
				p.Buckets = make([]int64, histBuckets)
				for i := range s.hist.buckets {
					c := s.hist.buckets[i].Load()
					p.Buckets[i] = c
					p.Count += c
				}
				p.SumNs = s.hist.sumNs.Load()
			}
			points = append(points, p)
		}
	}
	return points
}

// histSample is one full-registry capture.
type histSample struct {
	at     time.Time
	points []SeriesPoint
}

// History is the bounded snapshot time-series ring: it periodically
// samples a whole Registry so rate-over-time and windowed-percentile
// queries can be answered from process memory, without an external
// Prometheus scraping and storing the series. Memory is bounded by
// capacity × series count; old samples are overwritten in ring order.
type History struct {
	reg      *Registry
	capacity int
	interval time.Duration

	mu   sync.Mutex
	buf  []histSample
	next int

	startOnce, stopOnce sync.Once
	stop                chan struct{}
	done                chan struct{}
}

// NewHistory builds a ring of up to capacity samples taken every
// interval once Start is called (capacity < 2 is raised to 2; interval
// <= 0 defaults to one second).
func NewHistory(reg *Registry, capacity int, interval time.Duration) *History {
	if capacity < 2 {
		capacity = 2
	}
	if interval <= 0 {
		interval = time.Second
	}
	return &History{
		reg:      reg,
		capacity: capacity,
		interval: interval,
		buf:      make([]histSample, 0, capacity),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Interval returns the sampling period.
func (h *History) Interval() time.Duration { return h.interval }

// Record captures one sample now. The background sampler calls this on
// every tick; tests call it directly for deterministic rings.
func (h *History) Record(at time.Time) {
	s := histSample{at: at, points: h.reg.Sample()}
	h.mu.Lock()
	if len(h.buf) < h.capacity {
		h.buf = append(h.buf, s)
	} else {
		h.buf[h.next] = s
		h.next = (h.next + 1) % h.capacity
	}
	h.mu.Unlock()
}

// Start launches the background sampler. Start is idempotent.
func (h *History) Start() {
	h.startOnce.Do(func() {
		go func() {
			defer close(h.done)
			t := time.NewTicker(h.interval)
			defer t.Stop()
			for {
				select {
				case now := <-t.C:
					h.Record(now)
				case <-h.stop:
					return
				}
			}
		}()
	})
}

// Stop halts the sampler and waits for it to exit. Stop is idempotent
// and safe to call even if Start never ran.
func (h *History) Stop() {
	h.stopOnce.Do(func() { close(h.stop) })
	h.startOnce.Do(func() { close(h.done) }) // never started: unblock the wait
	<-h.done
}

// ordered returns the held samples oldest first.
func (h *History) ordered() []histSample {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]histSample, 0, len(h.buf))
	if len(h.buf) < h.capacity {
		out = append(out, h.buf...)
		return out
	}
	for i := 0; i < len(h.buf); i++ {
		out = append(out, h.buf[(h.next+i)%h.capacity])
	}
	return out
}

// SeriesWindow is one series' change across a window: counter deltas
// and per-second rates, gauge movement, and — for histograms — the
// observation count and p50/p99 of just the window's observations
// (bucket-count subtraction between the window's endpoints).
type SeriesWindow struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Kind   string  `json:"kind"`
	First  float64 `json:"first"`
	Last   float64 `json:"last"`
	Delta  float64 `json:"delta"`
	Rate   float64 `json:"rate_per_sec"`
	Count  int64   `json:"count,omitempty"`
	P50Ns  int64   `json:"p50_ns,omitempty"`
	P99Ns  int64   `json:"p99_ns,omitempty"`
}

// WindowReport answers one history query: the real time span covered,
// how many samples fell inside it, and every series' movement.
type WindowReport struct {
	From    time.Time      `json:"from"`
	To      time.Time      `json:"to"`
	Seconds float64        `json:"seconds"`
	Samples int            `json:"samples"`
	Series  []SeriesWindow `json:"series"`
}

// Window reports every series' change over the trailing window d. d <=
// 0 means the whole ring. With fewer than two samples in the window the
// report carries no series (there is no delta to compute).
func (h *History) Window(d time.Duration) WindowReport {
	samples := h.ordered()
	if len(samples) == 0 {
		return WindowReport{}
	}
	newest := samples[len(samples)-1]
	inWin := samples
	if d > 0 {
		cutoff := newest.at.Add(-d)
		for len(inWin) > 1 && inWin[0].at.Before(cutoff) {
			inWin = inWin[1:]
		}
	}
	rep := WindowReport{
		From:    inWin[0].at,
		To:      newest.at,
		Seconds: newest.at.Sub(inWin[0].at).Seconds(),
		Samples: len(inWin),
	}
	if len(inWin) < 2 {
		return rep
	}
	first := inWin[0]
	// Match by name+labels so series registered between the endpoints
	// are skipped rather than mis-paired.
	idx := make(map[[2]string]*SeriesPoint, len(first.points))
	for i := range first.points {
		p := &first.points[i]
		idx[[2]string{p.Name, p.Labels}] = p
	}
	for i := range newest.points {
		last := &newest.points[i]
		f, ok := idx[[2]string{last.Name, last.Labels}]
		if !ok || f.Kind != last.Kind {
			continue
		}
		sw := SeriesWindow{Name: last.Name, Labels: last.Labels, Kind: last.Kind}
		switch last.Kind {
		case "histogram":
			var counts [histBuckets]int64
			for b := 0; b < histBuckets && b < len(last.Buckets) && b < len(f.Buckets); b++ {
				if delta := last.Buckets[b] - f.Buckets[b]; delta > 0 {
					counts[b] = delta
				}
			}
			for _, c := range counts {
				sw.Count += c
			}
			sw.First, sw.Last = float64(f.Count), float64(last.Count)
			sw.Delta = float64(sw.Count)
			if rep.Seconds > 0 {
				sw.Rate = sw.Delta / rep.Seconds
			}
			if sw.Count > 0 {
				sw.P50Ns = quantile(&counts, sw.Count, 0.50)
				sw.P99Ns = quantile(&counts, sw.Count, 0.99)
			}
		default:
			sw.First, sw.Last = f.Value, last.Value
			sw.Delta = last.Value - f.Value
			if rep.Seconds > 0 {
				sw.Rate = sw.Delta / rep.Seconds
			}
		}
		rep.Series = append(rep.Series, sw)
	}
	return rep
}

// Handler serves the history as the /debug/history endpoint:
// ?window=30s selects the trailing window (default: the whole ring).
func (h *History) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := time.Duration(0)
		if raw := r.URL.Query().Get("window"); raw != "" {
			parsed, err := time.ParseDuration(raw)
			if err != nil || parsed < 0 {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusBadRequest)
				_ = json.NewEncoder(w).Encode(map[string]string{"error": "bad window: " + raw})
				return
			}
			d = parsed
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(h.Window(d)); err != nil {
			return // body already streaming; nothing left to report
		}
	})
}
