package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels is an ordered set of label pairs attached to one metric
// series. Order is preserved in the exported text, so callers should
// pick one order per metric family and stick to it.
type Labels [][2]string

// Counter is a registry-owned monotone counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by delta (which must be >= 0; negative
// deltas are ignored to keep the counter monotone).
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// series is one labeled instance of a metric family. Exactly one of
// counter, gauge, hist is set, matching the family's type.
type series struct {
	labels  string // pre-rendered {k="v",...}, "" when unlabeled
	counter func() int64
	gauge   func() float64
	hist    *Histogram
	size    bool // hist holds unitless values, not nanoseconds
}

// family is all series sharing one metric name.
type family struct {
	name, help, typ string
	series          []*series
}

// Registry is a set of named metric families that renders itself in
// Prometheus text exposition format (version 0.0.4). Registration
// methods panic on misuse — duplicate series, a name reused with a
// different type — because metric wiring is program structure, not
// runtime input. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register adds one series under name, creating the family on first
// use and validating type consistency and series uniqueness.
func (r *Registry) register(name, help, typ string, s *series) {
	if name == "" {
		panic("obs: metric name must not be empty")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	for _, have := range f.series {
		if have.labels == s.labels {
			panic(fmt.Sprintf("obs: duplicate series %s%s", name, s.labels))
		}
	}
	f.series = append(f.series, s)
}

// Counter creates, registers, and returns a registry-owned counter.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", &series{labels: renderLabels(labels), counter: c.Value})
	return c
}

// CounterFunc registers a counter whose value is read from fn at
// scrape time — the bridge for counters owned by the instrumented
// package (atomic fields the hot path already maintains). fn must be
// monotone and safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() int64) {
	if fn == nil {
		panic("obs: CounterFunc requires a non-nil function")
	}
	r.register(name, help, "counter", &series{labels: renderLabels(labels), counter: fn})
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	if fn == nil {
		panic("obs: GaugeFunc requires a non-nil function")
	}
	r.register(name, help, "gauge", &series{labels: renderLabels(labels), gauge: fn})
}

// Histogram creates, registers, and returns a new histogram series.
func (r *Registry) Histogram(name, help string, labels Labels) *Histogram {
	h := &Histogram{}
	r.RegisterHistogram(name, help, labels, h)
	return h
}

// RegisterHistogram registers an existing histogram — the bridge for
// histograms embedded in the instrumented packages' metrics structs.
func (r *Registry) RegisterHistogram(name, help string, labels Labels, h *Histogram) {
	if h == nil {
		panic("obs: RegisterHistogram requires a non-nil histogram")
	}
	r.register(name, help, "histogram", &series{labels: renderLabels(labels), hist: h})
}

// RegisterSizeHistogram registers a histogram fed by ObserveValue:
// batch sizes, coalesce counts, and other unitless distributions. The
// exposition's le bounds are the raw power-of-two bucket bounds (up to
// 65535, then +Inf) instead of being scaled to seconds.
func (r *Registry) RegisterSizeHistogram(name, help string, labels Labels, h *Histogram) {
	if h == nil {
		panic("obs: RegisterSizeHistogram requires a non-nil histogram")
	}
	r.register(name, help, "histogram", &series{labels: renderLabels(labels), hist: h, size: true})
}

// renderLabels renders labels as {k="v",...} with Prometheus escaping.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, kv := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[0])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(kv[1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes backslash, double quote, and newline as the
// exposition format requires.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// promBucketExps are the bucket exponents exported to Prometheus: the
// le bound of exponent e is (2^e - 1) nanoseconds, which is the exact
// inclusive upper bound of the histogram's power-of-two bucket e (an
// observation of d nanoseconds lands in bucket bits.Len64(d), so every
// observation in buckets 0..e is <= 2^e - 1). The range spans 64 ns to
// ~69 s in factor-of-four steps; everything longer lands in +Inf.
var promBucketExps = []int{6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30, 32, 34, 36}

// sizeBucketExps are the bucket exponents for size histograms: raw
// power-of-two value bounds from 1 to 65535, factor-of-two steps at the
// small end where batch sizes live.
var sizeBucketExps = []int{1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16}

// WritePrometheus renders every registered family in the Prometheus
// text exposition format: families sorted by name, series in
// registration order, histograms as cumulative le buckets in seconds
// plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	sers := make([][]*series, len(names))
	for i, name := range names {
		f := r.families[name]
		fams[i] = f
		sers[i] = append([]*series(nil), f.series...)
	}
	r.mu.Unlock()

	var b strings.Builder
	for i, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range sers[i] {
			switch {
			case s.counter != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.counter())
			case s.gauge != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatFloat(s.gauge()))
			case s.hist != nil:
				writePromHistogram(&b, f.name, s.labels, s.hist, s.size)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writePromHistogram renders one histogram series: cumulative buckets
// with le in seconds (or raw values for size histograms), then _sum and
// _count in the same unit.
func writePromHistogram(b *strings.Builder, name, labels string, h *Histogram, size bool) {
	// Load the buckets once; the cumulative sums are then monotone by
	// construction even while Observe calls race the scrape.
	var counts [histBuckets]int64
	total := int64(0)
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	exps, scale := promBucketExps, 1e9
	if size {
		exps, scale = sizeBucketExps, 1
	}
	cum := int64(0)
	next := 0
	for _, e := range exps {
		for next <= e && next < histBuckets {
			cum += counts[next]
			next++
		}
		le := float64(int64(1)<<uint(e)-1) / scale
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, bucketLabels(labels, formatFloat(le)), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, bucketLabels(labels, "+Inf"), total)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labels, formatFloat(float64(h.sumNs.Load())/scale))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, total)
}

// bucketLabels splices le="..." into a rendered label set.
func bucketLabels(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// formatFloat renders a float the way Prometheus clients expect:
// shortest representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ContentType is the Prometheus text exposition content type the
// /metrics handler serves.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns an http.Handler serving the registry as a /metrics
// scrape target.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		if err := r.WritePrometheus(w); err != nil {
			// The header is already out; nothing useful remains to report
			// to the scraper beyond the truncated body.
			return
		}
	})
}
