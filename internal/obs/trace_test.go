package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

// TestTraceSpansAndContext covers span recording, context carriage,
// and the nil no-op contract instrumentation points rely on.
func TestTraceSpansAndContext(t *testing.T) {
	tr := NewTrace("POST /collective")
	ctx := With(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace should round-trip through context")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context must yield a nil trace")
	}

	t0 := time.Now()
	tr.Span("round", t0, "round=0 plane=1")
	tr.SpanDur("round", t0, 3*time.Millisecond, "round=1 plane=0")
	s := tr.Snapshot()
	if s.Name != "POST /collective" || s.ID == "" {
		t.Fatalf("snapshot header wrong: %+v", s)
	}
	if len(s.Spans) != 2 {
		t.Fatalf("want 2 spans, got %+v", s.Spans)
	}
	if s.Spans[1].DurNs != 3_000_000 || s.Spans[1].Note != "round=1 plane=0" {
		t.Fatalf("explicit-duration span wrong: %+v", s.Spans[1])
	}

	// The nil trace accepts every call and reports zero values.
	var nilTr *Trace
	nilTr.Span("x", t0, "")
	nilTr.Ref()
	if nilTr.Release() {
		t.Fatal("nil Release must report false")
	}
	if nilTr.ID() != "" || nilTr.Name() != "" || nilTr.Duration() != 0 {
		t.Fatal("nil accessors must return zero values")
	}
}

// TestTraceRefcount checks the last Release wins and that a trace is
// kept in a ring at most once even when observed twice.
func TestTraceRefcount(t *testing.T) {
	tr := NewTrace("POST /send")
	tr.Ref() // one packet in flight
	tr.Ref() // another
	if tr.Release() {
		t.Fatal("first release is not last")
	}
	if tr.Release() {
		t.Fatal("second release is not last")
	}
	if !tr.Release() {
		t.Fatal("third release must be last")
	}
	ring := NewTraceRing(4, 0)
	ring.Observe(tr)
	ring.Observe(tr) // double delivery must not duplicate
	if got := ring.Len(); got != 1 {
		t.Fatalf("ring holds %d traces, want 1", got)
	}
	snap := ring.Snapshot()
	if snap.Seen != 1 || snap.Kept != 1 {
		t.Fatalf("seen/kept = %d/%d, want 1/1", snap.Seen, snap.Kept)
	}
}

// TestTraceRingThresholdAndOrder checks the slow filter and the
// newest-first bounded eviction order.
func TestTraceRingThresholdAndOrder(t *testing.T) {
	ring := NewTraceRing(2, time.Hour)
	fast := NewTrace("fast")
	ring.Observe(fast)
	if ring.Len() != 0 {
		t.Fatal("fast trace must be filtered by the slow threshold")
	}

	ring = NewTraceRing(2, 0)
	names := []string{"a", "b", "c"}
	for _, n := range names {
		ring.Observe(NewTrace(n))
	}
	snap := ring.Snapshot()
	if len(snap.Traces) != 2 {
		t.Fatalf("ring must stay bounded at 2, got %d", len(snap.Traces))
	}
	if snap.Traces[0].Name != "c" || snap.Traces[1].Name != "b" {
		t.Fatalf("want newest-first [c b], got [%s %s]", snap.Traces[0].Name, snap.Traces[1].Name)
	}
	if snap.Seen != 3 || snap.Kept != 3 {
		t.Fatalf("seen/kept = %d/%d, want 3/3", snap.Seen, snap.Kept)
	}
}

// TestTraceSpanCap checks span recording stays bounded and counts the
// overflow instead of growing without limit.
func TestTraceSpanCap(t *testing.T) {
	tr := NewTrace("big")
	t0 := time.Now()
	for i := 0; i < maxSpans+10; i++ {
		tr.Span("s", t0, "")
	}
	s := tr.Snapshot()
	if len(s.Spans) != maxSpans {
		t.Fatalf("spans must cap at %d, got %d", maxSpans, len(s.Spans))
	}
	if s.DroppedSpans != 10 {
		t.Fatalf("dropped = %d, want 10", s.DroppedSpans)
	}
}

// TestTraceRingHandler checks /debug/traces serves the ring as JSON.
func TestTraceRingHandler(t *testing.T) {
	ring := NewTraceRing(4, 0)
	tr := NewTrace("GET /x")
	tr.Span("stage", time.Now(), "n")
	ring.Observe(tr)
	rec := httptest.NewRecorder()
	ring.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var snap RingSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("handler body is not JSON: %v\n%s", err, rec.Body.String())
	}
	if len(snap.Traces) != 1 || snap.Traces[0].Name != "GET /x" || len(snap.Traces[0].Spans) != 1 {
		t.Fatalf("unexpected ring JSON: %+v", snap)
	}
}
