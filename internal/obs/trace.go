package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one recorded stage of a trace: what happened, when it
// started relative to the trace start, and how long it took.
type Span struct {
	Stage   string `json:"stage"`
	StartNs int64  `json:"start_ns"` // offset from the trace start
	DurNs   int64  `json:"dur_ns"`
	Note    string `json:"note,omitempty"`
}

// maxSpans bounds a single trace's span list; a collective at N=4096
// records one span per round and still fits. Extra spans are counted,
// not stored.
const maxSpans = 8192

// traceSeq numbers traces within the process; the ID combines it with
// the trace's start time so IDs are unique across restarts too.
var traceSeq atomic.Uint64

// Trace reconstructs one request's journey through the pipeline. A
// trace is created at the request boundary, carried by context, and
// annotated with spans by each stage it passes through. All methods
// are safe for concurrent use and are no-ops on a nil *Trace, so
// instrumentation points pay only a nil check for untraced requests.
//
// A trace is reference-counted: it starts with one reference (the
// request handler) and gains one per asynchronous continuation — e.g.
// each packet a /send request admits into the fabric. Whoever drops
// the last reference (Release returning true) owns delivering the
// trace to a TraceRing.
type Trace struct {
	id    uint64
	name  string
	start time.Time
	refs  atomic.Int64
	obsd  atomic.Bool // already delivered to a ring

	mu      sync.Mutex
	spans   []Span
	dropped int
	endNs   int64 // total duration, 0 until finished
}

// NewTrace starts a trace named after the request it follows, holding
// one reference.
func NewTrace(name string) *Trace {
	t := &Trace{id: traceSeq.Add(1), name: name, start: time.Now()}
	t.refs.Store(1)
	return t
}

// ID returns the trace identifier, unique within the process run.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return fmt.Sprintf("%x-%04x", t.start.UnixNano(), t.id)
}

// Name returns the trace's request name ("" on nil).
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Start returns the trace's start time (zero on nil).
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// Span records one completed stage that began at start and ends now.
func (t *Trace) Span(stage string, start time.Time, note string) {
	if t == nil {
		return
	}
	t.SpanDur(stage, start, time.Since(start), note)
}

// SpanDur records one completed stage with an explicit duration — for
// stages whose end was captured before the recording point.
func (t *Trace) SpanDur(stage string, start time.Time, d time.Duration, note string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.spans) >= maxSpans {
		t.dropped++
	} else {
		t.spans = append(t.spans, Span{
			Stage:   stage,
			StartNs: start.Sub(t.start).Nanoseconds(),
			DurNs:   d.Nanoseconds(),
			Note:    note,
		})
	}
	t.mu.Unlock()
}

// Ref adds one reference for an asynchronous continuation of the
// request (a packet in flight, a background round).
func (t *Trace) Ref() {
	if t == nil {
		return
	}
	t.refs.Add(1)
}

// Release drops one reference and reports whether it was the last —
// the signal that the holder should hand the trace to a TraceRing.
// Release on a nil trace reports false.
func (t *Trace) Release() bool {
	if t == nil {
		return false
	}
	return t.refs.Add(-1) == 0
}

// finish pins the trace's total duration the first time it is called.
func (t *Trace) finish() {
	t.mu.Lock()
	if t.endNs == 0 {
		t.endNs = time.Since(t.start).Nanoseconds()
	}
	t.mu.Unlock()
}

// Duration returns the trace's total duration: the pinned end-to-end
// time once finished, the running age otherwise.
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	ns := t.endNs
	t.mu.Unlock()
	if ns == 0 {
		return time.Since(t.start)
	}
	return time.Duration(ns)
}

// TraceSnapshot is the JSON view of a finished trace.
type TraceSnapshot struct {
	ID           string `json:"id"`
	Name         string `json:"name"`
	Start        string `json:"start"` // RFC3339Nano
	DurNs        int64  `json:"dur_ns"`
	Spans        []Span `json:"spans"`
	DroppedSpans int    `json:"dropped_spans,omitempty"`
}

// Snapshot copies the trace's current state.
func (t *Trace) Snapshot() TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	t.mu.Lock()
	spans := append([]Span(nil), t.spans...)
	dropped := t.dropped
	endNs := t.endNs
	t.mu.Unlock()
	if endNs == 0 {
		endNs = time.Since(t.start).Nanoseconds()
	}
	return TraceSnapshot{
		ID:           t.ID(),
		Name:         t.name,
		Start:        t.start.Format(time.RFC3339Nano),
		DurNs:        endNs,
		Spans:        spans,
		DroppedSpans: dropped,
	}
}

// ctxKey keys the trace in a context.
type ctxKey struct{}

// With returns ctx carrying tr.
func With(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, tr)
}

// FromContext returns the trace carried by ctx, or nil — and every
// Trace method accepts nil, so callers never need to check.
func FromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	return tr
}

// TraceRing keeps the most recent traces slower than a threshold in a
// bounded ring, for /debug/traces. All methods are safe for concurrent
// use.
type TraceRing struct {
	slow time.Duration
	mu   sync.Mutex
	buf  []*Trace
	next int
	seen atomic.Int64
	kept atomic.Int64
}

// NewTraceRing returns a ring holding up to capacity traces whose
// total duration is at least slow. slow <= 0 keeps every observed
// trace (useful in tests and low-traffic demos).
func NewTraceRing(capacity int, slow time.Duration) *TraceRing {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceRing{slow: slow, buf: make([]*Trace, 0, capacity)}
}

// Observe finishes tr (pinning its end-to-end duration) and keeps it
// if it qualifies as slow. Each trace is kept at most once; later
// Observe calls for the same trace are no-ops, so refcount races at
// the request boundary cannot duplicate entries. Nil traces are
// ignored.
func (r *TraceRing) Observe(tr *Trace) {
	if tr == nil {
		return
	}
	tr.finish()
	if !tr.obsd.CompareAndSwap(false, true) {
		return
	}
	r.seen.Add(1)
	if tr.Duration() < r.slow {
		return
	}
	r.kept.Add(1)
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, tr)
	} else {
		r.buf[r.next] = tr
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.mu.Unlock()
}

// Len returns the number of traces currently held.
func (r *TraceRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// RingSnapshot is the JSON view of a TraceRing: totals plus the held
// traces, newest first.
type RingSnapshot struct {
	Seen   int64           `json:"seen"`
	Kept   int64           `json:"kept"`
	SlowNs int64           `json:"slow_threshold_ns"`
	Traces []TraceSnapshot `json:"traces"`
}

// Snapshot copies the ring's contents, newest first.
func (r *TraceRing) Snapshot() RingSnapshot {
	r.mu.Lock()
	held := make([]*Trace, 0, len(r.buf))
	// buf[next-1] is the most recently overwritten slot once the ring
	// has wrapped; before wrapping, the newest is the last appended.
	for i := 0; i < len(r.buf); i++ {
		idx := (r.next - 1 - i + len(r.buf)) % len(r.buf)
		held = append(held, r.buf[idx])
	}
	r.mu.Unlock()
	s := RingSnapshot{
		Seen:   r.seen.Load(),
		Kept:   r.kept.Load(),
		SlowNs: r.slow.Nanoseconds(),
		Traces: make([]TraceSnapshot, len(held)),
	}
	for i, tr := range held {
		s.Traces[i] = tr.Snapshot()
	}
	return s
}

// Handler returns an http.Handler serving the ring as JSON — the
// /debug/traces endpoint.
func (r *TraceRing) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r.Snapshot()); err != nil {
			// Body already streaming; nothing better than truncation.
			return
		}
	})
}
