package obs

import "sync/atomic"

// Gauge is an instantaneous value that moves both ways — queue depths,
// in-flight request counts. The zero value is ready to use and all
// methods are safe for concurrent use. Export one with
// Registry.GaugeFunc over Load.
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by delta (either sign).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Set pins the gauge to v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }
