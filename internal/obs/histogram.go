// Package obs is the repo's zero-dependency observability layer: one
// registry of counters, gauges, and latency histograms shared by the
// engine, fabric, and collective layers, exported in Prometheus text
// format; plus lightweight trace spans with context-propagated trace
// IDs and a bounded ring of recent slow traces.
//
// The paper's claim is a delay budget — O(log N) setup plus O(log N)
// transmission — and the point of this package is to make both halves
// measurable in the running system instead of inferred from one-shot
// benchmarks: every pipeline stage (plan-cache lookup, setup, payload
// application, VOQ wait, matching extraction, plane transit, output
// verification, collective rounds) records into a Histogram, and a
// single request's journey through those stages can be reconstructed
// from its trace.
//
// Everything here is allocation-free on the record path: Histogram
// observation is three atomic adds, and trace methods are no-ops on a
// nil *Trace so untraced requests pay only a nil check.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two latency buckets. Bucket i
// counts observations with bits.Len64(ns) == i, i.e. durations in
// [2^(i-1), 2^i) nanoseconds; the last bucket absorbs everything longer
// (> ~9 minutes).
const histBuckets = 40

// Histogram is a fixed-allocation, lock-free latency histogram with
// power-of-two nanosecond buckets. The zero value is ready to use and
// all methods are safe for concurrent use.
type Histogram struct {
	count   atomic.Int64
	sumNs   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one duration. It performs no allocations.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	idx := bits.Len64(uint64(ns))
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	h.count.Add(1)
	h.sumNs.Add(ns)
	h.buckets[idx].Add(1)
}

// ObserveSince records the time elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0)) }

// ObserveValue records one unitless value — a batch size, a coalesce
// count — into the same power-of-two buckets the latency path uses. A
// histogram holds durations or values, never both; on a value
// histogram the snapshot's *Ns fields read as raw values. Register
// value histograms with Registry.RegisterSizeHistogram so the
// exposition's le bounds stay unitless instead of being scaled to
// seconds.
func (h *Histogram) ObserveValue(v int64) {
	if v < 0 {
		v = 0
	}
	idx := bits.Len64(uint64(v))
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	h.count.Add(1)
	h.sumNs.Add(v)
	h.buckets[idx].Add(1)
}

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 { return h.count.Load() }

// BucketCount is one non-empty histogram bucket: Count observations at
// or below UpToNs nanoseconds (and above the previous bucket's bound).
type BucketCount struct {
	UpToNs int64 `json:"up_to_ns"`
	Count  int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time, JSON-friendly view of a
// Histogram. Quantiles are upper bounds of the containing bucket, so
// they are conservative to within a factor of two.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	MeanNs  int64         `json:"mean_ns"`
	P50Ns   int64         `json:"p50_ns"`
	P90Ns   int64         `json:"p90_ns"`
	P99Ns   int64         `json:"p99_ns"`
	P999Ns  int64         `json:"p999_ns"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot captures the histogram's current state. Concurrent Observe
// calls may straddle the capture; each bucket is read atomically.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var counts [histBuckets]int64
	total := int64(0)
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := HistogramSnapshot{Count: total}
	if total == 0 {
		return s
	}
	s.MeanNs = h.sumNs.Load() / total
	s.P50Ns = quantile(&counts, total, 0.50)
	s.P90Ns = quantile(&counts, total, 0.90)
	s.P99Ns = quantile(&counts, total, 0.99)
	s.P999Ns = quantile(&counts, total, 0.999)
	for i, c := range counts {
		if c > 0 {
			s.Buckets = append(s.Buckets, BucketCount{UpToNs: bucketUpper(i), Count: c})
		}
	}
	return s
}

// bucketUpper returns the exclusive upper bound (in ns) of bucket i.
func bucketUpper(i int) int64 {
	if i == 0 {
		return 0 // bucket 0 holds only zero-duration observations
	}
	return 1 << uint(i)
}

// quantile returns the upper bound of the bucket containing the q-th
// quantile observation.
func quantile(counts *[histBuckets]int64, total int64, q float64) int64 {
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	cum := int64(0)
	for i, c := range counts {
		cum += c
		if cum > rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(histBuckets - 1)
}
