package core

import (
	"math/rand"
	"reflect"
	"testing"
)

// Every four-state forward table must agree with the backward FeedLine
// walk: the value delivered on output y is the value that entered on
// input FeedLine(y).
func TestMcastStateApplyFeedLineConsistent(t *testing.T) {
	for _, st := range []McastState{McStraight, McCross, McBcastUpper, McBcastLower} {
		in := [2]int{10, 11}
		var out [2]int
		out[0], out[1] = st.Apply(in[0], in[1])
		for y := 0; y < 2; y++ {
			if got := in[st.FeedLine(y)&1]; got != out[y] {
				t.Fatalf("%v: output %d carries %d but FeedLine says input %d (%d)",
					st, y, out[y], st.FeedLine(y), got)
			}
		}
	}
}

// With a binary setting embedded via States.Mcast, McastRoute must
// deliver exactly the permutation ExternalRoute realizes, and WalkBack
// must invert it.
func TestMcastRouteMatchesBinaryRouting(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 1; n <= 5; n++ {
		net := New(n)
		for trial := 0; trial < 20; trial++ {
			d := rng.Perm(net.N())
			st := net.Setup(d)
			res := net.ExternalRoute(d, st)
			if !res.OK() {
				t.Fatalf("n=%d: external route failed for %v", n, d)
			}
			tags := make([]int, net.N())
			for i := range tags {
				tags[i] = i
			}
			delivered, trace := net.McastRoute(tags, st.Mcast())
			for i := 0; i < net.N(); i++ {
				if delivered[d[i]] != i {
					t.Fatalf("n=%d d=%v: output %d got %d, want %d", n, d, d[i], delivered[d[i]], i)
				}
				if got := net.WalkBack(st, d[i]); got != i {
					t.Fatalf("n=%d d=%v: WalkBack(%d) = %d, want %d", n, d, d[i], got, i)
				}
			}
			if len(trace) != net.Stages()+1 {
				t.Fatalf("trace has %d rows, want %d", len(trace), net.Stages()+1)
			}
		}
	}
}

// A single switch (n=1) in each broadcast state must replicate the
// chosen input, and MulticastRoute must flag the displaced source.
func TestMulticastRouteBroadcastStates(t *testing.T) {
	net := New(1)
	st := net.NewMcastStates()

	st[0][0] = McBcastUpper
	res := net.MulticastRoute([]int{0, 0}, st)
	if !res.OK() || !reflect.DeepEqual(res.Delivered, []int{0, 0}) {
		t.Fatalf("bcast-upper: delivered %v misrouted %v", res.Delivered, res.Misrouted)
	}

	st[0][0] = McBcastLower
	res = net.MulticastRoute([]int{1, 1}, st)
	if !res.OK() || !reflect.DeepEqual(res.Delivered, []int{1, 1}) {
		t.Fatalf("bcast-lower: delivered %v misrouted %v", res.Delivered, res.Misrouted)
	}

	// Requesting {0,1} but broadcasting 0 must misroute both: source 0
	// lands on an output that wanted 1, and source 1 arrives nowhere.
	st[0][0] = McBcastUpper
	res = net.MulticastRoute([]int{0, 1}, st)
	if res.OK() || !reflect.DeepEqual(res.Misrouted, []int{0, 1}) {
		t.Fatalf("displacement: delivered %v misrouted %v", res.Delivered, res.Misrouted)
	}
}

func TestCheckMulticast(t *testing.T) {
	cases := []struct {
		req, got, want []int
	}{
		{[]int{0, 0, 2, 3}, []int{0, 0, 2, 3}, nil},
		{[]int{-1, -1, -1, -1}, []int{3, 1, 0, 2}, nil},
		{[]int{0, 0, -1, 3}, []int{0, 0, 1, 3}, nil},
		{[]int{0, 1, 2, 3}, []int{0, 1, 3, 2}, []int{2, 3}},
		{[]int{2, 2, 2, 2}, []int{2, 2, 2, -1}, []int{2}},
		{[]int{1, 1, -1, -1}, []int{1, 0, -1, -1}, []int{0, 1}},
	}
	for _, c := range cases {
		if got := CheckMulticast(c.req, c.got); !reflect.DeepEqual(got, c.want) {
			t.Errorf("CheckMulticast(%v, %v) = %v, want %v", c.req, c.got, got, c.want)
		}
	}
}

func TestLinkInvInvertsLink(t *testing.T) {
	for n := 1; n <= 6; n++ {
		net := New(n)
		for s := 0; s < net.Stages()-1; s++ {
			for y := 0; y < net.N(); y++ {
				if got := net.LinkInv(s, net.Link(s, y)); got != y {
					t.Fatalf("n=%d stage %d: LinkInv(Link(%d)) = %d", n, s, y, got)
				}
			}
		}
	}
}
