package core

import (
	"repro/internal/perm"
)

// TwoPassResult reports an arbitrary permutation performed with two
// tag-driven passes — no externally computed switch states at all.
type TwoPassResult struct {
	F1, F2   perm.Perm // the factors: d = F1 then F2
	Pass1    *Result   // plain self-routing of F1 (inverse-omega ⊆ F)
	Pass2    *Result   // omega-bit routing of F2 (omega class)
	Realized perm.Perm // the composed end-to-end mapping
}

// OK reports whether both passes delivered and the composition equals
// the request.
func (r *TwoPassResult) OK() bool {
	return r.Pass1.OK() && r.Pass2.OK()
}

// TwoPassRoute performs ANY permutation d with two passes of the
// self-routing network: perm.OmegaFactor splits d into an inverse-omega
// factor (in F, so pass one needs only destination tags) and an omega
// factor (pass two asserts the paper's omega bit). This trades one
// extra transmission delay for the complete elimination of the
// O(N log N) setup computation — the strongest use of the paper's two
// self-routing features together.
func (b *Network) TwoPassRoute(d perm.Perm) *TwoPassResult {
	f1, f2 := perm.OmegaFactor(d)
	r := &TwoPassResult{F1: f1, F2: f2}
	r.Pass1 = b.SelfRoute(f1)
	r.Pass2 = b.OmegaRoute(f2)
	r.Realized = r.Pass1.Realized.Then(r.Pass2.Realized)
	return r
}

// TwoPassPermute moves data through both passes.
func TwoPassPermute[T any](b *Network, d perm.Perm, data []T) []T {
	r := b.TwoPassRoute(d)
	if !r.OK() {
		panic("core: TwoPassRoute failed — factorization contract violated")
	}
	return perm.Apply(r.Pass2.Realized, perm.Apply(r.Pass1.Realized, data))
}
