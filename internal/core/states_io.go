package core

import (
	"fmt"
	"strings"
)

// Textual form for switch settings, so setups can be exported from one
// run (cmd/benesroute -dump) and replayed later: one line per stage,
// each switch a '0' (straight) or '1' (crossed).

// String renders the setting, one stage per line.
func (st States) String() string {
	var sb strings.Builder
	for s, stage := range st {
		if s > 0 {
			sb.WriteByte('\n')
		}
		for _, crossed := range stage {
			if crossed {
				sb.WriteByte('1')
			} else {
				sb.WriteByte('0')
			}
		}
	}
	return sb.String()
}

// ParseStates parses the String form, validating the shape against the
// network: Stages() lines of N/2 binary digits.
func (b *Network) ParseStates(s string) (States, error) {
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != b.stages {
		return nil, fmt.Errorf("core: %d stage lines, want %d", len(lines), b.stages)
	}
	st := b.NewStates()
	for i, line := range lines {
		line = strings.TrimSpace(line)
		if len(line) != b.size/2 {
			return nil, fmt.Errorf("core: stage %d has %d switches, want %d", i, len(line), b.size/2)
		}
		for j, c := range line {
			switch c {
			case '0':
			case '1':
				st[i][j] = true
			default:
				return nil, fmt.Errorf("core: stage %d: invalid state character %q", i, c)
			}
		}
	}
	return st, nil
}
