// Package core implements the paper's primary contribution: an N = 2^n
// input/output Benes permutation network whose switches set themselves
// dynamically from destination tags (Nassimi & Sahni, "A Self-Routing
// Benes Network and Parallel Permutation Algorithms").
//
// The network B(n) consists of 2n-1 stages of N/2 two-state switches
// (Fig. 1 of the paper): a stage of switches, two copies of B(n-1), and
// a final stage of switches; B(1) is a single switch. The total switch
// count is N log N - N/2.
//
// Self-routing (Section I): each input carries a destination tag; a
// switch in stage b or stage 2n-2-b (0 <= b <= n-1) sets its state from
// bit b of the destination tag appearing on its *upper* input — state 0
// (straight) if the bit is 0, state 1 (crossed) otherwise. The class of
// permutations realizable this way is F(n) (see package perm).
//
// The same hardware also supports:
//   - the "omega bit" (Section II): forcing stages 0..n-2 straight makes
//     every Omega(n) permutation realizable;
//   - external setup (Section I): disabling the self-setting logic and
//     loading switch states computed by the classic looping algorithm
//     (Waksman) realizes all N! permutations;
//   - pipelined operation (Section IV): with registers between stages a
//     new vector can enter every clock period.
package core

import (
	"fmt"

	"repro/internal/bits"
)

// Network is a wired Benes network B(n). The wiring is immutable after
// construction; switch states live in per-route State values so a single
// Network can be shared by concurrent routings.
type Network struct {
	n      int // log2 of the input count
	size   int // N = 2^n
	stages int // 2n - 1
	// link[s][y] is the input line position at stage s+1 that is driven
	// by output line y of stage s, for s in [0, stages-1). Within a
	// stage, switch i has input lines 2i and 2i+1 (upper, lower) and
	// output lines 2i and 2i+1.
	link [][]int
	// linkInv[s][x] is the stage-s output line that drives stage-(s+1)
	// input line x — the inverse of link, for walking paths backward
	// from an output (the only well-defined direction once broadcast
	// states fan a single input out to both switch outputs).
	linkInv [][]int
}

// New constructs B(n) for n >= 1. The recursive definition of Fig. 1 is
// flattened into explicit inter-stage wiring: the first boundary of each
// recursion level is an unshuffle within the level's block (upper switch
// outputs to the upper subnetwork, lower outputs to the lower), and the
// last boundary is the inverse shuffle.
func New(n int) *Network {
	if n < 1 {
		panic("core: New requires n >= 1")
	}
	size := 1 << uint(n)
	stages := 2*n - 1
	b := &Network{n: n, size: size, stages: stages}
	b.link = make([][]int, stages-1)
	for s := range b.link {
		b.link[s] = make([]int, size)
		for y := range b.link[s] {
			b.link[s][y] = -1
		}
	}
	b.wire(0, n, 0)
	// Every link entry must have been written exactly once.
	for s := range b.link {
		for y, v := range b.link[s] {
			if v < 0 {
				panic(fmt.Sprintf("core: unwired line %d after stage %d", y, s))
			}
		}
	}
	b.linkInv = make([][]int, stages-1)
	for s := range b.linkInv {
		b.linkInv[s] = make([]int, size)
		for y, x := range b.link[s] {
			b.linkInv[s][x] = y
		}
	}
	return b
}

// wire recursively installs the wiring of the B(m) block occupying lines
// [lo, lo+2^m) and stages [s0, s0+2m-2].
func (b *Network) wire(lo, m, s0 int) {
	if m == 1 {
		return
	}
	size := 1 << uint(m)
	// Boundary after the block's first stage: output line lo+x goes to
	// the upper B(m-1) (lines [lo, lo+size/2)) when x is even, to the
	// lower B(m-1) otherwise — a rotate-right of x within m bits.
	for x := 0; x < size; x++ {
		b.link[s0][lo+x] = lo + bits.RotRight(x, m)
	}
	// Boundary before the block's last stage: output j of the upper
	// subnetwork feeds the upper input of final-stage switch j, output j
	// of the lower feeds its lower input — a rotate-left.
	last := s0 + 2*m - 3
	for x := 0; x < size; x++ {
		b.link[last][lo+x] = lo + bits.RotLeft(x, m)
	}
	b.wire(lo, m-1, s0+1)
	b.wire(lo+size/2, m-1, s0+1)
}

// N returns the number of inputs/outputs.
func (b *Network) N() int { return b.size }

// LogN returns n.
func (b *Network) LogN() int { return b.n }

// Stages returns the number of switch stages, 2 log N - 1.
func (b *Network) Stages() int { return b.stages }

// SwitchesPerStage returns N/2.
func (b *Network) SwitchesPerStage() int { return b.size / 2 }

// SwitchCount returns the total number of binary switches,
// N log N - N/2, matching the paper's Section I count.
func (b *Network) SwitchCount() int { return b.size*b.n - b.size/2 }

// GateDelay returns the transmission delay in switch traversals —
// one per stage, i.e. 2 log N - 1.
func (b *Network) GateDelay() int { return b.stages }

// ControlBit returns the destination-tag bit examined by switches in the
// given stage: bit b for stage b or stage 2n-2-b (Fig. 3), i.e.
// min(stage, 2n-2-stage).
func (b *Network) ControlBit(stage int) int {
	if stage < 0 || stage >= b.stages {
		panic("core: stage out of range")
	}
	if mirror := 2*b.n - 2 - stage; mirror < stage {
		return mirror
	}
	return stage
}

// Link returns the stage-(stage+1) input line fed by stage-stage output
// line y — one wiring lookup without Wiring's deep copy, for callers
// walking packet paths on the hot serving path.
func (b *Network) Link(stage, y int) int {
	return b.link[stage][y]
}

// LinkInv returns the stage-stage output line that drives stage-(stage+1)
// input line x — the inverse of Link, for backward path walks.
func (b *Network) LinkInv(stage, x int) int {
	return b.linkInv[stage][x]
}

// Wiring returns a deep copy of the inter-stage link maps:
// Wiring()[s][y] is the stage-s+1 input line fed by stage-s output line
// y. Package netsim uses this to build the goroutine-per-switch engine
// over the identical topology.
func (b *Network) Wiring() [][]int {
	w := make([][]int, len(b.link))
	for s := range b.link {
		w[s] = append([]int(nil), b.link[s]...)
	}
	return w
}

// States is a full switch-setting of the network: States[s][i] is true
// when switch i of stage s is crossed (state 1).
type States [][]bool

// NewStates allocates an all-straight (state 0) setting.
func (b *Network) NewStates() States {
	st := make(States, b.stages)
	for s := range st {
		st[s] = make([]bool, b.size/2)
	}
	return st
}

// Clone deep-copies a setting.
func (st States) Clone() States {
	out := make(States, len(st))
	for s := range st {
		out[s] = append([]bool(nil), st[s]...)
	}
	return out
}

// CountCrossed returns the number of switches in state 1.
func (st States) CountCrossed() int {
	c := 0
	for _, stage := range st {
		for _, crossed := range stage {
			if crossed {
				c++
			}
		}
	}
	return c
}
