package core

// Waksman's optimization of the Benes network, reachable here through
// the fault machinery: in every B(m) block (m >= 2) one first-stage
// switch can be permanently fixed straight — the looping algorithm's
// free choice per loop is spent on the loop through that switch — and
// the network still realizes all N! permutations. The fixed switches
// need no control logic, cutting the programmable-switch count from
// N log N - N/2 to N log N - N + 1, which is Waksman's classic bound.
//
// Fixing switches straight does NOT preserve the self-routing class F
// (tags dictate states and cannot honour the frozen switches), so the
// reduction applies to externally-set operation only; experiment E29
// quantifies both facts.

import "repro/internal/perm"

// WaksmanFixed returns the fault set describing the fixed switches: the
// last first-stage switch of every block at every recursion level,
// stuck straight.
func (b *Network) WaksmanFixed() []Fault {
	var faults []Fault
	var walk func(lo, m, s0 int)
	walk = func(lo, m, s0 int) {
		if m == 1 {
			return
		}
		size := 1 << uint(m)
		// The block's first stage spans switches lo/2 .. lo/2+size/2-1;
		// fix the last one straight.
		faults = append(faults, Fault{Stage: s0, Switch: lo/2 + size/2 - 1, StuckCrossed: false})
		walk(lo, m-1, s0+1)
		walk(lo+size/2, m-1, s0+1)
	}
	walk(0, b.n, 0)
	return faults
}

// WaksmanFixedCount returns the number of switches the optimization
// removes: one per block, N/2 - 1 in total.
func (b *Network) WaksmanFixedCount() int {
	return b.size/2 - 1
}

// WaksmanProgrammableCount returns the programmable switches left:
// N log N - N + 1, Waksman's bound.
func (b *Network) WaksmanProgrammableCount() int {
	return b.SwitchCount() - b.WaksmanFixedCount()
}

// WaksmanSetup computes states realizing d that keep every Waksman
// switch straight. By Waksman's theorem this succeeds for every
// permutation; the constraint-steering looping algorithm finds it
// directly because each level-block carries exactly one constraint, so
// no loop can receive contradictory directions.
func (b *Network) WaksmanSetup(d perm.Perm) (States, bool) {
	return b.SetupAvoiding(d, b.WaksmanFixed())
}
