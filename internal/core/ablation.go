package core

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/perm"
)

// This file supports the design-ablation experiments (E22): the paper's
// self-routing rule has two free-looking choices — *which tag bit* each
// stage examines (Fig. 3's schedule b = 0..n-1..0) and *which input*
// supplies the controlling tag (the upper one). RouteWithSchedule lets
// both vary so the experiments can show the paper's choices are the
// ones that make BPC and inverse-omega routable.

// ControlSource selects which input's tag drives a switch.
type ControlSource int

const (
	// UpperInput is the paper's rule (Fig. 3).
	UpperInput ControlSource = iota
	// LowerInput keeps the paper's polarity but reads the lower input.
	// This is a broken design: at the final stage, whichever of the two
	// tags {2j, 2j+1} sits on the lower input, the resulting state sends
	// it to the wrong output — so NO permutation is realizable. The
	// ablation experiments use it to show the rule is not arbitrary.
	LowerInput
	// LowerInputInverted is the true mirror of the paper's rule: state =
	// complement of the control bit on the lower input. By the top-down
	// mirror symmetry of the network this realizes a class of exactly
	// |F| permutations, but a different set.
	LowerInputInverted
)

// RouteWithSchedule self-routes d using an arbitrary per-stage control
// bit schedule and control source. schedule must have one entry per
// stage, each in [0, n). The paper's network is recovered with
// schedule[s] = min(s, 2n-2-s) and UpperInput.
func (b *Network) RouteWithSchedule(d perm.Perm, schedule []int, src ControlSource) *Result {
	if len(d) != b.size {
		panic("core: RouteWithSchedule: permutation length mismatch")
	}
	if len(schedule) != b.stages {
		panic(fmt.Sprintf("core: RouteWithSchedule: schedule has %d entries, want %d", len(schedule), b.stages))
	}
	for _, cb := range schedule {
		if cb < 0 || cb >= b.n {
			panic("core: RouteWithSchedule: control bit out of range")
		}
	}
	res := &Result{
		Mode:     SelfRouting,
		States:   b.NewStates(),
		Realized: make(perm.Perm, b.size),
		TagTrace: make([][]int, b.stages+1),
	}
	tags := append([]int(nil), d...)
	srcIdx := make([]int, b.size)
	for i := range srcIdx {
		srcIdx[i] = i
	}
	res.TagTrace[0] = append([]int(nil), tags...)
	nextTags := make([]int, b.size)
	nextSrc := make([]int, b.size)
	for s := 0; s < b.stages; s++ {
		cb := schedule[s]
		for i := 0; i < b.size/2; i++ {
			var crossed bool
			switch src {
			case UpperInput:
				crossed = bits.Bit(tags[2*i], cb) == 1
			case LowerInput:
				crossed = bits.Bit(tags[2*i+1], cb) == 1
			case LowerInputInverted:
				crossed = bits.Bit(tags[2*i+1], cb) == 0
			}
			res.States[s][i] = crossed
			if crossed {
				tags[2*i], tags[2*i+1] = tags[2*i+1], tags[2*i]
				srcIdx[2*i], srcIdx[2*i+1] = srcIdx[2*i+1], srcIdx[2*i]
			}
		}
		if s < b.stages-1 {
			for y := 0; y < b.size; y++ {
				to := b.link[s][y]
				nextTags[to] = tags[y]
				nextSrc[to] = srcIdx[y]
			}
			tags, nextTags = nextTags, tags
			srcIdx, nextSrc = nextSrc, srcIdx
		}
		res.TagTrace[s+1] = append([]int(nil), tags...)
	}
	for out := 0; out < b.size; out++ {
		res.Realized[srcIdx[out]] = out
	}
	for i, dest := range d {
		if res.Realized[i] != dest {
			res.Misrouted = append(res.Misrouted, i)
		}
	}
	return res
}

// PaperSchedule returns Fig. 3's control-bit schedule:
// min(s, 2n-2-s) per stage.
func (b *Network) PaperSchedule() []int {
	sch := make([]int, b.stages)
	for s := range sch {
		sch[s] = b.ControlBit(s)
	}
	return sch
}

// ReversedSchedule returns the MSB-first mirror of the paper's
// schedule: n-1-min(s, 2n-2-s). Used by the ablation experiments.
func (b *Network) ReversedSchedule() []int {
	sch := make([]int, b.stages)
	for s := range sch {
		sch[s] = b.n - 1 - b.ControlBit(s)
	}
	return sch
}

// ConstantSchedule returns a schedule that examines the same bit at
// every stage — a deliberately broken design for the ablation.
func (b *Network) ConstantSchedule(bit int) []int {
	sch := make([]int, b.stages)
	for s := range sch {
		sch[s] = bit
	}
	return sch
}
