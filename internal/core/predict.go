package core

import (
	"fmt"

	"repro/internal/perm"
)

// CheckFault validates f's coordinates against b's geometry, returning
// an error instead of the panic the routing paths reserve for program
// bugs — the form runtime fault injection (operator input) needs.
func (b *Network) CheckFault(f Fault) error {
	if f.Stage < 0 || f.Stage >= b.stages {
		return fmt.Errorf("core: fault stage %d out of range [0,%d)", f.Stage, b.stages)
	}
	if f.Switch < 0 || f.Switch >= b.size/2 {
		return fmt.Errorf("core: fault switch %d out of range [0,%d)", f.Switch, b.size/2)
	}
	return nil
}

// EnumerateFaults returns every single stuck-switch fault of b: both
// stuck states for each of the SwitchCount() switches — the candidate
// space a single-fault diagnosis must discriminate.
func (b *Network) EnumerateFaults() []Fault {
	out := make([]Fault, 0, 2*b.stages*(b.size/2))
	for s := 0; s < b.stages; s++ {
		for i := 0; i < b.size/2; i++ {
			out = append(out, Fault{Stage: s, Switch: i, StuckCrossed: false})
			out = append(out, Fault{Stage: s, Switch: i, StuckCrossed: true})
		}
	}
	return out
}

// FaultRouter predicts realized permutations of faulty self-routing
// passes without the tracing and per-call allocation of
// RouteWithFaults. One router amortizes its scratch across calls, so a
// diagnosis sweep over thousands of fault candidates stays
// allocation-free; it is not safe for concurrent use — clone one per
// goroutine with NewFaultRouter.
type FaultRouter struct {
	net  *Network
	tags []int
	src  []int
	next []int // shared bounce buffer for the inter-stage rewire
	nsrc []int
}

// NewFaultRouter returns a router with scratch sized for b.
func (b *Network) NewFaultRouter() *FaultRouter {
	return &FaultRouter{
		net:  b,
		tags: make([]int, b.size),
		src:  make([]int, b.size),
		next: make([]int, b.size),
		nsrc: make([]int, b.size),
	}
}

// Realized self-routes d with the listed switches frozen in their stuck
// states and writes the realized permutation into dst (allocated when
// nil): dst[i] is the output that input i's tag actually reached. It is
// the prediction half of external fault diagnosis — identical switch
// logic to RouteWithFaults, none of its reporting. Fault coordinates
// must be in range (see CheckFault); len(faults) is expected to be tiny
// (diagnosis hypotheses hold one or two), and the fault check is a
// linear scan per switch.
func (fr *FaultRouter) Realized(d perm.Perm, faults []Fault, dst perm.Perm) perm.Perm {
	b := fr.net
	if len(d) != b.size {
		panic("core: FaultRouter.Realized size mismatch")
	}
	if dst == nil {
		dst = make(perm.Perm, b.size)
	}
	tags, src, next, nsrc := fr.tags, fr.src, fr.next, fr.nsrc
	copy(tags, d)
	for i := range src {
		src[i] = i
	}
	for s := 0; s < b.stages; s++ {
		cb := uint(b.ControlBit(s))
		for i := 0; i < b.size/2; i++ {
			crossed := tags[2*i]>>cb&1 == 1
			for _, f := range faults {
				if f.Stage == s && f.Switch == i {
					crossed = f.StuckCrossed
				}
			}
			if crossed {
				tags[2*i], tags[2*i+1] = tags[2*i+1], tags[2*i]
				src[2*i], src[2*i+1] = src[2*i+1], src[2*i]
			}
		}
		if s < b.stages-1 {
			lk := b.link[s]
			for y := 0; y < b.size; y++ {
				to := lk[y]
				next[to] = tags[y]
				nsrc[to] = src[y]
			}
			tags, next = next, tags
			src, nsrc = nsrc, src
		}
	}
	for out := 0; out < b.size; out++ {
		dst[src[out]] = out
	}
	// The swaps above may have left the persistent scratch aliased the
	// other way round; restore the field identities for the next call.
	fr.tags, fr.src, fr.next, fr.nsrc = tags, src, next, nsrc
	return dst
}
