package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/perm"
)

// Property-based invariants of the network itself, via testing/quick.

func TestQuickRealizedAlwaysBijection(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(7)
		b := New(n)
		res := b.SelfRoute(perm.Random(1<<uint(n), rng))
		return res.Realized.Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSelfRouteDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		b := New(n)
		d := perm.Random(1<<uint(n), rng)
		a := b.SelfRoute(d)
		c := b.SelfRoute(d)
		return a.Realized.Equal(c.Realized) && a.OK() == c.OK()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSetupAlwaysRealizes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(7)
		b := New(n)
		d := perm.Random(1<<uint(n), rng)
		return b.ExternalRoute(d, b.Setup(d)).OK()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickTagTraceConservation(t *testing.T) {
	// At every stage boundary the multiset of tags is exactly 0..N-1 —
	// switches never lose or duplicate a signal.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		N := 1 << uint(n)
		b := New(n)
		res := b.SelfRoute(perm.Random(N, rng))
		for _, tags := range res.TagTrace {
			seen := make([]bool, N)
			for _, tag := range tags {
				if tag < 0 || tag >= N || seen[tag] {
					return false
				}
				seen[tag] = true
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickOmegaModeAgreesWithPredicate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		b := New(n)
		d := perm.Random(1<<uint(n), rng)
		return b.RealizesOmega(d) == perm.IsOmega(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickTwoPassUniversal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(7)
		b := New(n)
		d := perm.Random(1<<uint(n), rng)
		r := b.TwoPassRoute(d)
		return r.OK() && r.Realized.Equal(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCrossedCountMatchesStates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		b := New(n)
		res := b.SelfRoute(perm.Random(1<<uint(n), rng))
		manual := 0
		for _, stage := range res.States {
			for _, crossed := range stage {
				if crossed {
					manual++
				}
			}
		}
		return manual == res.States.CountCrossed()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
