package core

import (
	"math/rand"
	"testing"

	"repro/internal/perm"
)

// TestPaperScheduleIsCanonical: RouteWithSchedule with the paper's
// schedule and upper-input control must reproduce SelfRoute exactly.
func TestPaperScheduleIsCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(161))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(7)
		b := New(n)
		d := perm.Random(1<<uint(n), rng)
		a := b.SelfRoute(d)
		c := b.RouteWithSchedule(d, b.PaperSchedule(), UpperInput)
		if !a.Realized.Equal(c.Realized) {
			t.Fatalf("n=%d: paper schedule diverges from SelfRoute on %v", n, d)
		}
		for s := range a.States {
			for i := range a.States[s] {
				if a.States[s][i] != c.States[s][i] {
					t.Fatalf("n=%d: states diverge at stage %d", n, s)
				}
			}
		}
	}
}

// countRealizable counts how many permutations of N elements a schedule
// variant realizes.
func countRealizable(b *Network, schedule []int, src ControlSource) int {
	count := 0
	perm.ForEach(b.N(), func(p perm.Perm) bool {
		if b.RouteWithSchedule(p, schedule, src).OK() {
			count++
		}
		return true
	})
	return count
}

// TestLowerInputSamePolarityRealizesNothing: reading the lower input
// with the paper's polarity dooms every routing at the final stage —
// the realizable class is empty. A sharp ablation: the rule's pieces
// (which input, which polarity) must match.
func TestLowerInputSamePolarityRealizesNothing(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		b := New(n)
		if got := countRealizable(b, b.PaperSchedule(), LowerInput); got != 0 {
			t.Errorf("n=%d: lower-input same-polarity realized %d permutations, want 0", n, got)
		}
	}
}

// TestLowerInputInvertedIsTrueMirror: complementing the polarity on the
// lower input restores a class of exactly |F| permutations (top-down
// mirror symmetry of the network), but a different set.
func TestLowerInputInvertedIsTrueMirror(t *testing.T) {
	for _, n := range []int{2, 3} {
		b := New(n)
		upper := countRealizable(b, b.PaperSchedule(), UpperInput)
		mirror := countRealizable(b, b.PaperSchedule(), LowerInputInverted)
		if upper != mirror {
			t.Errorf("n=%d: |F|=%d but mirrored class has %d members", n, upper, mirror)
		}
	}
	// At N=4 the two classes happen to coincide as sets (both are the
	// same 20 permutations); from N=8 they are different sets of equal
	// size — e.g. (2,4,3,0,1,5,6,7) is realized by exactly one rule.
	b4 := New(2)
	perm.ForEach(4, func(p perm.Perm) bool {
		u := b4.RouteWithSchedule(p, b4.PaperSchedule(), UpperInput).OK()
		l := b4.RouteWithSchedule(p, b4.PaperSchedule(), LowerInputInverted).OK()
		if u != l {
			t.Errorf("N=4: classes unexpectedly differ on %v", p.Clone())
		}
		return true
	})
	b8 := New(3)
	diff := 0
	perm.ForEach(8, func(p perm.Perm) bool {
		u := b8.RouteWithSchedule(p, b8.PaperSchedule(), UpperInput).OK()
		l := b8.RouteWithSchedule(p, b8.PaperSchedule(), LowerInputInverted).OK()
		if u != l {
			diff++
		}
		return true
	})
	if diff != 6528 {
		t.Errorf("N=8: expected 6528 membership differences between the mirror classes, got %d", diff)
	}
}

// TestReversedScheduleBreaksBPC: with the MSB-first schedule, the
// flagship BPC permutations no longer route — the paper's LSB-first
// order is essential, not cosmetic.
func TestReversedScheduleBreaksBPC(t *testing.T) {
	for _, n := range []int{3, 4, 5, 6} {
		b := New(n)
		rev := b.ReversedSchedule()
		broken := 0
		for _, d := range []perm.Perm{
			perm.PerfectShuffle(n),
			perm.Unshuffle(n),
			perm.CyclicShift(n, 1),
		} {
			if !b.RouteWithSchedule(d, rev, UpperInput).OK() {
				broken++
			}
		}
		if broken == 0 {
			t.Errorf("n=%d: reversed schedule broke nothing — ablation should show damage", n)
		}
	}
}

// TestReversedScheduleClassSmallerOnBPCInvOmega: the reversed schedule
// realizes as many permutations overall (mirror symmetry) but loses the
// classes the paper cares about. Quantify on N=8: count BPC and
// inverse-omega members realized by each schedule.
func TestReversedScheduleClassCoverage(t *testing.T) {
	n := 3
	b := New(n)
	rev := b.ReversedSchedule()
	pap := b.PaperSchedule()
	var papBPC, revBPC, papIOm, revIOm int
	perm.ForEach(8, func(p perm.Perm) bool {
		isBPC := false
		if _, ok := perm.RecognizeBPC(p); ok {
			isBPC = true
		}
		iom := perm.IsInverseOmega(p)
		if isBPC || iom {
			if b.RouteWithSchedule(p, pap, UpperInput).OK() {
				if isBPC {
					papBPC++
				}
				if iom {
					papIOm++
				}
			}
			if b.RouteWithSchedule(p, rev, UpperInput).OK() {
				if isBPC {
					revBPC++
				}
				if iom {
					revIOm++
				}
			}
		}
		return true
	})
	if papBPC != 48 || papIOm != 4096 {
		t.Fatalf("paper schedule must cover all BPC (48) and inverse-omega (4096); got %d, %d", papBPC, papIOm)
	}
	if revIOm >= papIOm {
		t.Errorf("reversed schedule covers %d inverse-omega members, expected fewer than %d", revIOm, papIOm)
	}
	t.Logf("coverage: paper BPC=%d invOmega=%d; reversed BPC=%d invOmega=%d", papBPC, papIOm, revBPC, revIOm)
}

// TestConstantScheduleIsCrippled: examining the same bit everywhere
// cannot even deliver tags to distinct outputs for most permutations;
// its realizable class must be drastically smaller than F.
func TestConstantScheduleIsCrippled(t *testing.T) {
	b := New(3)
	f := countRealizable(b, b.PaperSchedule(), UpperInput)
	c0 := countRealizable(b, b.ConstantSchedule(0), UpperInput)
	if c0*4 > f {
		t.Errorf("constant schedule realizes %d vs F's %d — expected a collapse", c0, f)
	}
}

// TestScheduleValidation.
func TestScheduleValidation(t *testing.T) {
	b := New(3)
	for _, bad := range []func(){
		func() { b.RouteWithSchedule(perm.Identity(8), []int{0, 1}, UpperInput) },
		func() { b.RouteWithSchedule(perm.Identity(8), []int{0, 1, 5, 1, 0}, UpperInput) },
		func() { b.RouteWithSchedule(perm.Identity(4), b.PaperSchedule(), UpperInput) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			bad()
		}()
	}
}
