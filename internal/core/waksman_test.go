package core

import (
	"math/rand"
	"testing"

	"repro/internal/perm"
)

func TestWaksmanCounts(t *testing.T) {
	for n := 1; n <= 10; n++ {
		b := New(n)
		N := 1 << uint(n)
		if got := b.WaksmanFixedCount(); got != N/2-1 {
			t.Errorf("n=%d: fixed count %d, want %d", n, got, N/2-1)
		}
		if got := b.WaksmanProgrammableCount(); got != N*n-N+1 {
			t.Errorf("n=%d: programmable %d, want NlogN-N+1 = %d", n, got, N*n-N+1)
		}
		if len(b.WaksmanFixed()) != b.WaksmanFixedCount() {
			t.Errorf("n=%d: fault list length mismatch", n)
		}
	}
}

func TestWaksmanFixedWellFormed(t *testing.T) {
	b := New(5)
	seen := make(map[faultKey]bool)
	for _, f := range b.WaksmanFixed() {
		if f.StuckCrossed {
			t.Fatal("Waksman switches are fixed straight")
		}
		k := faultKey{f.Stage, f.Switch}
		if seen[k] {
			t.Fatalf("duplicate fixed switch %+v", f)
		}
		seen[k] = true
		if f.Stage < 0 || f.Stage > b.Stages()-2 {
			t.Fatalf("fixed switch in unexpected stage %d", f.Stage)
		}
	}
}

// TestWaksmanTheorem: every permutation is realizable with the fixed
// switches straight — exhaustive at N=4 and N=8 (Waksman's theorem),
// random up to N=2048.
func TestWaksmanTheorem(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		b := New(n)
		fixed := b.WaksmanFixed()
		perm.ForEach(1<<uint(n), func(p perm.Perm) bool {
			st, ok := b.WaksmanSetup(p)
			if !ok {
				t.Fatalf("n=%d: Waksman setup failed on %v", n, p.Clone())
			}
			for _, f := range fixed {
				if st[f.Stage][f.Switch] {
					t.Fatalf("n=%d: fixed switch crossed for %v", n, p.Clone())
				}
			}
			if !b.ExternalRoute(p, st).OK() {
				t.Fatalf("n=%d: Waksman states misroute %v", n, p.Clone())
			}
			return true
		})
	}
	rng := rand.New(rand.NewSource(221))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(10)
		b := New(n)
		p := perm.Random(1<<uint(n), rng)
		st, ok := b.WaksmanSetup(p)
		if !ok || !b.ExternalRoute(p, st).OK() {
			t.Fatalf("n=%d: Waksman setup failed on random permutation", n)
		}
	}
}

// TestWaksmanBreaksSelfRouting: with the Waksman switches frozen, the
// self-routing class shrinks strictly below F — the reduction is an
// external-setup-only optimization.
func TestWaksmanBreaksSelfRouting(t *testing.T) {
	for _, n := range []int{2, 3} {
		b := New(n)
		fixed := b.WaksmanFixed()
		fCount, fixedCount := 0, 0
		perm.ForEach(1<<uint(n), func(p perm.Perm) bool {
			if perm.InF(p) {
				fCount++
				if b.RouteWithFaults(p, fixed).OK() {
					fixedCount++
				}
			}
			return true
		})
		if fixedCount >= fCount {
			t.Errorf("n=%d: freezing Waksman switches did not shrink the self-routing class (%d vs %d)",
				n, fixedCount, fCount)
		}
	}
}
