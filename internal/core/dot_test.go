package core

import (
	"strings"
	"testing"

	"repro/internal/perm"
)

func TestDotWellFormed(t *testing.T) {
	b := New(2)
	res := b.SelfRoute(perm.VectorReversal(2))
	dot := b.Dot(res)
	if !strings.HasPrefix(dot, "digraph benes {") || !strings.HasSuffix(dot, "}\n") {
		t.Fatal("not a digraph")
	}
	// Every switch appears: 3 stages x 2 switches.
	for _, want := range []string{"sw_0_0", "sw_0_1", "sw_1_0", "sw_1_1", "sw_2_0", "sw_2_1"} {
		if !strings.Contains(dot, want) {
			t.Errorf("missing node %s", want)
		}
	}
	// Terminals and connectivity.
	if strings.Count(dot, "in3 ->") != 1 || strings.Count(dot, "-> out3") != 1 {
		t.Error("terminal edges wrong")
	}
	// Vector reversal crosses the first stages: some filled coral nodes.
	if !strings.Contains(dot, "lightcoral") || !strings.Contains(dot, "lightblue") {
		t.Error("state colouring missing")
	}
	// Edge count: N inputs + N outputs + N*(stages-1) internal.
	wantEdges := 4 + 4 + 4*2
	if got := strings.Count(dot, "->"); got != wantEdges {
		t.Errorf("edge count %d, want %d", got, wantEdges)
	}
}

func TestDotWithoutResult(t *testing.T) {
	b := New(3)
	dot := b.Dot(nil)
	if strings.Contains(dot, "lightcoral") {
		t.Error("no-result dot should be uncoloured")
	}
	if !strings.Contains(dot, "bit 2") {
		t.Error("control-bit labels missing")
	}
}
