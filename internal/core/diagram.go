package core

import (
	"fmt"
	"strings"

	"repro/internal/bits"
)

// Diagram renders the network and a routing result as ASCII art in the
// style of the paper's Fig. 4: one column per stage showing each
// switch's state, with the destination tag (in binary) present on every
// line at every stage boundary. It is used by cmd/benesroute and the
// experiment driver.
func (b *Network) Diagram(res *Result) string {
	var sb strings.Builder
	nBits := b.n
	fmt.Fprintf(&sb, "B(%d): N=%d, %d stages x %d switches (control bits: ",
		b.n, b.size, b.stages, b.size/2)
	for s := 0; s < b.stages; s++ {
		if s > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d", b.ControlBit(s))
	}
	sb.WriteString(")\n")
	// One row per line; columns alternate tag | switch-state.
	for y := 0; y < b.size; y++ {
		fmt.Fprintf(&sb, "in%2d ", y)
		for s := 0; s <= b.stages; s++ {
			fmt.Fprintf(&sb, "%s", bits.String(res.TagTrace[s][y], nBits))
			if s < b.stages {
				state := "-" // upper or lower row through a straight switch
				if res.States[s][y/2] {
					state = "x"
				}
				fmt.Fprintf(&sb, " %s ", state)
			}
		}
		fmt.Fprintf(&sb, " out%-2d", y)
		if res.TagTrace[b.stages][y] != y {
			sb.WriteString("  <-- misrouted")
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "mode=%s realized=%v ok=%v\n", res.Mode, res.Realized, res.OK())
	return sb.String()
}
