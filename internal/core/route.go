package core

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/perm"
)

// Mode selects how the switches obtain their states during a routing.
type Mode int

const (
	// SelfRouting is the paper's scheme: every switch sets itself from
	// the control bit of its upper input's destination tag (Fig. 3).
	SelfRouting Mode = iota
	// OmegaForced is the "omega bit" extension of Section II: switches
	// in stages 0..n-2 are forced straight; the last n stages
	// self-route. This realizes every Omega(n) permutation.
	OmegaForced
	// External disables the self-setting logic entirely and routes with
	// caller-supplied switch states (see Setup); this realizes all N!.
	External
)

func (m Mode) String() string {
	switch m {
	case SelfRouting:
		return "self-routing"
	case OmegaForced:
		return "omega-forced"
	case External:
		return "external"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Result reports everything observable about one routing pass.
type Result struct {
	Mode     Mode
	States   States    // the setting used (decided dynamically unless External)
	Realized perm.Perm // Realized[i] = output terminal reached by input i
	// TagTrace[s][y] is the destination tag present on line y at the
	// *input* of stage s; TagTrace[Stages()] holds the network outputs.
	// This is the data printed in the paper's Fig. 4.
	TagTrace [][]int
	// Misrouted lists the inputs i whose tag did not arrive at output
	// D[i]; empty exactly when the permutation was realized.
	Misrouted []int
}

// OK reports whether the routing delivered every input to its
// destination.
func (r *Result) OK() bool { return len(r.Misrouted) == 0 }

// route is the synchronous stage-by-stage evaluator shared by all modes.
// ext is consulted only in External mode.
func (b *Network) route(d perm.Perm, mode Mode, ext States) *Result {
	if len(d) != b.size {
		panic(fmt.Sprintf("core: permutation length %d does not match network size %d", len(d), b.size))
	}
	res := &Result{
		Mode:     mode,
		States:   b.NewStates(),
		Realized: make(perm.Perm, b.size),
		TagTrace: make([][]int, b.stages+1),
	}
	tags := append([]int(nil), d...)
	src := make([]int, b.size)
	for i := range src {
		src[i] = i
	}
	res.TagTrace[0] = append([]int(nil), tags...)

	nextTags := make([]int, b.size)
	nextSrc := make([]int, b.size)
	for s := 0; s < b.stages; s++ {
		cb := b.ControlBit(s)
		for i := 0; i < b.size/2; i++ {
			var crossed bool
			switch mode {
			case SelfRouting:
				crossed = bits.Bit(tags[2*i], cb) == 1
			case OmegaForced:
				if s <= b.n-2 {
					crossed = false
				} else {
					crossed = bits.Bit(tags[2*i], cb) == 1
				}
			case External:
				crossed = ext[s][i]
			}
			res.States[s][i] = crossed
			if crossed {
				tags[2*i], tags[2*i+1] = tags[2*i+1], tags[2*i]
				src[2*i], src[2*i+1] = src[2*i+1], src[2*i]
			}
		}
		if s < b.stages-1 {
			for y := 0; y < b.size; y++ {
				to := b.link[s][y]
				nextTags[to] = tags[y]
				nextSrc[to] = src[y]
			}
			tags, nextTags = nextTags, tags
			src, nextSrc = nextSrc, src
		}
		res.TagTrace[s+1] = append([]int(nil), tags...)
	}
	for out := 0; out < b.size; out++ {
		res.Realized[src[out]] = out
	}
	for i, dest := range d {
		if res.Realized[i] != dest {
			res.Misrouted = append(res.Misrouted, i)
		}
	}
	return res
}

// SelfRoute routes the permutation d with the self-setting switch logic
// and reports the outcome. The routing always completes (switches always
// resolve a state); d was realized iff Result.OK().
func (b *Network) SelfRoute(d perm.Perm) *Result {
	return b.route(d, SelfRouting, nil)
}

// OmegaRoute routes d with the omega bit asserted: stages 0..n-2 forced
// straight, the final n stages self-routing.
func (b *Network) OmegaRoute(d perm.Perm) *Result {
	return b.route(d, OmegaForced, nil)
}

// ExternalRoute routes d with self-setting disabled, using the supplied
// switch states (typically from Setup).
func (b *Network) ExternalRoute(d perm.Perm, st States) *Result {
	if len(st) != b.stages {
		panic("core: external states have wrong stage count")
	}
	for s := range st {
		if len(st[s]) != b.size/2 {
			panic("core: external states have wrong stage width")
		}
	}
	return b.route(d, External, st)
}

// Realizes reports whether the self-routing scheme performs d, i.e.
// whether d is in F(n). Tests confirm this agrees with the recursive
// characterization perm.InF (Theorem 1).
func (b *Network) Realizes(d perm.Perm) bool {
	return b.SelfRoute(d).OK()
}

// RealizesOmega reports whether d is performed with the omega bit set.
func (b *Network) RealizesOmega(d perm.Perm) bool {
	return b.OmegaRoute(d).OK()
}

// Permute physically moves data through the network under self-routing:
// data[i] is delivered to position d[i] of the returned slice. It panics
// if d is not realizable (not in F(n)); use Setup + ExternalRoute for
// arbitrary permutations.
func Permute[T any](b *Network, d perm.Perm, data []T) []T {
	res := b.SelfRoute(d)
	if !res.OK() {
		panic(fmt.Sprintf("core: %v is not self-routable (not in F(%d))", d, b.n))
	}
	return perm.Apply(res.Realized, data)
}
