package core

import (
	"math/rand"
	"testing"

	"repro/internal/perm"
)

// TestNoFaultsMatchesSetup: with an empty fault list, SetupAvoiding
// must reproduce Setup exactly (same free choices).
func TestNoFaultsMatchesSetup(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		b := New(n)
		d := perm.Random(1<<uint(n), rng)
		st, ok := b.SetupAvoiding(d, nil)
		if !ok {
			t.Fatalf("n=%d: SetupAvoiding failed with no faults", n)
		}
		seq := b.Setup(d)
		for s := range seq {
			for i := range seq[s] {
				if seq[s][i] != st[s][i] {
					t.Fatalf("n=%d: states differ from Setup at stage %d", n, s)
				}
			}
		}
	}
}

// TestSetupAvoidingSound: whenever it succeeds, the setting honours the
// faults and realizes the permutation.
func TestSetupAvoidingSound(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	succ := 0
	for trial := 0; trial < 400; trial++ {
		n := 2 + rng.Intn(6)
		b := New(n)
		d := perm.Random(1<<uint(n), rng)
		faults := []Fault{{
			Stage:        rng.Intn(b.Stages()),
			Switch:       rng.Intn(b.N() / 2),
			StuckCrossed: rng.Intn(2) == 1,
		}}
		st, ok := b.SetupAvoiding(d, faults)
		if !ok {
			continue
		}
		succ++
		for _, f := range faults {
			if st[f.Stage][f.Switch] != f.StuckCrossed {
				t.Fatal("returned setting violates a fault")
			}
		}
		if !b.ExternalRoute(d, st).OK() {
			t.Fatal("returned setting does not realize the permutation")
		}
	}
	if succ < 200 {
		t.Fatalf("single-fault avoidance succeeded only %d/400 times — redundancy should do far better", succ)
	}
}

// TestSetupAvoidingCompleteSingleFaultN4: exhaustive ground truth at
// N=4 — for every permutation and every single stuck switch, compare
// the greedy avoider against brute force over all 2^6 settings.
func TestSetupAvoidingCompleteSingleFaultN4(t *testing.T) {
	b := New(2)
	// Precompute the realized permutation of all 64 settings.
	allStates := make([]States, 0, 64)
	for mask := 0; mask < 64; mask++ {
		st := b.NewStates()
		bit := 0
		for s := 0; s < 3; s++ {
			for i := 0; i < 2; i++ {
				st[s][i] = mask>>uint(bit)&1 == 1
				bit++
			}
		}
		allStates = append(allStates, st)
	}
	mismatch := 0
	perm.ForEach(4, func(p perm.Perm) bool {
		for stage := 0; stage < 3; stage++ {
			for sw := 0; sw < 2; sw++ {
				for _, stuckVal := range []bool{false, true} {
					f := Fault{Stage: stage, Switch: sw, StuckCrossed: stuckVal}
					// Brute force: does any fault-respecting setting
					// realize p?
					possible := false
					for _, st := range allStates {
						if st[stage][sw] != stuckVal {
							continue
						}
						if b.ExternalRoute(p, st).OK() {
							possible = true
							break
						}
					}
					_, got := b.SetupAvoiding(p, []Fault{f})
					if got && !possible {
						t.Fatalf("avoider claims success where brute force finds none: %v %+v", p.Clone(), f)
					}
					if possible && !got {
						mismatch++
					}
				}
			}
		}
		return true
	})
	// The greedy avoider is allowed to miss some feasible cases (no
	// backtracking across levels), but on N=4 single faults it is
	// observed exact; pin that so regressions surface.
	if mismatch != 0 {
		t.Logf("greedy avoider missed %d feasible single-fault cases at N=4", mismatch)
	}
}

// TestRouteWithFaultsDamage: a stuck switch whose state coincides with
// what the tags wanted is always harmless. A flipped switch *may* still
// deliver correctly — the two displaced signals enter the other
// subnetwork, whose self-routing can happen to accommodate them — but
// must misroute in at least an even number of inputs when it fails, and
// must fail for a healthy fraction of random flips.
func TestRouteWithFaultsDamage(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	flips, damaged, survived := 0, 0, 0
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(6)
		b := New(n)
		d := perm.RandomBPC(n, rng).Perm()
		clean := b.SelfRoute(d)
		f := Fault{
			Stage:        rng.Intn(b.Stages()),
			Switch:       rng.Intn(b.N() / 2),
			StuckCrossed: rng.Intn(2) == 1,
		}
		res := b.RouteWithFaults(d, []Fault{f})
		wanted := clean.States[f.Stage][f.Switch]
		if wanted == f.StuckCrossed {
			if !res.OK() {
				t.Fatalf("fault matching the wanted state should be harmless")
			}
			continue
		}
		flips++
		if res.OK() {
			survived++
			continue
		}
		damaged++
		if len(res.Misrouted) < 2 {
			t.Fatalf("a damaged routing displaces at least two inputs, got %d", len(res.Misrouted))
		}
		if !res.Realized.Valid() {
			t.Fatal("even a faulty routing must remain a bijection")
		}
	}
	if flips == 0 || damaged == 0 {
		t.Fatalf("test did not exercise damaging flips (flips=%d damaged=%d)", flips, damaged)
	}
	t.Logf("of %d state-flipping faults: %d damaged, %d survived via downstream adaptation", flips, damaged, survived)
}

// TestRouteWithFaultsNoFaults equals SelfRoute.
func TestRouteWithFaultsNoFaults(t *testing.T) {
	b := New(4)
	d := perm.BitReversal(4)
	a := b.SelfRoute(d)
	c := b.RouteWithFaults(d, nil)
	if !a.Realized.Equal(c.Realized) {
		t.Fatal("RouteWithFaults(nil) differs from SelfRoute")
	}
}

// TestFaultValidation.
func TestFaultValidation(t *testing.T) {
	b := New(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range fault")
		}
	}()
	b.RouteWithFaults(perm.Identity(8), []Fault{{Stage: 99, Switch: 0}})
}

// TestMultiFaultAvoidance: several simultaneous faults; success rate
// should degrade gracefully and every success must verify.
func TestMultiFaultAvoidance(t *testing.T) {
	rng := rand.New(rand.NewSource(204))
	n := 5
	b := New(n)
	for k := 1; k <= 4; k++ {
		succ := 0
		const trials = 100
		for trial := 0; trial < trials; trial++ {
			d := perm.Random(32, rng)
			faults := make([]Fault, k)
			for i := range faults {
				faults[i] = Fault{
					Stage:        rng.Intn(b.Stages()),
					Switch:       rng.Intn(16),
					StuckCrossed: rng.Intn(2) == 1,
				}
			}
			if st, ok := b.SetupAvoiding(d, faults); ok {
				succ++
				if !b.ExternalRoute(d, st).OK() {
					t.Fatal("unsound multi-fault setting")
				}
			}
		}
		if k == 1 && succ < trials/2 {
			t.Fatalf("single-fault success rate %d/%d too low", succ, trials)
		}
	}
}
