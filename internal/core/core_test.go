package core

import (
	"math/rand"
	"testing"

	"repro/internal/perm"
)

// TestNetworkCounts checks the Section I structural counts: 2 log N - 1
// stages and N log N - N/2 switches.
func TestNetworkCounts(t *testing.T) {
	for n := 1; n <= 10; n++ {
		b := New(n)
		N := 1 << uint(n)
		if b.N() != N {
			t.Fatalf("n=%d: N=%d", n, b.N())
		}
		if b.Stages() != 2*n-1 {
			t.Errorf("n=%d: stages=%d, want %d", n, b.Stages(), 2*n-1)
		}
		if b.SwitchCount() != N*n-N/2 {
			t.Errorf("n=%d: switches=%d, want %d", n, b.SwitchCount(), N*n-N/2)
		}
		if b.SwitchCount() != b.Stages()*b.SwitchesPerStage() {
			t.Errorf("n=%d: switch count inconsistent with stages", n)
		}
		if b.GateDelay() != 2*n-1 {
			t.Errorf("n=%d: gate delay=%d", n, b.GateDelay())
		}
	}
}

func TestNewPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) should panic")
		}
	}()
	New(0)
}

// TestControlBits checks Fig. 3's rule: stage b and stage 2n-2-b use bit
// b; e.g. for n=3 the stage sequence is 0,1,2,1,0.
func TestControlBits(t *testing.T) {
	b := New(3)
	want := []int{0, 1, 2, 1, 0}
	for s, w := range want {
		if got := b.ControlBit(s); got != w {
			t.Errorf("ControlBit(%d) = %d, want %d", s, got, w)
		}
	}
	b5 := New(5)
	for s := 0; s < b5.Stages(); s++ {
		mirror := b5.Stages() - 1 - s
		if b5.ControlBit(s) != b5.ControlBit(mirror) {
			t.Errorf("control bits not mirror-symmetric at stage %d", s)
		}
	}
}

// TestWiringIsPermutationPerBoundary: every inter-stage link map must be
// a permutation of the lines.
func TestWiringIsPermutationPerBoundary(t *testing.T) {
	for n := 1; n <= 8; n++ {
		b := New(n)
		for s, links := range b.Wiring() {
			if !perm.Perm(links).Valid() {
				t.Fatalf("n=%d: boundary %d is not a permutation", n, s)
			}
		}
	}
}

// TestFig4BitReversal reproduces Fig. 4: bit reversal routes on B(3)
// under self-routing, every input reaching the reversed output.
func TestFig4BitReversal(t *testing.T) {
	b := New(3)
	d := perm.BitReversal(3)
	res := b.SelfRoute(d)
	if !res.OK() {
		t.Fatalf("bit reversal misrouted: %v", res.Misrouted)
	}
	if !res.Realized.Equal(d) {
		t.Fatalf("realized %v, want %v", res.Realized, d)
	}
	// The tag trace must deliver tag y at output y.
	for y, tag := range res.TagTrace[b.Stages()] {
		if tag != y {
			t.Errorf("output %d holds tag %d", y, tag)
		}
	}
}

// TestFig5Reject reproduces Fig. 5: D = (1,3,2,0) is not realized on
// B(2) by self-routing.
func TestFig5Reject(t *testing.T) {
	b := New(2)
	res := b.SelfRoute(perm.Perm{1, 3, 2, 0})
	if res.OK() {
		t.Fatal("(1,3,2,0) should misroute under self-routing")
	}
	if len(res.Misrouted) == 0 {
		t.Fatal("expected misrouted inputs")
	}
}

// TestSelfRoutingMatchesTheorem1 is the central cross-validation: the
// gate-level simulation must realize d exactly when the recursive
// characterization says d is in F(n). Exhaustive for N=4 and N=8,
// randomized up to N=1024.
func TestSelfRoutingMatchesTheorem1(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		b := New(n)
		perm.ForEach(1<<uint(n), func(p perm.Perm) bool {
			if b.Realizes(p) != perm.InF(p) {
				t.Fatalf("n=%d: simulation and Theorem 1 disagree on %v", n, p.Clone())
			}
			return true
		})
	}
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(9)
		b := New(n)
		var p perm.Perm
		switch trial % 3 {
		case 0:
			p = perm.Random(1<<uint(n), rng)
		case 1:
			p = perm.RandomBPC(n, rng).Perm()
		case 2:
			N := 1 << uint(n)
			p = perm.POrderingShift(n, 2*rng.Intn(N/2)+1, rng.Intn(N))
		}
		if b.Realizes(p) != perm.InF(p) {
			t.Fatalf("n=%d: simulation and Theorem 1 disagree on %v", n, p)
		}
	}
}

// TestBPCAllRoute: Theorem 2 end to end — every BPC permutation routes
// on the real network (exhaustive for n <= 4).
func TestBPCAllRoute(t *testing.T) {
	for n := 1; n <= 4; n++ {
		b := New(n)
		perm.ForEachBPC(n, func(a perm.BPC) bool {
			if !b.Realizes(a.Perm()) {
				t.Fatalf("n=%d: BPC %v misroutes", n, a)
			}
			return true
		})
	}
}

// TestTableIRouteLarge routes every Table I permutation on B(10)
// (N=1024).
func TestTableIRouteLarge(t *testing.T) {
	n := 10
	b := New(n)
	for _, c := range []struct {
		name string
		p    perm.Perm
	}{
		{"matrix transpose", perm.MatrixTranspose(n)},
		{"bit reversal", perm.BitReversal(n)},
		{"vector reversal", perm.VectorReversal(n)},
		{"perfect shuffle", perm.PerfectShuffle(n)},
		{"unshuffle", perm.Unshuffle(n)},
		{"shuffled row major", perm.ShuffledRowMajor(n)},
		{"bit shuffle", perm.BitShuffle(n)},
	} {
		if !b.Realizes(c.p) {
			t.Errorf("%s does not route on B(%d)", c.name, n)
		}
	}
}

// TestIdentityAllStraight: the identity permutation must set every
// switch straight.
func TestIdentityAllStraight(t *testing.T) {
	for n := 1; n <= 6; n++ {
		b := New(n)
		res := b.SelfRoute(perm.Identity(1 << uint(n)))
		if !res.OK() {
			t.Fatalf("identity misroutes at n=%d", n)
		}
		if res.States.CountCrossed() != 0 {
			t.Errorf("n=%d: identity crossed %d switches", n, res.States.CountCrossed())
		}
	}
}

// TestVectorReversalCrossedCount: under self-routing, vector reversal
// crosses every switch in the first n stages (the sub-permutation
// entering each subnetwork is again a vector reversal with upper tags
// even) and leaves the last n-1 stages straight, giving exactly
// n*N/2 crossed switches: C(n) = N/2 + 2*C(n-1), C(1) = 1.
func TestVectorReversalCrossedCount(t *testing.T) {
	for n := 1; n <= 6; n++ {
		b := New(n)
		res := b.SelfRoute(perm.VectorReversal(n))
		if !res.OK() {
			t.Fatalf("vector reversal misroutes at n=%d", n)
		}
		N := 1 << uint(n)
		if got, want := res.States.CountCrossed(), n*N/2; got != want {
			t.Errorf("n=%d: vector reversal crossed %d switches, want %d", n, got, want)
		}
	}
}

// TestOmegaForcedRealizesOmega: with the omega bit set, every Omega
// permutation is realized (Section II). Exhaustive at N=4 and N=8.
func TestOmegaForcedRealizesOmega(t *testing.T) {
	for _, n := range []int{2, 3} {
		b := New(n)
		checked, realized := 0, 0
		perm.ForEach(1<<uint(n), func(p perm.Perm) bool {
			if !perm.IsOmega(p) {
				return true
			}
			checked++
			if b.RealizesOmega(p) {
				realized++
			} else {
				t.Errorf("n=%d: omega perm %v not realized with omega bit", n, p.Clone())
			}
			return true
		})
		if checked == 0 {
			t.Fatal("no omega permutations found")
		}
	}
}

// TestOmegaForcedOnlyOmega: conversely, the omega-forced network
// realizes *only* omega permutations (the last n stages are exactly an
// omega network).
func TestOmegaForcedOnlyOmega(t *testing.T) {
	for _, n := range []int{2, 3} {
		b := New(n)
		perm.ForEach(1<<uint(n), func(p perm.Perm) bool {
			if b.RealizesOmega(p) != perm.IsOmega(p) {
				t.Fatalf("n=%d: omega-forced realization disagrees with IsOmega on %v", n, p.Clone())
			}
			return true
		})
	}
}

// TestOmegaBitNeeded exhibits an Omega permutation that self-routing
// alone misroutes but the omega bit rescues.
func TestOmegaBitNeeded(t *testing.T) {
	d := perm.Perm{1, 3, 2, 0} // Fig. 5's witness, which is in Omega(2)
	if !perm.IsOmega(d) {
		t.Fatal("witness must be in Omega(2)")
	}
	b := New(2)
	if b.Realizes(d) {
		t.Fatal("witness should fail plain self-routing")
	}
	if !b.RealizesOmega(d) {
		t.Fatal("witness should route with the omega bit")
	}
}

// TestSetupRealizesEverything: external setup must realize all N!
// permutations — exhaustive at N=4 and N=8, random up to N=2048.
func TestSetupRealizesEverything(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		b := New(n)
		perm.ForEach(1<<uint(n), func(p perm.Perm) bool {
			st := b.Setup(p)
			res := b.ExternalRoute(p, st)
			if !res.OK() {
				t.Fatalf("n=%d: setup failed to realize %v (misrouted %v)", n, p.Clone(), res.Misrouted)
			}
			return true
		})
	}
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(10)
		b := New(n)
		p := perm.Random(1<<uint(n), rng)
		if !b.ExternalRoute(p, b.Setup(p)).OK() {
			t.Fatalf("n=%d: setup failed on random permutation", n)
		}
	}
}

// TestSetupRealizesFig5Witness: the permutation that self-routing cannot
// do is fine with external setup.
func TestSetupRealizesFig5Witness(t *testing.T) {
	b := New(2)
	d := perm.Perm{1, 3, 2, 0}
	if !b.ExternalRoute(d, b.Setup(d)).OK() {
		t.Fatal("external setup must realize (1,3,2,0)")
	}
}

// TestPermute moves data end to end.
func TestPermute(t *testing.T) {
	b := New(3)
	data := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	out := Permute(b, perm.BitReversal(3), data)
	// Input 1 (="b") goes to output 4, etc.
	want := []string{"a", "e", "c", "g", "b", "f", "d", "h"}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("Permute = %v, want %v", out, want)
		}
	}
}

func TestPermutePanicsOnNonF(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Permute should panic on non-F permutation")
		}
	}()
	b := New(2)
	Permute(b, perm.Perm{1, 3, 2, 0}, []int{0, 1, 2, 3})
}

// TestRealizedIsAlwaysPermutation: whatever the tags, the physical
// routing is a bijection from inputs to outputs (switches never
// duplicate or drop signals).
func TestRealizedIsAlwaysPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	b := New(5)
	for trial := 0; trial < 100; trial++ {
		p := perm.Random(32, rng)
		res := b.SelfRoute(p)
		if !res.Realized.Valid() {
			t.Fatalf("realized mapping not a permutation for %v", p)
		}
	}
}

// TestMisroutedConsistent: Misrouted is exactly the set of inputs where
// Realized differs from the request.
func TestMisroutedConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	b := New(4)
	for trial := 0; trial < 100; trial++ {
		p := perm.Random(16, rng)
		res := b.SelfRoute(p)
		want := 0
		for i := range p {
			if res.Realized[i] != p[i] {
				want++
			}
		}
		if len(res.Misrouted) != want {
			t.Fatalf("misrouted count %d, want %d", len(res.Misrouted), want)
		}
	}
}

// TestDiagram sanity-checks the ASCII rendering.
func TestDiagram(t *testing.T) {
	b := New(2)
	good := b.Diagram(b.SelfRoute(perm.Identity(4)))
	if len(good) == 0 || containsStr(good, "misrouted") {
		t.Errorf("identity diagram should have no misroutes:\n%s", good)
	}
	bad := b.Diagram(b.SelfRoute(perm.Perm{1, 3, 2, 0}))
	if !containsStr(bad, "misrouted") {
		t.Errorf("Fig. 5 diagram should flag misroutes:\n%s", bad)
	}
}

func containsStr(haystack, needle string) bool {
	return len(haystack) >= len(needle) && indexStr(haystack, needle) >= 0
}

func indexStr(h, n string) int {
	for i := 0; i+len(n) <= len(h); i++ {
		if h[i:i+len(n)] == n {
			return i
		}
	}
	return -1
}

// TestExternalStatesValidation: malformed state slices must be rejected
// loudly.
func TestExternalStatesValidation(t *testing.T) {
	b := New(3)
	defer func() {
		if recover() == nil {
			t.Fatal("ExternalRoute should panic on wrong stage count")
		}
	}()
	b.ExternalRoute(perm.Identity(8), make(States, 3))
}

// TestStatesClone ensures Clone is deep.
func TestStatesClone(t *testing.T) {
	b := New(2)
	st := b.NewStates()
	cl := st.Clone()
	cl[0][0] = true
	if st[0][0] {
		t.Fatal("Clone is shallow")
	}
	if st.CountCrossed() != 0 || cl.CountCrossed() != 1 {
		t.Fatal("CountCrossed wrong")
	}
}
