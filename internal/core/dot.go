package core

import (
	"fmt"
	"strings"
)

// Dot renders the network topology as a Graphviz digraph: one node per
// switch (labelled stage.switch, coloured by state when a Result is
// supplied), edges following the inter-stage wiring, plus input and
// output terminals. Useful for visually inspecting small networks:
//
//	go run ./cmd/benesroute -n 3 -perm bitreversal -dot | dot -Tsvg ...
func (b *Network) Dot(res *Result) string {
	var sb strings.Builder
	sb.WriteString("digraph benes {\n  rankdir=LR;\n  node [shape=box, fontname=monospace];\n")
	// Terminals.
	for i := 0; i < b.size; i++ {
		fmt.Fprintf(&sb, "  in%d [shape=plaintext, label=\"in %d\"];\n", i, i)
		fmt.Fprintf(&sb, "  out%d [shape=plaintext, label=\"out %d\"];\n", i, i)
	}
	// Switches.
	for s := 0; s < b.stages; s++ {
		for i := 0; i < b.size/2; i++ {
			label := fmt.Sprintf("s%d.%d\\nbit %d", s, i, b.ControlBit(s))
			attrs := ""
			if res != nil {
				if res.States[s][i] {
					label += "\\nX"
					attrs = ", style=filled, fillcolor=lightcoral"
				} else {
					label += "\\n="
					attrs = ", style=filled, fillcolor=lightblue"
				}
			}
			fmt.Fprintf(&sb, "  sw_%d_%d [label=\"%s\"%s];\n", s, i, label, attrs)
		}
	}
	// Input edges.
	for i := 0; i < b.size; i++ {
		fmt.Fprintf(&sb, "  in%d -> sw_0_%d;\n", i, i/2)
	}
	// Inter-stage edges follow the wiring: output line y of stage s
	// drives input line link[s][y] of stage s+1.
	for s := 0; s < b.stages-1; s++ {
		for y := 0; y < b.size; y++ {
			fmt.Fprintf(&sb, "  sw_%d_%d -> sw_%d_%d;\n", s, y/2, s+1, b.link[s][y]/2)
		}
	}
	// Output edges.
	last := b.stages - 1
	for y := 0; y < b.size; y++ {
		fmt.Fprintf(&sb, "  sw_%d_%d -> out%d;\n", last, y/2, y)
	}
	sb.WriteString("}\n")
	return sb.String()
}
