package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/perm"
)

// The basic workflow: build B(n), self-route a permutation in F by
// destination tags alone, and read the realized mapping.
func ExampleNetwork_SelfRoute() {
	net := core.New(3)
	res := net.SelfRoute(perm.BitReversal(3))
	fmt.Println("ok:", res.OK())
	fmt.Println("realized:", res.Realized)
	// Output:
	// ok: true
	// realized: (0,4,2,6,1,5,3,7)
}

// Fig. 5's permutation is outside F: the routing completes but two
// inputs land at the wrong outputs.
func ExampleNetwork_SelfRoute_misroute() {
	net := core.New(2)
	res := net.SelfRoute(perm.Perm{1, 3, 2, 0})
	fmt.Println("ok:", res.OK())
	fmt.Println("misrouted inputs:", res.Misrouted)
	// Output:
	// ok: false
	// misrouted inputs: [2 3]
}

// External setup (the looping algorithm) realizes any permutation on
// the same hardware.
func ExampleNetwork_Setup() {
	net := core.New(2)
	d := perm.Perm{1, 3, 2, 0}
	res := net.ExternalRoute(d, net.Setup(d))
	fmt.Println("ok:", res.OK())
	// Output:
	// ok: true
}

// The omega bit forces the first n-1 stages straight, making every
// omega permutation routable.
func ExampleNetwork_OmegaRoute() {
	net := core.New(2)
	d := perm.Perm{1, 3, 2, 0} // in Omega(2) but not in F(2)
	fmt.Println("plain:", net.Realizes(d), "with omega bit:", net.RealizesOmega(d))
	// Output:
	// plain: false with omega bit: true
}

// Permute moves payload data through the network in one pass.
func ExamplePermute() {
	net := core.New(2)
	out := core.Permute(net, perm.VectorReversal(2), []string{"a", "b", "c", "d"})
	fmt.Println(out)
	// Output:
	// [d c b a]
}

// Pipelined mode accepts a new vector every cycle (Section IV).
func ExamplePipeline() {
	net := core.New(2)
	p := core.NewPipeline[int](net)
	p.Step(perm.VectorReversal(2), []int{10, 11, 12, 13})
	p.Step(perm.Identity(4), []int{20, 21, 22, 23})
	p.Drain()
	for _, v := range p.Output() {
		fmt.Println(v.Cycle, v.Data)
	}
	// Output:
	// 4 [13 12 11 10]
	// 5 [20 21 22 23]
}
