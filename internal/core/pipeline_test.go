package core

import (
	"math/rand"
	"testing"

	"repro/internal/perm"
)

// TestPipelineSingleVector checks the Section IV claim for one vector:
// it emerges after the pipeline fill of Stages()+1 clock periods (one
// latch per stage plus the output latch) and is correctly permuted.
func TestPipelineSingleVector(t *testing.T) {
	n := 3
	b := New(n)
	p := NewPipeline[string](b)
	d := perm.BitReversal(n)
	data := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	p.Step(d, data)
	p.Drain()
	out := p.Output()
	if len(out) != 1 {
		t.Fatalf("got %d vectors", len(out))
	}
	if out[0].Cycle != b.Stages()+1 {
		t.Errorf("first vector at cycle %d, want %d", out[0].Cycle, b.Stages()+1)
	}
	if len(out[0].Misrouted) != 0 {
		t.Fatalf("misrouted: %v", out[0].Misrouted)
	}
	want := perm.Apply(d, data)
	for i := range want {
		if out[0].Data[i] != want[i] {
			t.Fatalf("data = %v, want %v", out[0].Data, want)
		}
	}
}

// TestPipelineThroughput: after the fill, one vector emerges per clock
// period even when every vector uses a different permutation.
func TestPipelineThroughput(t *testing.T) {
	n := 4
	N := 1 << uint(n)
	b := New(n)
	p := NewPipeline[int](b)
	rng := rand.New(rand.NewSource(71))
	const vectors = 20
	perms := make([]perm.Perm, vectors)
	for v := 0; v < vectors; v++ {
		// Alternate between BPC and inverse-omega permutations so
		// consecutive vectors really are permuted differently.
		if v%2 == 0 {
			perms[v] = perm.RandomBPC(n, rng).Perm()
		} else {
			perms[v] = perm.POrderingShift(n, 2*rng.Intn(N/2)+1, rng.Intn(N))
		}
		data := make([]int, N)
		for i := range data {
			data[i] = v*N + i
		}
		p.Step(perms[v], data)
	}
	p.Drain()
	out := p.Output()
	if len(out) != vectors {
		t.Fatalf("got %d vectors, want %d", len(out), vectors)
	}
	for v := range out {
		if v > 0 && out[v].Cycle != out[v-1].Cycle+1 {
			t.Errorf("vector %d at cycle %d, previous at %d — not unit spacing",
				v, out[v].Cycle, out[v-1].Cycle)
		}
		if len(out[v].Misrouted) != 0 {
			t.Errorf("vector %d misrouted: %v", v, out[v].Misrouted)
		}
		// Element carrying value v*N+i must sit at output perms[v][i].
		for y, val := range out[v].Data {
			srcVec, srcIdx := val/N, val%N
			if srcVec != v {
				t.Fatalf("vector %d output %d holds value from vector %d — vectors mixed", v, y, srcVec)
			}
			if perms[v][srcIdx] != y {
				t.Errorf("vector %d: element %d at output %d, want %d", v, srcIdx, y, perms[v][srcIdx])
			}
		}
	}
	// Total time: fill + one per extra vector.
	wantLast := b.Stages() + 1 + vectors - 1
	if out[vectors-1].Cycle != wantLast {
		t.Errorf("last vector at cycle %d, want %d", out[vectors-1].Cycle, wantLast)
	}
}

// TestPipelineBubbles: gaps in injection propagate as gaps in emergence.
func TestPipelineBubbles(t *testing.T) {
	n := 2
	b := New(n)
	p := NewPipeline[int](b)
	d := perm.Identity(4)
	p.Step(d, []int{0, 1, 2, 3})
	p.Step(nil, nil) // bubble
	p.Step(d, []int{4, 5, 6, 7})
	p.Drain()
	out := p.Output()
	if len(out) != 2 {
		t.Fatalf("got %d vectors, want 2", len(out))
	}
	if out[1].Cycle-out[0].Cycle != 2 {
		t.Errorf("bubble not preserved: cycles %d and %d", out[0].Cycle, out[1].Cycle)
	}
}

// TestPipelineNonFVectorFlagged: a non-F permutation streams through but
// is flagged misrouted.
func TestPipelineNonFVectorFlagged(t *testing.T) {
	b := New(2)
	p := NewPipeline[int](b)
	p.Step(perm.Perm{1, 3, 2, 0}, []int{10, 11, 12, 13})
	p.Drain()
	out := p.Output()
	if len(out) != 1 || len(out[0].Misrouted) == 0 {
		t.Fatal("non-F vector should emerge flagged as misrouted")
	}
}

// TestPipelineMatchesCombinational: the pipelined datapath must compute
// exactly the same routing as the combinational evaluator.
func TestPipelineMatchesCombinational(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(6)
		N := 1 << uint(n)
		b := New(n)
		d := perm.Random(N, rng)
		res := b.SelfRoute(d)

		p := NewPipeline[int](b)
		data := make([]int, N)
		for i := range data {
			data[i] = i
		}
		p.Step(d, data)
		p.Drain()
		out := p.Output()[0]
		for y := 0; y < N; y++ {
			if res.TagTrace[b.Stages()][y] != out.Tags[y] {
				t.Fatalf("n=%d: pipelined tags diverge from combinational at output %d", n, y)
			}
			if res.Realized[out.Data[y]] != y {
				t.Fatalf("n=%d: pipelined data diverge from combinational at output %d", n, y)
			}
		}
	}
}

func TestPipelineStepPanicsOnSizeMismatch(t *testing.T) {
	b := New(3)
	p := NewPipeline[int](b)
	defer func() {
		if recover() == nil {
			t.Fatal("Step should panic on wrong vector size")
		}
	}()
	p.Step(perm.Identity(4), []int{0, 1, 2, 3})
}
