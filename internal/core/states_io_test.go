package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/perm"
)

func TestStatesStringParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(281))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		b := New(n)
		d := perm.Random(1<<uint(n), rng)
		st := b.Setup(d)
		parsed, err := b.ParseStates(st.String())
		if err != nil {
			t.Fatalf("ParseStates: %v", err)
		}
		for s := range st {
			for i := range st[s] {
				if st[s][i] != parsed[s][i] {
					t.Fatalf("round trip mismatch at stage %d switch %d", s, i)
				}
			}
		}
		// The replayed setting still routes.
		if !b.ExternalRoute(d, parsed).OK() {
			t.Fatal("replayed states misroute")
		}
	}
}

func TestStatesStringShape(t *testing.T) {
	b := New(2)
	st := b.NewStates()
	st[1][0] = true
	s := st.String()
	lines := strings.Split(s, "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 stage lines, got %d", len(lines))
	}
	if lines[0] != "00" || lines[1] != "10" || lines[2] != "00" {
		t.Fatalf("unexpected rendering: %q", s)
	}
}

func TestParseStatesErrors(t *testing.T) {
	b := New(2)
	for _, bad := range []string{
		"00\n00",         // too few stages
		"00\n00\n00\n00", // too many stages
		"000\n00\n00",    // wrong width
		"0x\n00\n00",     // bad character
	} {
		if _, err := b.ParseStates(bad); err == nil {
			t.Errorf("ParseStates(%q) accepted bad input", bad)
		}
	}
}
