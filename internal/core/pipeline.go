package core

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/perm"
)

// Pipeline simulates the registered network of Section IV: with a
// register between consecutive stages, a new N-element vector may enter
// the network every clock period. Each vector carries its own
// destination tags, so consecutive vectors may use different
// permutations. The first permuted vector emerges after 2 log N - 1
// cycles (the pipeline fill); each subsequent vector emerges one cycle
// later.
type Pipeline[T any] struct {
	net *Network
	// regTags[s] / regData[s] hold the values latched at the *input* of
	// stage s; stage index Stages() is the output latch.
	regTags  [][]int
	regData  [][]T
	regValid []bool
	cycles   int
	out      []Vector[T]
}

// Vector is one N-element payload with its destination tags and the
// cycle at which it left the network.
type Vector[T any] struct {
	Tags  perm.Perm
	Data  []T
	Cycle int // clock period at which the vector emerged
	// Misrouted lists inputs whose element did not reach its tag's
	// output (non-F permutations in self-routing mode).
	Misrouted []int
}

// NewPipeline builds a pipelined wrapper over net.
func NewPipeline[T any](net *Network) *Pipeline[T] {
	p := &Pipeline[T]{net: net}
	p.regTags = make([][]int, net.Stages()+1)
	p.regData = make([][]T, net.Stages()+1)
	p.regValid = make([]bool, net.Stages()+1)
	return p
}

// Cycles returns the number of clock periods simulated so far.
func (p *Pipeline[T]) Cycles() int { return p.cycles }

// Output returns the vectors that have emerged, in emergence order.
func (p *Pipeline[T]) Output() []Vector[T] { return p.out }

// Step advances one clock period, optionally injecting a new vector at
// the inputs (pass nil tags to inject nothing — a pipeline bubble).
// Every stage latches, switches by the self-routing rule, and forwards.
func (p *Pipeline[T]) Step(tags perm.Perm, data []T) {
	n := p.net
	// Drain the output latch first.
	if p.regValid[n.Stages()] {
		v := Vector[T]{
			Tags:  append(perm.Perm(nil), p.regTags[n.Stages()]...),
			Data:  append([]T(nil), p.regData[n.Stages()]...),
			Cycle: p.cycles,
		}
		// The emerged tags are in output order; tag t at output y is
		// misrouted when t != y.
		for y, t := range v.Tags {
			if t != y {
				v.Misrouted = append(v.Misrouted, y)
			}
		}
		p.out = append(p.out, v)
	}
	// Move stages back-to-front so each latch consumes its predecessor's
	// pre-step value.
	for s := n.Stages() - 1; s >= 0; s-- {
		if !p.regValid[s] {
			p.regValid[s+1] = false
			continue
		}
		tagIn := p.regTags[s]
		dataIn := p.regData[s]
		tagOut := make([]int, n.size)
		dataOut := make([]T, n.size)
		cb := n.ControlBit(s)
		for i := 0; i < n.size/2; i++ {
			crossed := bits.Bit(tagIn[2*i], cb) == 1
			if crossed {
				tagOut[2*i], tagOut[2*i+1] = tagIn[2*i+1], tagIn[2*i]
				dataOut[2*i], dataOut[2*i+1] = dataIn[2*i+1], dataIn[2*i]
			} else {
				tagOut[2*i], tagOut[2*i+1] = tagIn[2*i], tagIn[2*i+1]
				dataOut[2*i], dataOut[2*i+1] = dataIn[2*i], dataIn[2*i+1]
			}
		}
		if s < n.Stages()-1 {
			permTag := make([]int, n.size)
			permData := make([]T, n.size)
			for y := 0; y < n.size; y++ {
				to := n.link[s][y]
				permTag[to] = tagOut[y]
				permData[to] = dataOut[y]
			}
			tagOut, dataOut = permTag, permData
		}
		p.regTags[s+1] = tagOut
		p.regData[s+1] = dataOut
		p.regValid[s+1] = true
	}
	// Inject.
	if tags != nil {
		if len(tags) != n.size || len(data) != n.size {
			panic(fmt.Sprintf("core: Pipeline.Step vector size %d != N %d", len(tags), n.size))
		}
		p.regTags[0] = append([]int(nil), tags...)
		p.regData[0] = append([]T(nil), data...)
		p.regValid[0] = true
	} else {
		p.regValid[0] = false
	}
	p.cycles++
}

// Drain steps with bubbles until every in-flight vector has emerged.
func (p *Pipeline[T]) Drain() {
	for {
		busy := false
		for _, v := range p.regValid {
			if v {
				busy = true
				break
			}
		}
		if !busy {
			return
		}
		p.Step(nil, nil)
	}
}
