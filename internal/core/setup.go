package core

import (
	"fmt"

	"repro/internal/perm"
)

// Setup computes switch states realizing an arbitrary permutation d on
// B(n) using the classic looping algorithm (Waksman; the paper's
// Section I cites it as the best known O(N log N) sequential setup).
// The returned setting, applied via ExternalRoute, realizes d exactly —
// this is the paper's remark that with the self-setting logic disabled
// the network realizes all N! permutations.
func (b *Network) Setup(d perm.Perm) States {
	if err := d.Validate(); err != nil {
		panic("core: Setup: " + err.Error())
	}
	if len(d) != b.size {
		panic(fmt.Sprintf("core: Setup: permutation length %d != N %d", len(d), b.size))
	}
	st := b.NewStates()
	dests := append([]int(nil), d...)
	b.setup(dests, 0, 0, b.n, st)
	return st
}

// setup solves the B(m) block whose inputs occupy lines [lo, lo+2^m) at
// stages [s0, s0+2m-2]. dests[k] is the block-local destination of the
// input at block-local position k.
func (b *Network) setup(dests []int, lo, s0, m int, st States) {
	size := 1 << uint(m)
	if m == 1 {
		// A single switch: inputs (0,1) to outputs {dests[0], dests[1]}.
		st[s0][lo/2] = dests[0] == 1
		return
	}
	half := size / 2
	// invDest[v] = input position whose destination is v.
	invDest := make([]int, size)
	for k, v := range dests {
		invDest[v] = k
	}
	// up[k] records whether input k is routed through the upper
	// subnetwork. Constraints: the two inputs of each first-stage switch
	// (positions 2i, 2i+1) take opposite values, and the two
	// destinations of each last-stage switch (values 2j, 2j+1) take
	// opposite values. Resolve loop by loop, fixing each loop's first
	// input to "up" (Waksman's free choice).
	const unset = 0
	const goesUp = 1
	const goesDown = 2
	up := make([]int, size)
	for start := 0; start < size; start++ {
		if up[start] != unset {
			continue
		}
		cur, dir := start, goesUp
		for {
			up[cur] = dir
			// The destination paired with ours at the last stage must
			// come through the other subnetwork.
			sibIn := invDest[dests[cur]^1]
			opp := goesUp
			if dir == goesUp {
				opp = goesDown
			}
			up[sibIn] = opp
			// And that input's partner at its first-stage switch must go
			// opposite to it, i.e. in our direction.
			cur = sibIn ^ 1
			if cur == start {
				break
			}
		}
	}
	// First-stage switch states: switch i is straight when its upper
	// input (position 2i) goes up.
	for i := 0; i < half; i++ {
		st[s0][lo/2+i] = up[2*i] != goesUp
	}
	// Build the sub-permutations seen by the two subnetworks. The input
	// at position k enters subnetwork position k/2; destination v is
	// served by subnetwork output v/2.
	upDests := make([]int, half)
	downDests := make([]int, half)
	for k, v := range dests {
		if up[k] == goesUp {
			upDests[k/2] = v / 2
		} else {
			downDests[k/2] = v / 2
		}
	}
	// Last-stage switch states: switch j's upper input carries the
	// up-routed destination v with v/2 == j; straight iff that v == 2j.
	lastStage := s0 + 2*m - 2
	for k, v := range dests {
		if up[k] == goesUp {
			st[lastStage][lo/2+v/2] = v%2 == 1
		}
	}
	b.setup(upDests, lo, s0+1, m-1, st)
	b.setup(downDests, lo+half, s0+1, m-1, st)
}
