package core

import (
	"fmt"

	"repro/internal/perm"
)

// Setup computes switch states realizing an arbitrary permutation d on
// B(n) using the classic looping algorithm (Waksman; the paper's
// Section I cites it as the best known O(N log N) sequential setup).
// The returned setting, applied via ExternalRoute, realizes d exactly —
// this is the paper's remark that with the self-setting logic disabled
// the network realizes all N! permutations.
func (b *Network) Setup(d perm.Perm) States {
	if err := d.Validate(); err != nil {
		panic("core: Setup: " + err.Error())
	}
	if len(d) != b.size {
		panic(fmt.Sprintf("core: Setup: permutation length %d != N %d", len(d), b.size))
	}
	st := b.NewStates()
	b.SetupInto(d, st, NewSetupScratch(b))
	return st
}

// SetupScratch is the reusable working memory of one looping-algorithm
// run: the per-level destination buffers plus the loop-resolution
// arrays. A scratch belongs to one goroutine at a time; reusing it
// across calls makes SetupInto allocation-free, which matters on hot
// paths that set up a fresh permutation per frame (the packet fabric).
type SetupScratch struct {
	invDest []int   // destination -> block-local input, reused per block
	up      []int   // loop-resolution direction per input, reused per block
	levels  [][]int // levels[depth] holds every block's dests at that depth
}

// NewSetupScratch allocates scratch sized for b. The total footprint is
// N*(log N + 2) ints.
func NewSetupScratch(b *Network) *SetupScratch {
	sc := &SetupScratch{
		invDest: make([]int, b.size),
		up:      make([]int, b.size),
		levels:  make([][]int, b.n),
	}
	for i := range sc.levels {
		sc.levels[i] = make([]int, b.size)
	}
	return sc
}

// SetupInto is Setup writing into caller-owned memory: st receives the
// switch setting (every switch is overwritten, so a dirty st is fine)
// and sc provides the working buffers. It performs no allocations,
// making it the right entry point for per-frame setup on serving paths.
// Like Setup it panics on an invalid permutation — callers on hot paths
// are expected to construct d correct by construction.
func (b *Network) SetupInto(d perm.Perm, st States, sc *SetupScratch) {
	if len(d) != b.size {
		panic(fmt.Sprintf("core: SetupInto: permutation length %d != N %d", len(d), b.size))
	}
	dests := sc.levels[0][:b.size]
	copy(dests, d)
	b.setupScratch(dests, 0, 0, b.n, st, sc)
}

// setupScratch solves the B(m) block whose inputs occupy lines
// [lo, lo+2^m) at stages [s0, s0+2m-2]. dests[k] is the block-local
// destination of the input at block-local position k. All working
// memory comes from sc: invDest and up are safe to share across blocks
// because their last use precedes the recursive calls, and the
// sub-permutations live in sc.levels[depth+1], segmented by lo so
// sibling blocks never overlap.
func (b *Network) setupScratch(dests []int, lo, s0, m int, st States, sc *SetupScratch) {
	size := 1 << uint(m)
	if m == 1 {
		// A single switch: inputs (0,1) to outputs {dests[0], dests[1]}.
		st[s0][lo/2] = dests[0] == 1
		return
	}
	half := size / 2
	depth := b.n - m // 0 at the outermost block
	next := sc.levels[depth+1]
	upDests := next[lo : lo+half]
	downDests := next[lo+half : lo+size]
	colorBlock(dests, lo, s0, m, st, sc.invDest, sc.up, upDests, downDests)
	b.setupScratch(upDests, lo, s0+1, m-1, st, sc)
	b.setupScratch(downDests, lo+half, s0+1, m-1, st, sc)
}

// colorBlock runs one level of the looping algorithm on the B(m) block
// at lines [lo, lo+2^m), stages [s0, s0+2m-2]: it resolves the
// 2-coloring loops, writes the block's first- and last-stage switch
// states into st, and scatters the two half-size sub-permutations into
// upDests and downDests (each len 2^(m-1), caller-owned). invDest and
// up are scratch of length >= 2^m. The coloring is deterministic —
// Waksman's free choice always sends each loop's smallest-numbered
// input through the upper subnetwork — which is what makes every
// alternative driver of this routine (serial recursion here, the
// worker-pool recursion in internal/psetup, the PRAM-rounds model in
// internal/parsetup) bit-identical in its emitted states.
func colorBlock(dests []int, lo, s0, m int, st States, invDestSc, upSc []int, upDests, downDests []int) {
	size := 1 << uint(m)
	half := size / 2
	// invDest[v] = input position whose destination is v.
	invDest := invDestSc[:size]
	for k, v := range dests {
		invDest[v] = k
	}
	// up[k] records whether input k is routed through the upper
	// subnetwork. Constraints: the two inputs of each first-stage switch
	// (positions 2i, 2i+1) take opposite values, and the two
	// destinations of each last-stage switch (values 2j, 2j+1) take
	// opposite values. Resolve loop by loop, fixing each loop's first
	// input to "up" (Waksman's free choice).
	const unset = 0
	const goesUp = 1
	const goesDown = 2
	up := upSc[:size]
	for i := range up {
		up[i] = unset
	}
	for start := 0; start < size; start++ {
		if up[start] != unset {
			continue
		}
		cur, dir := start, goesUp
		for {
			up[cur] = dir
			// The destination paired with ours at the last stage must
			// come through the other subnetwork.
			sibIn := invDest[dests[cur]^1]
			opp := goesUp
			if dir == goesUp {
				opp = goesDown
			}
			up[sibIn] = opp
			// And that input's partner at its first-stage switch must go
			// opposite to it, i.e. in our direction.
			cur = sibIn ^ 1
			if cur == start {
				break
			}
		}
	}
	// First-stage switch states: switch i is straight when its upper
	// input (position 2i) goes up.
	for i := 0; i < half; i++ {
		st[s0][lo/2+i] = up[2*i] != goesUp
	}
	// Build the sub-permutations seen by the two subnetworks. The input
	// at position k enters subnetwork position k/2; destination v is
	// served by subnetwork output v/2.
	for k, v := range dests {
		if up[k] == goesUp {
			upDests[k/2] = v / 2
		} else {
			downDests[k/2] = v / 2
		}
	}
	// Last-stage switch states: switch j's upper input carries the
	// up-routed destination v with v/2 == j; straight iff that v == 2j.
	lastStage := s0 + 2*m - 2
	for k, v := range dests {
		if up[k] == goesUp {
			st[lastStage][lo/2+v/2] = v%2 == 1
		}
	}
}

// ColorBlock exposes one level of the looping algorithm for external
// recursion drivers (the parallel setup of internal/psetup): it solves
// the 2-coloring of the B(m) block at lines [lo, lo+2^m) and stages
// [s0, s0+2m-2], writes the block's outer stage pair into st, and
// scatters the two half-size sub-permutations into upDests and
// downDests (each len 2^(m-1)). sc supplies the loop-resolution
// scratch; the call leaves sc.levels untouched, so one scratch may
// serve interleaved ColorBlock and SetupBlock calls. m must be >= 2.
func (b *Network) ColorBlock(dests []int, lo, s0, m int, st States, sc *SetupScratch, upDests, downDests []int) {
	colorBlock(dests, lo, s0, m, st, sc.invDest, sc.up, upDests, downDests)
}

// SetupBlock solves the complete B(m) sub-block at lines [lo, lo+2^m)
// and stages [s0, s0+2m-2] serially, exactly as a Setup of the whole
// network would solve it: the emitted states depend only on the
// block-local dests, never on the surrounding blocks. This is the
// serial-subtree leaf of internal/psetup's worker-pool recursion. sc
// must come from NewSetupScratch of this network (its level buffers
// are indexed by absolute depth b.LogN()-m and line offset lo).
func (b *Network) SetupBlock(dests []int, lo, s0, m int, st States, sc *SetupScratch) {
	b.setupScratch(dests, lo, s0, m, st, sc)
}
