package core

import (
	"fmt"

	"repro/internal/perm"
)

// Fault models a binary switch stuck in one state — the classic Benes
// fault-tolerance scenario. The network's redundancy (every permutation
// has many settings, one free choice per loop of the looping algorithm)
// often lets an external setup route *around* a stuck switch; the
// self-routing scheme has no such freedom, since tags dictate states.
// Experiment E27 quantifies both effects.
type Fault struct {
	Stage        int
	Switch       int
	StuckCrossed bool // the state the switch is frozen in
}

// RouteWithFaults self-routes d but overrides the faulty switches with
// their stuck states, reporting the damage.
func (b *Network) RouteWithFaults(d perm.Perm, faults []Fault) *Result {
	stuck := b.faultMap(faults)
	res := &Result{
		Mode:     SelfRouting,
		States:   b.NewStates(),
		Realized: make(perm.Perm, b.size),
		TagTrace: make([][]int, b.stages+1),
	}
	tags := append([]int(nil), d...)
	src := make([]int, b.size)
	for i := range src {
		src[i] = i
	}
	res.TagTrace[0] = append([]int(nil), tags...)
	nextTags := make([]int, b.size)
	nextSrc := make([]int, b.size)
	for s := 0; s < b.stages; s++ {
		cb := b.ControlBit(s)
		for i := 0; i < b.size/2; i++ {
			crossed := tags[2*i]>>uint(cb)&1 == 1
			if st, ok := stuck[faultKey{s, i}]; ok {
				crossed = st
			}
			res.States[s][i] = crossed
			if crossed {
				tags[2*i], tags[2*i+1] = tags[2*i+1], tags[2*i]
				src[2*i], src[2*i+1] = src[2*i+1], src[2*i]
			}
		}
		if s < b.stages-1 {
			for y := 0; y < b.size; y++ {
				to := b.link[s][y]
				nextTags[to] = tags[y]
				nextSrc[to] = src[y]
			}
			tags, nextTags = nextTags, tags
			src, nextSrc = nextSrc, src
		}
		res.TagTrace[s+1] = append([]int(nil), tags...)
	}
	for out := 0; out < b.size; out++ {
		res.Realized[src[out]] = out
	}
	for i, dest := range d {
		if res.Realized[i] != dest {
			res.Misrouted = append(res.Misrouted, i)
		}
	}
	return res
}

type faultKey struct{ stage, sw int }

func (b *Network) faultMap(faults []Fault) map[faultKey]bool {
	m := make(map[faultKey]bool, len(faults))
	for _, f := range faults {
		if f.Stage < 0 || f.Stage >= b.stages || f.Switch < 0 || f.Switch >= b.size/2 {
			panic(fmt.Sprintf("core: fault (%d,%d) out of range", f.Stage, f.Switch))
		}
		m[faultKey{f.Stage, f.Switch}] = f.StuckCrossed
	}
	return m
}

// SetupAvoiding computes switch states realizing d that agree with the
// stuck states of the given faults, using the looping algorithm's free
// choices to steer around them. It returns ok=false when the greedy
// per-level constraint propagation finds a loop with contradictory
// constraints; success is always sound (the returned setting honours
// every fault and realizes d). The procedure is greedy across levels —
// it does not backtrack outer-level choices to relieve inner-level
// conflicts — so a false result means "not found", not "impossible",
// although for single faults it is observed exact on exhaustable sizes.
func (b *Network) SetupAvoiding(d perm.Perm, faults []Fault) (States, bool) {
	if err := d.Validate(); err != nil {
		panic("core: SetupAvoiding: " + err.Error())
	}
	if len(d) != b.size {
		panic("core: SetupAvoiding: size mismatch")
	}
	stuck := b.faultMap(faults)
	st := b.NewStates()
	dests := append([]int(nil), d...)
	if !b.setupAvoid(dests, 0, 0, b.n, st, stuck) {
		return nil, false
	}
	// Defensive re-check: honour every fault and realize d.
	for _, f := range faults {
		if st[f.Stage][f.Switch] != f.StuckCrossed {
			return nil, false
		}
	}
	if !b.ExternalRoute(d, st).OK() {
		return nil, false
	}
	return st, true
}

// setupAvoid mirrors setup (see setup.go) with per-loop constraint
// resolution.
func (b *Network) setupAvoid(dests []int, lo, s0, m int, st States, stuck map[faultKey]bool) bool {
	size := 1 << uint(m)
	if m == 1 {
		want := dests[0] == 1
		if frozen, ok := stuck[faultKey{s0, lo / 2}]; ok && frozen != want {
			return false
		}
		st[s0][lo/2] = want
		return true
	}
	half := size / 2
	lastStage := s0 + 2*m - 2
	invDest := make([]int, size)
	for k, v := range dests {
		invDest[v] = k
	}
	// Constraints on input positions: +1 = must go up, -1 = must go
	// down, 0 = free.
	constrain := make([]int, size)
	apply := func(pos, dir int) bool {
		if constrain[pos] != 0 && constrain[pos] != dir {
			return false
		}
		constrain[pos] = dir
		// The switch partner must go the other way.
		if constrain[pos^1] != 0 && constrain[pos^1] != -dir {
			return false
		}
		constrain[pos^1] = -dir
		return true
	}
	// First-stage stuck switches: state false (straight) sends input 2i
	// up; crossed sends it down.
	for i := 0; i < half; i++ {
		if frozen, ok := stuck[faultKey{s0, lo/2 + i}]; ok {
			dir := 1
			if frozen {
				dir = -1
			}
			if !apply(2*i, dir) {
				return false
			}
		}
	}
	// Last-stage stuck switches: state false means destination 2j is
	// served from the upper subnetwork.
	for j := 0; j < half; j++ {
		if frozen, ok := stuck[faultKey{lastStage, lo/2 + j}]; ok {
			upDest := 2 * j
			if frozen {
				upDest = 2*j + 1
			}
			if !apply(invDest[upDest], 1) {
				return false
			}
			if !apply(invDest[upDest^1], -1) {
				return false
			}
		}
	}
	// Colour the loops, honouring any constrained member.
	const unset, goesUp, goesDown = 0, 1, 2
	up := make([]int, size)
	for start := 0; start < size; start++ {
		if up[start] != unset {
			continue
		}
		// Walk the loop once to find a constrained member.
		dir := goesUp
		pos := start
		for {
			if constrain[pos] == 1 {
				dir = goesUp
				break
			}
			if constrain[pos] == -1 {
				dir = goesDown
				break
			}
			sibIn := invDest[dests[pos]^1]
			pos = sibIn ^ 1
			if pos == start {
				break
			}
		}
		// Walk again from the (possibly shifted) anchor, assigning and
		// verifying every constraint on the way.
		anchor := pos
		cur, curDir := anchor, dir
		for {
			if bad(constrain[cur], curDir) {
				return false
			}
			up[cur] = curDir
			sibIn := invDest[dests[cur]^1]
			opp := goesUp
			if curDir == goesUp {
				opp = goesDown
			}
			if bad(constrain[sibIn], opp) {
				return false
			}
			up[sibIn] = opp
			cur = sibIn ^ 1
			if cur == anchor {
				break
			}
		}
	}
	for i := 0; i < half; i++ {
		st[s0][lo/2+i] = up[2*i] != goesUp
	}
	upDests := make([]int, half)
	downDests := make([]int, half)
	for k, v := range dests {
		if up[k] == goesUp {
			upDests[k/2] = v / 2
			st[lastStage][lo/2+v/2] = v%2 == 1
		} else {
			downDests[k/2] = v / 2
		}
	}
	return b.setupAvoid(upDests, lo, s0+1, m-1, st, stuck) &&
		b.setupAvoid(downDests, lo+half, s0+1, m-1, st, stuck)
}

// bad reports whether an assignment collides with a constraint
// (+1 up / -1 down / 0 free against goesUp=1 / goesDown=2).
func bad(constraint, dir int) bool {
	return (constraint == 1 && dir != 1) || (constraint == -1 && dir != 2)
}
