package core

import "sort"

// Multicast switch states. The paper's switch is two-state (straight /
// crossed); a copy network additionally lets a switch *broadcast* one
// input to both outputs (Nassimi & Sahni's generalized connector,
// Section I of the paper's intro; Burckel et al. for the rearrangeable
// multicast construction). McastState is the four-state generalization:
//
//	Straight     out0 <- in0, out1 <- in1
//	Cross        out0 <- in1, out1 <- in0
//	BcastUpper   out0 <- in0, out1 <- in0   (upper input copied)
//	BcastLower   out0 <- in1, out1 <- in1   (lower input copied)
//
// A binary States setting embeds into McastStates (straight/crossed
// only); the broadcast states are what a distribute-copy-permute plan
// loads into the ladder stages.
type McastState uint8

const (
	McStraight McastState = iota
	McCross
	McBcastUpper
	McBcastLower
)

// Broadcast reports whether the state copies one input to both outputs.
func (s McastState) Broadcast() bool { return s >= McBcastUpper }

func (s McastState) String() string {
	switch s {
	case McStraight:
		return "straight"
	case McCross:
		return "cross"
	case McBcastUpper:
		return "bcast-upper"
	case McBcastLower:
		return "bcast-lower"
	}
	return "invalid"
}

// McastStates is a full four-state switch setting: McastStates[s][i] is
// the state of switch i in stage s.
type McastStates [][]McastState

// NewMcastStates allocates an all-straight setting for the network.
func (b *Network) NewMcastStates() McastStates {
	st := make(McastStates, b.stages)
	for s := range st {
		st[s] = make([]McastState, b.size/2)
	}
	return st
}

// Mcast converts a binary setting to the four-state representation
// (no broadcast states).
func (st States) Mcast() McastStates {
	out := make(McastStates, len(st))
	for s := range st {
		out[s] = make([]McastState, len(st[s]))
		for i, crossed := range st[s] {
			if crossed {
				out[s][i] = McCross
			}
		}
	}
	return out
}

// Clone deep-copies a setting.
func (st McastStates) Clone() McastStates {
	out := make(McastStates, len(st))
	for s := range st {
		out[s] = append([]McastState(nil), st[s]...)
	}
	return out
}

// CountBroadcast returns the number of switches in a broadcast state.
func (st McastStates) CountBroadcast() int {
	c := 0
	for _, stage := range st {
		for _, s := range stage {
			if s.Broadcast() {
				c++
			}
		}
	}
	return c
}

// Apply produces a switch's two output values from its two input
// values under the state. Idle lines carry -1 and broadcast states
// replicate whatever is on the chosen input, idle or not.
func (s McastState) Apply(in0, in1 int) (out0, out1 int) {
	switch s {
	case McCross:
		return in1, in0
	case McBcastUpper:
		return in0, in0
	case McBcastLower:
		return in1, in1
	}
	return in0, in1
}

// FeedLine returns the within-stage input line that drives within-stage
// output line y of the switch y/2 under the state — the backward step
// of a path walk. Broadcast states make the forward direction one-to-
// many but the backward direction stays a function.
func (s McastState) FeedLine(y int) int {
	switch s {
	case McCross:
		return y ^ 1
	case McBcastUpper:
		return y &^ 1
	case McBcastLower:
		return y | 1
	}
	return y
}

// McastResult reports one multicast pass through the network: the
// delivered source tag on every output, the tag on every line at every
// stage boundary, and the sources whose delivered output multiset does
// not equal the requested one.
type McastResult struct {
	States    McastStates
	Requested []int   // req[out] = source wanted at out, -1 = don't care
	Delivered []int   // Delivered[out] = source tag arriving at out, -1 = idle
	TagTrace  [][]int // stages+1 rows: tags at every boundary
	Misrouted []int   // sources with a wrong delivered multiset, ascending
}

// OK reports whether every requested source reached exactly its
// requested output multiset.
func (r *McastResult) OK() bool { return len(r.Misrouted) == 0 }

// McastRoute pushes one tag vector through the network under a
// four-state setting and returns the output tags plus the full
// boundary-by-boundary trace. tags[i] is the value entering input line
// i (-1 = idle); broadcast switches replicate it, so a tag can appear
// on many outputs.
func (b *Network) McastRoute(tags []int, st McastStates) (delivered []int, trace [][]int) {
	if len(tags) != b.size {
		panic("core: McastRoute tag vector has wrong length")
	}
	cur := append([]int(nil), tags...)
	next := make([]int, b.size)
	trace = make([][]int, b.stages+1)
	trace[0] = append([]int(nil), cur...)
	for s := 0; s < b.stages; s++ {
		for i := 0; i < b.size/2; i++ {
			next[2*i], next[2*i+1] = st[s][i].Apply(cur[2*i], cur[2*i+1])
		}
		if s < b.stages-1 {
			for y, v := range next {
				cur[b.link[s][y]] = v
			}
		} else {
			copy(cur, next)
		}
		trace[s+1] = append([]int(nil), cur...)
	}
	return cur, trace
}

// MulticastRoute evaluates a multicast request req (req[out] = source
// input wanted at out, -1 = don't care) under the setting: input line i
// enters carrying tag i when some output requests it and -1 otherwise,
// and the result records delivery and per-source multiset misroutes.
func (b *Network) MulticastRoute(req []int, st McastStates) *McastResult {
	if len(req) != b.size {
		panic("core: MulticastRoute request has wrong length")
	}
	tags := make([]int, b.size)
	for i := range tags {
		tags[i] = -1
	}
	for _, s := range req {
		if s >= 0 && s < b.size {
			tags[s] = s
		}
	}
	delivered, trace := b.McastRoute(tags, st)
	return &McastResult{
		States:    st,
		Requested: append([]int(nil), req...),
		Delivered: delivered,
		TagTrace:  trace,
		Misrouted: CheckMulticast(req, delivered),
	}
}

// CheckMulticast compares a requested fan-out mapping against a
// delivered output vector and returns the sources (ascending) whose
// delivered output multiset differs from the requested one — the
// multiset generalization of the paper's misroute check: source s is
// correct iff {out : delivered[out] = s} equals {out : req[out] = s}.
// Outputs with req[out] = -1 accept anything.
func CheckMulticast(req, delivered []int) []int {
	bad := map[int]bool{}
	for out := range req {
		w, g := -1, -1
		if out < len(req) {
			w = req[out]
		}
		if out < len(delivered) {
			g = delivered[out]
		}
		if w < 0 || w == g {
			continue
		}
		bad[w] = true // missing its requested output
		if g >= 0 {
			// The arriving source occupies an output it was not asked
			// for, unless that output also requested it (handled above).
			bad[g] = true
		}
	}
	if len(bad) == 0 {
		return nil
	}
	out := make([]int, 0, len(bad))
	for s := range bad {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// WalkBack follows output line out of the last stage backward to the
// network input line that drives it under the binary setting st — the
// unicast specialization of the copy network's backward verification
// walk.
func (b *Network) WalkBack(st States, out int) int {
	y := out
	for s := b.stages - 1; s >= 0; s-- {
		sw := y >> 1
		if st[s][sw] {
			y ^= 1
		}
		if s > 0 {
			y = b.linkInv[s-1][y]
		}
	}
	return y
}
