package core

import (
	"math/rand"
	"testing"

	"repro/internal/perm"
)

// TestTwoPassExhaustive: every permutation of N=4 and N=8 routes in two
// tag-driven passes.
func TestTwoPassExhaustive(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		b := New(n)
		perm.ForEach(1<<uint(n), func(d perm.Perm) bool {
			r := b.TwoPassRoute(d)
			if !r.OK() {
				t.Fatalf("n=%d: two-pass failed on %v", n, d.Clone())
			}
			if !r.Realized.Equal(d) {
				t.Fatalf("n=%d: two-pass realized %v, want %v", n, r.Realized, d.Clone())
			}
			return true
		})
	}
}

// TestTwoPassRandomLarge up to N=2048.
func TestTwoPassRandomLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(251))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(10)
		b := New(n)
		d := perm.Random(1<<uint(n), rng)
		r := b.TwoPassRoute(d)
		if !r.OK() || !r.Realized.Equal(d) {
			t.Fatalf("n=%d: two-pass failed on random permutation", n)
		}
	}
}

// TestTwoPassPermuteData end to end, including a Fig. 5 witness that a
// single pass cannot do.
func TestTwoPassPermuteData(t *testing.T) {
	b := New(2)
	d := perm.Perm{1, 3, 2, 0}
	if b.Realizes(d) {
		t.Fatal("witness should not be single-pass routable")
	}
	out := TwoPassPermute(b, d, []string{"a", "b", "c", "d"})
	want := []string{"d", "a", "c", "b"}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("TwoPassPermute = %v, want %v", out, want)
		}
	}
}

// TestTwoPassFactorsAreTagOnly: pass one must succeed with PLAIN
// self-routing (no omega bit) and pass two with the omega bit — i.e.
// the factors land in the advertised classes.
func TestTwoPassFactorsAreTagOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(252))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(8)
		b := New(n)
		d := perm.Random(1<<uint(n), rng)
		r := b.TwoPassRoute(d)
		if !perm.IsInverseOmega(r.F1) {
			t.Fatal("F1 must be inverse-omega")
		}
		if !perm.IsOmega(r.F2) {
			t.Fatal("F2 must be omega")
		}
		if r.Pass1.Mode != SelfRouting || r.Pass2.Mode != OmegaForced {
			t.Fatal("passes used wrong modes")
		}
	}
}
