package core

import (
	"math/rand"
	"testing"

	"repro/internal/perm"
)

// TestFaultRouterMatchesRouteWithFaults cross-validates the lean
// prediction primitive against the tracing reference implementation:
// over random permutations and random fault sets of size 0..2, both
// must realize the identical permutation.
func TestFaultRouterMatchesRouteWithFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for n := 2; n <= 4; n++ {
		b := New(n)
		fr := b.NewFaultRouter()
		dst := make(perm.Perm, b.N())
		for trial := 0; trial < 200; trial++ {
			d := perm.Random(b.N(), rng)
			faults := make([]Fault, rng.Intn(3))
			for i := range faults {
				faults[i] = Fault{
					Stage:        rng.Intn(b.Stages()),
					Switch:       rng.Intn(b.N() / 2),
					StuckCrossed: rng.Intn(2) == 1,
				}
			}
			want := b.RouteWithFaults(d, faults).Realized
			got := fr.Realized(d, faults, dst)
			if !got.Equal(want) {
				t.Fatalf("n=%d faults=%+v d=%v: FaultRouter %v, RouteWithFaults %v",
					n, faults, d, got, want)
			}
		}
	}
}

// TestFaultRouterScratchRestored guards the swap-restore at the end of
// Realized: back-to-back calls on one router must agree with a fresh
// router (an odd number of buffer swaps would corrupt call two).
func TestFaultRouterScratchRestored(t *testing.T) {
	b := New(3)
	shared := b.NewFaultRouter()
	rng := rand.New(rand.NewSource(8))
	fault := []Fault{{Stage: 2, Switch: 1, StuckCrossed: true}}
	for trial := 0; trial < 50; trial++ {
		d := perm.Random(b.N(), rng)
		got := shared.Realized(d, fault, nil)
		want := b.NewFaultRouter().Realized(d, fault, nil)
		if !got.Equal(want) {
			t.Fatalf("trial %d: shared router diverged: %v vs %v", trial, got, want)
		}
	}
}

// TestFaultRouterAllocFree pins the property diagnosis sweeps depend
// on: with a caller-provided dst, repeated predictions do not allocate.
func TestFaultRouterAllocFree(t *testing.T) {
	b := New(4)
	fr := b.NewFaultRouter()
	d := perm.Random(b.N(), rand.New(rand.NewSource(5)))
	dst := make(perm.Perm, b.N())
	faults := []Fault{{Stage: 1, Switch: 3, StuckCrossed: false}}
	if avg := testing.AllocsPerRun(100, func() { fr.Realized(d, faults, dst) }); avg != 0 {
		t.Fatalf("Realized allocates %.1f objects per call, want 0", avg)
	}
}

// TestCheckFault exercises the error-returning validation used by
// runtime fault injection, against the panic-on-bug routing paths.
func TestCheckFault(t *testing.T) {
	b := New(3)
	for _, f := range b.EnumerateFaults() {
		if err := b.CheckFault(f); err != nil {
			t.Fatalf("valid fault %+v rejected: %v", f, err)
		}
	}
	for _, f := range []Fault{
		{Stage: -1, Switch: 0},
		{Stage: b.Stages(), Switch: 0},
		{Stage: 0, Switch: -1},
		{Stage: 0, Switch: b.N() / 2},
	} {
		if err := b.CheckFault(f); err == nil {
			t.Fatalf("invalid fault %+v accepted", f)
		}
	}
}

// TestEnumerateFaults checks the candidate space size and coverage:
// both stuck states of every switch, exactly once.
func TestEnumerateFaults(t *testing.T) {
	b := New(3)
	all := b.EnumerateFaults()
	want := 2 * b.Stages() * b.N() / 2
	if len(all) != want {
		t.Fatalf("enumerated %d faults, want %d", len(all), want)
	}
	seen := make(map[Fault]bool, len(all))
	for _, f := range all {
		if seen[f] {
			t.Fatalf("duplicate fault %+v", f)
		}
		seen[f] = true
	}
}
