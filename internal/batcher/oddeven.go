package batcher

import (
	"fmt"

	"repro/internal/perm"
)

// Batcher's other classic construction: the odd-even merge sorting
// network. Same O(log^2 N) depth as the bitonic sorter but measurably
// fewer comparators — (n^2 - n + 4)·2^(n-2) - 1 for N = 2^n — which is
// why hardware proposals of the era quoted it. Included so the
// Section I comparison can cite the cheapest known self-routing
// all-permutation network of the time.

// OddEven is an odd-even merge sorting network on N = 2^n lines.
type OddEven struct {
	n      int
	size   int
	stages [][]Comparator
}

// NewOddEven constructs the network for 2^n lines.
func NewOddEven(n int) *OddEven {
	if n < 1 {
		panic("batcher: NewOddEven requires n >= 1")
	}
	oe := &OddEven{n: n, size: 1 << uint(n)}
	// Iterative Batcher odd-even merge construction: p is the sorted
	// block size being merged, k the comparison distance within the
	// merge phase.
	for p := 1; p < oe.size; p <<= 1 {
		for k := p; k >= 1; k >>= 1 {
			var stage []Comparator
			for j := k % p; j <= oe.size-1-k; j += 2 * k {
				for i := 0; i <= min(k-1, oe.size-j-k-1); i++ {
					if (i+j)/(2*p) == (i+j+k)/(2*p) {
						stage = append(stage, Comparator{Low: i + j, High: i + j + k})
					}
				}
			}
			oe.stages = append(oe.stages, stage)
		}
	}
	return oe
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// N returns the number of lines.
func (oe *OddEven) N() int { return oe.size }

// Stages returns the comparator depth, n(n+1)/2.
func (oe *OddEven) Stages() int { return len(oe.stages) }

// GateDelay returns the delay in comparator traversals.
func (oe *OddEven) GateDelay() int { return len(oe.stages) }

// ComparatorCount returns the total comparators: (n^2-n+4)·2^(n-2) - 1.
func (oe *OddEven) ComparatorCount() int {
	c := 0
	for _, s := range oe.stages {
		c += len(s)
	}
	return c
}

// SwitchCount reports comparators on the binary-switch scale.
func (oe *OddEven) SwitchCount() int { return oe.ComparatorCount() }

// Sort returns the keys in ascending order line by line.
func (oe *OddEven) Sort(keys []int) []int {
	if len(keys) != oe.size {
		panic(fmt.Sprintf("batcher: %d keys on %d lines", len(keys), oe.size))
	}
	cur := append([]int(nil), keys...)
	for _, stage := range oe.stages {
		for _, c := range stage {
			if cur[c.Low] > cur[c.High] {
				cur[c.Low], cur[c.High] = cur[c.High], cur[c.Low]
			}
		}
	}
	return cur
}

// Route performs the permutation d by sorting destination tags.
func (oe *OddEven) Route(d perm.Perm) perm.Perm {
	if len(d) != oe.size {
		panic(fmt.Sprintf("batcher: permutation length %d != N %d", len(d), oe.size))
	}
	type sig struct{ tag, src int }
	cur := make([]sig, oe.size)
	for i, t := range d {
		cur[i] = sig{tag: t, src: i}
	}
	for _, stage := range oe.stages {
		for _, c := range stage {
			if cur[c.Low].tag > cur[c.High].tag {
				cur[c.Low], cur[c.High] = cur[c.High], cur[c.Low]
			}
		}
	}
	realized := make(perm.Perm, oe.size)
	for y, s := range cur {
		realized[s.src] = y
	}
	return realized
}

// Realizes reports whether routing-by-sorting performs d; true for
// every valid permutation.
func (oe *OddEven) Realizes(d perm.Perm) bool {
	if !d.Valid() {
		return false
	}
	return oe.Route(d).Equal(d)
}
