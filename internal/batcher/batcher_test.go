package batcher

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/perm"
)

func TestCounts(t *testing.T) {
	for n := 1; n <= 8; n++ {
		b := New(n)
		N := 1 << uint(n)
		if b.N() != N {
			t.Fatalf("n=%d: N=%d", n, b.N())
		}
		if b.Stages() != n*(n+1)/2 {
			t.Errorf("n=%d: stages=%d, want %d", n, b.Stages(), n*(n+1)/2)
		}
		if b.ComparatorCount() != N/2*n*(n+1)/2 {
			t.Errorf("n=%d: comparators=%d, want %d", n, b.ComparatorCount(), N/2*n*(n+1)/2)
		}
	}
}

func TestSortRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(9)
		N := 1 << uint(n)
		b := New(n)
		keys := make([]int, N)
		for i := range keys {
			keys[i] = rng.Intn(100)
		}
		got := b.Sort(keys)
		want := append([]int(nil), keys...)
		sort.Ints(want)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: sort mismatch at %d: %v vs %v", n, i, got, want)
			}
		}
	}
}

func TestSortAllZeroOne(t *testing.T) {
	// The 0-1 principle: a comparator network sorts all inputs iff it
	// sorts all 0-1 sequences. Exhaustively verify every 0-1 vector for
	// n <= 4 — a complete correctness proof for those sizes.
	for n := 1; n <= 4; n++ {
		N := 1 << uint(n)
		b := New(n)
		for mask := 0; mask < 1<<uint(N); mask++ {
			keys := make([]int, N)
			ones := 0
			for i := range keys {
				keys[i] = (mask >> uint(i)) & 1
				ones += keys[i]
			}
			out := b.Sort(keys)
			for i, v := range out {
				want := 0
				if i >= N-ones {
					want = 1
				}
				if v != want {
					t.Fatalf("n=%d mask=%b: 0-1 principle violated at %d: %v", n, mask, i, out)
				}
			}
		}
	}
}

// TestRoutesAllPermutations: routing by sorting realizes every
// permutation — exhaustive for N=4, N=8.
func TestRoutesAllPermutations(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		b := New(n)
		perm.ForEach(1<<uint(n), func(p perm.Perm) bool {
			if !b.Realizes(p) {
				t.Fatalf("n=%d: bitonic route failed on %v", n, p.Clone())
			}
			return true
		})
	}
}

func TestRoutesFig5Witness(t *testing.T) {
	// The permutation the self-routing Benes network cannot do.
	b := New(2)
	if !b.Realizes(perm.Perm{1, 3, 2, 0}) {
		t.Fatal("bitonic network must route (1,3,2,0)")
	}
}

func TestRouteRandomLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	b := New(10)
	for trial := 0; trial < 20; trial++ {
		p := perm.Random(1024, rng)
		if !b.Realizes(p) {
			t.Fatal("bitonic route failed on random permutation")
		}
	}
}

func TestPermute(t *testing.T) {
	b := New(2)
	out := Permute(b, perm.Perm{1, 3, 2, 0}, []string{"a", "b", "c", "d"})
	want := []string{"d", "a", "c", "b"}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("Permute = %v, want %v", out, want)
		}
	}
}

func TestRealizesRejectsInvalid(t *testing.T) {
	b := New(2)
	if b.Realizes(perm.Perm{0, 0, 1, 1}) {
		t.Fatal("non-permutation accepted")
	}
}

func TestComparatorsWellFormed(t *testing.T) {
	b := New(6)
	for s, stage := range b.stages {
		used := make(map[int]bool)
		for _, c := range stage {
			if c.Low == c.High {
				t.Fatalf("stage %d: degenerate comparator", s)
			}
			if used[c.Low] || used[c.High] {
				t.Fatalf("stage %d: line used twice", s)
			}
			used[c.Low], used[c.High] = true, true
		}
		if len(stage) != b.N()/2 {
			t.Fatalf("stage %d has %d comparators, want %d", s, len(stage), b.N()/2)
		}
	}
}
