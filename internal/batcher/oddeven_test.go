package batcher

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/perm"
)

func TestOddEvenCounts(t *testing.T) {
	for n := 1; n <= 10; n++ {
		oe := NewOddEven(n)
		if oe.Stages() != n*(n+1)/2 {
			t.Errorf("n=%d: depth %d, want %d", n, oe.Stages(), n*(n+1)/2)
		}
		want := (n*n-n+4)*(1<<uint(n))/4 - 1
		if oe.ComparatorCount() != want {
			t.Errorf("n=%d: comparators %d, want %d", n, oe.ComparatorCount(), want)
		}
		// Strictly cheaper than the bitonic sorter from n >= 2.
		if n >= 2 && oe.ComparatorCount() >= New(n).ComparatorCount() {
			t.Errorf("n=%d: odd-even (%d) not cheaper than bitonic (%d)",
				n, oe.ComparatorCount(), New(n).ComparatorCount())
		}
	}
}

func TestOddEvenZeroOnePrinciple(t *testing.T) {
	// Exhaustive 0-1 proof of sorting correctness for n <= 4.
	for n := 1; n <= 4; n++ {
		N := 1 << uint(n)
		oe := NewOddEven(n)
		for mask := 0; mask < 1<<uint(N); mask++ {
			keys := make([]int, N)
			ones := 0
			for i := range keys {
				keys[i] = (mask >> uint(i)) & 1
				ones += keys[i]
			}
			out := oe.Sort(keys)
			for i, v := range out {
				want := 0
				if i >= N-ones {
					want = 1
				}
				if v != want {
					t.Fatalf("n=%d mask=%b: not sorted: %v", n, mask, out)
				}
			}
		}
	}
}

func TestOddEvenSortRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(9)
		N := 1 << uint(n)
		oe := NewOddEven(n)
		keys := make([]int, N)
		for i := range keys {
			keys[i] = rng.Intn(1000)
		}
		got := oe.Sort(keys)
		want := append([]int(nil), keys...)
		sort.Ints(want)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: sort mismatch", n)
			}
		}
	}
}

func TestOddEvenRoutesAllPermutations(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		oe := NewOddEven(n)
		perm.ForEach(1<<uint(n), func(p perm.Perm) bool {
			if !oe.Realizes(p) {
				t.Fatalf("n=%d: odd-even route failed on %v", n, p.Clone())
			}
			return true
		})
	}
	rng := rand.New(rand.NewSource(302))
	oe := NewOddEven(9)
	for trial := 0; trial < 20; trial++ {
		if !oe.Realizes(perm.Random(512, rng)) {
			t.Fatal("odd-even route failed on random permutation")
		}
	}
}

func TestOddEvenStagesWellFormed(t *testing.T) {
	oe := NewOddEven(6)
	for s, stage := range oe.stages {
		used := make(map[int]bool)
		for _, c := range stage {
			if c.Low >= c.High || c.Low < 0 || c.High >= oe.N() {
				t.Fatalf("stage %d: bad comparator %+v", s, c)
			}
			if used[c.Low] || used[c.High] {
				t.Fatalf("stage %d: line used twice", s)
			}
			used[c.Low], used[c.High] = true, true
		}
	}
}
