// Package batcher implements Batcher's bitonic sorting network, the
// self-routing-but-expensive baseline of the paper's Section I: it
// realizes all N! permutations with no setup at all (routing by sorting
// on destination tags) but pays O(log^2 N) delay and O(N log^2 N)
// comparators, versus the self-routing Benes network's O(log N) delay
// and O(N log N) switches for the class F.
package batcher

import (
	"fmt"

	"repro/internal/perm"
)

// Comparator is one compare-exchange element: it orders the values on
// lines Low and High so the smaller key ends up on Low.
type Comparator struct {
	Low, High int
}

// Network is a bitonic sorting network on N = 2^n lines, built as
// log N merge phases; phase p (1-based) consists of p compare-exchange
// stages, for n(n+1)/2 stages total.
type Network struct {
	n      int
	size   int
	stages [][]Comparator
}

// New constructs the bitonic sorter for 2^n lines.
func New(n int) *Network {
	if n < 1 {
		panic("batcher: New requires n >= 1")
	}
	b := &Network{n: n, size: 1 << uint(n)}
	// Standard iterative bitonic construction: k is the merge size,
	// j the comparison distance.
	for k := 2; k <= b.size; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			var stage []Comparator
			for i := 0; i < b.size; i++ {
				l := i ^ j
				if l <= i {
					continue
				}
				// Ascending iff the k-block containing i has even index.
				if i&k == 0 {
					stage = append(stage, Comparator{Low: i, High: l})
				} else {
					stage = append(stage, Comparator{Low: l, High: i})
				}
			}
			b.stages = append(b.stages, stage)
		}
	}
	return b
}

// N returns the number of lines.
func (b *Network) N() int { return b.size }

// LogN returns n.
func (b *Network) LogN() int { return b.n }

// Stages returns the number of compare-exchange stages, n(n+1)/2.
func (b *Network) Stages() int { return len(b.stages) }

// ComparatorCount returns the total number of comparators,
// N/2 * n(n+1)/2.
func (b *Network) ComparatorCount() int {
	c := 0
	for _, s := range b.stages {
		c += len(s)
	}
	return c
}

// GateDelay returns the delay in comparator traversals, n(n+1)/2.
func (b *Network) GateDelay() int { return len(b.stages) }

// SwitchCount reports the comparator count on the binary-switch scale
// used by the paper's comparisons (a comparator is a two-state switch
// plus a key comparison).
func (b *Network) SwitchCount() int { return b.ComparatorCount() }

// Sort sorts keys in place-order: it returns a slice holding the input
// indices in ascending key order... concretely out[y] is the key that
// ends on line y. Ties keep an arbitrary order (bitonic sorting is not
// stable).
func (b *Network) Sort(keys []int) []int {
	if len(keys) != b.size {
		panic(fmt.Sprintf("batcher: %d keys on %d lines", len(keys), b.size))
	}
	cur := append([]int(nil), keys...)
	for _, stage := range b.stages {
		for _, c := range stage {
			if cur[c.Low] > cur[c.High] {
				cur[c.Low], cur[c.High] = cur[c.High], cur[c.Low]
			}
		}
	}
	return cur
}

// Route performs the permutation d by sorting destination tags: each
// line carries (tag, source), comparators order by tag, and after
// n(n+1)/2 stages line y holds tag y. Returns the realized mapping,
// which for a valid permutation is always d itself — the network is
// self-routing for all N! permutations.
func (b *Network) Route(d perm.Perm) perm.Perm {
	if len(d) != b.size {
		panic(fmt.Sprintf("batcher: permutation length %d != N %d", len(d), b.size))
	}
	type sig struct{ tag, src int }
	cur := make([]sig, b.size)
	for i, t := range d {
		cur[i] = sig{tag: t, src: i}
	}
	for _, stage := range b.stages {
		for _, c := range stage {
			if cur[c.Low].tag > cur[c.High].tag {
				cur[c.Low], cur[c.High] = cur[c.High], cur[c.Low]
			}
		}
	}
	realized := make(perm.Perm, b.size)
	for y, s := range cur {
		realized[s.src] = y
	}
	return realized
}

// Realizes reports whether routing-by-sorting performs d; true for every
// valid permutation.
func (b *Network) Realizes(d perm.Perm) bool {
	if !d.Valid() {
		return false
	}
	return b.Route(d).Equal(d)
}

// Permute moves data through the network under d.
func Permute[T any](b *Network, d perm.Perm, data []T) []T {
	return perm.Apply(b.Route(d), data)
}
