package engine

import (
	"encoding/json"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/perm"
)

func mkPlan(d perm.Perm) *Plan {
	return &Plan{Kind: PlanLooped, Dest: d.Clone(), key: hashPerm(d)}
}

// TestCacheEvictionLRU fills a single-shard cache past capacity and
// checks that exactly the least recently used plans are displaced.
func TestCacheEvictionLRU(t *testing.T) {
	var ev, col obs.Counter
	c := newPlanCache(4, 1, &ev, &col)
	perms := make([]perm.Perm, 6)
	for i := range perms {
		p := perm.Identity(8)
		p[0], p[i+1] = p[i+1], p[0] // six distinct transpositions
		perms[i] = p
	}
	for _, p := range perms[:4] {
		c.put(mkPlan(p))
	}
	if c.len() != 4 {
		t.Fatalf("cache should hold 4 plans, has %d", c.len())
	}
	// Touch perms[0] so it becomes most recently used, then overflow by
	// two: the untouched perms[1] and perms[2] must go.
	if c.get(hashPerm(perms[0]), perms[0]) == nil {
		t.Fatal("perms[0] should be cached")
	}
	c.put(mkPlan(perms[4]))
	c.put(mkPlan(perms[5]))
	if got := ev.Value(); got != 2 {
		t.Fatalf("want 2 evictions, got %d", got)
	}
	if c.len() != 4 {
		t.Fatalf("cache should stay at capacity 4, has %d", c.len())
	}
	for i, want := range []bool{true, false, false, true, true, true} {
		got := c.get(hashPerm(perms[i]), perms[i]) != nil
		if got != want {
			t.Fatalf("perms[%d] cached = %v, want %v", i, got, want)
		}
	}
}

// TestCacheCollision simulates a 64-bit hash collision: a lookup whose
// key matches but whose permutation differs must read as a miss, and a
// put under the same key must replace, not corrupt.
func TestCacheCollision(t *testing.T) {
	var ev, col obs.Counter
	c := newPlanCache(8, 1, &ev, &col)
	d1 := perm.Identity(8)
	d2 := perm.BitReversal(3)
	key := hashPerm(d1)
	c.put(&Plan{Kind: PlanSelfRouted, Dest: d1, key: key})
	if c.get(key, d2) != nil {
		t.Fatal("colliding key with different permutation must miss")
	}
	if col.Value() != 1 {
		t.Fatalf("collision miss must be counted, got %d", col.Value())
	}
	// Overwriting under the same key keeps exactly one entry.
	c.put(&Plan{Kind: PlanLooped, Dest: d2, key: key})
	if c.len() != 1 {
		t.Fatalf("replacement should keep one entry, have %d", c.len())
	}
	if pl := c.get(key, d2); pl == nil || pl.Kind != PlanLooped {
		t.Fatal("replacement plan should now be served")
	}
	if c.get(key, d1) != nil {
		t.Fatal("displaced colliding plan must miss")
	}
	if col.Value() != 2 {
		t.Fatalf("both collision misses must be counted, got %d", col.Value())
	}
}

// TestEvictionsSurfacedUnderChurn routes more distinct permutations
// than the cache holds and checks that the displaced plans show up as
// evictions in the public metrics snapshot.
func TestEvictionsSurfacedUnderChurn(t *testing.T) {
	eng, err := New[int](Config{LogN: 3, CacheCapacity: 4, CacheShards: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 32; i++ {
		if resp := eng.Route(perm.Random(8, rng), payload(8)); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	s := eng.Stats()
	if s.Evictions == 0 {
		t.Fatalf("churn past capacity must surface evictions: %+v", s)
	}
	if s.PlansCached > 4 {
		t.Fatalf("cache exceeded capacity: %d plans", s.PlansCached)
	}
	if s.Evictions != eng.Metrics().Evictions() {
		t.Fatal("snapshot and accessor disagree on evictions")
	}
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"evictions", "collision_misses"} {
		if _, ok := decoded[field]; !ok {
			t.Fatalf("snapshot JSON missing %q: %s", field, raw)
		}
	}
}

// TestCacheSharding checks shard rounding and that capacity is spread
// across shards.
func TestCacheSharding(t *testing.T) {
	var ev, col obs.Counter
	c := newPlanCache(16, 3, &ev, &col) // shards round up to 4
	if len(c.shards) != 4 {
		t.Fatalf("3 shards should round to 4, got %d", len(c.shards))
	}
	for i := range c.shards {
		if c.shards[i].cap != 4 {
			t.Fatalf("per-shard capacity should be 4, got %d", c.shards[i].cap)
		}
	}
	if c := newPlanCache(0, 0, &ev, &col); len(c.shards) != 1 || c.shards[0].cap != 1 {
		t.Fatal("degenerate config should clamp to one single-entry shard")
	}
}

// TestCacheConcurrent hammers get/put from many goroutines; run under
// -race it checks the locking discipline.
func TestCacheConcurrent(t *testing.T) {
	var ev, col obs.Counter
	c := newPlanCache(32, 8, &ev, &col)
	rng := rand.New(rand.NewSource(3))
	pool := make([]perm.Perm, 64)
	for i := range pool {
		pool[i] = perm.Random(16, rng)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				d := pool[rng.Intn(len(pool))]
				key := hashPerm(d)
				if pl := c.get(key, d); pl == nil {
					c.put(mkPlan(d))
				} else if !pl.Dest.Equal(d) {
					t.Error("cache returned a plan for the wrong permutation")
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if c.len() > 64 {
		t.Fatalf("cache exceeded capacity headroom: %d", c.len())
	}
}

// TestHashPerm sanity-checks the key function: equal perms hash equal,
// near-misses hash differently.
func TestHashPerm(t *testing.T) {
	d := perm.BitReversal(4)
	if hashPerm(d) != hashPerm(d.Clone()) {
		t.Fatal("equal permutations must hash equal")
	}
	e := d.Clone()
	e[0], e[15] = e[15], e[0]
	if hashPerm(d) == hashPerm(e) {
		t.Fatal("swapping two destinations should change the hash")
	}
	if hashPerm(perm.Identity(4)) == hashPerm(perm.Identity(8)) {
		t.Fatal("different lengths should change the hash")
	}
}
