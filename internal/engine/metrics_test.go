package engine

import (
	"encoding/json"
	"testing"
	"time"
)

// TestHistogram checks bucketing, quantile monotonicity, and the mean.
func TestHistogram(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Nanosecond) // bucket [64,128)
	}
	for i := 0; i < 9; i++ {
		h.Observe(10 * time.Microsecond)
	}
	h.Observe(5 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if s.P50Ns > s.P90Ns || s.P90Ns > s.P99Ns {
		t.Fatalf("quantiles must be monotone: %d %d %d", s.P50Ns, s.P90Ns, s.P99Ns)
	}
	if s.P50Ns != 128 {
		t.Fatalf("p50 should be the 100ns bucket's upper bound 128, got %d", s.P50Ns)
	}
	if s.P99Ns < 5_000_000 {
		t.Fatalf("p99 should reach the 5ms observation, got %d", s.P99Ns)
	}
	wantMean := (90*100 + 9*10_000 + 5_000_000) / 100
	if s.MeanNs != int64(wantMean) {
		t.Fatalf("mean = %d, want %d", s.MeanNs, wantMean)
	}
	if len(s.Buckets) != 3 {
		t.Fatalf("want 3 non-empty buckets, got %v", s.Buckets)
	}
}

// TestHistogramEdges covers zero, negative, and overflowing durations.
func TestHistogramEdges(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-time.Second) // clamped to 0
	h.Observe(1 << 62)      // beyond the last bucket bound
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
	if s.Buckets[0].UpToNs != 0 || s.Buckets[0].Count != 2 {
		t.Fatalf("zero bucket wrong: %+v", s.Buckets)
	}
}

// TestSnapshotJSON checks the expvar-style export is valid JSON with
// the advertised fields.
func TestSnapshotJSON(t *testing.T) {
	eng, err := New[int](Config{LogN: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	d := []int{1, 0, 3, 2, 5, 4, 7, 6}
	eng.Route(d, payload(8))
	eng.Route(d, payload(8))

	raw := eng.Metrics().Var().String() // expvar.Func renders JSON
	var decoded map[string]any
	if err := json.Unmarshal([]byte(raw), &decoded); err != nil {
		t.Fatalf("expvar output is not JSON: %v\n%s", err, raw)
	}
	for _, field := range []string{"requests", "hits", "misses", "fallbacks", "queue_depth", "wait", "plan", "apply"} {
		if _, ok := decoded[field]; !ok {
			t.Fatalf("snapshot JSON missing %q: %s", field, raw)
		}
	}

	s := eng.Stats()
	if s.Requests != 2 || s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("unexpected counters: %+v", s)
	}
	if s.PlansCached != 1 {
		t.Fatalf("one plan should be cached, got %d", s.PlansCached)
	}
	if s.Wait.Count != 2 || s.Plan.Count != 2 || s.Apply.Count != 2 {
		t.Fatalf("per-stage histograms should see both requests: %+v", s)
	}
}
