package engine

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/perm"
)

// The acceptance benchmark: at N=1024, a warm cache hit must beat the
// per-call Setup+route baseline by at least 5x. Run with
//
//	go test -bench=BenchmarkCache -benchtime=100x ./internal/engine
const benchLogN = 10 // N = 1024

func benchPayload(n int) []int {
	data := make([]int, n)
	for i := range data {
		data[i] = i
	}
	return data
}

// BenchmarkCacheBaselinePerCallSetup is the no-engine baseline every
// request pays without a plan cache: looping Setup, gate-level route,
// payload application.
func BenchmarkCacheBaselinePerCallSetup(b *testing.B) {
	net := core.New(benchLogN)
	d := perm.Random(1<<benchLogN, rand.New(rand.NewSource(1)))
	data := benchPayload(1 << benchLogN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := net.Setup(d)
		res := net.ExternalRoute(d, st)
		if perm.Apply(res.Realized, data)[d[0]] != 0 {
			b.Fatal("misroute")
		}
	}
}

// BenchmarkCacheCold forces a miss on every request by cycling far more
// distinct permutations than the cache holds.
func BenchmarkCacheCold(b *testing.B) {
	eng, err := New[int](Config{LogN: benchLogN, CacheCapacity: 16})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	rng := rand.New(rand.NewSource(2))
	perms := make([]perm.Perm, 128)
	for i := range perms {
		perms[i] = perm.Random(1<<benchLogN, rng)
	}
	data := benchPayload(1 << benchLogN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if resp := eng.Route(perms[i%len(perms)], data); resp.Err != nil {
			b.Fatal(resp.Err)
		}
	}
	b.StopTimer()
	reportHitRate(b, eng)
}

// BenchmarkCacheWarm serves one permutation repeatedly: after the first
// miss, every request replays the cached plan.
func BenchmarkCacheWarm(b *testing.B) {
	eng, err := New[int](Config{LogN: benchLogN})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	d := perm.Random(1<<benchLogN, rand.New(rand.NewSource(3)))
	data := benchPayload(1 << benchLogN)
	eng.Route(d, data) // prime
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if resp := eng.Route(d, data); resp.Err != nil {
			b.Fatal(resp.Err)
		}
	}
	b.StopTimer()
	reportHitRate(b, eng)
}

// BenchmarkCacheWarmReplay is the warm path under full gate-level
// replay (Config.ReplayStates): it still skips Setup, but pays the
// stage-by-stage traversal.
func BenchmarkCacheWarmReplay(b *testing.B) {
	eng, err := New[int](Config{LogN: benchLogN, ReplayStates: true})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	d := perm.Random(1<<benchLogN, rand.New(rand.NewSource(3)))
	data := benchPayload(1 << benchLogN)
	eng.Route(d, data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if resp := eng.Route(d, data); resp.Err != nil {
			b.Fatal(resp.Err)
		}
	}
	b.StopTimer()
	reportHitRate(b, eng)
}

// BenchmarkWorkers sweeps the worker pool from 1 to GOMAXPROCS under a
// mixed warm workload submitted in flights, measuring batch throughput.
func BenchmarkWorkers(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	perms := make([]perm.Perm, 32)
	for i := range perms {
		perms[i] = perm.Random(1<<benchLogN, rng)
	}
	data := benchPayload(1 << benchLogN)
	const flight = 256
	for w := 1; w <= runtime.GOMAXPROCS(0); w *= 2 {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			eng, err := New[int](Config{LogN: benchLogN, Workers: w, QueueDepth: flight})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			reqs := make([]Request[int], flight)
			for i := range reqs {
				reqs[i] = Request[int]{Dest: perms[i%len(perms)], Data: data}
			}
			eng.RouteBatch(reqs) // warm all plans
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, resp := range eng.RouteBatch(reqs) {
					if resp.Err != nil {
						b.Fatal(resp.Err)
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(flight), "vectors/op")
		})
	}
}

func reportHitRate(b *testing.B, eng *Engine[int]) {
	b.Helper()
	s := eng.Stats()
	b.ReportMetric(s.HitRate, "hit-rate")
}
