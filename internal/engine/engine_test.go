package engine

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/perm"
)

// payload returns the canonical test payload 0..N-1, so routed output
// position Dest[i] must hold value i.
func payload(n int) []int {
	data := make([]int, n)
	for i := range data {
		data[i] = i
	}
	return data
}

// checkRouted verifies that resp delivered payload(N) according to d.
func checkRouted(t *testing.T, d perm.Perm, resp Response[int]) {
	t.Helper()
	if resp.Err != nil {
		t.Fatalf("route %v: unexpected error %v", d, resp.Err)
	}
	want := perm.Apply(d, payload(len(d)))
	if len(resp.Data) != len(want) {
		t.Fatalf("route %v: got %d elements, want %d", d, len(resp.Data), len(want))
	}
	for i := range want {
		if resp.Data[i] != want[i] {
			t.Fatalf("route %v: output %d = %d, want %d (full: %v)", d, i, resp.Data[i], want[i], resp.Data)
		}
	}
}

// TestExhaustiveN8 routes every permutation of N=8 through the engine
// and checks (a) the payload lands exactly where perm.Apply says, and
// (b) the plan kind agrees with the Theorem 1 characterization of F(n).
// A deliberately tiny cache forces constant eviction churn.
func TestExhaustiveN8(t *testing.T) {
	eng, err := New[int](Config{LogN: 3, Workers: 2, CacheCapacity: 8, CacheShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	data := payload(8)
	perm.ForEach(8, func(p perm.Perm) bool {
		d := p.Clone() // ForEach reuses the slice
		resp := eng.Route(d, data)
		checkRouted(t, d, resp)
		wantKind := PlanLooped
		if perm.InF(d) {
			wantKind = PlanSelfRouted
		}
		if resp.Kind != wantKind {
			t.Fatalf("route %v: plan kind %v, want %v", d, resp.Kind, wantKind)
		}
		return true
	})
	s := eng.Stats()
	if s.Misses == 0 || s.Fallbacks == 0 {
		t.Fatalf("expected misses and fallbacks over all of S_8, got %+v", s)
	}
	if s.Evictions == 0 {
		t.Fatalf("capacity-8 cache over 40320 perms must evict, got %+v", s)
	}
}

// TestRandomizedN256 routes random permutations (mostly outside F) and
// structured F members at N=256, each twice, comparing the fast path,
// the states-replay path, and direct application.
func TestRandomizedN256(t *testing.T) {
	const n = 8 // N = 256
	rng := rand.New(rand.NewSource(42))
	fast, err := New[int](Config{LogN: n})
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	replay, err := New[int](Config{LogN: n, ReplayStates: true})
	if err != nil {
		t.Fatal(err)
	}
	defer replay.Close()

	var cases []perm.Perm
	for i := 0; i < 60; i++ {
		cases = append(cases, perm.Random(256, rng))
	}
	for i := 0; i < 30; i++ {
		cases = append(cases, perm.RandomF(n, rng))
		cases = append(cases, perm.RandomBPC(n, rng).Perm())
	}
	cases = append(cases, perm.Identity(256), perm.BitReversal(n))

	data := payload(256)
	for round := 0; round < 2; round++ {
		for _, d := range cases {
			r1 := fast.Route(d, data)
			checkRouted(t, d, r1)
			r2 := replay.Route(d, data)
			checkRouted(t, d, r2)
			if r1.Kind != r2.Kind {
				t.Fatalf("fast/replay disagree on plan kind for %v: %v vs %v", d, r1.Kind, r2.Kind)
			}
			if round == 1 && !r1.CacheHit {
				t.Fatalf("second round must hit the cache for %v", d)
			}
		}
	}
	s := fast.Stats()
	if s.Hits == 0 || s.Misses == 0 {
		t.Fatalf("expected both hits and misses, got %+v", s)
	}
	if s.HitRate <= 0 || s.HitRate >= 1 {
		t.Fatalf("hit rate should be in (0,1), got %v", s.HitRate)
	}
}

// TestConcurrentHitMiss hammers one shared engine from many goroutines
// over a small permutation pool with an undersized cache, so hits,
// misses, and evictions race. Run under -race this is the cache's
// concurrency test.
func TestConcurrentHitMiss(t *testing.T) {
	const n = 5 // N = 32
	rng := rand.New(rand.NewSource(7))
	pool := make([]perm.Perm, 48)
	for i := range pool {
		if i%2 == 0 {
			pool[i] = perm.Random(32, rng)
		} else {
			pool[i] = perm.RandomF(n, rng)
		}
	}
	eng, err := New[int](Config{LogN: n, CacheCapacity: 16, CacheShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	workers := 2 * runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			data := payload(32)
			for i := 0; i < 300; i++ {
				d := pool[rng.Intn(len(pool))]
				resp := eng.Route(d, data)
				if resp.Err != nil {
					errs <- resp.Err
					return
				}
				for j, v := range perm.Apply(d, data) {
					if resp.Data[j] != v {
						t.Errorf("goroutine %d: wrong routing for %v", seed, d)
						return
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	s := eng.Stats()
	if s.Hits == 0 || s.Misses == 0 || s.Evictions == 0 {
		t.Fatalf("expected hits, misses and evictions under churn, got %+v", s)
	}
	if s.QueueDepth != 0 {
		t.Fatalf("queue depth should return to 0 when idle, got %d", s.QueueDepth)
	}
}

// TestBatchGrouping verifies that RouteBatch serves duplicate
// permutations in one batch correctly and reports them as cache hits.
func TestBatchGrouping(t *testing.T) {
	const n = 4
	// One worker with a large MaxBatch makes batching deterministic
	// enough to observe grouping through the metrics.
	eng, err := New[int](Config{LogN: n, Workers: 1, MaxBatch: 64, QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	d := perm.BitReversal(n)
	data := payload(16)
	reqs := make([]Request[int], 32)
	for i := range reqs {
		reqs[i] = Request[int]{Dest: d, Data: data}
	}
	resps := eng.RouteBatch(reqs)
	for _, r := range resps {
		checkRouted(t, d, r)
	}
	s := eng.Stats()
	if s.Misses != 1 {
		t.Fatalf("32 identical requests should compute exactly one plan, got %+v", s)
	}
	if s.Hits != 31 {
		t.Fatalf("31 requests should reuse the plan, got %+v", s)
	}
}

// TestErrors covers the rejection paths: length mismatch, invalid
// permutation, and submission after Close.
func TestErrors(t *testing.T) {
	eng, err := New[int](Config{LogN: 3})
	if err != nil {
		t.Fatal(err)
	}
	if resp := eng.Route(perm.Identity(4), payload(8)); resp.Err == nil {
		t.Fatal("short permutation must be rejected")
	}
	if resp := eng.Route(perm.Identity(8), payload(4)); resp.Err == nil {
		t.Fatal("short payload must be rejected")
	}
	bad := perm.Perm{0, 0, 1, 2, 3, 4, 5, 6} // duplicate destination
	if resp := eng.Route(bad, payload(8)); resp.Err == nil {
		t.Fatal("invalid permutation must be rejected")
	}
	good := eng.Route(perm.Identity(8), payload(8))
	if good.Err != nil {
		t.Fatalf("valid request failed: %v", good.Err)
	}
	eng.Close()
	eng.Close() // idempotent
	if resp := eng.Route(perm.Identity(8), payload(8)); resp.Err != ErrClosed {
		t.Fatalf("after Close want ErrClosed, got %v", resp.Err)
	}
	if _, err := New[int](Config{LogN: 0}); err == nil {
		t.Fatal("LogN=0 must be rejected")
	}
}

// TestSubmitAsync checks the asynchronous API end to end.
func TestSubmitAsync(t *testing.T) {
	eng, err := New[int](Config{LogN: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	d := perm.PerfectShuffle(4)
	ch := eng.Submit(Request[int]{Dest: d, Data: payload(16)})
	checkRouted(t, d, <-ch)
}
