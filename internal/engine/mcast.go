package engine

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/bits"
	"repro/internal/mcast"
	"repro/internal/netsim"
	"repro/internal/perm"
)

// ErrEmptyMapping rejects multicast requests with no assigned outputs.
var ErrEmptyMapping = errors.New("engine: multicast mapping assigns no outputs")

// McastResponse reports one served multicast mapping.
type McastResponse[T any] struct {
	// Data is the fanned-out payload: Data[out] holds the element of
	// the source Mapping[out] requested, the zero value on unassigned
	// outputs. Nil when Err is set.
	Data []T
	// CacheHit is true when the copy-network plan came from the LRU.
	CacheHit bool
	// Plan is the resolved plan (Kind PlanMulticast, Mcast non-nil),
	// exposed so the fabric can fault-check its two B(n) phases.
	Plan *Plan
	Err  error
}

// RouteMulticast serves one fan-out mapping synchronously in the
// caller's goroutine: resolve a copy-network plan (cache first — the
// whole point of keying mappings in the shared LRU is that collective
// rounds repeat them), apply the fan-out to the payload, then verify
// delivery by walking every assigned output backward through the
// three-phase switch program — the multiset check: each output's walk
// must end at exactly the source the mapping requests.
func (e *Engine[T]) RouteMulticast(m mcast.Mapping, data []T) McastResponse[T] {
	if len(m) != e.net.N() || len(data) != e.net.N() {
		e.met.errors.Add(1)
		return McastResponse[T]{Err: fmt.Errorf("engine: multicast size (map %d, data %d) does not match N=%d",
			len(m), len(data), e.net.N())}
	}
	e.mu.RLock()
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		e.met.errors.Add(1)
		return McastResponse[T]{Err: ErrClosed}
	}
	copies := m.Assigned()
	if copies == 0 {
		e.met.errors.Add(1)
		return McastResponse[T]{Err: ErrEmptyMapping}
	}
	e.met.mcasts.Add(1)
	pl, hit, err := e.acquireMulticast(hashMapping(m), m)
	if err != nil {
		e.met.errors.Add(1)
		return McastResponse[T]{Err: err}
	}

	t0 := time.Now()
	if e.cfg.ReplayStates {
		// Full-fidelity mode: evaluate the whole plan gate by gate and
		// insist on exact multiset delivery before touching the payload.
		if res := pl.Mcast.Route(e.net); !res.OK() {
			e.met.errors.Add(1)
			return McastResponse[T]{Err: fmt.Errorf("engine: multicast replay misrouted sources %v", res.Misrouted)}
		}
	}
	out := mcast.Apply(pl.Mcast, data, nil)
	e.met.Apply.Observe(time.Since(t0))

	sh, ladSh := e.rec.Shard(), e.ladRec.Shard() // nil (inert) when accounting is off
	if sh != nil {
		sh.RecordFlips(pl.distMask)
		ladSh.RecordMcastFlips(pl.ladLo, pl.ladHi)
		sh.RecordFlips(pl.permMask)
	}
	if err := e.walkMcastOutputs(sh, ladSh, pl.Mcast, nil); err != nil {
		e.met.errors.Add(1)
		return McastResponse[T]{Err: err}
	}
	e.met.mcastCopies.Add(int64(copies))
	return McastResponse[T]{Data: out, CacheHit: hit, Plan: pl}
}

// PrewarmMulticast resolves and caches the copy-network plan for m
// without moving any payload.
func (e *Engine[T]) PrewarmMulticast(m mcast.Mapping) (bool, error) {
	if len(m) != e.net.N() {
		e.met.errors.Add(1)
		return false, fmt.Errorf("engine: multicast prewarm size %d does not match N=%d", len(m), e.net.N())
	}
	e.met.prewarms.Add(1)
	_, hit, err := e.acquireMulticast(hashMapping(m), m)
	if err != nil {
		e.met.errors.Add(1)
	}
	return hit, err
}

// acquireMulticast resolves the copy-network plan for m, consulting
// the shared LRU first so repeated fan-out patterns skip the two
// looping setups and the ladder compile entirely.
func (e *Engine[T]) acquireMulticast(key uint64, m mcast.Mapping) (*Plan, bool, error) {
	t0 := time.Now()
	defer func() { e.met.Plan.Observe(time.Since(t0)) }()
	if pl := e.cache.getMapping(key, m); pl != nil {
		e.met.hits.Add(1)
		return pl, true, nil
	}
	e.met.misses.Add(1)
	comp := e.mpool.Get().(*mcast.Compiler)
	mp, err := comp.Compile(m)
	distT, copyT := comp.DistTime, comp.CopyTime
	e.mpool.Put(comp)
	if err != nil {
		return nil, false, err
	}
	e.met.McastDist.Observe(distT)
	e.met.McastCopy.Observe(copyT)
	pl := &Plan{Kind: PlanMulticast, Mcast: mp, key: key}
	if e.rec != nil {
		pl.distMask = e.rec.PackStates(mp.DistStates)
		pl.permMask = e.rec.PackStates(mp.PermStates)
		pl.ladLo = make([]uint64, e.ladRec.MaskWords())
		pl.ladHi = make([]uint64, e.ladRec.MaskWords())
		e.ladRec.PackMcastStatesInto(mp.Ladder, pl.ladLo, pl.ladHi)
	}
	e.cache.put(pl)
	return pl, false, nil
}

// walkMcastOutputs walks outputs backward through a compiled plan —
// permute B(n), copy ladder, distribute B(n) — verifying each ends at
// the mapping's requested source and accounting traversals when a
// recorder is attached. outs == nil walks every assigned output.
// Because every assigned output is walked to its unique feeding input,
// success proves the delivered output multiset equals the requested
// fan-out multiset exactly.
func (e *Engine[T]) walkMcastOutputs(sh, ladSh *netsim.RecorderShard, mp *mcast.Plan, outs []int) error {
	net := e.net
	stages, n := net.Stages(), net.LogN()
	walk := func(out int) error {
		src := mp.Map[out]
		if src < 0 {
			return nil
		}
		y := out
		for s := stages - 1; s >= 0; s-- {
			sw := y >> 1
			sh.Traverse(s, sw)
			if mp.PermStates[s][sw] {
				y ^= 1
			}
			if s > 0 {
				y = net.LinkInv(s-1, y)
			}
		}
		for j := n - 1; j >= 0; j-- {
			sw := y >> 1
			ladSh.Traverse(j, sw)
			y = bits.RotRight(mp.Ladder[j][sw].FeedLine(y), n)
		}
		for s := stages - 1; s >= 0; s-- {
			sw := y >> 1
			sh.Traverse(s, sw)
			if mp.DistStates[s][sw] {
				y ^= 1
			}
			if s > 0 {
				y = net.LinkInv(s-1, y)
			}
		}
		if y != src {
			return fmt.Errorf("engine: multicast delivered output %d from input %d, want %d", out, y, src)
		}
		return nil
	}
	if outs == nil {
		for out := range mp.Map {
			if err := walk(out); err != nil {
				return err
			}
		}
		return nil
	}
	for _, out := range outs {
		if err := walk(out); err != nil {
			return err
		}
	}
	return nil
}

// McastFrameServer is FrameServer's sibling for mapping frames: the
// fabric's scheduler builds frames that mix unicast packets with
// multicast head-of-line packets, and the resulting output->source
// assignment is a mapping, not a permutation. Like FrameServer it runs
// in the caller's goroutine, skips the plan cache (completed matchings
// essentially never repeat), reuses one plan's storage across calls,
// and memoizes the one repeat that does happen — a hot flow producing
// the same frame repeatedly.
//
// The two-step Prepare/ServePrepared split exists for the fabric's
// fault check: Prepare compiles the plan and exposes its two B(n)
// permutations, the plane simulates them against its injected faults,
// and only then does ServePrepared commit the accounting and the
// per-output verification walks.
type McastFrameServer[T any] struct {
	e        *Engine[T]
	comp     *mcast.Compiler
	plan     *mcast.Plan
	sh       *netsim.RecorderShard
	ladSh    *netsim.RecorderShard
	distMask []uint64
	permMask []uint64
	ladLo    []uint64
	ladHi    []uint64
	last     mcast.Mapping
	haveLast bool
	prepared bool
}

// NewMcastFrameServer builds a mapping-frame serving context over e
// for one goroutine's exclusive use.
func (e *Engine[T]) NewMcastFrameServer() *McastFrameServer[T] {
	fs := &McastFrameServer[T]{
		e:     e,
		comp:  mcast.NewCompiler(e.net),
		plan:  mcast.NewPlan(e.net),
		sh:    e.rec.Shard(),
		ladSh: e.ladRec.Shard(),
		last:  make(mcast.Mapping, e.net.N()),
	}
	if words := e.rec.MaskWords(); words > 0 {
		fs.distMask = make([]uint64, words)
		fs.permMask = make([]uint64, words)
	}
	if words := e.ladRec.MaskWords(); words > 0 {
		fs.ladLo = make([]uint64, words)
		fs.ladHi = make([]uint64, words)
	}
	return fs
}

// Prepare compiles the mapping frame's copy-network plan into the
// server's reused storage (memoizing consecutive identical mappings)
// without committing any accounting.
func (fs *McastFrameServer[T]) Prepare(m mcast.Mapping) error {
	e := fs.e
	if len(m) != e.net.N() {
		e.met.errors.Add(1)
		fs.prepared = false
		return fmt.Errorf("engine: mapping frame size %d does not match N=%d", len(m), e.net.N())
	}
	t0 := time.Now()
	if !(fs.haveLast && fs.last.Equal(m)) {
		if err := fs.comp.CompileInto(m, fs.plan); err != nil {
			e.met.errors.Add(1)
			fs.haveLast = false
			fs.prepared = false
			return err
		}
		copy(fs.last, m)
		fs.haveLast = true
		e.met.McastDist.Observe(fs.comp.DistTime)
		e.met.McastCopy.Observe(fs.comp.CopyTime)
		if fs.sh != nil {
			e.rec.PackStatesInto(fs.plan.DistStates, fs.distMask)
			e.rec.PackStatesInto(fs.plan.PermStates, fs.permMask)
			e.ladRec.PackMcastStatesInto(fs.plan.Ladder, fs.ladLo, fs.ladHi)
		}
	}
	e.met.Plan.Observe(time.Since(t0))
	fs.prepared = true
	return nil
}

// DistPerm returns the prepared plan's distribute-phase permutation;
// PermPerm the permute-phase one. Valid after a successful Prepare,
// and only until the next Prepare call — the fabric fault-checks them
// between the two steps.
func (fs *McastFrameServer[T]) DistPerm() perm.Perm { return fs.plan.Dist }

// PermPerm returns the prepared plan's permute-phase permutation.
func (fs *McastFrameServer[T]) PermPerm() perm.Perm { return fs.plan.Perm }

// ServePrepared commits the prepared frame: folds the three phase
// settings into the flight recorder and walks each listed output
// backward through the plan, verifying it is fed by exactly the source
// the mapping assigns — the per-frame output-multiset check.
func (fs *McastFrameServer[T]) ServePrepared(outs []int) error {
	e := fs.e
	if !fs.prepared {
		e.met.errors.Add(1)
		return errors.New("engine: ServePrepared without a successful Prepare")
	}
	t0 := time.Now()
	if fs.sh != nil {
		fs.sh.RecordFlips(fs.distMask)
		fs.ladSh.RecordMcastFlips(fs.ladLo, fs.ladHi)
		fs.sh.RecordFlips(fs.permMask)
	}
	err := e.walkMcastOutputs(fs.sh, fs.ladSh, fs.plan, outs)
	e.met.Apply.Observe(time.Since(t0))
	if err != nil {
		e.met.errors.Add(1)
		return err
	}
	e.met.mcastFrames.Add(1)
	e.met.mcastCopies.Add(int64(len(outs)))
	return nil
}
