package engine

import (
	"container/list"
	"sync"

	"repro/internal/core"
	"repro/internal/mcast"
	"repro/internal/obs"
	"repro/internal/perm"
)

// PlanKind records which setup path produced a routing plan.
type PlanKind int

const (
	// PlanSelfRouted marks a plan whose states were decided by the
	// network's own destination-tag logic (the permutation is in F(n),
	// the paper's O(log N) setup-free path).
	PlanSelfRouted PlanKind = iota
	// PlanLooped marks a plan computed by the classic looping algorithm
	// (core.Setup) because the permutation is outside F(n).
	PlanLooped
	// PlanMulticast marks a copy-network plan compiled from a fan-out
	// mapping: distribute B(n), copy ladder, permute B(n).
	PlanMulticast
	// PlanParallel marks a plan computed by the multicore looping setup
	// (internal/psetup) — bit-identical states to PlanLooped, produced
	// by the worker-pool recursion instead of one goroutine.
	PlanParallel
	// PlanSubBlock marks a memoized half-network sub-plan: the canonical
	// setting of one B(n-1) block of a parallel setup, cached so later
	// permutations sharing that half skip its recursion subtree. Never
	// returned for a request — sub-plans exist only for psetup reuse.
	PlanSubBlock
)

func (k PlanKind) String() string {
	switch k {
	case PlanSelfRouted:
		return "self-routed"
	case PlanLooped:
		return "looped"
	case PlanMulticast:
		return "multicast"
	case PlanParallel:
		return "parallel-setup"
	case PlanSubBlock:
		return "sub-block"
	}
	return "unknown"
}

// Plan is a fully resolved switch setting for one permutation. Once
// cached, serving the same permutation again needs neither the looping
// algorithm nor a self-routing pass: the states pin every switch, so
// the data pass is a wire-speed traversal whose end-to-end effect is
// exactly Dest.
type Plan struct {
	Kind   PlanKind
	States core.States // switch setting realizing Dest on B(n)
	Dest   perm.Perm   // the permutation the plan realizes (input i -> Dest[i])
	key    uint64      // hashPerm(Dest) or hashMapping(Map), the cache key
	mask   []uint64    // States packed for the flight recorder; nil when accounting is off

	// Multicast plans (Kind == PlanMulticast) carry the three-phase
	// copy-network program instead of States/Dest, plus its packed
	// recorder masks: the two B(n) phases in the binary mask format and
	// the four-state ladder as a lo/hi pair.
	Mcast              *mcast.Plan
	distMask, permMask []uint64
	ladLo, ladHi       []uint64
}

// hashPerm returns the 64-bit plan-cache key for a destination vector:
// a word-at-a-time FNV-1a variant. Collisions are tolerated — lookups
// always confirm the full permutation — so speed matters more than
// cryptographic strength.
func hashPerm(p perm.Perm) uint64 {
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	for _, d := range p {
		h ^= uint64(d) + 1 // +1 so a leading 0 perturbs the state
		h *= prime64
	}
	return h
}

// hashMapping keys a multicast mapping in the same cache. The offset
// basis differs from hashPerm so a mapping that happens to be a
// permutation does not land on the unicast plan for the same vector
// (the two have different orientations), and entries may be -1.
func hashMapping(m mcast.Mapping) uint64 {
	const offset64 = 14695981039346656037 ^ 0x9e3779b97f4a7c15
	const prime64 = 1099511628211
	h := uint64(offset64)
	for _, d := range m {
		h ^= uint64(d + 2) // -1 maps to 1, sources to src+2
		h *= prime64
	}
	return h
}

// hashSub keys a memoized half-network sub-plan. The offset basis is
// perturbed by the block size so a B(m) sub-permutation never lands on
// the full-network plan for an identical vector, and the size itself is
// folded in so equal-content blocks of different m stay distinct.
func hashSub(m int, dests []int) uint64 {
	const offset64 = 14695981039346656037 ^ 0x6a09e667f3bcc908
	const prime64 = 1099511628211
	h := uint64(offset64) ^ uint64(m)<<32
	for _, d := range dests {
		h ^= uint64(d) + 1
		h *= prime64
	}
	return h
}

// subPlanCache adapts the engine's sharded LRU to psetup.SubPlanCache:
// half-network sub-plans are memoized as PlanSubBlock entries in the
// same cache that holds full routing plans, sharing its capacity,
// recency order, and eviction/collision accounting — the partial-plan
// reuse half of ROADMAP item 2. Hits and misses are tallied on their
// own counters so the books of the serving cache stay separable.
type subPlanCache struct {
	c            *planCache
	hits, misses *obs.Counter
}

func (s *subPlanCache) Get(m int, dests []int) core.States {
	if pl := s.c.get(hashSub(m, dests), perm.Perm(dests)); pl != nil {
		s.hits.Add(1)
		return pl.States
	}
	s.misses.Add(1)
	return nil
}

func (s *subPlanCache) Put(m int, dests []int, st core.States) {
	key := hashSub(m, dests)
	s.c.put(&Plan{Kind: PlanSubBlock, States: st, Dest: perm.Perm(dests).Clone(), key: key})
}

// planCache is a sharded LRU cache of routing plans. Each shard owns an
// independent lock, recency list, and capacity slice, so concurrent
// workers rarely contend on the same mutex.
type planCache struct {
	shards     []cacheShard
	mask       uint64
	evictions  *obs.Counter
	collisions *obs.Counter
}

type cacheShard struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List               // front = most recently used; values are *Plan
	items map[uint64]*list.Element // key -> element in ll
}

// newPlanCache builds a cache holding about `capacity` plans across
// `shards` shards (rounded up to a power of two, each shard holding at
// least one plan). evictions is incremented once per displaced plan;
// collisions once per lookup whose 64-bit key matched a cached plan for
// a different permutation.
func newPlanCache(capacity, shards int, evictions, collisions *obs.Counter) *planCache {
	if capacity < 1 {
		capacity = 1
	}
	if shards < 1 {
		shards = 1
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	perShard := (capacity + n - 1) / n
	c := &planCache{shards: make([]cacheShard, n), mask: uint64(n - 1), evictions: evictions, collisions: collisions}
	for i := range c.shards {
		c.shards[i].cap = perShard
		c.shards[i].ll = list.New()
		c.shards[i].items = make(map[uint64]*list.Element, perShard)
	}
	return c
}

// get returns the cached plan for d, or nil on a miss. The stored
// permutation is compared in full, so a hash collision reads as a miss
// rather than a wrong answer.
func (c *planCache) get(key uint64, d perm.Perm) *Plan {
	sh := &c.shards[key&c.mask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.items[key]
	if !ok {
		return nil
	}
	pl := e.Value.(*Plan)
	if pl.Mcast != nil || !pl.Dest.Equal(d) {
		if c.collisions != nil {
			c.collisions.Add(1)
		}
		return nil
	}
	sh.ll.MoveToFront(e)
	return pl
}

// getMapping is get for multicast plans: the stored mapping is
// compared in full, and a unicast plan under the same key reads as a
// collision miss.
func (c *planCache) getMapping(key uint64, m mcast.Mapping) *Plan {
	sh := &c.shards[key&c.mask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.items[key]
	if !ok {
		return nil
	}
	pl := e.Value.(*Plan)
	if pl.Mcast == nil || !pl.Mcast.Map.Equal(m) {
		if c.collisions != nil {
			c.collisions.Add(1)
		}
		return nil
	}
	sh.ll.MoveToFront(e)
	return pl
}

// put inserts (or replaces) a plan and evicts the shard's least
// recently used entry when over capacity.
func (c *planCache) put(pl *Plan) {
	sh := &c.shards[pl.key&c.mask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.items[pl.key]; ok {
		e.Value = pl
		sh.ll.MoveToFront(e)
		return
	}
	sh.items[pl.key] = sh.ll.PushFront(pl)
	for sh.ll.Len() > sh.cap {
		oldest := sh.ll.Back()
		sh.ll.Remove(oldest)
		delete(sh.items, oldest.Value.(*Plan).key)
		if c.evictions != nil {
			c.evictions.Add(1)
		}
	}
}

// len returns the number of plans currently cached across all shards.
func (c *planCache) len() int {
	total := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		total += sh.ll.Len()
		sh.mu.Unlock()
	}
	return total
}
