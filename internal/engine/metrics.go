package engine

import (
	"expvar"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two latency buckets. Bucket i
// counts observations with bits.Len64(ns) == i, i.e. durations in
// [2^(i-1), 2^i) nanoseconds; the last bucket absorbs everything longer
// (> ~9 minutes).
const histBuckets = 40

// Histogram is a fixed-allocation, lock-free latency histogram with
// power-of-two nanosecond buckets. The zero value is ready to use and
// all methods are safe for concurrent use.
type Histogram struct {
	count   atomic.Int64
	sumNs   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	idx := bits.Len64(uint64(ns))
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	h.count.Add(1)
	h.sumNs.Add(ns)
	h.buckets[idx].Add(1)
}

// BucketCount is one non-empty histogram bucket: Count observations at
// or below UpToNs nanoseconds (and above the previous bucket's bound).
type BucketCount struct {
	UpToNs int64 `json:"up_to_ns"`
	Count  int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time, JSON-friendly view of a
// Histogram. Quantiles are upper bounds of the containing bucket, so
// they are conservative to within a factor of two.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	MeanNs  int64         `json:"mean_ns"`
	P50Ns   int64         `json:"p50_ns"`
	P90Ns   int64         `json:"p90_ns"`
	P99Ns   int64         `json:"p99_ns"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot captures the histogram's current state. Concurrent Observe
// calls may straddle the capture; each bucket is read atomically.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var counts [histBuckets]int64
	total := int64(0)
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := HistogramSnapshot{Count: total}
	if total == 0 {
		return s
	}
	s.MeanNs = h.sumNs.Load() / total
	s.P50Ns = quantile(&counts, total, 0.50)
	s.P90Ns = quantile(&counts, total, 0.90)
	s.P99Ns = quantile(&counts, total, 0.99)
	for i, c := range counts {
		if c > 0 {
			s.Buckets = append(s.Buckets, BucketCount{UpToNs: bucketUpper(i), Count: c})
		}
	}
	return s
}

// bucketUpper returns the exclusive upper bound (in ns) of bucket i.
func bucketUpper(i int) int64 {
	if i == 0 {
		return 0 // bucket 0 holds only zero-duration observations
	}
	return 1 << uint(i)
}

// quantile returns the upper bound of the bucket containing the q-th
// quantile observation.
func quantile(counts *[histBuckets]int64, total int64, q float64) int64 {
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	cum := int64(0)
	for i, c := range counts {
		cum += c
		if cum > rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(histBuckets - 1)
}

// Metrics aggregates everything observable about a running engine:
// plan-cache traffic, per-stage latency, and instantaneous queue depth.
// All fields are updated atomically; a Metrics value must not be
// copied.
type Metrics struct {
	requests   atomic.Int64 // vectors accepted by Submit
	batches    atomic.Int64 // worker batches served
	hits       atomic.Int64 // plan served from cache (or reused within a batch)
	misses     atomic.Int64 // plan had to be computed
	fallbacks  atomic.Int64 // misses outside F(n) that ran the looping algorithm
	errors     atomic.Int64 // requests rejected (bad length, invalid permutation, closed)
	evictions  atomic.Int64 // plans displaced from the LRU cache
	collisions atomic.Int64 // lookups whose hash matched a plan for a different permutation
	prewarms   atomic.Int64 // plans resolved ahead of traffic via Prewarm
	queueDepth atomic.Int64 // requests submitted but not yet picked up by a worker

	// Per-stage latency histograms.
	Wait  Histogram // submit -> worker pickup
	Plan  Histogram // plan acquisition (cache lookup, plus setup on a miss)
	Apply Histogram // payload application (or states replay)
}

// Hits returns the number of requests whose plan came from the cache.
func (m *Metrics) Hits() int64 { return m.hits.Load() }

// Misses returns the number of requests that computed a fresh plan.
func (m *Metrics) Misses() int64 { return m.misses.Load() }

// Fallbacks returns the number of misses that needed the looping
// algorithm because the permutation is outside F(n).
func (m *Metrics) Fallbacks() int64 { return m.fallbacks.Load() }

// Evictions returns the number of plans displaced from the cache.
func (m *Metrics) Evictions() int64 { return m.evictions.Load() }

// CollisionMisses returns the number of cache lookups that found a plan
// under the same 64-bit key but for a different permutation — misses
// forced by hash collisions rather than genuine absence.
func (m *Metrics) CollisionMisses() int64 { return m.collisions.Load() }

// Prewarms returns the number of plans resolved ahead of traffic via
// Engine.Prewarm.
func (m *Metrics) Prewarms() int64 { return m.prewarms.Load() }

// QueueDepth returns the number of requests currently waiting for a
// worker.
func (m *Metrics) QueueDepth() int64 { return m.queueDepth.Load() }

// Snapshot is the expvar-style export of Metrics: a plain value that
// marshals to JSON, suitable for expvar.Func or an HTTP stats handler.
type Snapshot struct {
	Requests    int64   `json:"requests"`
	Batches     int64   `json:"batches"`
	Hits        int64   `json:"hits"`
	Misses      int64   `json:"misses"`
	Fallbacks   int64   `json:"fallbacks"`
	Errors      int64   `json:"errors"`
	Evictions   int64   `json:"evictions"`
	Collisions  int64   `json:"collision_misses"`
	Prewarms    int64   `json:"prewarms"`
	HitRate     float64 `json:"hit_rate"`
	QueueDepth  int64   `json:"queue_depth"`
	PlansCached int     `json:"plans_cached"`

	Wait  HistogramSnapshot `json:"wait"`
	Plan  HistogramSnapshot `json:"plan"`
	Apply HistogramSnapshot `json:"apply"`
}

// Snapshot captures all counters and histograms. PlansCached is not
// known to Metrics itself; Engine.Stats fills it in.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Requests:   m.requests.Load(),
		Batches:    m.batches.Load(),
		Hits:       m.hits.Load(),
		Misses:     m.misses.Load(),
		Fallbacks:  m.fallbacks.Load(),
		Errors:     m.errors.Load(),
		Evictions:  m.evictions.Load(),
		Collisions: m.collisions.Load(),
		Prewarms:   m.prewarms.Load(),
		QueueDepth: m.queueDepth.Load(),
		Wait:       m.Wait.Snapshot(),
		Plan:       m.Plan.Snapshot(),
		Apply:      m.Apply.Snapshot(),
	}
	if lookups := s.Hits + s.Misses; lookups > 0 {
		s.HitRate = float64(s.Hits) / float64(lookups)
	}
	return s
}

// Var adapts the metrics to an expvar.Var so callers can
// expvar.Publish them under /debug/vars.
func (m *Metrics) Var() expvar.Var {
	return expvar.Func(func() any { return m.Snapshot() })
}
