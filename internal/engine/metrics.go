package engine

import (
	"expvar"
	"strconv"

	"repro/internal/obs"
)

// Histogram is the shared lock-free latency histogram of internal/obs.
// The alias keeps the engine's exported metrics API stable now that
// every layer records into one observability package.
type Histogram = obs.Histogram

// HistogramSnapshot is the point-in-time view of a Histogram.
type HistogramSnapshot = obs.HistogramSnapshot

// BucketCount is one non-empty histogram bucket.
type BucketCount = obs.BucketCount

// Metrics aggregates everything observable about a running engine:
// plan-cache traffic, per-stage latency, and instantaneous queue depth.
// All fields are updated atomically; a Metrics value must not be
// copied.
type Metrics struct {
	requests     obs.Counter // vectors accepted by Submit
	batches      obs.Counter // worker batches served
	hits         obs.Counter // plan served from cache (or reused within a batch)
	misses       obs.Counter // plan had to be computed
	fallbacks    obs.Counter // misses outside F(n) that ran the looping algorithm
	parSetups    obs.Counter // non-F(n) misses served by the parallel worker-pool setup
	parFallbacks obs.Counter // parallel setups that errored and fell back to the serial path
	subHits      obs.Counter // half-network sub-plans served from the memo cache
	subMisses    obs.Counter // half-network sub-plan lookups that had to solve the subtree
	errors       obs.Counter // requests rejected (bad length, invalid permutation, closed)
	evictions    obs.Counter // plans displaced from the LRU cache
	collisions   obs.Counter // lookups whose hash matched a plan for a different permutation
	prewarms     obs.Counter // plans resolved ahead of traffic via Prewarm
	frames       obs.Counter // frames served synchronously via FrameServer.Serve
	mcasts       obs.Counter // multicast mappings served via RouteMulticast
	mcastFrames  obs.Counter // mapping frames served via McastFrameServer.Serve
	mcastCopies  obs.Counter // output copies delivered by multicast plans
	probes       obs.Counter // diagnostic passes served via ProbeRoute
	queueDepth   obs.Gauge   // requests submitted but not yet picked up by a worker

	// Per-stage latency histograms.
	Wait  Histogram // submit -> worker pickup
	Plan  Histogram // plan acquisition (cache lookup, plus setup on a miss)
	Apply Histogram // payload application (or states replay)
	// SetupPar is the setup_parallel stage: wall time of the multicore
	// cold setup on non-F(n) misses (the tail the plan cache cannot
	// hide), including any serial fallback retry.
	SetupPar Histogram

	// Multicast phase histograms: the copy-network compile split into
	// its distribute/permute B(n) setups and its ladder programming.
	McastDist Histogram // mcast_distribute: the two looping-algorithm setups
	McastCopy Histogram // mcast_copy: interval-splitting ladder compile
}

// Hits returns the number of requests whose plan came from the cache.
func (m *Metrics) Hits() int64 { return m.hits.Value() }

// Misses returns the number of requests that computed a fresh plan.
func (m *Metrics) Misses() int64 { return m.misses.Value() }

// Fallbacks returns the number of misses that needed the looping
// algorithm because the permutation is outside F(n).
func (m *Metrics) Fallbacks() int64 { return m.fallbacks.Value() }

// ParallelSetups returns the number of non-F(n) misses whose plan was
// computed by the multicore worker-pool setup.
func (m *Metrics) ParallelSetups() int64 { return m.parSetups.Value() }

// ParallelFallbacks returns the number of parallel setups that errored
// and were retried on the serial looping path.
func (m *Metrics) ParallelFallbacks() int64 { return m.parFallbacks.Value() }

// SubplanHits returns the number of half-network sub-plans served from
// the memo cache instead of solving the recursion subtree.
func (m *Metrics) SubplanHits() int64 { return m.subHits.Value() }

// SubplanMisses returns the number of half-network sub-plan lookups
// that missed and solved (then memoized) the subtree.
func (m *Metrics) SubplanMisses() int64 { return m.subMisses.Value() }

// Evictions returns the number of plans displaced from the cache.
func (m *Metrics) Evictions() int64 { return m.evictions.Value() }

// CollisionMisses returns the number of cache lookups that found a plan
// under the same 64-bit key but for a different permutation — misses
// forced by hash collisions rather than genuine absence.
func (m *Metrics) CollisionMisses() int64 { return m.collisions.Value() }

// Prewarms returns the number of plans resolved ahead of traffic via
// Engine.Prewarm.
func (m *Metrics) Prewarms() int64 { return m.prewarms.Value() }

// FramesServed returns the number of frames served synchronously
// through the FrameServer path, which bypasses the request queue and
// the plan cache entirely.
func (m *Metrics) FramesServed() int64 { return m.frames.Value() }

// Mcasts returns the number of multicast mappings served through
// RouteMulticast (the cached whole-mapping path).
func (m *Metrics) Mcasts() int64 { return m.mcasts.Value() }

// McastFramesServed returns the number of mapping frames served
// through the McastFrameServer path.
func (m *Metrics) McastFramesServed() int64 { return m.mcastFrames.Value() }

// McastCopies returns the total output copies delivered by multicast
// plans — the numerator of the fan-out amplification ratio.
func (m *Metrics) McastCopies() int64 { return m.mcastCopies.Value() }

// Probes returns the number of diagnostic passes served via
// Engine.ProbeRoute.
func (m *Metrics) Probes() int64 { return m.probes.Value() }

// QueueDepth returns the number of requests currently waiting for a
// worker.
func (m *Metrics) QueueDepth() int64 { return m.queueDepth.Load() }

// Snapshot is the expvar-style export of Metrics: a plain value that
// marshals to JSON, suitable for expvar.Func or an HTTP stats handler.
type Snapshot struct {
	Requests      int64   `json:"requests"`
	Batches       int64   `json:"batches"`
	Hits          int64   `json:"hits"`
	Misses        int64   `json:"misses"`
	Fallbacks     int64   `json:"fallbacks"`
	ParSetups     int64   `json:"parallel_setups"`
	ParFallbacks  int64   `json:"parallel_fallbacks"`
	SubplanHits   int64   `json:"subplan_hits"`
	SubplanMisses int64   `json:"subplan_misses"`
	Errors        int64   `json:"errors"`
	Evictions     int64   `json:"evictions"`
	Collisions    int64   `json:"collision_misses"`
	Prewarms      int64   `json:"prewarms"`
	Frames        int64   `json:"frames"`
	Mcasts        int64   `json:"mcasts"`
	McastFrames   int64   `json:"mcast_frames"`
	McastCopies   int64   `json:"mcast_copies"`
	Probes        int64   `json:"probes"`
	HitRate       float64 `json:"hit_rate"`
	QueueDepth    int64   `json:"queue_depth"`
	PlansCached   int     `json:"plans_cached"`

	Wait      HistogramSnapshot `json:"wait"`
	Plan      HistogramSnapshot `json:"plan"`
	Apply     HistogramSnapshot `json:"apply"`
	SetupPar  HistogramSnapshot `json:"setup_parallel"`
	McastDist HistogramSnapshot `json:"mcast_distribute"`
	McastCopy HistogramSnapshot `json:"mcast_copy"`
}

// Snapshot captures all counters and histograms. PlansCached is not
// known to Metrics itself; Engine.Stats fills it in.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Requests:      m.requests.Value(),
		Batches:       m.batches.Value(),
		Hits:          m.hits.Value(),
		Misses:        m.misses.Value(),
		Fallbacks:     m.fallbacks.Value(),
		ParSetups:     m.parSetups.Value(),
		ParFallbacks:  m.parFallbacks.Value(),
		SubplanHits:   m.subHits.Value(),
		SubplanMisses: m.subMisses.Value(),
		Errors:        m.errors.Value(),
		Evictions:     m.evictions.Value(),
		Collisions:    m.collisions.Value(),
		Prewarms:      m.prewarms.Value(),
		Frames:        m.frames.Value(),
		Mcasts:        m.mcasts.Value(),
		McastFrames:   m.mcastFrames.Value(),
		McastCopies:   m.mcastCopies.Value(),
		Probes:        m.probes.Value(),
		QueueDepth:    m.queueDepth.Load(),
		Wait:          m.Wait.Snapshot(),
		Plan:          m.Plan.Snapshot(),
		Apply:         m.Apply.Snapshot(),
		SetupPar:      m.SetupPar.Snapshot(),
		McastDist:     m.McastDist.Snapshot(),
		McastCopy:     m.McastCopy.Snapshot(),
	}
	if lookups := s.Hits + s.Misses; lookups > 0 {
		s.HitRate = float64(s.Hits) / float64(lookups)
	}
	return s
}

// Var adapts the metrics to an expvar.Var so callers can
// expvar.Publish them under /debug/vars.
func (m *Metrics) Var() expvar.Var {
	return expvar.Func(func() any { return m.Snapshot() })
}

// Register exports the engine's counters, gauges, and per-stage
// latency histograms into reg under the benes_engine_* names, with
// labels distinguishing this engine from its siblings (e.g. one series
// per fabric plane). Counters and gauges are read live at scrape time
// from the same atomics the hot path maintains — registration adds no
// cost to the serving path.
func (e *Engine[T]) Register(reg *obs.Registry, labels obs.Labels) {
	m := e.met
	reg.CounterFunc("benes_engine_requests_total", "Vectors accepted by Submit.", labels, m.requests.Value)
	reg.CounterFunc("benes_engine_batches_total", "Worker batches served.", labels, m.batches.Value)
	reg.CounterFunc("benes_engine_plan_cache_hits_total", "Plans served from the cache or reused within a batch.", labels, m.hits.Value)
	reg.CounterFunc("benes_engine_plan_cache_misses_total", "Plans computed fresh.", labels, m.misses.Value)
	reg.CounterFunc("benes_engine_loop_fallbacks_total", "Misses outside F(n) that ran the looping algorithm.", labels, m.fallbacks.Value)
	reg.CounterFunc("benes_engine_parallel_setups_total", "Non-F(n) misses served by the multicore worker-pool setup.", labels, m.parSetups.Value)
	reg.CounterFunc("benes_engine_parallel_fallbacks_total", "Parallel setups that errored and retried serially.", labels, m.parFallbacks.Value)
	reg.CounterFunc("benes_engine_subplan_hits_total", "Half-network sub-plans served from the memo cache.", labels, m.subHits.Value)
	reg.CounterFunc("benes_engine_subplan_misses_total", "Half-network sub-plan lookups that solved the subtree.", labels, m.subMisses.Value)
	reg.CounterFunc("benes_engine_errors_total", "Requests rejected (bad length, invalid permutation, closed).", labels, m.errors.Value)
	reg.CounterFunc("benes_engine_plan_cache_evictions_total", "Plans displaced from the LRU cache.", labels, m.evictions.Value)
	reg.CounterFunc("benes_engine_plan_cache_collisions_total", "Lookups that collided with a plan for a different permutation.", labels, m.collisions.Value)
	reg.CounterFunc("benes_engine_prewarms_total", "Plans resolved ahead of traffic via Prewarm.", labels, m.prewarms.Value)
	reg.CounterFunc("benes_engine_frames_total", "Frames served synchronously via FrameServer.", labels, m.frames.Value)
	reg.CounterFunc("benes_engine_mcasts_total", "Multicast mappings served via RouteMulticast.", labels, m.mcasts.Value)
	reg.CounterFunc("benes_engine_mcast_frames_total", "Mapping frames served via McastFrameServer.", labels, m.mcastFrames.Value)
	reg.CounterFunc("benes_engine_mcast_copies_total", "Output copies delivered by multicast plans.", labels, m.mcastCopies.Value)
	reg.CounterFunc("benes_engine_probes_total", "Diagnostic passes served via ProbeRoute.", labels, m.probes.Value)
	reg.GaugeFunc("benes_engine_queue_depth", "Requests waiting for a worker.", labels, func() float64 { return float64(m.queueDepth.Load()) })
	reg.GaugeFunc("benes_engine_plans_cached", "Plans currently held by the cache.", labels, func() float64 { return float64(e.cache.len()) })
	reg.RegisterHistogram("benes_engine_wait_seconds", "Queue wait: Submit to worker pickup.", labels, &m.Wait)
	reg.RegisterHistogram("benes_engine_plan_seconds", "Plan acquisition: cache lookup plus setup on a miss.", labels, &m.Plan)
	reg.RegisterHistogram("benes_engine_apply_seconds", "Payload application (or gate-level states replay).", labels, &m.Apply)
	reg.RegisterHistogram("benes_engine_setup_parallel_seconds", "Multicore cold setup on non-F(n) misses, serial retry included.", labels, &m.SetupPar)
	reg.RegisterHistogram("benes_engine_mcast_distribute_seconds", "Multicast compile: distribute/permute B(n) looping setups.", labels, &m.McastDist)
	reg.RegisterHistogram("benes_engine_mcast_copy_seconds", "Multicast compile: interval-splitting copy-ladder programming.", labels, &m.McastCopy)

	// With a flight recorder attached, export one series per stage of
	// the gate-level counters (per-switch series would be N/2 times the
	// cardinality; the per-switch view stays on /debug/heatmap).
	rec := e.rec
	if rec == nil {
		return
	}
	for s := 0; s < rec.Stages(); s++ {
		stage := s
		sl := append(append(obs.Labels{}, labels...), [2]string{"stage", strconv.Itoa(stage)})
		reg.CounterFunc("benes_switch_traversals_total", "Destination tags that traversed the stage's switches.", sl,
			func() int64 { return rec.StageTotals(stage).Traversed })
		reg.CounterFunc("benes_switch_flips_total", "Switch state transitions between consecutively routed vectors.", sl,
			func() int64 { return rec.StageTotals(stage).Flips })
		reg.CounterFunc("benes_switch_forced_total", "Settings imposed by the omega bit rather than decided from tags.", sl,
			func() int64 { return rec.StageTotals(stage).Forced })
		reg.CounterFunc("benes_switch_fault_hits_total", "Vectors that demanded the opposite state from a stuck switch.", sl,
			func() int64 { return rec.StageTotals(stage).FaultHits })
		reg.GaugeFunc("benes_stage_skew", "Gini coefficient of the stage's per-switch traversal load.", sl,
			func() float64 { return obs.Gini(rec.TraversedRow(stage)) })
	}
}
