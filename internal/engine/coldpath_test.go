package engine

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/perm"
)

// nonFPerm draws seeded random permutations until one falls outside
// F(n) — the cold external-setup path under test. Random permutations
// essentially never self-route, but the differential suite must not
// depend on "essentially".
func nonFPerm(t *testing.T, net *core.Network, rng *rand.Rand) perm.Perm {
	t.Helper()
	for tries := 0; tries < 100; tries++ {
		d := perm.Random(net.N(), rng)
		if !net.SelfRoute(d).OK() {
			return d
		}
	}
	t.Fatal("could not draw a non-F(n) permutation")
	return nil
}

// TestEngineParallelSetupDifferential: an engine with the parallel
// cold-setup path on must serve exactly the payloads and cache
// behavior of a serial engine, with the plan kind recording the
// multicore path.
func TestEngineParallelSetupDifferential(t *testing.T) {
	const logN = 6
	serial, err := New[int](Config{LogN: logN})
	if err != nil {
		t.Fatal(err)
	}
	defer serial.Close()
	par, err := New[int](Config{LogN: logN, ParallelSetup: true, SetupWorkers: 2, SetupCutoff: 8, SetupMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()

	rng := rand.New(rand.NewSource(77))
	data := make([]int, 1<<logN)
	for i := range data {
		data[i] = i * 11
	}
	for trial := 0; trial < 25; trial++ {
		d := nonFPerm(t, par.Network(), rng)
		want := serial.Route(d, data)
		got := par.Route(d, data)
		if want.Err != nil || got.Err != nil {
			t.Fatalf("route errors: serial %v, parallel %v", want.Err, got.Err)
		}
		if got.Kind != PlanParallel {
			t.Fatalf("parallel engine served a non-F(n) miss with kind %v", got.Kind)
		}
		if want.Kind != PlanLooped {
			t.Fatalf("serial engine served a non-F(n) miss with kind %v", want.Kind)
		}
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				t.Fatalf("trial %d: payload diverges at output %d", trial, i)
			}
		}
		// Warm repeat: the cached parallel plan serves hits like any other.
		if again := par.Route(d, data); !again.CacheHit || again.Kind != PlanParallel {
			t.Fatalf("warm repeat: hit=%v kind=%v", again.CacheHit, again.Kind)
		}
	}
	snap := par.Stats()
	if snap.ParSetups == 0 || snap.Fallbacks != snap.ParSetups {
		t.Errorf("parallel setups %d should equal non-F(n) fallbacks %d", snap.ParSetups, snap.Fallbacks)
	}
	if snap.ParFallbacks != 0 {
		t.Errorf("parallel path fell back serially %d times on valid input", snap.ParFallbacks)
	}
	if snap.SetupPar.Count != snap.ParSetups {
		t.Errorf("setup_parallel histogram count %d != parallel setups %d", snap.SetupPar.Count, snap.ParSetups)
	}
	if snap.SubplanHits+snap.SubplanMisses != 2*snap.ParSetups {
		t.Errorf("sub-plan books unbalanced: %d hits + %d misses != 2 x %d setups",
			snap.SubplanHits, snap.SubplanMisses, snap.ParSetups)
	}
}

// TestEngineColdMissRaceStress is the adversarial cold path under the
// race detector: concurrent cold misses on distinct non-F(n)
// permutations with sub-plan memoization on. Every response must carry
// the exact permuted payload, and afterwards the cache books must
// balance: every request resolved as exactly one hit or miss, every
// parallel setup charged exactly two sub-plan lookups, and no
// cross-kind hash pollution (collisions).
func TestEngineColdMissRaceStress(t *testing.T) {
	const (
		logN       = 8
		goroutines = 8
		perGor     = 24
	)
	eng, err := New[int](Config{
		LogN:          logN,
		Workers:       runtime.GOMAXPROCS(0),
		CacheCapacity: 4096,
		ParallelSetup: true,
		SetupWorkers:  runtime.GOMAXPROCS(0),
		SetupCutoff:   16,
		SetupMemo:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// Distinct non-F(n) permutations, drawn up front so every miss is
	// genuinely cold (no accidental repeats warming the cache).
	rng := rand.New(rand.NewSource(88))
	seen := map[string]bool{}
	perms := make([]perm.Perm, 0, goroutines*perGor)
	for len(perms) < goroutines*perGor {
		d := nonFPerm(t, eng.Network(), rng)
		if k := d.String(); !seen[k] {
			seen[k] = true
			perms = append(perms, d)
		}
	}
	data := make([]int, 1<<logN)
	for i := range data {
		data[i] = i ^ 0x55
	}

	var wg sync.WaitGroup
	failures := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(mine []perm.Perm) {
			defer wg.Done()
			for _, d := range mine {
				resp := eng.Route(d, data)
				if resp.Err != nil {
					failures <- "route error: " + resp.Err.Error()
					return
				}
				want := perm.Apply(d, data)
				for i := range want {
					if resp.Data[i] != want[i] {
						failures <- "misdelivered payload at output " + d.String()
						return
					}
				}
			}
		}(perms[g*perGor : (g+1)*perGor])
	}
	wg.Wait()
	close(failures)
	for f := range failures {
		t.Fatal(f)
	}

	snap := eng.Stats()
	total := int64(goroutines * perGor)
	if snap.Requests != total {
		t.Fatalf("requests = %d, want %d", snap.Requests, total)
	}
	if snap.Hits+snap.Misses != total {
		t.Errorf("cache books unbalanced: %d hits + %d misses != %d requests", snap.Hits, snap.Misses, total)
	}
	if snap.Errors != 0 {
		t.Errorf("errors = %d on all-valid traffic", snap.Errors)
	}
	if snap.ParSetups != snap.Fallbacks {
		t.Errorf("parallel setups %d != non-F(n) fallbacks %d", snap.ParSetups, snap.Fallbacks)
	}
	if snap.ParFallbacks != 0 {
		t.Errorf("serial retries = %d on valid input", snap.ParFallbacks)
	}
	if snap.SubplanHits+snap.SubplanMisses != 2*snap.ParSetups {
		t.Errorf("sub-plan books unbalanced: %d hits + %d misses != 2 x %d parallel setups",
			snap.SubplanHits, snap.SubplanMisses, snap.ParSetups)
	}
	if snap.Collisions != 0 {
		t.Errorf("hash collisions = %d across %d distinct keys", snap.Collisions, total)
	}
	if snap.PlansCached > 4096 {
		t.Errorf("plans cached %d exceeds capacity", snap.PlansCached)
	}
}
