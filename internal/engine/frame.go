package engine

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/perm"
)

// FrameServer is the engine's synchronous frame-serving path, built for
// the packet fabric's hot loop. The general Submit path is shaped for
// arbitrary clients: it hands the request to a worker pool through a
// channel, consults the plan cache, and on a miss first attempts the
// paper's self-routing check before falling back to the looping
// algorithm. All three of those are wrong for frames:
//
//   - a frame's destination vector is a random completed matching, so
//     consecutive frames essentially never repeat — every cache lookup
//     misses, every insert churns a useful plan out of the LRU;
//   - random permutations are essentially never in F(n), so the
//     self-routing attempt is O(N log N) work thrown away per frame;
//   - the channel handoff costs two goroutine wakeups and a response
//     allocation per frame.
//
// A FrameServer therefore runs in the caller's goroutine and goes
// straight to the looping algorithm, reusing one States buffer, one
// setup scratch, and one recorder mask across calls — the steady-state
// frame costs zero allocations. The one repeat that does happen in
// practice (a single hot flow producing the same completed matching
// frame after frame) is caught by an O(N) last-destination memo instead
// of the cache.
//
// A FrameServer belongs to one goroutine; create one per serving
// goroutine via NewFrameServer. Concurrent FrameServers over the same
// engine are safe — they share only the network wiring (read-only), the
// metrics atomics, and the recorder (internally sharded).
type FrameServer[T any] struct {
	e        *Engine[T]
	st       core.States
	sc       *core.SetupScratch
	mask     []uint64
	sh       *netsim.RecorderShard
	last     perm.Perm // previously served dest; valid when haveLast
	haveLast bool
}

// NewFrameServer builds a frame-serving context over e for one
// goroutine's exclusive use.
func (e *Engine[T]) NewFrameServer() *FrameServer[T] {
	fs := &FrameServer[T]{
		e:    e,
		st:   e.net.NewStates(),
		sc:   core.NewSetupScratch(e.net),
		sh:   e.rec.Shard(), // nil (and inert) when accounting is off
		last: make(perm.Perm, e.net.N()),
	}
	if words := e.rec.MaskWords(); words > 0 {
		fs.mask = make([]uint64, words)
	}
	return fs
}

// Serve routes one frame synchronously: dest is the frame's full
// permutation (a completed matching — valid by construction, like every
// Complete output), and real lists the input terminals carrying real
// packets. Serve computes the switch setting with the looping
// algorithm, then walks each real packet's path gate by gate and
// verifies it exits at dest[src] — the output-port tag check frames
// carry — before reporting success. With a flight recorder attached the
// walk doubles as traversal accounting and the setting's flips are
// folded in, exactly like the Submit path's partially-filled-frame
// accounting. The frame's filler assignments pin switches but are
// neither walked nor verified.
func (fs *FrameServer[T]) Serve(dest perm.Perm, real []int) error {
	e := fs.e
	if len(dest) != e.net.N() {
		e.met.errors.Add(1)
		return fmt.Errorf("engine: frame size %d does not match N=%d", len(dest), e.net.N())
	}
	t0 := time.Now()
	if !(fs.haveLast && fs.last.Equal(dest)) {
		e.net.SetupInto(dest, fs.st, fs.sc)
		copy(fs.last, dest)
		fs.haveLast = true
	}
	e.met.Plan.Observe(time.Since(t0))

	// Walk each real packet through the computed setting and check its
	// exit port. This is a gate-level verification: a wrong switch state
	// anywhere on the path surfaces as a misdelivered tag here.
	t1 := time.Now()
	stages := e.net.Stages()
	rec := fs.sh != nil
	for _, src := range real {
		y := src
		for s := 0; s < stages; s++ {
			sw := y >> 1
			if rec {
				fs.sh.Traverse(s, sw)
			}
			out := 2 * sw
			if crossed := fs.st[s][sw]; crossed != (y&1 == 1) {
				out++ // straight keeps the line parity; crossed swaps it
			}
			if s < stages-1 {
				y = e.net.Link(s, out)
			} else {
				y = out
			}
		}
		if y != dest[src] {
			e.met.errors.Add(1)
			return fmt.Errorf("engine: frame delivered input %d to port %d, want %d", src, y, dest[src])
		}
	}
	e.met.Apply.Observe(time.Since(t1))
	if rec {
		fs.sh.RecordFlips(e.rec.PackStatesInto(fs.st, fs.mask))
	}
	e.met.frames.Add(1)
	return nil
}
