// Package engine is the serving layer over the self-routing Benes
// network of package core: a concurrent routing engine that accepts
// streams of route requests (permutation + payload vector), batches
// them, and serves them through a sharded worker pool with an LRU plan
// cache keyed by permutation hash.
//
// The paper's headline result is that setup is the expensive part of
// permutation routing: the looping algorithm costs O(N log N) serial
// work, while members of F(n) set the switches themselves in O(log N)
// gate delays. The engine treats that observation as a serving-layer
// design rule:
//
//   - a cache MISS on a self-routable permutation (F(n) membership,
//     Theorem 1) lets the destination tags decide the switch states —
//     the paper's fast path;
//   - a miss outside F(n) falls back to the looping algorithm
//     (core.Setup), the paper's "external setup" mode;
//   - a cache HIT skips setup entirely: the cached plan pins every
//     switch, and the payload traverses the network at wire speed. In
//     software we apply the plan's end-to-end mapping directly
//     (Section IV's point that a configured network moves a new vector
//     every clock period); Config.ReplayStates instead replays the
//     cached core.States through core.ExternalRoute switch by switch
//     for full-fidelity simulation.
//
// Batching follows Section IV's pipelining result: requests that share
// a permutation inside one worker batch are served by a single plan
// acquisition, the software analogue of streaming many vectors through
// one switch setting.
package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/mcast"
	"repro/internal/netsim"
	"repro/internal/perm"
	"repro/internal/psetup"
)

// ErrClosed is returned for requests submitted after Close.
var ErrClosed = errors.New("engine: closed")

// Config parameterizes New. The zero value of every field selects a
// sensible default; only LogN is required.
type Config struct {
	// LogN is n = log2(N), the size of the Benes network B(n).
	LogN int
	// Workers is the number of goroutines serving requests.
	// Defaults to runtime.GOMAXPROCS(0).
	Workers int
	// CacheCapacity is the total number of plans the LRU cache holds
	// across all shards. Defaults to DefaultCacheCapacity.
	CacheCapacity int
	// CacheShards is the number of independently locked cache shards,
	// rounded up to a power of two. Defaults to 2*Workers.
	CacheShards int
	// QueueDepth is the buffered request queue length. Submit blocks
	// once this many requests are in flight. Defaults to 4*Workers.
	QueueDepth int
	// MaxBatch caps how many queued requests one worker drains and
	// serves as a single batch. Defaults to DefaultMaxBatch.
	MaxBatch int
	// ParallelSetup routes cache misses outside F(n) — the serving
	// path's worst-case latency, since nothing but the plan cache hides
	// the looping algorithm's O(N log N) serial cost — through the
	// multicore worker-pool setup of internal/psetup. The computed
	// states are bit-identical to core.Network.Setup; if the parallel
	// path ever reports an error the engine falls back to the serial
	// looping algorithm and counts the fallback.
	ParallelSetup bool
	// SetupWorkers bounds one parallel setup's goroutine pool.
	// Defaults to runtime.GOMAXPROCS(0). Ignored unless ParallelSetup.
	SetupWorkers int
	// SetupCutoff is the block size (lines) at or below which the
	// parallel setup recursion goes serial. Defaults to
	// psetup.DefaultSerialCutoff. Ignored unless ParallelSetup.
	SetupCutoff int
	// SetupMemo memoizes each parallel setup's two half-network
	// sub-plans in the engine's sharded LRU (as PlanSubBlock entries
	// sharing its capacity), so permutations that agree on a
	// half-network share recursion subtrees across requests. Ignored
	// unless ParallelSetup.
	SetupMemo bool
	// ReplayStates makes cache hits replay the cached switch states
	// through core.ExternalRoute (full gate-level fidelity) instead of
	// applying the plan's end-to-end mapping directly.
	ReplayStates bool
	// Recorder, when non-nil, receives gate-level accounting for every
	// served request: per-switch traversals and state flips. Full
	// permutation vectors cost one atomic add plus a word-compare sweep;
	// partially filled frames (Request.Real set) walk only the real
	// packets' paths. Nil disables accounting entirely.
	Recorder *netsim.Recorder
	// Journal, when enabled, receives one hash-chained admission record
	// per served request (the permutation plus its delivery digest),
	// making the engine's traffic window replayable by internal/journal.
	// Nil disables journaling: the hot path pays one pointer test and
	// computes nothing.
	Journal *journal.Writer
}

// Defaults for Config fields left zero.
const (
	DefaultCacheCapacity = 1024
	DefaultMaxBatch      = 16
)

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CacheCapacity <= 0 {
		c.CacheCapacity = DefaultCacheCapacity
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 2 * c.Workers
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	return c
}

// Request is one unit of work: deliver Data[i] to position Dest[i].
type Request[T any] struct {
	Dest perm.Perm
	Data []T
	// Real, when non-nil, lists the input terminals carrying real
	// packets; the rest of the vector is filler completing the
	// permutation (the fabric's partially filled frames). The flight
	// recorder then counts traversals along only the real packets'
	// paths, while switch flips still reflect the full setting. Nil
	// means every input is real — a full permutation pass.
	Real []int
}

// Response reports one served request.
type Response[T any] struct {
	// Data is the routed payload: Data[Dest[i]] holds the input element
	// i carried. Nil when Err is set.
	Data []T
	// Kind records which setup path produced the plan.
	Kind PlanKind
	// CacheHit is true when the plan was served from the cache (or
	// reused from an earlier request in the same batch).
	CacheHit bool
	Err      error
}

// pending is a request in flight through the worker pool.
type pending[T any] struct {
	req  Request[T]
	done chan Response[T]
	enq  time.Time
}

// Engine routes streams of permutation requests over a shared Benes
// network. All methods are safe for concurrent use.
type Engine[T any] struct {
	net   *core.Network
	cfg   Config
	cache *planCache
	met   *Metrics
	rec   *netsim.Recorder
	jrn   *journal.Writer
	// psr is the multicore cold-setup router for non-F(n) misses, nil
	// when Config.ParallelSetup is off (serial looping path retained).
	psr *psetup.Router
	// ladRec records the multicast copy ladder: log N stages of N/2
	// four-state switches, a geometry separate from B(n)'s. Nil when
	// accounting is off.
	ladRec *netsim.Recorder
	// mpool holds per-call mcast compilers for the RouteMulticast path.
	mpool sync.Pool
	reqs  chan *pending[T]
	wg    sync.WaitGroup

	mu     sync.RWMutex // guards closed vs. sends on reqs
	closed bool
}

// New builds and starts an engine for B(cfg.LogN).
func New[T any](cfg Config) (*Engine[T], error) {
	if cfg.LogN < 1 {
		return nil, fmt.Errorf("engine: Config.LogN must be >= 1, got %d", cfg.LogN)
	}
	cfg = cfg.withDefaults()
	met := &Metrics{}
	e := &Engine[T]{
		net:   core.New(cfg.LogN),
		cfg:   cfg,
		cache: newPlanCache(cfg.CacheCapacity, cfg.CacheShards, &met.evictions, &met.collisions),
		met:   met,
		rec:   cfg.Recorder,
		jrn:   cfg.Journal,
		reqs:  make(chan *pending[T], cfg.QueueDepth),
	}
	if e.rec != nil {
		e.ladRec = netsim.NewRecorderGeom(cfg.LogN, e.net.SwitchesPerStage(), cfg.Workers+2)
	}
	if cfg.ParallelSetup {
		var memo psetup.SubPlanCache
		if cfg.SetupMemo {
			memo = &subPlanCache{c: e.cache, hits: &met.subHits, misses: &met.subMisses}
		}
		e.psr = psetup.New(e.net, psetup.Config{
			Workers:      cfg.SetupWorkers,
			SerialCutoff: cfg.SetupCutoff,
			Memo:         memo,
		})
	}
	e.mpool.New = func() any { return mcast.NewCompiler(e.net) }
	e.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go e.worker()
	}
	return e, nil
}

// Network returns the underlying wired network.
func (e *Engine[T]) Network() *core.Network { return e.net }

// Recorder returns the flight recorder the engine records into, nil
// when accounting is disabled.
func (e *Engine[T]) Recorder() *netsim.Recorder { return e.rec }

// LadderRecorder returns the copy-ladder flight recorder (log N stages
// of four-state switches), nil when accounting is disabled.
func (e *Engine[T]) LadderRecorder() *netsim.Recorder { return e.ladRec }

// QueueCapacity returns the request queue's depth limit — the
// denominator readiness probes compare QueueDepth against.
func (e *Engine[T]) QueueCapacity() int { return e.cfg.QueueDepth }

// Metrics returns the engine's live counters.
func (e *Engine[T]) Metrics() *Metrics { return e.met }

// Stats captures a complete metrics snapshot, including the current
// plan-cache occupancy.
func (e *Engine[T]) Stats() Snapshot {
	s := e.met.Snapshot()
	s.PlansCached = e.cache.len()
	return s
}

// Submit enqueues one request and returns a channel that receives
// exactly one Response. Length errors are reported without entering
// the queue; Submit blocks only when the queue is full.
func (e *Engine[T]) Submit(req Request[T]) <-chan Response[T] {
	done := make(chan Response[T], 1)
	if len(req.Dest) != e.net.N() || len(req.Data) != e.net.N() {
		e.met.errors.Add(1)
		done <- Response[T]{Err: fmt.Errorf("engine: request size (dest %d, data %d) does not match N=%d",
			len(req.Dest), len(req.Data), e.net.N())}
		return done
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		e.met.errors.Add(1)
		done <- Response[T]{Err: ErrClosed}
		return done
	}
	e.met.requests.Add(1)
	e.met.queueDepth.Add(1)
	e.reqs <- &pending[T]{req: req, done: done, enq: time.Now()}
	return done
}

// Route serves one request synchronously.
func (e *Engine[T]) Route(dest perm.Perm, data []T) Response[T] {
	return <-e.Submit(Request[T]{Dest: dest, Data: data})
}

// Prewarm resolves and caches the routing plan for dest without moving
// any payload, so a later Route of the same permutation is a cache
// hit. This is the setup half of Section IV's pipelining: the next
// vector's switch setting is computed while the current vector is
// still in flight. It runs in the caller's goroutine — it does not
// enter the request queue — and reports the plan kind and whether the
// plan was already cached.
func (e *Engine[T]) Prewarm(dest perm.Perm) (PlanKind, bool, error) {
	if len(dest) != e.net.N() {
		e.met.errors.Add(1)
		return 0, false, fmt.Errorf("engine: prewarm size %d does not match N=%d", len(dest), e.net.N())
	}
	e.mu.RLock()
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		e.met.errors.Add(1)
		return 0, false, ErrClosed
	}
	e.met.prewarms.Add(1)
	pl, hit, err := e.acquire(hashPerm(dest), dest)
	if err != nil {
		e.met.errors.Add(1)
		return 0, false, err
	}
	return pl.Kind, hit, nil
}

// ProbeRoute is the diagnosis oracle hook: it self-routes d through
// the gate-level switch logic — tags decide every state, faults and
// all — and returns the realized permutation, exactly what package
// diagnose's probe contract asks of healthy hardware. It deliberately
// bypasses the serving path twice over:
//
//   - no LRU: probes are one-shot, often adversarial permutations a
//     diagnosis session will never repeat; letting them into the cache
//     would evict hot production plans, and a cached plan would hide
//     the very gate behaviour the probe exists to observe;
//   - no looped fallback: core.Setup computes a setting that realizes
//     d *correctly*, which is the wrong contract — a probe must report
//     what the self-setting switches actually do with d's tags, even
//     (especially) when that misroutes.
//
// It runs in the caller's goroutine and does not enter the request
// queue.
func (e *Engine[T]) ProbeRoute(d perm.Perm) (perm.Perm, error) {
	if len(d) != e.net.N() {
		e.met.errors.Add(1)
		return nil, fmt.Errorf("engine: probe size %d does not match N=%d", len(d), e.net.N())
	}
	if err := d.Validate(); err != nil {
		e.met.errors.Add(1)
		return nil, err
	}
	e.mu.RLock()
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		e.met.errors.Add(1)
		return nil, ErrClosed
	}
	e.met.probes.Add(1)
	return e.net.SelfRoute(d).Realized, nil
}

// RouteBatch submits all requests before collecting any response, so
// the worker pool serves them concurrently. Responses are returned in
// request order.
func (e *Engine[T]) RouteBatch(reqs []Request[T]) []Response[T] {
	chans := make([]<-chan Response[T], len(reqs))
	for i, r := range reqs {
		chans[i] = e.Submit(r)
	}
	out := make([]Response[T], len(reqs))
	for i, ch := range chans {
		out[i] = <-ch
	}
	return out
}

// Close stops accepting requests, waits for queued work to drain, and
// stops the workers. Close is idempotent.
func (e *Engine[T]) Close() {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.reqs)
	}
	e.mu.Unlock()
	e.wg.Wait()
}

// worker drains the queue in batches: one blocking receive, then an
// opportunistic non-blocking drain up to MaxBatch, so light load stays
// low-latency while heavy load amortizes plan lookups across a batch.
func (e *Engine[T]) worker() {
	defer e.wg.Done()
	sh := e.rec.Shard() // nil (and inert) when accounting is off
	batch := make([]*pending[T], 0, e.cfg.MaxBatch)
	for {
		p, ok := <-e.reqs
		if !ok {
			return
		}
		batch = append(batch[:0], p)
	drain:
		for len(batch) < e.cfg.MaxBatch {
			select {
			case q, ok := <-e.reqs:
				if !ok {
					break drain
				}
				batch = append(batch, q)
			default:
				break drain
			}
		}
		e.serve(batch, sh)
	}
}

// batchPlan is one resolved plan within a batch, shared by every
// request in the batch with the same permutation.
type batchPlan struct {
	dest   perm.Perm
	plan   *Plan
	err    error
	cached bool // plan came from the cache (vs. computed for this batch)
}

// serve resolves plans for a batch and answers every request. Requests
// sharing a permutation are served by one plan acquisition (Section IV
// pipelining: one switch setting, many vectors).
func (e *Engine[T]) serve(batch []*pending[T], sh *netsim.RecorderShard) {
	now := time.Now()
	for _, p := range batch {
		e.met.queueDepth.Add(-1)
		e.met.Wait.Observe(now.Sub(p.enq))
	}
	e.met.batches.Add(1)
	plans := make(map[uint64]*batchPlan, len(batch))
	for _, p := range batch {
		key := hashPerm(p.req.Dest)
		ent := plans[key]
		reused := false
		if ent != nil && ent.dest.Equal(p.req.Dest) {
			// Batch-local reuse: the plan is already in hand, which is
			// a hit as far as setup cost is concerned.
			reused = true
			if ent.err == nil {
				e.met.hits.Add(1)
			}
		} else {
			pl, hit, err := e.acquire(key, p.req.Dest)
			ent = &batchPlan{dest: p.req.Dest, plan: pl, err: err, cached: hit}
			plans[key] = ent
		}
		if ent.err != nil {
			e.met.errors.Add(1)
			p.done <- Response[T]{Err: ent.err}
			continue
		}
		t0 := time.Now()
		out := e.applyPlan(ent.plan, p.req.Data)
		e.met.Apply.Observe(time.Since(t0))
		if sh != nil {
			e.record(sh, ent.plan, p.req.Real)
		}
		if e.jrn.Enabled() {
			// The plan realizes exactly its permutation (applyPlan either
			// maps by Dest or replays states verified to realize it), so
			// the delivery digest is DigestPerm of the destination vector.
			e.jrn.Route(ent.plan.Dest, journal.DigestPerm(ent.plan.Dest))
		}
		p.done <- Response[T]{Data: out, Kind: ent.plan.Kind, CacheHit: ent.cached || reused}
	}
}

// record accounts one served pass into the flight recorder. A full
// permutation vector (real == nil) is one RecordVector — an atomic add
// plus a word-compare flip sweep that is all loads while the cached
// setting is unchanged. A partially filled frame records the flip sweep
// for the full setting (every switch is physically pinned) but walks
// only the real packets' paths for traversal counts.
func (e *Engine[T]) record(sh *netsim.RecorderShard, pl *Plan, real []int) {
	if real == nil {
		sh.RecordVector(pl.mask)
		return
	}
	sh.RecordFlips(pl.mask)
	stages := e.net.Stages()
	for _, src := range real {
		y := src
		for s := 0; s < stages; s++ {
			sw := y >> 1
			sh.Traverse(s, sw)
			out := 2 * sw
			if crossed := pl.States[s][sw]; crossed != (y&1 == 1) {
				out++ // straight keeps the line parity; crossed swaps it
			}
			if s < stages-1 {
				y = e.net.Link(s, out)
			}
		}
	}
}

// acquire returns the plan for d, consulting the cache first. On a
// miss it tries the paper's self-routing path (valid for F(n) members)
// and falls back to the looping algorithm otherwise, then caches the
// result.
func (e *Engine[T]) acquire(key uint64, d perm.Perm) (*Plan, bool, error) {
	t0 := time.Now()
	defer func() { e.met.Plan.Observe(time.Since(t0)) }()
	if pl := e.cache.get(key, d); pl != nil {
		e.met.hits.Add(1)
		return pl, true, nil
	}
	if err := d.Validate(); err != nil {
		return nil, false, err
	}
	e.met.misses.Add(1)
	var pl *Plan
	if res := e.net.SelfRoute(d); res.OK() {
		pl = &Plan{Kind: PlanSelfRouted, States: res.States, Dest: d.Clone(), key: key}
	} else {
		e.met.fallbacks.Add(1)
		st, kind := e.coldSetup(d)
		pl = &Plan{Kind: kind, States: st, Dest: d.Clone(), key: key}
	}
	// Pack the setting once at plan-build time so recording a cached
	// pass is a word sweep, not a boolean matrix walk.
	pl.mask = e.rec.PackStates(pl.States)
	e.cache.put(pl)
	return pl, false, nil
}

// coldSetup computes states for a validated non-F(n) permutation — the
// external-setup cliff the plan cache cannot hide on first sight of d.
// With ParallelSetup on it runs the worker-pool looping recursion
// (states bit-identical to the serial algorithm, enforced by the
// psetup differential battery); the serial path remains both the
// default and the fallback should the parallel router report an error.
func (e *Engine[T]) coldSetup(d perm.Perm) (core.States, PlanKind) {
	if e.psr == nil {
		return e.net.Setup(d), PlanLooped
	}
	t0 := time.Now()
	defer func() { e.met.SetupPar.Observe(time.Since(t0)) }()
	st, err := e.psr.Setup(d)
	if err != nil {
		// d was validated by acquire, so this is unreachable in
		// practice; keep the serial algorithm as the safety net anyway.
		e.met.parFallbacks.Add(1)
		return e.net.Setup(d), PlanLooped
	}
	e.met.parSetups.Add(1)
	return st, PlanParallel
}

// applyPlan routes data through the configured network. The default
// path applies the plan's end-to-end mapping — the software equivalent
// of a data pass through pinned switches. With ReplayStates the cached
// states are replayed through the gate-level evaluator instead.
func (e *Engine[T]) applyPlan(pl *Plan, data []T) []T {
	if e.cfg.ReplayStates {
		res := e.net.ExternalRoute(pl.Dest, pl.States)
		return perm.Apply(res.Realized, data)
	}
	return perm.Apply(pl.Dest, data)
}
