package engine

import (
	"testing"

	"repro/internal/journal"
	"repro/internal/perm"
)

// TestEngineJournalRoute: with a journal wired in, every served /route
// admission lands in the log with the realized-delivery digest.
func TestEngineJournalRoute(t *testing.T) {
	j, err := journal.New(journal.Config{CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	eng, err := New[int](Config{LogN: 3, Workers: 1, Journal: j.Writer()})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	d := perm.BitReversal(3)
	data := benchPayload(8)
	for i := 0; i < 3; i++ {
		if resp := eng.Route(d, data); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	recs, err := j.Read(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("journaled %d records, want 3", len(recs))
	}
	want := journal.DigestPerm(d)
	for _, r := range recs {
		if r.Kind != journal.KindRoute || r.Delivered != want {
			t.Fatalf("record %d: kind %v delivered %x, want route/%x", r.Seq, r.Kind, r.Delivered, want)
		}
	}
}

// TestEngineJournalDisabledRouteAllocs proves the disabled hot path
// pays nothing for the journal hook: a warm Route with no journal
// configured stays within the 5 allocs/op budget TestEngineWarmRouteAllocs
// pins, because the nil-safe Writer guard short-circuits before any
// digest work.
func TestEngineJournalDisabledRouteAllocs(t *testing.T) {
	const logN = 6
	eng, err := New[int](Config{LogN: logN, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	d := perm.BitReversal(logN)
	data := benchPayload(1 << logN)
	eng.Route(d, data) // prime the cache

	allocs := testing.AllocsPerRun(200, func() {
		if resp := eng.Route(d, data); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	})
	if allocs > 5 {
		t.Fatalf("journal-disabled warm Route allocates %.1f objects/op, budget is 5", allocs)
	}
}
