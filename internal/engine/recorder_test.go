package engine

import (
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/perm"
)

// TestEngineRecorderFullVectors routes full permutation vectors through
// a recorder-enabled engine and checks the gate-level totals: every
// switch carries exactly two tags per vector, and flips match the state
// diffs between consecutively served plans.
func TestEngineRecorderFullVectors(t *testing.T) {
	const logN = 3
	net := core.New(logN)
	rec := netsim.NewRecorder(net, 2)
	eng, err := New[int](Config{LogN: logN, Workers: 1, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if eng.Recorder() != rec {
		t.Fatal("Recorder() accessor must return the configured recorder")
	}

	data := benchPayload(1 << logN)
	vectors := []perm.Perm{
		perm.BitReversal(logN),
		perm.Identity(1 << logN),
		perm.BitReversal(logN), // cache hit: still a recorded pass
	}
	for _, d := range vectors {
		if resp := eng.Route(d, data); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}

	stages, switches := net.Stages(), net.SwitchesPerStage()
	wantFlips := make([][]int64, stages)
	for s := range wantFlips {
		wantFlips[s] = make([]int64, switches)
	}
	prev := net.NewStates()
	for _, d := range vectors {
		res := net.SelfRoute(d)
		if !res.OK() {
			t.Fatalf("premise: %v must self-route", d)
		}
		for s := range res.States {
			for i, crossed := range res.States[s] {
				if crossed != prev[s][i] {
					wantFlips[s][i]++
				}
			}
		}
		prev = res.States.Clone()
	}

	snap := rec.Snapshot()
	if snap.FullVectors != int64(len(vectors)) {
		t.Fatalf("full vectors = %d, want %d", snap.FullVectors, len(vectors))
	}
	for s := 0; s < stages; s++ {
		for i := 0; i < switches; i++ {
			if got := snap.Counts[s].Traversed[i]; got != 2*int64(len(vectors)) {
				t.Errorf("traversed[%d][%d] = %d, want %d", s, i, got, 2*len(vectors))
			}
			if got := snap.Counts[s].Flips[i]; got != wantFlips[s][i] {
				t.Errorf("flips[%d][%d] = %d, want %d", s, i, got, wantFlips[s][i])
			}
		}
	}
}

// TestEngineRecorderRealPaths serves a partially filled frame
// (Request.Real set) and checks traversals are counted along exactly
// the real packets' gate-level paths — derived independently from the
// synchronous evaluator's tag trace, where each unique destination tag
// appears on exactly one line per stage.
func TestEngineRecorderRealPaths(t *testing.T) {
	const logN = 3
	net := core.New(logN)
	rec := netsim.NewRecorder(net, 1)
	eng, err := New[int](Config{LogN: logN, Workers: 1, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	d := perm.BitReversal(logN)
	real := []int{0, 3, 5}
	resp := <-eng.Submit(Request[int]{Dest: d, Data: benchPayload(1 << logN), Real: real})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}

	res := net.SelfRoute(d)
	stages, switches := net.Stages(), net.SwitchesPerStage()
	want := make([][]int64, stages)
	for s := range want {
		want[s] = make([]int64, switches)
		for _, src := range real {
			tag := d[src]
			hit := -1
			for y, tr := range res.TagTrace[s] {
				if tr == tag {
					hit = y
					break
				}
			}
			if hit < 0 {
				t.Fatalf("tag %d missing from stage %d trace", tag, s)
			}
			want[s][hit/2]++
		}
	}

	snap := rec.Snapshot()
	if snap.FullVectors != 0 {
		t.Fatalf("a Real frame must not count as a full vector, got %d", snap.FullVectors)
	}
	for s := 0; s < stages; s++ {
		var stageSum int64
		for i := 0; i < switches; i++ {
			if got := snap.Counts[s].Traversed[i]; got != want[s][i] {
				t.Errorf("traversed[%d][%d] = %d, want %d", s, i, got, want[s][i])
			}
			stageSum += snap.Counts[s].Traversed[i]
		}
		if stageSum != int64(len(real)) {
			t.Errorf("stage %d carries %d traversals, want one per real packet = %d", s, stageSum, len(real))
		}
	}
	// Flips still reflect the full pinned setting.
	flips := int64(0)
	for s := 0; s < stages; s++ {
		flips += rec.StageTotals(s).Flips
	}
	if want := int64(res.States.CountCrossed()); flips != want {
		t.Fatalf("flips from power-on = %d, want crossed switch count %d", flips, want)
	}
}

// TestEngineWarmRouteAllocs is the allocation guard: the warm-cache
// serving path — Submit, worker pickup, cached plan, payload apply —
// must stay at 5 allocations per request with gate-level accounting
// enabled. The flight recorder's RecordVector is an atomic add plus a
// word sweep; if it (or anything else on the warm path) starts
// allocating, this fails before a benchmark ever notices.
func TestEngineWarmRouteAllocs(t *testing.T) {
	const logN = 6
	rec := netsim.NewRecorder(core.New(logN), 2)
	eng, err := New[int](Config{LogN: logN, Workers: 1, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	d := perm.BitReversal(logN)
	data := benchPayload(1 << logN)
	eng.Route(d, data) // prime the cache

	allocs := testing.AllocsPerRun(200, func() {
		if resp := eng.Route(d, data); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	})
	if allocs > 5 {
		t.Fatalf("warm Route allocates %.1f objects/op with accounting enabled, budget is 5", allocs)
	}
}

// TestEngineQueueCapacity pins the readiness probe's denominator.
func TestEngineQueueCapacity(t *testing.T) {
	eng, err := New[int](Config{LogN: 2, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if got := eng.QueueCapacity(); got != 12 { // default 4*Workers
		t.Fatalf("QueueCapacity = %d, want 12", got)
	}
}
