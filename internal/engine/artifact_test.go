package engine

import (
	"encoding/json"
	"math/rand"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/perm"
)

// TestBenchEngineArtifact is the CI bench-snapshot hook: when
// BENCH_ENGINE_JSON names a file, it times the warm-cache and cold-miss
// serving paths against the per-call Setup baseline — with gate-level
// accounting enabled, the configuration the allocation budget is
// promised for — and writes a small JSON artifact there. Without the
// env var the test is skipped, so normal runs stay fast.
func TestBenchEngineArtifact(t *testing.T) {
	path := os.Getenv("BENCH_ENGINE_JSON")
	if path == "" {
		t.Skip("BENCH_ENGINE_JSON not set")
	}
	const logN = benchLogN
	d := perm.Random(1<<logN, rand.New(rand.NewSource(3)))
	data := benchPayload(1 << logN)

	baseline := testing.Benchmark(func(b *testing.B) {
		net := core.New(logN)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st := net.Setup(d)
			res := net.ExternalRoute(d, st)
			if perm.Apply(res.Realized, data)[d[0]] != 0 {
				b.Fatal("misroute")
			}
		}
	})

	warm := testing.Benchmark(func(b *testing.B) {
		rec := netsim.NewRecorder(core.New(logN), 2)
		eng, err := New[int](Config{LogN: logN, Recorder: rec})
		if err != nil {
			b.Fatal(err)
		}
		defer eng.Close()
		eng.Route(d, data) // prime
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if resp := eng.Route(d, data); resp.Err != nil {
				b.Fatal(resp.Err)
			}
		}
	})

	cold := testing.Benchmark(func(b *testing.B) {
		rec := netsim.NewRecorder(core.New(logN), 2)
		eng, err := New[int](Config{LogN: logN, CacheCapacity: 16, Recorder: rec})
		if err != nil {
			b.Fatal(err)
		}
		defer eng.Close()
		rng := rand.New(rand.NewSource(2))
		perms := make([]perm.Perm, 128)
		for i := range perms {
			perms[i] = perm.Random(1<<logN, rng)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if resp := eng.Route(perms[i%len(perms)], data); resp.Err != nil {
				b.Fatal(resp.Err)
			}
		}
	})

	artifact := map[string]any{
		"log_n":                logN,
		"baseline_setup_ns_op": baseline.NsPerOp(),
		"warm_ns_op":           warm.NsPerOp(),
		"warm_allocs_op":       warm.AllocsPerOp(),
		"cold_ns_op":           cold.NsPerOp(),
		"speedup_warm":         float64(baseline.NsPerOp()) / float64(warm.NsPerOp()),
	}
	out, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %s", path, out)
	if warm.AllocsPerOp() > 5 {
		t.Fatalf("warm path allocates %d objects/op with accounting enabled, budget is 5", warm.AllocsPerOp())
	}
}
