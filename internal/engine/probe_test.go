package engine

import (
	"math/rand"
	"testing"

	"repro/internal/perm"
)

// TestProbeRouteGateFaithful: ProbeRoute must report what the
// self-setting switches do with the tags — core.SelfRoute's realized
// permutation — for members of F(n) (delivered exactly) and
// non-members alike (misrouted the healthy-specific way).
func TestProbeRouteGateFaithful(t *testing.T) {
	e, err := New[int](Config{LogN: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		var d perm.Perm
		if trial%2 == 0 {
			d = perm.RandomF(e.Network().LogN(), rng)
		} else {
			d = perm.Random(e.Network().N(), rng)
		}
		got, err := e.ProbeRoute(d)
		if err != nil {
			t.Fatal(err)
		}
		want := e.Network().SelfRoute(d).Realized
		if !got.Equal(want) {
			t.Fatalf("probe %v realized %v, gate model says %v", d, got, want)
		}
	}
}

// TestProbeRouteBypassesCache: probes must neither hit nor populate the
// plan cache — adversarial one-shot permutations would otherwise evict
// hot production plans.
func TestProbeRouteBypassesCache(t *testing.T) {
	e, err := New[int](Config{LogN: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	d := perm.Random(e.Network().N(), rand.New(rand.NewSource(11)))
	for i := 0; i < 3; i++ {
		if _, err := e.ProbeRoute(d); err != nil {
			t.Fatal(err)
		}
	}
	s := e.Stats()
	if s.PlansCached != 0 {
		t.Fatalf("probes populated the plan cache: %d plans", s.PlansCached)
	}
	if s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("probes touched cache counters: hits %d, misses %d", s.Hits, s.Misses)
	}
	if s.Probes != 3 {
		t.Fatalf("probes counter = %d, want 3", s.Probes)
	}
	// A production route of the same permutation must still be a miss.
	data := make([]int, e.Network().N())
	if resp := e.Route(d, data); resp.Err != nil {
		t.Fatal(resp.Err)
	} else if resp.CacheHit {
		t.Fatal("first production route was a cache hit — a probe leaked a plan")
	}
}

// TestProbeRouteErrors: size and validity are rejected up front, and a
// closed engine refuses probes.
func TestProbeRouteErrors(t *testing.T) {
	e, err := New[int](Config{LogN: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ProbeRoute(perm.Identity(4)); err == nil {
		t.Fatal("want size error")
	}
	if _, err := e.ProbeRoute(perm.Perm{0, 0, 1, 2, 3, 4, 5, 6}); err == nil {
		t.Fatal("want validation error")
	}
	e.Close()
	if _, err := e.ProbeRoute(perm.Identity(8)); err != ErrClosed {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}
