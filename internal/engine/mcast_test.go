package engine

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/mcast"
	"repro/internal/netsim"
)

func newMcastEngine(t *testing.T, logn int, rec *netsim.Recorder) *Engine[int] {
	t.Helper()
	e, err := New[int](Config{LogN: logn, Workers: 2, Recorder: rec})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(e.Close)
	return e
}

func identityData(n int) []int {
	d := make([]int, n)
	for i := range d {
		d[i] = i
	}
	return d
}

func checkMcastData(t *testing.T, m mcast.Mapping, data []int) {
	t.Helper()
	for out, src := range m {
		want := 0
		if src >= 0 {
			want = src
		}
		if data[out] != want {
			t.Fatalf("output %d carries %d, want %d (mapping %v)", out, data[out], want, m)
		}
	}
}

func TestRouteMulticast(t *testing.T) {
	net := core.New(3)
	e := newMcastEngine(t, 3, netsim.NewRecorder(net, 2))
	n := net.N()

	m := mcast.Mapping{3, 3, 0, 3, 5, 0, -1, 5}
	resp := e.RouteMulticast(m, identityData(n))
	if resp.Err != nil {
		t.Fatalf("RouteMulticast: %v", resp.Err)
	}
	if resp.CacheHit {
		t.Fatal("first route reported a cache hit")
	}
	if resp.Plan == nil || resp.Plan.Kind != PlanMulticast || resp.Plan.Mcast == nil {
		t.Fatalf("plan not multicast: %+v", resp.Plan)
	}
	checkMcastData(t, m, resp.Data)

	resp = e.RouteMulticast(m, identityData(n))
	if resp.Err != nil {
		t.Fatalf("repeat RouteMulticast: %v", resp.Err)
	}
	if !resp.CacheHit {
		t.Fatal("repeat route missed the plan cache")
	}
	checkMcastData(t, m, resp.Data)

	st := e.Stats()
	if st.Mcasts != 2 {
		t.Fatalf("Mcasts = %d, want 2", st.Mcasts)
	}
	if want := int64(2 * m.Assigned()); st.McastCopies != want {
		t.Fatalf("McastCopies = %d, want %d", st.McastCopies, want)
	}
	if st.McastDist.Count == 0 || st.McastCopy.Count == 0 {
		t.Fatalf("phase histograms not observed: dist %d, copy %d", st.McastDist.Count, st.McastCopy.Count)
	}
}

func TestRouteMulticastReplay(t *testing.T) {
	e, err := New[int](Config{LogN: 3, Workers: 1, ReplayStates: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	n := e.Network().N()
	m := make(mcast.Mapping, n)
	for out := range m {
		m[out] = 2 // full broadcast
	}
	resp := e.RouteMulticast(m, identityData(n))
	if resp.Err != nil {
		t.Fatalf("RouteMulticast with replay: %v", resp.Err)
	}
	checkMcastData(t, m, resp.Data)
}

func TestRouteMulticastRandom(t *testing.T) {
	e := newMcastEngine(t, 4, nil)
	n := e.Network().N()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		m := make(mcast.Mapping, n)
		srcs := rng.Intn(n) + 1
		for out := range m {
			m[out] = rng.Intn(srcs)
		}
		resp := e.RouteMulticast(m, identityData(n))
		if resp.Err != nil {
			t.Fatalf("trial %d: %v", trial, resp.Err)
		}
		checkMcastData(t, m, resp.Data)
	}
}

func TestRouteMulticastErrors(t *testing.T) {
	e := newMcastEngine(t, 3, nil)
	n := e.Network().N()
	if resp := e.RouteMulticast(make(mcast.Mapping, n-1), identityData(n)); resp.Err == nil {
		t.Fatal("short mapping accepted")
	}
	empty := make(mcast.Mapping, n)
	for i := range empty {
		empty[i] = -1
	}
	if resp := e.RouteMulticast(empty, identityData(n)); resp.Err != ErrEmptyMapping {
		t.Fatalf("empty mapping: got %v, want ErrEmptyMapping", resp.Err)
	}
	bad := make(mcast.Mapping, n)
	bad[0] = n // out of range
	if resp := e.RouteMulticast(bad, identityData(n)); resp.Err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

func TestPrewarmMulticast(t *testing.T) {
	e := newMcastEngine(t, 3, nil)
	n := e.Network().N()
	m := make(mcast.Mapping, n)
	for out := range m {
		m[out] = out / 2 * 2 // pairwise fan-out from even sources
	}
	if hit, err := e.PrewarmMulticast(m); err != nil || hit {
		t.Fatalf("prewarm: hit=%v err=%v", hit, err)
	}
	resp := e.RouteMulticast(m, identityData(n))
	if resp.Err != nil || !resp.CacheHit {
		t.Fatalf("post-prewarm route: hit=%v err=%v", resp.CacheHit, resp.Err)
	}
}

func TestMcastFrameServer(t *testing.T) {
	net := core.New(3)
	rec := netsim.NewRecorder(net, 2)
	e := newMcastEngine(t, 3, rec)
	n := net.N()

	fs := e.NewMcastFrameServer()
	if err := fs.ServePrepared([]int{0}); err == nil {
		t.Fatal("ServePrepared before Prepare succeeded")
	}

	m := mcast.Mapping{1, 1, 1, 4, -1, 4, 6, -1}
	if err := fs.Prepare(m); err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if got := fs.DistPerm(); len(got) != n {
		t.Fatalf("DistPerm length %d, want %d", len(got), n)
	}
	if got := fs.PermPerm(); len(got) != n {
		t.Fatalf("PermPerm length %d, want %d", len(got), n)
	}
	outs := []int{0, 1, 2, 3, 5, 6}
	if err := fs.ServePrepared(outs); err != nil {
		t.Fatalf("ServePrepared: %v", err)
	}

	// Memoized repeat: same mapping, partial output set.
	if err := fs.Prepare(m); err != nil {
		t.Fatalf("repeat Prepare: %v", err)
	}
	if err := fs.ServePrepared([]int{3, 5}); err != nil {
		t.Fatalf("partial ServePrepared: %v", err)
	}

	st := e.Stats()
	if st.McastFrames != 2 {
		t.Fatalf("McastFrames = %d, want 2", st.McastFrames)
	}
	if want := int64(len(outs) + 2); st.McastCopies != want {
		t.Fatalf("McastCopies = %d, want %d", st.McastCopies, want)
	}

	if err := fs.Prepare(make(mcast.Mapping, n-1)); err == nil {
		t.Fatal("short mapping accepted")
	}
	if err := fs.ServePrepared([]int{0}); err == nil {
		t.Fatal("ServePrepared after failed Prepare succeeded")
	}
}

func TestMulticastLadderRecorder(t *testing.T) {
	net := core.New(3)
	rec := netsim.NewRecorder(net, 2)
	e := newMcastEngine(t, 3, rec)
	n := net.N()

	lad := e.LadderRecorder()
	if lad == nil {
		t.Fatal("LadderRecorder nil with accounting enabled")
	}
	if lad.Stages() != 3 || lad.SwitchesPerStage() != n/2 {
		t.Fatalf("ladder geometry %dx%d, want %dx%d", lad.Stages(), lad.SwitchesPerStage(), 3, n/2)
	}

	// A full broadcast programs broadcast switches; routing it twice
	// flips ladder states on the first pass only.
	m := make(mcast.Mapping, n)
	for out := range m {
		m[out] = 5
	}
	for pass := 0; pass < 2; pass++ {
		if resp := e.RouteMulticast(m, identityData(n)); resp.Err != nil {
			t.Fatalf("pass %d: %v", pass, resp.Err)
		}
	}

	var trav, bcast int64
	for s := 0; s < lad.Stages(); s++ {
		tot := lad.StageTotals(s)
		trav += tot.Traversed
		bcast += tot.Bcast
	}
	// Each of the two passes walks all n outputs through every ladder
	// stage: n traversals per stage per pass.
	if want := int64(2 * n * lad.Stages()); trav != want {
		t.Fatalf("ladder traversals = %d, want %d", trav, want)
	}
	if bcast == 0 {
		t.Fatal("broadcast mapping recorded no ladder Bcast transitions")
	}

	// The main recorder saw the two B(n) phases of both passes.
	var mainTrav int64
	for s := 0; s < rec.Stages(); s++ {
		mainTrav += rec.StageTotals(s).Traversed
	}
	if want := int64(2 * 2 * n * rec.Stages()); mainTrav != want {
		t.Fatalf("main recorder traversals = %d, want %d", mainTrav, want)
	}
}

func TestMulticastCacheKeying(t *testing.T) {
	e := newMcastEngine(t, 3, nil)
	n := e.Network().N()

	// A mapping that is also a valid permutation must not collide with
	// the unicast plan for the same vector: route the permutation via
	// the mapping path and via Submit, then re-check both still serve.
	m := make(mcast.Mapping, n)
	for i := range m {
		m[i] = n - 1 - i
	}
	if resp := e.RouteMulticast(m, identityData(n)); resp.Err != nil {
		t.Fatalf("mapping route: %v", resp.Err)
	}
	dest := make([]int, n)
	for i := range dest {
		dest[i] = n - 1 - i
	}
	resp := <-e.Submit(Request[int]{Dest: dest, Data: identityData(n)})
	if resp.Err != nil {
		t.Fatalf("unicast route: %v", resp.Err)
	}
	if r2 := e.RouteMulticast(m, identityData(n)); r2.Err != nil || !r2.CacheHit {
		t.Fatalf("mapping re-route: hit=%v err=%v", r2.CacheHit, r2.Err)
	}
}
