package engine

import (
	"errors"
	"testing"

	"repro/internal/perm"
)

// TestPrewarm resolves a plan ahead of traffic and checks the
// following Route is a cache hit, for both setup paths.
func TestPrewarm(t *testing.T) {
	e, err := New[int](Config{LogN: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	data := []int{0, 1, 2, 3, 4, 5, 6, 7}

	selfD := perm.BitReversal(3)
	kind, hit, err := e.Prewarm(selfD)
	if err != nil || kind != PlanSelfRouted || hit {
		t.Fatalf("prewarm bit reversal: kind=%v hit=%v err=%v, want self-routed miss", kind, hit, err)
	}
	if _, hit, err := e.Prewarm(selfD); err != nil || !hit {
		t.Fatalf("second prewarm must hit (hit=%v err=%v)", hit, err)
	}
	resp := e.Route(selfD, data)
	if resp.Err != nil || !resp.CacheHit || resp.Kind != PlanSelfRouted {
		t.Fatalf("route after prewarm: %+v, want self-routed cache hit", resp)
	}

	// A permutation outside F(3): prewarm takes the looping fallback.
	loopD := findNonF(t)
	kind, _, err = e.Prewarm(loopD)
	if err != nil || kind != PlanLooped {
		t.Fatalf("prewarm non-F: kind=%v err=%v, want looped", kind, err)
	}
	if resp := e.Route(loopD, data); !resp.CacheHit {
		t.Fatal("route after looped prewarm must be a cache hit")
	}

	if got := e.Stats().Prewarms; got != 3 {
		t.Fatalf("prewarms counter = %d, want 3", got)
	}
}

// TestPrewarmErrors covers the reject paths: wrong length, invalid
// permutation, closed engine.
func TestPrewarmErrors(t *testing.T) {
	e, err := New[int](Config{LogN: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Prewarm(perm.Identity(4)); err == nil {
		t.Fatal("size-4 prewarm on N=8 must be rejected")
	}
	if _, _, err := e.Prewarm(perm.Perm{0, 0, 1, 1, 2, 2, 3, 3}); err == nil {
		t.Fatal("non-permutation prewarm must be rejected")
	}
	e.Close()
	if _, _, err := e.Prewarm(perm.Identity(8)); !errors.Is(err, ErrClosed) {
		t.Fatalf("prewarm on closed engine: %v, want ErrClosed", err)
	}
}

// findNonF returns a fixed N=8 permutation outside F(3).
func findNonF(t *testing.T) perm.Perm {
	t.Helper()
	// Vector (1,3,0,2,7,5,4,6)? Just scan deterministically.
	gen := perm.Identity(8)
	for i := 0; i < 5000; i++ {
		// Deterministic Fisher-Yates-ish scramble via a simple LCG.
		seed := i*2654435761 + 1
		p := gen.Clone()
		for j := len(p) - 1; j > 0; j-- {
			seed = seed*1103515245 + 12345
			k := (seed >> 8) & 0x7fffffff % (j + 1)
			p[j], p[k] = p[k], p[j]
		}
		if !perm.InF(p) {
			return p
		}
	}
	t.Fatal("no non-F permutation found")
	return nil
}
