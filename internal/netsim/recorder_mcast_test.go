package netsim

import (
	"testing"

	"repro/internal/core"
)

// RecordMcastFlips must count a flip whenever either state bit changes
// and a broadcast transition whenever a switch enters or leaves a
// broadcast state; interleaved binary vectors must clear the broadcast
// plane so the counts stay exact.
func TestRecordMcastFlips(t *testing.T) {
	r := NewRecorderGeom(2, 3, 2)
	sh := r.Shard()
	words := r.MaskWords()
	lo, hi := make([]uint64, words), make([]uint64, words)

	// Vector 1: switch (0,0) bcast-upper (lo=0, hi=1), (1,2) cross.
	st := core.McastStates{
		{core.McBcastUpper, core.McStraight, core.McStraight},
		{core.McStraight, core.McStraight, core.McCross},
	}
	r.PackMcastStatesInto(st, lo, hi)
	sh.RecordMcastFlips(lo, hi)
	if got := r.StageTotals(0); got.Flips != 1 || got.Bcast != 1 {
		t.Fatalf("stage 0 after vector 1: %+v", got)
	}
	if got := r.StageTotals(1); got.Flips != 1 || got.Bcast != 0 {
		t.Fatalf("stage 1 after vector 1: %+v", got)
	}

	// Same vector again: no change, no counts.
	sh.RecordMcastFlips(lo, hi)
	if got := r.StageTotals(0); got.Flips != 1 || got.Bcast != 1 {
		t.Fatalf("stage 0 after repeat: %+v", got)
	}

	// (0,0) bcast-upper -> bcast-lower: both bits would be... lo flips
	// (2 -> 3), hi unchanged: a flip but not a broadcast transition.
	st[0][0] = core.McBcastLower
	r.PackMcastStatesInto(st, lo, hi)
	sh.RecordMcastFlips(lo, hi)
	if got := r.StageTotals(0); got.Flips != 2 || got.Bcast != 1 {
		t.Fatalf("stage 0 after upper->lower: %+v", got)
	}

	// A binary vector (all straight) leaves the broadcast state: the
	// flip and the broadcast transition must both be counted.
	bin := core.States{{false, false, false}, {false, false, false}}
	mask := r.PackStates(bin)
	sh.RecordFlips(mask)
	if got := r.StageTotals(0); got.Flips != 3 || got.Bcast != 2 {
		t.Fatalf("stage 0 after binary vector: %+v", got)
	}
	if got := r.StageTotals(1); got.Flips != 2 || got.Bcast != 0 {
		t.Fatalf("stage 1 after binary vector: %+v", got)
	}

	snap := r.Snapshot()
	if snap.Counts[0].Bcast[0] != 2 {
		t.Fatalf("snapshot bcast row: %v", snap.Counts[0].Bcast)
	}
}

// NewRecorderGeom must accept the ladder geometry (log N stages) and
// stay consistent with the *core.Network constructor for B(n).
func TestNewRecorderGeom(t *testing.T) {
	net := core.New(3)
	a := NewRecorder(net, 1)
	b := NewRecorderGeom(net.Stages(), net.SwitchesPerStage(), 1)
	if a.Stages() != b.Stages() || a.SwitchesPerStage() != b.SwitchesPerStage() {
		t.Fatalf("geometry mismatch: (%d,%d) vs (%d,%d)",
			a.Stages(), a.SwitchesPerStage(), b.Stages(), b.SwitchesPerStage())
	}
	lad := NewRecorderGeom(3, 4, 1)
	if lad.Stages() != 3 || lad.SwitchesPerStage() != 4 || lad.MaskWords() != 3 {
		t.Fatalf("ladder recorder geometry: stages=%d switches=%d words=%d",
			lad.Stages(), lad.SwitchesPerStage(), lad.MaskWords())
	}
}
