package netsim

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/perm"
)

// TestFaultyAgreesWithCore cross-validates the concurrent stuck-switch
// simulation against the synchronous core.RouteWithFaults: same faults,
// same vectors, so the realized permutation and the misrouted set must
// match exactly.
func TestFaultyAgreesWithCore(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{2, 3, 4} {
		net := core.New(n)
		for trial := 0; trial < 20; trial++ {
			nf := 1 + rng.Intn(2)
			faults := make([]core.Fault, nf)
			for i := range faults {
				faults[i] = core.Fault{
					Stage:        rng.Intn(net.Stages()),
					Switch:       rng.Intn(net.N() / 2),
					StuckCrossed: rng.Intn(2) == 1,
				}
			}
			d := perm.Random(net.N(), rng)
			want := net.RouteWithFaults(d, faults)
			got, _ := NewWithFaults(net, faults).RouteOne(d)
			if !got.Realized.Equal(want.Realized) {
				t.Fatalf("n=%d faults=%v d=%v: concurrent realized %v, core %v",
					n, faults, d, got.Realized, want.Realized)
			}
			if got.OK() != want.OK() {
				t.Fatalf("n=%d: misroute detection disagrees: %v vs %v",
					n, got.Misrouted, want.Misrouted)
			}
		}
	}
}

// TestFaultyHealthyFaultSetIsTransparent checks an empty fault set
// behaves exactly like the undamaged engine.
func TestFaultyHealthyFaultSetIsTransparent(t *testing.T) {
	net := core.New(3)
	d := perm.BitReversal(3)
	res, _ := NewWithFaults(net, nil).RouteOne(d)
	if !res.OK() {
		t.Fatal("no faults: the self-routable vector must route cleanly")
	}
	if !res.Realized.Equal(d) {
		t.Fatalf("realized %v, want %v", res.Realized, d)
	}
}

// TestFaultyRejectsBadCoordinates pins the validation panic.
func TestFaultyRejectsBadCoordinates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range fault must panic")
		}
	}()
	NewWithFaults(core.New(2), []core.Fault{{Stage: 99, Switch: 0}})
}
