package netsim

import (
	"sync"

	"repro/internal/bits"
	"repro/internal/core"
	"repro/internal/perm"
)

// This file adds the self-timed latency view of the concurrent engine:
// every message carries a logical timestamp (switch traversals since
// injection), each switch stamps its outputs max(inputs)+1 in the
// asynchronous-circuit fashion, and the run reports the arrival time at
// every output. For a single vector every output must arrive at exactly
// GateDelay() = 2 log N - 1 — the paper's transmission-delay claim
// observed on self-timed hardware rather than computed from the stage
// count. It also supports the omega-forced and externally-set modes so
// the concurrent engine covers everything the synchronous one does.

// TimedMsg is a tagged datum with a logical arrival time.
type TimedMsg struct {
	Tag  int
	Src  int
	Time int // switch traversals experienced so far
}

// TimedResult reports a timed single-vector run.
type TimedResult struct {
	Realized  perm.Perm
	Misrouted []int
	// ArrivalTime[y] is the logical time the signal reached output y.
	ArrivalTime []int
}

// OK reports whether the permutation was realized.
func (r *TimedResult) OK() bool { return len(r.Misrouted) == 0 }

// MaxArrival returns the slowest output's arrival time.
func (r *TimedResult) MaxArrival() int {
	m := 0
	for _, t := range r.ArrivalTime {
		if t > m {
			m = t
		}
	}
	return m
}

// RouteTimed routes one vector with logical timestamps under the given
// mode. ext is consulted only for core.External.
func (e *Engine) RouteTimed(d perm.Perm, mode core.Mode, ext core.States) *TimedResult {
	N := e.net.N()
	n := e.net.LogN()
	stages := e.net.Stages()
	if len(d) != N {
		panic("netsim: vector length mismatch")
	}
	if mode == core.External {
		if len(ext) != stages {
			panic("netsim: external states have wrong stage count")
		}
	}

	wires := make([][]chan TimedMsg, stages+1)
	for s := range wires {
		wires[s] = make([]chan TimedMsg, N)
		for y := range wires[s] {
			wires[s][y] = make(chan TimedMsg, 1)
		}
	}
	link := e.net.Wiring()

	var wg sync.WaitGroup
	for s := 0; s < stages; s++ {
		cb := e.net.ControlBit(s)
		for i := 0; i < N/2; i++ {
			wg.Add(1)
			go func(s, i, cb int) {
				defer wg.Done()
				upIn, loIn := wires[s][2*i], wires[s][2*i+1]
				var upOut, loOut chan TimedMsg
				if s == stages-1 {
					upOut, loOut = wires[stages][2*i], wires[stages][2*i+1]
				} else {
					upOut, loOut = wires[s+1][link[s][2*i]], wires[s+1][link[s][2*i+1]]
				}
				// Self-timed: the switch fires when both inputs are
				// present; outputs leave one traversal later than the
				// later input.
				u := <-upIn
				l := <-loIn
				t := u.Time
				if l.Time > t {
					t = l.Time
				}
				t++
				u.Time, l.Time = t, t
				var crossed bool
				switch mode {
				case core.SelfRouting:
					crossed = bits.Bit(u.Tag, cb) == 1
				case core.OmegaForced:
					if s <= n-2 {
						crossed = false
					} else {
						crossed = bits.Bit(u.Tag, cb) == 1
					}
				case core.External:
					crossed = ext[s][i]
				}
				if crossed {
					upOut <- l
					loOut <- u
				} else {
					upOut <- u
					loOut <- l
				}
			}(s, i, cb)
		}
	}
	for i, tag := range d {
		wires[0][i] <- TimedMsg{Tag: tag, Src: i, Time: 0}
	}
	res := &TimedResult{
		Realized:    make(perm.Perm, N),
		ArrivalTime: make([]int, N),
	}
	for y := 0; y < N; y++ {
		m := <-wires[stages][y]
		res.Realized[m.Src] = y
		res.ArrivalTime[y] = m.Time
	}
	wg.Wait()
	for i, dest := range d {
		if res.Realized[i] != dest {
			res.Misrouted = append(res.Misrouted, i)
		}
	}
	return res
}
