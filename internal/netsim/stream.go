package netsim

import (
	"sync"

	"repro/internal/bits"
	"repro/internal/perm"
)

// Stream is a persistently running concurrent network: the switch
// goroutines start once and then route any number of vectors until
// Close, instead of being rebuilt per Run call. Vectors pipeline
// through the fabric exactly as in Run — channels preserve per-wire
// order, so vector k clears each wire before vector k+1 uses it
// (Section IV).
//
// Submit and Results may be used from different goroutines; results
// arrive in submission order. A Stream is created with Engine.Start.
type Stream struct {
	eng     *Engine
	feed    chan perm.Perm
	results chan VectorResult
	wg      sync.WaitGroup
	once    sync.Once
}

// Start launches the switch goroutines and returns a Stream ready to
// route. depth bounds the number of vectors in flight inside the
// fabric: every wire is buffered to depth, so up to depth vectors
// pipeline without blocking the feeder (depth < 1 is treated as 1).
func (e *Engine) Start(depth int) *Stream {
	if depth < 1 {
		depth = 1
	}
	N := e.net.N()
	stages := e.net.Stages()

	// wires[s][y] carries the signal entering stage s on line y;
	// wires[stages] holds the network outputs.
	wires := make([][]chan Msg, stages+1)
	for s := range wires {
		wires[s] = make([]chan Msg, N)
		for y := range wires[s] {
			wires[s][y] = make(chan Msg, depth)
		}
	}
	link := e.net.Wiring()

	s := &Stream{
		eng:     e,
		feed:    make(chan perm.Perm, depth),
		results: make(chan VectorResult, depth),
	}

	// One goroutine per switch, running until its inputs close. Each
	// wire has exactly one writer, so a switch closing its two output
	// wires on shutdown propagates termination stage by stage.
	for st := 0; st < stages; st++ {
		cb := e.net.ControlBit(st)
		forced := e.omega && st <= e.net.LogN()-2
		for i := 0; i < N/2; i++ {
			frozen, isStuck := e.stuck[switchID{st, i}]
			sh := e.rec.shardFor(st, i)
			recordAll := sh != nil && !e.faultsOnly
			s.wg.Add(1)
			go func(st, i, cb int) {
				defer s.wg.Done()
				upIn, loIn := wires[st][2*i], wires[st][2*i+1]
				var upOut, loOut chan Msg
				if st == stages-1 {
					upOut, loOut = wires[stages][2*i], wires[stages][2*i+1]
				} else {
					upOut, loOut = wires[st+1][link[st][2*i]], wires[st+1][link[st][2*i+1]]
				}
				prev := false // power-on state: straight
				for {
					u, ok := <-upIn
					if !ok {
						close(upOut)
						close(loOut)
						return
					}
					// Fig. 3: decide from the upper input's control bit,
					// forward immediately — self-timing. The omega bit
					// forces the first n-1 stages straight; a stuck
					// switch stays frozen.
					desired := !forced && bits.Bit(u.Tag, cb) == 1
					crossed := desired
					if isStuck {
						crossed = frozen
					}
					if sh != nil {
						if recordAll {
							sh.Traverse(st, i)
							if forced {
								sh.Forced(st, i)
							}
							if crossed != prev {
								sh.Flip(st, i)
							}
						}
						if isStuck && desired != frozen {
							sh.FaultHit(st, i)
						}
					}
					prev = crossed
					if crossed {
						loOut <- u
					} else {
						upOut <- u
					}
					l := <-loIn
					if recordAll {
						sh.Traverse(st, i)
					}
					if crossed {
						upOut <- l
					} else {
						loOut <- l
					}
				}
			}(st, i, cb)
		}
	}

	// Feeder: inject each submitted vector at the inputs, then pass the
	// expected tags to the collector.
	expect := make(chan perm.Perm, depth)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for d := range s.feed {
			for i, tag := range d {
				wires[0][i] <- Msg{Tag: tag, Src: i}
			}
			expect <- d
		}
		for i := 0; i < N; i++ {
			close(wires[0][i])
		}
		close(expect)
	}()

	// Collector: read exactly N outputs per vector — per-wire FIFO
	// order guarantees they belong to the vector at hand.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for d := range expect {
			realized := make(perm.Perm, N)
			for y := 0; y < N; y++ {
				m := <-wires[stages][y]
				realized[m.Src] = y
			}
			res := VectorResult{Realized: realized}
			for i, dest := range d {
				if realized[i] != dest {
					res.Misrouted = append(res.Misrouted, i)
				}
			}
			s.results <- res
		}
		close(s.results)
	}()

	return s
}

// Submit feeds one destination-tag vector into the fabric. It blocks
// when depth vectors are already in flight. Submit must not be called
// after Close.
func (s *Stream) Submit(d perm.Perm) {
	if len(d) != s.eng.net.N() {
		panic("netsim: vector length mismatch")
	}
	s.feed <- d.Clone()
}

// Results returns the channel of routed vectors, in submission order.
// The channel closes after Close once every in-flight vector has
// drained.
func (s *Stream) Results() <-chan VectorResult { return s.results }

// RouteAll submits all vectors and collects their results — Run
// semantics on a running stream. It must not race with other Submit
// or Results readers.
func (s *Stream) RouteAll(vectors []perm.Perm) []VectorResult {
	out := make([]VectorResult, 0, len(vectors))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range vectors {
			out = append(out, <-s.results)
		}
	}()
	for _, d := range vectors {
		s.Submit(d)
	}
	<-done
	return out
}

// Close shuts the stream down: no more submissions are accepted,
// in-flight vectors finish draining, the switch goroutines exit, and
// the results channel closes. Close is idempotent and blocks until
// shutdown completes, so every submitted vector must have been (or be
// concurrently being) consumed from Results — RouteAll guarantees
// this; ad-hoc submitters should keep a Results reader running. At
// most depth unread results are tolerated (the channel's buffer).
func (s *Stream) Close() {
	s.once.Do(func() { close(s.feed) })
	s.wg.Wait()
}
