package netsim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/perm"
)

// expectedTraversals derives per-switch tag counts from the synchronous
// evaluator's gate-level trace: switch (s, i) carries exactly the tags
// appearing on lines 2i and 2i+1 at stage s's input.
func expectedTraversals(res *core.Result, stages, switches int) [][]int64 {
	want := make([][]int64, stages)
	for s := 0; s < stages; s++ {
		want[s] = make([]int64, switches)
		for y := range res.TagTrace[s] {
			want[s][y/2]++
		}
	}
	return want
}

// addStates folds one routed vector's switch setting into a running
// flip expectation: a switch flips whenever its state differs from the
// previous vector's (starting from the all-straight power-on setting).
func addFlips(flips [][]int64, prev *core.States, st core.States) {
	for s := range st {
		for i, crossed := range st[s] {
			if crossed != (*prev)[s][i] {
				flips[s][i]++
			}
		}
	}
	*prev = st.Clone()
}

// TestRecorderExactCounts routes known permutations at N=8 through the
// concurrent engine with the flight recorder on and checks every
// per-switch counter — traversals, flips — against counts derived
// from the synchronous evaluator's gate-level trace.
func TestRecorderExactCounts(t *testing.T) {
	const n = 3
	net := core.New(n)
	stages, switches := net.Stages(), net.SwitchesPerStage()

	vectors := []perm.Perm{
		perm.BitReversal(n),
		perm.Identity(1 << n),
		perm.BitReversal(n), // repeat: flips only where identity differed
	}
	wantTrav := make([][]int64, stages)
	wantFlips := make([][]int64, stages)
	for s := range wantTrav {
		wantTrav[s] = make([]int64, switches)
		wantFlips[s] = make([]int64, switches)
	}
	prev := net.NewStates()
	for _, d := range vectors {
		res := net.SelfRoute(d)
		if !res.OK() {
			t.Fatalf("premise: %v must self-route", d)
		}
		for s, row := range expectedTraversals(res, stages, switches) {
			for i, c := range row {
				wantTrav[s][i] += c
			}
		}
		addFlips(wantFlips, &prev, res.States)
	}

	eng := New(net)
	rec := NewRecorder(net, 4)
	eng.SetRecorder(rec)
	results, _ := eng.Run(vectors)
	for k, res := range results {
		if !res.OK() {
			t.Fatalf("vector %d misrouted: %v", k, res.Misrouted)
		}
	}

	snap := rec.Snapshot()
	if snap.Stages != stages || snap.SwitchesPerStage != switches {
		t.Fatalf("snapshot geometry %dx%d, want %dx%d", snap.Stages, snap.SwitchesPerStage, stages, switches)
	}
	totalTrav := int64(0)
	for s := 0; s < stages; s++ {
		for i := 0; i < switches; i++ {
			if got := snap.Counts[s].Traversed[i]; got != wantTrav[s][i] {
				t.Errorf("traversed[%d][%d] = %d, want %d (gate trace)", s, i, got, wantTrav[s][i])
			}
			if got := snap.Counts[s].Flips[i]; got != wantFlips[s][i] {
				t.Errorf("flips[%d][%d] = %d, want %d", s, i, got, wantFlips[s][i])
			}
			if snap.Counts[s].Forced[i] != 0 || snap.Counts[s].FaultHits[i] != 0 {
				t.Errorf("switch (%d,%d): unexpected forced/fault counts %+v", s, i, snap.Counts[s])
			}
			totalTrav += snap.Counts[s].Traversed[i]
		}
	}
	// Every routed tag traverses one switch per stage: total traversals
	// must equal packets routed times the transmission gate delay.
	if want := int64(len(vectors)) * int64(net.N()) * int64(net.GateDelay()); totalTrav != want {
		t.Fatalf("total traversals %d, want packets*stages = %d", totalTrav, want)
	}
	for s := 0; s < stages; s++ {
		tot := rec.StageTotals(s)
		if tot.Traversed != int64(len(vectors))*int64(net.N()) {
			t.Fatalf("stage %d traversed total %d, want %d", s, tot.Traversed, len(vectors)*net.N())
		}
	}
}

// TestRecorderOmegaForced asserts the omega bit: stages 0..n-2 are
// forced straight and every forced setting is counted, while the
// realized permutation matches the synchronous omega evaluator —
// including the forced stages' traversal counts.
func TestRecorderOmegaForced(t *testing.T) {
	const n = 3
	net := core.New(n)
	d := perm.CyclicShift(n, 3)
	ref := net.OmegaRoute(d)
	if !ref.OK() {
		t.Fatalf("premise: %v must route with the omega bit", d)
	}

	eng := New(net)
	eng.SetOmega(true)
	rec := NewRecorder(net, 2)
	eng.SetRecorder(rec)
	res, states := eng.RouteOne(d)
	if !res.OK() {
		t.Fatalf("omega route misrouted: %v", res.Misrouted)
	}
	if !res.Realized.Equal(ref.Realized) {
		t.Fatalf("realized %v, want %v", res.Realized, ref.Realized)
	}
	for s := range states {
		for i := range states[s] {
			if states[s][i] != ref.States[s][i] {
				t.Fatalf("state (%d,%d) = %v, want %v", s, i, states[s][i], ref.States[s][i])
			}
		}
	}

	snap := rec.Snapshot()
	for s := 0; s < net.Stages(); s++ {
		for i := 0; i < net.SwitchesPerStage(); i++ {
			wantForced := int64(0)
			if s <= n-2 {
				wantForced = 1
			}
			if got := snap.Counts[s].Forced[i]; got != wantForced {
				t.Errorf("forced[%d][%d] = %d, want %d", s, i, got, wantForced)
			}
			// Forced stages still carry their two tags per vector.
			if got := snap.Counts[s].Traversed[i]; got != 2 {
				t.Errorf("traversed[%d][%d] = %d, want 2", s, i, got)
			}
		}
	}
}

// TestRecorderFaultHits pins a stuck switch and checks the recorder
// localizes the damage: the fault-hit counter increments exactly at the
// stuck coordinate, and only for vectors demanding the opposite state.
func TestRecorderFaultHits(t *testing.T) {
	const n = 3
	net := core.New(n)
	fault := core.Fault{Stage: 0, Switch: 0, StuckCrossed: true}

	eng := NewWithFaults(net, []core.Fault{fault})
	rec := NewRecorder(net, 1)
	eng.SetRecorder(rec)

	// Identity wants switch (0,0) straight: the stuck-crossed state is a
	// hit (whether or not downstream self-routing absorbs the swap).
	id := perm.Identity(1 << n)
	ref := net.RouteWithFaults(id, []core.Fault{fault})
	res, _ := eng.RouteOne(id)
	if !res.Realized.Equal(ref.Realized) {
		t.Fatalf("faulted realized %v, want %v (core.RouteWithFaults)", res.Realized, ref.Realized)
	}
	snap := rec.Snapshot()
	for s := 0; s < net.Stages(); s++ {
		for i := 0; i < net.SwitchesPerStage(); i++ {
			want := int64(0)
			if s == fault.Stage && i == fault.Switch {
				want = 1
			}
			if got := snap.Counts[s].FaultHits[i]; got != want {
				t.Errorf("faultHits[%d][%d] = %d, want %d", s, i, got, want)
			}
		}
	}

	// Fault-only mode must contribute nothing but fault hits.
	eng2 := NewWithFaults(net, []core.Fault{fault})
	rec2 := NewRecorder(net, 1)
	eng2.SetFaultRecorder(rec2)
	eng2.RouteOne(id)
	snap2 := rec2.Snapshot()
	for s := 0; s < net.Stages(); s++ {
		tot := rec2.StageTotals(s)
		if tot.Traversed != 0 || tot.Flips != 0 || tot.Forced != 0 {
			t.Fatalf("fault-only mode recorded extra counters at stage %d: %+v", s, tot)
		}
		_ = snap2
	}
	if got := rec2.StageTotals(fault.Stage).FaultHits; got != 1 {
		t.Fatalf("fault-only mode fault hits = %d, want 1", got)
	}
}

// TestRecorderStream checks the persistent stream records the same
// counts as one-shot runs, and that a nil recorder stays silent.
func TestRecorderStream(t *testing.T) {
	const n = 3
	net := core.New(n)
	eng := New(net)
	rec := NewRecorder(net, 3)
	eng.SetRecorder(rec)
	st := eng.Start(2)
	vectors := []perm.Perm{perm.BitReversal(n), perm.PerfectShuffle(n)}
	for _, res := range st.RouteAll(vectors) {
		if !res.OK() {
			t.Fatalf("stream misrouted: %v", res.Misrouted)
		}
	}
	st.Close()
	for s := 0; s < net.Stages(); s++ {
		if tot := rec.StageTotals(s); tot.Traversed != int64(len(vectors))*int64(net.N()) {
			t.Fatalf("stream stage %d traversed %d, want %d", s, tot.Traversed, len(vectors)*net.N())
		}
	}

	// Disabled path: a nil recorder must not panic anywhere.
	var nilRec *Recorder
	if nilRec.Shard() != nil || nilRec.Stages() != 0 || nilRec.SwitchesPerStage() != 0 {
		t.Fatal("nil recorder accessors must be inert")
	}
	nilRec.Shard().Traverse(0, 0)
	nilRec.Shard().RecordVector(nil)
	if s := nilRec.Snapshot(); s.Counts != nil {
		t.Fatal("nil recorder snapshot must be empty")
	}
}
