package netsim

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/perm"
)

// TestStreamMatchesRun routes the same vector set through the per-call
// Run engine and a persistent Stream and demands identical outcomes.
func TestStreamMatchesRun(t *testing.T) {
	const n = 4
	rng := rand.New(rand.NewSource(1))
	net := core.New(n)
	eng := New(net)
	vectors := []perm.Perm{
		perm.BitReversal(n),
		perm.PerfectShuffle(n),
		perm.Random(1<<n, rng), // almost surely misroutes — must still agree
		perm.Identity(1 << n),
	}
	want, _ := eng.Run(vectors)

	s := eng.Start(len(vectors))
	defer s.Close()
	got := s.RouteAll(vectors)
	if len(got) != len(want) {
		t.Fatalf("stream returned %d results, want %d", len(got), len(want))
	}
	for k := range want {
		if !got[k].Realized.Equal(want[k].Realized) {
			t.Fatalf("vector %d: stream realized %v, run realized %v", k, got[k].Realized, want[k].Realized)
		}
		if got[k].OK() != want[k].OK() {
			t.Fatalf("vector %d: stream OK=%v, run OK=%v", k, got[k].OK(), want[k].OK())
		}
	}
}

// TestStreamReuse routes several separate waves through one Stream —
// the goroutines must survive across waves, which is the point of the
// persistent engine.
func TestStreamReuse(t *testing.T) {
	const n = 3
	net := core.New(n)
	s := New(net).Start(4)
	defer s.Close()
	for wave := 0; wave < 5; wave++ {
		vectors := []perm.Perm{perm.BitReversal(n), perm.VectorReversal(n), perm.Identity(8)}
		for k, res := range s.RouteAll(vectors) {
			if !res.OK() {
				t.Fatalf("wave %d vector %d: misrouted %v", wave, k, res.Misrouted)
			}
			if !res.Realized.Equal(vectors[k]) {
				t.Fatalf("wave %d vector %d: realized %v, want %v", wave, k, res.Realized, vectors[k])
			}
		}
	}
}

// TestStreamAgainstCore checks the stream against the synchronous
// evaluator on random permutations, including non-F members.
func TestStreamAgainstCore(t *testing.T) {
	const n = 5
	rng := rand.New(rand.NewSource(9))
	net := core.New(n)
	s := New(net).Start(8)
	defer s.Close()
	var vectors []perm.Perm
	for i := 0; i < 12; i++ {
		vectors = append(vectors, perm.Random(1<<n, rng))
		vectors = append(vectors, perm.RandomF(n, rng))
	}
	results := s.RouteAll(vectors)
	for k, d := range vectors {
		want := net.SelfRoute(d)
		if !results[k].Realized.Equal(want.Realized) {
			t.Fatalf("vector %d (%v): stream and core disagree", k, d)
		}
		if results[k].OK() != want.OK() {
			t.Fatalf("vector %d: OK mismatch", k)
		}
	}
}

// TestStreamPipelining submits more vectors than the in-flight depth
// while a consumer drains concurrently.
func TestStreamPipelining(t *testing.T) {
	const n = 4
	net := core.New(n)
	s := New(net).Start(2)
	d := perm.BitReversal(n)
	const waves = 32
	done := make(chan int)
	go func() {
		ok := 0
		for res := range s.Results() {
			if res.OK() {
				ok++
			}
		}
		done <- ok
	}()
	for i := 0; i < waves; i++ {
		s.Submit(d)
	}
	s.Close()
	if ok := <-done; ok != waves {
		t.Fatalf("%d of %d pipelined vectors routed OK", ok, waves)
	}
}

// TestStreamCloseIdempotent double-closes and closes with nothing
// submitted.
func TestStreamCloseIdempotent(t *testing.T) {
	net := core.New(2)
	s := New(net).Start(1)
	s.Close()
	s.Close()
	if _, open := <-s.Results(); open {
		t.Fatal("results channel should be closed after Close")
	}
}
