package netsim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/perm"
)

// TestFaultHitsCoexistWithMcastCounters pins the recorder interaction a
// fabric plane serving multicast traffic with injected damage depends
// on: the engine's serving path records four-state copy-ladder settings
// (flips plus bcast_flips) into the same per-switch counters the
// fault-check pass records fault hits into. The two kinds must move
// independently — a fault-check pass contributes fault hits only (no
// traversals, no flips), and multicast recording must never disturb
// the fault-hit column.
func TestFaultHitsCoexistWithMcastCounters(t *testing.T) {
	net := core.New(2)
	rec := NewRecorder(net, 2)
	sh := rec.Shard()

	// A four-state setting with one broadcast: flips and bcast_flips.
	st := core.McastStates{
		{core.McBcastUpper, core.McStraight},
		{core.McStraight, core.McCross},
		{core.McStraight, core.McStraight},
	}
	words := rec.MaskWords()
	lo, hi := make([]uint64, words), make([]uint64, words)
	rec.PackMcastStatesInto(st, lo, hi)
	sh.RecordMcastFlips(lo, hi)
	base0 := rec.StageTotals(0)
	if base0.Flips != 1 || base0.Bcast != 1 || base0.FaultHits != 0 {
		t.Fatalf("stage 0 after mcast vector: %+v", base0)
	}

	// Fault-check pass: switch (0,0) stuck crossed, identity demands it
	// straight, so the check registers a fault hit — and nothing else.
	// The pass still delivers correctly: the swapped pair is
	// bit-complementary, so the downstream self-setting switches read
	// the swapped tags and compensate — a hit without a misroute, which
	// is exactly why fault-hit accounting cannot be derived from
	// misroute detection.
	eng := NewWithFaults(net, []core.Fault{{Stage: 0, Switch: 0, StuckCrossed: true}})
	eng.SetFaultRecorder(rec)
	res, _ := eng.RouteOne(perm.Identity(net.N()))
	if !res.OK() {
		t.Fatalf("self-routing must compensate the stage-0 swap, got misroutes %v", res.Misrouted)
	}
	after0 := rec.StageTotals(0)
	if after0.FaultHits != 1 {
		t.Fatalf("fault hits = %d, want 1 (%+v)", after0.FaultHits, after0)
	}
	if after0.Flips != base0.Flips || after0.Bcast != base0.Bcast || after0.Traversed != base0.Traversed {
		t.Fatalf("fault-check pass disturbed serving counters: %+v -> %+v", base0, after0)
	}

	// Another multicast setting change on the damaged switch: the flip
	// and broadcast columns move, the fault-hit column does not.
	st[0][0] = core.McCross
	rec.PackMcastStatesInto(st, lo, hi)
	sh.RecordMcastFlips(lo, hi)
	final0 := rec.StageTotals(0)
	if final0.Flips != base0.Flips+1 || final0.Bcast != base0.Bcast+1 {
		t.Fatalf("stage 0 after second mcast vector: %+v", final0)
	}
	if final0.FaultHits != 1 {
		t.Fatalf("mcast recording disturbed fault hits: %+v", final0)
	}
}
