package netsim

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/perm"
)

// TestTimedArrivalIsGateDelay: on self-timed hardware with all inputs
// injected at t=0, every output arrives at exactly 2 log N - 1 — the
// paper's transmission-delay claim, observed rather than computed.
func TestTimedArrivalIsGateDelay(t *testing.T) {
	rng := rand.New(rand.NewSource(261))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(7)
		net := core.New(n)
		e := New(net)
		d := perm.Random(1<<uint(n), rng)
		res := e.RouteTimed(d, core.SelfRouting, nil)
		for y, at := range res.ArrivalTime {
			if at != net.GateDelay() {
				t.Fatalf("n=%d: output %d arrived at t=%d, want %d", n, y, at, net.GateDelay())
			}
		}
	}
}

// TestTimedMatchesSyncAllModes: the timed concurrent engine agrees with
// the synchronous evaluator in every mode.
func TestTimedMatchesSyncAllModes(t *testing.T) {
	rng := rand.New(rand.NewSource(262))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(7)
		net := core.New(n)
		e := New(net)
		d := perm.Random(1<<uint(n), rng)

		selfSync := net.SelfRoute(d)
		selfConc := e.RouteTimed(d, core.SelfRouting, nil)
		if !selfConc.Realized.Equal(selfSync.Realized) {
			t.Fatalf("n=%d: self-routing mismatch", n)
		}

		omSync := net.OmegaRoute(d)
		omConc := e.RouteTimed(d, core.OmegaForced, nil)
		if !omConc.Realized.Equal(omSync.Realized) {
			t.Fatalf("n=%d: omega-forced mismatch", n)
		}

		st := net.Setup(d)
		extSync := net.ExternalRoute(d, st)
		extConc := e.RouteTimed(d, core.External, st)
		if !extConc.Realized.Equal(extSync.Realized) {
			t.Fatalf("n=%d: external mismatch", n)
		}
		if !extConc.OK() {
			t.Fatalf("n=%d: external routing must realize everything", n)
		}
	}
}

// TestTimedOmegaMode: omega permutations route concurrently with the
// omega bit.
func TestTimedOmegaMode(t *testing.T) {
	n := 5
	e := New(core.New(n))
	d := perm.CyclicShift(n, 7)
	if !e.RouteTimed(d, core.OmegaForced, nil).OK() {
		t.Fatal("omega-forced concurrent routing failed")
	}
	// Fig. 5's witness: fails plain, works with the bit — concurrently.
	e2 := New(core.New(2))
	w := perm.Perm{1, 3, 2, 0}
	if e2.RouteTimed(w, core.SelfRouting, nil).OK() {
		t.Fatal("witness should fail plain self-routing")
	}
	if !e2.RouteTimed(w, core.OmegaForced, nil).OK() {
		t.Fatal("witness should route with the omega bit")
	}
}

func TestTimedMaxArrival(t *testing.T) {
	net := core.New(4)
	e := New(net)
	res := e.RouteTimed(perm.BitReversal(4), core.SelfRouting, nil)
	if res.MaxArrival() != net.GateDelay() {
		t.Fatalf("max arrival %d, want %d", res.MaxArrival(), net.GateDelay())
	}
}

func TestTimedValidation(t *testing.T) {
	e := New(core.New(3))
	for _, bad := range []func(){
		func() { e.RouteTimed(perm.Identity(4), core.SelfRouting, nil) },
		func() { e.RouteTimed(perm.Identity(8), core.External, make(core.States, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			bad()
		}()
	}
}
