package netsim

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/perm"
)

// TestAgreesWithSynchronousEngine: the concurrent engine must realize
// exactly the same mapping, with exactly the same switch states, as the
// synchronous evaluator — exhaustive at N=4, random up to N=256.
func TestAgreesWithSynchronousEngine(t *testing.T) {
	b := core.New(2)
	e := New(b)
	perm.ForEach(4, func(p perm.Perm) bool {
		sync := b.SelfRoute(p)
		res, st := e.RouteOne(p)
		if !res.Realized.Equal(sync.Realized) {
			t.Fatalf("realized mapping differs on %v: %v vs %v", p.Clone(), res.Realized, sync.Realized)
		}
		for s := range st {
			for i := range st[s] {
				if st[s][i] != sync.States[s][i] {
					t.Fatalf("state differs at stage %d switch %d on %v", s, i, p.Clone())
				}
			}
		}
		return true
	})

	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(8)
		net := core.New(n)
		eng := New(net)
		p := perm.Random(1<<uint(n), rng)
		syncRes := net.SelfRoute(p)
		res, _ := eng.RouteOne(p)
		if !res.Realized.Equal(syncRes.Realized) {
			t.Fatalf("n=%d: concurrent and synchronous engines disagree on %v", n, p)
		}
		if res.OK() != syncRes.OK() {
			t.Fatalf("n=%d: OK flags disagree on %v", n, p)
		}
	}
}

// TestRoutesF: F permutations route correctly through the concurrent
// hardware.
func TestRoutesF(t *testing.T) {
	n := 6
	b := core.New(n)
	e := New(b)
	for _, d := range []perm.Perm{
		perm.BitReversal(n),
		perm.MatrixTranspose(n),
		perm.PerfectShuffle(n),
		perm.CyclicShift(n, 5),
		perm.POrderingShift(n, 11, 7),
	} {
		res, _ := e.RouteOne(d)
		if !res.OK() {
			t.Errorf("concurrent engine misrouted %v", d)
		}
	}
}

// TestStreamOfVectors: many vectors with different permutations flow
// through concurrently and all arrive intact and in order.
func TestStreamOfVectors(t *testing.T) {
	n := 5
	N := 1 << uint(n)
	b := core.New(n)
	e := New(b)
	rng := rand.New(rand.NewSource(112))
	const depth = 50
	vecs := make([]perm.Perm, depth)
	for k := range vecs {
		if k%2 == 0 {
			vecs[k] = perm.RandomBPC(n, rng).Perm()
		} else {
			vecs[k] = perm.POrderingShift(n, 2*rng.Intn(N/2)+1, rng.Intn(N))
		}
	}
	results, _ := e.Run(vecs)
	if len(results) != depth {
		t.Fatalf("got %d results", len(results))
	}
	for k, res := range results {
		if !res.OK() {
			t.Errorf("vector %d misrouted: %v", k, res.Misrouted)
		}
		if !res.Realized.Equal(vecs[k]) {
			t.Errorf("vector %d realized %v, want %v — streams mixed?", k, res.Realized, vecs[k])
		}
	}
}

// TestNonFFlagged: non-F permutations emerge flagged, exactly as in the
// synchronous engine.
func TestNonFFlagged(t *testing.T) {
	b := core.New(2)
	e := New(b)
	res, _ := e.RouteOne(perm.Perm{1, 3, 2, 0})
	if res.OK() {
		t.Fatal("(1,3,2,0) should misroute")
	}
	if !res.Realized.Valid() {
		t.Fatal("even a misroute must be a bijection of terminals")
	}
}

// TestMixedStream: F and non-F vectors interleaved; flags must land on
// the right vectors.
func TestMixedStream(t *testing.T) {
	b := core.New(2)
	e := New(b)
	vecs := []perm.Perm{
		perm.Identity(4),
		{1, 3, 2, 0}, // not in F(2)
		perm.VectorReversal(2),
		{1, 3, 2, 0},
		perm.CyclicShift(2, 1),
	}
	results, _ := e.Run(vecs)
	wantOK := []bool{true, false, true, false, true}
	for k, w := range wantOK {
		if results[k].OK() != w {
			t.Errorf("vector %d OK=%v, want %v", k, results[k].OK(), w)
		}
	}
}

func TestRunPanicsOnSizeMismatch(t *testing.T) {
	b := core.New(3)
	e := New(b)
	defer func() {
		if recover() == nil {
			t.Fatal("Run should panic on wrong vector size")
		}
	}()
	e.Run([]perm.Perm{perm.Identity(4)})
}
