// Package netsim runs the self-routing Benes network of package core as
// concurrent hardware: one goroutine per binary switch, one channel per
// wire. Switches are self-timed — each decides its state the moment the
// destination tag appears on its upper input (the paper's Fig. 3 logic)
// and forwards signals without any global clock. Streams of vectors
// flow through in pipelined fashion (Section IV): a switch finishes
// vector k on its wires before vector k+1 arrives on the same wires,
// because channels preserve order.
//
// The engine is validated against the synchronous evaluator of package
// core: identical topology (core.Network.Wiring), identical switch
// logic, so identical realized permutations and switch states.
package netsim

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/bits"
	"repro/internal/core"
	"repro/internal/perm"
)

// Msg is one tagged datum on a wire.
type Msg struct {
	Tag int // destination tag, routed on
	Src int // originating input terminal
}

// VectorResult reports the outcome for one routed vector.
type VectorResult struct {
	Realized  perm.Perm // Realized[i] = output reached by input i
	Misrouted []int     // inputs whose tag did not reach its output
}

// OK reports whether the vector's permutation was realized.
func (v *VectorResult) OK() bool { return len(v.Misrouted) == 0 }

// Engine is a concurrent instantiation of a Benes network.
type Engine struct {
	net    *core.Network
	stuck  map[switchID]bool // injected faults: switch -> frozen state
	timing func(time.Duration)

	rec        *Recorder // gate-level flight recorder; nil = disabled
	faultsOnly bool      // record only fault hits (fabric's per-frame checks)
	omega      bool      // omega bit asserted: stages 0..n-2 forced straight
}

// SetRecorder enables full gate-level accounting: every switch records
// traversals, flips, forced settings, and fault hits into r. A nil r
// disables recording; the per-message cost is then a single nil check.
// Not safe to call concurrently with Run or Start.
func (e *Engine) SetRecorder(r *Recorder) { e.rec, e.faultsOnly = r, false }

// SetFaultRecorder enables fault-hit-only accounting: the one counter
// a per-frame fault-check pass should contribute without also double
// counting traversals the serving engine already records.
func (e *Engine) SetFaultRecorder(r *Recorder) { e.rec, e.faultsOnly = r, true }

// SetOmega asserts or clears the omega bit (Section II): with it set,
// switches in stages 0..n-2 are forced straight instead of reading
// their control bit, so every Omega(n) permutation self-routes. Not
// safe to call concurrently with Run or Start.
func (e *Engine) SetOmega(on bool) { e.omega = on }

// SetTimingHook installs a callback invoked after every Run/RouteOne
// with the wall-clock time the gate-level pass took — the hook the
// observability layer uses to histogram simulator latency (e.g. the
// fabric's per-frame fault checks). The hook runs in the caller's
// goroutine and must be safe for concurrent use if the engine is.
// A nil hook disables timing.
func (e *Engine) SetTimingHook(h func(time.Duration)) { e.timing = h }

type switchID struct{ stage, sw int }

// New wraps a core network for concurrent execution.
func New(net *core.Network) *Engine {
	return &Engine{net: net}
}

// NewWithFaults wraps a core network whose listed switches are frozen
// in their stuck states: the per-switch goroutines ignore the control
// bit and forward according to the fault, so vectors that need the
// other state misroute — the concurrent analogue of
// core.RouteWithFaults. Fault coordinates are validated the same way.
func NewWithFaults(net *core.Network, faults []core.Fault) *Engine {
	e := &Engine{net: net, stuck: make(map[switchID]bool, len(faults))}
	for _, f := range faults {
		if f.Stage < 0 || f.Stage >= net.Stages() || f.Switch < 0 || f.Switch >= net.N()/2 {
			panic(fmt.Sprintf("netsim: fault (%d,%d) out of range", f.Stage, f.Switch))
		}
		e.stuck[switchID{f.Stage, f.Switch}] = f.StuckCrossed
	}
	return e
}

// Run streams the given destination-tag vectors through the network,
// one goroutine per switch, and returns one result per vector, in input
// order. All vectors self-route; Run also returns the switch states
// decided for the first vector so callers can compare against the
// synchronous engine.
func (e *Engine) Run(vectors []perm.Perm) ([]VectorResult, core.States) {
	if e.timing != nil {
		start := time.Now()
		defer func() { e.timing(time.Since(start)) }()
	}
	N := e.net.N()
	stages := e.net.Stages()
	depth := len(vectors)
	for _, d := range vectors {
		if len(d) != N {
			panic("netsim: vector length mismatch")
		}
	}

	// wires[s][y] carries the signal entering stage s on line y;
	// wires[stages] holds the network outputs. Buffered to the stream
	// depth so producers never block on slow consumers.
	wires := make([][]chan Msg, stages+1)
	for s := range wires {
		wires[s] = make([]chan Msg, N)
		for y := range wires[s] {
			wires[s][y] = make(chan Msg, depth)
		}
	}
	link := e.net.Wiring()

	firstStates := e.net.NewStates()
	var wg sync.WaitGroup
	for s := 0; s < stages; s++ {
		cb := e.net.ControlBit(s)
		forced := e.omega && s <= e.net.LogN()-2
		for i := 0; i < N/2; i++ {
			frozen, isStuck := e.stuck[switchID{s, i}]
			sh := e.rec.shardFor(s, i)
			recordAll := sh != nil && !e.faultsOnly
			wg.Add(1)
			go func(s, i, cb int) {
				defer wg.Done()
				upIn, loIn := wires[s][2*i], wires[s][2*i+1]
				var upOut, loOut chan Msg
				if s == stages-1 {
					upOut, loOut = wires[stages][2*i], wires[stages][2*i+1]
				} else {
					upOut, loOut = wires[s+1][link[s][2*i]], wires[s+1][link[s][2*i+1]]
				}
				prev := false // power-on state: straight
				for k := 0; k < depth; k++ {
					// The switch decides from the upper input's control
					// bit and forwards it immediately — self-timing. A
					// forced switch (omega bit) ignores the bit and stays
					// straight; a stuck switch cannot decide at all.
					u := <-upIn
					desired := !forced && bits.Bit(u.Tag, cb) == 1
					crossed := desired
					if isStuck {
						crossed = frozen
					}
					if sh != nil {
						if recordAll {
							sh.Traverse(s, i)
							if forced {
								sh.Forced(s, i)
							}
							if crossed != prev {
								sh.Flip(s, i)
							}
						}
						if isStuck && desired != frozen {
							sh.FaultHit(s, i)
						}
					}
					prev = crossed
					if k == 0 {
						firstStates[s][i] = crossed
					}
					if crossed {
						loOut <- u
					} else {
						upOut <- u
					}
					l := <-loIn
					if recordAll {
						sh.Traverse(s, i)
					}
					if crossed {
						upOut <- l
					} else {
						loOut <- l
					}
				}
			}(s, i, cb)
		}
	}

	// Feed all vectors, then collect.
	go func() {
		for _, d := range vectors {
			for i, tag := range d {
				wires[0][i] <- Msg{Tag: tag, Src: i}
			}
		}
	}()

	results := make([]VectorResult, depth)
	for k := range results {
		realized := make(perm.Perm, N)
		for y := 0; y < N; y++ {
			m := <-wires[stages][y]
			realized[m.Src] = y
		}
		results[k].Realized = realized
		for i, dest := range vectors[k] {
			if realized[i] != dest {
				results[k].Misrouted = append(results[k].Misrouted, i)
			}
		}
	}
	wg.Wait()
	return results, firstStates
}

// RouteOne is a convenience wrapper routing a single vector.
func (e *Engine) RouteOne(d perm.Perm) (VectorResult, core.States) {
	res, st := e.Run([]perm.Perm{d})
	return res[0], st
}
