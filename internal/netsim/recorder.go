package netsim

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"repro/internal/core"
)

// The paper's network is N·log N − N/2 two-state switches arranged in
// 2·log N − 1 stages, and per-switch load balance — not aggregate
// throughput — is what determines packet-mode Benes performance
// (Huang & Walrand). The Recorder is the gate-level flight recorder
// behind that claim: per-switch, per-stage atomic counters of
//
//   - traversals: destination tags that physically passed through the
//     switch (two per switch per full permutation vector);
//   - flips: state transitions between consecutively routed vectors,
//     from the all-straight power-on setting — the control-bit cost
//     metric the KR-Benes analysis argues is the true price of a
//     reconfiguration;
//   - forced: settings imposed by the omega bit (Section II) instead
//     of decided from the tag;
//   - fault hits: vectors that demanded the opposite state from a
//     stuck switch — the exact coordinates where injected damage bites.
//
// Counter storage is sharded so concurrent writers (engine workers,
// fabric dispatchers) do not contend on the same cache lines; readers
// sum across shards. A nil *Recorder (and a nil *RecorderShard) is the
// disabled state: every method no-ops after a nil check, so the hot
// path pays nothing when accounting is off.

// counter kinds, interleaved per switch inside a shard.
const (
	kindTraversed = iota // tags through the switch (beyond full-vector passes)
	kindFlips            // state transitions between consecutive vectors
	kindForced           // omega-bit forced settings
	kindFaultHits        // vectors demanding the opposite of a stuck state
	kindBcast            // transitions entering or leaving a broadcast state
	recKinds
)

// Recorder accumulates per-switch gate-level counters for one network
// geometry. All methods are safe for concurrent use; all methods are
// no-ops on a nil receiver.
type Recorder struct {
	stages   int // 2n - 1
	switches int // N/2
	words    int // uint64 words per stage in a state bitmask
	shards   []RecorderShard
	next     atomic.Uint64 // round-robin Shard() assignment

	// prev is the last recorded state bitmask, shared by every shard so
	// flip counts reflect the physical switch flipping between
	// consecutively applied vectors, not one count per writer. prevHi is
	// the second state bit of the four-state (multicast) encoding: a set
	// bit means the switch last sat in a broadcast state. Binary vectors
	// clear it, so flip counts stay exact when unicast and multicast
	// passes interleave on the same hardware.
	prev   []atomic.Uint64
	prevHi []atomic.Uint64
}

// RecorderShard is one writer's slice of a Recorder. A shard may be
// used concurrently, but writers get the least contention by holding
// their own (Engine workers acquire one each via Shard).
type RecorderShard struct {
	rec  *Recorder
	full atomic.Int64 // full-permutation vectors recorded via RecordVector
	c    []atomic.Int64
	_    [40]byte // keep neighbouring shards off one cache line
}

// NewRecorder builds a recorder for net's geometry with the given
// number of writer shards (values < 1 are treated as 1).
func NewRecorder(net *core.Network, shards int) *Recorder {
	return NewRecorderGeom(net.Stages(), net.SwitchesPerStage(), shards)
}

// NewRecorderGeom builds a recorder for an arbitrary stages x switches
// grid — the copy ladder of a multicast plan is log N stages of N/2
// four-state switches, a geometry no *core.Network describes.
func NewRecorderGeom(stages, switches, shards int) *Recorder {
	if shards < 1 {
		shards = 1
	}
	r := &Recorder{
		stages:   stages,
		switches: switches,
		shards:   make([]RecorderShard, shards),
	}
	r.words = (r.switches + 63) / 64
	r.prev = make([]atomic.Uint64, r.stages*r.words)
	r.prevHi = make([]atomic.Uint64, r.stages*r.words)
	for i := range r.shards {
		r.shards[i].rec = r
		r.shards[i].c = make([]atomic.Int64, r.stages*r.switches*recKinds)
	}
	return r
}

// Stages returns the recorded stage count, 2 log N - 1 (0 on nil).
func (r *Recorder) Stages() int {
	if r == nil {
		return 0
	}
	return r.stages
}

// SwitchesPerStage returns N/2 (0 on nil).
func (r *Recorder) SwitchesPerStage() int {
	if r == nil {
		return 0
	}
	return r.switches
}

// Shard hands out writer shards round-robin. Each writer goroutine
// should hold its own. Shard on a nil recorder returns nil, and a nil
// shard no-ops on every record call — the disabled fast path.
func (r *Recorder) Shard() *RecorderShard {
	if r == nil {
		return nil
	}
	return &r.shards[r.next.Add(1)%uint64(len(r.shards))]
}

// shardFor deterministically spreads per-switch writers (one goroutine
// per switch in the concurrent engine) across shards.
func (r *Recorder) shardFor(stage, sw int) *RecorderShard {
	if r == nil {
		return nil
	}
	return &r.shards[(stage*r.switches+sw)%len(r.shards)]
}

func (sh *RecorderShard) at(stage, sw, kind int) *atomic.Int64 {
	return &sh.c[(stage*sh.rec.switches+sw)*recKinds+kind]
}

// Traverse counts one tag through switch (stage, sw).
func (sh *RecorderShard) Traverse(stage, sw int) {
	if sh == nil {
		return
	}
	sh.at(stage, sw, kindTraversed).Add(1)
}

// Flip counts one state transition at switch (stage, sw).
func (sh *RecorderShard) Flip(stage, sw int) {
	if sh == nil {
		return
	}
	sh.at(stage, sw, kindFlips).Add(1)
}

// Forced counts one omega-bit forced setting at switch (stage, sw).
func (sh *RecorderShard) Forced(stage, sw int) {
	if sh == nil {
		return
	}
	sh.at(stage, sw, kindForced).Add(1)
}

// FaultHit counts one vector that demanded the opposite of switch
// (stage, sw)'s stuck state.
func (sh *RecorderShard) FaultHit(stage, sw int) {
	if sh == nil {
		return
	}
	sh.at(stage, sw, kindFaultHits).Add(1)
}

// Bcast counts one broadcast-state transition at switch (stage, sw):
// the switch entered or left an upper/lower broadcast setting between
// consecutive vectors.
func (sh *RecorderShard) Bcast(stage, sw int) {
	if sh == nil {
		return
	}
	sh.at(stage, sw, kindBcast).Add(1)
}

// PackStates renders a full switch setting as the flat bitmask
// RecordVector consumes: bit i of word stage*words + i/64 is switch
// (stage, i)'s crossed state. Plans precompute this once so the warm
// serving path diffs words instead of booleans. Nil on a nil recorder.
func (r *Recorder) PackStates(st core.States) []uint64 {
	if r == nil {
		return nil
	}
	return r.PackStatesInto(st, make([]uint64, r.stages*r.words))
}

// PackStatesInto is PackStates writing into a caller-owned mask buffer
// of length MaskWords, clearing it first. RecordVector and RecordFlips
// copy out of the mask, so the buffer is safe to reuse across passes —
// the allocation-free path for callers that set up a fresh permutation
// per frame. Nil on a nil recorder.
func (r *Recorder) PackStatesInto(st core.States, mask []uint64) []uint64 {
	if r == nil {
		return nil
	}
	clear(mask)
	for s := range st {
		for i, crossed := range st[s] {
			if crossed {
				mask[s*r.words+i/64] |= 1 << uint(i%64)
			}
		}
	}
	return mask
}

// PackMcastStatesInto packs a four-state setting into the caller's
// lo/hi bitmask pair (each of length MaskWords, cleared first): bit i
// of lo word stage*words + i/64 is the low bit of switch (stage, i)'s
// state and the matching hi bit is set when the state broadcasts
// (McBcastUpper / McBcastLower). RecordMcastFlips diffs both planes.
// Nil receivers no-op.
func (r *Recorder) PackMcastStatesInto(st core.McastStates, lo, hi []uint64) {
	if r == nil {
		return
	}
	clear(lo)
	clear(hi)
	for s := range st {
		for i, state := range st[s] {
			w, bit := s*r.words+i/64, uint64(1)<<uint(i%64)
			if state&1 != 0 {
				lo[w] |= bit
			}
			if state.Broadcast() {
				hi[w] |= bit
			}
		}
	}
}

// MaskWords returns the length of a packed state bitmask for this
// recorder's geometry (0 on nil): one word block per stage.
func (r *Recorder) MaskWords() int {
	if r == nil {
		return 0
	}
	return r.stages * r.words
}

// RecordVector accounts one full-permutation pass whose switch setting
// is mask (from PackStates): every switch carried two tags, and every
// switch whose state differs from the previously recorded vector
// flipped. The traversal increment is kept as a per-shard vector count
// and folded in at read time, so the per-vector cost is one atomic add
// plus a word-compare sweep that is all loads while the setting is
// unchanged — the warm-cache case.
func (sh *RecorderShard) RecordVector(mask []uint64) {
	if sh == nil {
		return
	}
	sh.full.Add(1)
	sh.RecordFlips(mask)
}

// RecordFlips folds only the state-transition half of a pass into the
// counters: used directly for partially filled frames, whose traversal
// counts follow the real packets' paths instead of every port.
func (sh *RecorderShard) RecordFlips(mask []uint64) {
	if sh == nil {
		return
	}
	r := sh.rec
	for s := 0; s < r.stages; s++ {
		base := s * r.words
		for w := 0; w < r.words; w++ {
			have := r.prev[base+w].Load()
			hiHave := r.prevHi[base+w].Load()
			want := mask[base+w]
			if have == want && hiHave == 0 {
				continue
			}
			r.prev[base+w].Store(want)
			if hiHave != 0 {
				// A binary vector leaves every broadcast state: count
				// those transitions and clear the high plane.
				r.prevHi[base+w].Store(0)
			}
			diff := (have ^ want) | hiHave
			for diff != 0 {
				b := bits.TrailingZeros64(diff)
				bit := uint64(1) << uint(b)
				diff &^= bit
				sh.Flip(s, w*64+b)
				if hiHave&bit != 0 {
					sh.Bcast(s, w*64+b)
				}
			}
		}
	}
}

// RecordMcastFlips is RecordFlips for a four-state setting packed by
// PackMcastStatesInto: a switch flips when either state bit changed,
// and additionally counts a broadcast transition when the broadcast
// bit changed — the copy network's reconfiguration cost metric.
func (sh *RecorderShard) RecordMcastFlips(lo, hi []uint64) {
	if sh == nil {
		return
	}
	r := sh.rec
	for s := 0; s < r.stages; s++ {
		base := s * r.words
		for w := 0; w < r.words; w++ {
			loHave := r.prev[base+w].Load()
			hiHave := r.prevHi[base+w].Load()
			loWant, hiWant := lo[base+w], hi[base+w]
			if loHave == loWant && hiHave == hiWant {
				continue
			}
			r.prev[base+w].Store(loWant)
			r.prevHi[base+w].Store(hiWant)
			diff := (loHave ^ loWant) | (hiHave ^ hiWant)
			bdiff := hiHave ^ hiWant
			for diff != 0 {
				b := bits.TrailingZeros64(diff)
				bit := uint64(1) << uint(b)
				diff &^= bit
				sh.Flip(s, w*64+b)
				if bdiff&bit != 0 {
					sh.Bcast(s, w*64+b)
				}
			}
		}
	}
}

// StageTotals is one stage's counter sums across all switches.
type StageTotals struct {
	Traversed int64 `json:"traversed"`
	Flips     int64 `json:"flips"`
	Forced    int64 `json:"forced"`
	FaultHits int64 `json:"fault_hits"`
	Bcast     int64 `json:"bcast_flips"`
}

// fullVectors sums the full-permutation passes across shards; each
// contributes two traversals to every switch.
func (r *Recorder) fullVectors() int64 {
	total := int64(0)
	for i := range r.shards {
		total += r.shards[i].full.Load()
	}
	return total
}

// kindRow sums one counter kind for every switch of one stage into dst.
func (r *Recorder) kindRow(stage, kind int, dst []int64) {
	for i := range dst {
		dst[i] = 0
	}
	for sh := range r.shards {
		base := stage * r.switches
		for i := 0; i < r.switches; i++ {
			dst[i] += r.shards[sh].c[(base+i)*recKinds+kind].Load()
		}
	}
}

// TraversedRow returns stage's per-switch traversal counts: the
// path-accounted tags plus two per full vector. Nil on a nil recorder.
func (r *Recorder) TraversedRow(stage int) []int64 {
	if r == nil {
		return nil
	}
	row := make([]int64, r.switches)
	r.kindRow(stage, kindTraversed, row)
	full := 2 * r.fullVectors()
	for i := range row {
		row[i] += full
	}
	return row
}

// StageTotals sums one stage's counters across switches and shards.
func (r *Recorder) StageTotals(stage int) StageTotals {
	if r == nil {
		return StageTotals{}
	}
	if stage < 0 || stage >= r.stages {
		panic(fmt.Sprintf("netsim: stage %d out of range [0,%d)", stage, r.stages))
	}
	var t StageTotals
	for sh := range r.shards {
		base := stage * r.switches
		for i := 0; i < r.switches; i++ {
			t.Traversed += r.shards[sh].c[(base+i)*recKinds+kindTraversed].Load()
			t.Flips += r.shards[sh].c[(base+i)*recKinds+kindFlips].Load()
			t.Forced += r.shards[sh].c[(base+i)*recKinds+kindForced].Load()
			t.FaultHits += r.shards[sh].c[(base+i)*recKinds+kindFaultHits].Load()
			t.Bcast += r.shards[sh].c[(base+i)*recKinds+kindBcast].Load()
		}
	}
	t.Traversed += 2 * r.fullVectors() * int64(r.switches)
	return t
}

// StageCounts is the full per-switch view of one stage.
type StageCounts struct {
	Stage     int     `json:"stage"`
	Traversed []int64 `json:"traversed"`
	Flips     []int64 `json:"flips"`
	Forced    []int64 `json:"forced"`
	FaultHits []int64 `json:"fault_hits"`
	Bcast     []int64 `json:"bcast_flips"`
}

// RecorderSnapshot is a point-in-time copy of every counter,
// stage-major. Concurrent recording may straddle the capture; each
// individual counter is read atomically.
type RecorderSnapshot struct {
	Stages           int           `json:"stages"`
	SwitchesPerStage int           `json:"switches_per_stage"`
	FullVectors      int64         `json:"full_vectors"`
	Counts           []StageCounts `json:"counts"`
}

// Snapshot copies all counters, folding the full-vector traversal share
// into every switch. Zero-valued on a nil recorder.
func (r *Recorder) Snapshot() RecorderSnapshot {
	if r == nil {
		return RecorderSnapshot{}
	}
	s := RecorderSnapshot{
		Stages:           r.stages,
		SwitchesPerStage: r.switches,
		FullVectors:      r.fullVectors(),
		Counts:           make([]StageCounts, r.stages),
	}
	full := 2 * s.FullVectors
	for st := 0; st < r.stages; st++ {
		sc := StageCounts{
			Stage:     st,
			Traversed: make([]int64, r.switches),
			Flips:     make([]int64, r.switches),
			Forced:    make([]int64, r.switches),
			FaultHits: make([]int64, r.switches),
			Bcast:     make([]int64, r.switches),
		}
		r.kindRow(st, kindTraversed, sc.Traversed)
		r.kindRow(st, kindFlips, sc.Flips)
		r.kindRow(st, kindForced, sc.Forced)
		r.kindRow(st, kindFaultHits, sc.FaultHits)
		r.kindRow(st, kindBcast, sc.Bcast)
		for i := range sc.Traversed {
			sc.Traversed[i] += full
		}
		s.Counts[st] = sc
	}
	return s
}
