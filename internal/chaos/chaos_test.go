package chaos

import (
	"encoding/json"
	"testing"

	"repro/internal/core"
)

// TestSuite runs every canned scenario — the chaos gate CI holds under
// the race detector — and requires every invariant to hold.
func TestSuite(t *testing.T) {
	for _, sc := range Suite() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			rep, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Passed {
				out, _ := json.MarshalIndent(rep, "", "  ")
				t.Fatalf("invariants failed: %v\nreport:\n%s", rep.Failures(), out)
			}
			if rep.Accepted == 0 {
				t.Fatal("scenario accepted no traffic")
			}
		})
	}
}

// TestReportReproducible: a scenario is a pure function of its
// declaration — two runs produce identical traffic accounting and
// identical diagnosis outcomes (only wall-clock time may differ).
func TestReportReproducible(t *testing.T) {
	sc := Scenario{
		Name:    "repro",
		LogN:    3,
		Planes:  2,
		Seed:    99,
		Packets: 500,
		Mix:     MixSkewed,
		Events: []Event{
			{AtPacket: 100, Kind: EventInject, Plane: 1,
				Faults: []core.Fault{{Stage: 0, Switch: 2, StuckCrossed: true}}},
			{AtPacket: 400, Kind: EventDiagnose, Plane: 1},
		},
	}
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	a.ElapsedNs, b.ElapsedNs = 0, 0
	// Per-plane frame counts depend on scheduler/router timing; the
	// deterministic contract covers offered traffic, acceptance,
	// delivery, and diagnosis.
	a.Planes, b.Planes = nil, nil
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatalf("reports diverged:\n%s\nvs\n%s", aj, bj)
	}
	if len(a.Diagnoses) != 1 || a.Diagnoses[0].Rank != 1 {
		t.Fatalf("diagnosis did not localize: %+v", a.Diagnoses)
	}
}

// TestSeedEchoedInReport: the report must carry everything needed to
// re-run the scenario, the seed above all.
func TestSeedEchoedInReport(t *testing.T) {
	sc := Scenario{Name: "echo", LogN: 2, Planes: 1, Seed: 777, Packets: 40, Mix: MixUniform}
	rep, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Scenario Scenario `json:"scenario"`
	}
	out, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(out, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Scenario.Seed != 777 || decoded.Scenario.Name != "echo" {
		t.Fatalf("report does not echo the scenario: %+v", decoded.Scenario)
	}
}

// TestInvariantViolationDetected: a scenario that declares saturation
// but never saturates must fail its invariant — the harness has to be
// able to say no.
func TestInvariantViolationDetected(t *testing.T) {
	rep, err := Run(Scenario{
		Name:        "no-saturation",
		LogN:        3,
		Planes:      2,
		Seed:        5,
		Packets:     100,
		Mix:         MixUniform,
		ExpectDrops: true, // uniform load through default-depth VOQs will not drop
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed {
		t.Fatal("report passed despite unmet saturation expectation")
	}
	found := false
	for _, inv := range rep.Failures() {
		found = found || inv.Name == "saturation_drops"
	}
	if !found {
		t.Fatalf("expected saturation_drops failure, got %v", rep.Failures())
	}
}

// TestScenarioValidation: malformed declarations are rejected as
// errors before any fabric is built.
func TestScenarioValidation(t *testing.T) {
	bad := []Scenario{
		{Name: "no-logn", Planes: 1},
		{Name: "no-planes", LogN: 3},
		{Name: "bad-mix", LogN: 3, Planes: 1, Mix: "nonsense"},
		{Name: "bad-plane", LogN: 3, Planes: 1, Events: []Event{{Kind: EventFail, Plane: 3}}},
		{Name: "bad-kind", LogN: 3, Planes: 1, Events: []Event{{Kind: "explode", Plane: 0}}},
		{Name: "bad-fault", LogN: 3, Planes: 1, Events: []Event{{Kind: EventInject, Plane: 0,
			Faults: []core.Fault{{Stage: 99, Switch: 0}}}}},
	}
	for _, sc := range bad {
		if _, err := Run(sc); err == nil {
			t.Errorf("scenario %q accepted", sc.Name)
		}
	}
}

// TestEventsAfterLastOffer: events scheduled at or past Packets fire
// after the final offer — a diagnosis of a plane damaged at the very
// end must still run.
func TestEventsAfterLastOffer(t *testing.T) {
	fault := core.Fault{Stage: 4, Switch: 1, StuckCrossed: false}
	rep, err := Run(Scenario{
		Name:    "late-events",
		LogN:    3,
		Planes:  2,
		Seed:    7,
		Packets: 60,
		Mix:     MixUniform,
		Events: []Event{
			{AtPacket: 60, Kind: EventInject, Plane: 0, Faults: []core.Fault{fault}},
			{AtPacket: 60, Kind: EventDiagnose, Plane: 0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Diagnoses) != 1 {
		t.Fatalf("late diagnosis did not run: %+v", rep.Diagnoses)
	}
	if d := rep.Diagnoses[0]; d.Rank != 1 || !d.Found {
		t.Fatalf("late diagnosis missed the fault: %+v", d)
	}
	if !rep.Passed {
		t.Fatalf("invariants failed: %v", rep.Failures())
	}
}

// TestJournaledScenarioReport: a scenario with the journal on embeds
// the chain head and window bounds in its JSON report, and asserting
// replay adds the divergence audit as a pass/fail invariant.
func TestJournaledScenarioReport(t *testing.T) {
	rep, err := Run(Scenario{
		Name:         "journal-report",
		LogN:         3,
		Planes:       2,
		Seed:         31,
		Packets:      200,
		Mix:          MixUniform,
		Journal:      true,
		AssertReplay: true,
		Events: []Event{
			{AtPacket: 50, Kind: EventFail, Plane: 1},
			{AtPacket: 120, Kind: EventRestore, Plane: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("invariants failed: %v", rep.Failures())
	}
	ji := rep.Journal
	if ji == nil {
		t.Fatal("journaled scenario carries no journal info")
	}
	if ji.From != 1 || ji.To < ji.From || ji.Records == 0 {
		t.Fatalf("bad journal window: %+v", ji)
	}
	if !ji.ChainOK || ji.Head == "" {
		t.Fatalf("chain not verified: %+v", ji)
	}
	if !ji.ReplayRan || ji.ReplayDivergences != 0 || ji.FirstDivergentSeq != 0 {
		t.Fatalf("replay audit: %+v", ji)
	}
	names := make(map[string]bool)
	for _, inv := range rep.Invariants {
		names[inv.Name] = true
	}
	if !names["journal_chain_intact"] || !names["replay_no_divergence"] {
		t.Fatalf("journal invariants missing: %+v", rep.Invariants)
	}
	// The report round-trips through JSON with the journal block intact.
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Journal == nil || back.Journal.Head != ji.Head {
		t.Fatalf("journal info lost in JSON round trip: %+v", back.Journal)
	}
}
