// Package chaos is the adversarial test harness for the packet fabric:
// it runs declarative scenarios — fault churn, plane flap, hostile
// traffic shapes, VOQ saturation — against a real fabric.Fabric (live
// engines, live schedulers, live failover), checks the system's
// end-to-end invariants, and emits a machine-readable report.
//
// Everything is deterministic given Scenario.Seed: traffic is drawn
// from a seeded generator by a single offering goroutine, events fire
// at exact offered-packet counts (not wall-clock times), and diagnosis
// sessions use the same seed for their probe pools, so a failing
// report names the seed that reproduces it.
//
// The invariants are the contracts the rest of the repo promises:
// accepted packets are delivered exactly once (no loss while a healthy
// plane remains, no duplication ever), failover converges onto the
// surviving planes, plane health matches the injected fault state, and
// a diagnosis session against a damaged plane's probe oracle ranks the
// injected fault first.
package chaos

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/diagnose"
	"repro/internal/fabric"
	"repro/internal/journal"
	"repro/internal/journal/replay"
	"repro/internal/perm"
)

// EventKind names a scenario event.
type EventKind string

const (
	// EventInject freezes Event.Faults on Event.Plane (empty heals the
	// plane), taking it out of rotation while the damage lasts.
	EventInject EventKind = "inject"
	// EventFail administratively marks Event.Plane unhealthy.
	EventFail EventKind = "fail"
	// EventRestore repairs Event.Plane and returns it to rotation.
	EventRestore EventKind = "restore"
	// EventDiagnose runs a diagnosis session against Event.Plane's
	// probe oracle and records the result in the report.
	EventDiagnose EventKind = "diagnose"
)

// Event is one scripted action, triggered when the scenario has
// offered exactly AtPacket packets (deterministic, unlike timers).
// Events with AtPacket >= Packets fire after the last offer, before
// the fabric drains. Events sharing an AtPacket fire in listed order.
type Event struct {
	AtPacket int          `json:"at_packet"`
	Kind     EventKind    `json:"kind"`
	Plane    int          `json:"plane"`
	Faults   []core.Fault `json:"faults,omitempty"`
}

// Mix names a traffic shape; see traffic.go for the generators.
type Mix string

const (
	// MixUniform draws (src, dst) uniformly — the baseline load.
	MixUniform Mix = "uniform"
	// MixBursty re-aims the whole offered load at one hot output every
	// Burst packets — head-of-line pressure on single VOQ columns.
	MixBursty Mix = "bursty"
	// MixSkewed sends most packets into a small hot output set — the
	// sustained-imbalance shape.
	MixSkewed Mix = "skewed"
	// MixAdversarial offers whole random permutations port by port, so
	// frames assemble into permutations that defeat the plan cache and
	// regularly fall outside F(n).
	MixAdversarial Mix = "adversarial"
	// MixSaturate aims everything at output 0 — the VOQ saturation
	// shape, meant to be paired with Drop and a shallow VOQDepth.
	MixSaturate Mix = "saturate"
)

// Scenario declares one chaos run. The zero value of optional fields
// selects defaults noted per field.
type Scenario struct {
	Name string `json:"name"`
	// LogN and Planes shape the fabric. Required: LogN >= 1, Planes >= 1.
	LogN   int `json:"log_n"`
	Planes int `json:"planes"`
	// VOQDepth bounds each (src, dst) ring; 0 takes the fabric default.
	VOQDepth int `json:"voq_depth,omitempty"`
	// Drop selects tail-drop backpressure (fabric.DropNew) instead of
	// the default blocking Send.
	Drop bool `json:"drop,omitempty"`
	// Seed drives traffic, and the probe pools of diagnosis events.
	Seed int64 `json:"seed"`
	// Packets is how many packets the scenario offers.
	Packets int `json:"packets"`
	// Mix selects the traffic shape; empty means MixUniform.
	Mix Mix `json:"mix"`
	// Burst is MixBursty's run length (default 32).
	Burst int `json:"burst,omitempty"`
	// Hot is MixSkewed's hot-set size (default max(2, N/8)).
	Hot int `json:"hot,omitempty"`
	// Events is the scripted fault/flap/diagnose schedule.
	Events []Event `json:"events,omitempty"`
	// DiagnoseBudget overrides the probe budget of diagnosis events
	// (default: the prover's 2 log N + 2).
	DiagnoseBudget int `json:"diagnose_budget,omitempty"`
	// ExpectDrops asserts the scenario saturates: at least one offer
	// must be rejected by backpressure (and rejects must only happen
	// when it is set).
	ExpectDrops bool `json:"expect_drops,omitempty"`
	// Journal attaches a hash-chained admission journal to the fabric
	// and embeds its chain head and window bounds in the report, so a
	// failed scenario is replayable by sequence range.
	Journal bool `json:"journal,omitempty"`
	// AssertReplay (implies Journal) replays the full journaled window
	// after the run and asserts zero divergences.
	AssertReplay bool `json:"assert_replay,omitempty"`
}

// Invariant is one checked contract in a report.
type Invariant struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// Diagnosis is the recorded outcome of one EventDiagnose.
type Diagnosis struct {
	AtPacket  int          `json:"at_packet"`
	Plane     int          `json:"plane"`
	Target    []core.Fault `json:"target,omitempty"` // faults injected at the time
	Probes    int          `json:"probes"`
	Rank      int          `json:"rank"` // competition rank of Target (0 if absent)
	Found     bool         `json:"found"`
	Healthy   bool         `json:"healthy"` // healthy hypothesis survived
	Converged bool         `json:"converged"`
	Survivors int          `json:"survivors"`
}

// PlaneEnd is one plane's state when the scenario finished.
type PlaneEnd struct {
	ID      int   `json:"id"`
	Healthy bool  `json:"healthy"`
	Faults  int   `json:"faults"`
	Frames  int64 `json:"frames"`
}

// JournalInfo is the journal slice of a report: the chain head and
// window bounds that make the scenario's traffic replayable by
// sequence range, plus the replay audit's outcome when one ran.
type JournalInfo struct {
	From    uint64 `json:"from"`
	To      uint64 `json:"to"`
	Records int64  `json:"records"`
	// Head is the chain-head digest (hex) after the run.
	Head    string `json:"head"`
	ChainOK bool   `json:"chain_ok"`
	// ReplayRan is true when the scenario asserted replay; the two
	// fields below are then meaningful.
	ReplayRan         bool   `json:"replay_ran"`
	ReplayDivergences int    `json:"replay_divergences"`
	FirstDivergentSeq uint64 `json:"first_divergent_seq,omitempty"`
}

// Report is the machine-readable outcome of one scenario run. It
// echoes the scenario (seed included) so a failure reproduces from the
// report alone.
type Report struct {
	Scenario   Scenario     `json:"scenario"`
	Offered    int          `json:"offered"`
	Accepted   int64        `json:"accepted"`
	Rejected   int64        `json:"rejected"`
	Delivered  int64        `json:"delivered"`
	Lost       int64        `json:"lost"`
	Failovers  int64        `json:"failovers"`
	Planes     []PlaneEnd   `json:"planes"`
	Diagnoses  []Diagnosis  `json:"diagnoses,omitempty"`
	Journal    *JournalInfo `json:"journal,omitempty"`
	Invariants []Invariant  `json:"invariants"`
	Passed     bool         `json:"passed"`
	ElapsedNs  int64        `json:"elapsed_ns"`
}

// Failures returns the invariants that did not hold.
func (r *Report) Failures() []Invariant {
	var out []Invariant
	for _, inv := range r.Invariants {
		if !inv.OK {
			out = append(out, inv)
		}
	}
	return out
}

// validate rejects scenarios Run cannot execute.
func (sc Scenario) validate() error {
	if sc.LogN < 1 {
		return fmt.Errorf("chaos: scenario %q: LogN must be >= 1, got %d", sc.Name, sc.LogN)
	}
	if sc.Planes < 1 {
		return fmt.Errorf("chaos: scenario %q: Planes must be >= 1, got %d", sc.Name, sc.Planes)
	}
	if sc.Packets < 0 {
		return fmt.Errorf("chaos: scenario %q: Packets must be >= 0, got %d", sc.Name, sc.Packets)
	}
	switch sc.Mix {
	case "", MixUniform, MixBursty, MixSkewed, MixAdversarial, MixSaturate:
	default:
		return fmt.Errorf("chaos: scenario %q: unknown mix %q", sc.Name, sc.Mix)
	}
	net := core.New(sc.LogN)
	for _, ev := range sc.Events {
		if ev.Plane < 0 || ev.Plane >= sc.Planes {
			return fmt.Errorf("chaos: scenario %q: event plane %d out of range [0,%d)", sc.Name, ev.Plane, sc.Planes)
		}
		switch ev.Kind {
		case EventInject:
			for _, f := range ev.Faults {
				if err := net.CheckFault(f); err != nil {
					return fmt.Errorf("chaos: scenario %q: %w", sc.Name, err)
				}
			}
		case EventFail, EventRestore, EventDiagnose:
		default:
			return fmt.Errorf("chaos: scenario %q: unknown event kind %q", sc.Name, ev.Kind)
		}
	}
	return nil
}

// Run executes one scenario and returns its report. An error means the
// scenario could not be executed (bad declaration, fabric construction
// failure); invariant violations are reported in Report.Passed and
// Report.Invariants, not as errors.
func Run(sc Scenario) (*Report, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	n := 1 << sc.LogN

	// counts[id] tracks deliveries of offered packet id; the offering
	// side is a single goroutine, delivery callbacks are concurrent.
	counts := make([]atomic.Int32, sc.Packets)
	accepted := make([]bool, sc.Packets)
	policy := fabric.Block
	if sc.Drop {
		policy = fabric.DropNew
	}
	var jr *journal.Journal
	var jw *journal.Writer
	if sc.Journal || sc.AssertReplay {
		j, err := journal.New(journal.Config{})
		if err != nil {
			return nil, err
		}
		jr, jw = j, j.Writer()
	}
	fab, err := fabric.New[int](fabric.Config{
		LogN:     sc.LogN,
		Planes:   sc.Planes,
		VOQDepth: sc.VOQDepth,
		Policy:   policy,
		Journal:  jw,
	}, func(p fabric.Packet[int]) {
		counts[p.Payload].Add(1)
	})
	if err != nil {
		return nil, err
	}
	if jr != nil {
		jr.SetCheckpointSource(fab.JournalCheckpoint)
	}

	// Shadow state: what health each plane should report, and which
	// faults a diagnosis event must localize.
	expectHealthy := make([]bool, sc.Planes)
	for i := range expectHealthy {
		expectHealthy[i] = true
	}
	shadowFaults := make([][]core.Fault, sc.Planes)

	events := append([]Event(nil), sc.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].AtPacket < events[j].AtPacket })
	var diagnoses []Diagnosis
	nextEvent := 0
	fire := func(offered int) error {
		for nextEvent < len(events) && events[nextEvent].AtPacket <= offered {
			ev := events[nextEvent]
			nextEvent++
			switch ev.Kind {
			case EventInject:
				if err := fab.InjectFaults(ev.Plane, ev.Faults); err != nil {
					return err
				}
				shadowFaults[ev.Plane] = append([]core.Fault(nil), ev.Faults...)
				expectHealthy[ev.Plane] = len(ev.Faults) == 0
			case EventFail:
				if err := fab.FailPlane(ev.Plane); err != nil {
					return err
				}
				expectHealthy[ev.Plane] = false
			case EventRestore:
				if err := fab.RestorePlane(ev.Plane); err != nil {
					return err
				}
				shadowFaults[ev.Plane] = nil
				expectHealthy[ev.Plane] = true
			case EventDiagnose:
				d, err := runDiagnosis(sc, fab, ev.Plane, shadowFaults[ev.Plane])
				if err != nil {
					return err
				}
				d.AtPacket = ev.AtPacket
				diagnoses = append(diagnoses, d)
			}
		}
		return nil
	}

	gen := newTraffic(sc, n)
	runErr := func() error {
		for i := 0; i < sc.Packets; i++ {
			if err := fire(i); err != nil {
				return err
			}
			src, dst := gen.next()
			err := fab.Send(fabric.Packet[int]{Src: src, Dst: dst, Payload: i})
			switch {
			case err == nil:
				accepted[i] = true
			case errors.Is(err, fabric.ErrBackpressure):
				// Tail drop under the scenario's declared saturation.
			default:
				return fmt.Errorf("chaos: scenario %q: offer %d: %w", sc.Name, i, err)
			}
		}
		return fire(sc.Packets)
	}()
	fab.Close()
	if runErr != nil {
		return nil, runErr
	}

	stats := fab.Stats()
	rep := &Report{
		Scenario:  sc,
		Offered:   sc.Packets,
		Accepted:  stats.Accepted,
		Rejected:  stats.Rejected,
		Delivered: stats.Delivered,
		Lost:      stats.Lost,
		Failovers: stats.Failovers,
		Diagnoses: diagnoses,
		ElapsedNs: time.Since(start).Nanoseconds(),
	}
	for _, ps := range stats.Planes {
		rep.Planes = append(rep.Planes, PlaneEnd{ID: ps.ID, Healthy: ps.Healthy, Faults: ps.Faults, Frames: ps.Frames})
	}
	rep.check(sc, counts, accepted, expectHealthy, stats)
	if jr != nil {
		rep.auditJournal(sc, jr)
		jr.Close()
	}
	return rep, nil
}

// auditJournal verifies the run's hash chain, embeds the chain head and
// window bounds in the report, and — when the scenario asserts replay —
// re-executes the full window and checks for divergences. Appended
// invariants fold into Passed like any other.
func (rep *Report) auditJournal(sc Scenario, jr *journal.Journal) {
	from, to, ok := jr.Bounds()
	info := &JournalInfo{From: from, To: to}
	rep.Journal = info
	add := func(name string, ok bool, detail string) {
		if ok {
			detail = ""
		}
		rep.Invariants = append(rep.Invariants, Invariant{Name: name, OK: ok, Detail: detail})
		rep.Passed = rep.Passed && ok
	}
	if !ok {
		// An empty journal on a scenario that offered traffic means the
		// admission hooks never fired.
		add("journal_chain_intact", sc.Packets == 0, "journal is empty after a traffic-bearing run")
		return
	}
	vr := jr.Verify(from, to)
	info.Records = int64(vr.Records)
	info.Head = vr.Head
	info.ChainOK = vr.OK
	add("journal_chain_intact", vr.OK, vr.Detail)
	if !sc.AssertReplay {
		return
	}
	info.ReplayRan = true
	audit, err := replay.Window(replay.Config{LogN: sc.LogN, Planes: sc.Planes}, jr, from, to)
	if err != nil {
		add("replay_no_divergence", false, err.Error())
		return
	}
	info.ReplayDivergences = len(audit.Divergences)
	info.FirstDivergentSeq = audit.FirstDivergentSeq
	detail := ""
	if len(audit.Divergences) > 0 {
		detail = fmt.Sprintf("first divergence at seq %d: %s",
			audit.FirstDivergentSeq, audit.Divergences[0].Detail)
	}
	add("replay_no_divergence", audit.Clean(), detail)
}

// runDiagnosis runs one session against plane's probe oracle. target
// is the shadow fault set the session must localize (nil means the
// plane should diagnose healthy).
func runDiagnosis(sc Scenario, fab *fabric.Fabric[int], plane int, target []core.Fault) (Diagnosis, error) {
	maxFaults := 1
	if len(target) > 1 {
		maxFaults = 2
	}
	prover, err := diagnose.New(diagnose.Config{
		Net:       core.New(sc.LogN),
		MaxFaults: maxFaults,
		Budget:    sc.DiagnoseBudget,
		Seed:      sc.Seed,
	})
	if err != nil {
		return Diagnosis{}, err
	}
	rep, err := prover.Diagnose(diagnose.OracleFunc(func(d perm.Perm) (perm.Perm, error) {
		return fab.ProbePlane(plane, d)
	}))
	if err != nil {
		return Diagnosis{}, err
	}
	rank, found := rep.RankOf(target)
	return Diagnosis{
		Plane:     plane,
		Target:    append([]core.Fault(nil), target...),
		Probes:    rep.Probes,
		Rank:      rank,
		Found:     found,
		Healthy:   rep.Healthy,
		Converged: rep.Converged,
		Survivors: rep.Survivors,
	}, nil
}

// check evaluates every invariant into rep.Invariants and sets Passed.
func (rep *Report) check(sc Scenario, counts []atomic.Int32, accepted []bool, expectHealthy []bool, stats fabric.Snapshot) {
	add := func(name string, ok bool, detail string) {
		if ok {
			detail = ""
		}
		rep.Invariants = append(rep.Invariants, Invariant{Name: name, OK: ok, Detail: detail})
	}

	// Exactly-once: every accepted packet delivered exactly once, every
	// rejected packet never delivered.
	bad := ""
	for i := range counts {
		c := int(counts[i].Load())
		want := 0
		if accepted[i] {
			want = 1
		}
		if c != want {
			bad = fmt.Sprintf("packet %d delivered %d times (accepted=%v)", i, c, accepted[i])
			break
		}
	}
	add("exactly_once", bad == "", bad)
	add("no_loss", stats.Lost == 0, fmt.Sprintf("%d accepted packets lost", stats.Lost))
	add("books_balance", stats.Delivered+stats.Lost == stats.Accepted,
		fmt.Sprintf("accepted %d != delivered %d + lost %d", stats.Accepted, stats.Delivered, stats.Lost))

	// Backpressure only when declared, and declared saturation must bite.
	if sc.ExpectDrops {
		add("saturation_drops", stats.Rejected > 0, "scenario expected tail drops, none happened")
	} else {
		add("no_drops", stats.Rejected == 0, fmt.Sprintf("%d packets rejected in a non-saturating scenario", stats.Rejected))
	}

	// Plane health must match the injected/administrative state.
	bad = ""
	for i, ps := range rep.Planes {
		if ps.Healthy != expectHealthy[i] {
			bad = fmt.Sprintf("plane %d healthy=%v, injected state implies %v", i, ps.Healthy, expectHealthy[i])
			break
		}
	}
	add("health_matches_faults", bad == "", bad)

	// Failover convergence: whenever a plane was down, the survivors
	// carried the load — some healthy plane served frames.
	if stats.Accepted > 0 {
		served := int64(0)
		for i, ps := range rep.Planes {
			if expectHealthy[i] {
				served += ps.Frames
			}
		}
		anyHealthy := false
		for _, h := range expectHealthy {
			anyHealthy = anyHealthy || h
		}
		if anyHealthy {
			add("failover_converged", served > 0, "no healthy plane served any frame")
		}
	}

	// Diagnosis: the injected fault set must never be out-ranked, and a
	// healthy plane must diagnose healthy.
	bad = ""
	for _, d := range rep.Diagnoses {
		switch {
		case len(d.Target) == 0:
			if !d.Healthy || d.Rank != 1 {
				bad = fmt.Sprintf("plane %d: healthy plane diagnosed faulty (rank %d, healthy %v)", d.Plane, d.Rank, d.Healthy)
			}
		default:
			if !d.Found || d.Rank != 1 {
				bad = fmt.Sprintf("plane %d: injected fault ranked %d (found %v)", d.Plane, d.Rank, d.Found)
			}
		}
		if bad != "" {
			break
		}
	}
	if len(rep.Diagnoses) > 0 {
		add("diagnosis_localizes", bad == "", bad)
	}

	rep.Passed = true
	for _, inv := range rep.Invariants {
		rep.Passed = rep.Passed && inv.OK
	}
}
