package chaos

import (
	"math/rand"

	"repro/internal/perm"
)

// traffic generates the scenario's (src, dst) stream. All shapes draw
// from one seeded rng consumed by the single offering goroutine, so a
// scenario's packet sequence is a pure function of its Seed.
type traffic struct {
	sc  Scenario
	n   int
	rng *rand.Rand

	hot   []int     // MixSkewed hot output set
	burst int       // MixBursty packets left in the current burst
	aim   int       // MixBursty current hot output
	cur   perm.Perm // MixAdversarial current permutation
	idx   int       // MixAdversarial next port
}

func newTraffic(sc Scenario, n int) *traffic {
	t := &traffic{sc: sc, n: n, rng: rand.New(rand.NewSource(sc.Seed))}
	if sc.Mix == MixSkewed {
		hot := sc.Hot
		if hot <= 0 {
			hot = n / 8
		}
		if hot < 2 {
			hot = 2
		}
		for len(t.hot) < hot {
			t.hot = append(t.hot, t.rng.Intn(n))
		}
	}
	return t
}

func (t *traffic) next() (src, dst int) {
	switch t.sc.Mix {
	case MixBursty:
		if t.burst == 0 {
			t.burst = t.sc.Burst
			if t.burst <= 0 {
				t.burst = 32
			}
			t.aim = t.rng.Intn(t.n)
		}
		t.burst--
		return t.rng.Intn(t.n), t.aim
	case MixSkewed:
		src = t.rng.Intn(t.n)
		if t.rng.Intn(8) != 0 {
			return src, t.hot[t.rng.Intn(len(t.hot))]
		}
		return src, t.rng.Intn(t.n)
	case MixAdversarial:
		// Offer whole random permutations port by port: scheduled frames
		// then assemble into permutations with no cache locality, many of
		// them outside F(n) — the plan-cache- and fallback-hostile shape.
		if t.idx == 0 || t.idx >= t.n {
			t.cur = perm.Random(t.n, t.rng)
			t.idx = 0
		}
		src = t.idx
		dst = t.cur[t.idx]
		t.idx++
		return src, dst
	case MixSaturate:
		return t.rng.Intn(t.n), 0
	default: // MixUniform
		return t.rng.Intn(t.n), t.rng.Intn(t.n)
	}
}
