package chaos

import "repro/internal/core"

// Suite returns the canned scenarios CI runs (under the race detector)
// — one per failure mode the fabric claims to survive. Every scenario
// pins its seed, so a CI failure reproduces locally from the report.
func Suite() []Scenario {
	return []Scenario{
		{
			// Fault churn under uniform load: a stuck switch takes plane 0
			// out, an administrative flap takes plane 1 out and back, and a
			// diagnosis session localizes the stuck switch while the
			// survivors carry the traffic.
			Name:    "uniform-fault-churn",
			LogN:    4,
			Planes:  3,
			Seed:    101,
			Packets: 1200,
			Mix:     MixUniform,
			Events: []Event{
				{AtPacket: 300, Kind: EventInject, Plane: 0,
					Faults: []core.Fault{{Stage: 3, Switch: 5, StuckCrossed: true}}},
				{AtPacket: 600, Kind: EventFail, Plane: 1},
				{AtPacket: 900, Kind: EventRestore, Plane: 1},
				{AtPacket: 1000, Kind: EventDiagnose, Plane: 0},
			},
		},
		{
			// Plane flap under bursty traffic: the only sibling plane goes
			// down and comes back twice while whole bursts aim at single
			// outputs.
			Name:    "bursty-plane-flap",
			LogN:    3,
			Planes:  2,
			Seed:    7,
			Packets: 800,
			Mix:     MixBursty,
			Burst:   24,
			Events: []Event{
				{AtPacket: 200, Kind: EventFail, Plane: 1},
				{AtPacket: 400, Kind: EventRestore, Plane: 1},
				{AtPacket: 550, Kind: EventFail, Plane: 1},
				{AtPacket: 700, Kind: EventRestore, Plane: 1},
			},
		},
		{
			// Double fault under skewed load: a fault pair on plane 1,
			// best-effort pair diagnosis mid-run, then repair — the plane
			// must end the run healthy again.
			Name:           "skewed-pair-diagnosis",
			LogN:           3,
			Planes:         2,
			Seed:           7,
			Packets:        700,
			Mix:            MixSkewed,
			DiagnoseBudget: 12,
			Events: []Event{
				{AtPacket: 250, Kind: EventInject, Plane: 1, Faults: []core.Fault{
					{Stage: 1, Switch: 1, StuckCrossed: true},
					{Stage: 4, Switch: 3, StuckCrossed: true},
				}},
				{AtPacket: 450, Kind: EventDiagnose, Plane: 1},
				{AtPacket: 500, Kind: EventRestore, Plane: 1},
			},
		},
		{
			// Adversarial permutation traffic with a mid-run fault and
			// repair: cache-hostile frames, many outside F(n), while the
			// fabric fails over and heals. A post-repair diagnosis must
			// find the plane healthy.
			Name:    "adversarial-perms-heal",
			LogN:    3,
			Planes:  2,
			Seed:    42,
			Packets: 640,
			Mix:     MixAdversarial,
			Events: []Event{
				{AtPacket: 256, Kind: EventInject, Plane: 0,
					Faults: []core.Fault{{Stage: 2, Switch: 2, StuckCrossed: false}}},
				{AtPacket: 512, Kind: EventInject, Plane: 0}, // empty set: heal
				{AtPacket: 640, Kind: EventDiagnose, Plane: 0},
			},
		},
		{
			// VOQ saturation: everything aims at output 0 through shallow
			// rings with tail drop. Drops are expected; accepted packets
			// must still arrive exactly once.
			Name:        "voq-saturation",
			LogN:        3,
			Planes:      1,
			VOQDepth:    2,
			Drop:        true,
			Seed:        13,
			Packets:     400,
			Mix:         MixSaturate,
			ExpectDrops: true,
		},
		{
			// Journaled replay: mixed traffic with a fault flap, recorded in
			// the hash-chained journal, then deterministically re-executed
			// against a fresh network. The chain must verify and the replay
			// must report zero divergences.
			Name:         "journaled-replay",
			LogN:         3,
			Planes:       2,
			Seed:         23,
			Packets:      600,
			Mix:          MixUniform,
			Journal:      true,
			AssertReplay: true,
			Events: []Event{
				{AtPacket: 150, Kind: EventInject, Plane: 0,
					Faults: []core.Fault{{Stage: 2, Switch: 1, StuckCrossed: true}}},
				{AtPacket: 250, Kind: EventRestore, Plane: 0},
				{AtPacket: 300, Kind: EventFail, Plane: 1},
				{AtPacket: 450, Kind: EventRestore, Plane: 1},
			},
		},
	}
}
