package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/perm"
	"repro/internal/report"
)

func init() {
	register(Experiment{
		ID:    "E11",
		Paper: "Theorems 4, 5, 6",
		Title: "block-composite permutations stay in F",
		Run:   runE11,
	})
}

func runE11(w io.Writer) {
	// Theorem 4: the paper's own J example (n=3, J={1}) with per-block F
	// permutations.
	part := perm.NewJPartition(3, []int{1})
	fmt.Fprintf(w, "J={1}, n=3 partitions 0..7 into %v and %v (the paper's example)\n",
		part.Members(0), part.Members(1))
	G := []perm.Perm{perm.BitReversal(2), perm.VectorReversal(2)}
	g := perm.Theorem4(part, G)
	fmt.Fprintf(w, "Theorem 4 composite (bit-reversal block 0, reversal block 1): %v, in F: %v\n",
		g, perm.InF(g))

	// The matrix mappings listed after Theorem 4.
	n := 6
	b := core.New(n)
	t := report.NewTable(fmt.Sprintf("matrix mappings after Theorem 4 (8x8 matrix, n=%d)", n),
		"mapping", "in F?", "routes?")
	phi := perm.POrdering(3, 3)
	for _, c := range []struct {
		name string
		p    perm.Perm
	}{
		{"A(i,j) -> A(i,(i+j) mod m)   [Cannon row skew]", perm.RowRotation(n)},
		{"A(i,j) -> A((i+j) mod m,j)   [Cannon col skew]", perm.ColumnRotation(n)},
		{"A(i,j) -> A(i,phi(j))", perm.RowPerm(n, phi)},
		{"A(i,j) -> A(phi(i),j)", perm.ColPerm(n, phi)},
		{"A(i,j) -> A(i XOR j, j)", perm.RowXor(n)},
		{"A(i,j) -> A(i^R, j)", perm.RowBitReversal(n)},
	} {
		t.Add(c.name, perm.InF(c.p), b.Realizes(c.p))
	}
	fmt.Fprint(w, t)

	// Theorem 5: blocks permuted among themselves.
	rng := rand.New(rand.NewSource(3))
	part5 := perm.NewJPartition(6, []int{1, 4})
	G5 := make([]perm.Perm, part5.Blocks())
	for i := range G5 {
		G5[i] = perm.RandomBPC(4, rng).Perm()
	}
	B5 := perm.VectorReversal(2)
	g5 := perm.Theorem5(part5, G5, B5)
	fmt.Fprintf(w, "Theorem 5: 4 blocks of 16, random BPC inside, blocks reversed: in F: %v\n",
		perm.InF(g5))

	// Theorem 6: the worked 3-D array example
	// A(i,j,k) -> A((i+j+k) mod 2^r, (p j) mod 2^s, j XOR k).
	t6 := report.NewTable("Theorem 6 example: A(i,j,k) -> A((i+j+k) mod 2^r, (p*j) mod 2^s, j XOR k)",
		"(r,s,t)", "N", "p", "in F?", "routes?")
	for _, dims := range [][3]int{{2, 2, 2}, {3, 3, 2}, {4, 3, 3}} {
		r, s, tt := dims[0], dims[1], dims[2]
		p := 3
		g6 := perm.ThreeDimExample(r, s, tt, p)
		bb := core.New(r + s + tt)
		t6.Add(fmt.Sprintf("(%d,%d,%d)", r, s, tt), len(g6), p, perm.InF(g6), bb.Realizes(g6))
	}
	fmt.Fprint(w, t6)
}
