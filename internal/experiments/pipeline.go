package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/perm"
	"repro/internal/report"
)

func init() {
	register(Experiment{
		ID:    "E20",
		Paper: "Section IV (pipelining)",
		Title: "registered network: fill latency then one vector per cycle",
		Run:   runE20,
	})
}

func runE20(w io.Writer) {
	rng := rand.New(rand.NewSource(7))
	t := report.NewTable("pipelined throughput (vectors with distinct permutations)",
		"n", "N", "vectors", "first out (cycles)", "last out", "cycles/vector steady-state")
	for _, n := range []int{3, 5, 7} {
		N := 1 << uint(n)
		b := core.New(n)
		p := core.NewPipeline[int](b)
		const vectors = 32
		for v := 0; v < vectors; v++ {
			d := perm.RandomBPC(n, rng).Perm()
			data := make([]int, N)
			for i := range data {
				data[i] = v*N + i
			}
			p.Step(d, data)
		}
		p.Drain()
		out := p.Output()
		first := out[0].Cycle
		last := out[len(out)-1].Cycle
		t.Add(n, N, vectors, first, last,
			fmt.Sprintf("%.2f", float64(last-first)/float64(vectors-1)))
	}
	t.Note("non-pipelined: each vector costs the full 2logN-1 gate delay; pipelined amortizes to 1")
	fmt.Fprint(w, t)

	// The concurrent (self-timed) engine streaming the same workload.
	n := 5
	N := 1 << uint(n)
	eng := netsim.New(core.New(n))
	vecs := make([]perm.Perm, 16)
	for k := range vecs {
		vecs[k] = perm.POrderingShift(n, 2*rng.Intn(N/2)+1, rng.Intn(N))
	}
	results, _ := eng.Run(vecs)
	ok := 0
	for _, r := range results {
		if r.OK() {
			ok++
		}
	}
	fmt.Fprintf(w, "goroutine-per-switch engine: %d/%d streamed vectors delivered correctly (N=%d, %d switch goroutines)\n",
		ok, len(vecs), N, core.New(n).SwitchCount())
}
