package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/gcn"
	"repro/internal/report"
)

func init() {
	register(Experiment{
		ID:    "E28",
		Paper: "Section I application ([9] generalized connection network)",
		Title: "Benes as the subnetwork of a generalized connector (broadcast mappings)",
		Run:   runE28,
	})
}

func runE28(w io.Writer) {
	rng := rand.New(rand.NewSource(11))
	t := report.NewTable("generalized connection network (distribute -> copy ladder -> permute)",
		"n", "N", "switches (2 Benes + ladder)", "gate delay", "random mappings carried", "all correct?")
	for _, n := range []int{3, 5, 7, 9} {
		g := gcn.New(n)
		N := 1 << uint(n)
		const trials = 30
		allOK := true
		for trial := 0; trial < trials; trial++ {
			req := make(gcn.Request, N)
			for o := range req {
				req[o] = rng.Intn(N)
			}
			plan, err := g.Connect(req)
			if err != nil {
				allOK = false
				continue
			}
			data := make([]int, N)
			for i := range data {
				data[i] = i
			}
			out := gcn.Carry(plan, data)
			for o, in := range req {
				if out[o] != in {
					allOK = false
				}
			}
		}
		t.Add(n, N, g.SwitchCount(), g.GateDelay(), trials, allOK)
	}
	ben := core.New(9)
	t.Note("cost stays O(N log N) switches / O(log N) delay; a single Benes alone is %d switches, %d delay at N=512",
		ben.SwitchCount(), ben.GateDelay())
	t.Note("this realizes arbitrary MAPPINGS (outputs may share an input) — the paper's cited application [9]")
	fmt.Fprint(w, t)
}
