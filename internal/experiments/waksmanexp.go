package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/perm"
	"repro/internal/report"
)

func init() {
	register(Experiment{
		ID:    "E29",
		Paper: "Section I (Waksman [10])",
		Title: "Waksman's reduction: N logN - N + 1 programmable switches suffice for all N!",
		Run:   runE29,
	})
}

func runE29(w io.Writer) {
	rng := rand.New(rand.NewSource(12))
	t := report.NewTable("Waksman-reduced Benes network",
		"n", "N", "Benes switches", "fixed straight (N/2-1)", "programmable (NlogN-N+1)",
		"random perms realized", "self-routing F survivors")
	for _, n := range []int{2, 3, 5, 7, 9} {
		b := core.New(n)
		N := 1 << uint(n)
		fixed := b.WaksmanFixed()
		const trials = 100
		realized := 0
		for trial := 0; trial < trials; trial++ {
			p := perm.Random(N, rng)
			if st, ok := b.WaksmanSetup(p); ok && b.ExternalRoute(p, st).OK() {
				realized++
			}
		}
		// How much of F survives when the fixed switches are frozen and
		// the network self-routes?
		fSurvive := 0
		const fTrials = 100
		for trial := 0; trial < fTrials; trial++ {
			p := perm.RandomF(n, rng)
			if b.RouteWithFaults(p, fixed).OK() {
				fSurvive++
			}
		}
		t.Add(n, N, b.SwitchCount(), b.WaksmanFixedCount(), b.WaksmanProgrammableCount(),
			fmt.Sprintf("%d/%d", realized, trials), fmt.Sprintf("%d/%d", fSurvive, fTrials))
	}
	t.Note("external setup: all N! still realizable (Waksman's theorem, verified exhaustively for N=4,8 in the suite)")
	t.Note("self-routing: freezing switches conflicts with tag-dictated states, so the reduction is external-setup-only")
	fmt.Fprint(w, t)
}
