package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/perm"
	"repro/internal/report"
)

func init() {
	register(Experiment{
		ID:    "E27",
		Paper: "extension: Benes redundancy",
		Title: "stuck-switch fault tolerance: self-routing vs setup-around",
		Run:   runE27,
	})
}

// runE27 measures two classic consequences of the Benes network's path
// redundancy under stuck-at switch faults:
//
//  1. self-routing has no freedom (tags dictate states), yet a flipped
//     switch sometimes heals downstream, because the displaced pair
//     re-enters a subnetwork whose self-routing happens to accommodate
//     the swap;
//  2. external setup can actively route around faults using the looping
//     algorithm's per-loop free choices, succeeding for the large
//     majority of single and even multiple faults.
func runE27(w io.Writer) {
	rng := rand.New(rand.NewSource(10))

	t := report.NewTable("self-routing under one stuck switch (random BPC workload, 500 trials each)",
		"n", "N", "harmless (state matched)", "healed downstream", "damaged")
	for _, n := range []int{4, 6, 8} {
		b := core.New(n)
		harmless, healed, damaged := 0, 0, 0
		for trial := 0; trial < 500; trial++ {
			d := perm.RandomBPC(n, rng).Perm()
			clean := b.SelfRoute(d)
			f := core.Fault{
				Stage:        rng.Intn(b.Stages()),
				Switch:       rng.Intn(b.N() / 2),
				StuckCrossed: rng.Intn(2) == 1,
			}
			res := b.RouteWithFaults(d, []core.Fault{f})
			switch {
			case clean.States[f.Stage][f.Switch] == f.StuckCrossed:
				harmless++
			case res.OK():
				healed++
			default:
				damaged++
			}
		}
		t.Add(n, 1<<uint(n), harmless, healed, damaged)
	}
	t.Note("a random stuck state agrees with the tags about half the time; flips occasionally heal via subnetwork adaptation")
	fmt.Fprint(w, t)

	s := report.NewTable("external setup routing around k stuck switches (greedy loop steering, random perms, 300 trials)",
		"n", "k=1", "k=2", "k=4", "k=8")
	for _, n := range []int{4, 6, 8} {
		b := core.New(n)
		row := []any{n}
		for _, k := range []int{1, 2, 4, 8} {
			succ := 0
			const trials = 300
			for trial := 0; trial < trials; trial++ {
				d := perm.Random(1<<uint(n), rng)
				faults := make([]core.Fault, k)
				for i := range faults {
					faults[i] = core.Fault{
						Stage:        rng.Intn(b.Stages()),
						Switch:       rng.Intn(b.N() / 2),
						StuckCrossed: rng.Intn(2) == 1,
					}
				}
				if _, ok := b.SetupAvoiding(d, faults); ok {
					succ++
				}
			}
			row = append(row, fmt.Sprintf("%d%%", succ*100/trials))
		}
		s.Add(row...)
	}
	s.Note("every reported success is verified end-to-end; failures are 'not found by greedy steering', not proofs of impossibility")
	fmt.Fprint(w, s)
}
