package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/costmodel"
	"repro/internal/machine"
	"repro/internal/perm"
	"repro/internal/report"
)

func init() {
	register(Experiment{
		ID:    "E32",
		Paper: "conclusion (the proposed machine)",
		Title: "the dual-network SIMD computer on a mixed workload",
		Run:   runE32,
	})
}

// runE32 drives the conclusion's machine end to end: a stream of mixed
// permutation requests (the distribution a numerical SIMD program might
// issue) is dispatched across the two fabrics; all data movement is
// executed for real and verified; the ledger shows where the time went
// and what a single-fabric machine would have paid.
func runE32(w io.Writer) {
	rng := rand.New(rand.NewSource(14))
	n := 8
	N := 1 << uint(n)
	p := costmodel.Typical1980()
	m := machine.New(n, p)

	// Workload mix: mostly structured permutations with an occasional
	// arbitrary shuffle.
	want := make([]int, N)
	for i := range want {
		want[i] = i
	}
	const requests = 400
	for r := 0; r < requests; r++ {
		var d perm.Perm
		switch r % 8 {
		case 0:
			d = perm.PerfectShuffle(n)
		case 1:
			d = perm.MatrixTranspose(n)
		case 2:
			d = perm.CyclicShift(n, 1+rng.Intn(N-1))
		case 3:
			d = perm.RandomBPC(n, rng).Perm()
		case 4:
			d = perm.POrderingShift(n, 2*rng.Intn(N/2)+1, rng.Intn(N))
		case 5:
			d = perm.Unshuffle(n)
		case 6:
			d = perm.RandomF(n, rng)
		default:
			d = perm.Random(N, rng) // essentially never in F
		}
		m.Apply(d)
		want = perm.Apply(d, want)
	}
	got := m.Data()
	correct := true
	for i := range want {
		if got[i] != want[i] {
			correct = false
		}
	}

	t := report.NewTable(fmt.Sprintf("dispatch ledger (%d requests, N=%d)", requests, N),
		"fabric", "requests", "modelled time")
	var total float64
	for _, f := range []machine.Fabric{
		machine.FabricNone, machine.FabricDirect, machine.FabricBenes,
		machine.FabricOmega, machine.FabricTwoPass,
	} {
		count := m.Served()[f]
		var tm float64
		for _, h := range m.History() {
			if h.Fabric == f {
				tm += h.Cost
			}
		}
		total += tm
		t.Add(string(f), count, fmt.Sprintf("%.0f", tm))
	}
	t.Add("TOTAL", requests, fmt.Sprintf("%.0f", total))
	t.Note("final PE contents equal the composition of all %d requests: %v", requests, correct)
	fmt.Fprint(w, t)

	// What single-fabric machines would pay for the same mix.
	cccAll := float64(requests) * costmodel.Time(costmodel.CCCSort, n, p)
	fmt.Fprintf(w, "single-fabric alternative (CCC, everything by bitonic sort): %.0f — %.1fx the dual-network time\n",
		cccAll, cccAll/m.Time())
	// On the structured 7/8 of the workload the gap is the real story:
	// the arbitrary-permutation stragglers dominate the dual-network
	// ledger through their serial host factorization.
	structured := m.Time()
	for _, h := range m.History() {
		if h.Fabric == machine.FabricTwoPass {
			structured -= h.Cost
		}
	}
	nStruct := requests - m.Served()[machine.FabricTwoPass]
	cccStruct := float64(nStruct) * costmodel.Time(costmodel.CCCSort, n, p)
	fmt.Fprintf(w, "structured requests only (%d of %d): dual-network %.0f vs sorter %.0f — %.0fx\n",
		nStruct, requests, structured, cccStruct, cccStruct/structured)

	// Streaming: a burst of independent F vectors through the pipeline.
	const burst = 64
	ds := make([]perm.Perm, burst)
	vecs := make([][]int, burst)
	for i := range ds {
		ds[i] = perm.RandomBPC(n, rng).Perm()
		vecs[i] = make([]int, N)
	}
	_, cycles := m.StreamPipelined(ds, vecs)
	fmt.Fprintf(w, "pipelined burst: %d independent vectors in %d cycles (%.2f cycles/vector vs %d unpipelined)\n",
		burst, cycles, float64(cycles)/burst, 2*n-1)
}
