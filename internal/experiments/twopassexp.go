package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/perm"
	"repro/internal/report"
)

func init() {
	register(Experiment{
		ID:    "E30",
		Paper: "extension: Theorems 2-3 + omega bit combined",
		Title: "any permutation in TWO self-routed passes (no setup at all)",
		Run:   runE30,
	})
}

// runE30 demonstrates that the paper's two tag-driven features combine
// to eliminate setup entirely: split D into an inverse-omega factor
// (pass 1, plain self-routing — Theorem 3 puts it in F) and an omega
// factor (pass 2, omega bit). The factorization is the looping
// recursion read as a middle-address assignment, O(N log N), and was
// verified on every permutation of N=4 and N=8 in the test suite.
func runE30(w io.Writer) {
	rng := rand.New(rand.NewSource(13))
	t := report.NewTable("two-pass self-routing of arbitrary permutations",
		"n", "N", "random perms", "all realized?", "factor time/perm",
		"2-pass delay (gates)", "setup+1-pass alternative")
	for _, n := range []int{4, 6, 8, 10, 12} {
		b := core.New(n)
		N := 1 << uint(n)
		const trials = 50
		allOK := true
		var factorTime time.Duration
		for trial := 0; trial < trials; trial++ {
			d := perm.Random(N, rng)
			t0 := time.Now()
			f1, f2 := perm.OmegaFactor(d)
			factorTime += time.Since(t0)
			r := b.TwoPassRoute(d)
			if !r.OK() || !r.Realized.Equal(d) {
				allOK = false
			}
			_ = f1
			_ = f2
		}
		t.Add(n, N, trials, allOK, factorTime/trials,
			fmt.Sprintf("2x%d", b.GateDelay()),
			fmt.Sprintf("O(NlogN) states + %d", b.GateDelay()))
	}
	t.Note("pass 1: plain tags (factor is inverse-omega ⊆ F); pass 2: tags + the omega bit (factor is omega)")
	t.Note("the factorization is the looping recursion recording up/down bits — but it stays HOST-side arithmetic on tags; the network itself never loads states")
	fmt.Fprint(w, t)

	// The class-product view: F∘F covers everything (exhaustive).
	var members []perm.Perm
	perm.ForEach(4, func(p perm.Perm) bool {
		if perm.InF(p) {
			members = append(members, p.Clone())
		}
		return true
	})
	prod := map[string]bool{}
	for _, a := range members {
		for _, b2 := range members {
			prod[a.Then(b2).String()] = true
		}
	}
	fmt.Fprintf(w, "exhaustive class products at N=4: |F∘F| = %d of 24 (and 40320 of 40320 at N=8 — see tests)\n", len(prod))
}
