package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/perm"
	"repro/internal/report"
)

func init() {
	register(Experiment{
		ID:    "E1",
		Paper: "Fig. 1 + Section I",
		Title: "B(n) structure: stages, switches, gate delay",
		Run:   runE1,
	})
	register(Experiment{
		ID:    "E2",
		Paper: "Figs. 2-3",
		Title: "switch semantics and the self-routing control-bit schedule",
		Run:   runE2,
	})
}

// runE1 tabulates the structural counts of B(n) across sizes: the paper
// states 2 log N - 1 stages and N log N - N/2 binary switches.
func runE1(w io.Writer) {
	t := report.NewTable("Benes network B(n) structure",
		"n", "N", "stages (2logN-1)", "switches (NlogN-N/2)", "gate delay")
	for n := 1; n <= 16; n++ {
		b := core.New(n)
		t.Add(n, b.N(), b.Stages(), b.SwitchCount(), b.GateDelay())
	}
	t.Note("setup+delay for self-routing is O(log N): the tag decides each switch on arrival")
	fmt.Fprint(w, t)
}

// runE2 demonstrates the Fig. 3 rule on a single switch and prints the
// control-bit schedule: stage b and stage 2n-2-b examine bit b of the
// upper input's tag.
func runE2(w io.Writer) {
	// The two states of the binary switch (Fig. 2), driven by bit 0.
	b1 := core.New(1)
	straight := b1.SelfRoute(perm.Perm{0, 1})
	crossed := b1.SelfRoute(perm.Perm{1, 0})
	state := func(crossed bool) int {
		if crossed {
			return 1
		}
		return 0
	}
	fmt.Fprintf(w, "B(1) single switch: tags (0,1) -> state %d (straight), tags (1,0) -> state %d (crossed)\n",
		state(straight.States[0][0]), state(crossed.States[0][0]))

	t := report.NewTable("control-bit schedule (Fig. 3): stage s examines bit min(s, 2n-2-s)",
		"n", "bits by stage")
	for n := 2; n <= 6; n++ {
		b := core.New(n)
		seq := ""
		for s := 0; s < b.Stages(); s++ {
			if s > 0 {
				seq += " "
			}
			seq += fmt.Sprint(b.ControlBit(s))
		}
		t.Add(n, seq)
	}
	fmt.Fprint(w, t)
}
