package experiments

import (
	"fmt"
	"io"

	"repro/internal/costmodel"
	"repro/internal/report"
)

func init() {
	register(Experiment{
		ID:    "E31",
		Paper: "Section IV + conclusion (dual-network machine)",
		Title: "timing model: when B(n) beats the E(n) simulations, and by how much",
		Run:   runE31,
	})
}

func runE31(w io.Writer) {
	p := costmodel.Typical1980()
	fmt.Fprintf(w, "technology constants (arbitrary units): gate=%.0f route=%.0f broadcast=%.0f hostop=%.0f\n\n",
		p.Gate, p.Route, p.Broadcast, p.HostOp)

	t := report.NewTable("modelled time per permutation (lower is better)",
		"strategy", "universal?", "n=6 (N=64)", "n=10 (N=1024)", "n=14 (N=16384)")
	for _, s := range costmodel.Strategies() {
		t.Add(string(s), s.Universal(),
			fmt.Sprintf("%.0f", costmodel.Time(s, 6, p)),
			fmt.Sprintf("%.0f", costmodel.Time(s, 10, p)),
			fmt.Sprintf("%.0f", costmodel.Time(s, 14, p)))
	}
	t.Note("B(n) wins every F-permutation row outright: same step counts as CCC, steps that cost gates instead of broadcasts")
	fmt.Fprint(w, t)

	s := report.NewTable("B(n) self-route speedup over E(n) simulations (F permutations)",
		"n", "vs CCC", "vs PSC", "vs MCC", "vs CCC bitonic")
	for _, n := range []int{4, 8, 12, 16} {
		s.Add(n,
			fmt.Sprintf("%.1fx", costmodel.Speedup(costmodel.BenesSelfRoute, costmodel.CCCSim, n, p)),
			fmt.Sprintf("%.1fx", costmodel.Speedup(costmodel.BenesSelfRoute, costmodel.PSCSim, n, p)),
			fmt.Sprintf("%.1fx", costmodel.Speedup(costmodel.BenesSelfRoute, costmodel.MCCSim, n, p)),
			fmt.Sprintf("%.1fx", costmodel.Speedup(costmodel.BenesSelfRoute, costmodel.CCCSort, n, p)))
	}
	s.Note("the CCC/PSC columns are flat ((broadcast+route)/gate = constant); MCC and sorting diverge")
	fmt.Fprint(w, s)

	// Universal strategies: the honest asymptotics. Two-pass and
	// external setup pay SERIAL host arithmetic (N log N), while the
	// bitonic sort runs entirely on the PEs — so for arbitrary
	// permutations the sorter eventually wins unless the factorization
	// itself is parallelized (package parsetup shows the O(log^2 N)
	// parallel route). The network's unconditional win is the F class:
	// zero setup of any kind.
	u := report.NewTable("arbitrary permutations: universal strategies head-to-head",
		"n", "two-pass B(n)", "external setup", "CCC bitonic", "cheapest")
	for _, n := range []int{2, 4, 6, 10, 14} {
		tp := costmodel.Time(costmodel.BenesTwoPass, n, p)
		ex := costmodel.Time(costmodel.BenesExternal, n, p)
		so := costmodel.Time(costmodel.CCCSort, n, p)
		best := "two-pass"
		if ex < tp && ex <= so {
			best = "external"
		} else if so < tp && so < ex {
			best = "bitonic sort"
		}
		u.Add(n, fmt.Sprintf("%.0f", tp), fmt.Sprintf("%.0f", ex), fmt.Sprintf("%.0f", so), best)
	}
	u.Note("two-pass always beats external setup (half the host work); the PE-parallel sorter overtakes both once serial host work dominates")
	u.Note("with the parallel factorization of package parsetup (O(log^2 N) rounds) the two-pass route stays competitive at scale")
	fmt.Fprint(w, u)

	// Tag transport ablation: the paper ships the whole log N-bit tag on
	// parallel wires. Bit-serial links would degrade the self-routing
	// delay from Theta(log N) to Theta(log^2 N).
	bs := report.NewTable("tag transport: parallel wires vs bit-serial links (cycles per pass)",
		"n", "parallel (2logN-1)", "bit-serial ((n-1)^2+3n-2)", "penalty")
	for _, n := range []int{4, 8, 12, 16} {
		pd := costmodel.ParallelTagDelay(n)
		sd := costmodel.BitSerialDelay(n)
		bs.Add(n, pd, sd, fmt.Sprintf("%.1fx", float64(sd)/float64(pd)))
	}
	bs.Note("the O(log N) headline requires the tag on parallel wires — a real architectural constraint hidden in 'a destination tag is passed along with each input'")
	fmt.Fprint(w, bs)
}
