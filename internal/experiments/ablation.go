package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/perm"
	"repro/internal/report"
	"repro/internal/simd"
)

func init() {
	register(Experiment{
		ID:    "E22",
		Paper: "design ablation (Fig. 3 rule)",
		Title: "why the rule is bit-b-of-the-UPPER-input: schedule and polarity ablations",
		Run:   runE22,
	})
	register(Experiment{
		ID:    "E23",
		Paper: "Section II structure of F",
		Title: "closure properties of F and what F contains beyond BPC ∪ Omega^{-1}",
		Run:   runE23,
	})
	register(Experiment{
		ID:    "E24",
		Paper: "Section III optimality remarks",
		Title: "route counts vs dimension-crossing lower bounds (2x cube, 4x mesh)",
		Run:   runE24,
	})
}

// runE22 varies the two design choices in the self-routing rule and
// counts what each variant can still realize.
func runE22(w io.Writer) {
	t := report.NewTable("self-routing rule ablation (exhaustive realizable counts)",
		"variant", "N=4 (of 24)", "N=8 (of 40320)", "BPC(3) covered (of 48)", "Omega^{-1}(3) covered (of 4096)")
	type variant struct {
		name string
		sch  func(*core.Network) []int
		src  core.ControlSource
	}
	variants := []variant{
		{"paper: bits 0..n-1..0, upper input", (*core.Network).PaperSchedule, core.UpperInput},
		{"mirror: lower input, inverted polarity", (*core.Network).PaperSchedule, core.LowerInputInverted},
		{"broken: lower input, same polarity", (*core.Network).PaperSchedule, core.LowerInput},
		{"reversed schedule: bits n-1..0..n-1", (*core.Network).ReversedSchedule, core.UpperInput},
		{"constant schedule: bit 0 everywhere", func(b *core.Network) []int { return b.ConstantSchedule(0) }, core.UpperInput},
	}
	for _, v := range variants {
		counts := make(map[int]int)
		for _, n := range []int{2, 3} {
			b := core.New(n)
			sch := v.sch(b)
			perm.ForEach(1<<uint(n), func(p perm.Perm) bool {
				if b.RouteWithSchedule(p, sch, v.src).OK() {
					counts[n]++
				}
				return true
			})
		}
		b3 := core.New(3)
		sch3 := v.sch(b3)
		bpcCov, iomCov := 0, 0
		perm.ForEachBPC(3, func(a perm.BPC) bool {
			if b3.RouteWithSchedule(a.Perm(), sch3, v.src).OK() {
				bpcCov++
			}
			return true
		})
		perm.ForEach(8, func(p perm.Perm) bool {
			if perm.IsInverseOmega(p) && b3.RouteWithSchedule(p, sch3, v.src).OK() {
				iomCov++
			}
			return true
		})
		t.Add(v.name, counts[2], counts[3], bpcCov, iomCov)
	}
	t.Note("same-polarity lower control realizes NOTHING: the final stage always misroutes")
	t.Note("the mirror class has |F| members but is a different set from N=8 on (6528 membership differences)")
	t.Note("the reversed schedule collapses entirely: its final stage decides by bit n-1, but final-stage pairs differ only in bit 0")
	fmt.Fprint(w, t)
}

// runE23 maps the structure of F: closure under inverse/product, and
// how much of F lies outside the union of the classes Theorems 2 and 3
// identify.
func runE23(w io.Writer) {
	t := report.NewTable("closure and coverage of F (exhaustive)",
		"n", "|F|", "closed under inverse?", "inverse-escapees", "in BPC ∪ Omega^{-1}", "F beyond the union")
	for _, n := range []int{2, 3} {
		var members []perm.Perm
		perm.ForEach(1<<uint(n), func(p perm.Perm) bool {
			if perm.InF(p) {
				members = append(members, p.Clone())
			}
			return true
		})
		invEscape := 0
		unionCovered := 0
		for _, p := range members {
			if !perm.InF(p.Inverse()) {
				invEscape++
			}
			_, isBPC := perm.RecognizeBPC(p)
			if isBPC || perm.IsInverseOmega(p) {
				unionCovered++
			}
		}
		t.Add(n, len(members), invEscape == 0, invEscape, unionCovered, len(members)-unionCovered)
	}
	t.Note("F is NOT closed under inverse (nor product — E12); the composite theorems 4-6 explain the surplus beyond BPC ∪ Omega^{-1}")
	fmt.Fprint(w, t)

	// A concrete inverse-escapee.
	perm.ForEach(4, func(p perm.Perm) bool {
		if perm.InF(p) && !perm.InF(p.Inverse()) {
			fmt.Fprintf(w, "witness: %v is in F(2) but its inverse %v is not\n", p, p.Inverse())
			return false
		}
		return true
	})

	// |F(n)| structurally, restated from the bijection (cmd/fcount).
	fmt.Fprintf(w, "structural counts: |F(1)|=%d |F(2)|=%d |F(3)|=%d |F(4)|=133488540928 (16! unenumerable)\n",
		perm.CountF(1), perm.CountF(2), perm.CountF(3))
}

// runE24 checks the paper's optimality remarks quantitatively.
func runE24(w io.Writer) {
	rng := rand.New(rand.NewSource(8))
	t := report.NewTable("CCC: skipping algorithm vs dimension-crossing lower bound (random BPC)",
		"n", "avg routes", "avg lower bound", "worst ratio", "within 2x?")
	for _, n := range []int{4, 6, 8, 10} {
		const trials = 200
		var sumR, sumLB int
		worst := 0.0
		within := true
		for trial := 0; trial < trials; trial++ {
			spec := perm.RandomBPC(n, rng)
			d := spec.Perm()
			c := simd.NewCCC(d, 1)
			c.PermuteBPC(spec)
			lb := simd.CCCLowerBound(d)
			sumR += c.Routes()
			sumLB += lb
			if lb > 0 {
				r := float64(c.Routes()) / float64(lb)
				if r > worst {
					worst = r
				}
				if c.Routes() > 2*lb {
					within = false
				}
			}
		}
		t.Add(n, fmt.Sprintf("%.1f", float64(sumR)/trials),
			fmt.Sprintf("%.1f", float64(sumLB)/trials),
			fmt.Sprintf("%.2f", worst), within)
	}
	fmt.Fprint(w, t)

	m := report.NewTable("MCC: skipping algorithm vs mesh lower bound (random BPC)",
		"n", "mesh", "avg routes", "avg lower bound", "worst ratio", "within 4x?")
	for _, n := range []int{4, 6, 8} {
		const trials = 200
		var sumR, sumLB int
		worst := 0.0
		within := true
		for trial := 0; trial < trials; trial++ {
			spec := perm.RandomBPC(n, rng)
			d := spec.Perm()
			mc := simd.NewMCC(d)
			mc.PermuteBPC(spec)
			lb := simd.MCCLowerBound(d)
			sumR += mc.Routes()
			sumLB += lb
			if lb > 0 {
				r := float64(mc.Routes()) / float64(lb)
				if r > worst {
					worst = r
				}
				if mc.Routes() > 4*lb {
					within = false
				}
			}
		}
		side := 1 << uint(n/2)
		m.Add(n, fmt.Sprintf("%dx%d", side, side),
			fmt.Sprintf("%.1f", float64(sumR)/trials),
			fmt.Sprintf("%.1f", float64(sumLB)/trials),
			fmt.Sprintf("%.2f", worst), within)
	}
	m.Note("the paper cites optimal BPC algorithms [6],[12] achieving the bounds; the generic simulation stays within 2x / 4x")
	fmt.Fprint(w, m)
}
