package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/batcher"
	"repro/internal/core"
	"repro/internal/crossbar"
	"repro/internal/omega"
	"repro/internal/perm"
	"repro/internal/report"
)

func init() {
	register(Experiment{
		ID:    "E13",
		Paper: "Section I comparison",
		Title: "network shoot-out: switches, delay, setup, generality",
		Run:   runE13,
	})
	register(Experiment{
		ID:    "E14",
		Paper: "Section I (Waksman setup)",
		Title: "external setup realizes all N!, at O(N log N) cost",
		Run:   runE14,
	})
}

// runE13 reproduces the paper's Section I design-space comparison: for
// each competing network, switch count, gate delay, setup need, and the
// fraction of permutations it can do.
func runE13(w io.Writer) {
	n := 10
	N := 1 << uint(n)
	ben := core.New(n)
	om := omega.New(n)
	bat := batcher.New(n)
	xb := crossbar.New(N)

	t := report.NewTable(fmt.Sprintf("permutation networks at N=%d", N),
		"network", "binary switches", "gate delay", "setup", "realizes")
	t.Add("self-routing Benes (this paper)", ben.SwitchCount(), ben.GateDelay(),
		"none (tags)", "F(n): all BPC, Omega^{-1}, FUBs, composites")
	t.Add("Benes + omega bit", ben.SwitchCount(), ben.GateDelay(),
		"none (tags+1 bit)", "F(n) plus all Omega(n)")
	t.Add("Benes, external setup", ben.SwitchCount(), ben.GateDelay(),
		"O(N log N) looping", "all N!")
	t.Add("omega (Lawrie)", om.SwitchCount(), om.GateDelay(),
		"none (tags)", "Omega(n) only")
	t.Add("Batcher bitonic", bat.SwitchCount(), bat.GateDelay(),
		"none (sorts)", "all N!")
	oe := batcher.NewOddEven(n)
	t.Add("Batcher odd-even merge", oe.SwitchCount(), oe.GateDelay(),
		"none (sorts)", "all N!")
	t.Add("crossbar", xb.SwitchCount(), xb.GateDelay(),
		"O(1) pt closures", "all N!")
	fmt.Fprint(w, t)

	// Growth of the two resources across sizes: the figure-style series.
	sw := report.NewTable("switch counts by size", "n", "N",
		"Benes (NlogN-N/2)", "omega (NlogN/2)", "bitonic (N/2 logN(logN+1)/2)", "odd-even ((n^2-n+4)2^(n-2)-1)", "crossbar (N^2)")
	dl := report.NewTable("gate delays by size", "n", "N",
		"Benes (2logN-1)", "omega (logN)", "bitonic (logN(logN+1)/2)", "crossbar (1)")
	for nn := 2; nn <= 14; nn += 2 {
		NN := 1 << uint(nn)
		bb, oo, tt, cc := core.New(nn), omega.New(nn), batcher.New(nn), crossbar.New(NN)
		oeN := batcher.NewOddEven(nn)
		sw.Add(nn, NN, bb.SwitchCount(), oo.SwitchCount(), tt.SwitchCount(), oeN.SwitchCount(), cc.SwitchCount())
		dl.Add(nn, NN, bb.GateDelay(), oo.GateDelay(), tt.GateDelay(), cc.GateDelay())
	}
	fmt.Fprint(w, sw)
	fmt.Fprint(w, dl)

	// Generality head-to-head on concrete workloads.
	rng := rand.New(rand.NewSource(4))
	work := []struct {
		name string
		p    perm.Perm
	}{
		{"bit reversal", perm.BitReversal(n)},
		{"matrix transpose", perm.MatrixTranspose(n)},
		{"cyclic shift k=1", perm.CyclicShift(n, 1)},
		{"p-ordering p=5", perm.POrdering(n, 5)},
		{"random BPC", perm.RandomBPC(n, rng).Perm()},
		{"uniform random", perm.Random(N, rng)},
	}
	hh := report.NewTable("who can route what (self-routing only)",
		"workload", "Benes self-routing", "omega", "bitonic")
	for _, c := range work {
		hh.Add(c.name, ben.Realizes(c.p), om.Realizes(c.p), bat.Realizes(c.p))
	}
	hh.Note("shape match with the paper: Benes-self-routing ⊃ omega; bitonic does everything but with %d vs %d delay",
		bat.GateDelay(), ben.GateDelay())
	fmt.Fprint(w, hh)
}

// runE14 measures the looping setup: correctness on random permutations
// and the O(N log N) growth of setup work, dwarfing the O(log N)
// transmission the paper motivates avoiding.
func runE14(w io.Writer) {
	rng := rand.New(rand.NewSource(5))
	t := report.NewTable("external setup (looping algorithm)",
		"n", "N", "random perms set up", "all realized?", "setup time/perm", "self-route time/perm")
	for _, n := range []int{4, 6, 8, 10, 12} {
		b := core.New(n)
		N := 1 << uint(n)
		const trials = 50
		ok := true
		var setupTotal, routeTotal time.Duration
		for trial := 0; trial < trials; trial++ {
			p := perm.Random(N, rng)
			t0 := time.Now()
			st := b.Setup(p)
			setupTotal += time.Since(t0)
			if !b.ExternalRoute(p, st).OK() {
				ok = false
			}
			d := perm.RandomBPC(n, rng).Perm()
			t1 := time.Now()
			b.SelfRoute(d)
			routeTotal += time.Since(t1)
		}
		t.Add(n, N, trials, ok, setupTotal/trials, routeTotal/trials)
	}
	t.Note("setup grows as N log N while the self-routing pass needs no setup at all")
	fmt.Fprint(w, t)
}
