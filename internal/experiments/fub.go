package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/lenfant"
	"repro/internal/perm"
	"repro/internal/report"
)

func init() {
	register(Experiment{
		ID:    "E21",
		Paper: "Section II (Lenfant's FUB families)",
		Title: "all five FUB families self-route with the one generic rule",
		Run:   runE21,
	})
}

func runE21(w io.Writer) {
	t := report.NewTable("Lenfant FUB families on the self-routing network",
		"family", "class (paper)", "members tested (n=2..8)", "all in F?", "all route?")
	classOf := map[string]string{
		"alpha":  "BPC",
		"beta":   "BPC",
		"gamma":  "BPC",
		"lambda": "Omega^{-1}",
		"delta":  "Omega^{-1}",
		"eta":    "Omega^{-1}",
	}
	for _, fam := range lenfant.Families() {
		total := 0
		allF, allRoute := true, true
		for n := 2; n <= 8; n++ {
			b := core.New(n)
			for _, d := range fam.Members(n) {
				total++
				if !perm.InF(d) {
					allF = false
				}
				if !b.Realizes(d) {
					allRoute = false
				}
			}
		}
		t.Add(fam.Name, classOf[fam.Name], total, allF, allRoute)
	}
	t.Note("Lenfant needed five different setup algorithms; the destination-tag rule handles every family")
	fmt.Fprint(w, t)

	fmt.Fprintf(w, "family members at n=4: alpha(4,2)=%v beta(4,4)=%v gamma(4,4)=%v\n",
		lenfant.Alpha(4, 2), lenfant.Beta(4, 4), lenfant.Gamma(4, 4))
}
