package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 32 {
		t.Fatalf("registry holds %d experiments, want 32", len(all))
	}
	seen := make(map[string]bool)
	for _, e := range all {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Paper == "" || e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incompletely registered", e.ID)
		}
	}
	for i := 1; i <= 32; i++ {
		id := "E" + itoa(i)
		if !seen[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func TestRegistryOrdered(t *testing.T) {
	all := All()
	for i := 1; i < len(all); i++ {
		if idNum(all[i-1].ID) >= idNum(all[i].ID) {
			t.Fatalf("registry out of order: %s before %s", all[i-1].ID, all[i].ID)
		}
	}
}

func TestFind(t *testing.T) {
	if _, ok := Find("E3"); !ok {
		t.Error("E3 not found")
	}
	if _, ok := Find("E99"); ok {
		t.Error("E99 should not exist")
	}
}

// TestRunAllProducesExpectedEvidence runs every experiment and asserts
// the key quantitative shapes appear in the output.
func TestRunAllProducesExpectedEvidence(t *testing.T) {
	var buf bytes.Buffer
	RunAll(&buf)
	out := buf.String()
	for _, want := range []string{
		// E1: the structural counts for n=10.
		"10  1024  19",
		// E4: the exhaustive F(2) count.
		"|F(2)| = 20 of 24",
		// E5: the paper's worked BPC example expansion.
		"D = (6,2,4,0,7,3,5,1)",
		// E10: the exhaustive F(3) cardinality.
		"11632",
		// E10: |Omega(3)| = 4096.
		"4096",
		// E12: the closure counterexample.
		"A∘B = (2,0,1,3)",
		// E15: Fig. 6 final column must exist.
		"Fig. 6",
		// E17: 7*sqrt(N)-8 at n=12 (64x64 mesh): 7*64-8 = 440.
		"440",
		// E21: FUB families.
		"lambda",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("experiment output missing %q", want)
		}
	}
	// The only intentional failures in the whole report are E4's Fig. 5
	// misroute demo (one diagram with ok=false) and its Theorem-1
	// witness; every verification column elsewhere must read true.
	if got := strings.Count(out, "ok=false"); got != 1 {
		t.Errorf("expected exactly one intentional misroute demo, found %d", got)
	}
	// E13's generality table must show the expected pattern: the omega
	// network fails on a random BPC permutation while the self-routing
	// Benes succeeds, and only the sorter handles a uniform random one.
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.HasPrefix(line, "random BPC"):
			if !strings.Contains(line, "true") || !strings.Contains(line, "false") {
				t.Errorf("E13 random-BPC row unexpected: %q", line)
			}
		case strings.HasPrefix(line, "all seven route?") || strings.Contains(line, "all in F?"):
			if strings.Contains(line, "false") {
				t.Errorf("verification row failed: %q", line)
			}
		}
	}
}

// TestEachExperimentNonEmpty: every experiment writes something.
func TestEachExperimentNonEmpty(t *testing.T) {
	for _, e := range All() {
		var buf bytes.Buffer
		e.Run(&buf)
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", e.ID)
		}
	}
}
